// Command fiosim runs a single fio-style workload against a chosen
// scheme/layout on the paper-shaped simulated cluster and prints the
// measurement — the counterpart of one fio invocation in §3.3.
//
// Usage:
//
//	fiosim -rw randwrite -bs 64 -qd 32 -ops 2000 -scheme xts-rand -layout object-end
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/telemetry"
)

func main() {
	var (
		rw         = flag.String("rw", "randwrite", "randread | randwrite | read | write")
		bsKB       = flag.Int64("bs", 64, "block size in KiB")
		qd         = flag.Int("qd", 32, "queue depth")
		ops        = flag.Int("ops", 1000, "total operations")
		imageMB    = flag.Int64("image", 512, "image size in MiB")
		schemeName = flag.String("scheme", "xts-rand", "cipher scheme")
		layoutName = flag.String("layout", "object-end", "IV layout")
		trimPct    = flag.Int("trim", 0, "percentage of ops issued as discards")
		metrics    = flag.Bool("metrics", false, "dump the Prometheus-text telemetry snapshot after the run")
		traces     = flag.Bool("traces", false, "dump recent and slow per-op trace spans after the run")
	)
	flag.Parse()

	pattern, err := fio.ParsePattern(*rw)
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := core.ParseScheme(*schemeName)
	if err != nil {
		log.Fatal(err)
	}
	layout, err := core.ParseLayout(*layoutName)
	if err != nil {
		log.Fatal(err)
	}

	cluster, err := rados.NewCluster(bench.PaperCluster())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client := cluster.NewClient("fiosim")
	if _, err := rbd.Create(0, client, "rbd", "img", *imageMB<<20); err != nil {
		log.Fatal(err)
	}
	img, _, err := rbd.Open(0, client, "rbd", "img")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := core.Format(0, img, []byte("x"), core.Options{Scheme: scheme, Layout: layout}); err != nil {
		log.Fatal(err)
	}
	enc, _, err := core.Load(0, img, []byte("x"))
	if err != nil {
		log.Fatal(err)
	}
	now, err := fio.Precondition(enc, 0, core.DefaultBlockSize, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preconditioned %d MiB image (%v/%v)\n", *imageMB, scheme, layout)

	wallStart := time.Now()
	res, err := fio.Run(fio.Spec{
		Pattern:    pattern,
		BlockSize:  *bsKB << 10,
		QueueDepth: *qd,
		TotalOps:   *ops,
		TrimPct:    *trimPct,
	}, enc, now)
	res.WallTime = time.Since(wallStart)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Printf("latency: p50=%v p95=%v p99=%v max=%v (virtual)\n",
		res.Latencies.P50, res.Latencies.P95, res.Latencies.P99, res.Latencies.Max)
	if perOp := res.PerOpString(); perOp != "" {
		fmt.Println(perOp)
	}
	fmt.Printf("wall time: %v\n", res.WallTime)

	if *traces {
		fmt.Println("\nrecent op traces (newest first):")
		for _, rec := range telemetry.Ops.Recent() {
			fmt.Printf("  %s\n", rec.String())
		}
		if slow := telemetry.Ops.Slow(); len(slow) > 0 {
			fmt.Println("slow ops:")
			for _, rec := range slow {
				fmt.Printf("  %s\n", rec.String())
			}
		}
	}
	if *metrics {
		fmt.Println("\ntelemetry snapshot:")
		if _, err := telemetry.Default.WriteTo(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
