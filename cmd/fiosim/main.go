// Command fiosim runs a single fio-style workload against a chosen
// scheme/layout on the paper-shaped simulated cluster and prints the
// measurement — the counterpart of one fio invocation in §3.3.
//
// Usage:
//
//	fiosim -rw randwrite -bs 64 -qd 32 -ops 2000 -scheme xts-rand -layout object-end
//
// Chaos mode arms a deterministic, seed-replayable fault plan on the
// cluster (dropped/delayed/duplicated replies, connection resets, an
// OSD crash window) and routes the workload through a verifying wrapper
// that holds every read to the correct-or-loud contract:
//
//	fiosim -rw randread -bs 4 -qd 8 -ops 2000 -scheme gcm-auth -chaos-seed 7
//
// -health brackets the measured run with health-monitor snapshots and
// prints the SLO verdict table over the run window — under a chaos
// seed the fault-rate and error-rate rules fire; clean runs print all
// ok:
//
//	fiosim -rw randwrite -bs 4 -qd 8 -ops 2000 -chaos-seed 7 -health
//
// -attr prints the always-on per-phase latency attribution table plus
// every captured slow op with its critical path; -trace-every and
// -slow-thresh tune the tracer's sampling stride and the slow-capture
// threshold:
//
//	fiosim -rw randwrite -bs 4 -qd 32 -ops 5000 -attr -slow-thresh 5ms
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fio"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/telemetry"
	"repro/internal/telemetry/attr"
	"repro/internal/telemetry/health"
	"repro/internal/vtime"
)

func main() {
	var (
		rw         = flag.String("rw", "randwrite", "randread | randwrite | read | write")
		bsKB       = flag.Int64("bs", 64, "block size in KiB")
		qd         = flag.Int("qd", 32, "queue depth")
		ops        = flag.Int("ops", 1000, "total operations")
		imageMB    = flag.Int64("image", 512, "image size in MiB")
		schemeName = flag.String("scheme", "xts-rand", "cipher scheme")
		layoutName = flag.String("layout", "object-end", "IV layout")
		trimPct    = flag.Int("trim", 0, "percentage of ops issued as discards")
		metrics    = flag.Bool("metrics", false, "dump the Prometheus-text telemetry snapshot after the run")
		traces     = flag.Bool("traces", false, "dump recent and slow per-op trace spans after the run")
		attrFlag   = flag.Bool("attr", false, "print the per-phase latency attribution table and slow-op critical paths after the run")
		traceEvery = flag.Int64("trace-every", 0, "trace one in every N ops with a full wire-propagated span (0 = tracer default, 1 = every op)")
		slowThresh = flag.Duration("slow-thresh", 0, "virtual latency at or past which an op is captured into the slow ring (0 = tracer default)")
		healthFlag = flag.Bool("health", false, "evaluate the SLO health rules over the run window and print the verdict table")
		chaosSeed  = flag.Int64("chaos-seed", 0, "arm a deterministic fault plan with this seed (0 = off) and verify every read: correct plaintext or loud error")
	)
	flag.Parse()

	if *traceEvery > 0 {
		telemetry.Ops.SetSampleEvery(*traceEvery)
	}
	if *slowThresh > 0 {
		telemetry.Ops.SetSlowThreshold(vtime.Duration(*slowThresh))
	}

	pattern, err := fio.ParsePattern(*rw)
	if err != nil {
		log.Fatal(err)
	}
	scheme, err := core.ParseScheme(*schemeName)
	if err != nil {
		log.Fatal(err)
	}
	layout, err := core.ParseLayout(*layoutName)
	if err != nil {
		log.Fatal(err)
	}

	cfg := bench.PaperCluster()
	if *chaosSeed != 0 {
		// The benchmark cluster is cost-only (payloads discarded); chaos
		// verification reads data back, so it needs real storage.
		cfg.EphemeralData = false
	}
	cluster, err := rados.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client := cluster.NewClient("fiosim")
	if _, err := rbd.Create(0, client, "rbd", "img", *imageMB<<20); err != nil {
		log.Fatal(err)
	}
	img, _, err := rbd.Open(0, client, "rbd", "img")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := core.Format(0, img, []byte("x"), core.Options{Scheme: scheme, Layout: layout}); err != nil {
		log.Fatal(err)
	}
	enc, _, err := core.Load(0, img, []byte("x"))
	if err != nil {
		log.Fatal(err)
	}
	// In chaos mode the whole workload — preconditioning included — runs
	// through fio.Verifier, which stamps write payloads and checks every
	// read against them: correct plaintext, loud error, or it is silent
	// garbage and the run fails.
	target := fio.Target(enc)
	var verifier *fio.Verifier
	if *chaosSeed != 0 {
		verifier = fio.NewVerifier(enc, core.DefaultBlockSize)
		verifier.Tolerate = func(err error) bool { return errors.Is(err, fault.ErrInjected) }
		verifier.Loud = func(err error) bool {
			return errors.Is(err, core.ErrIntegrity) || errors.Is(err, core.ErrKeyErased)
		}
		target = verifier
	}
	now, err := fio.Precondition(target, 0, core.DefaultBlockSize, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preconditioned %d MiB image (%v/%v)\n", *imageMB, scheme, layout)

	// The health monitor brackets the measured run: one snapshot before,
	// one after, so the rules evaluate over exactly the run window.
	var mon *health.Monitor
	if *healthFlag {
		mon = health.NewMonitor(telemetry.Default, 0, nil)
		mon.Observe(now)
	}

	if *chaosSeed != 0 {
		// Network faults only: each is atomic per request (fully executed
		// or never ran), so every manifestation is either tolerated or
		// loud regardless of scheme. Media faults live in the test suite,
		// where their blast radius is controlled per scheme.
		cluster.ArmFaults(fault.NewPlan(*chaosSeed, fault.Config{
			Prob: map[fault.Kind]float64{
				fault.DropReply:  0.02,
				fault.DelayReply: 0.03,
				fault.DupReply:   0.02,
				fault.ConnReset:  0.01,
			},
			Down: []fault.Window{{From: vtime.Time(5e6), To: vtime.Time(9e6)}},
		}))
		fmt.Printf("chaos mode: fault plan armed with seed %d\n", *chaosSeed)
	}

	wallStart := time.Now()
	res, err := fio.Run(fio.Spec{
		Pattern:    pattern,
		BlockSize:  *bsKB << 10,
		QueueDepth: *qd,
		TotalOps:   *ops,
		TrimPct:    *trimPct,
	}, target, now)
	res.WallTime = time.Since(wallStart)
	if err != nil {
		if *chaosSeed != 0 {
			log.Fatalf("workload aborted under faults: %v\nreproduce with: fiosim -rw %s -bs %d -qd %d -ops %d -scheme %s -layout %s -chaos-seed %d",
				err, *rw, *bsKB, *qd, *ops, *schemeName, *layoutName, *chaosSeed)
		}
		log.Fatal(err)
	}
	if verifier != nil {
		cluster.ArmFaults(nil)
		s := verifier.Stats()
		fmt.Printf("chaos verification: %v\n", s)
		if s.GarbageBlocks != 0 {
			log.Fatalf("SILENT GARBAGE: %d blocks read back wrong data without an error\nreproduce with: fiosim -rw %s -bs %d -qd %d -ops %d -scheme %s -layout %s -chaos-seed %d",
				s.GarbageBlocks, *rw, *bsKB, *qd, *ops, *schemeName, *layoutName, *chaosSeed)
		}
	}
	fmt.Println(res)
	fmt.Printf("latency: p50=%v p95=%v p99=%v max=%v (virtual)\n",
		res.Latencies.P50, res.Latencies.P95, res.Latencies.P99, res.Latencies.Max)
	if perOp := res.PerOpString(); perOp != "" {
		fmt.Println(perOp)
	}
	fmt.Printf("wall time: %v\n", res.WallTime)

	if mon != nil {
		mon.Observe(res.End)
		fmt.Printf("\n%s\n", mon.Report(res.End))
	}
	if *traces {
		fmt.Println("\nrecent op traces (newest first):")
		for _, rec := range telemetry.Ops.Recent() {
			fmt.Printf("  %s\n", rec.String())
		}
		if slow := telemetry.Ops.Slow(); len(slow) > 0 {
			fmt.Println("slow ops:")
			for _, rec := range slow {
				fmt.Printf("  %s\n", rec.String())
			}
		}
	}
	if *attrFlag {
		fmt.Printf("\nlatency attribution (100%% of traffic):\n%s", attr.Table())
		if slow := attr.SlowOps(); len(slow) > 0 {
			fmt.Printf("slow ops (>= %v), newest first:\n", telemetry.Ops.SlowThreshold())
			for _, s := range slow {
				fmt.Print(s.Path)
			}
		}
	}
	if *metrics {
		fmt.Println("\ntelemetry snapshot:")
		if _, err := telemetry.Default.WriteTo(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
