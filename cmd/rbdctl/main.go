// Command rbdctl exercises the image and encryption API on an ephemeral
// in-process cluster — a demonstration shell for the library in the
// spirit of the rbd(8) tool.
//
// Usage:
//
//	rbdctl -scheme xts-rand -layout object-end demo
//	rbdctl -scheme xts-rand -layout object-end rekey
//	rbdctl -scheme luks2 -layout none discard
//	rbdctl -scheme xts-rand -layout object-end clone
//	rbdctl -scheme xts-rand -layout object-end flatten
//	rbdctl -scheme gcm-auth -layout object-end scrub
//	rbdctl top
//	rbdctl health
//	rbdctl slow
//	rbdctl events
//
// demo creates an encrypted image, writes data, snapshots, overwrites,
// reads both versions back and prints storage-level counters. rekey
// rotates the image's key epoch online — under a live fio workload —
// then destroys the retired key. discard crypto-erases a block range
// and shows the holes plus the zeroed storage-level view. clone runs the
// golden-image flow: two tenants cloned from one encrypted base
// snapshot, each under its own key, with crypto-erase isolation between
// them. flatten copies a clone's inherited blocks up under the child's
// key (paced, resumable) until the base can be deleted. scrub plants
// single-copy ciphertext rot, then drives a paced background integrity
// sweep that detects it and repairs it from the intact replicas (with
// gcm-auth; the length-preserving schemes cannot see rot — the paper's
// integrity argument). top runs a workload and renders a live per-OSD
// dashboard from the history ring (request/device rates, serve p99)
// with the health verdict under it. health drives the cluster red with
// an armed fault plan and back to green after disarming, printing the
// SLO verdict table at each phase. slow spikes one OSD's devices under
// a replicated write workload, then prints the always-on per-phase
// latency attribution table and every captured slow op's critical path
// — naming the straggler OSD and the dominant phase. events runs a
// small lifecycle (rekey, chaos burst, scrub) and dumps the structured
// event journal.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fio"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/telemetry"
	"repro/internal/telemetry/health"
	"repro/internal/telemetry/history"
)

func main() {
	var (
		schemeName = flag.String("scheme", "xts-rand", "luks2 | xts-rand | gcm-auth | eme2-det | eme2-rand")
		layoutName = flag.String("layout", "object-end", "none | unaligned | object-end | omap")
		sizeMB     = flag.Int64("size", 64, "image size in MiB")
	)
	flag.Parse()
	verb := flag.Arg(0)
	switch verb {
	case "demo", "rekey", "discard", "clone", "flatten", "status", "scrub", "top", "health", "slow", "events":
	default:
		fmt.Fprintln(os.Stderr, "usage: rbdctl [-scheme S] [-layout L] [-size MB] demo|rekey|discard|clone|flatten|status|scrub|top|health|slow|events")
		os.Exit(2)
	}
	scheme, err := core.ParseScheme(*schemeName)
	if err != nil {
		log.Fatal(err)
	}
	layout, err := core.ParseLayout(*layoutName)
	if err != nil {
		log.Fatal(err)
	}

	cluster, err := repro.NewCluster(repro.TestClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client := cluster.NewClient("rbdctl")

	img, err := repro.CreateEncryptedImage(client, "rbd", "demo", *sizeMB<<20,
		[]byte("demo-passphrase"), repro.Options{Scheme: scheme, Layout: layout})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("image: rbd/demo  size=%d MiB  scheme=%v  layout=%v  metadata=%d B/block\n",
		img.Size()>>20, scheme, layout, img.MetaLen())

	switch verb {
	case "demo":
		demo(cluster, img)
	case "rekey":
		rekey(img)
	case "discard":
		discard(img)
	case "clone":
		cloneDemo(client, img, scheme, layout)
	case "flatten":
		flattenDemo(client, img)
	case "status":
		status(img)
	case "scrub":
		scrubDemo(img)
	case "top":
		top(img)
	case "health":
		healthDemo(cluster, img)
	case "slow":
		slowDemo(cluster, img)
	case "events":
		eventsDemo(cluster, img)
	}
}

// top is the live per-OSD dashboard: it runs a random-write workload
// in bursts and, after each burst, snapshots the registry into a
// history ring and renders per-OSD request/device rates and serve p99
// over the burst window, with the health verdict line under the table.
func top(img *repro.EncryptedImage) {
	span := img.Size()
	if span > 8<<20 {
		span = 8 << 20
	}
	now, err := fio.Precondition(img, span, 4096, 0)
	if err != nil {
		log.Fatal(err)
	}
	mon := repro.NewHealthMonitor(0)
	mon.Observe(now)

	for frame := 1; frame <= 5; frame++ {
		res, err := repro.RunWorkload(repro.WorkloadSpec{
			Pattern: fio.RandWrite, BlockSize: 4096, QueueDepth: 8,
			Span: span, TotalOps: 256, Seed: int64(frame),
		}, img, now)
		if err != nil {
			log.Fatal(err)
		}
		window := res.End.Sub(now)
		now = res.End
		mon.Observe(now)

		fmt.Printf("\nframe %d  t=%v  window=%v\n", frame, time.Duration(now), window)
		fmt.Printf("  %-4s %10s %10s %10s %10s %12s\n",
			"osd", "prim req/s", "repl req/s", "dev wr/s", "dev rd/s", "serve p99")
		hist := mon.History()
		secs := window.Seconds()
		for _, id := range osdIDs(hist, window) {
			prim := hist.Delta("osd_requests_total", fmt.Sprintf(`{role="primary",osd="%s"}`, id), window)
			repl := hist.Delta("osd_requests_total", fmt.Sprintf(`{role="replica",osd="%s"}`, id), window)
			wr := hist.Delta("device_write_ops_total", fmt.Sprintf(`{osd="%s"}`, id), window)
			rd := hist.Delta("device_read_ops_total", fmt.Sprintf(`{osd="%s"}`, id), window)
			p99 := hist.SeriesQuantile("osd_serve_vtime", fmt.Sprintf(`{osd="%s"}`, id), 0.99, window)
			fmt.Printf("  %-4s %10.0f %10.0f %10.0f %10.0f %12v\n",
				id, float64(prim)/secs, float64(repl)/secs, float64(wr)/secs, float64(rd)/secs, p99)
		}
		rep := mon.Report(now)
		fmt.Printf("  health: %v (%d rules firing)\n", rep.Status, len(rep.Firing()))
	}
}

// osdIDs collects the OSD ids with any request activity in the window,
// sorted numerically, by walking the per-OSD request series.
func osdIDs(hist *history.History, w repro.Duration) []string {
	seen := map[string]bool{}
	hist.EachDelta("device_write_ops_total", w, func(labels string, delta int64, ok bool) {
		id := strings.TrimSuffix(strings.TrimPrefix(labels, `{osd="`), `"}`)
		if id != labels {
			seen[id] = true
		}
	})
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, _ := strconv.Atoi(ids[i])
		b, _ := strconv.Atoi(ids[j])
		return a < b
	})
	return ids
}

// healthDemo drives the cluster red and back to green, printing the
// SLO verdict table at each phase: an armed fault plan under load flips
// the overall status with the fault-rate, error-rate and latency rules
// firing; disarming and running clean for a full health window returns
// every verdict to ok.
func healthDemo(cluster *repro.Cluster, img *repro.EncryptedImage) {
	span := img.Size()
	if span > 8<<20 {
		span = 8 << 20
	}
	v := fio.NewVerifier(img, 4096)
	v.Tolerate = func(err error) bool { return errors.Is(err, fault.ErrInjected) }
	now, err := fio.Precondition(v, span, 4096, 0)
	if err != nil {
		log.Fatal(err)
	}
	mon := repro.NewHealthMonitor(0)
	mon.Observe(now)

	fmt.Println("arming fault plan: drop-reply 5%, delay-reply 8% (30ms), conn-reset 3%")
	plan := repro.NewFaultPlan(7, repro.FaultConfig{
		Prob: map[fault.Kind]float64{
			fault.DropReply:  0.05,
			fault.DelayReply: 0.08,
			fault.ConnReset:  0.03,
		},
		Delay: 30 * time.Millisecond,
	})
	cluster.ArmFaults(plan)
	for _, pat := range []fio.Pattern{fio.RandWrite, fio.RandRead} {
		res, err := fio.Run(fio.Spec{Pattern: pat, BlockSize: 4096, QueueDepth: 4,
			Span: span, TotalOps: 400, Seed: 7}, v, now)
		if err != nil {
			log.Fatal(err)
		}
		now = res.End
	}
	mon.Observe(now)
	fmt.Printf("\nunder chaos (%d injected faults tolerated):\n%s\n",
		v.Stats().InjectedErrors, mon.Report(now))

	fmt.Println("\ndisarming faults; running clean for a full health window...")
	cluster.ArmFaults(nil)
	greenStart := now
	for now.Sub(greenStart) < health.DefaultWindow+50*repro.Duration(1e6) {
		res, err := fio.Run(fio.Spec{Pattern: fio.RandWrite, BlockSize: 4096, QueueDepth: 4,
			Span: span, TotalOps: 200, Seed: 11}, v, now)
		if err != nil {
			log.Fatal(err)
		}
		now = res.End
	}
	mon.Observe(now)
	fmt.Printf("\nafter recovery:\n%s\n", mon.Report(now))
}

// slowDemo is the tail-latency attribution surface: it stretches every
// device command on one OSD with an injected latency spike, runs a
// replicated write workload, and prints where the time went — the
// always-on per-phase attribution table over 100% of traffic, then
// every captured slow op's critical path with the straggler OSD and
// dominant phase named.
func slowDemo(cluster *repro.Cluster, img *repro.EncryptedImage) {
	span := img.Size()
	if span > 8<<20 {
		span = 8 << 20
	}
	now, err := fio.Precondition(img, span, 4096, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Spike exactly one OSD so replicated writes have a straggler: the
	// plan's base config is clean, and only the victim's disks get a
	// site-specific override.
	spiked := cluster.OSDs()[len(cluster.OSDs())-1]
	plan := repro.NewFaultPlan(7, repro.FaultConfig{})
	for _, st := range spiked.Stores() {
		st.Disk().SetFaults(plan.InjectorWith("disk/"+st.Disk().Name(), fault.Config{
			Prob:  map[fault.Kind]float64{fault.LatencySpike: 1},
			Delay: 30 * time.Millisecond,
		}))
	}
	fmt.Printf("spiking osd%d: every device command on it stretched by 30ms\n", spiked.ID())

	res, err := fio.Run(fio.Spec{Pattern: fio.RandWrite, BlockSize: 4096, QueueDepth: 4,
		Span: span, TotalOps: 300, Seed: 7}, img, now)
	if err != nil {
		log.Fatal(err)
	}
	for _, st := range spiked.Stores() {
		st.Disk().SetFaults(nil)
	}
	fmt.Printf("workload: %s\n", res)

	fmt.Printf("\nlatency attribution (100%% of traffic):\n%s", repro.Attribution())

	slow := repro.SlowOps()
	fmt.Printf("\nslow ops captured: %d (threshold %v, every over-threshold op kept)\n",
		len(slow), time.Duration(telemetry.Ops.SlowThreshold()))
	for i, s := range slow {
		if i >= 6 {
			fmt.Printf("  ... %d more\n", len(slow)-i)
			break
		}
		fmt.Print(s.Path)
	}
}

// eventsDemo runs a small lifecycle — an online rekey, a chaos burst,
// and a scrub sweep — then dumps the structured event journal that
// recorded it, newest first.
func eventsDemo(cluster *repro.Cluster, img *repro.EncryptedImage) {
	span := img.Size()
	if span > 8<<20 {
		span = 8 << 20
	}
	v := fio.NewVerifier(img, 4096)
	v.Tolerate = func(err error) bool { return errors.Is(err, fault.ErrInjected) }
	now, err := fio.Precondition(v, span, 4096, 0)
	if err != nil {
		log.Fatal(err)
	}

	r, err := repro.StartRekey(img)
	if err != nil {
		log.Fatal(err)
	}
	if now, err = r.Run(now); err != nil {
		log.Fatal(err)
	}

	plan := repro.NewFaultPlan(3, repro.FaultConfig{
		Prob: map[fault.Kind]float64{fault.DropReply: 0.05},
	})
	cluster.ArmFaults(plan)
	res, err := fio.Run(fio.Spec{Pattern: fio.RandRead, BlockSize: 4096, QueueDepth: 4,
		Span: span, TotalOps: 200, Seed: 3}, v, now)
	if err != nil {
		log.Fatal(err)
	}
	now = res.End
	cluster.ArmFaults(nil)

	s, err := repro.StartScrub(img)
	if err != nil {
		log.Fatal(err)
	}
	if _, err = s.Run(now); err != nil {
		log.Fatal(err)
	}

	evs := repro.Events()
	fmt.Printf("event journal (%d entries, newest first):\n", len(evs))
	for _, e := range evs {
		fmt.Printf("  %s\n", e)
	}
}

// scrubDemo damages the primary copy of a few blocks with direct
// single-copy writes (the replicas stay intact), then drives a paced
// background scrub that walks every object, verifying each block under
// its recorded key epoch, and repairs what it can from the replicas.
func scrubDemo(img *repro.EncryptedImage) {
	span := img.Size()
	if span > 16<<20 {
		span = 16 << 20
	}
	if _, err := fio.Precondition(img, span, 4096, 0); err != nil {
		log.Fatal(err)
	}

	bs := img.Options().BlockSize
	garbage := make([]byte, bs)
	for i := range garbage {
		garbage[i] = byte(0xA5 ^ i)
	}
	for _, spot := range []struct{ obj, blk int64 }{{0, 3}, {1, 40}, {2, 200}} {
		osd := img.Image().Replicas(spot.obj)[0]
		if _, _, err := img.Image().OperateOn(0, osd, spot.obj, 0,
			[]rados.Op{{Kind: rados.OpWrite, Off: spot.blk * bs, Data: garbage}}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("planted ciphertext rot on the primary copy of 3 blocks")
	if img.Options().Scheme != core.SchemeGCM {
		fmt.Printf("note: %v is length-preserving — rot decrypts to plausible garbage, so the sweep below\n", img.Options().Scheme)
		fmt.Println("      verifies structure only and finds nothing; rerun with -scheme gcm-auth to see detection")
	}

	s, err := repro.StartScrub(img)
	if err != nil {
		log.Fatal(err)
	}
	s.SetPace(repro.NewPacer(500, 128<<20)) // cap the walker at 500 ops/s, 128 MB/s

	// The walker's gauges are registered by internal/scrub; family
	// registration is idempotent, so resolving the same series here reads
	// the same atomics the walker publishes into.
	gDone := telemetry.NewGaugeVec("scrub_objects_done",
		"objects the scrub walker has verified", "image").With(img.Image().Name())
	gTotal := telemetry.NewGaugeVec("scrub_objects_total",
		"objects in the scrub walk domain", "image").With(img.Image().Name())
	gDebt := telemetry.NewGaugeVec("scrub_pacer_debt_ns",
		"scrub pacer debt in virtual nanoseconds (0 = unpaced or inside budget)", "image").With(img.Image().Name())

	fmt.Println("scrub walker (live gauges):")
	var at repro.Time
	for i := 0; ; i++ {
		done, end, err := s.Step(at)
		if err != nil {
			log.Fatal(err)
		}
		at = end
		if i%8 == 0 || done {
			fmt.Printf("  objects %d/%d  pacer debt %v\n",
				gDone.Value(), gTotal.Value(), time.Duration(gDebt.Value()))
		}
		if done {
			break
		}
	}
	p := s.Progress()
	fmt.Printf("scrub complete: %d blocks checked, %d bad, %d repaired from replicas\n",
		p.Checked, p.Found, p.Repaired)

	got := make([]byte, span)
	if _, err := img.ReadAt(0, got, 0); err != nil {
		fmt.Printf("post-scrub read-back still failing: %v\n", err)
		return
	}
	fmt.Println("post-scrub read-back: full span reads clean")
}

// status is the observability surface: it exercises the image under a
// live paced rekey with a concurrent workload, prints the walker's
// progress gauges while they move, then dumps image state, per-op
// latency breakdowns, recent trace spans with their hop timelines, and
// the full Prometheus-text metrics snapshot.
func status(img *repro.EncryptedImage) {
	span := img.Size()
	if span > 16<<20 {
		span = 16 << 20
	}
	if _, err := fio.Precondition(img, span, 4096, 0); err != nil {
		log.Fatal(err)
	}

	r, err := repro.StartRekey(img)
	if err != nil {
		log.Fatal(err)
	}
	r.SetPace(repro.NewPacer(500, 64<<20))

	// The walker's progress gauges are registered by internal/keymgr;
	// family registration is idempotent, so resolving the same series
	// here reads the same atomics the walker publishes into.
	gDone := telemetry.NewGaugeVec("rekey_objects_done",
		"objects the rekey walker has completed", "image").With(img.Image().Name())
	gTotal := telemetry.NewGaugeVec("rekey_objects_total",
		"objects in the rekey walk domain", "image").With(img.Image().Name())
	gDebt := telemetry.NewGaugeVec("rekey_pacer_debt_ns",
		"rekey pacer debt in virtual nanoseconds (0 = unpaced or inside budget)", "image").With(img.Image().Name())

	var wg sync.WaitGroup
	wg.Add(1)
	var res repro.WorkloadResult
	var fioErr error
	go func() {
		defer wg.Done()
		res, fioErr = repro.RunWorkload(repro.WorkloadSpec{
			Pattern: fio.RandWrite, BlockSize: 4096, QueueDepth: 8,
			Span: span, TotalOps: 512,
		}, img, 0)
	}()

	// Drive the walker step by step so the gauges are observably live.
	fmt.Println("rekey walker (live gauges):")
	var at repro.Time
	for i := 0; ; i++ {
		done, end, err := r.Step(at)
		if err != nil {
			log.Fatal(err)
		}
		at = end
		if i%4 == 0 || done {
			fmt.Printf("  objects %d/%d  pacer debt %v\n",
				gDone.Value(), gTotal.Value(), time.Duration(gDebt.Value()))
		}
		if done {
			break
		}
	}
	wg.Wait()
	if fioErr != nil {
		log.Fatal(fioErr)
	}

	fmt.Printf("\nimage state:\n")
	fmt.Printf("  epochs: current=%d live=%v\n", img.CurrentEpoch(), img.Epochs())
	fmt.Printf("  objects: %d x %d B, block %d B, metadata %d B/block\n",
		img.ObjectCount(), img.Image().ObjectSize(), img.Options().BlockSize, img.MetaLen())

	fmt.Printf("\nconcurrent workload: %s\n", res)
	if perOp := res.PerOpString(); perOp != "" {
		fmt.Println(perOp)
	}

	fmt.Println("\nrecent op traces (newest first):")
	recent := repro.RecentTraces()
	if len(recent) > 8 {
		recent = recent[:8]
	}
	for _, rec := range recent {
		fmt.Printf("  %s\n", rec.String())
	}
	if slow := repro.SlowTraces(); len(slow) > 0 {
		if len(slow) > 4 {
			slow = slow[:4]
		}
		fmt.Println("slow ops:")
		for _, rec := range slow {
			fmt.Printf("  %s\n", rec.String())
		}
	}

	fmt.Println("\ntelemetry snapshot:")
	if _, err := repro.WriteMetrics(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// keychain is the demo credential set: the base image was created by
// main under "demo-passphrase"; each tenant clone gets its own.
func keychain() repro.Keychain {
	return repro.Keychain{
		"demo":     []byte("demo-passphrase"),
		"tenant-a": []byte("tenant-a-secret"),
		"tenant-b": []byte("tenant-b-secret"),
	}
}

// seedBase writes a recognizable golden payload and snapshots it.
func seedBase(img *repro.EncryptedImage) []byte {
	golden := make([]byte, 1<<20)
	for i := range golden {
		golden[i] = byte(i*7) | 1
	}
	if _, err := img.WriteAt(0, golden, 0); err != nil {
		log.Fatal(err)
	}
	if _, _, err := img.CreateSnap(0, "golden"); err != nil {
		log.Fatal(err)
	}
	return golden
}

func cloneDemo(client *repro.Client, img *repro.EncryptedImage, scheme core.Scheme, layout core.Layout) {
	golden := seedBase(img)
	keys := keychain()
	opts := repro.Options{Scheme: scheme, Layout: layout}
	a, err := repro.CloneEncryptedImage(client, "rbd", "demo", "golden", "tenant-a", keys, opts)
	if err != nil {
		log.Fatal(err)
	}
	b, err := repro.CloneEncryptedImage(client, "rbd", "demo", "golden", "tenant-b", keys, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cloned demo@golden -> tenant-a, tenant-b (each sealed under its own LUKS container)\n")

	// Read-through: tenant-a sees the golden image without owning a byte.
	buf := make([]byte, 4096)
	if _, err := a.ReadAt(0, buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant-a read-through: buf[1]=0x%02x (golden 0x%02x)\n", buf[1], golden[1])

	// Tenant-a writes its own data — sealed under tenant-a's key only.
	own := bytes.Repeat([]byte{0x42}, 64<<10)
	if _, err := a.WriteAt(0, own, 128<<10); err != nil {
		log.Fatal(err)
	}
	if _, err := b.ReadAt(0, buf, 128<<10); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sibling isolation: tenant-b still reads 0x%02x at tenant-a's write offset\n", buf[1])

	// Crypto-erase tenant-a: mint a new epoch, destroy the old one. Only
	// tenant-a's own writes die; the base and tenant-b are untouched.
	if _, _, err := a.Enc().BeginEpoch(0); err != nil {
		log.Fatal(err)
	}
	if _, err := a.Enc().DropEpoch(0, 0); err != nil {
		log.Fatal(err)
	}
	_, err = a.ReadAt(0, buf, 128<<10)
	fmt.Printf("after tenant-a crypto-erase: own blocks -> %v\n", err)
	if _, err := a.ReadAt(0, buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("                             inherited blocks still read 0x%02x via the parent's key\n", buf[1])
	if _, err := b.ReadAt(0, buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("                             tenant-b fully intact (0x%02x)\n", buf[1])
}

func flattenDemo(client *repro.Client, img *repro.EncryptedImage) {
	golden := seedBase(img)
	keys := keychain()
	a, err := repro.CloneEncryptedImage(client, "rbd", "demo", "golden", "tenant-a",
		keys, repro.Options{Scheme: core.SchemeGCM, Layout: core.LayoutObjectEnd})
	if err != nil {
		log.Fatal(err)
	}
	f, err := repro.StartFlatten(a)
	if err != nil {
		log.Fatal(err)
	}
	f.SetPace(repro.NewPacer(200, 256<<20)) // cap the walker at 200 ops/s, 256 MB/s
	if _, err := f.Run(0); err != nil {
		log.Fatal(err)
	}
	p := f.Progress()
	fmt.Printf("flattened tenant-a: %d objects walked, %d blocks copied up and re-sealed under the child's key\n",
		p.Objects, p.Copied)

	// The base is no longer needed: delete it and reopen the child with
	// only its own credential.
	if _, err := rbd.Remove(0, client, "rbd", "demo"); err != nil {
		log.Fatal(err)
	}
	a2, err := repro.OpenClonedImage(client, "rbd", "tenant-a", repro.Keychain{"tenant-a": keys["tenant-a"]})
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 4096)
	if _, err := a2.ReadAt(0, buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base deleted; tenant-a round-trips alone: buf[1]=0x%02x (golden 0x%02x), parent=%v\n",
		buf[1], golden[1], a2.Parent())
}

func demo(cluster *repro.Cluster, img *repro.EncryptedImage) {
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i*7) | 1
	}
	if _, err := img.WriteAt(0, data, 0); err != nil {
		log.Fatal(err)
	}
	id, _, err := img.CreateSnap(0, "checkpoint")
	if err != nil {
		log.Fatal(err)
	}
	for i := range data {
		data[i] = byte(i*13) | 1
	}
	if _, err := img.WriteAt(0, data, 0); err != nil {
		log.Fatal(err)
	}
	head := make([]byte, 4096)
	if _, err := img.ReadAt(0, head, 0); err != nil {
		log.Fatal(err)
	}
	old := make([]byte, 4096)
	if _, err := img.ReadAtSnap(0, old, 0, id); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot %q id=%d: head[1]=0x%02x snap[1]=0x%02x (independent versions)\n",
		"checkpoint", id, head[1], old[1])

	disk := cluster.DiskStats()
	kv := cluster.KVStats()
	blob := cluster.BlobStats()
	fmt.Printf("cluster counters:\n")
	fmt.Printf("  devices: %v\n", disk)
	fmt.Printf("  objectstore: txns=%d alignedWrites=%d deferredWrites=%d rmwReads=%d\n",
		blob.Txns, blob.AlignedWrites, blob.DeferredWrites, blob.RMWReads)
	fmt.Printf("  kv: applies=%d entries=%d flushes=%d compactions=%d walBytes=%d\n",
		kv.Applies, kv.EntriesWritten, kv.Flushes, kv.Compactions, kv.WALBytes)
}

func rekey(img *repro.EncryptedImage) {
	// Precondition a span so the walker has real work.
	span := img.Size()
	if span > 16<<20 {
		span = 16 << 20
	}
	if _, err := fio.Precondition(img, span, 4096, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("epochs before rotation: current=%d live=%v\n", img.CurrentEpoch(), img.Epochs())

	r, err := repro.StartRekey(img)
	if err != nil {
		log.Fatal(err)
	}
	// Online: an fio workload runs against the image while the walker
	// sweeps it.
	var wg sync.WaitGroup
	wg.Add(1)
	var res repro.WorkloadResult
	var fioErr error
	go func() {
		defer wg.Done()
		res, fioErr = repro.RunWorkload(repro.WorkloadSpec{
			Pattern: fio.RandWrite, BlockSize: 4096, QueueDepth: 8,
			Span: span, TotalOps: 512,
		}, img, 0)
	}()
	if _, err := r.Run(0); err != nil {
		log.Fatal(err)
	}
	wg.Wait()
	if fioErr != nil {
		log.Fatal(fioErr)
	}
	p := r.Progress()
	fmt.Printf("rotated epoch %d -> %d: %d objects walked, %d blocks re-sealed, retired key destroyed\n",
		p.From, p.To, p.Objects, p.Rekeyed)
	fmt.Printf("concurrent workload during rotation: %s\n", res)
	fmt.Printf("epochs after rotation: current=%d live=%v\n", img.CurrentEpoch(), img.Epochs())
}

func discard(img *repro.EncryptedImage) {
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i*11) | 1
	}
	if _, err := img.WriteAt(0, data, 0); err != nil {
		log.Fatal(err)
	}
	// Crypto-erase the middle 8 blocks.
	const off, length = 4 * 4096, 8 * 4096
	if _, err := img.Discard(0, off, length); err != nil {
		log.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := img.ReadAt(0, got, 0); err != nil {
		log.Fatal(err)
	}
	holes := 0
	for b := 0; b < len(got)/4096; b++ {
		if bytes.Equal(got[b*4096:(b+1)*4096], make([]byte, 4096)) {
			holes++
		}
	}
	fmt.Printf("discarded [%d,+%d): %d of %d blocks now read as holes\n", off, length, holes, len(got)/4096)

	// Attacker view: the stored payload of the discarded range is zeros.
	res, _, err := img.Image().Operate(0, 0, 0, []rados.Op{{Kind: rados.OpStat}})
	if err != nil || res[0].Status != rados.StatusOK {
		log.Fatal("stat failed")
	}
	raw, _, err := img.Image().Operate(0, 0, 0, []rados.Op{{Kind: rados.OpRead, Off: 0, Len: res[0].Size}})
	if err != nil {
		log.Fatal(err)
	}
	nonzero := 0
	for _, b := range raw[0].Data {
		if b != 0 {
			nonzero++
		}
	}
	fmt.Printf("storage-level object payload: %d bytes, %d non-zero (ciphertext of retained blocks only)\n",
		len(raw[0].Data), nonzero)

	if err := func() error {
		_, err := img.Discard(0, 100, 4096)
		return err
	}(); err != nil {
		fmt.Printf("unaligned discard rejected as expected: %v\n", err)
	}
}
