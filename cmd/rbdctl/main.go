// Command rbdctl exercises the image and encryption API on an ephemeral
// in-process cluster — a demonstration shell for the library in the
// spirit of the rbd(8) tool.
//
// Usage:
//
//	rbdctl -scheme xts-rand -layout object-end demo
//
// The demo subcommand creates an encrypted image, writes data, snapshots,
// overwrites, reads both versions back and prints storage-level counters.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/core"
)

func main() {
	var (
		schemeName = flag.String("scheme", "xts-rand", "luks2 | xts-rand | gcm-auth | eme2-det | eme2-rand")
		layoutName = flag.String("layout", "object-end", "none | unaligned | object-end | omap")
		sizeMB     = flag.Int64("size", 64, "image size in MiB")
	)
	flag.Parse()
	if flag.Arg(0) != "demo" {
		fmt.Fprintln(os.Stderr, "usage: rbdctl [-scheme S] [-layout L] [-size MB] demo")
		os.Exit(2)
	}
	scheme, err := core.ParseScheme(*schemeName)
	if err != nil {
		log.Fatal(err)
	}
	layout, err := core.ParseLayout(*layoutName)
	if err != nil {
		log.Fatal(err)
	}

	cluster, err := repro.NewCluster(repro.TestClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client := cluster.NewClient("rbdctl")

	img, err := repro.CreateEncryptedImage(client, "rbd", "demo", *sizeMB<<20,
		[]byte("demo-passphrase"), repro.Options{Scheme: scheme, Layout: layout})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("image: rbd/demo  size=%d MiB  scheme=%v  layout=%v  metadata=%d B/block\n",
		img.Size()>>20, scheme, layout, img.MetaLen())

	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i*7) | 1
	}
	if _, err := img.WriteAt(0, data, 0); err != nil {
		log.Fatal(err)
	}
	id, _, err := img.CreateSnap(0, "checkpoint")
	if err != nil {
		log.Fatal(err)
	}
	for i := range data {
		data[i] = byte(i*13) | 1
	}
	if _, err := img.WriteAt(0, data, 0); err != nil {
		log.Fatal(err)
	}
	head := make([]byte, 4096)
	if _, err := img.ReadAt(0, head, 0); err != nil {
		log.Fatal(err)
	}
	old := make([]byte, 4096)
	if _, err := img.ReadAtSnap(0, old, 0, id); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot %q id=%d: head[1]=0x%02x snap[1]=0x%02x (independent versions)\n",
		"checkpoint", id, head[1], old[1])

	disk := cluster.DiskStats()
	kv := cluster.KVStats()
	blob := cluster.BlobStats()
	fmt.Printf("cluster counters:\n")
	fmt.Printf("  devices: %v\n", disk)
	fmt.Printf("  objectstore: txns=%d alignedWrites=%d deferredWrites=%d rmwReads=%d\n",
		blob.Txns, blob.AlignedWrites, blob.DeferredWrites, blob.RMWReads)
	fmt.Printf("  kv: applies=%d entries=%d flushes=%d compactions=%d walBytes=%d\n",
		kv.Applies, kv.EntriesWritten, kv.Flushes, kv.Compactions, kv.WALBytes)
}
