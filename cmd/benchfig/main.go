// Command benchfig regenerates the paper's figures and tables on the
// simulated cluster. Each run prints paper-style tables; README.md
// records the paper-vs-measured comparison and DESIGN.md maps the
// system underneath.
//
// Usage:
//
//	benchfig -fig all                 # everything
//	benchfig -fig 3a                  # read bandwidth (Fig. 3a)
//	benchfig -fig 3b                  # write bandwidth (Fig. 3b)
//	benchfig -fig 4                   # write overhead (Fig. 4)
//	benchfig -fig sectors             # §3.3 sector-count table
//	benchfig -fig ext                 # GCM/EME2 extension sweep
//	benchfig -sizes 4,64,1024 -image 256 -budget 32   # quick look
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/rados"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "which artifact: 3a, 3b, 4, sectors, ext, all")
		sizes   = flag.String("sizes", "", "comma-separated IO sizes in KiB (default: the paper's 4..4096)")
		imageMB = flag.Int64("image", 1024, "image size in MiB")
		budget  = flag.Int64("budget", 128, "per-point IO budget in MiB")
		qd      = flag.Int("qd", 32, "queue depth (paper: 32)")
		cores   = flag.Int("cores", 0, "client datapath parallelism (0 = GOMAXPROCS, 1 = serial pipeline)")
		csv     = flag.Bool("csv", false, "also print CSV")
		quiet   = flag.Bool("quiet", false, "suppress per-point progress")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.ImageBytes = *imageMB << 20
	cfg.OpsBudgetBytes = *budget << 20
	cfg.QueueDepth = *qd
	cfg.Cores = *cores
	if *sizes != "" {
		cfg.IOSizesKB = nil
		for _, tok := range strings.Split(*sizes, ",") {
			kb, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || kb <= 0 {
				fmt.Fprintf(os.Stderr, "benchfig: bad size %q\n", tok)
				os.Exit(2)
			}
			cfg.IOSizesKB = append(cfg.IOSizesKB, kb)
		}
	}

	if *fig == "sectors" {
		fmt.Print(bench.SectorTable())
		return
	}
	if *fig == "ext" {
		cfg.Schemes = bench.ExtensionSchemes()
		// The authenticated scheme must read back real ciphertext, so the
		// data areas cannot be cost-only; keep the image modest.
		cfg.Cluster = func() rados.ClusterConfig {
			c := bench.PaperCluster()
			c.EphemeralData = false
			return c
		}
		if *imageMB > 384 {
			fmt.Fprintln(os.Stderr, "benchfig: ext retains data in RAM; capping image at 384 MiB")
			cfg.ImageBytes = 384 << 20
		}
	}

	progress := func(line string) { fmt.Fprintln(os.Stderr, line) }
	if *quiet {
		progress = nil
	}
	reads, writes, err := bench.Sweep(cfg, progress)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
		os.Exit(1)
	}

	show := func(name string) bool { return *fig == "all" || *fig == "ext" || *fig == name }
	if show("3a") {
		fmt.Println(bench.FormatSeries("Figure 3a: random read bandwidth", reads))
	}
	if show("3b") {
		fmt.Println(bench.FormatSeries("Figure 3b: random write bandwidth", writes))
	}
	if show("4") {
		fmt.Println(bench.FormatOverhead("Figure 4: write performance overhead", writes, "LUKS2"))
	}
	if *fig == "all" {
		fmt.Println(bench.FormatOverhead("Read overhead (§3.3: object end within ~3%)", reads, "LUKS2"))
		fmt.Println(bench.SectorTable())
	}
	if *csv {
		fmt.Println(bench.CSV(reads))
		fmt.Println(bench.CSV(writes))
	}
}
