// Command vetrepo runs the repo's invariant analyzers (see
// internal/analysis) in two modes:
//
// Standalone, for developers — loads the module itself, tests included:
//
//	go run ./cmd/vetrepo ./...
//
// Vet tool, for CI and `go vet` integration — cmd/go drives the same
// binary once per package with its build cache and export data:
//
//	go build -o vetrepo ./cmd/vetrepo
//	go vet -vettool=$(pwd)/vetrepo ./...
//
// cmd/go recognizes a vet tool by two contracts, both handled here: it
// first invokes the tool with -V=full expecting a reproducible version
// line for cache keying, then once per package with a single vet.cfg
// path argument (see internal/analysis/unit.go). Any other argument
// list selects standalone mode.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vetrepo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	versionFlag := fs.String("V", "", "print version and exit (cmd/go vet tool protocol; use -V=full)")
	flagsFlag := fs.Bool("flags", false, "print the tool's analyzer flags as JSON (cmd/go vet tool protocol)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: vetrepo [packages]   (standalone; defaults to ./...)\n")
		fmt.Fprintf(stderr, "       vetrepo <vet.cfg>    (as go vet -vettool)\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *versionFlag != "" {
		// cmd/go requires "<progname> version <tag>"; for an unstamped
		// tool the tag is "devel" and the last field must carry a
		// buildID=<hex> cache key. Hashing our own executable makes the
		// key change exactly when the tool does.
		fmt.Fprintf(stdout, "vetrepo version devel buildID=%s\n", selfID())
		return 0
	}
	if *flagsFlag {
		// cmd/go asks for the tool's analyzer flag inventory so it can
		// accept them on the `go vet` command line; the suite has none.
		fmt.Fprintln(stdout, "[]")
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return analysis.UnitMain(rest[0], suite.Analyzers, stderr)
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := analysis.RunStandalone(".", patterns, suite.Analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "vetrepo: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "vetrepo: %d finding(s)\n", len(findings))
		return 2
	}
	return 0
}

// selfID hashes the running executable into a hex build ID.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "0000000000000000"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "0000000000000000"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "0000000000000000"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}
