// Command benchgate is the CI benchmark-regression gate: it compares two
// `go test -bench` outputs (merge-base vs PR head), fails on a >15%
// median time regression or any allocs/op regression on a benchmark
// present in both, and writes the comparison as JSON (the BENCH_pr.json
// artifact that records the perf trajectory PR over PR).
//
// Usage:
//
//	benchgate -base base.txt -head head.txt -out BENCH_pr.json [-time-threshold 1.15]
//
// Run the benchmarks with -count >= 3 so the medians mean something;
// benchstat remains the human-readable companion view.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// run is one benchmark result line.
type run struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasMem      bool
}

// benchLine matches `BenchmarkName-8  100  123 ns/op ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func parseFile(path string) (map[string][]run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]run)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, rest := m[1], strings.Fields(m[2])
		var r run
		ok := false
		for i := 0; i+1 < len(rest); i++ {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				continue
			}
			switch rest[i+1] {
			case "ns/op":
				r.nsPerOp, ok = v, true
			case "B/op":
				r.bytesPerOp, r.hasMem = v, true
			case "allocs/op":
				r.allocsPerOp, r.hasMem = v, true
			}
		}
		if ok {
			out[name] = append(out[name], r)
		}
	}
	return out, sc.Err()
}

func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func summarize(runs []run) (ns, bytes, allocs float64, hasMem bool) {
	var nsV, bV, aV []float64
	for _, r := range runs {
		nsV = append(nsV, r.nsPerOp)
		if r.hasMem {
			hasMem = true
			bV = append(bV, r.bytesPerOp)
			aV = append(aV, r.allocsPerOp)
		}
	}
	return median(nsV), median(bV), median(aV), hasMem
}

// entry is one benchmark's comparison in the JSON artifact.
type entry struct {
	Name        string  `json:"name"`
	BaseNsOp    float64 `json:"base_ns_op,omitempty"`
	HeadNsOp    float64 `json:"head_ns_op"`
	TimeRatio   float64 `json:"time_ratio,omitempty"`
	BaseAllocs  float64 `json:"base_allocs_op,omitempty"`
	HeadAllocs  float64 `json:"head_allocs_op,omitempty"`
	HeadBytesOp float64 `json:"head_bytes_op,omitempty"`
	Status      string  `json:"status"` // ok | regressed | new | removed
	Detail      string  `json:"detail,omitempty"`
}

type report struct {
	TimeThreshold float64 `json:"time_threshold"`
	Failures      int     `json:"failures"`
	Benchmarks    []entry `json:"benchmarks"`
}

func main() {
	basePath := flag.String("base", "", "bench output of the merge base")
	headPath := flag.String("head", "", "bench output of the PR head")
	outPath := flag.String("out", "", "JSON artifact path (optional)")
	timeThreshold := flag.Float64("time-threshold", 1.15, "fail when head/base ns/op exceeds this")
	allocSlack := flag.Float64("alloc-slack", 0.5, "absolute allocs/op increase tolerated before failing")
	flag.Parse()
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required")
		os.Exit(2)
	}

	// A missing or empty base is not a comparison error: a freshly added
	// benchmark (or a whole new package, absent from the merge base) has
	// nothing to regress against, so every head benchmark is reported as
	// "new" and the gate passes on the time/alloc axes it can check.
	base, err := parseFile(*basePath)
	switch {
	case err == nil:
	case os.IsNotExist(err):
		fmt.Fprintf(os.Stderr, "benchgate: base %s missing; treating every head benchmark as new\n", *basePath)
		base = map[string][]run{}
	default:
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(base) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: base has no parsed benchmarks; every head benchmark is new")
	}
	head, err := parseFile(*headPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(head) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmarks parsed from head — wrong -bench pattern?")
		os.Exit(2)
	}

	names := make([]string, 0, len(head))
	for name := range head {
		names = append(names, name)
	}
	for name := range base {
		if _, ok := head[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	rep := report{TimeThreshold: *timeThreshold}
	for _, name := range names {
		hRuns, inHead := head[name]
		bRuns, inBase := base[name]
		e := entry{Name: name}
		switch {
		case !inHead:
			bNs, _, bAllocs, _ := summarize(bRuns)
			e.BaseNsOp, e.BaseAllocs, e.Status = bNs, bAllocs, "removed"
			e.Detail = "benchmark disappeared from head (rename or deletion?)"
		case !inBase:
			hNs, hBytes, hAllocs, _ := summarize(hRuns)
			e.HeadNsOp, e.HeadBytesOp, e.HeadAllocs, e.Status = hNs, hBytes, hAllocs, "new"
		default:
			hNs, hBytes, hAllocs, hMem := summarize(hRuns)
			bNs, _, bAllocs, bMem := summarize(bRuns)
			e.BaseNsOp, e.HeadNsOp = bNs, hNs
			e.HeadBytesOp = hBytes
			e.BaseAllocs, e.HeadAllocs = bAllocs, hAllocs
			if bNs > 0 {
				e.TimeRatio = hNs / bNs
			}
			e.Status = "ok"
			var problems []string
			if bNs > 0 && e.TimeRatio > *timeThreshold {
				problems = append(problems, fmt.Sprintf("time %.0f -> %.0f ns/op (%.2fx > %.2fx)",
					bNs, hNs, e.TimeRatio, *timeThreshold))
			}
			if hMem && bMem && hAllocs > bAllocs+*allocSlack {
				problems = append(problems, fmt.Sprintf("allocs %.1f -> %.1f /op", bAllocs, hAllocs))
			}
			if len(problems) > 0 {
				e.Status = "regressed"
				e.Detail = strings.Join(problems, "; ")
				rep.Failures++
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}

	for _, e := range rep.Benchmarks {
		switch e.Status {
		case "regressed":
			fmt.Printf("FAIL %-60s %s\n", e.Name, e.Detail)
		case "new":
			fmt.Printf("new  %-60s %.0f ns/op, %.1f allocs/op\n", e.Name, e.HeadNsOp, e.HeadAllocs)
		case "removed":
			fmt.Printf("gone %-60s %s\n", e.Name, e.Detail)
		default:
			fmt.Printf("ok   %-60s %.2fx, allocs %.1f -> %.1f\n", e.Name, e.TimeRatio, e.BaseAllocs, e.HeadAllocs)
		}
	}

	if *outPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}

	if rep.Failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed\n", rep.Failures)
		os.Exit(1)
	}
	fmt.Println("benchgate: no regressions")
}
