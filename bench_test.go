// Benchmarks regenerating the paper's evaluation artifacts as testing.B
// benches — one benchmark family per figure/table, plus the ablations.
// go test -bench reports real ns/op of the full stack (crypto and engines
// execute for real) and, via ReportMetric, the virtual-time bandwidth
// that corresponds to the paper's y-axes. cmd/benchfig runs the full
// high-resolution sweep.
package repro

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto/eme"
	"repro/internal/crypto/essiv"
	"repro/internal/crypto/xts"
	"repro/internal/dmcrypt"
	"repro/internal/fio"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/simdisk"
	"repro/internal/vtime"
)

// benchCluster builds a small paper-shaped cluster (3 OSDs, fewer disks
// to keep bench setup fast) with an encrypted, preconditioned image.
func benchCluster(b *testing.B, scheme core.Scheme, layout core.Layout) (*core.EncryptedImage, vtime.Time, func()) {
	b.Helper()
	cfg := rados.DefaultClusterConfig()
	cfg.DisksPerOSD = 3
	cfg.DiskSectors = (4 << 30) / simdisk.SectorSize
	cfg.PGNum = 64
	cfg.EphemeralData = true
	cluster, err := rados.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	client := cluster.NewClient("bench")
	if _, err := rbd.Create(0, client, "rbd", "img", 256<<20); err != nil {
		b.Fatal(err)
	}
	img, _, err := rbd.Open(0, client, "rbd", "img")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := core.Format(0, img, []byte("b"), core.Options{Scheme: scheme, Layout: layout}); err != nil {
		b.Fatal(err)
	}
	enc, _, err := core.Load(0, img, []byte("b"))
	if err != nil {
		b.Fatal(err)
	}
	now, err := fio.Precondition(enc, 0, core.DefaultBlockSize, 0)
	if err != nil {
		b.Fatal(err)
	}
	return enc, now, cluster.Close
}

func figureSchemes() []struct {
	Name   string
	Scheme core.Scheme
	Layout core.Layout
} {
	return []struct {
		Name   string
		Scheme core.Scheme
		Layout core.Layout
	}{
		{"LUKS2", core.SchemeLUKS2, core.LayoutNone},
		{"Unaligned", core.SchemeXTSRand, core.LayoutUnaligned},
		{"ObjectEnd", core.SchemeXTSRand, core.LayoutObjectEnd},
		{"OMAP", core.SchemeXTSRand, core.LayoutOMAP},
	}
}

func runFigureBench(b *testing.B, pattern fio.Pattern, scheme core.Scheme, layout core.Layout, kb int64) {
	enc, now, closeFn := benchCluster(b, scheme, layout)
	defer closeFn()
	b.ResetTimer()
	res, err := fio.Run(fio.Spec{
		Pattern:    pattern,
		BlockSize:  kb << 10,
		QueueDepth: 32,
		TotalOps:   b.N,
	}, enc, now)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.SetBytes(kb << 10)
	b.ReportMetric(res.MBps(), "virtualMB/s")
	b.ReportMetric(float64(res.Latencies.P99.Microseconds()), "p99_us")
}

// BenchmarkFig3aReadBandwidth regenerates Figure 3a points.
func BenchmarkFig3aReadBandwidth(b *testing.B) {
	for _, s := range figureSchemes() {
		for _, kb := range []int64{4, 64, 1024} {
			b.Run(fmt.Sprintf("%s/%dK", s.Name, kb), func(b *testing.B) {
				runFigureBench(b, fio.RandRead, s.Scheme, s.Layout, kb)
			})
		}
	}
}

// BenchmarkFig3bWriteBandwidth regenerates Figure 3b points.
func BenchmarkFig3bWriteBandwidth(b *testing.B) {
	for _, s := range figureSchemes() {
		for _, kb := range []int64{4, 64, 1024} {
			b.Run(fmt.Sprintf("%s/%dK", s.Name, kb), func(b *testing.B) {
				runFigureBench(b, fio.RandWrite, s.Scheme, s.Layout, kb)
			})
		}
	}
}

// BenchmarkFig4WriteOverhead reports the Figure 4 metric directly: the
// write slowdown of each IV placement vs the LUKS2 baseline at one size.
func BenchmarkFig4WriteOverhead(b *testing.B) {
	for _, s := range figureSchemes()[1:] {
		b.Run(s.Name+"/64K", func(b *testing.B) {
			base, baseNow, baseClose := benchCluster(b, core.SchemeLUKS2, core.LayoutNone)
			defer baseClose()
			enc, now, closeFn := benchCluster(b, s.Scheme, s.Layout)
			defer closeFn()
			b.ResetTimer()
			spec := fio.Spec{Pattern: fio.RandWrite, BlockSize: 64 << 10, QueueDepth: 32, TotalOps: b.N}
			rb, err := fio.Run(spec, base, baseNow)
			if err != nil {
				b.Fatal(err)
			}
			rs, err := fio.Run(spec, enc, now)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if rb.MBps() > 0 {
				b.ReportMetric(100*(1-rs.MBps()/rb.MBps()), "overhead_%")
			}
		})
	}
}

// pipelineCombos is every scheme with each of its valid layouts.
func pipelineCombos() []struct {
	Name   string
	Scheme core.Scheme
	Layout core.Layout
} {
	return []struct {
		Name   string
		Scheme core.Scheme
		Layout core.Layout
	}{
		{"luks2-none", core.SchemeLUKS2, core.LayoutNone},
		{"eme2-det-none", core.SchemeEME2Det, core.LayoutNone},
		{"xts-rand-unaligned", core.SchemeXTSRand, core.LayoutUnaligned},
		{"xts-rand-object-end", core.SchemeXTSRand, core.LayoutObjectEnd},
		{"xts-rand-omap", core.SchemeXTSRand, core.LayoutOMAP},
		{"gcm-auth-unaligned", core.SchemeGCM, core.LayoutUnaligned},
		{"gcm-auth-object-end", core.SchemeGCM, core.LayoutObjectEnd},
		{"gcm-auth-omap", core.SchemeGCM, core.LayoutOMAP},
		{"eme2-rand-unaligned", core.SchemeEME2Rand, core.LayoutUnaligned},
		{"eme2-rand-object-end", core.SchemeEME2Rand, core.LayoutObjectEnd},
		{"eme2-rand-omap", core.SchemeEME2Rand, core.LayoutOMAP},
	}
}

// pipelineCluster is a compact cluster for the pipeline benchmarks: the
// IO mix is sized so crypto (the pipeline under test) dominates, and the
// image is small enough that the non-ephemeral open benches fit in RAM.
func pipelineCluster(b *testing.B, scheme core.Scheme, layout core.Layout, ephemeral bool) (*core.EncryptedImage, func()) {
	b.Helper()
	cfg := rados.DefaultClusterConfig()
	cfg.DisksPerOSD = 2
	cfg.DiskSectors = (1 << 30) / simdisk.SectorSize
	cfg.PGNum = 16
	cfg.EphemeralData = ephemeral
	cfg.Blob.KVBytes = 256 << 20
	cfg.Blob.KV.WALBytes = 16 << 20
	cluster, err := rados.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	client := cluster.NewClient("pipe-bench")
	if _, err := rbd.Create(0, client, "rbd", "pipe", 64<<20); err != nil {
		b.Fatal(err)
	}
	img, _, err := rbd.Open(0, client, "rbd", "pipe")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := core.Format(0, img, []byte("b"), core.Options{Scheme: scheme, Layout: layout}); err != nil {
		b.Fatal(err)
	}
	enc, _, err := core.Load(0, img, []byte("b"))
	if err != nil {
		b.Fatal(err)
	}
	return enc, cluster.Close
}

// pipelineModes compares the serial datapath (ClientCores=1, the old
// per-block loop's execution model) against the parallel worker pool.
// The ≥2x seal/open speedup for xts-rand and gcm-auth only shows on a
// multi-core runner; on one core the two modes should be within noise
// (the pool hands the whole range to the calling goroutine).
func pipelineModes() []struct {
	Name  string
	Cores int
} {
	return []struct {
		Name  string
		Cores int
	}{
		{"serial", 1},
		{"parallel", runtime.GOMAXPROCS(0)},
	}
}

// BenchmarkSealPipeline measures the full encrypted write path (seal +
// layout staging + RADOS transaction) with 1 MiB IOs, serial vs
// parallel, across every scheme × layout.
func BenchmarkSealPipeline(b *testing.B) {
	for _, c := range pipelineCombos() {
		for _, mode := range pipelineModes() {
			b.Run(c.Name+"/"+mode.Name, func(b *testing.B) {
				enc, closeFn := pipelineCluster(b, c.Scheme, c.Layout, true)
				defer closeFn()
				enc.SetParallelism(mode.Cores)
				buf := make([]byte, 1<<20)
				for i := range buf {
					buf[i] = byte(i*131) | 1
				}
				b.SetBytes(1 << 20)
				b.ReportAllocs()
				b.ResetTimer()
				now := vtime.Time(0)
				for i := 0; i < b.N; i++ {
					end, err := enc.WriteAt(now, buf, int64(i%32)<<21)
					if err != nil {
						b.Fatal(err)
					}
					now = end
				}
			})
		}
	}
}

// BenchmarkOpenPipeline measures the full encrypted read path (RADOS
// fetch + presence parse + open) with 1 MiB IOs over a preconditioned
// region. Non-ephemeral data areas: the authenticated scheme must read
// back real ciphertext.
func BenchmarkOpenPipeline(b *testing.B) {
	for _, c := range pipelineCombos() {
		for _, mode := range pipelineModes() {
			b.Run(c.Name+"/"+mode.Name, func(b *testing.B) {
				enc, closeFn := pipelineCluster(b, c.Scheme, c.Layout, false)
				defer closeFn()
				enc.SetParallelism(mode.Cores)
				const span = 32 << 20
				now, err := fio.Precondition(enc, span, core.DefaultBlockSize, 0)
				if err != nil {
					b.Fatal(err)
				}
				buf := make([]byte, 1<<20)
				b.SetBytes(1 << 20)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					end, err := enc.ReadAt(now, buf, int64(i%32)<<20)
					if err != nil {
						b.Fatal(err)
					}
					now = end
				}
			})
		}
	}
}

// BenchmarkSequentialVsRandom checks the §3.3 note that sequential IO
// behaves like random IO at large sizes.
func BenchmarkSequentialVsRandom(b *testing.B) {
	for _, pattern := range []fio.Pattern{fio.RandWrite, fio.SeqWrite} {
		b.Run(pattern.String()+"/1024K", func(b *testing.B) {
			runFigureBench(b, pattern, core.SchemeXTSRand, core.LayoutObjectEnd, 1024)
		})
	}
}

// BenchmarkTheoreticalSectorCounts exercises the §3.3 analytic model (it
// is pure computation; the numbers are what matter — see README.md).
func BenchmarkTheoreticalSectorCounts(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		for _, kb := range []int64{4, 32, 4096} {
			sink += core.SectorCount(core.LayoutObjectEnd, kb<<10, 4096, 16)
			sink += core.SectorCount(core.LayoutUnaligned, kb<<10, 4096, 16)
		}
	}
	if sink == 0 {
		b.Fatal("unexpected")
	}
}

// BenchmarkCipherModes compares the sector ciphers of §2 on real CPU:
// XTS (narrow block), ESSIV-CBC (historical), EME2-style (wide block),
// and GCM (authenticated). This is ablation A-C.
func BenchmarkCipherModes(b *testing.B) {
	key64 := bytes.Repeat([]byte{7}, 64)
	pt := make([]byte, 4096)
	ct := make([]byte, 4096)
	for i := range pt {
		pt[i] = byte(i)
	}

	b.Run("xts-4K", func(b *testing.B) {
		c, err := xts.NewCipher(key64)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(4096)
		for i := 0; i < b.N; i++ {
			if err := c.Encrypt(ct, pt, xts.SectorTweak(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("essiv-cbc-4K", func(b *testing.B) {
		c, err := essiv.New(key64[:32])
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(4096)
		for i := 0; i < b.N; i++ {
			if err := c.EncryptSector(ct, pt, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eme2-wide-4K", func(b *testing.B) {
		c, err := eme.New(key64[:32])
		if err != nil {
			b.Fatal(err)
		}
		var tweak [16]byte
		b.SetBytes(4096)
		for i := 0; i < b.N; i++ {
			tweak[0] = byte(i)
			if err := c.Encrypt(ct, pt, tweak); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDmIntegrityJournal is ablation A-J: the §2.3 related-work
// configuration (dm-crypt + dm-integrity) with and without the journal,
// demonstrating the ~2x slowdown the paper contrasts with its
// transaction-based approach.
func BenchmarkDmIntegrityJournal(b *testing.B) {
	for _, journaled := range []bool{false, true} {
		name := "direct"
		if journaled {
			name = "journaled"
		}
		b.Run(name+"/64K", func(b *testing.B) {
			disk := simdisk.New("nvme", (2<<30)/simdisk.SectorSize, simdisk.DefaultCostModel())
			g := dmcrypt.NewIntegrity(dmcrypt.DiskDevice{Disk: disk}, journaled)
			c, err := dmcrypt.NewCryptRandIV(g, bytes.Repeat([]byte{3}, 64))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			res, err := fio.Run(fio.Spec{
				Pattern: fio.RandWrite, BlockSize: 64 << 10, QueueDepth: 8, TotalOps: b.N,
			}, c, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.SetBytes(64 << 10)
			b.ReportMetric(res.MBps(), "virtualMB/s")
		})
	}
}

// BenchmarkLayoutPlanning measures the pure client-side cost of building
// the per-object op vectors (no cluster involved) — the CPU the paper's
// modification adds to libRBD.
func BenchmarkLayoutPlanning(b *testing.B) {
	enc, _, closeFn := benchCluster(b, core.SchemeXTSRand, core.LayoutObjectEnd)
	defer closeFn()
	buf := make([]byte, 64<<10)
	b.SetBytes(64 << 10)
	b.ResetTimer()
	now := vtime.Time(1 << 40)
	for i := 0; i < b.N; i++ {
		end, err := enc.WriteAt(now, buf, int64(i%64)<<20)
		if err != nil {
			b.Fatal(err)
		}
		now = end
	}
}
