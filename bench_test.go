// Benchmarks regenerating the paper's evaluation artifacts as testing.B
// benches — one benchmark family per figure/table, plus the ablations.
// go test -bench reports real ns/op of the full stack (crypto and engines
// execute for real) and, via ReportMetric, the virtual-time bandwidth
// that corresponds to the paper's y-axes. cmd/benchfig runs the full
// high-resolution sweep.
package repro

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto/eme"
	"repro/internal/crypto/essiv"
	"repro/internal/crypto/xts"
	"repro/internal/dmcrypt"
	"repro/internal/fio"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/simdisk"
	"repro/internal/vtime"
)

// benchCluster builds a small paper-shaped cluster (3 OSDs, fewer disks
// to keep bench setup fast) with an encrypted, preconditioned image.
func benchCluster(b *testing.B, scheme core.Scheme, layout core.Layout) (*core.EncryptedImage, vtime.Time, func()) {
	b.Helper()
	cfg := rados.DefaultClusterConfig()
	cfg.DisksPerOSD = 3
	cfg.DiskSectors = (4 << 30) / simdisk.SectorSize
	cfg.PGNum = 64
	cfg.EphemeralData = true
	cluster, err := rados.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	client := cluster.NewClient("bench")
	if _, err := rbd.Create(0, client, "rbd", "img", 256<<20); err != nil {
		b.Fatal(err)
	}
	img, _, err := rbd.Open(0, client, "rbd", "img")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := core.Format(0, img, []byte("b"), core.Options{Scheme: scheme, Layout: layout}); err != nil {
		b.Fatal(err)
	}
	enc, _, err := core.Load(0, img, []byte("b"))
	if err != nil {
		b.Fatal(err)
	}
	now, err := fio.Precondition(enc, 0, core.DefaultBlockSize, 0)
	if err != nil {
		b.Fatal(err)
	}
	return enc, now, cluster.Close
}

func figureSchemes() []struct {
	Name   string
	Scheme core.Scheme
	Layout core.Layout
} {
	return []struct {
		Name   string
		Scheme core.Scheme
		Layout core.Layout
	}{
		{"LUKS2", core.SchemeLUKS2, core.LayoutNone},
		{"Unaligned", core.SchemeXTSRand, core.LayoutUnaligned},
		{"ObjectEnd", core.SchemeXTSRand, core.LayoutObjectEnd},
		{"OMAP", core.SchemeXTSRand, core.LayoutOMAP},
	}
}

func runFigureBench(b *testing.B, pattern fio.Pattern, scheme core.Scheme, layout core.Layout, kb int64) {
	enc, now, closeFn := benchCluster(b, scheme, layout)
	defer closeFn()
	b.ResetTimer()
	res, err := fio.Run(fio.Spec{
		Pattern:    pattern,
		BlockSize:  kb << 10,
		QueueDepth: 32,
		TotalOps:   b.N,
	}, enc, now)
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.SetBytes(kb << 10)
	b.ReportMetric(res.MBps(), "virtualMB/s")
	b.ReportMetric(float64(res.Latencies.P99.Microseconds()), "p99_us")
}

// BenchmarkFig3aReadBandwidth regenerates Figure 3a points.
func BenchmarkFig3aReadBandwidth(b *testing.B) {
	for _, s := range figureSchemes() {
		for _, kb := range []int64{4, 64, 1024} {
			b.Run(fmt.Sprintf("%s/%dK", s.Name, kb), func(b *testing.B) {
				runFigureBench(b, fio.RandRead, s.Scheme, s.Layout, kb)
			})
		}
	}
}

// BenchmarkFig3bWriteBandwidth regenerates Figure 3b points.
func BenchmarkFig3bWriteBandwidth(b *testing.B) {
	for _, s := range figureSchemes() {
		for _, kb := range []int64{4, 64, 1024} {
			b.Run(fmt.Sprintf("%s/%dK", s.Name, kb), func(b *testing.B) {
				runFigureBench(b, fio.RandWrite, s.Scheme, s.Layout, kb)
			})
		}
	}
}

// BenchmarkFig4WriteOverhead reports the Figure 4 metric directly: the
// write slowdown of each IV placement vs the LUKS2 baseline at one size.
func BenchmarkFig4WriteOverhead(b *testing.B) {
	for _, s := range figureSchemes()[1:] {
		b.Run(s.Name+"/64K", func(b *testing.B) {
			base, baseNow, baseClose := benchCluster(b, core.SchemeLUKS2, core.LayoutNone)
			defer baseClose()
			enc, now, closeFn := benchCluster(b, s.Scheme, s.Layout)
			defer closeFn()
			b.ResetTimer()
			spec := fio.Spec{Pattern: fio.RandWrite, BlockSize: 64 << 10, QueueDepth: 32, TotalOps: b.N}
			rb, err := fio.Run(spec, base, baseNow)
			if err != nil {
				b.Fatal(err)
			}
			rs, err := fio.Run(spec, enc, now)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if rb.MBps() > 0 {
				b.ReportMetric(100*(1-rs.MBps()/rb.MBps()), "overhead_%")
			}
		})
	}
}

// BenchmarkSequentialVsRandom checks the §3.3 note that sequential IO
// behaves like random IO at large sizes.
func BenchmarkSequentialVsRandom(b *testing.B) {
	for _, pattern := range []fio.Pattern{fio.RandWrite, fio.SeqWrite} {
		b.Run(pattern.String()+"/1024K", func(b *testing.B) {
			runFigureBench(b, pattern, core.SchemeXTSRand, core.LayoutObjectEnd, 1024)
		})
	}
}

// BenchmarkTheoreticalSectorCounts exercises the §3.3 analytic model (it
// is pure computation; the numbers are what matter — see EXPERIMENTS.md).
func BenchmarkTheoreticalSectorCounts(b *testing.B) {
	var sink int64
	for i := 0; i < b.N; i++ {
		for _, kb := range []int64{4, 32, 4096} {
			sink += core.SectorCount(core.LayoutObjectEnd, kb<<10, 4096, 16)
			sink += core.SectorCount(core.LayoutUnaligned, kb<<10, 4096, 16)
		}
	}
	if sink == 0 {
		b.Fatal("unexpected")
	}
}

// BenchmarkCipherModes compares the sector ciphers of §2 on real CPU:
// XTS (narrow block), ESSIV-CBC (historical), EME2-style (wide block),
// and GCM (authenticated). This is ablation A-C.
func BenchmarkCipherModes(b *testing.B) {
	key64 := bytes.Repeat([]byte{7}, 64)
	pt := make([]byte, 4096)
	ct := make([]byte, 4096)
	for i := range pt {
		pt[i] = byte(i)
	}

	b.Run("xts-4K", func(b *testing.B) {
		c, err := xts.NewCipher(key64)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(4096)
		for i := 0; i < b.N; i++ {
			if err := c.Encrypt(ct, pt, xts.SectorTweak(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("essiv-cbc-4K", func(b *testing.B) {
		c, err := essiv.New(key64[:32])
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(4096)
		for i := 0; i < b.N; i++ {
			if err := c.EncryptSector(ct, pt, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("eme2-wide-4K", func(b *testing.B) {
		c, err := eme.New(key64[:32])
		if err != nil {
			b.Fatal(err)
		}
		var tweak [16]byte
		b.SetBytes(4096)
		for i := 0; i < b.N; i++ {
			tweak[0] = byte(i)
			if err := c.Encrypt(ct, pt, tweak); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDmIntegrityJournal is ablation A-J: the §2.3 related-work
// configuration (dm-crypt + dm-integrity) with and without the journal,
// demonstrating the ~2x slowdown the paper contrasts with its
// transaction-based approach.
func BenchmarkDmIntegrityJournal(b *testing.B) {
	for _, journaled := range []bool{false, true} {
		name := "direct"
		if journaled {
			name = "journaled"
		}
		b.Run(name+"/64K", func(b *testing.B) {
			disk := simdisk.New("nvme", (2<<30)/simdisk.SectorSize, simdisk.DefaultCostModel())
			g := dmcrypt.NewIntegrity(dmcrypt.DiskDevice{Disk: disk}, journaled)
			c, err := dmcrypt.NewCryptRandIV(g, bytes.Repeat([]byte{3}, 64))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			res, err := fio.Run(fio.Spec{
				Pattern: fio.RandWrite, BlockSize: 64 << 10, QueueDepth: 8, TotalOps: b.N,
			}, c, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.SetBytes(64 << 10)
			b.ReportMetric(res.MBps(), "virtualMB/s")
		})
	}
}

// BenchmarkLayoutPlanning measures the pure client-side cost of building
// the per-object op vectors (no cluster involved) — the CPU the paper's
// modification adds to libRBD.
func BenchmarkLayoutPlanning(b *testing.B) {
	enc, _, closeFn := benchCluster(b, core.SchemeXTSRand, core.LayoutObjectEnd)
	defer closeFn()
	buf := make([]byte, 64<<10)
	b.SetBytes(64 << 10)
	b.ResetTimer()
	now := vtime.Time(1 << 40)
	for i := 0; i < b.N; i++ {
		end, err := enc.WriteAt(now, buf, int64(i%64)<<20)
		if err != nil {
			b.Fatal(err)
		}
		now = end
	}
}
