// Example goldenimage: the paper's headline virtual-disk-encryption
// scenario (§1, §4, internal/clone). A provider prepares ONE encrypted
// base image, snapshots it, and hands every tenant a copy-on-write
// clone sealed under the tenant's own key: reads fall through the layer
// chain and decrypt inherited blocks with the provider's key, tenant
// writes are sealed under the tenant's key only, crypto-erase is
// per-tenant, and an online flatten migrates a tenant fully onto its
// own key so the base can be retired. dm-crypt under the VM cannot
// express any of this — both layers would have to share one key.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/rbd"
)

func main() {
	cluster, err := repro.NewCluster(repro.TestClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client := cluster.NewClient("provider")

	// --- The provider builds and freezes the golden image. ---
	base, err := repro.CreateEncryptedImage(client, "rbd", "golden", 16<<20,
		[]byte("provider-master-key"), repro.Options{Scheme: repro.SchemeXTSRand, Layout: repro.LayoutObjectEnd})
	if err != nil {
		log.Fatal(err)
	}
	osImage := make([]byte, 8<<20)
	for i := range osImage {
		osImage[i] = byte(i*13) | 1 // stand-in for a provisioned OS
	}
	if _, err := base.WriteAt(0, osImage, 0); err != nil {
		log.Fatal(err)
	}
	if _, _, err := base.CreateSnap(0, "v1"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("provider: golden image written and snapshotted as golden@v1")

	// --- Each tenant gets a clone under its OWN key (and even its own
	// cipher scheme: tenant-b picks authenticated GCM). ---
	keys := repro.Keychain{
		"golden":   []byte("provider-master-key"),
		"tenant-a": []byte("alice-secret"),
		"tenant-b": []byte("bob-secret"),
	}
	a, err := repro.CloneEncryptedImage(client, "rbd", "golden", "v1", "tenant-a",
		keys, repro.Options{Scheme: repro.SchemeXTSRand, Layout: repro.LayoutObjectEnd})
	if err != nil {
		log.Fatal(err)
	}
	b, err := repro.CloneEncryptedImage(client, "rbd", "golden", "v1", "tenant-b",
		keys, repro.Options{Scheme: repro.SchemeGCM, Layout: repro.LayoutOMAP})
	if err != nil {
		log.Fatal(err)
	}

	// Clones boot instantly: no data was copied, reads fall through.
	probe := make([]byte, 4096)
	if _, err := a.ReadAt(0, probe, 1<<20); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant-a boots from the shared base: probe[0]=0x%02x (no bytes copied)\n", probe[0])

	// Tenant writes are private: sealed under the tenant's key, in the
	// tenant's objects. A sub-block write copies the covering block up
	// and re-seals it under the tenant's key.
	if _, err := a.WriteAt(0, []byte(bytes.Repeat([]byte("alice"), 512)[:512]), 1<<20); err != nil {
		log.Fatal(err)
	}
	if _, err := b.ReadAt(0, probe, 1<<20); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant-b is isolated from tenant-a's write: probe[0]=0x%02x\n", probe[0])

	// --- Per-tenant crypto-erase: destroying tenant-a's key epoch kills
	// ONLY tenant-a's own blocks. ---
	if _, _, err := a.Enc().BeginEpoch(0); err != nil {
		log.Fatal(err)
	}
	if _, err := a.Enc().DropEpoch(0, 0); err != nil {
		log.Fatal(err)
	}
	_, err = a.ReadAt(0, probe, 1<<20)
	fmt.Printf("tenant-a crypto-erased: own blocks read -> %v\n", err)
	if !errors.Is(err, core.ErrKeyErased) {
		log.Fatalf("expected ErrKeyErased, got %v", err)
	}
	if _, err := a.ReadAt(0, probe, 2<<20); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant-a still reads inherited blocks via the provider's key: 0x%02x\n", probe[0])

	// --- Tenant-b outgrows the shared base: flatten online, paced. ---
	f, err := repro.StartFlatten(b)
	if err != nil {
		log.Fatal(err)
	}
	f.SetPace(repro.NewPacer(500, 512<<20)) // bound interference on live IO
	if _, err := f.Run(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tenant-b flattened: %d blocks re-sealed under bob's key, parent link severed\n",
		f.Progress().Copied)

	// The provider can now retire the base for tenant-b's purposes; the
	// flattened image round-trips with bob's credential alone. (Here we
	// delete it outright — tenant-a was erased above.)
	if _, err := rbd.Remove(0, client, "rbd", "golden"); err != nil {
		log.Fatal(err)
	}
	b2, err := repro.OpenClonedImage(client, "rbd", "tenant-b", repro.Keychain{"tenant-b": keys["tenant-b"]})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := b2.ReadAt(0, probe, 1<<20); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base deleted; tenant-b stands alone: probe[0]=0x%02x, parent=%v\n", probe[0], b2.Parent())
}
