// Integrity: the paper's §3.1 extension — per-sector metadata has room
// for a MAC, so storage-side tampering becomes detectable. This example
// tampers with stored ciphertext at the OSD (flipping one bit) and shows
// that AES-XTS decrypts the corruption silently while AES-GCM rejects it.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/rados"
)

func tamperAndRead(name string, scheme repro.Scheme) {
	cluster, err := repro.NewCluster(repro.TestClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client := cluster.NewClient("host0")
	img, err := repro.CreateEncryptedImage(client, "rbd", "vol", 4<<20, []byte("pw"),
		repro.Options{Scheme: scheme, Layout: repro.LayoutObjectEnd})
	if err != nil {
		log.Fatal(err)
	}

	ledger := bytes.Repeat([]byte("transfer $100 to account 4242   "), 128)
	if _, err := img.WriteAt(0, ledger, 0); err != nil {
		log.Fatal(err)
	}

	// The attacker flips one stored ciphertext bit at the OSD.
	res, _, err := img.Image().Operate(0, 0, 0, []rados.Op{{Kind: rados.OpRead, Off: 0, Len: 4096}})
	if err != nil {
		log.Fatal(err)
	}
	ct := res[0].Data
	ct[1000] ^= 0x01
	if _, _, err := img.Image().Operate(0, 0, 0, []rados.Op{{Kind: rados.OpWrite, Off: 0, Data: ct}}); err != nil {
		log.Fatal(err)
	}

	got := make([]byte, 4096)
	_, rerr := img.ReadAt(0, got, 0)
	fmt.Printf("--- %s ---\n", name)
	switch {
	case rerr != nil:
		fmt.Printf("read failed closed: %v\n", rerr)
	case bytes.Equal(got, ledger):
		fmt.Println("read returned the original data (tamper had no effect?)")
	default:
		first := 0
		for i := range got {
			if got[i] != ledger[i] {
				first = i
				break
			}
		}
		fmt.Printf("read SUCCEEDED with silently corrupted data (first bad byte at %d) — undetectable\n", first)
	}
	fmt.Println()
}

func main() {
	fmt.Println("An attacker with storage access flips one ciphertext bit.")
	fmt.Println()
	tamperAndRead("XTS + random IV (no MAC)", repro.SchemeXTSRand)
	tamperAndRead("GCM authenticated (nonce+tag in per-sector metadata)", repro.SchemeGCM)
}
