// Snapshot forensics: the paper's §1 motivation made concrete.
//
// With the deterministic LUKS2 baseline, snapshots keep multiple versions
// of a sector encrypted under the SAME IV, so an attacker holding the raw
// storage can (a) tell exactly which 16-byte sub-blocks changed between
// versions and (b) splice sub-blocks from different versions into a new,
// perfectly valid ciphertext. With the paper's random IVs, both signals
// vanish: versions of the same sector are unlinkable.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/rados"
)

// rawSector fetches stored ciphertext straight from the object store —
// the attacker's view of the disk.
func rawSector(img *repro.EncryptedImage, snapID uint64) []byte {
	res, _, err := img.Image().Operate(0, 0, snapID, []rados.Op{{Kind: rados.OpRead, Off: 0, Len: 4096}})
	if err != nil {
		log.Fatal(err)
	}
	return res[0].Data
}

func diffSubBlocks(a, b []byte) []int {
	var changed []int
	for sb := 0; sb < len(a)/16; sb++ {
		if !bytes.Equal(a[sb*16:(sb+1)*16], b[sb*16:(sb+1)*16]) {
			changed = append(changed, sb)
		}
	}
	return changed
}

func scenario(name string, scheme repro.Scheme, layout repro.Layout) {
	cluster, err := repro.NewCluster(repro.TestClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client := cluster.NewClient("host0")
	img, err := repro.CreateEncryptedImage(client, "rbd", "vol", 4<<20, []byte("pw"),
		repro.Options{Scheme: scheme, Layout: layout})
	if err != nil {
		log.Fatal(err)
	}

	// A medical record whose "diagnosis field" (sub-block 10) changes.
	record := make([]byte, 4096)
	for i := range record {
		record[i] = byte(i)
	}
	if _, err := img.WriteAt(0, record, 0); err != nil {
		log.Fatal(err)
	}
	if _, _, err := img.CreateSnap(0, "v1"); err != nil {
		log.Fatal(err)
	}
	record[10*16+3] ^= 0xFF // one byte inside sub-block 10 changes
	if _, err := img.WriteAt(0, record, 0); err != nil {
		log.Fatal(err)
	}

	v1 := rawSector(img, 1)
	head := rawSector(img, 0)
	changed := diffSubBlocks(v1, head)

	fmt.Printf("--- %s ---\n", name)
	switch {
	case len(changed) == 0:
		fmt.Println("attacker sees: snapshots identical (no change leaked... or nothing written)")
	case len(changed) < 16:
		fmt.Printf("attacker sees: exactly sub-block(s) %v changed -> field-level change tracking!\n", changed)
	default:
		fmt.Printf("attacker sees: %d/256 sub-blocks changed -> versions unlinkable\n", len(changed))
	}

	// Splice attack: combine the two ciphertext versions half-and-half.
	// Against the deterministic baseline this forges a valid record whose
	// first half is the OLD value — the change is silently reverted.
	spliced := append(append([]byte(nil), v1[:2048]...), head[2048:]...)
	if _, _, err := img.Image().Operate(0, 0, 0, []rados.Op{{Kind: rados.OpWrite, Off: 0, Data: spliced}}); err != nil {
		log.Fatal(err)
	}
	// The forged plaintext the attacker hopes for: pre-change first half
	// (the flip was in sub-block 10, inside the first half) + current
	// second half.
	forged := make([]byte, 4096)
	for i := range forged {
		forged[i] = byte(i)
	}
	out := make([]byte, 4096)
	_, rerr := img.ReadAt(0, out, 0)
	switch {
	case rerr != nil:
		fmt.Printf("splice attack: detected and rejected (%v)\n", rerr)
	case bytes.Equal(out, forged):
		fmt.Println("splice attack: spliced ciphertext decrypted cleanly -> valid forged record (change reverted)")
	default:
		fmt.Println("splice attack: splice decrypts to garbage (foiled by random IV)")
	}
	fmt.Println()
}

func main() {
	fmt.Println("The attacker holds the raw storage (snapshots + head) and compares versions.")
	fmt.Println()
	scenario("LUKS2 baseline: deterministic XTS, no stored IV", repro.SchemeLUKS2, repro.LayoutNone)
	scenario("Paper's scheme: random IV stored at object end", repro.SchemeXTSRand, repro.LayoutObjectEnd)
	scenario("Authenticated: AES-GCM with per-sector nonce+tag", repro.SchemeGCM, repro.LayoutObjectEnd)
}
