// Quickstart: bring up a simulated Ceph-like cluster, create an image
// encrypted with the paper's scheme (random-IV AES-XTS, IVs at the object
// end), write, read back, snapshot, and show that old data stays
// decryptable after overwrites.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
)

func main() {
	cluster, err := repro.NewCluster(repro.TestClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client := cluster.NewClient("host0")

	img, err := repro.CreateEncryptedImage(client, "rbd", "vol0", 16<<20,
		[]byte("correct horse battery staple"),
		repro.Options{Scheme: repro.SchemeXTSRand, Layout: repro.LayoutObjectEnd})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created encrypted image %q: %d MiB, scheme=%v layout=%v metadata=%dB/block\n",
		img.Image().Name(), img.Size()>>20, img.Options().Scheme, img.Options().Layout, img.MetaLen())

	// Write and read back.
	v1 := bytes.Repeat([]byte("generation-1 data belongs here! "), 128) // 4 KiB
	if _, err := img.WriteAt(0, v1, 0); err != nil {
		log.Fatal(err)
	}
	got := make([]byte, len(v1))
	if _, err := img.ReadAt(0, got, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round trip ok: %v\n", bytes.Equal(got, v1))

	// Snapshot, overwrite, read both versions.
	snapID, _, err := img.CreateSnap(0, "before-upgrade")
	if err != nil {
		log.Fatal(err)
	}
	v2 := bytes.Repeat([]byte("generation-2 data overwrote it! "), 128)
	if _, err := img.WriteAt(0, v2, 0); err != nil {
		log.Fatal(err)
	}
	head := make([]byte, 4096)
	if _, err := img.ReadAt(0, head, 0); err != nil {
		log.Fatal(err)
	}
	old := make([]byte, 4096)
	if _, err := img.ReadAtSnap(0, old, 0, snapID); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("head sees generation-2: %v\n", bytes.Equal(head, v2))
	fmt.Printf("snapshot still decrypts generation-1 (IVs version with data): %v\n", bytes.Equal(old, v1))

	// Wrong passphrase is rejected by the LUKS2-style keyslots.
	if _, err := repro.OpenEncryptedImage(client, "rbd", "vol0", []byte("wrong")); err != nil {
		fmt.Printf("wrong passphrase rejected: %v\n", err)
	}
}
