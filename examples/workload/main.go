// Workload: a miniature Figure 3 — run fio-style random read/write sweeps
// against two schemes on a small simulated cluster and print the measured
// virtual-time bandwidth side by side.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/fio"
)

func main() {
	schemes := []struct {
		name   string
		scheme repro.Scheme
		layout repro.Layout
	}{
		{"LUKS2 (baseline)", repro.SchemeLUKS2, repro.LayoutNone},
		{"XTS random IV @ object end", repro.SchemeXTSRand, repro.LayoutObjectEnd},
	}

	fmt.Printf("%-28s %10s %12s %12s %10s\n", "scheme", "io size", "write MB/s", "read MB/s", "p99 write")
	for _, s := range schemes {
		cluster, err := repro.NewCluster(repro.TestClusterConfig())
		if err != nil {
			log.Fatal(err)
		}
		client := cluster.NewClient("host0")
		img, err := repro.CreateEncryptedImage(client, "rbd", "bench", 64<<20, []byte("pw"),
			repro.Options{Scheme: s.scheme, Layout: s.layout})
		if err != nil {
			log.Fatal(err)
		}
		now, err := fio.Precondition(img, 0, 4096, 0)
		if err != nil {
			log.Fatal(err)
		}
		for _, kb := range []int64{4, 64, 1024} {
			w, err := repro.RunWorkload(repro.WorkloadSpec{
				Pattern: fio.RandWrite, BlockSize: kb << 10, QueueDepth: 32, TotalOps: 400,
			}, img, now)
			if err != nil {
				log.Fatal(err)
			}
			now = w.End
			r, err := repro.RunWorkload(repro.WorkloadSpec{
				Pattern: fio.RandRead, BlockSize: kb << 10, QueueDepth: 32, TotalOps: 400,
			}, img, now)
			if err != nil {
				log.Fatal(err)
			}
			now = r.End
			fmt.Printf("%-28s %7d K %12.1f %12.1f %10v\n",
				s.name, kb, w.MBps(), r.MBps(), w.Latencies.P99.Round(1000))
		}
		cluster.Close()
	}
	fmt.Println("\n(virtual-time bandwidth; see cmd/benchfig for the full Figure 3/4 sweep)")
}
