// Example rekey: the key-lifecycle workloads per-block metadata unlocks
// (paper §1/§4, internal/keymgr) — online key rotation under live IO,
// crash-resumable progress, and crypto-erase, none of which
// length-preserving disk encryption can offer without a full offline
// re-encryption pass.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"

	"repro"
	"repro/internal/keymgr"
)

func main() {
	cluster, err := repro.NewCluster(repro.TestClusterConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	client := cluster.NewClient("example")

	img, err := repro.CreateEncryptedImage(client, "rbd", "vault", 8<<20,
		[]byte("hunter2"), repro.Options{Scheme: repro.SchemeXTSRand, Layout: repro.LayoutObjectEnd})
	if err != nil {
		log.Fatal(err)
	}

	secret := bytes.Repeat([]byte("CONFIDENTIAL-RECORD-0042!"), 164)[:4096]
	if _, err := img.WriteAt(0, secret, 0); err != nil {
		log.Fatal(err)
	}
	filler := make([]byte, 4<<20)
	for i := range filler {
		filler[i] = byte(i*31) | 1
	}
	if _, err := img.WriteAt(0, filler, 4096); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sealed under epoch %d\n", img.CurrentEpoch())

	// --- Online rotation, interrupted and resumed ---
	r, err := repro.StartRekey(img)
	if err != nil {
		log.Fatal(err)
	}
	// Writes issued mid-rotation land under the new epoch immediately.
	if _, err := img.WriteAt(0, filler[:4096], 2<<20); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ { // walk a few objects, then "crash"
		if _, _, err := r.Step(0); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("client crash at cursor %+v\n", r.Progress().NextObj)

	img2, err := repro.OpenEncryptedImage(client, "rbd", "vault", []byte("hunter2"))
	if err != nil {
		log.Fatal(err)
	}
	r2, err := repro.ResumeRekey(img2)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := r2.Run(0); err != nil {
		log.Fatal(err)
	}
	p := r2.Progress()
	fmt.Printf("rotation %d->%d finished after resume: %d blocks re-sealed, old key destroyed; live epochs %v\n",
		p.From, p.To, p.Rekeyed, img2.Epochs())

	got := make([]byte, 4096)
	if _, err := img2.ReadAt(0, got, 0); err != nil || !bytes.Equal(got, secret) {
		log.Fatalf("data lost across rotation: %v", err)
	}
	fmt.Println("secret record intact under the new key")

	// --- Crypto-erase ---
	if _, err := img2.Discard(0, 0, 4096); err != nil {
		log.Fatal(err)
	}
	if _, err := img2.ReadAt(0, got, 0); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 4096)) {
		log.Fatal("discarded block still readable")
	}
	fmt.Println("secret record crypto-erased: reads as a hole, ciphertext zeroed at the OSDs")

	// With no rotation in flight, Resume reports so.
	if _, err := repro.ResumeRekey(img2); errors.Is(err, keymgr.ErrNoRekey) {
		fmt.Println("no rotation in progress — lifecycle complete")
	}
}
