// Package msgr is the messenger between RADOS clients and OSDs: framed
// request/response with virtual timestamps carried alongside payloads.
//
// Two transports share one interface. The in-process transport models a
// network path the way the paper's testbed behaves: a per-stream link
// (the ~13 Gb/s iperf figure from §3.2) feeding a shared NIC (100 Gb/s),
// plus propagation latency, all charged to vtime resources. The TCP
// transport runs the identical byte protocol over real sockets for
// integration tests, proving the stack is not coupled to the simulation.
package msgr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/vtime"
)

// Handler services one request. The at argument is the request's virtual
// arrival time at the server; the returned time is when the reply payload
// is ready to transmit.
type Handler func(at vtime.Time, req []byte) (resp []byte, done vtime.Time, err error)

// Conn is a client's connection to one server.
type Conn interface {
	// Call sends a request at virtual time at and returns the reply and
	// its virtual delivery time.
	Call(at vtime.Time, req []byte) (resp []byte, end vtime.Time, err error)
	Close() error
}

// ErrClosed reports use of a closed connection.
var ErrClosed = errors.New("msgr: connection closed")

// LinkCost models one direction of a network path.
type LinkCost struct {
	// Latency is the propagation delay per message.
	Latency time.Duration
	// StreamPerByte is the per-byte cost of this connection's stream
	// (13 Gb/s in the paper's measurement).
	StreamPerByte float64
	// NIC, when non-nil, is the shared endpoint resource all streams of
	// one host contend on.
	NIC *vtime.Resource
	// NICPerByte is the per-byte cost on the shared NIC (100 Gb/s links).
	NICPerByte float64
}

// DefaultLinkCost mirrors the paper's environment: 100 Gb/s NICs with
// ~13 Gb/s achieved per stream and tens of microseconds of latency.
func DefaultLinkCost(nic *vtime.Resource) LinkCost {
	return LinkCost{
		Latency:       30 * time.Microsecond,
		StreamPerByte: vtime.PerByteOfBandwidth(13e9 / 8),
		NIC:           nic,
		NICPerByte:    vtime.PerByteOfBandwidth(100e9 / 8),
	}
}

// transmit charges one message in one direction and returns its delivery
// time.
func (lc LinkCost) transmit(at vtime.Time, stream *vtime.Resource, n int) vtime.Time {
	end := stream.Use(at, vtime.Duration(float64(n)*lc.StreamPerByte))
	if lc.NIC != nil {
		end = lc.NIC.Use(end, vtime.Duration(float64(n)*lc.NICPerByte))
	}
	return end.Add(lc.Latency)
}

// InProcServer dispatches requests to a handler with per-connection
// stream resources.
type InProcServer struct {
	handler Handler
	mu      sync.Mutex
	closed  bool
}

// NewInProcServer wraps a handler.
func NewInProcServer(h Handler) *InProcServer {
	return &InProcServer{handler: h}
}

// Close stops accepting calls.
func (s *InProcServer) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

type inProcConn struct {
	srv      *InProcServer
	reqCost  LinkCost
	respCost LinkCost
	reqLink  *vtime.Resource
	respLink *vtime.Resource

	mu     sync.Mutex
	closed bool
}

// Connect creates a connection whose two directions are modeled by the
// given costs. Each connection gets its own stream resources (one TCP
// stream's worth of bandwidth), sharing any NIC resources inside the
// costs.
func (s *InProcServer) Connect(name string, reqCost, respCost LinkCost) Conn {
	return &inProcConn{
		srv:      s,
		reqCost:  reqCost,
		respCost: respCost,
		reqLink:  vtime.NewResource(name + "/req"),
		respLink: vtime.NewResource(name + "/resp"),
	}
}

func (c *inProcConn) Call(at vtime.Time, req []byte) ([]byte, vtime.Time, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, at, ErrClosed
	}
	c.srv.mu.Lock()
	srvClosed := c.srv.closed
	c.srv.mu.Unlock()
	if srvClosed {
		return nil, at, ErrClosed
	}
	arrive := c.reqCost.transmit(at, c.reqLink, len(req))
	resp, done, err := c.srv.handler(arrive, req)
	if err != nil {
		return nil, arrive, fmt.Errorf("msgr: remote: %w", err)
	}
	end := c.respCost.transmit(done, c.respLink, len(resp))
	return resp, end, nil
}

func (c *inProcConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}
