// Package msgr is the messenger between RADOS clients and OSDs: framed
// request/response with virtual timestamps carried alongside payloads.
//
// Two transports share one interface. The in-process transport models a
// network path the way the paper's testbed behaves: a per-stream link
// (the ~13 Gb/s iperf figure from §3.2) feeding a shared NIC (100 Gb/s),
// plus propagation latency, all charged to vtime resources. The TCP
// transport runs the identical byte protocol over real sockets for
// integration tests, proving the stack is not coupled to the simulation.
package msgr

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/telemetry/attr"
	"repro/internal/vtime"
)

// Dispatch accounting: typed (zero-marshal fast path) vs byte-codec
// calls, and the wire bytes each form charged. Handles are resolved at
// init; the call paths record with atomic adds only (see METRICS.md).
var (
	mCallsVec = telemetry.NewCounterVec("msgr_calls_total",
		"messenger round trips by wire form", "path")
	mBytesVec = telemetry.NewCounterVec("msgr_bytes_total",
		"request+reply wire bytes charged, by wire form", "path")
	mCallsTyped = mCallsVec.With("typed")
	mCallsBytes = mCallsVec.With("bytes")
	mBytesTyped = mBytesVec.With("typed")
	mBytesBytes = mBytesVec.With("bytes")
	// mOutstanding is the why-signal for wire backpressure: round trips
	// currently in flight across all connections (health's
	// msgr-outstanding-high rule watches it).
	mOutstanding = telemetry.NewGauge("msgr_outstanding_requests",
		"messenger round trips currently in flight")
)

// Handler services one request. The at argument is the request's virtual
// arrival time at the server; the returned time is when the reply payload
// is ready to transmit.
type Handler func(at vtime.Time, req []byte) (resp []byte, done vtime.Time, err error)

// Msg is a typed wire message. WireLen reports the exact byte-codec
// encoding size, so a transport that never marshals the message (the
// in-process fast path) can charge the cost model identically to one
// that does.
type Msg interface{ WireLen() int }

// TypedHandler services one request without the byte codec: the request
// arrives as the client's typed message, and the reply returns the same
// way. The handler must copy anything it persists before returning — the
// caller owns the request's payload buffers and may recycle them as soon
// as the call completes.
type TypedHandler func(at vtime.Time, req Msg) (resp Msg, done vtime.Time, err error)

// Conn is a client's connection to one server.
type Conn interface {
	// Call sends a request at virtual time at and returns the reply and
	// its virtual delivery time.
	Call(at vtime.Time, req []byte) (resp []byte, end vtime.Time, err error)
	// CallV is the scatter-gather form of Call: the request is the
	// concatenation of segs, transmitted without the caller having to
	// join them. The cost model charges the summed segment length, and
	// transports forward the segments as-is where they can (vectored
	// socket writes on TCP; typed servers never see bytes at all).
	CallV(at vtime.Time, segs [][]byte) (resp []byte, end vtime.Time, err error)
	Close() error
}

// TypedConn is the in-process fast path: requests and replies cross the
// connection as typed messages, skipping the marshal/unmarshal round
// trip entirely while still being charged their full wire size. Conns
// advertise it only when their server registered a TypedHandler, so a
// successful type assertion is a usable fast path.
type TypedConn interface {
	Conn
	CallTyped(at vtime.Time, req Msg) (resp Msg, end vtime.Time, err error)
}

// SpanCarrier is implemented by typed messages that carry a telemetry
// trace span (rados.Request). The typed transport records its transmit
// hops on the span; byte-codec messages carry no span and cross the
// wire untraced. A nil span from a carrier is fine — every span method
// is nil-safe.
type SpanCarrier interface{ TraceSpan() *telemetry.Span }

// AttrCarrier is implemented by typed messages that know their
// attribution class (rados.Request). The transport attributes the
// message's wire transit time to that class's wire phase; byte-codec
// calls carry no class and attribute to "other" — a documented
// compromise, since the byte form is the compatibility oracle, not the
// hot path.
type AttrCarrier interface{ AttrOp() int }

// ErrClosed reports use of a closed connection.
var ErrClosed = errors.New("msgr: connection closed")

// JoinSegs flattens a scatter-gather segment list into one contiguous
// buffer — the compatibility shim between the vectored and flat wire
// forms (byte-codec handlers reached through CallV, codec oracles).
func JoinSegs(segs [][]byte) []byte {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	out := make([]byte, 0, total)
	for _, s := range segs {
		out = append(out, s...)
	}
	return out
}

func segsLen(segs [][]byte) int {
	n := 0
	for _, s := range segs {
		n += len(s)
	}
	return n
}

// LinkCost models one direction of a network path.
type LinkCost struct {
	// Latency is the propagation delay per message.
	Latency time.Duration
	// StreamPerByte is the per-byte cost of this connection's stream
	// (13 Gb/s in the paper's measurement).
	StreamPerByte float64
	// NIC, when non-nil, is the shared endpoint resource all streams of
	// one host contend on.
	NIC *vtime.Resource
	// NICPerByte is the per-byte cost on the shared NIC (100 Gb/s links).
	NICPerByte float64
}

// DefaultLinkCost mirrors the paper's environment: 100 Gb/s NICs with
// ~13 Gb/s achieved per stream and tens of microseconds of latency.
func DefaultLinkCost(nic *vtime.Resource) LinkCost {
	return LinkCost{
		Latency:       30 * time.Microsecond,
		StreamPerByte: vtime.PerByteOfBandwidth(13e9 / 8),
		NIC:           nic,
		NICPerByte:    vtime.PerByteOfBandwidth(100e9 / 8),
	}
}

// transmit charges one message in one direction and returns its delivery
// time.
func (lc LinkCost) transmit(at vtime.Time, stream *vtime.Resource, n int) vtime.Time {
	end := stream.Use(at, vtime.Duration(float64(n)*lc.StreamPerByte))
	if lc.NIC != nil {
		end = lc.NIC.Use(end, vtime.Duration(float64(n)*lc.NICPerByte))
	}
	return end.Add(lc.Latency)
}

// InProcServer dispatches requests to a handler with per-connection
// stream resources.
type InProcServer struct {
	handler Handler
	typed   TypedHandler
	mu      sync.Mutex
	closed  bool

	// faults, when armed, injects network-level failures (dropped,
	// delayed and duplicated replies, connection resets, crash windows)
	// on every connection to this server, from a deterministic plan.
	faults atomic.Pointer[fault.Injector]
}

// NewInProcServer wraps a handler.
func NewInProcServer(h Handler) *InProcServer {
	return &InProcServer{handler: h}
}

// SetTypedHandler registers the typed fast-path handler. Connections
// created after this call implement TypedConn. Register before wiring
// connections; the byte handler stays as the codec-compatibility path.
func (s *InProcServer) SetTypedHandler(th TypedHandler) {
	s.typed = th
}

// SetFaults arms (or, with nil, disarms) plan-driven fault injection on
// every connection to this server. An injected OSD crash is a crash
// window in the injector's config: calls arriving inside the window
// fail with fault.ErrOSDDown, and calls after it succeed again — a
// crash/restart cycle with the server's state intact (the in-process
// store is the OSD's durable disk, which a real restart would recover).
func (s *InProcServer) SetFaults(in *fault.Injector) { s.faults.Store(in) }

// injectBefore applies the faults that strike before the handler runs.
func (s *InProcServer) injectBefore(arrive vtime.Time) error {
	in := s.faults.Load()
	if in.Down(arrive) {
		return fmt.Errorf("msgr: %w", fault.ErrOSDDown)
	}
	if in.HitAt(arrive, fault.ConnReset) {
		// The request is lost on the wire: the server never saw it.
		return fmt.Errorf("msgr: %w", fault.ErrConnReset)
	}
	return nil
}

// injectAfter applies the faults that strike a reply. dropped=true
// means the handler ran (its effects are durable) but the client must
// see a failure — the ack-loss case idempotent protocols exist for.
func (s *InProcServer) injectAfter(done vtime.Time) (dropped bool, delayedDone vtime.Time, dup bool) {
	in := s.faults.Load()
	if in.HitAt(done, fault.DropReply) {
		return true, done, false
	}
	if in.HitAt(done, fault.DelayReply) {
		done = done.Add(in.Delay())
	}
	return false, done, in.HitAt(done, fault.DupReply)
}

// Close stops accepting calls.
func (s *InProcServer) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

type inProcConn struct {
	srv      *InProcServer
	reqCost  LinkCost
	respCost LinkCost
	reqLink  *vtime.Resource
	respLink *vtime.Resource

	mu     sync.Mutex
	closed bool
}

// Connect creates a connection whose two directions are modeled by the
// given costs. Each connection gets its own stream resources (one TCP
// stream's worth of bandwidth), sharing any NIC resources inside the
// costs. When the server has a typed handler, the returned Conn also
// implements TypedConn.
func (s *InProcServer) Connect(name string, reqCost, respCost LinkCost) Conn {
	c := &inProcConn{
		srv:      s,
		reqCost:  reqCost,
		respCost: respCost,
		reqLink:  vtime.NewResource(name + "/req"),
		respLink: vtime.NewResource(name + "/resp"),
	}
	if s.typed != nil {
		return &inProcTypedConn{inProcConn: c}
	}
	return c
}

// checkOpen reports ErrClosed when either endpoint has shut down.
func (c *inProcConn) checkOpen() error {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return ErrClosed
	}
	c.srv.mu.Lock()
	srvClosed := c.srv.closed
	c.srv.mu.Unlock()
	if srvClosed {
		return ErrClosed
	}
	return nil
}

func (c *inProcConn) Call(at vtime.Time, req []byte) ([]byte, vtime.Time, error) {
	if err := c.checkOpen(); err != nil {
		return nil, at, err
	}
	mCallsBytes.Inc()
	mOutstanding.Add(1)
	defer mOutstanding.Add(-1)
	arrive := c.reqCost.transmit(at, c.reqLink, len(req))
	if err := c.srv.injectBefore(arrive); err != nil {
		return nil, arrive, err
	}
	resp, done, err := c.srv.handler(arrive, req)
	if err != nil {
		return nil, arrive, fmt.Errorf("msgr: remote: %w", err)
	}
	dropped, done, dup := c.srv.injectAfter(done)
	if dropped {
		return nil, done, fmt.Errorf("msgr: %w", fault.ErrReplyDropped)
	}
	end := c.respCost.transmit(done, c.respLink, len(resp))
	if dup {
		// The duplicate occupies the wire again; the caller never sees it.
		end = c.respCost.transmit(end, c.respLink, len(resp))
	}
	mBytesBytes.Add(int64(len(req) + len(resp)))
	attr.Observe(attr.OpOther, attr.PhaseWire, arrive.Sub(at)+end.Sub(done))
	return resp, end, nil
}

// CallV joins the segments and runs the byte codec — the in-process
// transport has no socket to scatter into, and the joined form is
// exactly what the compatibility oracle wants to exercise. Zero-copy
// in-process traffic uses CallTyped instead.
func (c *inProcConn) CallV(at vtime.Time, segs [][]byte) ([]byte, vtime.Time, error) {
	return c.Call(at, JoinSegs(segs))
}

// inProcTypedConn is an inProcConn whose server accepts typed dispatch.
type inProcTypedConn struct {
	*inProcConn
}

// CallTyped hands the typed request straight to the server's handler —
// no marshal, no unmarshal — while charging both directions their exact
// byte-codec wire size, so the virtual-time outcome is identical to the
// byte path.
func (c *inProcTypedConn) CallTyped(at vtime.Time, req Msg) (Msg, vtime.Time, error) {
	if err := c.checkOpen(); err != nil {
		return nil, at, err
	}
	mCallsTyped.Inc()
	mOutstanding.Add(1)
	defer mOutstanding.Add(-1)
	var sp *telemetry.Span
	if carrier, ok := req.(SpanCarrier); ok {
		sp = carrier.TraceSpan()
	}
	cls := attr.OpOther
	if carrier, ok := req.(AttrCarrier); ok {
		cls = carrier.AttrOp()
	}
	reqLen := req.WireLen()
	arrive := c.reqCost.transmit(at, c.reqLink, reqLen)
	sp.Hop("msgr:req", at, arrive)
	if err := c.srv.injectBefore(arrive); err != nil {
		return nil, arrive, err
	}
	resp, done, err := c.srv.typed(arrive, req)
	if err != nil {
		return nil, arrive, fmt.Errorf("msgr: remote: %w", err)
	}
	dropped, done, dup := c.srv.injectAfter(done)
	if dropped {
		return nil, done, fmt.Errorf("msgr: %w", fault.ErrReplyDropped)
	}
	end := c.respCost.transmit(done, c.respLink, resp.WireLen())
	if dup {
		// The duplicate occupies the wire again; the caller never sees it.
		end = c.respCost.transmit(end, c.respLink, resp.WireLen())
	}
	sp.Hop("msgr:resp", done, end)
	mBytesTyped.Add(int64(reqLen + resp.WireLen()))
	attr.Observe(cls, attr.PhaseWire, arrive.Sub(at)+end.Sub(done))
	return resp, end, nil
}

func (c *inProcConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}
