package msgr

// fault_test.go: each network-level fault primitive in isolation,
// against a trivial echo server, armed at probability 1 so a single
// call demonstrates the behavior.

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/vtime"
)

func echoServer() *InProcServer {
	return NewInProcServer(func(at vtime.Time, req []byte) ([]byte, vtime.Time, error) {
		return append([]byte(nil), req...), at, nil
	})
}

func alwaysCfg(k fault.Kind) fault.Config {
	return fault.Config{Prob: map[fault.Kind]float64{k: 1}}
}

func testConn(s *InProcServer) Conn {
	return s.Connect("t", LinkCost{}, LinkCost{})
}

func TestFaultDropReply(t *testing.T) {
	srv := echoServer()
	handled := 0
	srv.handler = func(at vtime.Time, req []byte) ([]byte, vtime.Time, error) {
		handled++
		return req, at, nil
	}
	c := testConn(srv)
	srv.SetFaults(fault.NewPlan(1, alwaysCfg(fault.DropReply)).Injector("s"))
	_, _, err := c.Call(0, []byte("hello"))
	if !errors.Is(err, fault.ErrReplyDropped) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("dropped reply error = %v, want ErrReplyDropped wrapping ErrInjected", err)
	}
	// The defining property of a dropped reply: the server DID the work.
	if handled != 1 {
		t.Fatalf("handler ran %d times, want 1 (drop-reply loses the ack, not the request)", handled)
	}
	// Disarmed, the same call succeeds.
	srv.SetFaults(nil)
	resp, _, err := c.Call(0, []byte("hello"))
	if err != nil || !bytes.Equal(resp, []byte("hello")) {
		t.Fatalf("clean call after disarm: resp=%q err=%v", resp, err)
	}
}

func TestFaultConnReset(t *testing.T) {
	srv := echoServer()
	handled := 0
	srv.handler = func(at vtime.Time, req []byte) ([]byte, vtime.Time, error) {
		handled++
		return req, at, nil
	}
	c := testConn(srv)
	srv.SetFaults(fault.NewPlan(2, alwaysCfg(fault.ConnReset)).Injector("s"))
	_, _, err := c.Call(0, []byte("x"))
	if !errors.Is(err, fault.ErrConnReset) {
		t.Fatalf("reset error = %v, want ErrConnReset", err)
	}
	// The defining property of a reset: the request never arrived.
	if handled != 0 {
		t.Fatalf("handler ran %d times, want 0 (reset loses the request)", handled)
	}
}

func TestFaultDelayReply(t *testing.T) {
	srv := echoServer()
	c := testConn(srv)
	base, err := callEnd(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := alwaysCfg(fault.DelayReply)
	cfg.Delay = 7 * time.Millisecond
	srv.SetFaults(fault.NewPlan(3, cfg).Injector("s"))
	slow, err := callEnd(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := slow.Sub(base); d < 7*time.Millisecond {
		t.Fatalf("delayed reply added %v, want >= 7ms", d)
	}
}

func TestFaultDupReply(t *testing.T) {
	// With a real per-byte stream cost, the duplicate occupies the
	// response link a second time, so the delivery time of a duplicated
	// reply is measurably later — and the payload still arrives intact.
	cost := LinkCost{StreamPerByte: vtime.PerByteOfBandwidth(1e6)} // 1 MB/s: 1 µs/byte
	srv := echoServer()
	c := srv.Connect("t", LinkCost{}, cost)
	payload := make([]byte, 1000)
	_, base, err := c.Call(0, payload)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetFaults(fault.NewPlan(4, alwaysCfg(fault.DupReply)).Injector("s"))
	resp, end, err := c.Call(base, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, payload) {
		t.Fatal("duplicated reply corrupted the payload")
	}
	if got, want := end.Sub(base), 2*time.Millisecond; got < want {
		t.Fatalf("dup reply charged %v of wire time, want >= %v (two transmissions)", got, want)
	}
}

func TestFaultCrashRestartWindow(t *testing.T) {
	srv := echoServer()
	c := testConn(srv)
	srv.SetFaults(fault.NewPlan(5, fault.Config{
		Down: []Window{{From: 1000, To: 2000}},
	}).Injector("s"))

	if _, _, err := c.Call(0, []byte("before")); err != nil {
		t.Fatalf("call before crash window failed: %v", err)
	}
	_, _, err := c.Call(1500, []byte("during"))
	if !errors.Is(err, fault.ErrOSDDown) {
		t.Fatalf("call inside crash window: err = %v, want ErrOSDDown", err)
	}
	// After the window the OSD has restarted: same server, state intact.
	if _, _, err := c.Call(3000, []byte("after")); err != nil {
		t.Fatalf("call after restart failed: %v", err)
	}
}

// Window is re-exported locally for test readability.
type Window = fault.Window

func callEnd(c Conn, at vtime.Time) (vtime.Time, error) {
	_, end, err := c.Call(at, []byte("m"))
	return end, err
}
