package msgr

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/vtime"
)

func echoHandler(at vtime.Time, req []byte) ([]byte, vtime.Time, error) {
	return append([]byte("echo:"), req...), at.Add(10 * time.Microsecond), nil
}

func TestInProcCall(t *testing.T) {
	srv := NewInProcServer(echoHandler)
	defer srv.Close()
	lc := LinkCost{Latency: 5 * time.Microsecond, StreamPerByte: 1}
	conn := srv.Connect("c0", lc, lc)
	defer conn.Close()

	resp, end, err := conn.Call(0, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("echo:hello")) {
		t.Fatalf("resp %q", resp)
	}
	// Request: 5 bytes * 1ns + 5µs latency; handler 10µs; response:
	// 10 bytes * 1ns + 5µs latency.
	want := vtime.Time(5 + 5000 + 10000 + 10 + 5000)
	if end != want {
		t.Fatalf("end = %d want %d", end, want)
	}
}

func TestInProcSharedNICContention(t *testing.T) {
	nic := vtime.NewResource("client-nic")
	srv := NewInProcServer(echoHandler)
	defer srv.Close()
	lc := LinkCost{StreamPerByte: 0, NIC: nic, NICPerByte: 10}
	free := LinkCost{}
	c1 := srv.Connect("c1", lc, free)
	c2 := srv.Connect("c2", lc, free)

	// Two 1000-byte requests at t=0 contend on the NIC: completions at
	// 10µs and 20µs (each costs 10µs of NIC time) plus 10µs handler each.
	_, end1, err := c1.Call(0, make([]byte, 1000))
	if err != nil {
		t.Fatal(err)
	}
	_, end2, err := c2.Call(0, make([]byte, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if end1 != vtime.Time(20*time.Microsecond) {
		t.Fatalf("end1 = %v", end1)
	}
	if end2 != vtime.Time(30*time.Microsecond) {
		t.Fatalf("end2 = %v (should queue behind first on NIC)", end2)
	}
}

func TestInProcCallVChargesSummedLength(t *testing.T) {
	srv := NewInProcServer(echoHandler)
	defer srv.Close()
	lc := LinkCost{Latency: 5 * time.Microsecond, StreamPerByte: 1}

	// A scattered request must cost exactly what its joined form costs.
	joined := srv.Connect("joined", lc, lc)
	scattered := srv.Connect("scattered", lc, lc)
	respJ, endJ, err := joined.Call(0, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	respS, endS, err := scattered.CallV(0, [][]byte{[]byte("he"), nil, []byte("llo")})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(respJ, respS) {
		t.Fatalf("scattered call diverged: %q vs %q", respJ, respS)
	}
	if endJ != endS {
		t.Fatalf("cost model diverged: joined %d scattered %d", endJ, endS)
	}
}

// wireMsg is a minimal typed message for transport tests.
type wireMsg struct {
	body []byte
}

func (m *wireMsg) WireLen() int { return len(m.body) }

func TestInProcTypedDispatch(t *testing.T) {
	srv := NewInProcServer(echoHandler)
	defer srv.Close()
	srv.SetTypedHandler(func(at vtime.Time, req Msg) (Msg, vtime.Time, error) {
		in := req.(*wireMsg)
		return &wireMsg{body: append([]byte("echo:"), in.body...)}, at.Add(10 * time.Microsecond), nil
	})
	lc := LinkCost{Latency: 5 * time.Microsecond, StreamPerByte: 1}
	conn := srv.Connect("typed", lc, lc)
	defer conn.Close()

	tc, ok := conn.(TypedConn)
	if !ok {
		t.Fatal("server with typed handler must hand out TypedConns")
	}
	resp, end, err := tc.CallTyped(0, &wireMsg{body: []byte("hello")})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(*wireMsg).body; !bytes.Equal(got, []byte("echo:hello")) {
		t.Fatalf("typed resp %q", got)
	}
	// Identical cost shape to TestInProcCall: 5B request, 10B reply.
	want := vtime.Time(5 + 5000 + 10000 + 10 + 5000)
	if end != want {
		t.Fatalf("typed end = %d want %d", end, want)
	}

	// The byte path must still work on the same connection (oracle).
	respB, endB, err := conn.Call(0, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(respB, []byte("echo:hello")) {
		t.Fatalf("byte resp on typed conn: %q", respB)
	}
	if endB <= 0 {
		t.Fatal("byte path lost virtual time")
	}
}

func TestInProcUntypedServerHasNoTypedConn(t *testing.T) {
	srv := NewInProcServer(echoHandler)
	defer srv.Close()
	conn := srv.Connect("plain", LinkCost{}, LinkCost{})
	if _, ok := conn.(TypedConn); ok {
		t.Fatal("server without typed handler must not advertise TypedConn")
	}
}

func TestInProcTypedClosed(t *testing.T) {
	srv := NewInProcServer(echoHandler)
	srv.SetTypedHandler(func(at vtime.Time, req Msg) (Msg, vtime.Time, error) {
		return req, at, nil
	})
	conn := srv.Connect("c", LinkCost{}, LinkCost{}).(TypedConn)
	srv.Close()
	if _, _, err := conn.CallTyped(0, &wireMsg{}); err == nil {
		t.Fatal("closed server accepted typed call")
	}
}

func TestInProcClosed(t *testing.T) {
	srv := NewInProcServer(echoHandler)
	conn := srv.Connect("c", LinkCost{}, LinkCost{})
	conn.Close()
	if _, _, err := conn.Call(0, nil); err == nil {
		t.Fatal("closed conn accepted call")
	}
	conn2 := srv.Connect("c2", LinkCost{}, LinkCost{})
	srv.Close()
	if _, _, err := conn2.Call(0, nil); err == nil {
		t.Fatal("closed server accepted call")
	}
}

func TestInProcHandlerError(t *testing.T) {
	srv := NewInProcServer(func(at vtime.Time, req []byte) ([]byte, vtime.Time, error) {
		return nil, at, fmt.Errorf("boom")
	})
	defer srv.Close()
	conn := srv.Connect("c", LinkCost{}, LinkCost{})
	if _, _, err := conn.Call(0, []byte("x")); err == nil {
		t.Fatal("handler error not propagated")
	}
}

func TestDefaultLinkCostShape(t *testing.T) {
	nic := vtime.NewResource("nic")
	lc := DefaultLinkCost(nic)
	if lc.Latency <= 0 || lc.StreamPerByte <= lc.NICPerByte {
		t.Fatalf("implausible default: %+v", lc)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	resp, end, err := conn.Call(vtime.Time(500), []byte("over tcp"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("echo:over tcp")) {
		t.Fatalf("resp %q", resp)
	}
	if end != vtime.Time(500).Add(10*time.Microsecond) {
		t.Fatalf("virtual time not carried: %d", end)
	}
}

func TestTCPConcurrentCalls(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", func(at vtime.Time, req []byte) ([]byte, vtime.Time, error) {
		return req, at, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("msg-%d", i))
			resp, _, err := conn.Call(0, msg)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(resp, msg) {
				errs <- fmt.Errorf("cross-talk: sent %q got %q", msg, resp)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPCallVScatterGather(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", func(at vtime.Time, req []byte) ([]byte, vtime.Time, error) {
		return req, at, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Segments — including empty ones — must arrive as one joined frame.
	segs := [][]byte{[]byte("head|"), nil, bytes.Repeat([]byte{0x42}, 100000), []byte("|tail")}
	want := append([]byte("head|"), bytes.Repeat([]byte{0x42}, 100000)...)
	want = append(want, []byte("|tail")...)
	resp, _, err := conn.CallV(0, segs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, want) {
		t.Fatal("vectored frame corrupted")
	}
}

func TestTCPRemoteError(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", func(at vtime.Time, req []byte) ([]byte, vtime.Time, error) {
		return nil, at, fmt.Errorf("remote exploded")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, _, err := conn.Call(0, []byte("x")); err == nil {
		t.Fatal("remote error not surfaced")
	}
}

func TestTCPLargePayload(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", func(at vtime.Time, req []byte) ([]byte, vtime.Time, error) {
		return req, at, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	big := make([]byte, 4<<20+16+37)
	for i := range big {
		big[i] = byte(i)
	}
	resp, _, err := conn.Call(0, big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, big) {
		t.Fatal("large payload corrupted")
	}
}
