package msgr

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/vtime"
)

// The TCP transport frames messages as:
//
//	magic u32 | id u64 | vtime i64 | status u32 | len u32 | payload
//
// Requests and responses share the frame shape; status is zero on
// requests and on successful responses. Concurrent calls multiplex on one
// connection by id.

const tcpMagic = 0x52424453 // "RBDS"

const tcpHeaderSize = 4 + 8 + 8 + 4 + 4

func writeFrame(w io.Writer, id uint64, at vtime.Time, status uint32, payload []byte) error {
	return writeFrameV(w, id, at, status, [][]byte{payload})
}

// writeFrameV writes one frame whose payload is the concatenation of
// segs, without joining them first: the header and every segment go out
// as one vectored write (writev on a net.Conn), so scatter-gather
// requests cross the socket with zero client-side payload copies.
func writeFrameV(w io.Writer, id uint64, at vtime.Time, status uint32, segs [][]byte) error {
	hdr := make([]byte, tcpHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], tcpMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], id)
	binary.LittleEndian.PutUint64(hdr[12:20], uint64(at))
	binary.LittleEndian.PutUint32(hdr[20:24], status)
	binary.LittleEndian.PutUint32(hdr[24:28], uint32(segsLen(segs)))
	bufs := make(net.Buffers, 0, 1+len(segs))
	bufs = append(bufs, hdr)
	for _, s := range segs {
		if len(s) > 0 {
			bufs = append(bufs, s)
		}
	}
	_, err := bufs.WriteTo(w)
	return err
}

func readFrame(r io.Reader) (id uint64, at vtime.Time, status uint32, payload []byte, err error) {
	hdr := make([]byte, tcpHeaderSize)
	if _, err = io.ReadFull(r, hdr); err != nil {
		return
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != tcpMagic {
		err = fmt.Errorf("msgr: bad frame magic")
		return
	}
	id = binary.LittleEndian.Uint64(hdr[4:12])
	at = vtime.Time(binary.LittleEndian.Uint64(hdr[12:20]))
	status = binary.LittleEndian.Uint32(hdr[20:24])
	n := binary.LittleEndian.Uint32(hdr[24:28])
	payload = make([]byte, n)
	_, err = io.ReadFull(r, payload)
	return
}

// TCPServer serves the framed protocol on a listener.
type TCPServer struct {
	handler Handler
	ln      net.Listener
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// ServeTCP starts serving on addr ("127.0.0.1:0" for an ephemeral port)
// and returns the server; Addr reports the bound address.
func ServeTCP(addr string, h Handler) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{handler: h, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and waits for connection goroutines.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer conn.Close()
	var wmu sync.Mutex
	for {
		id, at, _, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		// Handle concurrently so one slow op does not stall the stream.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			resp, done, herr := s.handler(at, payload)
			status := uint32(0)
			if herr != nil {
				status = 1
				resp = []byte(herr.Error())
			}
			wmu.Lock()
			defer wmu.Unlock()
			_ = writeFrame(conn, id, done, status, resp)
		}()
	}
}

// TCPConn is a multiplexing client connection.
type TCPConn struct {
	conn net.Conn
	wmu  sync.Mutex // serializes frame writes from concurrent Calls

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan tcpReply
	closed  bool
	readErr error
}

type tcpReply struct {
	at      vtime.Time
	status  uint32
	payload []byte
}

// DialTCP connects to a TCPServer.
func DialTCP(addr string) (*TCPConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &TCPConn{conn: conn, pending: make(map[uint64]chan tcpReply)}
	go c.readLoop()
	return c, nil
}

func (c *TCPConn) readLoop() {
	for {
		id, at, status, payload, err := readFrame(c.conn)
		c.mu.Lock()
		if err != nil {
			c.readErr = err
			for _, ch := range c.pending {
				close(ch)
			}
			c.pending = make(map[uint64]chan tcpReply)
			c.mu.Unlock()
			return
		}
		ch, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if ok {
			ch <- tcpReply{at: at, status: status, payload: payload}
		}
	}
}

// Call implements Conn.
func (c *TCPConn) Call(at vtime.Time, req []byte) ([]byte, vtime.Time, error) {
	return c.CallV(at, [][]byte{req})
}

// CallV implements Conn: the request segments are framed and written
// with one vectored socket write; no joined copy is ever built.
func (c *TCPConn) CallV(at vtime.Time, segs [][]byte) ([]byte, vtime.Time, error) {
	mCallsBytes.Inc()
	mOutstanding.Add(1)
	defer mOutstanding.Add(-1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, at, ErrClosed
	}
	c.nextID++
	id := c.nextID
	ch := make(chan tcpReply, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := writeFrameV(c.conn, id, at, 0, segs)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, at, err
	}
	reply, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.readErr
		c.mu.Unlock()
		return nil, at, fmt.Errorf("msgr: connection lost: %w", err)
	}
	if reply.status != 0 {
		return nil, reply.at, fmt.Errorf("msgr: remote: %s", reply.payload)
	}
	mBytesBytes.Add(int64(segsLen(segs) + len(reply.payload)))
	return reply.payload, reply.at, nil
}

// Close implements Conn.
func (c *TCPConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

var _ Conn = (*TCPConn)(nil)
