package analysis

// ignore.go implements the suite's allowlist mechanism. A finding is an
// invariant violation by default; the escape hatch is a source directive
// that names the analyzer being overridden and — mandatorily — why:
//
//	//vetrepo:ignore wirealias handler copies the pair before returning
//
// The directive suppresses matching diagnostics on its own line and on
// the line directly below it (so it can trail the offending statement or
// sit on its own line above it). The analyzer list is comma-separated;
// "all" suppresses every analyzer. A directive with no analyzer list or
// no reason is reported as a diagnostic itself — an unexplained
// suppression is exactly the silent convention-breaking the suite
// exists to prevent.

import (
	"go/ast"
	"go/token"
	"strings"
)

const ignorePrefix = "//vetrepo:ignore"

// A directive is one parsed //vetrepo:ignore comment.
type directive struct {
	names map[string]bool // analyzers suppressed; "all" wildcards
}

func (d *directive) matches(analyzer string) bool {
	return d.names["all"] || d.names[analyzer]
}

// ignoreIndex maps file name -> line -> directives on that line.
type ignoreIndex struct {
	m map[string]map[int][]*directive
}

// collectIgnores parses every //vetrepo:ignore directive in files.
// Malformed directives come back as diagnostics attributed to the
// pseudo-analyzer "vetrepo".
func collectIgnores(fset *token.FileSet, files []*ast.File) (*ignoreIndex, []Diagnostic) {
	idx := &ignoreIndex{m: make(map[string]map[int][]*directive)}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "vetrepo",
						Message:  `malformed directive: want "//vetrepo:ignore <analyzer>[,<analyzer>] <reason>" (the reason is mandatory)`,
					})
					continue
				}
				d := &directive{names: make(map[string]bool)}
				for _, n := range strings.Split(fields[0], ",") {
					d.names[n] = true
				}
				pos := fset.Position(c.Pos())
				lines := idx.m[pos.Filename]
				if lines == nil {
					lines = make(map[int][]*directive)
					idx.m[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
			}
		}
	}
	return idx, bad
}

// suppresses reports whether a directive covers the diagnostic: same
// line, or the line directly above.
func (idx *ignoreIndex) suppresses(fset *token.FileSet, d Diagnostic) bool {
	if d.Analyzer == "vetrepo" {
		return false // malformed-directive reports cannot be ignored away
	}
	pos := fset.Position(d.Pos)
	lines := idx.m[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, dir := range lines[line] {
			if dir.matches(d.Analyzer) {
				return true
			}
		}
	}
	return false
}
