package atomicstate

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestAtomicstate(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "telemetry", "history", "other", "attr")
}
