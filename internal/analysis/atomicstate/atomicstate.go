// Package atomicstate pins the telemetry metric structs to atomic-only
// state. Counter, Gauge and Histogram are recorded from every hot path
// in the stack concurrently and without locks — the whole design rests
// on each field being a sync/atomic value (or an array of them, or
// blank cache-line padding). A plain int64 slipped into one of these
// structs would type-check, pass light tests, and then race and lose
// increments under the -race CI job or in real concurrent runs; this
// analyzer rejects it structurally.
package atomicstate

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// metricStructs are the struct type names whose fields must be atomic.
var metricStructs = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

var Analyzer = &analysis.Analyzer{
	Name:     "atomicstate",
	Doc:      "telemetry metric structs (Counter, Gauge, Histogram) may hold only sync/atomic state: they are written lock-free from every hot path",
	Packages: map[string]bool{"telemetry": true, "history": true, "health": true, "attr": true},
	Run:      run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !metricStructs[ts.Name.Name] {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				checkStruct(pass, ts.Name.Name, st)
			}
		}
	}
	return nil
}

func checkStruct(pass *analysis.Pass, name string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || atomicOK(t) {
			continue
		}
		if len(field.Names) == 0 {
			pass.Reportf(field.Pos(), "metric struct %s embeds non-atomic %s; metric state must be sync/atomic (lock-free hot-path recording)", name, t)
			continue
		}
		for _, id := range field.Names {
			if id.Name == "_" {
				continue // cache-line padding
			}
			pass.Reportf(id.Pos(), "metric struct %s field %s is %s; metric state must be sync/atomic (a plain field races under lock-free recording)", name, id.Name, t)
		}
	}
}

// atomicOK reports whether t is a sync/atomic type or an array of them.
func atomicOK(t types.Type) bool {
	if arr, ok := t.Underlying().(*types.Array); ok {
		t = arr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}
