// Package telemetry seeds atomicstate violations and clean
// counterparts in a package named like the real metrics package.
package telemetry

import "sync/atomic"

// Counter is the clean shape: one atomic plus blank padding.
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Gauge smuggles a plain numeric field next to the atomic.
type Gauge struct {
	v    atomic.Int64
	last int64 // want "metric struct Gauge field last is int64"
}

// Histogram mixes an atomic array (fine) with plain state (not).
type Histogram struct {
	count   atomic.Int64
	buckets [4]atomic.Int64
	sum     int64  // want "metric struct Histogram field sum is int64"
	mu      noCopy // want "metric struct Histogram field mu"
}

type noCopy struct{}

// tracker is not a metric struct; plain fields are fine here.
type tracker struct {
	n int64
}
