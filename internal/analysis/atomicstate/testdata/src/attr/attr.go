// Package attr seeds atomicstate violations in a package named like
// the tail-latency attribution plane: attribution is recorded on every
// op from every hot path concurrently, so a metric struct defined here
// is held to the same atomic-only rule as the core telemetry types.
package attr

import "sync/atomic"

// Counter is the clean shape: atomic value plus cache-line padding.
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Histogram smuggles a plain overflow tally next to the atomic buckets.
type Histogram struct {
	buckets  [28]atomic.Int64
	overflow int64 // want "metric struct Histogram field overflow is int64"
}

// report is not a metric struct; analysis-side aggregation works on
// plain snapshot values and must not be flagged.
type report struct {
	count int64
	sum   int64
}
