// Package other is outside the telemetry package set: the analyzer
// must not fire even on a struct named like a metric.
package other

type Counter struct {
	n int64
}
