// Package history seeds atomicstate violations in a package named like
// the time-series history ring: its snapshot meta-metrics are recorded
// from the same lock-free discipline as the rest of telemetry, so a
// metric struct defined here is held to the same atomic-only rule.
package history

import "sync/atomic"

// Counter is the clean shape: atomic value plus padding.
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Gauge smuggles a plain snapshot cache next to the atomic.
type Gauge struct {
	v        atomic.Int64
	lastSeen int64 // want "metric struct Gauge field lastSeen is int64"
}

// ring is not a metric struct; the single-writer sample rings hold
// plain values by design and must not be flagged.
type ring struct {
	times  []int64
	values []int64
}
