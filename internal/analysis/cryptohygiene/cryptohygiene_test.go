package cryptohygiene

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestCryptohygiene(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "kdf", "util")
}
