// Package cryptohygiene enforces the crypto packages' implementation
// discipline: no math/rand anywhere near key material (crypto/rand
// only), no variable-time comparison of authentication tags or digests
// (crypto/subtle), and no key or plaintext material flowing into fmt or
// log sinks, where it would end up in error strings, logs and crash
// reports. The rules are deliberately name-driven — an identifier that
// calls itself a key, digest or passphrase is treated as one — because
// in these packages that convention holds, and a false positive is one
// reasoned //vetrepo:ignore away.
package cryptohygiene

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// cryptoPackages is where the rules apply: the cipher and key-derivation
// packages plus the two container/device layers that handle master keys.
var cryptoPackages = map[string]bool{
	"eme":     true,
	"xts":     true,
	"kdf":     true,
	"essiv":   true,
	"luks":    true,
	"dmcrypt": true,
}

var (
	// secretCmpPat marks comparison operands that carry authenticator
	// material: tags, MACs, digests, checksums.
	secretCmpPat = regexp.MustCompile(`(?i)(tag|mac|digest|checksum|check|sum)`)
	// secretSinkPat marks values that must never reach a format/log
	// sink: keys, passphrases, plaintext.
	secretSinkPat = regexp.MustCompile(`(?i)(key|secret|passphrase|password|plain|master)`)
)

var Analyzer = &analysis.Analyzer{
	Name:     "cryptohygiene",
	Doc:      "bans math/rand, variable-time tag/digest comparison, and key/plaintext material in fmt/log sinks inside the crypto packages",
	Packages: cryptoPackages,
	Run:      run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "%s imported in a crypto package; key and nonce material must come from crypto/rand", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCompare(pass, call)
			checkSink(pass, call)
			return true
		})
	}
	return nil
}

// checkCompare flags bytes.Equal / reflect.DeepEqual over operands named
// like authenticators.
func checkCompare(pass *analysis.Pass, call *ast.CallExpr) {
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	fullName := f.Pkg().Path() + "." + f.Name()
	if fullName != "bytes.Equal" && fullName != "reflect.DeepEqual" {
		return
	}
	for _, arg := range call.Args {
		if name := exprName(arg); name != "" && secretCmpPat.MatchString(name) {
			pass.Reportf(call.Pos(), "%s on %q is variable-time; compare tags/digests with crypto/subtle.ConstantTimeCompare", fullName, name)
			return
		}
	}
}

// sinkFuncs are the fmt/log entry points whose arguments get formatted
// into strings that escape the crypto boundary.
var sinkPkgs = map[string]bool{"fmt": true, "log": true, "log/slog": true}

// checkSink flags byte-slice/array key material passed to fmt/log.
func checkSink(pass *analysis.Pass, call *ast.CallExpr) {
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil || !sinkPkgs[f.Pkg().Path()] {
		return
	}
	for _, arg := range call.Args {
		name := exprName(arg)
		if name == "" || !secretSinkPat.MatchString(name) {
			continue
		}
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || !isByteish(tv.Type) {
			continue
		}
		pass.Reportf(arg.Pos(), "%q reaches %s.%s; key/plaintext material must not be formatted into strings or logs", name, f.Pkg().Name(), f.Name())
	}
}

// exprName extracts the human-meaningful name of an expression: the
// identifier, the selected field, or the called function's name, looking
// through slices, indexes and conversions.
func exprName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.IndexExpr:
		return exprName(x.X)
	case *ast.SliceExpr:
		return exprName(x.X)
	case *ast.UnaryExpr:
		return exprName(x.X)
	case *ast.StarExpr:
		return exprName(x.X)
	case *ast.CallExpr:
		// A conversion like []byte(pass) or a call like digestOf(...):
		// the callee name is the best label either way.
		if len(x.Args) == 1 {
			if inner := exprName(x.Args[0]); inner != "" {
				return inner
			}
		}
		return exprName(x.Fun)
	}
	return ""
}

// isByteish reports whether t is a byte slice or byte array (possibly
// named), the shapes key material takes in this repo. Strings are
// excluded: error prefixes and parameter names dominate string
// arguments, and keys are never strings here.
func isByteish(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		b, ok := u.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	case *types.Array:
		b, ok := u.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	case *types.Pointer:
		return isByteish(u.Elem())
	}
	return false
}
