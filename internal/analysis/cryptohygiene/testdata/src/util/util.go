// Package util sits outside the crypto set: the same shapes are not
// flagged here.
package util

import "bytes"

func TagsEqual(tag, expect []byte) bool {
	return bytes.Equal(tag, expect)
}
