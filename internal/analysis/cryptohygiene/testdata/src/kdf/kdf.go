// Package kdf seeds cryptohygiene violations and clean counterparts in
// a package named like a crypto package.
package kdf

import (
	"bytes"
	"crypto/subtle"
	"fmt"
	mrand "math/rand" // want "math/rand imported in a crypto package"
)

var _ = mrand.Int

func badTagCompare(tag, expect []byte) bool {
	return bytes.Equal(tag, expect) // want "variable-time"
}

func badKeyLog(key []byte) error {
	return fmt.Errorf("derive failed for key %x", key) // want "must not be formatted"
}

func okSubtleCompare(tag, expect []byte) bool {
	return subtle.ConstantTimeCompare(tag, expect) == 1
}

func okKeyLength(key []byte) error {
	return fmt.Errorf("bad key length %d", len(key))
}

func okPlainData(data []byte) string {
	return fmt.Sprintf("%d bytes", len(data))
}
