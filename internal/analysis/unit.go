package analysis

// unit.go speaks cmd/go's vet tool protocol, so the suite runs under
//
//	go vet -vettool=$(which vetrepo) ./...
//
// with cmd/go's build cache, file lists and per-package export data. The
// protocol (see $GOROOT/src/cmd/go/internal/work/exec.go, vetConfig):
// cmd/go invokes the tool once per package with a single JSON config
// file argument describing the package — absolute Go file paths, an
// import map, and an import-path → export-data-file map for the whole
// dependency closure — plus, separately, `-V=full` to obtain a build ID
// for caching. The tool type-checks the package against the export
// data, runs the analyzers, writes an (empty — the suite records no
// cross-package facts) .vetx output so clean results are cacheable, and
// exits nonzero iff it found violations.

import (
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
)

// unitConfig mirrors cmd/go's vetConfig.
type unitConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// UnitMain runs the analyzers over the single package described by the
// vet config file and returns the process exit code: 0 clean, 1 driver
// or type-check failure, 2 violations found. Diagnostics go to stderr,
// where cmd/go relays (and re-relativizes) them.
func UnitMain(cfgPath string, analyzers []*Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "vetrepo: reading config: %v\n", err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "vetrepo: parsing config %s: %v\n", cfgPath, err)
		return 1
	}

	// The suite computes no cross-package facts; an empty vetx output
	// still lets cmd/go cache the clean result for dependency packages.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "vetrepo: writing vetx output: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	u := &Unit{Fset: fset}
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(stderr, "vetrepo: %v\n", err)
			return 1
		}
		u.Files = append(u.Files, f)
	}

	info := NewInfo()
	var firstErr error
	conf := types.Config{
		Importer:  newExportImporter(fset, cfg.ImportMap, cfg.PackageFile, nil),
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, u.Files, info)
	if firstErr != nil {
		err = firstErr
	}
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "vetrepo: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	u.Pkg, u.Info = pkg, info

	diags, err := RunAnalyzers(u, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "vetrepo: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
