package wirealias

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestWirealias(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "a")
}
