// Package rados is a fixture stub standing in for repro/internal/rados:
// the two decoders alias their input buffer, like the real ones.
package rados

type Op struct{ Data []byte }

type Request struct{ Ops []Op }

type Reply struct{ Payload []byte }

func UnmarshalRequest(b []byte) (*Request, error) {
	return &Request{Ops: []Op{{Data: b}}}, nil
}

func UnmarshalReply(b []byte) (*Reply, error) {
	return &Reply{Payload: b}, nil
}
