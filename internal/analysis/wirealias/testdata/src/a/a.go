// Package a seeds wirealias violations and clean counterparts.
package a

import (
	"bufpool"
	"rados"
)

type server struct{ last []byte }

var saved []byte

var callbacks = make(map[string]func() []byte)

func retainField(s *server, buf []byte) {
	q, _ := rados.UnmarshalRequest(buf)
	s.last = q.Ops[0].Data // want "struct field"
}

func retainGlobal(buf []byte) {
	q, _ := rados.UnmarshalRequest(buf)
	saved = q.Ops[0].Data // want "package variable"
}

func retainClosure(buf []byte) {
	q, _ := rados.UnmarshalRequest(buf)
	callbacks["x"] = func() []byte { return q.Ops[0].Data } // want "closure"
}

func mutateAppend(buf []byte) []byte {
	q, _ := rados.UnmarshalRequest(buf)
	return append(q.Ops[0].Data, 0) // want "append on wire-aliased"
}

func mutateElem(buf []byte) {
	q, _ := rados.UnmarshalRequest(buf)
	q.Ops[0].Data[0] = 1 // want "write into wire-aliased"
}

func poisonPool(buf []byte) {
	r, _ := rados.UnmarshalReply(buf)
	bufpool.Put(r.Payload) // want "returned to bufpool"
}

func okCopied(s *server, buf []byte) {
	q, _ := rados.UnmarshalRequest(buf)
	owned := make([]byte, len(q.Ops[0].Data))
	copy(owned, q.Ops[0].Data)
	s.last = owned
}

func okLocalUse(buf []byte) int {
	q, _ := rados.UnmarshalRequest(buf)
	n := 0
	for _, op := range q.Ops {
		n += len(op.Data)
	}
	return n
}

func okOwnedPut(buf []byte) {
	b := bufpool.Get(64)
	copy(b, buf)
	bufpool.Put(b)
}
