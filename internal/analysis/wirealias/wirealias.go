// Package wirealias polices the zero-copy wire contract. The aliasing
// decoders (rados.UnmarshalRequest / rados.UnmarshalReply) return
// structures whose byte slices point straight into the transport
// buffer; that is the whole point of the zero-copy path, and it is safe
// only while the handler treats those views as read-only and lets them
// die with the handler frame. Retaining such a slice in a field, map or
// package variable reads whatever the transport reuses the buffer for
// next; appending to one (or copying/clearing into one) writes into the
// live wire buffer; handing one to bufpool.Put poisons the buffer pool
// with memory the transport still owns. Each of those shapes is flagged
// here, rooted at variables bound to an aliasing-decoder result.
package wirealias

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wirealias",
	Doc:  "flags retention or mutation of slices returned by the aliasing wire decoders (rados.UnmarshalRequest/UnmarshalReply)",
	Run:  run,
}

// isAliasDecoder matches the wire decoders whose results alias their
// input, by defining-package name so fixtures can stand in.
func isAliasDecoder(f *types.Func) bool {
	return analysis.FuncPkgName(f) == "rados" &&
		(f.Name() == "UnmarshalRequest" || f.Name() == "UnmarshalReply")
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		aliased := collectAliasVars(pass, file)
		if len(aliased) == 0 {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				checkAssign(pass, s, aliased)
			case *ast.CallExpr:
				checkCall(pass, s, aliased)
			}
			return true
		})
	}
	return nil
}

// collectAliasVars finds variables bound to an aliasing decoder result:
// q in `q, err := rados.UnmarshalRequest(buf)`.
func collectAliasVars(pass *analysis.Pass, file *ast.File) map[*types.Var]bool {
	aliased := make(map[*types.Var]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		f := analysis.CalleeFunc(pass.TypesInfo, call)
		if f == nil || !isAliasDecoder(f) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if v := analysis.ObjectOf(pass.TypesInfo, id); v != nil {
				aliased[v] = true
			}
		}
		return true
	})
	return aliased
}

// aliasRooted reports whether the expression is a selector/index/slice
// chain rooted at an alias variable (q, q.Ops[i].Data, res.Pairs[0].Value...).
func aliasRooted(pass *analysis.Pass, e ast.Expr, aliased map[*types.Var]bool) *ast.Ident {
	root := analysis.RootIdent(e)
	if root == nil {
		return nil
	}
	if v := analysis.ObjectOf(pass.TypesInfo, root); v != nil && aliased[v] {
		return root
	}
	return nil
}

func checkAssign(pass *analysis.Pass, as *ast.AssignStmt, aliased map[*types.Var]bool) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lhs, rhs := as.Lhs[i], ast.Unparen(as.Rhs[i])

		// Element writes into an aliased byte slice scribble on the
		// transport buffer: q.Ops[i].Data[j] = x.
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if root := aliasRooted(pass, ix.X, aliased); root != nil && isByteSlice(pass.TypesInfo.Types[ix.X].Type) {
				pass.Reportf(lhs.Pos(), "write into wire-aliased slice (rooted at %s): this mutates the transport buffer in place", root.Name)
				continue
			}
		}

		// Retention: an aliased view stored somewhere that outlives the
		// handler frame.
		sink := sinkKind(pass, lhs)
		if sink == "" {
			continue
		}
		if root := aliasRooted(pass, rhs, aliased); root != nil {
			pass.Reportf(rhs.Pos(), "wire-aliased memory (rooted at %s) stored in %s outlives the handler; the transport will reuse the buffer under it — copy first", root.Name, sink)
		} else if lit, ok := rhs.(*ast.FuncLit); ok {
			if root := capturedAlias(pass, lit, aliased); root != nil {
				pass.Reportf(rhs.Pos(), "closure stored in %s captures wire-aliased %s, retaining transport memory past the handler", sink, root.Name)
			}
		}
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, aliased map[*types.Var]bool) {
	// Builtins that grow or mutate: append (may write into the aliased
	// array's spare capacity — here there is none to own), copy into an
	// aliased destination, clear of an aliased slice.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			switch id.Name {
			case "append", "copy", "clear":
				if root := aliasRooted(pass, call.Args[0], aliased); root != nil {
					pass.Reportf(call.Pos(), "%s on wire-aliased slice (rooted at %s) writes into the transport buffer; copy the bytes into an owned buffer first", id.Name, root.Name)
				}
			}
			return
		}
	}

	// Wire-aliased memory must never enter the buffer pool: the
	// transport owns it, and pooling it hands it to an unrelated IO.
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	if f == nil {
		return
	}
	isPut := (analysis.FuncPkgName(f) == "bufpool" && f.Name() == "Put") || f.Name() == "putBuf"
	if isPut && len(call.Args) == 1 {
		if root := aliasRooted(pass, call.Args[0], aliased); root != nil {
			pass.Reportf(call.Pos(), "wire-aliased slice (rooted at %s) returned to bufpool: the pool would recycle memory the transport still owns", root.Name)
		}
	}
}

// sinkKind classifies assignment targets that outlive the handler frame.
func sinkKind(pass *analysis.Pass, lhs ast.Expr) string {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if sel := pass.TypesInfo.Selections[x]; sel != nil {
			return "a struct field"
		}
		return "a package variable"
	case *ast.IndexExpr:
		return "a map or slice element"
	case *ast.Ident:
		if v := analysis.ObjectOf(pass.TypesInfo, x); v != nil && v.Parent() == pass.Pkg.Scope() {
			return "a package variable"
		}
	}
	return ""
}

func capturedAlias(pass *analysis.Pass, lit *ast.FuncLit, aliased map[*types.Var]bool) *ast.Ident {
	var captured *ast.Ident
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && aliased[v] {
				captured = id
			}
		}
		return captured == nil
	})
	return captured
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
