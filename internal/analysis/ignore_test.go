package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parse returns the fset, file and ignore state for one source text.
func parseIgnores(t *testing.T, src string) (*token.FileSet, *ast.File, *ignoreIndex, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	idx, bad := collectIgnores(fset, []*ast.File{f})
	return fset, f, idx, bad
}

// posOnLine fabricates a Pos on the given 1-based line of the file.
func posOnLine(fset *token.FileSet, f *ast.File, line int) token.Pos {
	return fset.File(f.Pos()).LineStart(line)
}

func TestIgnoreSuppressesSameAndNextLine(t *testing.T) {
	const src = `package p

func a() {
	//vetrepo:ignore vtimeonly simulation harness boundary
	_ = 1
	_ = 2
}
`
	fset, f, idx, bad := parseIgnores(t, src)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed directives: %v", bad)
	}
	// Line 4 holds the directive; it covers lines 4 and 5, not 6.
	for line, want := range map[int]bool{4: true, 5: true, 6: false} {
		d := Diagnostic{Pos: posOnLine(fset, f, line), Analyzer: "vtimeonly"}
		if got := idx.suppresses(fset, d); got != want {
			t.Errorf("line %d: suppresses = %v, want %v", line, got, want)
		}
	}
	// A different analyzer on the covered line is not suppressed.
	d := Diagnostic{Pos: posOnLine(fset, f, 5), Analyzer: "pooledbuf"}
	if idx.suppresses(fset, d) {
		t.Error("directive for vtimeonly suppressed a pooledbuf diagnostic")
	}
}

func TestIgnoreListAndAll(t *testing.T) {
	const src = `package p

func a() {
	//vetrepo:ignore vtimeonly,pooledbuf shared buffer handed to the harness
	_ = 1
}

func b() {
	//vetrepo:ignore all generated fixture
	_ = 2
}
`
	fset, f, idx, bad := parseIgnores(t, src)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed directives: %v", bad)
	}
	for _, name := range []string{"vtimeonly", "pooledbuf"} {
		d := Diagnostic{Pos: posOnLine(fset, f, 5), Analyzer: name}
		if !idx.suppresses(fset, d) {
			t.Errorf("comma list did not suppress %s", name)
		}
	}
	d := Diagnostic{Pos: posOnLine(fset, f, 5), Analyzer: "wirealias"}
	if idx.suppresses(fset, d) {
		t.Error("comma list suppressed an unlisted analyzer")
	}
	d = Diagnostic{Pos: posOnLine(fset, f, 10), Analyzer: "wirealias"}
	if !idx.suppresses(fset, d) {
		t.Error("all directive did not suppress")
	}
}

func TestIgnoreWithoutReasonIsMalformed(t *testing.T) {
	const src = `package p

func a() {
	//vetrepo:ignore vtimeonly
	_ = 1
}
`
	fset, f, idx, bad := parseIgnores(t, src)
	if len(bad) != 1 {
		t.Fatalf("got %d malformed diagnostics, want 1: %v", len(bad), bad)
	}
	if bad[0].Analyzer != "vetrepo" || !strings.Contains(bad[0].Message, "reason is mandatory") {
		t.Errorf("unexpected malformed diagnostic: %+v", bad[0])
	}
	// The malformed directive suppresses nothing, and the malformed
	// report itself cannot be ignored away.
	d := Diagnostic{Pos: posOnLine(fset, f, 5), Analyzer: "vtimeonly"}
	if idx.suppresses(fset, d) {
		t.Error("malformed directive still suppressed a diagnostic")
	}
	if idx.suppresses(fset, bad[0]) {
		t.Error("vetrepo malformed-directive report was suppressible")
	}
}
