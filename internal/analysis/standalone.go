package analysis

// standalone.go loads this module for analysis without cmd/go's vet
// driver: `go list -export -deps -test` inventories every package and
// supplies export data for the out-of-module dependency closure (the
// standard library), and the module's own packages — the ones the
// analyzers need syntax for — are parsed and type-checked from source
// in dependency order against that export data. Test files are covered
// the same way `go vet` covers them: the in-package test files are
// checked merged with their package (diagnostics restricted to the test
// files, which were not seen by the base unit), and external _test
// packages are checked as their own unit.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Finding is one resolved diagnostic with its source position.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

type listedModule struct {
	Path string
	Main bool
}

type listedPackage struct {
	ImportPath   string
	Name         string
	Dir          string
	Standard     bool
	Export       string
	ForTest      string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	Module       *listedModule
}

func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

const listFields = "-json=ImportPath,Name,Dir,Standard,Export,ForTest,GoFiles,TestGoFiles,XTestGoFiles,Imports,Module"

// RunStandalone analyzes the module packages matching patterns (resolved
// relative to dir) with the given analyzers and returns the findings.
func RunStandalone(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	// Inventory the full dependency closure, tests included, building
	// export data as a side effect.
	closure, err := goList(dir, append([]string{"-export", "-deps", "-test", listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	mods := make(map[string]*listedPackage)
	for _, p := range closure {
		if p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") {
			continue // synthesized test variants; covered from source below
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && p.Module.Main {
			mods[p.ImportPath] = p
		}
	}

	// The analysis roots are the plain pattern matches, in list order.
	matches, err := goList(dir, append([]string{listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	exp := newExportImporter(fset, nil, exports, nil)

	parse := func(listed *listedPackage, names []string) ([]*ast.File, error) {
		var files []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(listed.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		return files, nil
	}

	check := func(path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
		info := NewInfo()
		var firstErr error
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
			Error: func(err error) {
				if firstErr == nil {
					firstErr = err
				}
			},
		}
		pkg, err := conf.Check(path, fset, files, info)
		if firstErr != nil {
			err = firstErr
		}
		return pkg, info, err
	}

	// loadBase type-checks one module package (non-test files) from
	// source, memoized; imports of other module packages recurse, and
	// everything else resolves from export data.
	type basePkg struct {
		unit *Unit
		err  error
	}
	bases := make(map[string]*basePkg)
	var loadBase func(path string) (*basePkg, error)
	var baseImporter importerFunc
	baseImporter = func(path string) (*types.Package, error) {
		if _, ok := mods[path]; ok {
			b, err := loadBase(path)
			if err != nil {
				return nil, err
			}
			return b.unit.Pkg, nil
		}
		return exp.Import(path)
	}
	loading := errors.New("loading")
	loadBase = func(path string) (*basePkg, error) {
		if b, ok := bases[path]; ok {
			if b.err == loading {
				return nil, fmt.Errorf("import cycle through %s", path)
			}
			return b, b.err
		}
		b := &basePkg{err: loading}
		bases[path] = b
		listed := mods[path]
		files, err := parse(listed, listed.GoFiles)
		if err == nil {
			var pkg *types.Package
			var info *types.Info
			pkg, info, err = check(path, files, baseImporter)
			if err == nil {
				b.unit = &Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}
			}
		}
		b.err = err
		return b, err
	}

	var findings []Finding
	analyze := func(u *Unit) error {
		diags, err := RunAnalyzers(u, analyzers)
		if err != nil {
			return err
		}
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			if rel, err := filepath.Rel(dir, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
			findings = append(findings, Finding{Position: pos, Analyzer: d.Analyzer, Message: d.Message})
		}
		return nil
	}

	for _, m := range matches {
		listed := mods[m.ImportPath]
		if listed == nil {
			continue // pattern matched outside the main module
		}
		base, err := loadBase(m.ImportPath)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", m.ImportPath, err)
		}
		if err := analyze(base.unit); err != nil {
			return nil, err
		}

		// In-package test files: the package re-checked with its test
		// files merged, reporting only on the test files.
		var testPkg *types.Package
		if len(listed.TestGoFiles) > 0 {
			files, err := parse(listed, append(append([]string{}, listed.GoFiles...), listed.TestGoFiles...))
			if err != nil {
				return nil, err
			}
			pkg, info, err := check(m.ImportPath, files, baseImporter)
			if err != nil {
				return nil, fmt.Errorf("%s [test]: %v", m.ImportPath, err)
			}
			testPkg = pkg
			report := make(map[string]bool, len(listed.TestGoFiles))
			for _, name := range listed.TestGoFiles {
				report[filepath.Join(listed.Dir, name)] = true
			}
			if err := analyze(&Unit{Fset: fset, Files: files, Pkg: pkg, Info: info, ReportFiles: report}); err != nil {
				return nil, err
			}
		}

		// External test package: its import of the package under test
		// resolves to the test variant, as in a real test build — and so
		// do the imports of any module package between the xtest and the
		// package under test (cmd/go recompiles those against the test
		// variant too; resolving them to the base build would make the
		// same named type come from two distinct *types.Packages and fail
		// checking with a confusing self-mismatch).
		if len(listed.XTestGoFiles) > 0 {
			files, err := parse(listed, listed.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			ownPath := m.ImportPath
			variants := make(map[string]*types.Package)
			var xImp importerFunc
			xImp = func(path string) (*types.Package, error) {
				if path == ownPath && testPkg != nil {
					return testPkg, nil
				}
				if v, ok := variants[path]; ok {
					return v, nil
				}
				if dep := mods[path]; dep != nil && testPkg != nil && dependsOn(mods, path, ownPath) {
					vfiles, err := parse(dep, dep.GoFiles)
					if err != nil {
						return nil, err
					}
					pkg, _, err := check(path, vfiles, xImp)
					if err != nil {
						return nil, fmt.Errorf("%s [as dep of %s_test]: %v", path, ownPath, err)
					}
					variants[path] = pkg
					return pkg, nil
				}
				return baseImporter(path)
			}
			pkg, info, err := check(m.ImportPath+"_test", files, xImp)
			if err != nil {
				return nil, fmt.Errorf("%s [xtest]: %v", m.ImportPath, err)
			}
			if err := analyze(&Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}); err != nil {
				return nil, err
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		fi, fj := findings[i], findings[j]
		if fi.Position.Filename != fj.Position.Filename {
			return fi.Position.Filename < fj.Position.Filename
		}
		if fi.Position.Line != fj.Position.Line {
			return fi.Position.Line < fj.Position.Line
		}
		return fi.Position.Column < fj.Position.Column
	})
	return findings, nil
}

// dependsOn reports whether module package from transitively imports
// target, walking the `go list` import graph restricted to the main
// module (out-of-module packages cannot import back into it).
func dependsOn(mods map[string]*listedPackage, from, target string) bool {
	seen := make(map[string]bool)
	var walk func(path string) bool
	walk = func(path string) bool {
		if seen[path] {
			return false
		}
		seen[path] = true
		p := mods[path]
		if p == nil {
			return false
		}
		for _, imp := range p.Imports {
			if imp == target || walk(imp) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return f(path)
}
