// Package lockdiscipline checks the stack's lock hierarchy around the
// per-object striped lock table. The engine intentionally holds a
// striped per-object lock across the backing-store Operate call — that
// is the serialization point for read-modify-write, copyup and rekey —
// so that shape is NOT flagged. What the analyzer bans are the shapes
// that have actually deadlocked stacks like this one:
//
//   - acquiring a second striped table lock while one is held (two
//     object indexes can hash to the same stripe, which self-deadlocks
//     on a non-reentrant mutex);
//   - calling back into an image entry point (ReadAt, WriteAt,
//     CopyupObject, RekeyObject, ...) while a table lock is held — the
//     entry point re-acquires the stripe for its own object;
//   - blocking wire calls (Operate, OperateHeader, Call, CallV) while
//     holding a plain sync.Mutex/RWMutex, which are used here for
//     metadata maps and must stay I/O-free;
//   - time.Sleep while holding any lock.
//
// A "table lock" is one fetched from an accessor (the receiver chain of
// Lock() contains a call, e.g. e.locks.of(idx).Lock()) or a variable
// initialized from such a call; every other sync mutex is "plain".
package lockdiscipline

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "flags nested striped-lock acquisition, re-entrant image calls under a table lock, blocking wire calls under plain mutexes, and sleeps under any lock",
	Run:  run,
}

// entryPoints are the image entry points that internally acquire the
// per-object stripe, matched as methods of the engine packages.
var entryPoints = map[string]bool{
	"ReadAt":            true,
	"WriteAt":           true,
	"ReadAtSnap":        true,
	"ReadAtSnapPresent": true,
	"RekeyObject":       true,
	"CopyupObject":      true,
	"Discard":           true,
}

var entryPkgs = map[string]bool{"core": true, "clone": true}

// blockingOps are the synchronous wire/backing-store calls.
var blockingOps = map[string]bool{
	"Operate":       true,
	"OperateHeader": true,
	"Call":          true,
	"CallV":         true,
}

var blockingPkgs = map[string]bool{"rados": true, "msgr": true, "rbd": true}

type lockKind int

const (
	plainLock lockKind = iota
	tableLock
)

func (k lockKind) String() string {
	if k == tableLock {
		return "table lock"
	}
	return "mutex"
}

// heldLock identifies one acquired lock within a statement list.
type heldLock struct {
	kind lockKind
	// path is the receiver expression rendered to text (e.g. "lk",
	// "e.mu"); used to pair the releasing Unlock and to name the lock in
	// diagnostics.
	path string
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		tableVars := collectTableVars(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.BlockStmt:
				scanList(pass, s.List, tableVars)
			case *ast.CaseClause:
				scanList(pass, s.Body, tableVars)
			case *ast.CommClause:
				scanList(pass, s.Body, tableVars)
			}
			return true
		})
	}
	return nil
}

// collectTableVars finds variables bound to an accessor-returned mutex:
// lk := e.locks.of(idx).
func collectTableVars(pass *analysis.Pass, file *ast.File) map[*types.Var]bool {
	vars := make(map[*types.Var]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			if _, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			v := analysis.ObjectOf(pass.TypesInfo, id)
			if v != nil && analysis.IsMutex(v.Type()) {
				vars[v] = true
			}
		}
		return true
	})
	return vars
}

// syncLockCall matches m.Lock()/m.RLock() (acquire=true) or
// m.Unlock()/m.RUnlock() (acquire=false) on a sync mutex, returning the
// receiver expression.
func syncLockCall(pass *analysis.Pass, call *ast.CallExpr, acquire bool) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	f, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return nil, false
	}
	name := f.Name()
	if acquire {
		if name != "Lock" && name != "RLock" {
			return nil, false
		}
	} else {
		if name != "Unlock" && name != "RUnlock" {
			return nil, false
		}
	}
	return sel.X, true
}

// classify decides whether the receiver of a Lock call is a striped
// table lock or a plain mutex.
func classify(pass *analysis.Pass, recv ast.Expr, tableVars map[*types.Var]bool) lockKind {
	if analysis.ContainsCall(recv) {
		return tableLock
	}
	if root := analysis.RootIdent(recv); root != nil {
		if v := analysis.ObjectOf(pass.TypesInfo, root); v != nil && tableVars[v] {
			return tableLock
		}
	}
	return plainLock
}

// scanList walks one straight-line statement sequence. From a Lock
// statement until its pairing plain Unlock (a deferred Unlock holds the
// lock to function end, i.e. past the end of this list), every
// statement is checked for the banned shapes.
func scanList(pass *analysis.Pass, list []ast.Stmt, tableVars map[*types.Var]bool) {
	for i, stmt := range list {
		held, ok := acquireOf(pass, stmt, tableVars)
		if !ok {
			continue
		}
		for _, later := range list[i+1:] {
			if releases(pass, later, held) {
				break
			}
			checkStmt(pass, later, held, tableVars)
		}
	}
}

// acquireOf matches a statement that is a plain Lock/RLock call.
func acquireOf(pass *analysis.Pass, stmt ast.Stmt, tableVars map[*types.Var]bool) (heldLock, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return heldLock{}, false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return heldLock{}, false
	}
	recv, ok := syncLockCall(pass, call, true)
	if !ok {
		return heldLock{}, false
	}
	return heldLock{
		kind: classify(pass, recv, tableVars),
		path: types.ExprString(recv),
	}, true
}

// releases matches the plain (non-deferred) Unlock pairing held.
func releases(pass *analysis.Pass, stmt ast.Stmt, held heldLock) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	recv, ok := syncLockCall(pass, call, false)
	return ok && types.ExprString(recv) == held.path
}

// checkStmt inspects one statement executed while held is locked.
func checkStmt(pass *analysis.Pass, stmt ast.Stmt, held heldLock, tableVars map[*types.Var]bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		// A deferred call runs at function exit, when this lock may be
		// gone; a nested function literal runs who-knows-when. Neither
		// executes under the lock at this point in the sequence.
		switch n.(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}

		if recv, isAcquire := syncLockCall(pass, call, true); isAcquire {
			if held.kind == tableLock && classify(pass, recv, tableVars) == tableLock {
				pass.Reportf(call.Pos(), "second striped table lock (%s) acquired while holding %s: two object indexes can share a stripe, which self-deadlocks", types.ExprString(recv), held.path)
			}
			return true
		}

		f := analysis.CalleeFunc(pass.TypesInfo, call)
		if f == nil {
			return true
		}
		pkg := analysis.FuncPkgName(f)
		isMethod := !analysis.IsPkgLevel(f)

		switch {
		case f.Pkg() != nil && f.Pkg().Path() == "time" && f.Name() == "Sleep":
			pass.Reportf(call.Pos(), "time.Sleep while holding %s %s stalls every goroutine queued on it", held.kind, held.path)
		case held.kind == tableLock && isMethod && entryPkgs[pkg] && entryPoints[f.Name()]:
			pass.Reportf(call.Pos(), "image entry point %s called while holding table lock %s: it re-acquires the per-object stripe and can self-deadlock", f.Name(), held.path)
		case held.kind == plainLock && isMethod && blockingPkgs[pkg] && blockingOps[f.Name()]:
			pass.Reportf(call.Pos(), "blocking wire call %s.%s under mutex %s: plain mutexes guard metadata and must stay I/O-free (per-object stripes are the I/O serialization point)", pkg, f.Name(), held.path)
		}
		return true
	})
}
