// Package core seeds lockdiscipline violations and the intentional
// clean shapes the analyzer must NOT flag.
package core

import (
	"sync"
	"time"

	"rados"
)

type lockTable struct{ mu [16]sync.Mutex }

func (t *lockTable) of(i int) *sync.Mutex { return &t.mu[i%16] }

type engine struct {
	locks lockTable
	mu    sync.Mutex
	conn  *rados.Conn
}

func (e *engine) WriteAt(p []byte, off int64) (int, error) { return len(p), nil }

func (e *engine) badNestedStripe(i, j int) {
	lk := e.locks.of(i)
	lk.Lock()
	defer lk.Unlock()
	e.locks.of(j).Lock() // want "second striped table lock"
}

func (e *engine) badReentrantEntry(i int, p []byte) {
	lk := e.locks.of(i)
	lk.Lock()
	defer lk.Unlock()
	_, _ = e.WriteAt(p, 0) // want "re-acquires the per-object stripe"
}

func (e *engine) badBlockingUnderMutex(oid string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	_ = e.conn.Operate(oid) // want "blocking wire call"
}

func (e *engine) badSleepUnderLock() {
	e.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding"
	e.mu.Unlock()
}

// okOperateUnderStripe is the engine's intentional serialization shape:
// the per-object stripe IS the I/O serialization point.
func (e *engine) okOperateUnderStripe(i int, oid string) {
	lk := e.locks.of(i)
	lk.Lock()
	defer lk.Unlock()
	_ = e.conn.Operate(oid)
}

func (e *engine) okOperateAfterUnlock(oid string) {
	e.mu.Lock()
	e.conn = &rados.Conn{}
	e.mu.Unlock()
	_ = e.conn.Operate(oid)
}

func (e *engine) okDeferredWork(i int, p []byte) {
	lk := e.locks.of(i)
	lk.Lock()
	defer func() { _, _ = e.WriteAt(p, 0) }()
	lk.Unlock()
}
