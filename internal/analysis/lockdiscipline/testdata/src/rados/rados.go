// Package rados is a fixture stub standing in for repro/internal/rados.
package rados

type Conn struct{}

func (*Conn) Operate(oid string) error { return nil }
