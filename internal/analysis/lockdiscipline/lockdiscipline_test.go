package lockdiscipline

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestLockdiscipline(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "core")
}
