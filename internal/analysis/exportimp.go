package analysis

// exportimp.go resolves imports from compiler export data — the same
// files the gc toolchain writes into the build cache — via the standard
// library's go/importer in "gc" mode with a lookup function. Both real
// drivers use it: the vet-tool unit driver is handed an import-path →
// export-file map by cmd/go, and the standalone driver builds the same
// map from `go list -export -deps`. An overlay lets the standalone
// driver substitute packages it type-checked from source (this module's
// own packages, which the analyzers need syntax for) while everything
// beneath them loads from export data.

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
)

type exportImporter struct {
	importMap map[string]string // import path as written -> canonical package path
	overlay   map[string]*types.Package
	gc        types.Importer
}

// newExportImporter builds an importer over export data files.
// packageFile maps canonical package paths to export data files;
// importMap translates source-level import paths (may be nil for the
// identity map); overlay wins over export data (may be nil).
func newExportImporter(fset *token.FileSet, importMap, packageFile map[string]string, overlay map[string]*types.Package) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := packageFile[path]
		if !ok {
			// Standard-library-vendored dependencies are recorded under
			// their vendor path in some views and their source path in
			// others; accept either spelling.
			f, ok = packageFile["vendor/"+path]
		}
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return &exportImporter{
		importMap: importMap,
		overlay:   overlay,
		gc:        importer.ForCompiler(fset, "gc", lookup),
	}
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := e.importMap[path]; ok && mapped != "" {
		path = mapped
	}
	if pkg, ok := e.overlay[path]; ok {
		return pkg, nil
	}
	return e.gc.Import(path)
}
