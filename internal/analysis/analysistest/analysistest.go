// Package analysistest runs one analyzer over seeded fixture packages
// and checks its diagnostics against // want "regexp" comments, the
// same contract as golang.org/x/tools/go/analysis/analysistest (which
// this module cannot depend on). Fixtures live under
//
//	<analyzer dir>/testdata/src/<pkg>/...
//
// and are plain Go source — never compiled into the module — with one
// expectation comment per intended diagnostic:
//
//	b = append(b, 0) // want "wire-aliased"
//
// Every line carrying a // want comment must produce a diagnostic whose
// message matches the regexp, and every diagnostic must land on a line
// that wants it. Fixture packages are type-checked from source against
// the real standard library plus stub dependency packages placed as
// sibling directories under testdata/src (e.g. testdata/src/rados).
package analysistest

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run analyzes each named fixture package under dir/testdata/src and
// reports expectation mismatches as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	srcRoot := filepath.Join(dir, "testdata", "src")
	ld := newLoader(srcRoot)
	for _, pkg := range pkgs {
		runPackage(t, ld, a, pkg)
	}
}

func runPackage(t *testing.T, ld *loader, a *analysis.Analyzer, pkg string) {
	t.Helper()
	u, err := ld.load(pkg)
	if err != nil {
		t.Errorf("%s: loading fixture package %s: %v", a.Name, pkg, err)
		return
	}
	diags, err := analysis.RunAnalyzers(u, []*analysis.Analyzer{a})
	if err != nil {
		t.Errorf("%s: %v", a.Name, err)
		return
	}

	wants := collectWants(t, u)

	// Match every diagnostic against a want on its line, and every want
	// against at least one diagnostic.
	for _, d := range diags {
		pos := u.Fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		w, ok := wants[key]
		switch {
		case !ok:
			t.Errorf("%s: unexpected diagnostic at %s: %s", a.Name, pos, d.Message)
		case !w.re.MatchString(d.Message):
			t.Errorf("%s: diagnostic at %s does not match want %q: %s", a.Name, pos, w.re, d.Message)
		default:
			w.matched = true
		}
	}
	var missed []string
	for key, w := range wants {
		if !w.matched {
			missed = append(missed, fmt.Sprintf("%s:%d: want %q", key.file, key.line, w.re))
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Errorf("%s: no diagnostic at %s", a.Name, m)
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// collectWants extracts // want "regexp" expectations, keyed by the
// line the comment sits on.
func collectWants(t *testing.T, u *analysis.Unit) map[lineKey]*want {
	t.Helper()
	wants := make(map[lineKey]*want)
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat, err := unquoteWant(m[1])
				if err != nil {
					t.Errorf("bad want pattern %q: %v", m[1], err)
					continue
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Errorf("bad want regexp %q: %v", pat, err)
					continue
				}
				pos := u.Fset.Position(c.Pos())
				wants[lineKey{pos.Filename, pos.Line}] = &want{re: re}
			}
		}
	}
	return wants
}

// unquoteWant undoes the \" and \\ escapes allowed inside the quoted
// pattern.
func unquoteWant(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			if i+1 >= len(s) {
				return "", fmt.Errorf("trailing backslash")
			}
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}

// loader type-checks fixture packages from source. Imports resolve
// first to sibling fixture directories under srcRoot (stub packages the
// fixtures share), then to the real standard library via the source
// importer.
type loader struct {
	srcRoot string
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*loaded
}

type loaded struct {
	unit *analysis.Unit
	err  error
}

func newLoader(srcRoot string) *loader {
	// The source importer type-checks stdlib packages from GOROOT
	// source; cgo files in packages like os/user cannot be handled, so
	// pretend cgo is off (the pure-Go fallbacks typecheck fine). The
	// importer captures &build.Default, so the global must be flipped.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &loader{
		srcRoot: srcRoot,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*loaded),
	}
}

func (ld *loader) load(path string) (*analysis.Unit, error) {
	if l, ok := ld.pkgs[path]; ok {
		return l.unit, l.err
	}
	l := &loaded{}
	ld.pkgs[path] = l
	l.unit, l.err = ld.loadUncached(path)
	return l.unit, l.err
}

func (ld *loader) loadUncached(path string) (*analysis.Unit, error) {
	dir := filepath.Join(ld.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	info := analysis.NewInfo()
	conf := types.Config{Importer: importerFunc(ld.importPkg)}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	return &analysis.Unit{Fset: ld.fset, Files: files, Pkg: pkg, Info: info}, nil
}

// importPkg resolves an import from fixture code: fixture sibling
// directory first, standard library second.
func (ld *loader) importPkg(path string) (*types.Package, error) {
	if fi, err := os.Stat(filepath.Join(ld.srcRoot, filepath.FromSlash(path))); err == nil && fi.IsDir() {
		u, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	return ld.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
