package analysis

// helpers.go holds the small set of go/types lookups every analyzer in
// the suite needs: resolving a call to its *types.Func, walking an
// expression back to its root identifier, and classifying functions by
// defining package. They live here rather than per-analyzer so the
// matching rules (package-name based, so analysistest fixtures can stand
// in for the real packages) stay identical across the suite.

import (
	"go/ast"
	"go/types"
)

// CalleeFunc resolves the function or method a call expression invokes,
// or nil when the callee is not a declared function (a function-typed
// variable, a conversion, a builtin).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// IsPkgLevel reports whether f is a package-level function (no receiver).
func IsPkgLevel(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// FuncPkgName returns the bare name of f's defining package, or "".
func FuncPkgName(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Name()
}

// RootIdent walks selector, index, slice, star and paren chains back to
// the base identifier: RootIdent(q.Ops[i].Data[1:]) is q. It returns nil
// when the chain bottoms out in something else (a call, a literal).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ObjectOf resolves an identifier to the variable it denotes, through
// both uses and defs, or nil.
func ObjectOf(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// IsMutex reports whether t is sync.Mutex, sync.RWMutex, or a pointer to
// either.
func IsMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// ContainsCall reports whether the expression tree contains any call
// expression — used to spot values that were fetched from an accessor
// (e.g. a lock handed out by a striped lock table) rather than named
// directly.
func ContainsCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}
