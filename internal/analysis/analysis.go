// Package analysis is a small, dependency-free reimplementation of the
// go/analysis analyzer model, built on the standard library's go/ast and
// go/types. It exists because this repo's correctness rests on
// conventions no general-purpose linter knows about — pooled buffers
// that must not outlive their Put, wire-aliased slices that must not be
// retained or mutated, virtual-time-only clocks in simulation packages,
// constant-time comparison of authentication tags, and a lock hierarchy
// around the per-object striped locks — and a machine must hold those
// lines as the codebase scales out.
//
// The model mirrors golang.org/x/tools/go/analysis deliberately: an
// Analyzer is a named Run function over a Pass (one type-checked
// package), and three drivers feed passes to analyzers:
//
//   - the standalone driver (RunStandalone) loads the whole module,
//     tests included, via `go list` plus source type-checking — this is
//     what `go run ./cmd/vetrepo ./...` uses;
//   - the unit driver (UnitMain) speaks cmd/go's vet tool protocol, so
//     the same binary runs under `go vet -vettool=...` with cmd/go's
//     caching and per-package export data;
//   - the analysistest package runs a single analyzer over seeded
//     fixture packages with `// want "regexp"` expectations.
//
// False positives are silenced in the source with a reasoned directive:
//
//	//vetrepo:ignore <analyzer>[,<analyzer>] <reason...>
//
// on (or on the line above) the offending line. The reason is mandatory;
// a directive without one is itself a diagnostic. See ignore.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //vetrepo:ignore directives. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description of the invariant enforced.
	Doc string

	// Packages, when non-nil, restricts the analyzer to packages whose
	// bare name (any "_test" suffix stripped) is in the set. Package
	// names rather than import paths are matched so that analysistest
	// fixture packages can opt in by name alone.
	Packages map[string]bool

	// Run performs the analysis on one package, reporting findings via
	// pass.Reportf.
	Run func(*Pass) error
}

// appliesTo reports whether the analyzer should run on pkg.
func (a *Analyzer) appliesTo(pkg *types.Package) bool {
	if a.Packages == nil {
		return true
	}
	return a.Packages[strings.TrimSuffix(pkg.Name(), "_test")]
}

// A Diagnostic is one finding, attributed to the analyzer that made it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass hands an analyzer one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}
