// Package bufpool is a fixture stub standing in for repro/internal/bufpool.
package bufpool

func Get(n int) []byte     { return make([]byte, n) }
func GetZero(n int) []byte { return make([]byte, n) }
func Put(b []byte)         {}
