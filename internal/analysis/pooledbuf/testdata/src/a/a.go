// Package a seeds pooledbuf violations and clean counterparts.
package a

import "bufpool"

type holder struct{ buf []byte }

var global []byte

var hooks = make([]func(), 1)

func useAfterPut() byte {
	b := bufpool.Get(64)
	bufpool.Put(b)
	return b[0] // want "used after Put"
}

func doublePut() {
	b := bufpool.Get(64)
	bufpool.Put(b)
	bufpool.Put(b) // want "double Put"
}

func retainField(h *holder) {
	b := bufpool.Get(64)
	h.buf = b // want "struct field"
	bufpool.Put(b)
}

func retainGlobal() {
	b := bufpool.Get(64)
	global = b[:8] // want "package variable"
}

func retainClosure() {
	b := bufpool.GetZero(64)
	hooks[0] = func() { _ = b[0] } // want "closure"
}

func okBalanced() {
	b := bufpool.Get(64)
	b[0] = 1
	bufpool.Put(b)
}

func okReassigned() byte {
	b := bufpool.Get(64)
	bufpool.Put(b)
	b = make([]byte, 8)
	return b[0]
}

func okDeferred() {
	b := bufpool.Get(64)
	defer bufpool.Put(b)
	b[0] = 1
}

func okLocalCopy(h *holder) {
	b := bufpool.Get(64)
	owned := make([]byte, len(b))
	copy(owned, b)
	h.buf = owned
	bufpool.Put(b)
}
