package pooledbuf

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestPooledbuf(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "a")
}
