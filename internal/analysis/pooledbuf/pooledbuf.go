// Package pooledbuf checks the bufpool ownership discipline. Pooled
// buffers are the reason the datapath runs allocation-free, and the
// contract (bufpool's doc comment) is strict: after Put the caller must
// not retain any view into the buffer. A use after Put reads — or
// worse, writes — memory that a concurrent IO may already own; a double
// Put hands the same backing array to two owners at once; a buffer
// stashed in a struct field, map or package variable outlives the
// function that balances its Put. The checks are intra-procedural and
// conservative (straight-line statement sequences only), which is
// exactly the shape real violations take; the bufpoolcheck build tag
// adds a runtime backstop for what this cannot prove statically.
package pooledbuf

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "pooledbuf",
	Doc:  "flags bufpool buffers used or re-Put after Put, and pooled buffers retained in fields, maps, globals or stored closures",
	Run:  run,
}

// isGetCall matches bufpool.Get/GetZero and the conventional local
// wrappers (core's getBuf/getZeroBuf).
func isGetCall(info *types.Info, call *ast.CallExpr) bool {
	f := analysis.CalleeFunc(info, call)
	if f == nil {
		return false
	}
	if analysis.FuncPkgName(f) == "bufpool" && (f.Name() == "Get" || f.Name() == "GetZero") {
		return true
	}
	return f.Name() == "getBuf" || f.Name() == "getZeroBuf"
}

// isPutCall matches bufpool.Put and the conventional wrappers.
func isPutCall(info *types.Info, call *ast.CallExpr) bool {
	f := analysis.CalleeFunc(info, call)
	if f == nil {
		return false
	}
	if analysis.FuncPkgName(f) == "bufpool" && f.Name() == "Put" {
		return true
	}
	return f.Name() == "putBuf"
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		pooled := collectPooledVars(pass, file)
		if len(pooled) == 0 {
			continue
		}
		checkRetention(pass, file, pooled)
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.BlockStmt:
				scanList(pass, s.List, pooled)
			case *ast.CaseClause:
				scanList(pass, s.Body, pooled)
			case *ast.CommClause:
				scanList(pass, s.Body, pooled)
			}
			return true
		})
	}
	return nil
}

// collectPooledVars finds every variable bound to a pool Get result.
func collectPooledVars(pass *analysis.Pass, file *ast.File) map[*types.Var]bool {
	pooled := make(map[*types.Var]bool)
	bind := func(lhs, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isGetCall(pass.TypesInfo, call) {
			return
		}
		if id, ok := lhs.(*ast.Ident); ok {
			if v := analysis.ObjectOf(pass.TypesInfo, id); v != nil {
				pooled[v] = true
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					bind(s.Lhs[i], s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) == len(s.Values) {
				for i := range s.Names {
					bind(s.Names[i], s.Values[i])
				}
			}
		}
		return true
	})
	return pooled
}

// directPut returns the pooled variable a statement Puts, when the
// statement is a plain (non-deferred) Put call.
func directPut(pass *analysis.Pass, stmt ast.Stmt, pooled map[*types.Var]bool) *types.Var {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || !isPutCall(pass.TypesInfo, call) || len(call.Args) != 1 {
		return nil
	}
	root := analysis.RootIdent(call.Args[0])
	if root == nil {
		return nil
	}
	if v := analysis.ObjectOf(pass.TypesInfo, root); v != nil && pooled[v] {
		return v
	}
	return nil
}

// scanList walks one straight-line statement sequence: after a Put of a
// pooled variable, any later use in the same sequence is a
// use-after-Put, and a second Put is a double Put. A reassignment of
// the variable (it now names a different buffer) ends tracking.
func scanList(pass *analysis.Pass, list []ast.Stmt, pooled map[*types.Var]bool) {
	for i, stmt := range list {
		v := directPut(pass, stmt, pooled)
		if v == nil {
			continue
		}
	after:
		for _, later := range list[i+1:] {
			switch {
			case reassigns(pass, later, v):
				break after
			case directPut(pass, later, pooled) == v:
				pass.Reportf(later.Pos(), "double Put of pooled buffer %s: it was already returned to bufpool above", v.Name())
				break after
			default:
				if pos, ok := firstUse(pass, later, v); ok {
					pass.Reportf(pos, "pooled buffer %s used after Put: the pool may already have handed its memory to another owner", v.Name())
					break after
				}
			}
		}
	}
}

// reassigns reports whether the statement assigns a new value to v.
func reassigns(pass *analysis.Pass, stmt ast.Stmt, v *types.Var) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return !found
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && analysis.ObjectOf(pass.TypesInfo, id) == v {
				found = true
			}
		}
		return !found
	})
	return found
}

// firstUse returns the position of the first reference to v inside the
// statement.
func firstUse(pass *analysis.Pass, stmt ast.Stmt, v *types.Var) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
			pos, found = id.Pos(), true
		}
		return !found
	})
	return pos, found
}

// checkRetention flags pooled buffers escaping into places that outlive
// the Get/Put pair: struct fields, maps/slices reached by index, package
// variables, and closures stored into any of those.
func checkRetention(pass *analysis.Pass, file *ast.File, pooled map[*types.Var]bool) {
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			sink := sinkKind(pass, as.Lhs[i])
			if sink == "" {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if v := pooledRoot(pass, rhs, pooled); v != nil {
				pass.Reportf(as.Rhs[i].Pos(), "pooled buffer %s stored in %s escapes its Put scope; copy it into an owned buffer instead", v.Name(), sink)
				continue
			}
			if lit, ok := rhs.(*ast.FuncLit); ok {
				if v := capturedPooled(pass, lit, pooled); v != nil {
					pass.Reportf(rhs.Pos(), "closure stored in %s captures pooled buffer %s, retaining it past its Put", sink, v.Name())
				}
			}
		}
		return true
	})
}

// sinkKind classifies an assignment target that outlives the enclosing
// function's locals; "" means a plain local (fine).
func sinkKind(pass *analysis.Pass, lhs ast.Expr) string {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		// Skip qualified package identifiers resolving to locals of
		// other packages — a selector on a value is a field write.
		if sel := pass.TypesInfo.Selections[x]; sel != nil {
			return "a struct field"
		}
		return "a package variable"
	case *ast.IndexExpr:
		return "a map or slice element"
	case *ast.Ident:
		if v := analysis.ObjectOf(pass.TypesInfo, x); v != nil && v.Parent() == pass.Pkg.Scope() {
			return "a package variable"
		}
	}
	return ""
}

// pooledRoot resolves an expression to the pooled variable it views, if
// any: the variable itself or a reslice of it.
func pooledRoot(pass *analysis.Pass, e ast.Expr, pooled map[*types.Var]bool) *types.Var {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SliceExpr:
	default:
		return nil
	}
	root := analysis.RootIdent(e)
	if root == nil {
		return nil
	}
	if v := analysis.ObjectOf(pass.TypesInfo, root); v != nil && pooled[v] {
		return v
	}
	return nil
}

// capturedPooled returns a pooled variable referenced (but not declared)
// inside the closure, if any.
func capturedPooled(pass *analysis.Pass, lit *ast.FuncLit, pooled map[*types.Var]bool) *types.Var {
	var captured *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && pooled[v] {
				captured = v
			}
		}
		return captured == nil
	})
	return captured
}
