package analysis

// run.go is the driver-independent core: run a list of analyzers over
// one type-checked package, apply the //vetrepo:ignore allowlist, and
// return position-sorted diagnostics. All three drivers (standalone,
// vet-tool unit, analysistest) end up here, so ignore semantics and
// package filtering cannot drift between them.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Unit is one package ready for analysis.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// ReportFiles, when non-nil, restricts emitted diagnostics to these
	// file names. The standalone driver uses it for test-variant units,
	// where the non-test files were already analyzed on their own.
	ReportFiles map[string]bool
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// RunAnalyzers runs every applicable analyzer over the unit and returns
// the surviving (non-ignored) diagnostics in file/position order.
func RunAnalyzers(u *Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	ignores, malformed := collectIgnores(u.Fset, u.Files)
	var raw []Diagnostic
	raw = append(raw, malformed...)
	for _, a := range analyzers {
		if !a.appliesTo(u.Pkg) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			diags:     &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, u.Pkg.Path(), err)
		}
	}
	var out []Diagnostic
	for _, d := range raw {
		if ignores.suppresses(u.Fset, d) {
			continue
		}
		if u.ReportFiles != nil && !u.ReportFiles[u.Fset.Position(d.Pos).Filename] {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := u.Fset.Position(out[i].Pos), u.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return out, nil
}
