// Package vtimeonly bans wall-clock reads and unseeded randomness in
// the simulation packages. The whole stack is measured in virtual time
// (internal/vtime), and the background walkers (rekey, flatten) are
// crash-resumable only because a replay of the same inputs takes the
// same decisions: one stray time.Now in a paced walker or one draw from
// the process-seeded global math/rand source and crash-resume replay,
// paced-interference measurements and the deterministic fio offset
// sequences all silently diverge. Seeded generators
// (rand.New(rand.NewSource(seed))) remain fine; so do time.Duration and
// the other pure types — only the functions that sample host state are
// banned.
package vtimeonly

import (
	"go/types"

	"repro/internal/analysis"
)

// simulationPackages is the set of packages that must run on virtual
// time, matched by bare package name so analysistest fixtures can stand
// in for the real packages.
var simulationPackages = map[string]bool{
	"core":      true,
	"rados":     true,
	"keymgr":    true,
	"clone":     true,
	"fio":       true,
	"msgr":      true,
	"simdisk":   true,
	"vtime":     true,
	"telemetry": true,
	"fault":     true,
	"scrub":     true,
	"history":   true,
	"health":    true,
	"attr":      true,
}

// bannedTime are the time functions that sample or schedule against the
// host clock.
var bannedTime = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// allowedRand are the math/rand constructors for explicitly-seeded
// generators.
var allowedRand = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

var Analyzer = &analysis.Analyzer{
	Name:     "vtimeonly",
	Doc:      "bans wall-clock time and global math/rand in the simulation packages (crash-resume and replay determinism)",
	Packages: simulationPackages,
	Run:      run,
}

func run(pass *analysis.Pass) error {
	for id, obj := range pass.TypesInfo.Uses {
		f, ok := obj.(*types.Func)
		if !ok || f.Pkg() == nil || !analysis.IsPkgLevel(f) {
			continue
		}
		switch f.Pkg().Path() {
		case "time":
			if bannedTime[f.Name()] {
				pass.Reportf(id.Pos(), "time.%s reads the host clock; simulation packages are virtual-time only — use vtime timestamps (or move the wall-clock measurement to a harness package)", f.Name())
			}
		case "math/rand", "math/rand/v2":
			if !allowedRand[f.Name()] {
				pass.Reportf(id.Pos(), "global %s.%s is process-seeded and nondeterministic; use rand.New(rand.NewSource(seed)) so runs replay", f.Pkg().Path(), f.Name())
			}
		}
	}
	return nil
}
