// Package telemetry seeds vtimeonly violations in a package named like
// the metrics/tracing package: all recorded durations must be virtual,
// so a wall-clock read inside telemetry would silently mix host time
// into latency histograms and trace spans.
package telemetry

import "time"

type span struct {
	start int64
}

func badStamp(s *span) {
	s.start = time.Now().UnixNano() // want "time.Now reads the host clock"
}

func badSlowPoll() {
	time.Sleep(10 * time.Millisecond) // want "time.Sleep reads the host clock"
}

func okVirtualDuration(startNs, endNs int64) time.Duration {
	return time.Duration(endNs - startNs)
}
