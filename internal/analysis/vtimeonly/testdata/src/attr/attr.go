// Package attr seeds vtimeonly violations in a package named like the
// tail-latency attribution plane: phase durations are virtual time
// charged by the cost model, so sampling the host clock here would mix
// wall time into the attribution tables and break replay determinism.
package attr

import (
	"math/rand"
	"time"
)

type phaseRow struct {
	sum int64
}

func badPhaseStamp(r *phaseRow) {
	r.sum += time.Since(time.Unix(0, 0)).Nanoseconds() // want "time.Since reads the host clock"
}

func badSampleJitter() bool {
	return rand.Float64() < 0.01 // want "global math/rand.Float64 is process-seeded"
}

func okObserve(r *phaseRow, d time.Duration) {
	r.sum += int64(d)
}

func okSeededJitter(seed int64) bool {
	return rand.New(rand.NewSource(seed)).Float64() < 0.01
}
