// Package fault seeds vtimeonly violations in a package named like the
// fault-injection package: a plan must replay from its seed alone, so
// host-clock reads and the process-seeded global rand are banned.
package fault

import (
	"math/rand"
	"time"
)

func badDelayFromClock() time.Duration {
	return time.Since(time.Unix(0, 0)) // want "time.Since reads the host clock"
}

func badHitDraw() bool {
	return rand.Float64() < 0.5 // want "process-seeded"
}

func okSeededInjector(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func okDurationMath(d time.Duration) time.Duration {
	return d / 2
}
