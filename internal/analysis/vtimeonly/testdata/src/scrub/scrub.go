// Package scrub seeds vtimeonly violations in a package named like the
// scrub walker: crash-resume replay and paced-interference measurements
// only hold if the walker never samples host state.
package scrub

import (
	"math/rand"
	"time"
)

func badPacingBeat() {
	time.Sleep(20 * time.Millisecond) // want "time.Sleep reads the host clock"
}

func badWalkDeadline() bool {
	return time.Now().IsZero() // want "time.Now reads the host clock"
}

func badShuffleOrder(n int) int {
	return rand.Intn(n) // want "process-seeded"
}

func okVirtualBudget(d time.Duration) time.Duration {
	return 3 * d
}
