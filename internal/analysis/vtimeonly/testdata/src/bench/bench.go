// Package bench is a harness-side package outside the simulation set:
// wall-clock use here is fine and must not be flagged.
package bench

import "time"

func Wall() time.Time { return time.Now() }
