// Package health seeds vtimeonly violations in a package named like
// the health engine: rule evaluation windows are anchored to the vtime
// the caller passes to Eval, so sampling the host clock here would make
// the same cluster state produce different verdicts run to run.
package health

import "time"

type verdict struct {
	evaluatedAt int64
	firing      bool
}

func badEvalStamp(v *verdict) {
	v.evaluatedAt = time.Now().UnixNano() // want "time.Now reads the host clock"
}

func badStaleCheck(lastSeen time.Time) bool {
	return time.Since(lastSeen) > time.Second // want "time.Since reads the host clock"
}

func okWindow(at, lastSeen int64) bool {
	return at-lastSeen > int64(time.Second)
}
