// Package history seeds vtimeonly violations in a package named like
// the time-series history ring: every snapshot is stamped with a vtime
// timestamp supplied by the caller, so a wall-clock read here would
// interleave host time into the ring and make windowed rate queries
// nondeterministic across replays.
package history

import (
	"math/rand"
	"time"
)

type sample struct {
	at    int64
	value int64
}

func badRecordStamp(s *sample) {
	s.at = time.Now().UnixNano() // want "time.Now reads the host clock"
}

func badJitteredFlush() {
	jitter := rand.Int63n(1e6)        // want "global math/rand.Int63n is process-seeded"
	time.Sleep(time.Duration(jitter)) // want "time.Sleep reads the host clock"
}

func okCallerStamp(s *sample, at int64) {
	s.at = at
}

func okSeededJitter(seed int64) int64 {
	return rand.New(rand.NewSource(seed)).Int63n(1e6)
}
