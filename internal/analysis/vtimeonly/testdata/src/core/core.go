// Package core seeds vtimeonly violations and clean counterparts in a
// package named like a simulation package.
package core

import (
	"math/rand"
	"time"
)

func badNow() int64 {
	return time.Now().UnixNano() // want "time.Now reads the host clock"
}

func badSleep() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the host clock"
}

func badGlobalRand() int {
	return rand.Int() // want "process-seeded"
}

func okSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Int()
}

func okPureTypes(d time.Duration) time.Duration {
	return 2 * d
}

func okIgnoredWithReason() int64 {
	//vetrepo:ignore vtimeonly harness-style wall-clock check exercised by the ignore machinery
	return time.Now().UnixNano()
}
