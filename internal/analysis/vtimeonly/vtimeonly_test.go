package vtimeonly

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestVtimeonly(t *testing.T) {
	analysistest.Run(t, ".", Analyzer, "core", "bench", "telemetry", "fault", "scrub", "history", "health", "attr")
}
