// Package suite registers the repo's analyzers in one place, so the
// standalone driver, the vet-tool unit driver and CI all run the exact
// same set.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/atomicstate"
	"repro/internal/analysis/cryptohygiene"
	"repro/internal/analysis/lockdiscipline"
	"repro/internal/analysis/pooledbuf"
	"repro/internal/analysis/vtimeonly"
	"repro/internal/analysis/wirealias"
)

// Analyzers is the full suite, in diagnostic-name order.
var Analyzers = []*analysis.Analyzer{
	atomicstate.Analyzer,
	cryptohygiene.Analyzer,
	lockdiscipline.Analyzer,
	pooledbuf.Analyzer,
	vtimeonly.Analyzer,
	wirealias.Analyzer,
}
