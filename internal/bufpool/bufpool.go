// Package bufpool serves scratch byte buffers from size-classed
// sync.Pools (power-of-two capacity classes from 4 KiB up). It backs
// every transient wire, metadata and cipher-scratch buffer on the IO hot
// path — the seal/open pipeline in internal/core, the scatter-gather
// marshal headers in internal/rados — so the steady state performs no
// per-IO heap allocations for payload-sized memory.
//
// Requests above the largest class fall back to plain allocation, and
// buffers with capacities that are not an exact class size are dropped
// on Put, so mixing pooled and plain buffers is always safe. Callers
// must not retain any view into a buffer after returning it.
package bufpool

import (
	"sync"

	"repro/internal/telemetry"
)

const (
	// minShift is the smallest class: 4 KiB, one encryption block.
	minShift = 12
	// numClasses spans classes up to 16 MiB: the largest extent plus its
	// metadata region.
	numClasses = 13
)

// Pool pressure counters: a healthy steady state is almost all hits; a
// rising miss rate means buffers are leaking past Put or the working
// set outgrew the GC's pool retention (see METRICS.md).
var (
	mGets    = telemetry.NewCounterVec("bufpool_gets_total", "pooled buffer requests by outcome", "result")
	mGetHit  = mGets.With("hit")
	mGetMiss = mGets.With("miss")
	mPuts    = telemetry.NewCounter("bufpool_puts_total", "buffers returned to the pool")
	// mOutstanding tracks pool-class buffers handed out and not yet
	// returned — the pool-pressure why-signal. Oversized fallback
	// buffers are excluded (Put would drop them anyway), so a steady
	// positive drift means real leaks past Put.
	mOutstanding = telemetry.NewGauge("bufpool_outstanding",
		"pool-class buffers checked out and not yet returned")
)

var classes [numClasses]sync.Pool

// class returns the smallest class whose capacity holds n bytes, or -1
// when n is too large to pool.
func class(n int) int {
	c := 0
	for n > 1<<(minShift+c) {
		c++
		if c >= numClasses {
			return -1
		}
	}
	return c
}

// Get returns a length-n byte slice with unspecified contents.
func Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	c := class(n)
	if c < 0 {
		mGetMiss.Inc()
		return make([]byte, n)
	}
	if v := classes[c].Get(); v != nil {
		b := (*v.(*[]byte))[:n]
		checkGet(b)
		mGetHit.Inc()
		mOutstanding.Add(1)
		return b
	}
	mGetMiss.Inc()
	mOutstanding.Add(1)
	return make([]byte, n, 1<<(minShift+c))
}

// GetZero returns a length-n zeroed byte slice.
func GetZero(n int) []byte {
	b := Get(n)
	clear(b)
	return b
}

// Put recycles a buffer obtained from Get. The caller must not retain
// any view into b afterwards. Buffers that did not come from the pool
// (odd capacities) are silently dropped.
func Put(b []byte) {
	if cap(b) < 1<<minShift {
		return
	}
	c := class(cap(b))
	if c < 0 || 1<<(minShift+c) != cap(b) {
		return // odd capacity (not pool-born); drop it
	}
	b = b[:cap(b)]
	checkPut(b)
	mPuts.Inc()
	mOutstanding.Add(-1)
	classes[c].Put(&b)
}
