//go:build bufpoolcheck

package bufpool

// The bufpoolcheck build tag arms a runtime guard behind Get/Put — the
// dynamic backstop to the static pooledbuf analyzer (which only proves
// the straight-line cases). While armed:
//
//   - every pooled Put poisons the buffer with 0xDB and records the
//     caller's stack;
//   - a second Put of the same backing array panics, printing the first
//     Put's stack;
//   - a Get that finds its pooled buffer no longer fully poisoned
//     panics: someone wrote through a retained view after Put.
//
// The guard registry keeps a reference to every pooled-and-not-yet-
// reissued buffer. That is deliberate: it pins the backing arrays so
// the address used as the registry key cannot be recycled for a fresh
// allocation, which would misattribute a panic (the cost is that a GC
// cannot reclaim idle pooled buffers while the tag is on — a debug
// build trade).

import (
	"fmt"
	"runtime"
	"sync"
	"unsafe"
)

const poisonByte = 0xDB

type putRecord struct {
	buf   []byte // pins the backing array; see package comment above
	stack string
}

var guard struct {
	sync.Mutex
	pooled map[*byte]putRecord
}

func init() {
	guard.pooled = make(map[*byte]putRecord)
}

func callerStack() string {
	buf := make([]byte, 1<<14)
	return string(buf[:runtime.Stack(buf, false)])
}

// checkPut runs just before a pool-bound buffer (already re-sliced to
// full capacity) is handed to sync.Pool.
func checkPut(b []byte) {
	base := unsafe.SliceData(b)
	guard.Lock()
	prev, dup := guard.pooled[base]
	if !dup {
		guard.pooled[base] = putRecord{buf: b, stack: callerStack()}
	}
	guard.Unlock()
	if dup {
		panic(fmt.Sprintf(
			"bufpool: double Put of %d-byte buffer %p; first Put at:\n%s",
			cap(b), base, prev.stack))
	}
	for i := range b {
		b[i] = poisonByte
	}
}

// checkGet runs when Get reissues a buffer from the pool, before the
// caller sees it.
func checkGet(b []byte) {
	base := unsafe.SliceData(b[:1])
	guard.Lock()
	rec, ok := guard.pooled[base]
	delete(guard.pooled, base)
	guard.Unlock()
	if !ok {
		// Pool item from before the registry existed (or from a Put
		// that bypassed the guard somehow); nothing to verify.
		return
	}
	verify(base, rec)
}

// verify panics if rec's buffer is no longer fully poisoned.
func verify(base *byte, rec putRecord) {
	for i, c := range rec.buf {
		if c != poisonByte {
			panic(fmt.Sprintf(
				"bufpool: buffer %p written at offset %d after Put (use-after-Put through a retained view); Put at:\n%s",
				base, i, rec.stack))
		}
	}
}

// VerifyIdle sweeps every buffer currently resident in the pool and
// panics on the first one written after its Put. Unlike the Get-time
// check it does not depend on which per-P pool shard holds the buffer,
// so tests can assert use-after-Put deterministically. A violating
// record is dropped before panicking, leaving the registry usable.
func VerifyIdle() {
	type entry struct {
		base *byte
		rec  putRecord
	}
	guard.Lock()
	entries := make([]entry, 0, len(guard.pooled))
	for base, rec := range guard.pooled {
		entries = append(entries, entry{base, rec})
	}
	guard.Unlock()
	for _, e := range entries {
		func() {
			defer func() {
				if r := recover(); r != nil {
					guard.Lock()
					delete(guard.pooled, e.base)
					guard.Unlock()
					panic(r)
				}
			}()
			verify(e.base, e.rec)
		}()
	}
}
