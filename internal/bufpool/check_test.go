//go:build bufpoolcheck

package bufpool

import (
	"fmt"
	"runtime/debug"
	"strings"
	"testing"
)

// The guard tests depend on sync.Pool returning the just-Put buffer on
// the next same-goroutine Get, which holds as long as no GC empties the
// pool in between; GC is disabled for the duration.
func noGC(t *testing.T) {
	t.Helper()
	old := debug.SetGCPercent(-1)
	t.Cleanup(func() { debug.SetGCPercent(old) })
}

func mustPanic(t *testing.T, wantSubstr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one containing %q", wantSubstr)
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, wantSubstr) {
			t.Fatalf("panic %q does not contain %q", msg, wantSubstr)
		}
		// The offending Put's stack must be in the report so the
		// violation is attributable.
		if !strings.Contains(msg, "bufpool.Put") {
			t.Fatalf("panic does not carry the recorded Put stack: %q", msg)
		}
	}()
	f()
}

func TestGuardDoublePutPanics(t *testing.T) {
	noGC(t)
	b := Get(4096)
	Put(b)
	mustPanic(t, "double Put", func() { Put(b) })
	// Drain the poisoned buffer so later tests start clean.
	Get(4096)
}

func TestGuardWriteAfterPutPanics(t *testing.T) {
	noGC(t)
	b := Get(4096)
	Put(b)
	b[17] = 1 // write through a retained view after Put
	mustPanic(t, "after Put", VerifyIdle)
}

func TestGuardCleanCycle(t *testing.T) {
	noGC(t)
	b := Get(4096)
	for i := range b {
		b[i] = byte(i)
	}
	Put(b)
	c := GetZero(4096)
	for i, v := range c {
		if v != 0 {
			t.Fatalf("GetZero byte %d = %#x, want 0", i, v)
		}
	}
	Put(c)
	Get(4096) // drain
}
