package bufpool

import "testing"

func TestClassSizes(t *testing.T) {
	cases := []struct {
		n, class int
	}{
		{1, 0}, {4096, 0}, {4097, 1}, {8192, 1}, {1 << 24, numClasses - 1},
	}
	for _, c := range cases {
		if got := class(c.n); got != c.class {
			t.Errorf("class(%d) = %d, want %d", c.n, got, c.class)
		}
	}
	if class(1<<24+1) != -1 {
		t.Error("oversize request should not be pooled")
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	b := Get(5000)
	if len(b) != 5000 || cap(b) != 8192 {
		t.Fatalf("len=%d cap=%d", len(b), cap(b))
	}
	Put(b)
	// Oversize buffers fall back to exact allocation and are not pooled.
	big := Get(1<<24 + 1)
	if len(big) != 1<<24+1 {
		t.Fatalf("oversize len=%d", len(big))
	}
	Put(big) // must not panic or poison the pool
}

func TestGetZero(t *testing.T) {
	b := Get(4096)
	for i := range b {
		b[i] = 0xAA
	}
	Put(b)
	z := GetZero(4096)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("byte %d = %x after GetZero", i, v)
		}
	}
}

func TestPutForeignBuffer(t *testing.T) {
	// A buffer with a non-class capacity must be dropped, not pooled.
	odd := make([]byte, 5000)
	Put(odd)
	got := Get(5000)
	if len(got) != 5000 || cap(got) != 8192 {
		t.Fatalf("foreign buffer leaked into pool: len=%d cap=%d", len(got), cap(got))
	}
}
