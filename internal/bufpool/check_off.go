//go:build !bufpoolcheck

package bufpool

// Without the bufpoolcheck build tag the guard hooks compile to
// nothing; see check_on.go for what the tag arms.

func checkPut(b []byte) {}

func checkGet(b []byte) {}
