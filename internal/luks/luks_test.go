package luks

import (
	"bytes"
	"errors"
	"testing"
)

func TestFormatUnlock(t *testing.T) {
	c, mk, err := Format([]byte("hunter2"), "aes-xts-plain64")
	if err != nil {
		t.Fatal(err)
	}
	if len(mk) != MasterKeySize {
		t.Fatalf("master key %d bytes", len(mk))
	}
	got, err := c.Unlock([]byte("hunter2"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mk) {
		t.Fatal("unlocked key differs")
	}
}

func TestWrongPassphrase(t *testing.T) {
	c, _, err := Format([]byte("correct"), "aes-xts-plain64")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Unlock([]byte("incorrect")); !errors.Is(err, ErrPassphrase) {
		t.Fatalf("got %v", err)
	}
}

func TestAddAndRemoveKey(t *testing.T) {
	c, mk, err := Format([]byte("first"), "aes-xts-plain64")
	if err != nil {
		t.Fatal(err)
	}
	idx, err := c.AddKey([]byte("first"), []byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("slot %d", idx)
	}
	if got, err := c.Unlock([]byte("second")); err != nil || !bytes.Equal(got, mk) {
		t.Fatalf("second passphrase: %v", err)
	}
	// Adding requires a valid existing passphrase.
	if _, err := c.AddKey([]byte("bogus"), []byte("third")); !errors.Is(err, ErrPassphrase) {
		t.Fatalf("got %v", err)
	}
	// Remove the first key; only the second unlocks.
	if err := c.RemoveKey(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Unlock([]byte("first")); !errors.Is(err, ErrPassphrase) {
		t.Fatalf("revoked passphrase still works: %v", err)
	}
	if _, err := c.Unlock([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveKey(0); err == nil {
		t.Fatal("removing inactive slot should fail")
	}
	if got := c.ActiveSlots(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("active slots %v", got)
	}
}

func TestSlotExhaustion(t *testing.T) {
	c, _, err := Format([]byte("p0"), "x")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < MaxSlots; i++ {
		if _, err := c.AddKey([]byte("p0"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AddKey([]byte("p0"), []byte("overflow")); !errors.Is(err, ErrNoFreeSlot) {
		t.Fatalf("got %v", err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c, mk, err := Format([]byte("pass"), "aes-xts-plain64")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Unlock([]byte("pass"))
	if err != nil || !bytes.Equal(got, mk) {
		t.Fatalf("unlock after round trip: %v", err)
	}
	if c2.Cipher != "aes-xts-plain64" {
		t.Fatalf("cipher %q", c2.Cipher)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Unmarshal([]byte(`{"magic":"WRONG"}`)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestHeaderTamperDetected(t *testing.T) {
	c, _, err := Format([]byte("pass"), "x")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a keyslot area: the digest check must reject the result.
	c.Slots[0].Area[10] ^= 0xFF
	if _, err := c.Unlock([]byte("pass")); !errors.Is(err, ErrPassphrase) {
		t.Fatalf("tampered slot unlocked: %v", err)
	}
}

func TestDistinctMasterKeys(t *testing.T) {
	_, mk1, _ := Format([]byte("p"), "x")
	_, mk2, _ := Format([]byte("p"), "x")
	if bytes.Equal(mk1, mk2) {
		t.Fatal("master keys must be random")
	}
}
