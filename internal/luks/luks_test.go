package luks

import (
	"bytes"
	"errors"
	"testing"
)

func TestFormatUnlock(t *testing.T) {
	c, mk, err := Format([]byte("hunter2"), "aes-xts-plain64")
	if err != nil {
		t.Fatal(err)
	}
	if len(mk) != MasterKeySize {
		t.Fatalf("master key %d bytes", len(mk))
	}
	got, err := c.Unlock([]byte("hunter2"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mk) {
		t.Fatal("unlocked key differs")
	}
}

func TestWrongPassphrase(t *testing.T) {
	c, _, err := Format([]byte("correct"), "aes-xts-plain64")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Unlock([]byte("incorrect")); !errors.Is(err, ErrPassphrase) {
		t.Fatalf("got %v", err)
	}
}

func TestAddAndRemoveKey(t *testing.T) {
	c, mk, err := Format([]byte("first"), "aes-xts-plain64")
	if err != nil {
		t.Fatal(err)
	}
	idx, err := c.AddKey([]byte("first"), []byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("slot %d", idx)
	}
	if got, err := c.Unlock([]byte("second")); err != nil || !bytes.Equal(got, mk) {
		t.Fatalf("second passphrase: %v", err)
	}
	// Adding requires a valid existing passphrase.
	if _, err := c.AddKey([]byte("bogus"), []byte("third")); !errors.Is(err, ErrPassphrase) {
		t.Fatalf("got %v", err)
	}
	// Remove the first key; only the second unlocks.
	if err := c.RemoveKey(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Unlock([]byte("first")); !errors.Is(err, ErrPassphrase) {
		t.Fatalf("revoked passphrase still works: %v", err)
	}
	if _, err := c.Unlock([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveKey(0); err == nil {
		t.Fatal("removing inactive slot should fail")
	}
	if got := c.ActiveSlots(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("active slots %v", got)
	}
}

func TestSlotExhaustion(t *testing.T) {
	c, _, err := Format([]byte("p0"), "x")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < MaxSlots; i++ {
		if _, err := c.AddKey([]byte("p0"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AddKey([]byte("p0"), []byte("overflow")); !errors.Is(err, ErrNoFreeSlot) {
		t.Fatalf("got %v", err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c, mk, err := Format([]byte("pass"), "aes-xts-plain64")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Unlock([]byte("pass"))
	if err != nil || !bytes.Equal(got, mk) {
		t.Fatalf("unlock after round trip: %v", err)
	}
	if c2.Cipher != "aes-xts-plain64" {
		t.Fatalf("cipher %q", c2.Cipher)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Unmarshal([]byte(`{"magic":"WRONG"}`)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestHeaderTamperDetected(t *testing.T) {
	c, _, err := Format([]byte("pass"), "x")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a keyslot area: the digest check must reject the result.
	c.Slots[0].Area[10] ^= 0xFF
	if _, err := c.Unlock([]byte("pass")); !errors.Is(err, ErrPassphrase) {
		t.Fatalf("tampered slot unlocked: %v", err)
	}
}

func TestDistinctMasterKeys(t *testing.T) {
	_, mk1, _ := Format([]byte("p"), "x")
	_, mk2, _ := Format([]byte("p"), "x")
	if bytes.Equal(mk1, mk2) {
		t.Fatal("master keys must be random")
	}
}

// Wrong passphrase must fail against a container with MANY populated
// slots (the unlock loop tries — and must reject — every one of them).
func TestWrongPassphraseAcrossPopulatedSlots(t *testing.T) {
	c, _, err := Format([]byte("p0"), "x")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < MaxSlots; i++ {
		if _, err := c.AddKey([]byte("p0"), []byte{'q', byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(c.ActiveSlots()); got != MaxSlots {
		t.Fatalf("active slots %d", got)
	}
	if _, err := c.Unlock([]byte("not-a-passphrase")); !errors.Is(err, ErrPassphrase) {
		t.Fatalf("got %v", err)
	}
	// Every real passphrase still unlocks.
	for i := 1; i < MaxSlots; i++ {
		if _, err := c.Unlock([]byte{'q', byte(i)}); err != nil {
			t.Fatalf("slot %d: %v", i, err)
		}
	}
}

// Add/remove round-trips: freed slots are reusable, and reuse works
// after a marshal round-trip now that the container carries an epoch
// table alongside the slots.
func TestAddRemoveRoundTripWithEpochTable(t *testing.T) {
	c, mk, err := Format([]byte("p0"), "x")
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		idx, err := c.AddKey([]byte("p0"), []byte("extra"))
		if err != nil {
			t.Fatalf("round %d add: %v", round, err)
		}
		blob, err := c.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		c, err = Unmarshal(blob)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := c.Unlock([]byte("extra")); err != nil || !bytes.Equal(got, mk) {
			t.Fatalf("round %d unlock: %v", round, err)
		}
		if err := c.RemoveKey(idx); err != nil {
			t.Fatalf("round %d remove: %v", round, err)
		}
		if _, err := c.Unlock([]byte("extra")); !errors.Is(err, ErrPassphrase) {
			t.Fatalf("round %d removed passphrase still unlocks: %v", round, err)
		}
	}
}

func TestSlotExhaustionSurvivesRemove(t *testing.T) {
	c, _, err := Format([]byte("p0"), "x")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < MaxSlots; i++ {
		if _, err := c.AddKey([]byte("p0"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AddKey([]byte("p0"), []byte("x")); !errors.Is(err, ErrNoFreeSlot) {
		t.Fatalf("got %v", err)
	}
	// Freeing any slot makes room again — in that exact slot.
	if err := c.RemoveKey(3); err != nil {
		t.Fatal(err)
	}
	idx, err := c.AddKey([]byte("p0"), []byte("fresh"))
	if err != nil || idx != 3 {
		t.Fatalf("reuse: idx=%d err=%v", idx, err)
	}
	if _, err := c.AddKey([]byte("p0"), []byte("y")); !errors.Is(err, ErrNoFreeSlot) {
		t.Fatalf("got %v", err)
	}
}

// ---- epoch table ----

func TestEpochLifecycle(t *testing.T) {
	c, mk, err := Format([]byte("p"), "x")
	if err != nil {
		t.Fatal(err)
	}
	if c.CurrentEpoch() != 0 {
		t.Fatalf("fresh container current epoch %d", c.CurrentEpoch())
	}
	k0, err := c.EpochKey(mk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k0, mk) {
		t.Fatal("epoch key must be independent of the master key")
	}

	e1, err := c.AddEpoch(mk)
	if err != nil || e1 != 1 {
		t.Fatalf("AddEpoch: %d %v", e1, err)
	}
	if c.CurrentEpoch() != 1 {
		t.Fatalf("current %d", c.CurrentEpoch())
	}
	k1, err := c.EpochKey(mk, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k0, k1) {
		t.Fatal("epoch keys must be distinct")
	}

	// Keys survive a marshal round-trip.
	blob, _ := c.Marshal()
	c2, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	mk2, err := c2.Unlock([]byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := c2.EpochKey(mk2, 0); err != nil || !bytes.Equal(got, k0) {
		t.Fatalf("epoch 0 after round trip: %v", err)
	}

	// Crypto-erase: destroy epoch 0 and the key is gone for good.
	if err := c2.DestroyEpoch(1); err == nil {
		t.Fatal("destroying the current epoch must fail")
	}
	if err := c2.DestroyEpoch(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.EpochKey(mk2, 0); !errors.Is(err, ErrEpochUnknown) {
		t.Fatalf("destroyed epoch still unwraps: %v", err)
	}
	if err := c2.DestroyEpoch(0); !errors.Is(err, ErrEpochUnknown) {
		t.Fatalf("double destroy: %v", err)
	}
	if got := c2.EpochIDs(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("epoch ids %v", got)
	}
	// Epoch numbering never reuses a destroyed id.
	e2, err := c2.AddEpoch(mk2)
	if err != nil || e2 != 2 {
		t.Fatalf("AddEpoch after destroy: %d %v", e2, err)
	}
}

func TestEpochKeyWrongMasterKeyRejected(t *testing.T) {
	c, mk, err := Format([]byte("p"), "x")
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), mk...)
	bad[0] ^= 1
	if _, err := c.EpochKey(bad, 0); err == nil {
		t.Fatal("wrong master key unwrapped an epoch")
	}
}

func TestLegacyContainerImplicitEpochZero(t *testing.T) {
	c, mk, err := Format([]byte("p"), "x")
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a pre-epoch-table container.
	c.Epochs, c.WrapSalt, c.Current = nil, nil, 0
	k, err := c.EpochKey(mk, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k, mk) {
		t.Fatal("legacy epoch 0 must be the master key")
	}
	if got := c.EpochIDs(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("epoch ids %v", got)
	}
	// AddEpoch lazily creates the table — and materializes the implicit
	// epoch 0 so it remains resolvable (and destroyable) afterwards.
	if e, err := c.AddEpoch(mk); err != nil || e != 1 {
		t.Fatalf("lazy AddEpoch: %d %v", e, err)
	}
	if got := c.EpochIDs(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("epoch ids after lazy table creation %v", got)
	}
	if k0, err := c.EpochKey(mk, 0); err != nil || !bytes.Equal(k0, mk) {
		t.Fatalf("implicit epoch 0 lost by lazy table creation: %v", err)
	}
	if err := c.DestroyEpoch(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.EpochKey(mk, 0); !errors.Is(err, ErrEpochUnknown) {
		t.Fatalf("destroyed legacy epoch still unwraps: %v", err)
	}
}
