// Package luks implements a LUKS2-style key-management container, the
// format Ceph RBD client-side encryption uses (§2.4). A container wraps a
// randomly generated master key behind one or more passphrase keyslots:
//
//   - the slot key is stretched from the passphrase with PBKDF2-HMAC-SHA256,
//   - the master key is anti-forensically split (kdf.AFSplit) and the
//     stripes encrypted with AES-XTS under the slot key,
//   - a PBKDF2 digest of the master key lets Unlock verify a candidate.
//
// Metadata is JSON (as in LUKS2) with binary areas carried base64-encoded,
// so a container serializes to a single blob the virtual-disk layer stores
// alongside the image.
package luks

import (
	"bytes"
	"crypto/rand"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/crypto/kdf"
	"repro/internal/crypto/xts"
)

const (
	// Magic identifies serialized containers.
	Magic = "LUKS2-repro\x00"
	// MasterKeySize is the XTS-AES-256 key size (two 256-bit keys).
	MasterKeySize = 64
	// Stripes is the anti-forensic expansion factor (LUKS default 4000 is
	// overkill for a simulation; 64 keeps the same property cheaply).
	Stripes = 64
	// DefaultIterations is the PBKDF2 cost.
	DefaultIterations = 4096
	// MaxSlots bounds the keyslot table (8, as in LUKS).
	MaxSlots = 8
)

var (
	// ErrPassphrase reports that no keyslot opened with the passphrase.
	ErrPassphrase = errors.New("luks: no keyslot matches passphrase")
	// ErrNoFreeSlot reports a full keyslot table.
	ErrNoFreeSlot = errors.New("luks: no free keyslot")
	// ErrCorrupt reports a malformed container.
	ErrCorrupt = errors.New("luks: corrupt container")
)

// Keyslot is one passphrase binding.
type Keyslot struct {
	Active     bool   `json:"active"`
	Salt       []byte `json:"salt,omitempty"`
	Iterations int    `json:"iterations,omitempty"`
	Stripes    int    `json:"stripes,omitempty"`
	Area       []byte `json:"area,omitempty"` // encrypted AF-split master key
}

// Container is the on-disk header.
type Container struct {
	MagicField string    `json:"magic"`
	UUID       string    `json:"uuid"`
	Cipher     string    `json:"cipher"` // informational: the data cipher
	DigestSalt []byte    `json:"digest_salt"`
	DigestIter int       `json:"digest_iter"`
	Digest     []byte    `json:"digest"` // PBKDF2(masterKey, DigestSalt)
	Slots      []Keyslot `json:"slots"`
}

func randBytes(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		return nil, err
	}
	return b, nil
}

// slotCipher builds the XTS cipher protecting a keyslot area.
func slotCipher(passphrase, salt []byte, iter int) (*xts.Cipher, error) {
	key := kdf.PBKDF2(passphrase, salt, iter, 64)
	return xts.NewCipher(key)
}

func digestOf(masterKey, salt []byte, iter int) []byte {
	return kdf.PBKDF2(masterKey, salt, iter, 32)
}

// Format creates a container with a fresh random master key bound to the
// passphrase in slot 0, returning both.
func Format(passphrase []byte, cipherName string) (*Container, []byte, error) {
	masterKey, err := randBytes(MasterKeySize)
	if err != nil {
		return nil, nil, err
	}
	uuid, err := randBytes(16)
	if err != nil {
		return nil, nil, err
	}
	dsalt, err := randBytes(32)
	if err != nil {
		return nil, nil, err
	}
	c := &Container{
		MagicField: Magic,
		UUID:       fmt.Sprintf("%x", uuid),
		Cipher:     cipherName,
		DigestSalt: dsalt,
		DigestIter: DefaultIterations,
		Digest:     digestOf(masterKey, dsalt, DefaultIterations),
		Slots:      make([]Keyslot, MaxSlots),
	}
	if err := c.fillSlot(0, passphrase, masterKey); err != nil {
		return nil, nil, err
	}
	return c, masterKey, nil
}

func (c *Container) fillSlot(idx int, passphrase, masterKey []byte) error {
	salt, err := randBytes(32)
	if err != nil {
		return err
	}
	split, err := kdf.AFSplit(masterKey, Stripes)
	if err != nil {
		return err
	}
	ci, err := slotCipher(passphrase, salt, DefaultIterations)
	if err != nil {
		return err
	}
	area := make([]byte, len(split))
	if err := ci.Encrypt(area, split, xts.SectorTweak(uint64(idx))); err != nil {
		return err
	}
	c.Slots[idx] = Keyslot{
		Active:     true,
		Salt:       salt,
		Iterations: DefaultIterations,
		Stripes:    Stripes,
		Area:       area,
	}
	return nil
}

// Unlock recovers the master key with a passphrase, trying every active
// slot and verifying against the digest.
func (c *Container) Unlock(passphrase []byte) ([]byte, error) {
	for idx, slot := range c.Slots {
		if !slot.Active {
			continue
		}
		ci, err := slotCipher(passphrase, slot.Salt, slot.Iterations)
		if err != nil {
			return nil, err
		}
		split := make([]byte, len(slot.Area))
		if err := ci.Decrypt(split, slot.Area, xts.SectorTweak(uint64(idx))); err != nil {
			return nil, err
		}
		if slot.Stripes < 2 || len(split)%slot.Stripes != 0 {
			return nil, ErrCorrupt
		}
		keyLen := len(split) / slot.Stripes
		mk, err := kdf.AFMerge(split, keyLen, slot.Stripes)
		if err != nil {
			return nil, err
		}
		if subtle.ConstantTimeCompare(digestOf(mk, c.DigestSalt, c.DigestIter), c.Digest) == 1 {
			return mk, nil
		}
	}
	return nil, ErrPassphrase
}

// AddKey binds a new passphrase (authorized by an existing one) to a free
// slot, returning the slot index.
func (c *Container) AddKey(existing, next []byte) (int, error) {
	mk, err := c.Unlock(existing)
	if err != nil {
		return -1, err
	}
	for idx := range c.Slots {
		if !c.Slots[idx].Active {
			if err := c.fillSlot(idx, next, mk); err != nil {
				return -1, err
			}
			return idx, nil
		}
	}
	return -1, ErrNoFreeSlot
}

// RemoveKey deactivates a slot and destroys its key material.
func (c *Container) RemoveKey(idx int) error {
	if idx < 0 || idx >= len(c.Slots) || !c.Slots[idx].Active {
		return fmt.Errorf("luks: slot %d not active", idx)
	}
	c.Slots[idx] = Keyslot{}
	return nil
}

// ActiveSlots lists the active keyslot indexes.
func (c *Container) ActiveSlots() []int {
	var out []int
	for i, s := range c.Slots {
		if s.Active {
			out = append(out, i)
		}
	}
	return out
}

// Marshal serializes the container.
func (c *Container) Marshal() ([]byte, error) {
	return json.Marshal(c)
}

// Unmarshal parses a container and validates its magic.
func Unmarshal(b []byte) (*Container, error) {
	var c Container
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if c.MagicField != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if len(c.Slots) > MaxSlots || !bytes.Equal([]byte(c.MagicField), []byte(Magic)) {
		return nil, ErrCorrupt
	}
	return &c, nil
}
