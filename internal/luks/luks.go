// Package luks implements a LUKS2-style key-management container, the
// format Ceph RBD client-side encryption uses (§2.4). A container wraps a
// randomly generated master key behind one or more passphrase keyslots:
//
//   - the slot key is stretched from the passphrase with PBKDF2-HMAC-SHA256,
//   - the master key is anti-forensically split (kdf.AFSplit) and the
//     stripes encrypted with AES-XTS under the slot key,
//   - a PBKDF2 digest of the master key lets Unlock verify a candidate.
//
// On top of the passphrase slots the container carries a versioned
// master-key table: each key *epoch* is an independent random 64-byte
// data key, wrapped under a KEK derived from the master key, so several
// epochs coexist while an image is re-keyed online. Destroying an epoch
// entry is crypto-erase — without the wrapped blob the epoch's data key
// is unrecoverable even with every passphrase.
//
// Metadata is JSON (as in LUKS2) with binary areas carried base64-encoded,
// so a container serializes to a single blob the virtual-disk layer stores
// alongside the image.
package luks

import (
	"bytes"
	"crypto/rand"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/crypto/kdf"
	"repro/internal/crypto/xts"
)

const (
	// Magic identifies serialized containers.
	Magic = "LUKS2-repro\x00"
	// MasterKeySize is the XTS-AES-256 key size (two 256-bit keys).
	MasterKeySize = 64
	// Stripes is the anti-forensic expansion factor (LUKS default 4000 is
	// overkill for a simulation; 64 keeps the same property cheaply).
	Stripes = 64
	// DefaultIterations is the PBKDF2 cost.
	DefaultIterations = 4096
	// MaxSlots bounds the keyslot table (8, as in LUKS).
	MaxSlots = 8
	// WrapIterations is the PBKDF2 cost deriving the epoch-wrapping KEK
	// from the master key. The master key is already full-entropy, so this
	// is domain separation, not stretching.
	WrapIterations = 64
)

var (
	// ErrPassphrase reports that no keyslot opened with the passphrase.
	ErrPassphrase = errors.New("luks: no keyslot matches passphrase")
	// ErrNoFreeSlot reports a full keyslot table.
	ErrNoFreeSlot = errors.New("luks: no free keyslot")
	// ErrCorrupt reports a malformed container.
	ErrCorrupt = errors.New("luks: corrupt container")
	// ErrEpochUnknown reports a key epoch with no (remaining) table entry —
	// either never created or destroyed by crypto-erase.
	ErrEpochUnknown = errors.New("luks: unknown or destroyed key epoch")
)

// Keyslot is one passphrase binding.
type Keyslot struct {
	Active     bool   `json:"active"`
	Salt       []byte `json:"salt,omitempty"`
	Iterations int    `json:"iterations,omitempty"`
	Stripes    int    `json:"stripes,omitempty"`
	Area       []byte `json:"area,omitempty"` // encrypted AF-split master key
}

// KeyEpoch is one entry of the versioned master-key table: a random
// 64-byte data key wrapped under the master-key-derived KEK. Check lets
// an unwrap be verified without touching data.
type KeyEpoch struct {
	Epoch   uint32 `json:"epoch"`
	Wrapped []byte `json:"wrapped"`
	Check   []byte `json:"check"`
}

// Container is the on-disk header.
type Container struct {
	MagicField string    `json:"magic"`
	UUID       string    `json:"uuid"`
	Cipher     string    `json:"cipher"` // informational: the data cipher
	DigestSalt []byte    `json:"digest_salt"`
	DigestIter int       `json:"digest_iter"`
	Digest     []byte    `json:"digest"` // PBKDF2(masterKey, DigestSalt)
	Slots      []Keyslot `json:"slots"`

	// The versioned master-key table. WrapSalt feeds the KEK derivation;
	// Current is the epoch new writes must seal under. Containers from
	// before the table existed have no entries: epoch 0 is then the master
	// key itself (see EpochKey).
	WrapSalt []byte     `json:"wrap_salt,omitempty"`
	Current  uint32     `json:"current_epoch,omitempty"`
	Epochs   []KeyEpoch `json:"epochs,omitempty"`
}

func randBytes(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		return nil, err
	}
	return b, nil
}

// slotCipher builds the XTS cipher protecting a keyslot area.
func slotCipher(passphrase, salt []byte, iter int) (*xts.Cipher, error) {
	key := kdf.PBKDF2(passphrase, salt, iter, 64)
	return xts.NewCipher(key)
}

func digestOf(masterKey, salt []byte, iter int) []byte {
	return kdf.PBKDF2(masterKey, salt, iter, 32)
}

// Format creates a container with a fresh random master key bound to the
// passphrase in slot 0, returning both.
func Format(passphrase []byte, cipherName string) (*Container, []byte, error) {
	masterKey, err := randBytes(MasterKeySize)
	if err != nil {
		return nil, nil, err
	}
	uuid, err := randBytes(16)
	if err != nil {
		return nil, nil, err
	}
	dsalt, err := randBytes(32)
	if err != nil {
		return nil, nil, err
	}
	wsalt, err := randBytes(32)
	if err != nil {
		return nil, nil, err
	}
	c := &Container{
		MagicField: Magic,
		UUID:       fmt.Sprintf("%x", uuid),
		Cipher:     cipherName,
		DigestSalt: dsalt,
		DigestIter: DefaultIterations,
		Digest:     digestOf(masterKey, dsalt, DefaultIterations),
		Slots:      make([]Keyslot, MaxSlots),
		WrapSalt:   wsalt,
	}
	if err := c.fillSlot(0, passphrase, masterKey); err != nil {
		return nil, nil, err
	}
	if _, err := c.AddEpoch(masterKey); err != nil {
		return nil, nil, err
	}
	return c, masterKey, nil
}

// ---- versioned master-key (epoch) table ----

// kek derives the epoch-wrapping key-encryption key from the master key.
func (c *Container) kek(masterKey []byte) (*xts.Cipher, error) {
	return xts.NewCipher(kdf.PBKDF2(masterKey, c.WrapSalt, WrapIterations, 64))
}

func epochCheck(c *Container, key []byte) []byte {
	return kdf.PBKDF2(key, c.WrapSalt, WrapIterations, 16)
}

func (c *Container) findEpoch(epoch uint32) *KeyEpoch {
	for i := range c.Epochs {
		if c.Epochs[i].Epoch == epoch {
			return &c.Epochs[i]
		}
	}
	return nil
}

// CurrentEpoch returns the epoch new writes seal under.
func (c *Container) CurrentEpoch() uint32 { return c.Current }

// EpochIDs lists the live (non-destroyed) epochs, oldest first. A legacy
// container without a table reports the implicit epoch 0.
func (c *Container) EpochIDs() []uint32 {
	if len(c.Epochs) == 0 {
		return []uint32{0}
	}
	out := make([]uint32, len(c.Epochs))
	for i, e := range c.Epochs {
		out[i] = e.Epoch
	}
	return out
}

// AddEpoch mints the next key epoch: a fresh random 64-byte data key,
// wrapped under the master-key KEK, appended to the table and made
// current. It returns the new epoch id.
func (c *Container) AddEpoch(masterKey []byte) (uint32, error) {
	legacy := len(c.WrapSalt) == 0
	if legacy {
		// Pre-table container: create the table lazily, and materialize
		// the implicit epoch 0 (the master key itself) as a real entry so
		// it stays resolvable — and eventually destroyable — once other
		// epochs exist.
		wsalt, err := randBytes(32)
		if err != nil {
			return 0, err
		}
		c.WrapSalt = wsalt
		ci, err := c.kek(masterKey)
		if err != nil {
			return 0, err
		}
		wrapped := make([]byte, MasterKeySize)
		if err := ci.Encrypt(wrapped, masterKey, xts.SectorTweak(0)); err != nil {
			return 0, err
		}
		c.Epochs = append(c.Epochs, KeyEpoch{Epoch: 0, Wrapped: wrapped, Check: epochCheck(c, masterKey)})
	}
	var next uint32
	if legacy || len(c.Epochs) > 0 {
		next = c.Current + 1
	}
	for _, e := range c.Epochs {
		if e.Epoch >= next {
			next = e.Epoch + 1
		}
	}
	key, err := randBytes(MasterKeySize)
	if err != nil {
		return 0, err
	}
	ci, err := c.kek(masterKey)
	if err != nil {
		return 0, err
	}
	wrapped := make([]byte, MasterKeySize)
	if err := ci.Encrypt(wrapped, key, xts.SectorTweak(uint64(next))); err != nil {
		return 0, err
	}
	c.Epochs = append(c.Epochs, KeyEpoch{Epoch: next, Wrapped: wrapped, Check: epochCheck(c, key)})
	c.Current = next
	return next, nil
}

// RetractEpoch removes a just-minted epoch and restores the previous
// current epoch — the in-memory rollback for a caller whose attempt to
// persist the container after AddEpoch failed. Unlike DestroyEpoch it
// may remove the current epoch, because the mint never became durable.
func (c *Container) RetractEpoch(epoch, prevCurrent uint32) error {
	for i := range c.Epochs {
		if c.Epochs[i].Epoch == epoch {
			clear(c.Epochs[i].Wrapped)
			c.Epochs = append(c.Epochs[:i], c.Epochs[i+1:]...)
			if c.Current == epoch {
				c.Current = prevCurrent
			}
			return nil
		}
	}
	return fmt.Errorf("%w: epoch %d", ErrEpochUnknown, epoch)
}

// EpochKey unwraps the data key for an epoch. For a legacy container
// without an epoch table, epoch 0 is the master key itself.
func (c *Container) EpochKey(masterKey []byte, epoch uint32) ([]byte, error) {
	if len(c.Epochs) == 0 && epoch == 0 {
		return append([]byte(nil), masterKey...), nil
	}
	e := c.findEpoch(epoch)
	if e == nil {
		return nil, fmt.Errorf("%w: epoch %d", ErrEpochUnknown, epoch)
	}
	ci, err := c.kek(masterKey)
	if err != nil {
		return nil, err
	}
	key := make([]byte, len(e.Wrapped))
	if err := ci.Decrypt(key, e.Wrapped, xts.SectorTweak(uint64(epoch))); err != nil {
		return nil, err
	}
	if subtle.ConstantTimeCompare(epochCheck(c, key), e.Check) != 1 {
		return nil, fmt.Errorf("%w: epoch %d check failed", ErrCorrupt, epoch)
	}
	return key, nil
}

// RemoveEpoch takes an epoch's entry out of the table and returns it
// intact, so a caller that persists the container afterwards can
// Reinstate it if the persist fails — without this two-phase shape, a
// failed persist would leave the erase claimed in memory but absent on
// disk. The current epoch cannot be removed.
func (c *Container) RemoveEpoch(epoch uint32) (KeyEpoch, error) {
	if epoch == c.Current {
		return KeyEpoch{}, fmt.Errorf("luks: cannot destroy current epoch %d", epoch)
	}
	for i := range c.Epochs {
		if c.Epochs[i].Epoch == epoch {
			e := c.Epochs[i]
			c.Epochs = append(c.Epochs[:i], c.Epochs[i+1:]...)
			return e, nil
		}
	}
	return KeyEpoch{}, fmt.Errorf("%w: epoch %d", ErrEpochUnknown, epoch)
}

// ReinstateEpoch restores an entry taken by RemoveEpoch.
func (c *Container) ReinstateEpoch(e KeyEpoch) {
	c.Epochs = append(c.Epochs, e)
}

// DestroyEpoch removes an epoch's wrapped key from the table and scrubs
// it — the fire-and-forget crypto-erase primitive: every block still
// sealed under that epoch becomes unrecoverable. The current epoch
// cannot be destroyed.
func (c *Container) DestroyEpoch(epoch uint32) error {
	e, err := c.RemoveEpoch(epoch)
	if err != nil {
		return err
	}
	clear(e.Wrapped)
	return nil
}

func (c *Container) fillSlot(idx int, passphrase, masterKey []byte) error {
	salt, err := randBytes(32)
	if err != nil {
		return err
	}
	split, err := kdf.AFSplit(masterKey, Stripes)
	if err != nil {
		return err
	}
	ci, err := slotCipher(passphrase, salt, DefaultIterations)
	if err != nil {
		return err
	}
	area := make([]byte, len(split))
	if err := ci.Encrypt(area, split, xts.SectorTweak(uint64(idx))); err != nil {
		return err
	}
	c.Slots[idx] = Keyslot{
		Active:     true,
		Salt:       salt,
		Iterations: DefaultIterations,
		Stripes:    Stripes,
		Area:       area,
	}
	return nil
}

// Unlock recovers the master key with a passphrase, trying every active
// slot and verifying against the digest.
func (c *Container) Unlock(passphrase []byte) ([]byte, error) {
	for idx, slot := range c.Slots {
		if !slot.Active {
			continue
		}
		ci, err := slotCipher(passphrase, slot.Salt, slot.Iterations)
		if err != nil {
			return nil, err
		}
		split := make([]byte, len(slot.Area))
		if err := ci.Decrypt(split, slot.Area, xts.SectorTweak(uint64(idx))); err != nil {
			return nil, err
		}
		if slot.Stripes < 2 || len(split)%slot.Stripes != 0 {
			return nil, ErrCorrupt
		}
		keyLen := len(split) / slot.Stripes
		mk, err := kdf.AFMerge(split, keyLen, slot.Stripes)
		if err != nil {
			return nil, err
		}
		if subtle.ConstantTimeCompare(digestOf(mk, c.DigestSalt, c.DigestIter), c.Digest) == 1 {
			return mk, nil
		}
	}
	return nil, ErrPassphrase
}

// AddKey binds a new passphrase (authorized by an existing one) to a free
// slot, returning the slot index.
func (c *Container) AddKey(existing, next []byte) (int, error) {
	mk, err := c.Unlock(existing)
	if err != nil {
		return -1, err
	}
	for idx := range c.Slots {
		if !c.Slots[idx].Active {
			if err := c.fillSlot(idx, next, mk); err != nil {
				return -1, err
			}
			return idx, nil
		}
	}
	return -1, ErrNoFreeSlot
}

// RemoveKey deactivates a slot and destroys its key material.
func (c *Container) RemoveKey(idx int) error {
	if idx < 0 || idx >= len(c.Slots) || !c.Slots[idx].Active {
		return fmt.Errorf("luks: slot %d not active", idx)
	}
	c.Slots[idx] = Keyslot{}
	return nil
}

// ActiveSlots lists the active keyslot indexes.
func (c *Container) ActiveSlots() []int {
	var out []int
	for i, s := range c.Slots {
		if s.Active {
			out = append(out, i)
		}
	}
	return out
}

// Marshal serializes the container.
func (c *Container) Marshal() ([]byte, error) {
	return json.Marshal(c)
}

// Unmarshal parses a container and validates its magic.
func Unmarshal(b []byte) (*Container, error) {
	var c Container
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if c.MagicField != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if len(c.Slots) > MaxSlots || !bytes.Equal([]byte(c.MagicField), []byte(Magic)) {
		return nil, ErrCorrupt
	}
	return &c, nil
}
