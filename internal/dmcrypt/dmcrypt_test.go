package dmcrypt

import (
	"bytes"
	//vetrepo:ignore cryptohygiene fixed-seed source generating test IO payloads, never key material
	"math/rand"
	"testing"

	"repro/internal/fio"
	"repro/internal/simdisk"
	"repro/internal/vtime"
)

func newDisk() *simdisk.Disk {
	return simdisk.New("nvme0", (256<<20)/simdisk.SectorSize, simdisk.DefaultCostModel())
}

func key64() []byte { return bytes.Repeat([]byte{7}, 64) }

func TestPlainCryptRoundTrip(t *testing.T) {
	c, err := NewCrypt(DiskDevice{newDisk()}, key64())
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3*SectorSize)
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := c.WriteAt(0, data, 8*SectorSize); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := c.ReadAt(0, got, 8*SectorSize); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip failed")
	}
}

func TestCryptActuallyEncrypts(t *testing.T) {
	d := newDisk()
	c, err := NewCrypt(DiskDevice{d}, key64())
	if err != nil {
		t.Fatal(err)
	}
	plain := bytes.Repeat([]byte("SECRET!!"), SectorSize/8)
	if _, err := c.WriteAt(0, plain, 0); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, SectorSize)
	if _, err := d.ReadAt(0, raw, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte("SECRET!!")) {
		t.Fatal("plaintext on media")
	}
}

func TestIntegrityRandIVRoundTrip(t *testing.T) {
	for _, journal := range []bool{false, true} {
		g := NewIntegrity(DiskDevice{newDisk()}, journal)
		c, err := NewCryptRandIV(g, key64())
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 5*SectorSize)
		rand.New(rand.NewSource(2)).Read(data)
		if _, err := c.WriteAt(0, data, 16*SectorSize); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if _, err := c.ReadAt(0, got, 16*SectorSize); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("journal=%v: round trip failed", journal)
		}
	}
}

func TestIntegrityLayoutDisjoint(t *testing.T) {
	// Writing two adjacent logical runs must not clobber each other or
	// their metadata (layout math check across group boundaries).
	g := NewIntegrity(DiskDevice{newDisk()}, false)
	c, _ := NewCryptRandIV(g, key64())
	a := bytes.Repeat([]byte{0xA1}, SectorSize)
	b := bytes.Repeat([]byte{0xB2}, SectorSize)
	// Around the 256-sector group boundary.
	offA := int64(255) * SectorSize
	offB := int64(256) * SectorSize
	if _, err := c.WriteAt(0, a, offA); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteAt(0, b, offB); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, SectorSize)
	if _, err := c.ReadAt(0, got, offA); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, a) {
		t.Fatal("sector A corrupted")
	}
	if _, err := c.ReadAt(0, got, offB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, b) {
		t.Fatal("sector B corrupted")
	}
}

func TestRandIVFreshPerWrite(t *testing.T) {
	d := newDisk()
	g := NewIntegrity(DiskDevice{d}, false)
	c, _ := NewCryptRandIV(g, key64())
	plain := bytes.Repeat([]byte{0x33}, SectorSize)
	read := func() []byte {
		raw := make([]byte, SectorSize)
		phys, _ := g.physFor(0)
		if _, err := d.ReadAt(0, raw, phys*SectorSize); err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if _, err := c.WriteAt(0, plain, 0); err != nil {
		t.Fatal(err)
	}
	ct1 := read()
	if _, err := c.WriteAt(0, plain, 0); err != nil {
		t.Fatal(err)
	}
	ct2 := read()
	if bytes.Equal(ct1, ct2) {
		t.Fatal("random IV should refresh ciphertext")
	}
}

func TestAlignmentEnforced(t *testing.T) {
	c, _ := NewCrypt(DiskDevice{newDisk()}, key64())
	if _, err := c.WriteAt(0, make([]byte, 100), 0); err == nil {
		t.Fatal("misaligned write accepted")
	}
	if _, err := c.ReadAt(0, make([]byte, SectorSize), 7); err == nil {
		t.Fatal("misaligned read accepted")
	}
}

func TestBoundsEnforced(t *testing.T) {
	g := NewIntegrity(DiskDevice{newDisk()}, false)
	c, _ := NewCryptRandIV(g, key64())
	if _, err := c.WriteAt(0, make([]byte, SectorSize), c.Size()); err == nil {
		t.Fatal("write beyond device accepted")
	}
}

// The §2.3 claim: the journal roughly halves write throughput.
func TestJournalHalvesThroughput(t *testing.T) {
	run := func(journal bool) float64 {
		g := NewIntegrity(DiskDevice{newDisk()}, journal)
		c, err := NewCryptRandIV(g, key64())
		if err != nil {
			t.Fatal(err)
		}
		res, err := fio.Run(fio.Spec{
			Pattern: fio.RandWrite, BlockSize: 64 << 10, QueueDepth: 8, TotalOps: 200,
		}, c, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.MBps()
	}
	plain := run(false)
	journaled := run(true)
	ratio := journaled / plain
	if ratio > 0.75 || ratio < 0.25 {
		t.Fatalf("journal ratio %.2f (plain %.0f MB/s, journaled %.0f MB/s); paper expects ~0.5",
			ratio, plain, journaled)
	}
}

// Virtual time must propagate through the stack.
func TestVirtualTime(t *testing.T) {
	c, _ := NewCrypt(DiskDevice{newDisk()}, key64())
	end, err := c.WriteAt(vtime.Time(100), make([]byte, SectorSize), 0)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 100 {
		t.Fatal("no time charged")
	}
}
