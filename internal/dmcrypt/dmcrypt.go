// Package dmcrypt implements a device-mapper-style layered encryption
// stack over a single simulated disk, reproducing the related-work
// comparison of §2.3: Brož et al. store per-sector metadata with
// dm-crypt by stacking a dm-integrity mapping underneath, paying for a
// data journal — "shown to reduce the throughput by nearly one-half".
//
// Two layers are provided:
//
//   - Crypt: sector encryption (deterministic XTS or random-IV XTS whose
//     IV is stored in the lower layer's per-sector metadata), 1:1 block
//     mapping, like dm-crypt.
//   - Integrity: per-sector metadata regions interleaved with data, with
//     an optional data+metadata journal providing the atomic update the
//     paper's RADOS transactions give for free at the virtual-disk layer.
//
// The contrast between this stack and internal/core is the paper's §4
// argument: the virtual mapping layer can host per-sector metadata more
// efficiently than an extra mapping layer underneath a block device.
package dmcrypt

import (
	"crypto/rand"
	"errors"
	"fmt"
	"sync"

	"repro/internal/crypto/xts"
	"repro/internal/simdisk"
	"repro/internal/vtime"
)

// SectorSize is the encryption sector size (4 KiB, as in the paper).
const SectorSize = simdisk.SectorSize

// ErrAlignment reports IO not aligned to the sector size.
var ErrAlignment = errors.New("dmcrypt: IO must be sector aligned")

// Device is a virtual-time block device layer.
type Device interface {
	ReadAt(at vtime.Time, p []byte, off int64) (vtime.Time, error)
	WriteAt(at vtime.Time, p []byte, off int64) (vtime.Time, error)
	Size() int64
}

// DiskDevice adapts a raw simdisk to the Device interface.
type DiskDevice struct{ Disk *simdisk.Disk }

// ReadAt implements Device.
func (d DiskDevice) ReadAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	return d.Disk.ReadAt(at, p, off)
}

// WriteAt implements Device.
func (d DiskDevice) WriteAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	return d.Disk.WriteAt(at, p, off)
}

// Size implements Device.
func (d DiskDevice) Size() int64 { return d.Disk.Size() }

// ---- dm-integrity layer ----

// metaPerSector is the metadata bytes reserved per data sector (enough
// for a 16-byte IV; dm-integrity reserves what the consumer asks for).
const metaPerSector = 16

// sectorsPerGroup data sectors share one interleaved metadata sector
// (4096/16 = 256), mirroring dm-integrity's interleaved layout.
const sectorsPerGroup = SectorSize / metaPerSector

// Integrity interleaves per-sector metadata with data and optionally
// journals data+metadata so they update atomically.
type Integrity struct {
	inner   Device
	journal bool

	dataSectors int64
	jrnOff      int64 // journal region offset
	jrnLen      int64

	jrnMu   sync.Mutex
	jrnHead int64 // next journal write offset (ring); guarded by jrnMu
}

// NewIntegrity lays the integrity mapping over a device. With journal
// set, every write is first journaled (data+meta), then applied in place
// — the double write behind the related-work slowdown.
func NewIntegrity(inner Device, journal bool) *Integrity {
	total := inner.Size() / SectorSize
	jrnSectors := int64(0)
	if journal {
		jrnSectors = total / 16 // ~6% journal, dm-integrity default scale
		if jrnSectors < 8 {
			jrnSectors = 8
		}
	}
	usable := total - jrnSectors
	// Each group of 256 data sectors consumes 257 physical sectors.
	groups := usable / (sectorsPerGroup + 1)
	return &Integrity{
		inner:       inner,
		journal:     journal,
		dataSectors: groups * sectorsPerGroup,
		jrnOff:      (total - jrnSectors) * SectorSize,
		jrnLen:      jrnSectors * SectorSize,
	}
}

// Size implements Device (the usable data size).
func (g *Integrity) Size() int64 { return g.dataSectors * SectorSize }

// physFor maps a logical sector to its physical sector and the byte
// offset of its metadata slot.
func (g *Integrity) physFor(logical int64) (phys int64, metaOff int64) {
	group := logical / sectorsPerGroup
	idx := logical % sectorsPerGroup
	groupStart := group * (sectorsPerGroup + 1)
	phys = groupStart + 1 + idx // metadata sector leads the group
	metaOff = groupStart*SectorSize + idx*metaPerSector
	return
}

func checkAligned(p []byte, off int64) error {
	if off%SectorSize != 0 || len(p)%SectorSize != 0 {
		return fmt.Errorf("%w: off=%d len=%d", ErrAlignment, off, len(p))
	}
	return nil
}

// WriteSectorsMeta writes data sectors plus their metadata atomically
// (journaled) or in place. metas holds metaPerSector bytes per sector and
// may be nil when the consumer stores nothing.
func (g *Integrity) WriteSectorsMeta(at vtime.Time, p []byte, off int64, metas []byte) (vtime.Time, error) {
	if err := checkAligned(p, off); err != nil {
		return at, err
	}
	if off+int64(len(p)) > g.Size() {
		return at, fmt.Errorf("dmcrypt: write beyond device (%d+%d > %d)", off, len(p), g.Size())
	}
	n := int64(len(p)) / SectorSize

	end := at
	if g.journal {
		// Journal pass: data plus metadata, sequential in the ring, then
		// the in-place writes. This is the "nearly one-half" cost.
		jn := int64(len(p)) + n*metaPerSector + SectorSize // + commit block
		jbuf := make([]byte, jn)
		copy(jbuf, p)
		if metas != nil {
			copy(jbuf[len(p):], metas)
		}
		// The journal is strictly sequential (as in dm-integrity), so the
		// ring write happens under the lock: concurrent writers (fio
		// workers share one device) cannot interleave inside a record or
		// land on the same slot after a ring wrap.
		g.jrnMu.Lock()
		if g.jrnHead+jn > g.jrnLen {
			g.jrnHead = 0
		}
		slot := g.jrnHead
		g.jrnHead += jn
		e, err := g.inner.WriteAt(at, jbuf, g.jrnOff+slot)
		g.jrnMu.Unlock()
		if err != nil {
			return at, err
		}
		end = e
	}

	// In-place data writes (contiguous runs within groups).
	logical := off / SectorSize
	for i := int64(0); i < n; {
		phys, _ := g.physFor(logical + i)
		run := int64(1)
		for i+run < n && (logical+i+run)%sectorsPerGroup != 0 {
			run++
		}
		e, err := g.inner.WriteAt(end, p[i*SectorSize:(i+run)*SectorSize], phys*SectorSize)
		if err != nil {
			return at, err
		}
		end = vtime.Max(end, e)
		i += run
	}

	// Metadata slots (sub-sector read-modify-writes on the meta sectors).
	if metas != nil {
		for i := int64(0); i < n; {
			_, metaOff := g.physFor(logical + i)
			run := int64(1)
			for i+run < n && (logical+i+run)%sectorsPerGroup != 0 {
				run++
			}
			e, err := g.inner.WriteAt(end, metas[i*metaPerSector:(i+run)*metaPerSector], metaOff)
			if err != nil {
				return at, err
			}
			end = vtime.Max(end, e)
			i += run
		}
	}
	return end, nil
}

// ReadSectorsMeta reads data sectors and their metadata.
func (g *Integrity) ReadSectorsMeta(at vtime.Time, p []byte, off int64, metas []byte) (vtime.Time, error) {
	if err := checkAligned(p, off); err != nil {
		return at, err
	}
	if off+int64(len(p)) > g.Size() {
		return at, fmt.Errorf("dmcrypt: read beyond device (%d+%d > %d)", off, len(p), g.Size())
	}
	n := int64(len(p)) / SectorSize
	logical := off / SectorSize
	end := at
	for i := int64(0); i < n; {
		phys, metaOff := g.physFor(logical + i)
		run := int64(1)
		for i+run < n && (logical+i+run)%sectorsPerGroup != 0 {
			run++
		}
		e, err := g.inner.ReadAt(at, p[i*SectorSize:(i+run)*SectorSize], phys*SectorSize)
		if err != nil {
			return at, err
		}
		end = vtime.Max(end, e)
		if metas != nil {
			e, err = g.inner.ReadAt(at, metas[i*metaPerSector:(i+run)*metaPerSector], metaOff)
			if err != nil {
				return at, err
			}
			end = vtime.Max(end, e)
		}
		i += run
	}
	return end, nil
}

// ---- dm-crypt layer ----

// Crypt encrypts 4 KiB sectors over an Integrity mapping (random IV) or
// directly over a Device (deterministic LBA tweak).
type Crypt struct {
	cipher *xts.Cipher
	// exactly one of the two lower layers is set
	plain     Device
	integrity *Integrity
}

// NewCrypt builds the deterministic dm-crypt analog (LBA-tweak XTS, no
// metadata) directly over a device.
func NewCrypt(inner Device, key []byte) (*Crypt, error) {
	c, err := xts.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &Crypt{cipher: c, plain: inner}, nil
}

// NewCryptRandIV builds the random-IV stack: dm-crypt storing its IV in
// the dm-integrity metadata underneath (the Brož et al. configuration).
func NewCryptRandIV(integrity *Integrity, key []byte) (*Crypt, error) {
	c, err := xts.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &Crypt{cipher: c, integrity: integrity}, nil
}

// Size implements Device.
func (c *Crypt) Size() int64 {
	if c.plain != nil {
		return c.plain.Size()
	}
	return c.integrity.Size()
}

// WriteAt encrypts and writes sector-aligned data.
func (c *Crypt) WriteAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	if err := checkAligned(p, off); err != nil {
		return at, err
	}
	n := int64(len(p)) / SectorSize
	ct := make([]byte, len(p))
	if c.plain != nil {
		for i := int64(0); i < n; i++ {
			sector := uint64(off/SectorSize + i)
			if err := c.cipher.Encrypt(ct[i*SectorSize:(i+1)*SectorSize], p[i*SectorSize:(i+1)*SectorSize], xts.SectorTweak(sector)); err != nil {
				return at, err
			}
		}
		return c.plain.WriteAt(at, ct, off)
	}
	metas := make([]byte, n*metaPerSector)
	if _, err := rand.Read(metas); err != nil {
		return at, err
	}
	for i := int64(0); i < n; i++ {
		var tweak [16]byte
		copy(tweak[:], metas[i*metaPerSector:(i+1)*metaPerSector])
		if err := c.cipher.Encrypt(ct[i*SectorSize:(i+1)*SectorSize], p[i*SectorSize:(i+1)*SectorSize], tweak); err != nil {
			return at, err
		}
	}
	return c.integrity.WriteSectorsMeta(at, ct, off, metas)
}

// ReadAt reads and decrypts sector-aligned data.
func (c *Crypt) ReadAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	if err := checkAligned(p, off); err != nil {
		return at, err
	}
	n := int64(len(p)) / SectorSize
	if c.plain != nil {
		end, err := c.plain.ReadAt(at, p, off)
		if err != nil {
			return at, err
		}
		for i := int64(0); i < n; i++ {
			sector := uint64(off/SectorSize + i)
			blk := p[i*SectorSize : (i+1)*SectorSize]
			if err := c.cipher.Decrypt(blk, blk, xts.SectorTweak(sector)); err != nil {
				return at, err
			}
		}
		return end, nil
	}
	metas := make([]byte, n*metaPerSector)
	end, err := c.integrity.ReadSectorsMeta(at, p, off, metas)
	if err != nil {
		return at, err
	}
	for i := int64(0); i < n; i++ {
		blk := p[i*SectorSize : (i+1)*SectorSize]
		if allZero(blk) && allZero(metas[i*metaPerSector:(i+1)*metaPerSector]) {
			continue // never-written sector: sparse zero
		}
		var tweak [16]byte
		copy(tweak[:], metas[i*metaPerSector:(i+1)*metaPerSector])
		if err := c.cipher.Decrypt(blk, blk, tweak); err != nil {
			return at, err
		}
	}
	return end, nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
