// Package blobstore implements a per-disk object store in the role
// BlueStore plays inside a Ceph OSD. It provides named objects with
// byte-addressable data, per-object attributes and OMAP key-value pairs,
// and atomic multi-op transactions.
//
// The design mirrors the parts of BlueStore the paper's experiments
// exercise:
//
//   - One kvstore (the RocksDB stand-in) per disk holds object metadata,
//     attributes and OMAP entries. Its write-ahead log doubles as the OSD
//     transaction journal: a transaction commits with a single WAL append.
//   - Sector-aligned data spans are written in place in the data area.
//   - Sub-sector spans are the interesting case for the paper: they are
//     journaled in the commit batch (so a crash cannot corrupt the
//     *neighboring* blocks that share the sector — the data/IV consistency
//     requirement of §3.1) and then applied with a real read-modify-write,
//     served through a small sector cache that stands in for the OSD page
//     cache.
//
// Costs (device time, RMW reads, journal bytes, KV churn) accrue naturally
// from these mechanisms; nothing scheme-specific is hard-coded here.
package blobstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/kvstore"
	"repro/internal/simdisk"
	"repro/internal/vtime"
)

var (
	// ErrNotFound reports a missing object.
	ErrNotFound = errors.New("blobstore: object not found")
	// ErrNoSpace reports data-area exhaustion.
	ErrNoSpace = errors.New("blobstore: out of data space")
	// ErrBounds reports an access beyond the object capacity.
	ErrBounds = errors.New("blobstore: access beyond object capacity")
	// ErrExists reports a clone destination that already exists.
	ErrExists = errors.New("blobstore: object already exists")
)

// Config tunes the store. Zero values select defaults.
type Config struct {
	// ObjectCapacity is the fixed byte capacity reserved per object
	// (RADOS object payload plus slack for per-sector metadata layouts).
	ObjectCapacity int64
	// KVBytes is the size of the metadata store partition.
	KVBytes int64
	// CacheSectors bounds the sector cache standing in for the OSD page
	// cache (hot IV sectors live here).
	CacheSectors int
	// KV configures the embedded metadata store.
	KV kvstore.Config
}

func (c Config) withDefaults() Config {
	if c.ObjectCapacity <= 0 {
		c.ObjectCapacity = 4<<20 + 128<<10
	}
	if c.ObjectCapacity%simdisk.SectorSize != 0 {
		c.ObjectCapacity = (c.ObjectCapacity/simdisk.SectorSize + 1) * simdisk.SectorSize
	}
	if c.KVBytes <= 0 {
		c.KVBytes = 256 << 20
	}
	if c.CacheSectors <= 0 {
		c.CacheSectors = 16384 // 64 MiB
	}
	return c
}

// KVPair is an OMAP or attribute key-value pair.
type KVPair struct {
	Key   []byte
	Value []byte
}

// DataWrite is one byte span written inside an object.
type DataWrite struct {
	Off  int64
	Data []byte
}

// Txn is an atomic transaction against a single object: all data writes,
// OMAP mutations and attribute sets commit together or not at all.
type Txn struct {
	Writes   []DataWrite
	OmapSet  []KVPair
	OmapDel  [][]byte
	AttrSet  []KVPair
	Truncate int64 // new object size when >= 0; pass -1 to leave unchanged
}

// NewTxn returns an empty transaction.
func NewTxn() *Txn { return &Txn{Truncate: -1} }

// objectInfo is the persistent per-object record ("onode").
type objectInfo struct {
	baseSector int64 // first data-area sector
	capBytes   int64
	sizeBytes  int64 // logical high-water mark
	version    uint64
}

func (oi objectInfo) marshal() []byte {
	b := make([]byte, 32)
	binary.LittleEndian.PutUint64(b[0:8], uint64(oi.baseSector))
	binary.LittleEndian.PutUint64(b[8:16], uint64(oi.capBytes))
	binary.LittleEndian.PutUint64(b[16:24], uint64(oi.sizeBytes))
	binary.LittleEndian.PutUint64(b[24:32], oi.version)
	return b
}

func unmarshalObjectInfo(b []byte) (objectInfo, error) {
	if len(b) != 32 {
		return objectInfo{}, fmt.Errorf("blobstore: bad onode record (%d bytes)", len(b))
	}
	return objectInfo{
		baseSector: int64(binary.LittleEndian.Uint64(b[0:8])),
		capBytes:   int64(binary.LittleEndian.Uint64(b[8:16])),
		sizeBytes:  int64(binary.LittleEndian.Uint64(b[16:24])),
		version:    binary.LittleEndian.Uint64(b[24:32]),
	}, nil
}

// Stats counts store activity.
type Stats struct {
	Txns            int64
	AlignedWrites   int64 // direct in-place sector span writes
	DeferredWrites  int64 // journaled sub-sector spans
	RMWReads        int64 // sector fetches needed to merge sub-sector spans
	CacheHits       int64
	CacheMisses     int64
	Reads           int64
	BytesWritten    int64
	BytesRead       int64
	DeferredReplays int64 // applied during crash recovery
}

// Store is a single-disk object store. All methods are safe for
// concurrent use.
type Store struct {
	mu   sync.Mutex
	disk *simdisk.Disk
	cfg  Config
	kv   *kvstore.Store

	objects     map[string]objectInfo
	frontier    int64 // next free data-area sector
	dataStart   int64 // first data-area sector
	cache       *sectorCache
	pendingDels [][]byte // applied deferred-record keys awaiting cleanup
	stats       Stats
}

// Key namespaces inside the metadata store. Object names must not contain
// 0x00 or 0x01 bytes.
const (
	nsObject = "O/"
	nsAttr   = "A/"
	nsOmap   = "M/"
	nsDefer  = "D/"
)

func omapKey(obj string, key []byte) []byte {
	k := make([]byte, 0, len(nsOmap)+len(obj)+1+len(key))
	k = append(k, nsOmap...)
	k = append(k, obj...)
	k = append(k, 0)
	k = append(k, key...)
	return k
}

func attrKey(obj, name string) []byte {
	return []byte(nsAttr + obj + "\x00" + name)
}

func deferKey(seq uint64) []byte {
	k := make([]byte, len(nsDefer)+8)
	copy(k, nsDefer)
	binary.BigEndian.PutUint64(k[len(nsDefer):], seq)
	return k
}

// Open formats or recovers a store occupying the whole disk. The metadata
// partition sits at the front; the data area fills the rest. Recovery
// replays the KV journal (inside kvstore.Open) and reapplies any deferred
// sub-sector writes that committed but may not have reached the data area.
func Open(at vtime.Time, disk *simdisk.Disk, cfg Config) (*Store, vtime.Time, error) {
	cfg = cfg.withDefaults()
	kvSectors := cfg.KVBytes / simdisk.SectorSize
	if kvSectors+16 > disk.Sectors() {
		return nil, at, fmt.Errorf("blobstore: disk %s too small (%d sectors) for KV partition", disk.Name(), disk.Sectors())
	}
	part := simdisk.NewPartition(disk, 0, kvSectors)
	kv, end, err := kvstore.Open(at, part, cfg.KV)
	if err != nil {
		return nil, at, err
	}
	s := &Store{
		disk:      disk,
		cfg:       cfg,
		kv:        kv,
		objects:   make(map[string]objectInfo),
		dataStart: kvSectors,
		frontier:  kvSectors,
		cache:     newSectorCache(cfg.CacheSectors),
	}

	// Rebuild the object table and allocator frontier.
	objs, end, err := kv.Scan(end, []byte(nsObject), []byte(nsObject+"\xff"), 0)
	if err != nil {
		return nil, at, err
	}
	for _, kvp := range objs {
		oi, err := unmarshalObjectInfo(kvp.Value)
		if err != nil {
			return nil, at, err
		}
		name := string(kvp.Key[len(nsObject):])
		s.objects[name] = oi
		if top := oi.baseSector + oi.capBytes/simdisk.SectorSize; top > s.frontier {
			s.frontier = top
		}
	}

	// Replay deferred sub-sector writes in commit order (idempotent).
	defs, end, err := kv.Scan(end, []byte(nsDefer), []byte(nsDefer+"\xff"), 0)
	if err != nil {
		return nil, at, err
	}
	if len(defs) > 0 {
		var cleanup kvstore.Batch
		for _, d := range defs {
			if len(d.Value) < 8 {
				return nil, at, fmt.Errorf("blobstore: corrupt deferred record")
			}
			off := int64(binary.LittleEndian.Uint64(d.Value[:8]))
			payload := d.Value[8:]
			e, err := disk.WriteAt(end, payload, off)
			if err != nil {
				return nil, at, err
			}
			if e > end {
				end = e
			}
			s.stats.DeferredReplays++
			cleanup.Delete(d.Key)
		}
		if end, err = kv.Apply(end, &cleanup); err != nil {
			return nil, at, err
		}
	}
	return s, end, nil
}

// Disk returns the underlying device (for stats and fault injection).
func (s *Store) Disk() *simdisk.Disk { return s.disk }

// KV returns the embedded metadata store (for stats).
func (s *Store) KV() *kvstore.Store { return s.kv }

// Stats returns a snapshot of activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Exists reports whether the object is present.
func (s *Store) Exists(obj string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objects[obj]
	return ok
}

// List returns all object names, sorted.
func (s *Store) List() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.objects))
	for name := range s.objects {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Size returns the logical size of an object.
func (s *Store) Size(obj string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	oi, ok := s.objects[obj]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, obj)
	}
	return oi.sizeBytes, nil
}

// allocate reserves capacity for a new object.
func (s *Store) allocate(name string) (objectInfo, error) {
	capSectors := s.cfg.ObjectCapacity / simdisk.SectorSize
	if s.frontier+capSectors > s.disk.Sectors() {
		return objectInfo{}, fmt.Errorf("%w: frontier %d + %d > %d", ErrNoSpace, s.frontier, capSectors, s.disk.Sectors())
	}
	oi := objectInfo{baseSector: s.frontier, capBytes: s.cfg.ObjectCapacity}
	s.frontier += capSectors
	return oi, nil
}

// Apply atomically executes a transaction against obj, creating it if
// needed. The returned time is when the transaction is both durable and
// applied (data readable).
func (s *Store) Apply(at vtime.Time, obj string, txn *Txn) (vtime.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked(at, obj, txn)
}

func (s *Store) applyLocked(at vtime.Time, obj string, txn *Txn) (vtime.Time, error) {
	oi, exists := s.objects[obj]
	if !exists {
		var err error
		if oi, err = s.allocate(obj); err != nil {
			return at, err
		}
	}

	// Validate and split data writes into aligned and sub-sector spans.
	type alignedSpan struct {
		sector int64
		data   []byte
	}
	type partialSpan struct {
		diskOff int64
		data    []byte
	}
	var aligned []alignedSpan
	var partial []partialSpan
	base := oi.baseSector * simdisk.SectorSize
	for _, w := range txn.Writes {
		if w.Off < 0 || w.Off+int64(len(w.Data)) > oi.capBytes {
			return at, fmt.Errorf("%w: write [%d,+%d) cap %d", ErrBounds, w.Off, len(w.Data), oi.capBytes)
		}
		if len(w.Data) == 0 {
			continue
		}
		start, end := w.Off, w.Off+int64(len(w.Data))
		alignedStart := (start + simdisk.SectorSize - 1) / simdisk.SectorSize * simdisk.SectorSize
		alignedEnd := end / simdisk.SectorSize * simdisk.SectorSize
		if alignedStart >= alignedEnd {
			// Entirely within one or two sectors with no aligned middle.
			partial = append(partial, partialSpan{diskOff: base + start, data: w.Data})
		} else {
			if start < alignedStart {
				partial = append(partial, partialSpan{diskOff: base + start, data: w.Data[:alignedStart-start]})
			}
			aligned = append(aligned, alignedSpan{
				sector: oi.baseSector + alignedStart/simdisk.SectorSize,
				data:   w.Data[alignedStart-start : alignedEnd-start],
			})
			if end > alignedEnd {
				partial = append(partial, partialSpan{diskOff: base + alignedEnd, data: w.Data[alignedEnd-start:]})
			}
		}
		if end > oi.sizeBytes {
			oi.sizeBytes = end
		}
	}
	if txn.Truncate >= 0 {
		if txn.Truncate > oi.capBytes {
			return at, fmt.Errorf("%w: truncate to %d", ErrBounds, txn.Truncate)
		}
		oi.sizeBytes = txn.Truncate
	}
	oi.version++

	// Stage the commit batch: onode, attrs, omap, deferred payloads, and
	// cleanup of previously applied deferred records.
	var batch kvstore.Batch
	batch.Put([]byte(nsObject+obj), oi.marshal())
	for _, a := range txn.AttrSet {
		batch.Put(attrKey(obj, string(a.Key)), a.Value)
	}
	for _, m := range txn.OmapSet {
		batch.Put(omapKey(obj, m.Key), m.Value)
	}
	for _, k := range txn.OmapDel {
		batch.Delete(omapKey(obj, k))
	}
	deferBase := s.kv.Seq()
	for i, p := range partial {
		val := make([]byte, 8+len(p.data))
		binary.LittleEndian.PutUint64(val[:8], uint64(p.diskOff))
		copy(val[8:], p.data)
		// Transient: deferred payloads die in the memtable once applied.
		batch.PutTransient(deferKey(deferBase+uint64(i)), val)
	}
	for _, k := range s.pendingDels {
		batch.DeleteTransient(k)
	}

	// Aligned data goes straight to the data area, concurrently with the
	// journal commit (both must complete).
	dataEnd := at
	for _, a := range aligned {
		e, err := s.disk.WriteSectors(at, a.sector, int64(len(a.data))/simdisk.SectorSize, a.data)
		if err != nil {
			return at, err
		}
		dataEnd = vtime.Max(dataEnd, e)
		s.cache.invalidate(a.sector, int64(len(a.data))/simdisk.SectorSize)
		s.stats.AlignedWrites++
		s.stats.BytesWritten += int64(len(a.data))
	}

	// Durability point: the WAL append inside kv.Apply.
	commitEnd, err := s.kv.Apply(at, &batch)
	if err != nil {
		return at, err
	}
	s.pendingDels = s.pendingDels[:0]

	// Apply sub-sector spans via read-modify-write after commit.
	applyEnd := commitEnd
	for i, p := range partial {
		e, err := s.applyPartial(commitEnd, p.diskOff, p.data)
		if err != nil {
			return at, err
		}
		applyEnd = vtime.Max(applyEnd, e)
		s.stats.DeferredWrites++
		s.stats.BytesWritten += int64(len(p.data))
		s.pendingDels = append(s.pendingDels, deferKey(deferBase+uint64(i)))
	}

	s.objects[obj] = oi
	s.stats.Txns++
	return vtime.MaxAll(dataEnd, commitEnd, applyEnd), nil
}

// cacheAdmitLimit bounds which partial spans admit their sectors into the
// sector cache: small metadata-ish writes (IVs, tags) stay hot; boundary
// sectors of bulk writes would only flush the cache with data the OSD
// page cache could not keep resident either.
const cacheAdmitLimit = 1024

// applyPartial merges a sub-sector span into its covering sectors using
// the sector cache to avoid device reads for hot (e.g. IV) sectors.
func (s *Store) applyPartial(at vtime.Time, diskOff int64, data []byte) (vtime.Time, error) {
	first := diskOff / simdisk.SectorSize
	last := (diskOff + int64(len(data)) + simdisk.SectorSize - 1) / simdisk.SectorSize
	n := last - first
	buf := make([]byte, n*simdisk.SectorSize)
	readEnd := at
	for i := int64(0); i < n; i++ {
		sect := first + i
		dst := buf[i*simdisk.SectorSize : (i+1)*simdisk.SectorSize]
		if c, ok := s.cache.get(sect); ok {
			copy(dst, c)
			s.stats.CacheHits++
			continue
		}
		s.stats.CacheMisses++
		s.stats.RMWReads++
		e, err := s.disk.ReadSectors(at, sect, 1, dst)
		if err != nil {
			return at, err
		}
		readEnd = vtime.Max(readEnd, e)
	}
	copy(buf[diskOff-first*simdisk.SectorSize:], data)
	end, err := s.disk.WriteSectors(readEnd, first, n, buf)
	if err != nil {
		return at, err
	}
	if len(data) <= cacheAdmitLimit {
		for i := int64(0); i < n; i++ {
			s.cache.put(first+i, buf[i*simdisk.SectorSize:(i+1)*simdisk.SectorSize])
		}
	} else {
		s.cache.invalidate(first, n)
	}
	return end, nil
}

// Read fills p from the object's data at off. Reads beyond the logical
// size return zeros (sparse semantics); reads beyond capacity fail.
func (s *Store) Read(at vtime.Time, obj string, off int64, p []byte) (vtime.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	oi, ok := s.objects[obj]
	if !ok {
		return at, fmt.Errorf("%w: %q", ErrNotFound, obj)
	}
	if off < 0 || off+int64(len(p)) > oi.capBytes {
		return at, fmt.Errorf("%w: read [%d,+%d) cap %d", ErrBounds, off, len(p), oi.capBytes)
	}
	if len(p) == 0 {
		return at, nil
	}
	s.stats.Reads++
	s.stats.BytesRead += int64(len(p))

	base := oi.baseSector * simdisk.SectorSize
	start, end := off, off+int64(len(p))
	first := start / simdisk.SectorSize
	last := (end + simdisk.SectorSize - 1) / simdisk.SectorSize

	// Serve fully from the sector cache when possible (hot IV sectors),
	// otherwise issue one covering device read.
	allCached := true
	for sec := first; sec < last; sec++ {
		if _, ok := s.cache.get(oi.baseSector + sec); !ok {
			allCached = false
			break
		}
	}
	if allCached {
		for sec := first; sec < last; sec++ {
			c, _ := s.cache.get(oi.baseSector + sec)
			lo := sec * simdisk.SectorSize
			oStart, oEnd := lo, lo+simdisk.SectorSize
			if oStart < start {
				oStart = start
			}
			if oEnd > end {
				oEnd = end
			}
			copy(p[oStart-start:oEnd-start], c[oStart-lo:oEnd-lo])
		}
		s.stats.CacheHits += last - first
		return at, nil
	}
	return s.disk.ReadAt(at, p, base+off)
}

// GetAttr returns an object attribute.
func (s *Store) GetAttr(at vtime.Time, obj, name string) ([]byte, bool, vtime.Time, error) {
	s.mu.Lock()
	exists := false
	if _, ok := s.objects[obj]; ok {
		exists = true
	}
	s.mu.Unlock()
	if !exists {
		return nil, false, at, fmt.Errorf("%w: %q", ErrNotFound, obj)
	}
	return s.kv.Get(at, attrKey(obj, name))
}

// OmapGet returns the OMAP value for one key.
func (s *Store) OmapGet(at vtime.Time, obj string, key []byte) ([]byte, bool, vtime.Time, error) {
	return s.kv.Get(at, omapKey(obj, key))
}

// OmapScan returns up to limit OMAP pairs with lo <= key < hi (nil hi
// scans to the end of the object's OMAP). Keys are returned without the
// object prefix.
func (s *Store) OmapScan(at vtime.Time, obj string, lo, hi []byte, limit int) ([]KVPair, vtime.Time, error) {
	lok := omapKey(obj, lo)
	var hik []byte
	if hi == nil {
		hik = append([]byte(nsOmap+obj), 1)
	} else {
		hik = omapKey(obj, hi)
	}
	kvs, end, err := s.kv.Scan(at, lok, hik, limit)
	if err != nil {
		return nil, end, err
	}
	out := make([]KVPair, len(kvs))
	prefix := len(nsOmap) + len(obj) + 1
	for i, kv := range kvs {
		out[i] = KVPair{Key: kv.Key[prefix:], Value: kv.Value}
	}
	return out, end, nil
}

// Delete removes an object, its attributes and OMAP entries. The data
// area space is not reclaimed (append-only allocator; see kvstore notes).
func (s *Store) Delete(at vtime.Time, obj string) (vtime.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[obj]; !ok {
		return at, fmt.Errorf("%w: %q", ErrNotFound, obj)
	}
	var batch kvstore.Batch
	batch.Delete([]byte(nsObject + obj))
	end, err := s.kv.Apply(at, &batch)
	if err != nil {
		return at, err
	}
	if _, end2, err := s.kv.DeleteRange(end, []byte(nsAttr+obj+"\x00"), append([]byte(nsAttr+obj), 1)); err != nil {
		return at, err
	} else {
		end = end2
	}
	if _, end2, err := s.kv.DeleteRange(end, []byte(nsOmap+obj+"\x00"), append([]byte(nsOmap+obj), 1)); err != nil {
		return at, err
	} else {
		end = end2
	}
	delete(s.objects, obj)
	return end, nil
}

// Clone copies src to a fresh object dst: full data copy (the
// object-granularity copy-on-write Ceph performs for snapshots) plus
// attributes and OMAP entries.
func (s *Store) Clone(at vtime.Time, src, dst string) (vtime.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	soi, ok := s.objects[src]
	if !ok {
		return at, fmt.Errorf("%w: %q", ErrNotFound, src)
	}
	if _, ok := s.objects[dst]; ok {
		return at, fmt.Errorf("%w: %q", ErrExists, dst)
	}
	doi, err := s.allocate(dst)
	if err != nil {
		return at, err
	}
	doi.sizeBytes = soi.sizeBytes
	doi.version = 1

	// Bulk data copy of the written prefix, sector-rounded.
	end := at
	if soi.sizeBytes > 0 {
		sectors := (soi.sizeBytes + simdisk.SectorSize - 1) / simdisk.SectorSize
		buf := make([]byte, sectors*simdisk.SectorSize)
		e, err := s.disk.ReadSectors(at, soi.baseSector, sectors, buf)
		if err != nil {
			return at, err
		}
		// Overlay any cached (freshly merged) sectors.
		for i := int64(0); i < sectors; i++ {
			if c, ok := s.cache.get(soi.baseSector + i); ok {
				copy(buf[i*simdisk.SectorSize:(i+1)*simdisk.SectorSize], c)
			}
		}
		if e, err = s.disk.WriteSectors(e, doi.baseSector, sectors, buf); err != nil {
			return at, err
		}
		end = e
	}

	var batch kvstore.Batch
	batch.Put([]byte(nsObject+dst), doi.marshal())
	// Copy attrs and omap.
	attrs, end, err := s.kv.Scan(end, []byte(nsAttr+src+"\x00"), append([]byte(nsAttr+src), 1), 0)
	if err != nil {
		return at, err
	}
	for _, a := range attrs {
		name := a.Key[len(nsAttr)+len(src)+1:]
		batch.Put(attrKey(dst, string(name)), a.Value)
	}
	omap, end, err := s.kv.Scan(end, []byte(nsOmap+src+"\x00"), append([]byte(nsOmap+src), 1), 0)
	if err != nil {
		return at, err
	}
	prefix := len(nsOmap) + len(src) + 1
	for _, m := range omap {
		batch.Put(omapKey(dst, m.Key[prefix:]), m.Value)
	}
	end, err = s.kv.Apply(end, &batch)
	if err != nil {
		return at, err
	}
	s.objects[dst] = doi
	return end, nil
}
