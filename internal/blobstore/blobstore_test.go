package blobstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/simdisk"
)

func testStore(t *testing.T) (*Store, *simdisk.Disk) {
	t.Helper()
	d := simdisk.New("osd0", 64<<20/simdisk.SectorSize, simdisk.DefaultCostModel()) // 64 MiB
	cfg := Config{
		ObjectCapacity: 1 << 20, // 1 MiB objects for tests
		KVBytes:        16 << 20,
		CacheSectors:   256,
	}
	cfg.KV.MemtableBytes = 64 << 10
	cfg.KV.WALBytes = 1 << 20
	s, _, err := Open(0, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, d
}

func writeTxn(t *testing.T, s *Store, obj string, off int64, data []byte) {
	t.Helper()
	txn := NewTxn()
	txn.Writes = append(txn.Writes, DataWrite{Off: off, Data: data})
	if _, err := s.Apply(0, obj, txn); err != nil {
		t.Fatal(err)
	}
}

func readObj(t *testing.T, s *Store, obj string, off int64, n int) []byte {
	t.Helper()
	p := make([]byte, n)
	if _, err := s.Read(0, obj, off, p); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestWriteReadAligned(t *testing.T) {
	s, _ := testStore(t)
	data := bytes.Repeat([]byte{0x42}, 3*simdisk.SectorSize)
	writeTxn(t, s, "obj1", 0, data)
	if got := readObj(t, s, "obj1", 0, len(data)); !bytes.Equal(got, data) {
		t.Fatal("aligned round trip failed")
	}
	if sz, _ := s.Size("obj1"); sz != int64(len(data)) {
		t.Fatalf("size = %d", sz)
	}
}

func TestWriteReadSubSector(t *testing.T) {
	s, _ := testStore(t)
	// First lay down a background pattern.
	bg := bytes.Repeat([]byte{0xAA}, 2*simdisk.SectorSize)
	writeTxn(t, s, "obj", 0, bg)
	// Then a 16-byte write in the middle of sector 0 (an IV-style write).
	iv := bytes.Repeat([]byte{0x17}, 16)
	writeTxn(t, s, "obj", 100, iv)
	got := readObj(t, s, "obj", 0, 2*simdisk.SectorSize)
	want := append([]byte(nil), bg...)
	copy(want[100:], iv)
	if !bytes.Equal(got, want) {
		t.Fatal("sub-sector merge corrupted neighbors")
	}
	st := s.Stats()
	if st.DeferredWrites == 0 {
		t.Fatal("sub-sector write should be journaled")
	}
}

func TestWriteSpanningMixed(t *testing.T) {
	s, _ := testStore(t)
	// Write with misaligned head and tail plus aligned middle.
	data := make([]byte, 3*simdisk.SectorSize)
	for i := range data {
		data[i] = byte(i % 251)
	}
	writeTxn(t, s, "obj", 1000, data)
	if got := readObj(t, s, "obj", 1000, len(data)); !bytes.Equal(got, data) {
		t.Fatal("mixed write round trip failed")
	}
	st := s.Stats()
	if st.AlignedWrites == 0 || st.DeferredWrites == 0 {
		t.Fatalf("expected both aligned and deferred spans: %+v", st)
	}
}

func TestSparseReadReturnsZeros(t *testing.T) {
	s, _ := testStore(t)
	writeTxn(t, s, "obj", 8192, []byte("data"))
	got := readObj(t, s, "obj", 0, 16)
	if !bytes.Equal(got, make([]byte, 16)) {
		t.Fatal("unwritten range should read zero")
	}
}

func TestReadBounds(t *testing.T) {
	s, _ := testStore(t)
	writeTxn(t, s, "obj", 0, []byte("x"))
	p := make([]byte, 10)
	if _, err := s.Read(0, "obj", 1<<20-5, p); !errors.Is(err, ErrBounds) {
		t.Fatalf("got %v", err)
	}
	if _, err := s.Read(0, "missing", 0, p); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestWriteBounds(t *testing.T) {
	s, _ := testStore(t)
	txn := NewTxn()
	txn.Writes = []DataWrite{{Off: 1<<20 - 2, Data: []byte("toolong")}}
	if _, err := s.Apply(0, "obj", txn); !errors.Is(err, ErrBounds) {
		t.Fatalf("got %v", err)
	}
}

func TestTruncate(t *testing.T) {
	s, _ := testStore(t)
	writeTxn(t, s, "obj", 0, bytes.Repeat([]byte{1}, 1000))
	txn := NewTxn()
	txn.Truncate = 10
	if _, err := s.Apply(0, "obj", txn); err != nil {
		t.Fatal(err)
	}
	if sz, _ := s.Size("obj"); sz != 10 {
		t.Fatalf("size = %d", sz)
	}
}

func TestOmapSetGetScan(t *testing.T) {
	s, _ := testStore(t)
	txn := NewTxn()
	for i := 0; i < 20; i++ {
		txn.OmapSet = append(txn.OmapSet, KVPair{
			Key:   []byte(fmt.Sprintf("iv%04d", i)),
			Value: []byte(fmt.Sprintf("value%d", i)),
		})
	}
	if _, err := s.Apply(0, "obj", txn); err != nil {
		t.Fatal(err)
	}
	v, ok, _, err := s.OmapGet(0, "obj", []byte("iv0007"))
	if err != nil || !ok || string(v) != "value7" {
		t.Fatalf("omap get: %q %v %v", v, ok, err)
	}
	kvs, _, err := s.OmapScan(0, "obj", []byte("iv0005"), []byte("iv0015"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 10 {
		t.Fatalf("scan returned %d", len(kvs))
	}
	if string(kvs[0].Key) != "iv0005" {
		t.Fatalf("first key %q (prefix not stripped?)", kvs[0].Key)
	}
	// Full scan with nil hi.
	kvs, _, err = s.OmapScan(0, "obj", nil, nil, 0)
	if err != nil || len(kvs) != 20 {
		t.Fatalf("full scan: %d %v", len(kvs), err)
	}
	// Delete.
	txn2 := NewTxn()
	txn2.OmapDel = [][]byte{[]byte("iv0007")}
	if _, err := s.Apply(0, "obj", txn2); err != nil {
		t.Fatal(err)
	}
	if _, ok, _, _ := s.OmapGet(0, "obj", []byte("iv0007")); ok {
		t.Fatal("omap delete failed")
	}
}

func TestOmapIsolationBetweenObjects(t *testing.T) {
	s, _ := testStore(t)
	for _, obj := range []string{"a", "ab", "b"} {
		txn := NewTxn()
		txn.OmapSet = []KVPair{{Key: []byte("k"), Value: []byte(obj)}}
		if _, err := s.Apply(0, obj, txn); err != nil {
			t.Fatal(err)
		}
	}
	// "a" must not see "ab"'s entries even though "ab" has "a" as prefix.
	kvs, _, err := s.OmapScan(0, "a", nil, nil, 0)
	if err != nil || len(kvs) != 1 || string(kvs[0].Value) != "a" {
		t.Fatalf("isolation broken: %v %v", kvs, err)
	}
}

func TestAttrs(t *testing.T) {
	s, _ := testStore(t)
	txn := NewTxn()
	txn.AttrSet = []KVPair{{Key: []byte("snapset"), Value: []byte("payload")}}
	if _, err := s.Apply(0, "obj", txn); err != nil {
		t.Fatal(err)
	}
	v, ok, _, err := s.GetAttr(0, "obj", "snapset")
	if err != nil || !ok || string(v) != "payload" {
		t.Fatalf("attr: %q %v %v", v, ok, err)
	}
	if _, _, _, err := s.GetAttr(0, "missing", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestDeleteObject(t *testing.T) {
	s, _ := testStore(t)
	txn := NewTxn()
	txn.Writes = []DataWrite{{Off: 0, Data: []byte("data")}}
	txn.OmapSet = []KVPair{{Key: []byte("k"), Value: []byte("v")}}
	txn.AttrSet = []KVPair{{Key: []byte("a"), Value: []byte("v")}}
	if _, err := s.Apply(0, "obj", txn); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Delete(0, "obj"); err != nil {
		t.Fatal(err)
	}
	if s.Exists("obj") {
		t.Fatal("object still exists")
	}
	if _, err := s.Delete(0, "obj"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
	// Writing again recreates it fresh, with no stale omap.
	writeTxn(t, s, "obj", 0, []byte("new"))
	kvs, _, err := s.OmapScan(0, "obj", nil, nil, 0)
	if err != nil || len(kvs) != 0 {
		t.Fatalf("stale omap after recreate: %v %v", kvs, err)
	}
}

func TestClone(t *testing.T) {
	s, _ := testStore(t)
	data := bytes.Repeat([]byte{7}, 10000)
	writeTxn(t, s, "head", 0, data)
	txn := NewTxn()
	txn.OmapSet = []KVPair{{Key: []byte("iv0"), Value: []byte("ivdata")}}
	txn.AttrSet = []KVPair{{Key: []byte("meta"), Value: []byte("m")}}
	if _, err := s.Apply(0, "head", txn); err != nil {
		t.Fatal(err)
	}

	if _, err := s.Clone(0, "head", "snap.1"); err != nil {
		t.Fatal(err)
	}
	// Mutate the head; the clone must be unaffected.
	writeTxn(t, s, "head", 0, bytes.Repeat([]byte{9}, 100))

	if got := readObj(t, s, "snap.1", 0, 10000); !bytes.Equal(got, data) {
		t.Fatal("clone data diverged")
	}
	v, ok, _, _ := s.OmapGet(0, "snap.1", []byte("iv0"))
	if !ok || string(v) != "ivdata" {
		t.Fatal("clone omap missing")
	}
	v, ok, _, _ = s.GetAttr(0, "snap.1", "meta")
	if !ok || string(v) != "m" {
		t.Fatal("clone attr missing")
	}
	// Clone onto an existing name fails.
	if _, err := s.Clone(0, "head", "snap.1"); !errors.Is(err, ErrExists) {
		t.Fatalf("got %v", err)
	}
	if _, err := s.Clone(0, "missing", "x"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestTxnAtomicDataPlusOmap(t *testing.T) {
	// The §3.1 consistency requirement: data and its IV commit together.
	s, _ := testStore(t)
	txn := NewTxn()
	txn.Writes = []DataWrite{{Off: 0, Data: bytes.Repeat([]byte{1}, simdisk.SectorSize)}}
	txn.OmapSet = []KVPair{{Key: []byte("iv"), Value: []byte("0123456789abcdef")}}
	if _, err := s.Apply(0, "obj", txn); err != nil {
		t.Fatal(err)
	}
	_, ok, _, _ := s.OmapGet(0, "obj", []byte("iv"))
	if !ok {
		t.Fatal("omap lost")
	}
}

func TestRecoveryAfterCleanReopen(t *testing.T) {
	d := simdisk.New("osd0", 64<<20/simdisk.SectorSize, simdisk.DefaultCostModel())
	cfg := Config{ObjectCapacity: 1 << 20, KVBytes: 16 << 20}
	cfg.KV.MemtableBytes = 64 << 10
	s, _, err := Open(0, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{3}, 5000)
	writeTxn(t, s, "persist", 123, data)
	txn := NewTxn()
	txn.OmapSet = []KVPair{{Key: []byte("k"), Value: []byte("v")}}
	if _, err := s.Apply(0, "persist", txn); err != nil {
		t.Fatal(err)
	}

	s2, _, err := Open(0, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5000)
	if _, err := s2.Read(0, "persist", 123, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost across reopen")
	}
	if _, ok, _, _ := s2.OmapGet(0, "persist", []byte("k")); !ok {
		t.Fatal("omap lost across reopen")
	}
	// New objects allocate beyond existing ones.
	wtxn := NewTxn()
	wtxn.Writes = []DataWrite{{Off: 0, Data: []byte("fresh")}}
	if _, err := s2.Apply(0, "fresh", wtxn); err != nil {
		t.Fatal(err)
	}
	if got := readObj(t, s2, "persist", 123, 5000); !bytes.Equal(got, data) {
		t.Fatal("allocation overlap corrupted old object")
	}
}

// Crash consistency: a power cut at every possible write-op boundary must
// leave each committed transaction fully visible and each uncommitted
// transaction fully invisible — never a data write without its IV.
func TestCrashConsistencySweep(t *testing.T) {
	const sectorData = 256
	for cut := int64(1); cut < 40; cut++ {
		d := simdisk.New("osd0", 64<<20/simdisk.SectorSize, simdisk.DefaultCostModel())
		cfg := Config{ObjectCapacity: 1 << 20, KVBytes: 16 << 20}
		cfg.KV.MemtableBytes = 64 << 10
		s, _, err := Open(0, d, cfg)
		if err != nil {
			t.Fatal(err)
		}

		// Committed transactions, before the cut is armed.
		committed := 0
		for i := 0; i < 3; i++ {
			txn := NewTxn()
			txn.Writes = []DataWrite{{Off: int64(i) * simdisk.SectorSize, Data: bytes.Repeat([]byte{byte(i + 1)}, sectorData)}}
			txn.OmapSet = []KVPair{{Key: []byte(fmt.Sprintf("iv%d", i)), Value: bytes.Repeat([]byte{byte(i + 1)}, 16)}}
			if _, err := s.Apply(0, "obj", txn); err != nil {
				t.Fatal(err)
			}
			committed++
		}

		d.PowerCutAfter(cut)
		// Attempt more transactions until the power cut bites.
		attempted := committed
		for i := 3; i < 10; i++ {
			txn := NewTxn()
			txn.Writes = []DataWrite{{Off: int64(i) * simdisk.SectorSize, Data: bytes.Repeat([]byte{byte(i + 1)}, sectorData)}}
			txn.OmapSet = []KVPair{{Key: []byte(fmt.Sprintf("iv%d", i)), Value: bytes.Repeat([]byte{byte(i + 1)}, 16)}}
			if _, err := s.Apply(0, "obj", txn); err != nil {
				break
			}
			attempted++
		}
		d.PowerRestore()

		s2, _, err := Open(0, d, cfg)
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		// Every transaction whose IV is visible must have its data, and
		// vice versa for the sub-sector span (the journaled part).
		for i := 0; i < 10; i++ {
			_, ok, _, err := s2.OmapGet(0, "obj", []byte(fmt.Sprintf("iv%d", i)))
			if err != nil {
				t.Fatal(err)
			}
			if i < committed && !ok {
				t.Fatalf("cut=%d: committed iv%d lost", cut, i)
			}
			if ok {
				got := make([]byte, sectorData)
				if _, err := s2.Read(0, "obj", int64(i)*simdisk.SectorSize, got); err != nil {
					t.Fatalf("cut=%d: %v", cut, err)
				}
				if !bytes.Equal(got, bytes.Repeat([]byte{byte(i + 1)}, sectorData)) {
					t.Fatalf("cut=%d: iv%d present but data torn", cut, i)
				}
			}
		}
	}
}

func TestOutOfSpace(t *testing.T) {
	d := simdisk.New("tiny", (8<<20)/simdisk.SectorSize, simdisk.DefaultCostModel())
	cfg := Config{ObjectCapacity: 1 << 20, KVBytes: 4 << 20}
	cfg.KV.MemtableBytes = 64 << 10
	cfg.KV.WALBytes = 1 << 20
	s, _, err := Open(0, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 20; i++ {
		txn := NewTxn()
		txn.Writes = []DataWrite{{Off: 0, Data: []byte("x")}}
		if _, lastErr = s.Apply(0, fmt.Sprintf("obj%d", i), txn); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrNoSpace) {
		t.Fatalf("got %v", lastErr)
	}
}

func TestSectorCacheLRU(t *testing.T) {
	c := newSectorCache(2)
	sec := func(b byte) []byte { return bytes.Repeat([]byte{b}, simdisk.SectorSize) }
	c.put(1, sec(1))
	c.put(2, sec(2))
	if _, ok := c.get(1); !ok {
		t.Fatal("miss on 1")
	}
	c.put(3, sec(3)) // evicts 2 (LRU)
	if _, ok := c.get(2); ok {
		t.Fatal("2 should be evicted")
	}
	if _, ok := c.get(1); !ok {
		t.Fatal("1 should survive")
	}
	if v, ok := c.get(3); !ok || v[0] != 3 {
		t.Fatal("3 wrong")
	}
	c.invalidate(1, 1)
	if _, ok := c.get(1); ok {
		t.Fatal("invalidate failed")
	}
	if c.len() != 1 {
		t.Fatalf("len = %d", c.len())
	}
	// Refresh path.
	c.put(3, sec(9))
	if v, _ := c.get(3); v[0] != 9 {
		t.Fatal("refresh failed")
	}
}

func TestCacheServesHotIVSector(t *testing.T) {
	s, _ := testStore(t)
	// Simulate the ObjectEnd pattern: repeated 16-byte writes into the
	// same tail sector. After the first, RMW reads must be cache hits.
	for i := 0; i < 10; i++ {
		writeTxn(t, s, "obj", int64(512<<10)+int64(i)*16, bytes.Repeat([]byte{byte(i)}, 16))
	}
	st := s.Stats()
	if st.RMWReads > 1 {
		t.Fatalf("expected at most one cold RMW read, got %d", st.RMWReads)
	}
	if st.CacheHits < 9 {
		t.Fatalf("expected hot hits, got %+v", st)
	}
}

// Randomized model check of object data semantics across mixed write
// shapes and reopen cycles.
func TestRandomizedDataModel(t *testing.T) {
	d := simdisk.New("osd0", 128<<20/simdisk.SectorSize, simdisk.DefaultCostModel())
	cfg := Config{ObjectCapacity: 256 << 10, KVBytes: 32 << 20}
	cfg.KV.MemtableBytes = 256 << 10
	s, _, err := Open(0, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const objCap = 256 << 10
	models := map[string][]byte{}
	rng := rand.New(rand.NewSource(99))
	objName := func() string { return fmt.Sprintf("o%d", rng.Intn(4)) }

	for step := 0; step < 600; step++ {
		switch r := rng.Intn(10); {
		case r < 6:
			obj := objName()
			off := rng.Int63n(objCap - 1)
			n := rng.Intn(20000) + 1
			if off+int64(n) > objCap {
				n = int(objCap - off)
			}
			data := make([]byte, n)
			rng.Read(data)
			txn := NewTxn()
			txn.Writes = []DataWrite{{Off: off, Data: data}}
			if _, err := s.Apply(0, obj, txn); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			m := models[obj]
			if m == nil {
				m = make([]byte, objCap)
				models[obj] = m
			}
			copy(m[off:], data)
		case r < 9:
			obj := objName()
			m, ok := models[obj]
			if !ok {
				continue
			}
			off := rng.Int63n(objCap - 1)
			n := rng.Intn(20000) + 1
			if off+int64(n) > objCap {
				n = int(objCap - off)
			}
			got := make([]byte, n)
			if _, err := s.Read(0, obj, off, got); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if !bytes.Equal(got, m[off:off+int64(n)]) {
				t.Fatalf("step %d: read mismatch obj=%s off=%d n=%d", step, obj, off, n)
			}
		default:
			if s, _, err = Open(0, d, cfg); err != nil {
				t.Fatalf("step %d: reopen: %v", step, err)
			}
		}
	}
}
