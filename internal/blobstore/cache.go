package blobstore

import "repro/internal/simdisk"

// sectorCache is a small LRU cache of sector contents keyed by absolute
// sector number. It stands in for the OSD page cache: the sectors that
// matter are the hot metadata sectors (IV tails, unaligned boundaries)
// that sub-sector writes keep touching.
type sectorCache struct {
	cap   int
	items map[int64]*cacheNode
	head  *cacheNode // most recent
	tail  *cacheNode // least recent
}

type cacheNode struct {
	sector     int64
	data       []byte
	prev, next *cacheNode
}

func newSectorCache(capacity int) *sectorCache {
	if capacity < 1 {
		capacity = 1
	}
	return &sectorCache{cap: capacity, items: make(map[int64]*cacheNode, capacity)}
}

func (c *sectorCache) unlink(n *cacheNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *sectorCache) pushFront(n *cacheNode) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// get returns the cached contents of sector, refreshing its recency.
func (c *sectorCache) get(sector int64) ([]byte, bool) {
	n, ok := c.items[sector]
	if !ok {
		return nil, false
	}
	if c.head != n {
		c.unlink(n)
		c.pushFront(n)
	}
	return n.data, true
}

// put inserts or refreshes sector contents (copied), evicting the least
// recently used entry when full.
func (c *sectorCache) put(sector int64, data []byte) {
	if n, ok := c.items[sector]; ok {
		copy(n.data, data)
		if c.head != n {
			c.unlink(n)
			c.pushFront(n)
		}
		return
	}
	if len(c.items) >= c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.items, lru.sector)
	}
	n := &cacheNode{sector: sector, data: append(make([]byte, 0, simdisk.SectorSize), data...)}
	c.items[sector] = n
	c.pushFront(n)
}

// invalidate drops n sectors starting at sector.
func (c *sectorCache) invalidate(sector, n int64) {
	for i := int64(0); i < n; i++ {
		if node, ok := c.items[sector+i]; ok {
			c.unlink(node)
			delete(c.items, sector+i)
		}
	}
}

// len reports the number of cached sectors.
func (c *sectorCache) len() int { return len(c.items) }
