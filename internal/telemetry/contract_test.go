package telemetry_test

// The contract test: METRICS.md is the normative series list, and the
// default registry is the live one; each must cover the other. The
// blank repro import pulls in every instrumented package (rados, msgr,
// core, bufpool, keymgr, clone, fio) so all families are registered
// before the comparison.

import (
	"os"
	"regexp"
	"testing"

	_ "repro"
	"repro/internal/telemetry"
)

// tableRow matches the first cell of a METRICS.md table row holding a
// backticked series name.
var tableRow = regexp.MustCompile("(?m)^\\| `([a-z0-9_]+)` \\|")

func TestMetricsContract(t *testing.T) {
	doc, err := os.ReadFile("../../METRICS.md")
	if err != nil {
		t.Fatalf("read METRICS.md: %v", err)
	}
	documented := map[string]bool{}
	for _, m := range tableRow.FindAllStringSubmatch(string(doc), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no documented series parsed from METRICS.md")
	}

	registered := map[string]bool{}
	for _, name := range telemetry.Default.FamilyNames() {
		registered[name] = true
	}

	for name := range registered {
		if !documented[name] {
			t.Errorf("metric %q is registered but not documented in METRICS.md", name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("metric %q is documented in METRICS.md but not registered", name)
		}
	}
}
