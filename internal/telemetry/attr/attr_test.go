package attr

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestAttributionAllocBudget pins the recording path at zero
// allocations: attribution is always-on for 100% of traffic, so any
// alloc here is an alloc per op across the whole datapath. CI runs this
// test by name in the alloc-budget step.
func TestAttributionAllocBudget(t *testing.T) {
	if n := testing.AllocsPerRun(1000, func() {
		Observe(OpWrite, PhaseServe, 1000)
		Observe(OpRead, PhaseOpen, 500)
		ObserveOp(OpWrite, 2000)
	}); n != 0 {
		t.Fatalf("attribution recording allocated %.1f per run, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		PhaseOfHop("osd3:serve")
		PhaseOfHop("msgr:req")
	}); n != 0 {
		t.Fatalf("PhaseOfHop allocated %.1f per run, want 0", n)
	}
}

// TestObserveAndTable drives known observations through the recording
// path and checks they come back out of Table with shares sorted
// descending. Counts are checked as deltas: the package-level series
// are shared across the test binary.
func TestObserveAndTable(t *testing.T) {
	beforeServe := phases[OpWrite][PhaseServe].Snapshot().Count
	beforeOps := opTotal[OpWrite].Snapshot().Count

	for i := 0; i < 10; i++ {
		Observe(OpWrite, PhaseServe, 8*1e6) // 80 ms total
		Observe(OpWrite, PhaseSeal, 1*1e6)  // 10 ms total
		Observe(OpWrite, PhaseWire, 1*1e6)  // 10 ms total
		ObserveOp(OpWrite, 10*1e6)
	}

	if got := phases[OpWrite][PhaseServe].Snapshot().Count - beforeServe; got != 10 {
		t.Fatalf("serve phase recorded %d observations, want 10", got)
	}
	if got := opTotal[OpWrite].Snapshot().Count - beforeOps; got != 10 {
		t.Fatalf("op total recorded %d observations, want 10", got)
	}

	rep := Table()
	var wr *OpTable
	for i := range rep.Ops {
		if rep.Ops[i].Op == "write" {
			wr = &rep.Ops[i]
		}
	}
	if wr == nil {
		t.Fatalf("write class missing from report: %s", rep)
	}
	if len(wr.Phases) == 0 || wr.Phases[0].Phase != PhaseServe {
		t.Fatalf("dominant write phase is not serve: %s", rep)
	}
	for i := 1; i < len(wr.Phases); i++ {
		if wr.Phases[i].Share > wr.Phases[i-1].Share {
			t.Fatalf("phase rows not sorted by share desc: %s", rep)
		}
	}
	if !strings.Contains(rep.String(), "serve") || !strings.Contains(rep.String(), "#") {
		t.Fatalf("report rendering missing phase rows or share bars:\n%s", rep)
	}
}

// TestSetEnabled pins the A/B switch: disabled recording must not move
// any series, and out-of-range classes/phases are dropped silently.
func TestSetEnabled(t *testing.T) {
	before := phases[OpRead][PhaseDevice].Snapshot().Count
	SetEnabled(false)
	Observe(OpRead, PhaseDevice, 1000)
	ObserveOp(OpRead, 1000)
	SetEnabled(true)
	if got := phases[OpRead][PhaseDevice].Snapshot().Count; got != before {
		t.Fatalf("disabled Observe still recorded (%d -> %d)", before, got)
	}

	Observe(-1, PhaseDevice, 1000)
	Observe(NumOps, PhaseDevice, 1000)
	Observe(OpRead, Phase(-1), 1000)
	Observe(OpRead, NumPhases, 1000)
	ObserveOp(-1, 1000)
	ObserveOp(NumOps, 1000)
	if got := phases[OpRead][PhaseDevice].Snapshot().Count; got != before {
		t.Fatalf("out-of-range Observe recorded (%d -> %d)", before, got)
	}
}

func TestPhaseOfHop(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Phase
	}{
		{"osd0:serve", PhaseServe},
		{"osd12:serve", PhaseServe},
		{"osd0:replicate", PhaseReplicate},
		{"msgr:req", PhaseWire},
		{"msgr:resp", PhaseWire},
		{"marshal", PhaseMarshal},
		{"mystery", -1},
	} {
		if got := PhaseOfHop(tc.name); got != tc.want {
			t.Errorf("PhaseOfHop(%q) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// replicatedWriteSpan builds the canonical hop shape of a traced
// replicated write: request transit, primary serve, fan-out window with
// two replica serves nested inside (osd2 the straggler), reply transit.
func replicatedWriteSpan() telemetry.SpanRecord {
	rec := telemetry.SpanRecord{
		TraceID: 7, Op: "write", Target: "rbd/img/obj.3",
		Start: 0, End: 1000, Sampled: true,
	}
	hops := []telemetry.Hop{
		{Name: "msgr:req", Start: 0, End: 100},
		{Name: "osd0:serve", Start: 100, End: 300},
		// Harvest order interleaves under concurrency: children before
		// the replicate window they nest in.
		{Name: "osd2:serve", Start: 320, End: 880},
		{Name: "osd1:serve", Start: 310, End: 500},
		{Name: "osd0:replicate", Start: 300, End: 900},
		{Name: "msgr:resp", Start: 900, End: 1000},
	}
	for i, h := range hops {
		rec.Hops[i] = h
	}
	rec.NHops = len(hops)
	return rec
}

// TestAnalyzeSpan pins the critical-path analyzer: parent/child
// recovery from timestamps alone, straggler naming, dominant phase, and
// start-ordered rendering.
func TestAnalyzeSpan(t *testing.T) {
	cp := AnalyzeSpan(replicatedWriteSpan())

	if cp.Straggler != "osd2" {
		t.Fatalf("straggler = %q, want osd2\n%s", cp.Straggler, cp)
	}
	if cp.Dominant != PhaseReplicate {
		t.Fatalf("dominant = %v, want replicate\n%s", cp.Dominant, cp)
	}
	if cp.Total != 1000 {
		t.Fatalf("total = %v, want 1000", cp.Total)
	}

	// Steps come back in start order with children flagged.
	wantOrder := []string{"msgr:req", "osd0:serve", "osd0:replicate", "osd1:serve", "osd2:serve", "msgr:resp"}
	if len(cp.Steps) != len(wantOrder) {
		t.Fatalf("got %d steps, want %d\n%s", len(cp.Steps), len(wantOrder), cp)
	}
	for i, want := range wantOrder {
		if cp.Steps[i].Name != want {
			t.Fatalf("step %d = %s, want %s\n%s", i, cp.Steps[i].Name, want, cp)
		}
	}
	for _, st := range cp.Steps {
		wantChild := st.Name == "osd1:serve" || st.Name == "osd2:serve"
		if st.Child != wantChild {
			t.Errorf("step %s child=%v, want %v", st.Name, st.Child, wantChild)
		}
		wantCritical := !wantChild || st.Name == "osd2:serve"
		if st.Critical != wantCritical {
			t.Errorf("step %s critical=%v, want %v", st.Name, st.Critical, wantCritical)
		}
	}

	out := cp.String()
	if !strings.Contains(out, "straggler=osd2") || !strings.Contains(out, "<- straggler") {
		t.Errorf("rendering missing straggler markers:\n%s", out)
	}
	if !strings.Contains(out, "dominant=replicate") {
		t.Errorf("rendering missing dominant phase:\n%s", out)
	}
}

// TestAnalyzeSpanUnreplicated covers the read shape: no replicate
// window, no children, dominant is just the largest hop.
func TestAnalyzeSpanUnreplicated(t *testing.T) {
	rec := telemetry.SpanRecord{Op: "read", Target: "rbd/img/obj.0", Start: 0, End: 500}
	hops := []telemetry.Hop{
		{Name: "msgr:req", Start: 0, End: 50},
		{Name: "osd1:serve", Start: 50, End: 450},
		{Name: "msgr:resp", Start: 450, End: 500},
	}
	for i, h := range hops {
		rec.Hops[i] = h
	}
	rec.NHops = len(hops)

	cp := AnalyzeSpan(rec)
	if cp.Straggler != "" {
		t.Fatalf("unreplicated span named straggler %q", cp.Straggler)
	}
	if cp.Dominant != PhaseServe {
		t.Fatalf("dominant = %v, want serve", cp.Dominant)
	}
	for _, st := range cp.Steps {
		if st.Child || !st.Critical {
			t.Fatalf("unreplicated step %s child=%v critical=%v", st.Name, st.Child, st.Critical)
		}
	}

	// No hops at all: analyzer degrades to totals only.
	empty := AnalyzeSpan(telemetry.SpanRecord{Op: "read", Start: 0, End: 9})
	if len(empty.Steps) != 0 || empty.Dominant != -1 {
		t.Fatalf("hopless span produced steps: %+v", empty)
	}
}
