package attr

// critpath.go reduces a finished trace span to its critical path. A
// replicated write's hop list (harvested off the wire by the primary
// and merged client-side) is flat but structured by construction: the
// primary's serve hop starts before its replicate hop, and every
// replica serve hop nests inside the replicate window. The analyzer
// rebuilds that parent/child tree, names the straggler replica that
// bounded the fan-out, and reports the dominant phase — the "where did
// the time go" answer for one slow op.

import (
	"fmt"
	"strings"

	"repro/internal/telemetry"
	"repro/internal/vtime"
)

// Step is one hop of an analyzed span, annotated with its role.
type Step struct {
	Name      string
	Phase     Phase
	Start     vtime.Time
	End       vtime.Time
	Child     bool // replica serve nested inside the replicate window
	Critical  bool // on the critical path
	Straggler bool // the replica serve that bounded the replicate window
}

// Duration is the step's elapsed virtual time.
func (s Step) Duration() vtime.Duration { return s.End.Sub(s.Start) }

// osd returns the step's OSD name ("osd3" from "osd3:serve"), or "".
func (s Step) osd() string {
	if i := strings.IndexByte(s.Name, ':'); i > 0 {
		return s.Name[:i]
	}
	return ""
}

// CriticalPath is the analyzer's verdict on one span.
type CriticalPath struct {
	Op        string
	Target    string
	Total     vtime.Duration
	Steps     []Step // hop tree in start order, children after their parent
	Dominant  Phase  // phase with the largest share of the span's hop time
	Straggler string // straggler replica OSD ("" when not a replicated write)
}

// AnalyzeSpan rebuilds rec's hop tree and extracts the critical path.
// Hops arrive unordered (wire-harvest order interleaves under
// concurrency); structure is recovered from the timestamps.
func AnalyzeSpan(rec telemetry.SpanRecord) CriticalPath {
	cp := CriticalPath{Op: rec.Op, Target: rec.Target, Total: rec.Duration(), Dominant: -1}
	if rec.NHops == 0 {
		return cp
	}

	steps := make([]Step, 0, rec.NHops)
	repl := -1 // index of the replicate hop in steps
	for i := 0; i < rec.NHops; i++ {
		h := rec.Hops[i]
		st := Step{Name: h.Name, Phase: PhaseOfHop(h.Name), Start: h.Start, End: h.End}
		steps = append(steps, st)
		if st.Phase == PhaseReplicate {
			repl = len(steps) - 1
		}
	}

	// Classify serve hops against the replicate window: serves starting
	// inside it are the per-replica children; the one ending last is the
	// straggler that bounded the fan-out.
	straggler := -1
	if repl >= 0 {
		w := steps[repl]
		for i := range steps {
			if steps[i].Phase != PhaseServe || i == repl {
				continue
			}
			if steps[i].Start >= w.Start && steps[i].Start <= w.End {
				steps[i].Child = true
				if straggler < 0 || steps[i].End > steps[straggler].End {
					straggler = i
				}
			}
		}
		if straggler >= 0 {
			steps[straggler].Straggler = true
			cp.Straggler = steps[straggler].osd()
		}
	}

	// Dominant phase: largest total hop time per phase. Replica serves
	// are excluded — their time is already covered by the replicate
	// window they nest in.
	var perPhase [NumPhases]vtime.Duration
	for _, st := range steps {
		if st.Phase < 0 || st.Child {
			continue
		}
		perPhase[st.Phase] += st.Duration()
	}
	for p := Phase(0); p < NumPhases; p++ {
		if perPhase[p] > 0 && (cp.Dominant < 0 || perPhase[p] > perPhase[cp.Dominant]) {
			cp.Dominant = p
		}
	}

	// Critical path: every top-level hop plus, inside the replicate
	// window, only the straggler.
	for i := range steps {
		if !steps[i].Child || steps[i].Straggler {
			steps[i].Critical = true
		}
	}

	// Stable order: by start time, children after parents on ties.
	for i := 1; i < len(steps); i++ {
		for j := i; j > 0 && less(steps[j], steps[j-1]); j-- {
			steps[j], steps[j-1] = steps[j-1], steps[j]
		}
	}
	cp.Steps = steps
	return cp
}

func less(a, b Step) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.Child != b.Child {
		return !a.Child
	}
	return a.End < b.End
}

// String renders the hop tree with critical-path and straggler markers.
func (cp CriticalPath) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %v", cp.Op, cp.Target, cp.Total)
	if cp.Dominant >= 0 {
		fmt.Fprintf(&b, " dominant=%s", cp.Dominant)
	}
	if cp.Straggler != "" {
		fmt.Fprintf(&b, " straggler=%s", cp.Straggler)
	}
	b.WriteByte('\n')
	for _, st := range cp.Steps {
		indent := "  "
		if st.Child {
			indent = "      "
		}
		fmt.Fprintf(&b, "%s%-16s %v", indent, st.Name, st.Duration())
		switch {
		case st.Straggler:
			b.WriteString("  <- straggler")
		case st.Critical && st.Child:
			b.WriteString("  <- critical")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SlowOp pairs a retained slow-span record with its analysis.
type SlowOp struct {
	Record telemetry.SpanRecord
	Path   CriticalPath
}

// SlowOps returns the process tracer's retained slow spans, newest
// first, each with its critical path — the `rbdctl slow` surface.
func SlowOps() []SlowOp {
	recs := telemetry.Ops.Slow()
	out := make([]SlowOp, 0, len(recs))
	for _, r := range recs {
		out = append(out, SlowOp{Record: r, Path: AnalyzeSpan(r)})
	}
	return out
}
