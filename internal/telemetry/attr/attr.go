// Package attr is the tail-latency attribution plane on top of
// internal/telemetry: always-on per-phase vtime accounting for 100% of
// traffic (not the tracer's 1-in-N sample), plus the critical-path
// analyzer (critpath.go) that reduces a finished trace span to the
// chain of hops that actually bounded its latency.
//
// The phase model slices one op's wall time into the stages the paper's
// cost model charges: client queue/admission, marshal, wire transit,
// OSD serve, replicate fan-out, seal/open crypto, and device I/O. Each
// instrumented layer feeds its own phase at the point where the vtime
// is charged (OSD serve path, msgr transmit, core crypto charge,
// simdisk command), so the numbers come from the source of truth rather
// than from subtracting trace hops. Ops are bucketed into three classes
// (read/write/other) to keep series cardinality fixed.
//
// Recording is the hot path: one enabled check, two bounds checks and a
// histogram Observe — no locks, no allocation (TestAttributionAllocBudget
// pins AllocsPerRun==0, and the DatapathAttr gated benchmark locks in
// the on-vs-off overhead). All series are pre-resolved into arrays at
// package init; SetEnabled flips a single atomic for A/B measurement.
package attr

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/telemetry"
	"repro/internal/vtime"
)

// Phase enumerates the stages an op's virtual time is attributed to.
type Phase int

// Phases, in rough datapath order.
const (
	PhaseQueue     Phase = iota // admission delay: OSD CPU queue, pool backpressure
	PhaseMarshal                // request/reply codec work (vtime-free in the cost model)
	PhaseWire                   // msgr link transit, both directions
	PhaseServe                  // OSD serve: lock, execute, local commit
	PhaseReplicate              // primary-copy fan-out window (slowest replica bounds it)
	PhaseSeal                   // client-side seal crypto (writes)
	PhaseOpen                   // client-side open crypto (reads)
	PhaseDevice                 // simulated device command time
	NumPhases                   // count, not a phase
)

var phaseNames = [NumPhases]string{
	"queue", "marshal", "wire", "serve", "replicate", "seal", "open", "device",
}

// String implements fmt.Stringer (the `phase` label value).
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// Op classes. Three buckets, not the ten rados op kinds: attribution
// answers "where does a read/write spend its time", and the fixed set
// bounds series cardinality at NumOps*NumPhases.
const (
	OpRead = iota
	OpWrite
	OpOther
	NumOps
)

var opNames = [NumOps]string{"read", "write", "other"}

// OpName returns the class's `op` label value.
func OpName(op int) string {
	if op < 0 || op >= NumOps {
		return "other"
	}
	return opNames[op]
}

// Pre-resolved series: setup (label resolution, registration) happens
// once at package init so Observe is a pure array index + atomic adds.
var (
	enabled atomic.Bool
	opTotal [NumOps]*telemetry.Histogram
	phases  [NumOps][NumPhases]*telemetry.Histogram
)

func init() {
	tot := telemetry.NewHistogramVec("attr_op_vtime",
		"end-to-end op virtual time by attribution class (always-on, 100% of traffic)", "op")
	ph := telemetry.NewHistogramVec("attr_phase_vtime",
		"per-phase op virtual time by attribution class and datapath phase (always-on)", "op", "phase")
	for op := 0; op < NumOps; op++ {
		opTotal[op] = tot.With(opNames[op])
		for p := Phase(0); p < NumPhases; p++ {
			phases[op][p] = ph.With(opNames[op], p.String())
		}
	}
	enabled.Store(true)
}

// Enabled reports whether attribution recording is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns attribution recording on or off process-wide. Off is
// for A/B overhead measurement (the DatapathAttr benchmark); production
// posture is on — that is the point of "always-on".
func SetEnabled(on bool) { enabled.Store(on) }

// Observe attributes d of virtual time to one phase of one op class.
// Zero-alloc, lock-free; out-of-range classes/phases are dropped.
func Observe(op int, p Phase, d vtime.Duration) {
	if !enabled.Load() {
		return
	}
	if op < 0 || op >= NumOps || p < 0 || p >= NumPhases {
		return
	}
	phases[op][p].Observe(d)
}

// ObserveOp records one op's end-to-end virtual time for its class.
func ObserveOp(op int, d vtime.Duration) {
	if !enabled.Load() {
		return
	}
	if op < 0 || op >= NumOps {
		return
	}
	opTotal[op].Observe(d)
}

// PhaseOfHop maps a trace-hop name ("osd3:serve", "msgr:req") to the
// phase it spends time in, or -1 for unrecognized names.
func PhaseOfHop(name string) Phase {
	switch {
	case strings.HasSuffix(name, ":serve"):
		return PhaseServe
	case strings.HasSuffix(name, ":replicate"):
		return PhaseReplicate
	case name == "msgr:req" || name == "msgr:resp":
		return PhaseWire
	case name == "marshal":
		return PhaseMarshal
	}
	return -1
}

// PhaseRow is one phase's aggregate within an op class.
type PhaseRow struct {
	Phase Phase
	Count int64
	Sum   vtime.Duration
	P50   vtime.Duration
	P99   vtime.Duration
	Share float64 // fraction of the class's summed phase vtime
}

// OpTable is one op class's attribution table.
type OpTable struct {
	Op     string
	Count  int64          // ops observed end-to-end
	Total  vtime.Duration // summed end-to-end vtime
	P50    vtime.Duration // end-to-end quantiles
	P99    vtime.Duration
	Phases []PhaseRow // phases with at least one observation, by share desc
}

// Report is a point-in-time attribution snapshot across op classes.
type Report struct {
	Ops []OpTable // classes with traffic, in class order
}

// Table snapshots the always-on attribution series into a report.
func Table() Report {
	var rep Report
	for op := 0; op < NumOps; op++ {
		ts := opTotal[op].Snapshot()
		var rows []PhaseRow
		var phaseSum vtime.Duration
		for p := Phase(0); p < NumPhases; p++ {
			s := phases[op][p].Snapshot()
			if s.Count == 0 {
				continue
			}
			rows = append(rows, PhaseRow{
				Phase: p,
				Count: s.Count,
				Sum:   s.Sum,
				P50:   s.Quantile(0.50),
				P99:   s.Quantile(0.99),
			})
			phaseSum += s.Sum
		}
		if ts.Count == 0 && len(rows) == 0 {
			continue
		}
		for i := range rows {
			if phaseSum > 0 {
				rows[i].Share = float64(rows[i].Sum) / float64(phaseSum)
			}
		}
		for i := 1; i < len(rows); i++ { // insertion sort by share desc; N<=8
			for j := i; j > 0 && rows[j].Share > rows[j-1].Share; j-- {
				rows[j], rows[j-1] = rows[j-1], rows[j]
			}
		}
		rep.Ops = append(rep.Ops, OpTable{
			Op:     OpName(op),
			Count:  ts.Count,
			Total:  ts.Sum,
			P50:    ts.Quantile(0.50),
			P99:    ts.Quantile(0.99),
			Phases: rows,
		})
	}
	return rep
}

// String renders the report as an aligned text table with share bars —
// the `fiosim -attr` / `rbdctl slow` surface.
func (r Report) String() string {
	if len(r.Ops) == 0 {
		return "attribution: no traffic recorded\n"
	}
	var b strings.Builder
	for _, t := range r.Ops {
		fmt.Fprintf(&b, "%s: %d ops, total %v, p50 %v, p99 %v\n",
			t.Op, t.Count, t.Total, t.P50, t.P99)
		for _, row := range t.Phases {
			fmt.Fprintf(&b, "  %-9s %5.1f%% %-20s p50 %-10v p99 %-10v (%d obs)\n",
				row.Phase, row.Share*100, shareBar(row.Share), row.P50, row.P99, row.Count)
		}
	}
	return b.String()
}

// shareBar renders a 20-char bar for a [0,1] share.
func shareBar(share float64) string {
	n := int(share*20 + 0.5)
	if n > 20 {
		n = 20
	}
	return strings.Repeat("#", n)
}
