// Package telemetry is the stack's dependency-free metrics and tracing
// layer: counters, gauges and fixed-bucket latency histograms keyed by
// (subsystem, op, scheme/layout) labels, plus per-op trace spans
// (trace.go). It is vtime-native — every duration is virtual time, so
// the whole layer is deterministic and replayable (vetrepo's vtimeonly
// analyzer applies to this package like any other simulation package).
//
// The design splits setup from recording. Setup (registering a family,
// resolving a labeled series with With) takes locks and allocates;
// instrumented packages do it once, in package init or when an image /
// walker is opened, and hold the resolved *Counter / *Gauge /
// *Histogram handles. Recording (Add, Set, Observe, span hops) is the
// hot path: a handful of atomic operations, zero heap allocations —
// pinned by TestTelemetryAllocBudget and the CI bench gate. Metric
// state lives only in sync/atomic fields (vetrepo's atomicstate
// analyzer pins this), so concurrent readers — the rbdctl status
// surface, the Prometheus exposition — need no coordination with
// writers and are race-free by construction.
//
// Every registered series must be documented in METRICS.md; the
// contract test fails on drift in either direction.
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/vtime"
)

// Kind enumerates metric families.
type Kind int

// Family kinds, matching the Prometheus exposition TYPE names.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer ("counter" | "gauge" | "histogram").
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing series. The zero value is
// usable, but almost all counters come from a Registry so they are
// exported. Padded so hot adjacent counters do not share a cache line.
type Counter struct {
	v atomic.Int64
	_ [56]byte
}

// Add increments the counter. Negative deltas are ignored (counters are
// monotonic by contract).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter. This accessor is the only sanctioned read:
// the backing field is atomic, so readers never tear and never race.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a series that can go up and down (progress, queue depth,
// pacer debt in virtual nanoseconds).
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by a (possibly negative) delta.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetDuration stores a virtual duration as nanoseconds.
func (g *Gauge) SetDuration(d vtime.Duration) { g.v.Store(int64(d)) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HistBuckets is the number of latency buckets. Bucket i counts
// observations at or below histBaseNs<<i virtual nanoseconds
// (~1 µs, 2 µs, ... ~69 s); the last bucket is the +Inf catch-all.
const HistBuckets = 28

// histBaseNs is the upper bound of the first bucket (~1 µs).
const histBaseNs = 1024

// Histogram is a fixed-bucket virtual-time latency histogram:
// power-of-two bucket bounds, so Observe is a shift and three atomic
// adds — no locks, no allocation, no float math on the hot path.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // virtual nanoseconds
	buckets [HistBuckets]atomic.Int64
}

// bucketIdx maps a duration to its bucket.
func bucketIdx(d vtime.Duration) int {
	if d <= 0 {
		return 0
	}
	i := bits.Len64(uint64(d) / histBaseNs)
	if i >= HistBuckets {
		return HistBuckets - 1
	}
	return i
}

// BucketBound returns bucket i's inclusive upper bound; the last bucket
// is unbounded and reports the largest representable duration.
func BucketBound(i int) vtime.Duration {
	if i >= HistBuckets-1 {
		return vtime.Duration(1<<63 - 1)
	}
	return vtime.Duration(histBaseNs << uint(i))
}

// Observe records one virtual-time duration.
func (h *Histogram) Observe(d vtime.Duration) {
	h.buckets[bucketIdx(d)].Add(1)
	h.count.Add(1)
	if d > 0 {
		h.sum.Add(int64(d))
	}
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count   int64
	Sum     vtime.Duration
	Buckets [HistBuckets]int64
}

// Snapshot copies the histogram's current state. Buckets are read
// individually (not under a lock), so a snapshot taken concurrently
// with Observe may be off by in-flight observations — fine for
// monitoring, which is the point of the lock-free design.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = vtime.Duration(h.sum.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// bound of the first bucket whose cumulative count reaches q*Count.
// Resolution is the power-of-two bucket width.
func (s HistSnapshot) Quantile(q float64) vtime.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(HistBuckets - 1)
}

// Mean returns the exact average observation (Sum is exact even though
// bucket counts quantize).
func (s HistSnapshot) Mean() vtime.Duration {
	if s.Count == 0 {
		return 0
	}
	return vtime.Duration(int64(s.Sum) / s.Count)
}

// series is one labeled instance inside a family.
type series struct {
	labels string // rendered {k="v",...} suffix, "" for unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Family is one named metric with a fixed label-key set and any number
// of labeled series.
type Family struct {
	name      string
	help      string
	kind      Kind
	labelKeys []string

	mu    sync.Mutex
	index map[string]*series
	order []*series // insertion order, for stable exposition
}

// Name returns the family name (the METRICS.md contract key).
func (f *Family) Name() string { return f.name }

// Help returns the registration help string.
func (f *Family) Help() string { return f.help }

// Kind returns the family kind.
func (f *Family) Kind() Kind { return f.kind }

// get resolves (creating on first use) the series for labelValues.
// Setup path: locks and allocates; callers hold the returned handle.
func (f *Family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labelKeys) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d",
			f.name, len(f.labelKeys), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x1f")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.index[key]; ok {
		return s
	}
	s := &series{labels: renderLabels(f.labelKeys, labelValues)}
	switch f.kind {
	case KindCounter:
		s.c = &Counter{}
	case KindGauge:
		s.g = &Gauge{}
	case KindHistogram:
		s.h = &Histogram{}
	}
	f.index[key] = s
	f.order = append(f.order, s)
	return s
}

func renderLabels(keys, values []string) string {
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, values[i])
	}
	b.WriteByte('}')
	return b.String()
}

// Registry holds metric families. Registration is idempotent: asking
// for an existing (name, kind) returns the existing family, so package
// init order never matters; a kind clash panics (a programming error).
type Registry struct {
	mu       sync.Mutex
	byName   map[string]*Family
	families []*Family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Family)}
}

// Default is the process-wide registry every instrumented package
// registers into; METRICS.md documents exactly its contents.
var Default = NewRegistry()

func (r *Registry) family(name, help string, kind Kind, labelKeys ...string) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || len(f.labelKeys) != len(labelKeys) {
			panic(fmt.Sprintf("telemetry: %s re-registered as %v(%d labels), was %v(%d labels)",
				name, kind, len(labelKeys), f.kind, len(f.labelKeys)))
		}
		return f
	}
	f := &Family{
		name:      name,
		help:      help,
		kind:      kind,
		labelKeys: append([]string(nil), labelKeys...),
		index:     make(map[string]*series),
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Families returns the registered families sorted by name. The slice
// is a fresh copy; the *Family values are live (families are never
// removed), so holding one across calls is safe.
func (r *Registry) Families() []*Family {
	r.mu.Lock()
	fams := append([]*Family(nil), r.families...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// LabelKeys returns a copy of the family's label-key set.
func (f *Family) LabelKeys() []string { return append([]string(nil), f.labelKeys...) }

// EachSeries calls fn for every labeled series in insertion order with
// the rendered {k="v",...} suffix ("" for unlabeled) and the series'
// typed handle — exactly one of c/g/h is non-nil, matching the family
// kind. The handles are the live atomics: a caller may retain them and
// read Value()/Snapshot() later without further locking. This is the
// enumeration hook the history ring uses to pre-resolve its tracked
// series at Refresh time so Record stays alloc-free.
func (f *Family) EachSeries(fn func(labels string, c *Counter, g *Gauge, h *Histogram)) {
	f.mu.Lock()
	ser := append([]*series(nil), f.order...)
	f.mu.Unlock()
	for _, s := range ser {
		fn(s.labels, s.c, s.g, s.h)
	}
}

// FamilyNames returns the registered family names, sorted — the set the
// METRICS.md contract test compares against.
func (r *Registry) FamilyNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for _, f := range r.families {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *Family }

// With resolves the series for the given label values (setup path).
func (v *CounterVec) With(labelValues ...string) *Counter { return v.f.get(labelValues).c }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *Family }

// With resolves the series for the given label values (setup path).
func (v *GaugeVec) With(labelValues ...string) *Gauge { return v.f.get(labelValues).g }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *Family }

// With resolves the series for the given label values (setup path).
func (v *HistogramVec) With(labelValues ...string) *Histogram { return v.f.get(labelValues).h }

// NewCounter registers (or finds) an unlabeled counter in r.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.family(name, help, KindCounter).get(nil).c
}

// NewGauge registers (or finds) an unlabeled gauge in r.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.family(name, help, KindGauge).get(nil).g
}

// NewHistogram registers (or finds) an unlabeled histogram in r.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	return r.family(name, help, KindHistogram).get(nil).h
}

// NewCounterVec registers (or finds) a labeled counter family in r.
func (r *Registry) NewCounterVec(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, KindCounter, labelKeys...)}
}

// NewGaugeVec registers (or finds) a labeled gauge family in r.
func (r *Registry) NewGaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, KindGauge, labelKeys...)}
}

// NewHistogramVec registers (or finds) a labeled histogram family in r.
func (r *Registry) NewHistogramVec(name, help string, labelKeys ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, KindHistogram, labelKeys...)}
}

// Package-level constructors registering into Default.

// NewCounter registers an unlabeled counter in the Default registry.
func NewCounter(name, help string) *Counter { return Default.NewCounter(name, help) }

// NewGauge registers an unlabeled gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return Default.NewGauge(name, help) }

// NewHistogram registers an unlabeled histogram in the Default registry.
func NewHistogram(name, help string) *Histogram { return Default.NewHistogram(name, help) }

// NewCounterVec registers a labeled counter family in the Default registry.
func NewCounterVec(name, help string, labelKeys ...string) *CounterVec {
	return Default.NewCounterVec(name, help, labelKeys...)
}

// NewGaugeVec registers a labeled gauge family in the Default registry.
func NewGaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	return Default.NewGaugeVec(name, help, labelKeys...)
}

// NewHistogramVec registers a labeled histogram family in the Default registry.
func NewHistogramVec(name, help string, labelKeys ...string) *HistogramVec {
	return Default.NewHistogramVec(name, help, labelKeys...)
}

// WriteTo renders the registry in the Prometheus text exposition
// format. Histogram bucket bounds and sums are emitted in seconds (the
// Prometheus convention for duration series); all times are virtual.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := append([]*Family(nil), r.families...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	cw := &countingWriter{w: w}
	for _, f := range fams {
		f.mu.Lock()
		ser := append([]*series(nil), f.order...)
		f.mu.Unlock()
		if len(ser) == 0 {
			continue
		}
		fmt.Fprintf(cw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ser {
			switch f.kind {
			case KindCounter:
				fmt.Fprintf(cw, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case KindGauge:
				fmt.Fprintf(cw, "%s%s %d\n", f.name, s.labels, s.g.Value())
			case KindHistogram:
				writeHist(cw, f.name, s.labels, s.h.Snapshot())
			}
		}
		if cw.err != nil {
			return cw.n, cw.err
		}
	}
	return cw.n, cw.err
}

func writeHist(w io.Writer, name, labels string, s HistSnapshot) {
	sep := "{"
	if labels != "" {
		sep = labels[:len(labels)-1] + ","
	}
	var cum int64
	for i, b := range s.Buckets {
		cum += b
		if i == HistBuckets-1 {
			fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, sep, cum)
		} else {
			fmt.Fprintf(w, "%s_bucket%sle=\"%g\"} %d\n", name, sep,
				float64(BucketBound(i))/1e9, cum)
		}
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, float64(s.Sum)/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

// Snapshot renders the Default registry as a Prometheus text page —
// the string form behind `rbdctl status` and the fio/bench dumps.
func Snapshot() string {
	var b strings.Builder
	Default.WriteTo(&b)
	return b.String()
}
