package telemetry

import (
	"strings"
	"testing"

	"repro/internal/vtime"
)

// TestEventJournal covers the ring semantics: newest-first readback,
// per-kind monotonic counters, wraparound, and bad-kind tolerance.
func TestEventJournal(t *testing.T) {
	j := NewJournal(NewRegistry())

	j.Append(10, EventEpochAdd, "vol0", "minted", 1)
	j.Append(20, EventScrubStart, "vol0", "verify sweep", 8)
	j.Append(30, EventFaultFired, "disk/osd0/nvme0", "bit-rot", 1)

	evs := j.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	if evs[0].Kind != EventFaultFired || evs[1].Kind != EventScrubStart || evs[2].Kind != EventEpochAdd {
		t.Fatalf("events not newest-first: %v", evs)
	}
	if evs[0].At != 30 || evs[0].Subject != "disk/osd0/nvme0" || evs[0].Detail != "bit-rot" || evs[0].Value != 1 {
		t.Fatalf("bad newest event: %+v", evs[0])
	}
	if got := j.Count(EventEpochAdd); got != 1 {
		t.Fatalf("Count(EventEpochAdd) = %d, want 1", got)
	}

	// Wrap the ring; the counters stay monotonic and the ring keeps the
	// newest journalSize events.
	for i := 0; i < journalSize+5; i++ {
		j.Append(vtime.Time(i), EventRepairDone, "vol0", "", int64(i))
	}
	evs = j.Events()
	if len(evs) != journalSize {
		t.Fatalf("after wrap got %d events, want %d", len(evs), journalSize)
	}
	if evs[0].Value != int64(journalSize+4) {
		t.Fatalf("newest after wrap has value %d, want %d", evs[0].Value, journalSize+4)
	}
	if got := j.Count(EventRepairDone); got != int64(journalSize+5) {
		t.Fatalf("Count(EventRepairDone) = %d, want %d", got, journalSize+5)
	}

	// Out-of-range kinds are dropped, not stored.
	j.Append(0, numEventKinds, "x", "", 0)
	if len(j.Events()) != journalSize {
		t.Fatal("out-of-range kind was journalled")
	}

	// A nil journal is inert (mirrors the nil-safe metric handles).
	var nilJ *Journal
	nilJ.Append(0, EventEpochAdd, "x", "", 0)

	if s := evs[0].String(); !strings.Contains(s, "repair-done") || !strings.Contains(s, "vol0") {
		t.Fatalf("event String missing kind/subject: %q", s)
	}
}

// TestEventJournalAllocBudget pins the hot-path contract: journalling an
// event performs zero heap allocations (subject/detail stored by
// reference, pre-resolved counters).
func TestEventJournalAllocBudget(t *testing.T) {
	j := NewJournal(NewRegistry())
	if allocs := testing.AllocsPerRun(200, func() {
		j.Append(42, EventFaultFired, "disk/osd0/nvme0", "torn-write", 1)
	}); allocs != 0 {
		t.Fatalf("Journal.Append allocates %v times per op, want 0", allocs)
	}
}
