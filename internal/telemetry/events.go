package telemetry

// events.go is the structured event journal: a fixed ring of lifecycle
// events (epoch add/retire, rekey/flatten/scrub start-finish, faults
// fired, repairs done) that the health plane and the rbdctl surfaces
// read back as a timeline. Appends are the hot-path half — a mutex, a
// ring-slot store and one pre-resolved counter bump, zero allocations
// (subject strings are stored by reference, like span hop names) —
// pinned by TestEventJournalAllocBudget. The ring keeps the newest
// journalSize events; older ones fall off, but the per-kind
// events_total counters are monotonic, so rates survive the ring.

import (
	"fmt"
	"sync"

	"repro/internal/vtime"
)

// EventKind enumerates the journalled lifecycle events.
type EventKind uint8

// Event kinds. The order is the events_total label order; keep
// eventKindNames in sync.
const (
	EventEpochAdd EventKind = iota
	EventEpochRetire
	EventRekeyStart
	EventRekeyFinish
	EventFlattenStart
	EventFlattenFinish
	EventScrubStart
	EventScrubFinish
	EventFaultFired
	EventRepairDone
	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"epoch-add", "epoch-retire",
	"rekey-start", "rekey-finish",
	"flatten-start", "flatten-finish",
	"scrub-start", "scrub-finish",
	"fault-fired", "repair-done",
}

// String implements fmt.Stringer (the events_total kind label value).
func (k EventKind) String() string {
	if k < numEventKinds {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one journalled lifecycle event. Subject names what it
// happened to (an image, a fault site, an object key); Detail is an
// optional static qualifier (a fault kind name, a walker phase); Value
// is a kind-specific count (epoch number, blocks repaired, ...).
type Event struct {
	At      vtime.Time
	Kind    EventKind
	Subject string
	Detail  string
	Value   int64
}

// String renders the event as one journal line.
func (e Event) String() string {
	s := fmt.Sprintf("%12d %-14s %s", int64(e.At), e.Kind, e.Subject)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return fmt.Sprintf("%s value=%d", s, e.Value)
}

// journalSize is the event ring capacity.
const journalSize = 256

// Journal is a fixed ring of lifecycle events plus per-kind monotonic
// counters registered as events_total{kind}.
type Journal struct {
	mu     sync.Mutex
	ring   [journalSize]Event
	n      int64
	counts [numEventKinds]*Counter
}

// NewJournal builds a journal with its per-kind counters registered in
// reg (family events_total, label kind).
func NewJournal(reg *Registry) *Journal {
	j := &Journal{}
	vec := reg.NewCounterVec("events_total", "lifecycle events journalled, by kind", "kind")
	for k := EventKind(0); k < numEventKinds; k++ {
		j.counts[k] = vec.With(k.String())
	}
	return j
}

// Log is the process-wide event journal, registered in Default.
var Log = NewJournal(Default)

// Append journals one event. Alloc-free: subject/detail should be
// static or already-retained strings — they are stored by reference.
func (j *Journal) Append(at vtime.Time, kind EventKind, subject, detail string, value int64) {
	if j == nil || kind >= numEventKinds {
		return
	}
	j.mu.Lock()
	j.ring[j.n%journalSize] = Event{At: at, Kind: kind, Subject: subject, Detail: detail, Value: value}
	j.n++
	j.mu.Unlock()
	j.counts[kind].Inc()
}

// Events returns the journalled events still in the ring, newest first.
func (j *Journal) Events() []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	live := j.n
	if live > journalSize {
		live = journalSize
	}
	out := make([]Event, 0, live)
	for i := int64(1); i <= live; i++ {
		out = append(out, j.ring[(j.n-i)%journalSize])
	}
	return out
}

// Count returns the monotonic total of events journalled with kind k —
// it keeps counting after the ring has wrapped.
func (j *Journal) Count(k EventKind) int64 {
	if k >= numEventKinds {
		return 0
	}
	return j.counts[k].Value()
}
