package telemetry_test

// End-to-end observability acceptance: a workload over several
// scheme×layout combinations on a live cluster must leave (a) per-label
// datapath series in the Prometheus snapshot, (b) at least one complete
// trace span carrying the full client -> msgr -> OSD serve -> replicate
// hop timeline, and (c) rekey walker gauges that move while the walk is
// live. This is the wiring test — the primitives themselves are covered
// in telemetry_test.go.

import (
	"fmt"
	"strings"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/telemetry"
)

func TestEndToEndObservability(t *testing.T) {
	cluster, err := repro.NewCluster(repro.TestClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	client := cluster.NewClient("e2e")

	// Sample every request so the trace assertion is deterministic.
	telemetry.Ops.SetSampleEvery(1)
	defer telemetry.Ops.SetSampleEvery(64)

	matrix := []struct {
		scheme core.Scheme
		layout core.Layout
	}{
		{core.SchemeLUKS2, core.LayoutNone},
		{core.SchemeXTSRand, core.LayoutObjectEnd},
		{core.SchemeXTSRand, core.LayoutOMAP},
	}
	var rekeyImg *repro.EncryptedImage
	for i, m := range matrix {
		name := fmt.Sprintf("e2e-%d", i)
		img, err := repro.CreateEncryptedImage(client, "rbd", name, 8<<20,
			[]byte("pass"), repro.Options{Scheme: m.scheme, Layout: m.layout})
		if err != nil {
			t.Fatal(err)
		}
		now, err := fio.Precondition(img, 2<<20, 4096, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, pat := range []fio.Pattern{fio.RandWrite, fio.RandRead} {
			res, err := fio.Run(fio.Spec{
				Pattern: pat, BlockSize: 4096, QueueDepth: 4,
				Span: 2 << 20, TotalOps: 32,
			}, img, now)
			if err != nil {
				t.Fatal(err)
			}
			now = res.End
		}
		rekeyImg = img
	}

	// Walker gauges: resolve the same series the walker publishes into
	// (family registration is idempotent) and watch them move.
	gDone := telemetry.NewGaugeVec("rekey_objects_done",
		"objects the rekey walker has completed", "image").With(rekeyImg.Image().Name())
	r, err := repro.StartRekey(rekeyImg)
	if err != nil {
		t.Fatal(err)
	}
	before := gDone.Value()
	var at repro.Time
	for {
		done, end, err := r.Step(at)
		if err != nil {
			t.Fatal(err)
		}
		at = end
		if gDone.Value() > before {
			break // the gauge moved while the walk was live
		}
		if done {
			t.Fatal("rekey finished without rekey_objects_done ever advancing")
		}
	}
	if _, err := r.Run(at); err != nil {
		t.Fatal(err)
	}

	// (a) Per-label datapath series for every matrix member, plus the
	// walker and transport families.
	snap := repro.MetricsSnapshot()
	for _, want := range []string{
		`core_seal_ops_total{scheme="luks2",layout="none"}`,
		`core_seal_ops_total{scheme="xts-rand",layout="object-end"}`,
		`core_seal_ops_total{scheme="xts-rand",layout="omap"}`,
		`core_read_vtime_count{scheme="xts-rand",layout="object-end"}`,
		`client_requests_total`,
		`osd_requests_total{role="primary",osd="`,
		`osd_requests_total{role="replica",osd="`,
		`device_write_ops_total{osd="0"}`,
		`msgr_calls_total{path="typed"}`,
		`rekey_blocks_resealed_total{image="e2e-2"}`,
		`fio_op_vtime_count{op="write"}`,
		`trace_spans_finished_total`,
	} {
		if !strings.Contains(snap, want) {
			t.Errorf("snapshot missing series %s", want)
		}
	}

	// (b) At least one complete replicated-write span: transport hops from
	// the client's messenger, the primary's serve, every replica's serve
	// (wire-propagated trace context — the hops crossed the reply), and
	// the primary's replication fan-out. Replicas=3 on the 3-OSD test
	// cluster, so a full timeline carries three distinct per-OSD serve
	// hops.
	complete := false
	for _, rec := range telemetry.Ops.Recent() {
		got := map[string]bool{}
		serves, replicates := 0, 0
		for i := 0; i < rec.NHops; i++ {
			name := rec.Hops[i].Name
			if !got[name] {
				got[name] = true
				switch {
				case strings.HasSuffix(name, ":serve"):
					serves++
				case strings.HasSuffix(name, ":replicate"):
					replicates++
				}
			}
		}
		if got["msgr:req"] && got["msgr:resp"] && serves >= 3 && replicates >= 1 && rec.End >= rec.Start {
			complete = true
			break
		}
	}
	if !complete {
		t.Errorf("no complete replicated-write span (msgr:req/resp + 3 per-OSD serves + replicate) among %d recent spans", len(telemetry.Ops.Recent()))
	}
}
