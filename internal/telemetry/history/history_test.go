package history

import (
	"testing"

	"repro/internal/telemetry"
	"repro/internal/vtime"
)

const sec = vtime.Duration(1e9)

// TestHistoryWindows covers the window semantics: deltas and rates over
// the actual endpoint spacing, quantiles over histogram-delta merges,
// and the oldest-sample fallback when coverage is shorter than the
// window.
func TestHistoryWindows(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.NewCounter("t_ops_total", "test")
	g := reg.NewGauge("t_debt_ns", "test")
	hist := reg.NewHistogram("t_vtime", "test")
	h := New(reg, 8)

	// Samples at 0s, 1s, 2s: counter +10 per second, gauge climbing.
	h.Record(0)
	c.Add(10)
	g.Set(5)
	hist.Observe(vtime.Duration(2 * 1e6)) // 2 ms
	h.Record(vtime.Time(1 * 1e9))
	c.Add(10)
	g.Set(50)
	hist.Observe(vtime.Duration(40 * 1e6)) // 40 ms
	h.Record(vtime.Time(2 * 1e9))

	if d := h.Delta("t_ops_total", "", 1*sec); d != 10 {
		t.Errorf("1s delta = %d, want 10", d)
	}
	if d := h.DeltaSum("t_ops_total", 2*sec); d != 20 {
		t.Errorf("2s delta = %d, want 20", d)
	}
	// A window wider than coverage falls back to the oldest sample.
	if d := h.Delta("t_ops_total", "", 100*sec); d != 20 {
		t.Errorf("oversized-window delta = %d, want 20", d)
	}
	// Rates divide by actual elapsed time (2 s), not the nominal window.
	if r := h.RateSum("t_ops_total", 100*sec); r < 9.9 || r > 10.1 {
		t.Errorf("rate = %v, want ~10/s", r)
	}
	if d := h.DeltaMax("t_debt_ns", 2*sec); d != 50 {
		t.Errorf("2s gauge growth = %d, want 50 (from the t=0 sample)", d)
	}
	if d := h.DeltaMax("t_debt_ns", 1*sec); d != 45 {
		t.Errorf("1s gauge growth = %d, want 45", d)
	}
	if v := h.GaugeMax("t_debt_ns"); v != 50 {
		t.Errorf("gauge max = %d, want 50", v)
	}

	// The 1s window spans only the second observation (40 ms); a p99
	// over it must exceed 20 ms, while the full-coverage median stays
	// low only when both observations are inside.
	if q := h.QuantileOver("t_vtime", 0.99, 1*sec); q < vtime.Duration(20*1e6) {
		t.Errorf("1s-window p99 = %v, want >= 20ms", q)
	}
	if q := h.SeriesQuantile("t_vtime", "", 0.5, 2*sec); q >= vtime.Duration(20*1e6) {
		t.Errorf("2s-window p50 = %v, want < 20ms (2ms observation included)", q)
	}

	// Untracked families answer zero, never panic.
	if d := h.Delta("nope", "", sec); d != 0 {
		t.Errorf("untracked delta = %d", d)
	}
	if q := h.QuantileOver("nope", 0.5, sec); q != 0 {
		t.Errorf("untracked quantile = %v", q)
	}
}

// TestHistoryRefresh covers late series pickup: a series registered
// after New is invisible until Refresh, then tracked with its own ring.
func TestHistoryRefresh(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := New(reg, 4)
	c := reg.NewCounterVec("t_late_total", "test", "osd").With("0")
	h.Record(0)
	if _, ok := h.Last("t_late_total", `{osd="0"}`); ok {
		t.Fatal("series visible before Refresh")
	}
	h.Refresh()
	c.Add(7)
	h.Record(1)
	if v, ok := h.Last("t_late_total", `{osd="0"}`); !ok || v != 7 {
		t.Fatalf("after Refresh: value=%d ok=%v, want 7 true", v, ok)
	}
}

// TestHistoryRingWrap verifies old samples fall off a full ring: with 4
// slots only the newest 4 samples bound any window.
func TestHistoryRingWrap(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.NewCounter("t_wrap_total", "test")
	h := New(reg, 4)
	for i := 1; i <= 10; i++ {
		c.Add(1)
		h.Record(vtime.Time(int64(i) * 1e9))
	}
	// Oldest retained sample is i=7 (value 7); newest i=10 (value 10).
	if d := h.Delta("t_wrap_total", "", 100*sec); d != 3 {
		t.Errorf("wrapped delta = %d, want 3 (ring keeps 4 samples)", d)
	}
	if n := h.Samples(); n != 10 {
		t.Errorf("Samples() = %d, want 10", n)
	}
}

// TestHistoryRecordAllocBudget pins the hot-path contract: recording a
// snapshot of every tracked series performs zero heap allocations.
func TestHistoryRecordAllocBudget(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.NewCounter("t_ops_total", "test")
	g := reg.NewGauge("t_debt_ns", "test")
	hist := reg.NewHistogram("t_vtime", "test")
	hv := reg.NewHistogramVec("t_vtime_labeled", "test", "op").With("read")
	h := New(reg, 16)

	var at vtime.Time
	if allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Set(int64(at))
		hist.Observe(1e6)
		hv.Observe(2e6)
		at = at.Add(1e6)
		h.Record(at)
	}); allocs != 0 {
		t.Fatalf("History.Record allocates %v times per op, want 0", allocs)
	}
}
