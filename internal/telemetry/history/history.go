// Package history is the vtime-native time-series half of the health
// plane: a fixed ring of periodic registry snapshots with windowed
// rate/delta queries and histogram-delta quantiles over a window.
//
// The design splits setup from recording, like the registry itself.
// Refresh (setup) scans the registry for series that appeared since the
// last scan — an image opened, an OSD constructed — and pre-resolves
// their live handles plus preallocated sample rings; it locks and
// allocates. Record (the hot path) walks the tracked series and stores
// one (vtime, value) sample per series into its ring — atomic loads and
// slice stores only, zero heap allocations, pinned by
// TestHistoryRecordAllocBudget. Histogram series store full bucket
// snapshots so a window's latency distribution is the subtraction of
// its two endpoint snapshots.
//
// Window semantics: a query at time `at` over window `w` takes the
// newest sample as the right endpoint and, as the left endpoint, the
// most recent sample at least `w` old (falling back to the oldest
// retained sample when coverage is shorter). Rates divide by the actual
// elapsed virtual time between the endpoints, never by the nominal
// window.
package history

import (
	"sync"

	"repro/internal/telemetry"
	"repro/internal/vtime"
)

// DefaultSlots is the per-series sample-ring capacity.
const DefaultSlots = 64

// Meta-telemetry about the history subsystem itself, always registered
// in the Default registry regardless of which registry an instance
// snapshots (several instances share these; they describe the process).
var (
	mRecords = telemetry.NewCounter("history_snapshots_total", "history ring snapshot records taken")
	mTracked = telemetry.NewGauge("history_series_tracked", "series currently tracked by the history ring")
)

// tracked is one series under observation: its live handle plus the
// preallocated sample ring.
type tracked struct {
	family string
	labels string // rendered {k="v",...} suffix, "" for unlabeled

	c *telemetry.Counter
	g *telemetry.Gauge
	h *telemetry.Histogram

	times []vtime.Time             // ring, len == slots
	vals  []int64                  // counter/gauge samples
	hists []telemetry.HistSnapshot // histogram samples, nil for scalar series
	n     int64                    // total samples ever recorded
}

// sampleAt returns the i-th newest sample index (i=0 newest) into the
// rings, or -1 when fewer than i+1 samples exist.
func (t *tracked) sampleIdx(i int64) int {
	if i >= t.n || i >= int64(len(t.times)) {
		return -1
	}
	return int((t.n - 1 - i) % int64(len(t.times)))
}

// endpoints picks the (left, right) ring indices for a windowed query
// ending at the newest sample: right is the newest sample, left the
// most recent sample at least w older than it (oldest retained sample
// when coverage is shorter). Returns ok=false with fewer than two
// samples.
func (t *tracked) endpoints(w vtime.Duration) (left, right int, ok bool) {
	right = t.sampleIdx(0)
	if right < 0 {
		return 0, 0, false
	}
	cutoff := t.times[right].Add(-w)
	left = -1
	for i := int64(1); ; i++ {
		idx := t.sampleIdx(i)
		if idx < 0 {
			break
		}
		left = idx
		if t.times[idx] <= cutoff {
			break
		}
	}
	if left < 0 {
		return 0, 0, false
	}
	return left, right, true
}

// value reads the live instantaneous value of the series (histograms
// report their observation count).
func (t *tracked) value() int64 {
	switch {
	case t.c != nil:
		return t.c.Value()
	case t.g != nil:
		return t.g.Value()
	default:
		return t.h.Snapshot().Count
	}
}

// History is a ring of periodic registry snapshots.
type History struct {
	mu    sync.Mutex
	reg   *telemetry.Registry
	slots int
	list  []*tracked
	index map[string]*tracked // family + "\x1f" + labels
}

// New builds a history over reg with the given per-series ring capacity
// (DefaultSlots when slots <= 0) and runs the first Refresh.
func New(reg *telemetry.Registry, slots int) *History {
	if slots <= 0 {
		slots = DefaultSlots
	}
	h := &History{reg: reg, slots: slots, index: make(map[string]*tracked)}
	h.Refresh()
	return h
}

// Refresh scans the registry and starts tracking any series that
// appeared since the last scan (setup path: locks and allocates).
// Already-tracked series keep their rings.
func (h *History) Refresh() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, f := range h.reg.Families() {
		name, kind := f.Name(), f.Kind()
		f.EachSeries(func(labels string, c *telemetry.Counter, g *telemetry.Gauge, hist *telemetry.Histogram) {
			key := name + "\x1f" + labels
			if _, ok := h.index[key]; ok {
				return
			}
			t := &tracked{
				family: name, labels: labels,
				c: c, g: g, h: hist,
				times: make([]vtime.Time, h.slots),
				vals:  make([]int64, h.slots),
			}
			if kind == telemetry.KindHistogram {
				t.hists = make([]telemetry.HistSnapshot, h.slots)
			}
			h.index[key] = t
			h.list = append(h.list, t)
		})
	}
	mTracked.Set(int64(len(h.list)))
}

// Record takes one snapshot of every tracked series at virtual time at.
// Alloc-free: every ring was preallocated by Refresh.
func (h *History) Record(at vtime.Time) {
	h.mu.Lock()
	for _, t := range h.list {
		idx := int(t.n % int64(len(t.times)))
		t.times[idx] = at
		if t.hists != nil {
			s := t.h.Snapshot()
			t.hists[idx] = s
			t.vals[idx] = s.Count
		} else {
			t.vals[idx] = t.value()
		}
		t.n++
	}
	h.mu.Unlock()
	mRecords.Inc()
}

// Registry returns the registry this history snapshots.
func (h *History) Registry() *telemetry.Registry { return h.reg }

// Samples returns how many snapshots the newest-refreshed series have
// accumulated (0 when nothing is tracked).
func (h *History) Samples() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var max int64
	for _, t := range h.list {
		if t.n > max {
			max = t.n
		}
	}
	return max
}

// find looks up one tracked series.
func (h *History) find(family, labels string) *tracked {
	return h.index[family+"\x1f"+labels]
}

// Last returns the live instantaneous value of one series (by rendered
// label suffix), and whether the series is tracked.
func (h *History) Last(family, labels string) (int64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.find(family, labels)
	if t == nil {
		return 0, false
	}
	return t.value(), true
}

// LastSum returns the summed live value across every series of family.
func (h *History) LastSum(family string) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var sum int64
	for _, t := range h.list {
		if t.family == family {
			sum += t.value()
		}
	}
	return sum
}

// seriesDelta computes one series' windowed delta and the elapsed
// virtual time between the window endpoints.
func seriesDelta(t *tracked, w vtime.Duration) (delta int64, elapsed vtime.Duration, ok bool) {
	l, r, ok := t.endpoints(w)
	if !ok {
		return 0, 0, false
	}
	return t.vals[r] - t.vals[l], t.times[r].Sub(t.times[l]), true
}

// Delta returns one series' windowed delta (counter increase, gauge
// movement, histogram count growth). Zero when the series is untracked
// or has fewer than two samples.
func (h *History) Delta(family, labels string, w vtime.Duration) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.find(family, labels)
	if t == nil {
		return 0
	}
	d, _, _ := seriesDelta(t, w)
	return d
}

// DeltaSum returns the summed windowed delta across every series of
// family.
func (h *History) DeltaSum(family string, w vtime.Duration) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var sum int64
	for _, t := range h.list {
		if t.family != family {
			continue
		}
		d, _, ok := seriesDelta(t, w)
		if ok {
			sum += d
		}
	}
	return sum
}

// RateSum returns the summed per-virtual-second rate across every
// series of family over the window (each series divides its delta by
// its own actual coverage).
func (h *History) RateSum(family string, w vtime.Duration) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var rate float64
	for _, t := range h.list {
		if t.family != family {
			continue
		}
		d, el, ok := seriesDelta(t, w)
		if ok && el > 0 {
			rate += float64(d) / (float64(el) / 1e9)
		}
	}
	return rate
}

// GaugeMax returns the largest live value across the family's series
// (useful for "any pacer's debt above X" rules).
func (h *History) GaugeMax(family string) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var max int64
	first := true
	for _, t := range h.list {
		if t.family != family {
			continue
		}
		if v := t.value(); first || v > max {
			max, first = v, false
		}
	}
	return max
}

// DeltaMax returns the largest windowed delta across the family's
// series (gauge growth rules).
func (h *History) DeltaMax(family string, w vtime.Duration) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var max int64
	first := true
	for _, t := range h.list {
		if t.family != family {
			continue
		}
		d, _, ok := seriesDelta(t, w)
		if ok && (first || d > max) {
			max, first = d, false
		}
	}
	return max
}

// EachDelta calls fn with every tracked series of family and its
// windowed delta (histograms: count growth). Series with fewer than two
// samples report ok=false.
func (h *History) EachDelta(family string, w vtime.Duration, fn func(labels string, delta int64, ok bool)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, t := range h.list {
		if t.family != family {
			continue
		}
		d, _, ok := seriesDelta(t, w)
		fn(t.labels, d, ok)
	}
}

// QuantileOver returns an upper bound for the q-quantile of the
// observations every histogram series of family recorded inside the
// window: per-series endpoint snapshots are subtracted and the bucket
// deltas merged into one distribution. Zero when nothing was observed
// in the window.
func (h *History) QuantileOver(family string, q float64, w vtime.Duration) vtime.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	var merged telemetry.HistSnapshot
	for _, t := range h.list {
		if t.family != family || t.hists == nil {
			continue
		}
		l, r, ok := t.endpoints(w)
		if !ok {
			continue
		}
		a, b := t.hists[l], t.hists[r]
		merged.Count += b.Count - a.Count
		merged.Sum += b.Sum - a.Sum
		for i := range merged.Buckets {
			merged.Buckets[i] += b.Buckets[i] - a.Buckets[i]
		}
	}
	if merged.Count <= 0 {
		return 0
	}
	return merged.Quantile(q)
}

// SeriesQuantile is QuantileOver for one labeled series.
func (h *History) SeriesQuantile(family, labels string, q float64, w vtime.Duration) vtime.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	t := h.find(family, labels)
	if t == nil || t.hists == nil {
		return 0
	}
	l, r, ok := t.endpoints(w)
	if !ok {
		return 0
	}
	a, b := t.hists[l], t.hists[r]
	var d telemetry.HistSnapshot
	d.Count = b.Count - a.Count
	d.Sum = b.Sum - a.Sum
	for i := range d.Buckets {
		d.Buckets[i] = b.Buckets[i] - a.Buckets[i]
	}
	if d.Count <= 0 {
		return 0
	}
	return d.Quantile(q)
}
