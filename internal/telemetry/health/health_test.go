package health

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/telemetry/history"
	"repro/internal/vtime"
)

const ms = vtime.Duration(1e6)

// ruleSet builds a registry carrying one series for every family the
// default rules watch, a history over it, and an engine with the stock
// rules.
type ruleSet struct {
	reg    *telemetry.Registry
	hist   *history.History
	eng    *Engine
	errs   *telemetry.Counter
	reqs   *telemetry.Counter
	faults *telemetry.Counter
	bad    *telemetry.Counter
	rep    *telemetry.Counter
	inline *telemetry.Counter
	debt   *telemetry.Gauge
	outst  *telemetry.Gauge
	lat    *telemetry.Histogram
	serve0 *telemetry.Histogram
	serve1 *telemetry.Histogram
}

func newRuleSet() *ruleSet {
	reg := telemetry.NewRegistry()
	s := &ruleSet{
		reg:    reg,
		errs:   reg.NewCounter("client_errors_total", "test"),
		reqs:   reg.NewCounter("client_requests_total", "test"),
		faults: reg.NewCounter("fault_injections_total", "test"),
		bad:    reg.NewCounter("scrub_blocks_bad_total", "test"),
		rep:    reg.NewCounter("scrub_blocks_repaired_total", "test"),
		inline: reg.NewCounter("core_dp_inline_total", "test"),
		debt:   reg.NewGauge("rekey_pacer_debt_ns", "test"),
		outst:  reg.NewGauge("msgr_outstanding_requests", "test"),
		lat:    reg.NewHistogram("fio_op_vtime", "test"),
	}
	sv := reg.NewHistogramVec("osd_serve_vtime", "test", "osd")
	s.serve0, s.serve1 = sv.With("0"), sv.With("1")
	s.hist = history.New(reg, 8)
	s.eng = NewEngine(s.hist, DefaultRules(0))
	return s
}

func verdictOf(rep Report, name string) Verdict {
	for _, v := range rep.Verdicts {
		if v.Rule == name {
			return v
		}
	}
	return Verdict{Rule: "missing:" + name}
}

// TestDefaultRulesFire drives every default rule across one degraded
// window and checks the verdicts individually, then clears the causes
// and checks the engine goes healthy again.
func TestDefaultRulesFire(t *testing.T) {
	s := newRuleSet()

	// With a single sample no window exists: everything is healthy.
	s.hist.Record(0)
	if rep := s.eng.Eval(0); rep.Status != Healthy {
		t.Fatalf("empty history evaluated %v, want healthy:\n%s", rep.Status, rep)
	}

	// One bad 100 ms window: errors, faults, slow ops, stuck pacer debt,
	// unrepaired scrub findings, a saturated datapath queue, wire
	// backpressure, and osd 1 silent while clients are active.
	s.reqs.Add(100)
	s.errs.Add(50)
	s.faults.Add(20)
	s.bad.Add(3)
	s.inline.Add(50) // 500/s over the 100 ms window, ceiling is 100/s
	s.debt.Set(200 * 1e6)
	s.outst.Set(5000) // ceiling is 4096 in flight
	for i := 0; i < 100; i++ {
		s.lat.Observe(30 * ms) // p99 ceiling is 20 ms
		s.serve0.Observe(1 * ms)
	}
	s.hist.Record(vtime.Time(100 * 1e6))
	rep := s.eng.Eval(vtime.Time(100 * 1e6))

	if rep.Status != Critical {
		t.Fatalf("degraded window evaluated %v, want critical:\n%s", rep.Status, rep)
	}
	for _, want := range []struct {
		rule     string
		severity Status
	}{
		{"foreground-p99", Degraded},
		{"client-error-rate", Degraded},
		{"fault-injection-rate", Degraded},
		{"scrub-findings-outstanding", Critical},
		{"rekey-pacer-debt-growth", Degraded},
		{"osd-silence", Critical},
		{"datapath-queue-saturation", Degraded},
		{"msgr-outstanding-high", Degraded},
	} {
		v := verdictOf(rep, want.rule)
		if !v.Firing || v.Severity != want.severity {
			t.Errorf("rule %s: firing=%v severity=%v, want firing at %v\n%s",
				want.rule, v.Firing, v.Severity, want.severity, rep)
		}
	}
	if v := verdictOf(rep, "flatten-pacer-debt-growth"); v.Firing {
		t.Errorf("flatten-pacer-debt-growth fired with no flatten series:\n%s", rep)
	}
	if v := verdictOf(rep, "osd-silence"); !strings.Contains(v.Detail, `osd="1"`) {
		t.Errorf("osd-silence detail does not name the silent OSD: %q", v.Detail)
	}

	// Clear the causes over the next window: repairs catch up, debt
	// drains, the datapath queue and wire drain, both OSDs serve, ops
	// run fast, no new errors or faults.
	s.reqs.Add(100)
	s.rep.Add(3)
	s.debt.Set(0)
	s.outst.Set(0)
	for i := 0; i < 100; i++ {
		s.lat.Observe(1 * ms)
		s.serve0.Observe(1 * ms)
		s.serve1.Observe(1 * ms)
	}
	s.hist.Record(vtime.Time(200 * 1e6))
	rep = s.eng.Eval(vtime.Time(200 * 1e6))
	if rep.Status != Healthy {
		t.Fatalf("recovered window evaluated %v, want healthy:\n%s", rep.Status, rep)
	}
	if got := len(rep.Firing()); got != 0 {
		t.Fatalf("%d rules still firing after recovery:\n%s", got, rep)
	}
}

// TestSilentWhileNeedsLoad pins the baseline gate: an idle cluster is
// not an OSD failure, so osd-silence must stay quiet when clients are
// quiet too.
func TestSilentWhileNeedsLoad(t *testing.T) {
	s := newRuleSet()
	s.hist.Record(0)
	// Nothing moves at all over the window.
	s.hist.Record(vtime.Time(100 * 1e6))
	rep := s.eng.Eval(vtime.Time(100 * 1e6))
	if v := verdictOf(rep, "osd-silence"); v.Firing {
		t.Fatalf("osd-silence fired on an idle cluster:\n%s", rep)
	}
}

// TestReportRendering covers the human surfaces rbdctl prints.
func TestReportRendering(t *testing.T) {
	s := newRuleSet()
	s.hist.Record(0)
	s.errs.Add(10)
	s.reqs.Add(10)
	s.serve0.Observe(1 * ms)
	s.serve1.Observe(1 * ms)
	s.hist.Record(vtime.Time(100 * 1e6))
	rep := s.eng.Eval(vtime.Time(100 * 1e6))
	out := rep.String()
	if !strings.Contains(out, "health: degraded") {
		t.Errorf("report header missing status: %q", out)
	}
	if !strings.Contains(out, "client-error-rate") || !strings.Contains(out, "threshold=") {
		t.Errorf("report missing verdict rows: %q", out)
	}
}

// TestMonitor covers the bundled Observe/Report surface and its meta
// telemetry.
func TestMonitor(t *testing.T) {
	reg := telemetry.NewRegistry()
	errs := reg.NewCounter("client_errors_total", "test")
	m := NewMonitor(reg, 0, nil)
	before := mEvals.Value()
	m.Observe(0)
	errs.Add(5)
	rep := m.Report(vtime.Time(100 * 1e6))
	if rep.Status != Healthy {
		// Only one sample windowed queries see nothing yet; Report's own
		// snapshotless eval must not fire.
		t.Fatalf("monitor with one sample evaluated %v:\n%s", rep.Status, rep)
	}
	m.Observe(vtime.Time(100 * 1e6))
	rep = m.Report(vtime.Time(100 * 1e6))
	if v := verdictOf(rep, "client-error-rate"); !v.Firing {
		t.Fatalf("client-error-rate did not fire through Monitor:\n%s", rep)
	}
	if mEvals.Value() != before+2 {
		t.Errorf("health_evals_total moved %d, want 2", mEvals.Value()-before)
	}
	if m.History().Samples() != 2 {
		t.Errorf("monitor recorded %d samples, want 2", m.History().Samples())
	}
}
