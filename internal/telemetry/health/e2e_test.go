package health_test

// e2e_test.go: the health-plane acceptance loop — red under chaos,
// green after repair. An armed network fault plan under an fio workload
// must flip overall health to degraded with the fault-rate, error-rate
// and p99 rules firing; disarming, repairing planted ciphertext rot
// with a scrub sweep, and running clean again must return the verdict
// to healthy — with the per-OSD-labelled series moving and the event
// journal carrying the whole story. CI's chaos job runs this test.

import (
	"errors"
	"testing"
	"time"

	"repro"
	"repro/internal/fault"
	"repro/internal/fio"
	"repro/internal/rados"
	"repro/internal/telemetry"
	"repro/internal/telemetry/health"
	"repro/internal/vtime"
)

const (
	healthSpan = 2 << 20
	healthBS   = int64(4096)
	healthObj  = int64(1 << 20) // facade striping
)

func firingNames(rep health.Report) map[string]bool {
	names := map[string]bool{}
	for _, v := range rep.Firing() {
		names[v.Rule] = true
	}
	return names
}

func TestHealthChaosRedGreen(t *testing.T) {
	cluster, err := repro.NewCluster(repro.TestClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	client := cluster.NewClient("health-e2e")

	img, err := repro.CreateEncryptedImage(client, "rbd", "hvol", 8<<20,
		[]byte("pass"), repro.Options{Scheme: repro.SchemeGCM, Layout: repro.LayoutObjectEnd})
	if err != nil {
		t.Fatal(err)
	}

	mon := repro.NewHealthMonitor(0)
	v := fio.NewVerifier(img, healthBS)
	v.Tolerate = func(err error) bool { return errors.Is(err, fault.ErrInjected) }

	now, err := fio.Precondition(v, healthSpan, healthBS, 0)
	if err != nil {
		t.Fatal(err)
	}
	mon.Observe(now)

	// Red phase: network chaos under load. Delayed replies are sized
	// well past the foreground p99 ceiling so the latency rule fires
	// alongside the fault- and error-rate rules.
	plan := repro.NewFaultPlan(7, repro.FaultConfig{
		Prob: map[fault.Kind]float64{
			fault.DropReply:  0.05,
			fault.DelayReply: 0.08,
			fault.ConnReset:  0.03,
		},
		Delay: 30 * time.Millisecond,
	})
	cluster.ArmFaults(plan)
	for _, pat := range []fio.Pattern{fio.RandWrite, fio.RandRead} {
		res, err := fio.Run(fio.Spec{Pattern: pat, BlockSize: healthBS, QueueDepth: 4,
			Span: healthSpan, TotalOps: 400, Seed: 7}, v, now)
		if err != nil {
			t.Fatalf("%v under faults aborted: %v", pat, err)
		}
		now = res.End
	}
	if v.Stats().InjectedErrors == 0 {
		t.Fatal("fault plan never fired; the red phase tested nothing")
	}

	mon.Observe(now)
	red := mon.Report(now)
	t.Logf("red verdict:\n%s", red)
	if red.Status == health.Healthy {
		t.Fatalf("health stayed %v under an armed fault plan:\n%s", red.Status, red)
	}
	firing := firingNames(red)
	for _, rule := range []string{"fault-injection-rate", "client-error-rate", "foreground-p99"} {
		if !firing[rule] {
			t.Errorf("rule %s did not fire in the red phase:\n%s", rule, red)
		}
	}

	// Green phase: disarm, plant ciphertext rot on two primary copies
	// (seed-replayable positions), repair it with a scrub sweep, then
	// run clean long enough that the health window sees only the
	// recovered cluster.
	cluster.ArmFaults(nil)
	in := plan.Injector("health/rot")
	planted := map[[2]int64]bool{}
	for len(planted) < 2 {
		obj := int64(in.Intn(int(healthSpan / healthObj)))
		blk := int64(in.Intn(int(healthObj / healthBS)))
		if planted[[2]int64{obj, blk}] {
			continue
		}
		planted[[2]int64{obj, blk}] = true
		plantRot(t, img, obj, blk)
	}

	s, err := repro.StartScrub(img)
	if err != nil {
		t.Fatal(err)
	}
	now, err = s.Run(now)
	if err != nil {
		t.Fatal(err)
	}
	prog := s.Progress()
	if prog.Found < int64(len(planted)) || prog.Repaired != prog.Found {
		t.Fatalf("scrub found=%d repaired=%d, want >=%d found and all repaired",
			prog.Found, prog.Repaired, len(planted))
	}

	greenStart := now
	mon.Observe(greenStart)
	for now.Sub(greenStart) < health.DefaultWindow+50*vtime.Duration(1e6) {
		res, err := fio.Run(fio.Spec{Pattern: fio.RandWrite, BlockSize: healthBS, QueueDepth: 4,
			Span: healthSpan, TotalOps: 200, Seed: 11}, v, now)
		if err != nil {
			t.Fatalf("clean workload aborted: %v", err)
		}
		now = res.End
	}
	mon.Observe(now)
	green := mon.Report(now)
	t.Logf("green verdict:\n%s", green)
	if green.Status != health.Healthy {
		t.Fatalf("health still %v after disarm + scrub repair:\n%s", green.Status, green)
	}
	if s := v.Stats(); s.GarbageBlocks != 0 {
		t.Fatalf("silent garbage during the health loop: %v", s)
	}

	// The per-OSD series moved inside the final window: every OSD's
	// device write counters advanced under the replicated clean load.
	hist := mon.History()
	window := now.Sub(greenStart)
	moving := 0
	hist.EachDelta("device_write_ops_total", window, func(labels string, delta int64, ok bool) {
		if ok && delta > 0 {
			moving++
		}
	})
	if moving < 3 {
		t.Errorf("only %d per-OSD device_write_ops_total series moved in the green window, want 3", moving)
	}

	// The event journal carries the whole story: faults fired in the
	// red phase, the scrub ran to completion, and the repair landed.
	counts := map[telemetry.EventKind]int64{}
	for _, k := range []telemetry.EventKind{
		telemetry.EventFaultFired, telemetry.EventScrubStart,
		telemetry.EventScrubFinish, telemetry.EventRepairDone,
	} {
		counts[k] = telemetry.Log.Count(k)
	}
	for k, n := range counts {
		if n == 0 {
			t.Errorf("event journal recorded no %v events", k)
		}
	}
}

// plantRot overwrites one block's ciphertext on the primary copy of an
// object — the single-copy damage replica repair exists for.
func plantRot(t *testing.T, img *repro.EncryptedImage, objIdx, block int64) {
	t.Helper()
	garbage := make([]byte, healthBS)
	for i := range garbage {
		garbage[i] = byte(0xA5 ^ i)
	}
	primary := img.Image().Replicas(objIdx)[0]
	res, _, err := img.Image().OperateOn(0, primary, objIdx, 0,
		[]rados.Op{{Kind: rados.OpWrite, Off: block * healthBS, Data: garbage}})
	if err != nil {
		t.Fatalf("plant rot on osd%d obj %d: %v", primary, objIdx, err)
	}
	for _, r := range res {
		if err := r.Status.Err(); err != nil {
			t.Fatalf("plant rot on osd%d obj %d: %v", primary, objIdx, err)
		}
	}
}
