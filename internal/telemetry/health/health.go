// Package health is the declarative SLO/health engine: rules evaluated
// over the history ring's windowed queries, producing one verdict per
// rule plus an overall cluster status. Rules are data, not code — a
// rule names a metric family, a window, a threshold and a severity, and
// the engine computes the rest — so the default rule set (foreground
// p99 ceiling, client-error and fault-injection rates, scrub findings
// outstanding, pacer debt growth, OSD silence) is just a slice literal
// the caller can replace or extend.
//
// Evaluation is a monitoring-path operation, not a datapath one: it
// walks the history under its lock and formats verdict details, so it
// may allocate. The recording side it depends on (history.Record,
// Journal.Append) stays alloc-free.
package health

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/telemetry"
	"repro/internal/telemetry/history"
	"repro/internal/vtime"
)

// Status is an overall or per-rule health level, ordered by severity.
type Status int

// Status levels. A firing rule raises the overall status to at least
// its severity; Healthy means no rule fired.
const (
	Healthy Status = iota
	Degraded
	Critical
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// RuleKind enumerates the rule grammar: what the engine computes from
// the history before comparing against the threshold.
type RuleKind int

const (
	// RateAbove fires when the family's summed per-virtual-second rate
	// over the window exceeds Threshold.
	RateAbove RuleKind = iota
	// DeltaAbove fires when the family's summed windowed delta exceeds
	// Threshold.
	DeltaAbove
	// QuantileAbove fires when the q-quantile of the family's
	// observations inside the window (histogram-delta, merged across
	// series) exceeds Threshold virtual nanoseconds.
	QuantileAbove
	// GaugeAbove fires when any series of the family currently exceeds
	// Threshold.
	GaugeAbove
	// GaugeGrowth fires when any series of the family grew by more than
	// Threshold over the window (pacer debt creep).
	GaugeGrowth
	// OutstandingAbove fires when the family's live total minus the
	// Baseline family's live total exceeds Threshold (found minus
	// repaired).
	OutstandingAbove
	// SilentWhile fires when some series of the family recorded no
	// movement over the window while the Baseline family's summed delta
	// was positive (an OSD gone quiet under client load).
	SilentWhile
)

// Rule is one declarative health check.
type Rule struct {
	Name      string         // verdict key, stable across evals
	Kind      RuleKind       //
	Family    string         // subject metric family
	Baseline  string         // second family: OutstandingAbove subtrahend, SilentWhile activity witness
	Q         float64        // quantile for QuantileAbove
	Window    vtime.Duration // query window for windowed kinds
	Threshold float64        // rate: per virtual second; quantile/gauge: value units; delta: count
	Severity  Status         // status contributed when firing
}

// Verdict is one rule's evaluation result.
type Verdict struct {
	Rule      string
	Firing    bool
	Severity  Status
	Value     float64
	Threshold float64
	Detail    string
}

// String renders one verdict table row.
func (v Verdict) String() string {
	state := "ok"
	if v.Firing {
		state = v.Severity.String()
	}
	s := fmt.Sprintf("%-28s %-9s value=%.6g threshold=%.6g", v.Rule, state, v.Value, v.Threshold)
	if v.Detail != "" {
		s += " (" + v.Detail + ")"
	}
	return s
}

// Report is one full evaluation: the overall status plus every rule's
// verdict in rule order.
type Report struct {
	At       vtime.Time
	Status   Status
	Verdicts []Verdict
}

// Firing returns the verdicts that fired.
func (r Report) Firing() []Verdict {
	var out []Verdict
	for _, v := range r.Verdicts {
		if v.Firing {
			out = append(out, v)
		}
	}
	return out
}

// String renders the verdict table with the overall status on top.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "health: %s (t=%d)\n", r.Status, int64(r.At))
	for _, v := range r.Verdicts {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Engine meta-telemetry, registered in the Default registry (shared by
// every engine in the process; the most recent Eval wins the gauges).
var (
	mStatus = telemetry.NewGauge("health_status", "overall health from the last evaluation (0 healthy, 1 degraded, 2 critical)")
	mFiring = telemetry.NewGauge("health_rules_firing", "rules firing in the last evaluation")
	mEvals  = telemetry.NewCounter("health_evals_total", "health rule evaluations")
)

// Engine evaluates a rule set over a history ring.
type Engine struct {
	hist  *history.History
	rules []Rule
}

// NewEngine builds an engine over h with the given rules.
func NewEngine(h *history.History, rules []Rule) *Engine {
	return &Engine{hist: h, rules: rules}
}

// Rules returns the engine's rule set.
func (e *Engine) Rules() []Rule { return e.rules }

// Eval evaluates every rule against the history as of at.
func (e *Engine) Eval(at vtime.Time) Report {
	rep := Report{At: at, Verdicts: make([]Verdict, 0, len(e.rules))}
	for _, r := range e.rules {
		v := e.eval(r)
		if v.Firing && v.Severity > rep.Status {
			rep.Status = v.Severity
		}
		rep.Verdicts = append(rep.Verdicts, v)
	}
	mStatus.Set(int64(rep.Status))
	mFiring.Set(int64(len(rep.Firing())))
	mEvals.Inc()
	return rep
}

func (e *Engine) eval(r Rule) Verdict {
	v := Verdict{Rule: r.Name, Severity: r.Severity, Threshold: r.Threshold}
	h := e.hist
	switch r.Kind {
	case RateAbove:
		v.Value = h.RateSum(r.Family, r.Window)
		v.Detail = fmt.Sprintf("%s/s over %v", r.Family, r.Window)
	case DeltaAbove:
		v.Value = float64(h.DeltaSum(r.Family, r.Window))
		v.Detail = fmt.Sprintf("Δ%s over %v", r.Family, r.Window)
	case QuantileAbove:
		v.Value = float64(h.QuantileOver(r.Family, r.Q, r.Window))
		v.Detail = fmt.Sprintf("p%g(%s) over %v", r.Q*100, r.Family, r.Window)
	case GaugeAbove:
		v.Value = float64(h.GaugeMax(r.Family))
		v.Detail = fmt.Sprintf("max %s", r.Family)
	case GaugeGrowth:
		v.Value = float64(h.DeltaMax(r.Family, r.Window))
		v.Detail = fmt.Sprintf("max Δ%s over %v", r.Family, r.Window)
	case OutstandingAbove:
		v.Value = float64(h.LastSum(r.Family) - h.LastSum(r.Baseline))
		v.Detail = fmt.Sprintf("%s - %s", r.Family, r.Baseline)
	case SilentWhile:
		if h.DeltaSum(r.Baseline, r.Window) <= 0 {
			v.Detail = fmt.Sprintf("%s idle over %v", r.Baseline, r.Window)
			return v
		}
		var silent []string
		h.EachDelta(r.Family, r.Window, func(labels string, delta int64, ok bool) {
			if ok && delta == 0 {
				silent = append(silent, labels)
			}
		})
		v.Value = float64(len(silent))
		if len(silent) > 0 {
			v.Detail = fmt.Sprintf("silent under load: %s", strings.Join(silent, " "))
		} else {
			v.Detail = fmt.Sprintf("all %s series moving", r.Family)
		}
		v.Firing = v.Value > r.Threshold
		return v
	}
	v.Firing = v.Value > r.Threshold
	return v
}

// DefaultWindow is the query window the default rule set evaluates
// over: 100 ms of virtual time, a few thousand ops at the paper's
// simulated service times.
const DefaultWindow = vtime.Duration(100 * 1e6)

// DefaultRules is the stock cluster rule set over window w
// (DefaultWindow when w <= 0).
func DefaultRules(w vtime.Duration) []Rule {
	if w <= 0 {
		w = DefaultWindow
	}
	return []Rule{
		// Foreground latency: p99 of the fio op histogram inside the
		// window must stay under 20 ms virtual.
		{Name: "foreground-p99", Kind: QuantileAbove, Family: "fio_op_vtime",
			Q: 0.99, Window: w, Threshold: 20 * 1e6, Severity: Degraded},
		// Client-visible errors are never routine.
		{Name: "client-error-rate", Kind: RateAbove, Family: "client_errors_total",
			Window: w, Threshold: 1, Severity: Degraded},
		// Injected faults firing means a chaos plan (or a real failure
		// domain) is active.
		{Name: "fault-injection-rate", Kind: RateAbove, Family: "fault_injections_total",
			Window: w, Threshold: 1, Severity: Degraded},
		// Scrub found corruption it has not repaired yet.
		{Name: "scrub-findings-outstanding", Kind: OutstandingAbove, Family: "scrub_blocks_bad_total",
			Baseline: "scrub_blocks_repaired_total", Threshold: 0, Severity: Critical},
		// Background walkers accumulating pacer debt faster than they
		// drain it will starve or stampede.
		{Name: "rekey-pacer-debt-growth", Kind: GaugeGrowth, Family: "rekey_pacer_debt_ns",
			Window: w, Threshold: 100 * 1e6, Severity: Degraded},
		{Name: "flatten-pacer-debt-growth", Kind: GaugeGrowth, Family: "flatten_pacer_debt_ns",
			Window: w, Threshold: 100 * 1e6, Severity: Degraded},
		{Name: "scrub-pacer-debt-growth", Kind: GaugeGrowth, Family: "scrub_pacer_debt_ns",
			Window: w, Threshold: 100 * 1e6, Severity: Degraded},
		// An OSD serving nothing while clients are active is down or
		// partitioned.
		{Name: "osd-silence", Kind: SilentWhile, Family: "osd_serve_vtime",
			Baseline: "client_requests_total", Window: w, Threshold: 0, Severity: Critical},
		// Why-signals from the attribution plane. Sustained datapath
		// pool saturation: chunks degrading to inline execution because
		// the queue is full (core_dp_inline_total counts them).
		{Name: "datapath-queue-saturation", Kind: RateAbove, Family: "core_dp_inline_total",
			Window: w, Threshold: 100, Severity: Degraded},
		// Wire backpressure: an outsized in-flight request population
		// means the cluster is absorbing far more concurrency than the
		// simulated hardware can drain.
		{Name: "msgr-outstanding-high", Kind: GaugeAbove, Family: "msgr_outstanding_requests",
			Threshold: 4096, Severity: Degraded},
	}
}

// Monitor bundles a history ring with an engine behind the two calls
// the surfaces need: Observe (refresh + record a snapshot) and Report
// (evaluate). Safe for concurrent use.
type Monitor struct {
	mu   sync.Mutex
	hist *history.History
	eng  *Engine
}

// NewMonitor builds a monitor over reg with the given ring capacity and
// rules (DefaultRules(0) when rules is nil).
func NewMonitor(reg *telemetry.Registry, slots int, rules []Rule) *Monitor {
	if rules == nil {
		rules = DefaultRules(0)
	}
	h := history.New(reg, slots)
	return &Monitor{hist: h, eng: NewEngine(h, rules)}
}

// Observe picks up newly registered series and records one snapshot at
// virtual time at.
func (m *Monitor) Observe(at vtime.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hist.Refresh()
	m.hist.Record(at)
}

// Report evaluates the rule set as of at.
func (m *Monitor) Report(at vtime.Time) Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eng.Eval(at)
}

// History exposes the underlying ring (rbdctl top reads windowed
// queries straight off it).
func (m *Monitor) History() *history.History { return m.hist }
