package telemetry

import (
	"strings"
	"testing"

	"repro/internal/vtime"
)

// TestTelemetryAllocBudget is the zero-overhead contract: every
// hot-path recording operation — counter add, gauge set, histogram
// observe, and a full span start/hop/finish cycle — performs zero heap
// allocations. Setup (registration, label resolution) may allocate;
// instrumented packages do it once and hold the handles.
func TestTelemetryAllocBudget(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("t_counter", "test")
	g := reg.NewGauge("t_gauge", "test")
	h := reg.NewHistogram("t_hist", "test")
	cv := reg.NewCounterVec("t_counter_vec", "test", "op").With("read")
	tr := NewTracer(reg, 1, 1e6)

	cases := []struct {
		name string
		fn   func()
	}{
		{"counter-add", func() { c.Add(3) }},
		{"counter-inc", func() { c.Inc() }},
		{"counter-vec-add", func() { cv.Add(1) }},
		{"gauge-set", func() { g.Set(42) }},
		{"gauge-dur", func() { g.SetDuration(5e6) }},
		{"hist-observe", func() { h.Observe(1500) }},
		{"span-cycle", func() {
			sp := tr.Start("write", "rbd/obj.0", 4096, 0)
			sp.Hop("msgr:req", 0, 10)
			sp.Hop("osd:serve", 10, 90)
			sp.Hop("msgr:resp", 90, 100)
			sp.Finish(100)
		}},
		{"span-unsampled", func() {
			// A nil span (unsampled op) must be free too.
			var sp *Span
			sp.Hop("x", 0, 1)
			sp.Finish(1)
		}},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op on the record path, want 0", tc.name, allocs)
		}
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("c", "x")
	c.Add(5)
	c.Inc()
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	g := reg.NewGauge("g", "x")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
	// Idempotent registration returns the same series.
	if reg.NewCounter("c", "x") != c {
		t.Fatal("re-registration returned a different counter")
	}
}

func TestVecWithReturnsSameSeries(t *testing.T) {
	reg := NewRegistry()
	v := reg.NewCounterVec("ops", "x", "op")
	a, b := v.With("read"), v.With("read")
	if a != b {
		t.Fatal("With(same labels) returned different series")
	}
	w := v.With("write")
	a.Add(2)
	w.Add(5)
	if a.Value() != 2 || w.Value() != 5 {
		t.Fatalf("series not independent: read=%d write=%d", a.Value(), w.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewHistogram("lat", "x")
	// 90 fast ops (~2 µs) and 10 slow ops (~1 ms).
	for i := 0; i < 90; i++ {
		h.Observe(2_000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if want := vtime.Duration(90*2_000 + 10*1_000_000); s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	if p50 := s.Quantile(0.50); p50 > 10_000 {
		t.Errorf("p50 = %v, want a fast-bucket bound", p50)
	}
	// p99 must land in (or above) the slow cohort's bucket.
	if p99 := s.Quantile(0.99); p99 < 1_000_000 {
		t.Errorf("p99 = %v, want >= 1ms", p99)
	}
	if m := s.Mean(); m < 90_000 || m > 150_000 {
		t.Errorf("mean = %v, want ~101.8µs", m)
	}
}

func TestHistogramBucketMonotone(t *testing.T) {
	last := -1
	for d := vtime.Duration(0); d < 1<<40; d = d*2 + 1 {
		i := bucketIdx(d)
		if i < last {
			t.Fatalf("bucketIdx not monotone at %v: %d < %d", d, i, last)
		}
		if d <= BucketBound(i) == false {
			t.Fatalf("d=%v above its bucket bound %v", d, BucketBound(i))
		}
		last = i
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounterVec("client_ops_total", "ops by kind", "op").With("read").Add(7)
	reg.NewGauge("rekey_objects_done", "progress").Set(3)
	reg.NewHistogram("client_request_vtime", "latency").Observe(5_000)

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE client_ops_total counter",
		`client_ops_total{op="read"} 7`,
		"# TYPE rekey_objects_done gauge",
		"rekey_objects_done 3",
		"# TYPE client_request_vtime histogram",
		`client_request_vtime_bucket{le="+Inf"} 1`,
		"client_request_vtime_sum 5e-06",
		"client_request_vtime_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestTracerRingsAndSlowLog(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 1, 500) // slow threshold 500ns virtual
	for i := 0; i < recentSpans+5; i++ {
		sp := tr.Start("op", "t", 1, vtime.Time(i))
		if sp == nil {
			t.Fatal("span not sampled at every=1")
		}
		dur := vtime.Duration(100)
		if i%10 == 0 {
			dur = 1000 // slow
		}
		sp.Hop("hop", vtime.Time(i), vtime.Time(i).Add(dur))
		sp.Finish(vtime.Time(i).Add(dur))
	}
	recent := tr.Recent()
	if len(recent) != recentSpans {
		t.Fatalf("recent ring has %d, want %d", len(recent), recentSpans)
	}
	// Newest span end first: the slow span at i=60 ends at 1060, after
	// every plain 100ns span — it leads despite being claimed earlier.
	if recent[0].Start != vtime.Time(60) {
		t.Fatalf("recent[0].Start = %d, want 60 (latest End leads)", recent[0].Start)
	}
	for i := 1; i < len(recent); i++ {
		if recent[i].End > recent[i-1].End {
			t.Fatalf("recent not sorted by End desc at %d: %d after %d", i, recent[i].End, recent[i-1].End)
		}
	}
	slow := tr.Slow()
	if len(slow) == 0 {
		t.Fatal("no slow spans retained")
	}
	for _, r := range slow {
		if r.Duration() < 500 {
			t.Fatalf("fast span %v in slow log", r.Duration())
		}
	}
	if tr.started.Value() != int64(recentSpans+5) || tr.finished.Value() != int64(recentSpans+5) {
		t.Fatalf("span accounting: started=%d finished=%d", tr.started.Value(), tr.finished.Value())
	}
}

func TestTracerSampling(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 4, 1e9)
	sampled := 0
	for i := 0; i < 100; i++ {
		sp := tr.Start("op", "t", 0, 0)
		if sp == nil {
			t.Fatal("every op claims a span; nil means pool exhaustion")
		}
		if sp.Sampled() {
			if sp.TraceID() == 0 {
				t.Fatal("sampled span without a wire trace id")
			}
			sampled++
		} else if sp.TraceID() != 0 {
			t.Fatal("unsampled span must stay wire-invisible (TraceID 0)")
		}
		sp.Finish(1)
	}
	if sampled != 25 {
		t.Fatalf("sampled %d of 100 at every=4", sampled)
	}
	// Fast unsampled spans take neither ring.
	if got := len(tr.Recent()); got != 25 {
		t.Fatalf("recent ring has %d, want 25 sampled", got)
	}
}

func TestSpanRecordString(t *testing.T) {
	r := SpanRecord{Op: "write", Target: "rbd/x", Bytes: 4096, Start: 0, End: 150, NHops: 2}
	r.Hops[0] = Hop{Name: "msgr:req", Start: 0, End: 30}
	r.Hops[1] = Hop{Name: "osd:serve", Start: 30, End: 140}
	s := r.String()
	for _, want := range []string{"write", "rbd/x", "4096B", "msgr:req", "osd:serve"} {
		if !strings.Contains(s, want) {
			t.Errorf("span string missing %q: %s", want, s)
		}
	}
}
