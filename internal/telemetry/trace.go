package telemetry

// trace.go is the per-op tracing half of the telemetry layer: a Span is
// started at the client (rados.Client.Operate), rides the typed request
// through the msgr dispatch, the OSD serve path and primary-copy
// replication, and records one (name, vtime start, vtime end) hop per
// layer. Every op claims a span slot from a fixed pool (zero-alloc),
// but only every Nth op is *sampled* — given a wire trace id and
// recorded into the recent-trace ring. Unsampled spans exist for tail
// capture: any span whose duration crosses the slow threshold is
// promoted into the slow-op log regardless of sampling, so slow ops can
// never fall between sampling strides; OSDs promote their own hops onto
// untraced replies by the same threshold (rados osd.go), giving
// promoted spans a full phase breakdown. All Span methods are nil-safe:
// when the pool is exhausted an op carries a nil span and every
// recording call is a no-op, which keeps the instrumentation
// branch-free at the call sites.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/vtime"
)

const (
	// MaxHops bounds the per-span hop list (client, msgr both ways, OSD
	// serve, per-replica serve hops merged off the wire, replicate —
	// with headroom for deeper stacks).
	MaxHops = 12
	// spanSlots is the live-span pool size; claims beyond it drop the
	// span rather than allocate or block.
	spanSlots = 256
	// recentSpans and slowSpans size the finished-trace rings.
	recentSpans = 64
	slowSpans   = 32
)

// Hop is one layer crossing inside a span.
type Hop struct {
	Name       string
	Start, End vtime.Time
}

// SpanRecord is the finished form of a span, value-copied into the
// rings so the slot can be reused immediately. TraceID is the span's
// wire identity: it rides the rados request header so remote serve
// hops (replica OSDs, byte-codec peers) can report their timings back
// and stitch into this one timeline. IDs are minted from the tracer's
// deterministic tick — never from host entropy — so replays assign the
// same ids.
type SpanRecord struct {
	TraceID uint64
	Op      string
	Target  string
	Bytes   int64
	Start   vtime.Time
	End     vtime.Time
	Sampled bool // chosen by the every-Nth stream (TraceID != 0)
	NHops   int
	Hops    [MaxHops]Hop
}

// Duration is the span's virtual wall time.
func (r SpanRecord) Duration() vtime.Duration { return r.End.Sub(r.Start) }

// String renders a one-line summary plus the hop breakdown.
func (r SpanRecord) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %dB %v", r.Op, r.Target, r.Bytes, r.Duration())
	for i := 0; i < r.NHops; i++ {
		h := r.Hops[i]
		fmt.Fprintf(&b, " | %s %v", h.Name, h.End.Sub(h.Start))
	}
	return b.String()
}

// Span is a live trace. Exactly one goroutine touches a span at a time
// — the in-process call chain is synchronous, and the replication
// fan-out clears the forwarded request's span — so its fields need no
// atomics; the slot's busy flag alone hands ownership across claims.
type Span struct {
	busy atomic.Bool
	tr   *Tracer
	rec  SpanRecord
}

// Tracer owns the span pool and the finished-trace rings.
type Tracer struct {
	tick       atomic.Int64
	every      atomic.Int64 // sample every Nth Start; <=1 samples all
	slowThresh atomic.Int64 // virtual ns; spans at/above land in the slow log

	slots [spanSlots]Span

	mu      sync.Mutex
	recent  [recentSpans]SpanRecord
	recentN int64
	slow    [slowSpans]SpanRecord
	slowN   int64

	started  *Counter
	finished *Counter
	slowOps  *Counter
	dropped  *Counter
}

// NewTracer builds a tracer sampling every nth op, with its span
// accounting registered in reg.
func NewTracer(reg *Registry, every int64, slowThresh vtime.Duration) *Tracer {
	t := &Tracer{
		started:  reg.NewCounter("trace_spans_started_total", "trace spans started (every op claims a slot)"),
		finished: reg.NewCounter("trace_spans_finished_total", "trace spans finished"),
		slowOps:  reg.NewCounter("trace_spans_slow_total", "finished spans at or above the slow-op threshold (all captured, sampled or not)"),
		dropped:  reg.NewCounter("trace_spans_dropped_total", "ops dropped because the span pool was exhausted"),
	}
	t.every.Store(every)
	t.slowThresh.Store(int64(slowThresh))
	for i := range t.slots {
		t.slots[i].tr = t
	}
	return t
}

// Ops is the process-wide op tracer: every 64th client op by default,
// with a 10 ms (virtual) slow-op threshold.
var Ops = NewTracer(Default, 64, 10*1e6)

// SetSampleEvery samples every nth Start (n <= 1 samples every op).
func (t *Tracer) SetSampleEvery(n int64) {
	if n < 1 {
		n = 1
	}
	t.every.Store(n)
}

// SetSlowThreshold sets the virtual duration at or above which finished
// spans are retained in the slow-op log.
func (t *Tracer) SetSlowThreshold(d vtime.Duration) { t.slowThresh.Store(int64(d)) }

// SlowThreshold returns the current slow-op threshold. OSDs consult it
// to self-promote their hops onto replies for over-threshold serves
// even when the request carries no trace id (tail capture).
func (t *Tracer) SlowThreshold() vtime.Duration {
	if t == nil {
		return 0
	}
	return vtime.Duration(t.slowThresh.Load())
}

// Start begins a span for one op. Every op claims a slot (tail capture
// needs the timing even off-stride); only sampled ops get a wire trace
// id, so unsampled requests stay byte-identical on the wire. Returns
// nil only when the pool is exhausted. The strings should be static or
// already-retained — they are stored by reference, never copied.
func (t *Tracer) Start(op, target string, bytes int64, at vtime.Time) *Span {
	if t == nil {
		return nil
	}
	n := t.tick.Add(1)
	every := t.every.Load()
	sampled := every <= 1 || n%every == 0
	var id uint64
	if sampled {
		id = uint64(n)
	}
	// Claim a slot with a short bounded probe; contention beyond it
	// means plenty of traces are already in flight — drop this one.
	for i := int64(0); i < 8; i++ {
		s := &t.slots[uint64(n+i)%spanSlots]
		if s.busy.CompareAndSwap(false, true) {
			s.rec = SpanRecord{TraceID: id, Op: op, Target: target, Bytes: bytes, Start: at, Sampled: sampled}
			t.started.Inc()
			return s
		}
	}
	t.dropped.Inc()
	return nil
}

// TraceID returns the span's wire identity, or 0 for a nil (unsampled)
// span — the wire encodes 0 as "untraced".
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.rec.TraceID
}

// Sampled reports whether the span was chosen by the every-Nth stream
// (false for tail-capture-only spans and for nil spans).
func (s *Span) Sampled() bool { return s != nil && s.rec.Sampled }

// Hop records one layer crossing. Nil-safe; hops beyond MaxHops are
// silently dropped.
func (s *Span) Hop(name string, start, end vtime.Time) {
	if s == nil {
		return
	}
	if s.rec.NHops < MaxHops {
		s.rec.Hops[s.rec.NHops] = Hop{Name: name, Start: start, End: end}
		s.rec.NHops++
	}
}

// Finish completes the span at virtual time end. Sampled spans are
// copied into the recent ring; any span at/above the slow threshold —
// sampled or not — is promoted into the slow log (tail capture).
// Unsampled, fast spans take neither ring and skip the mutex entirely,
// so the per-op cost of always claiming stays a CAS pair. Nil-safe.
func (s *Span) Finish(end vtime.Time) {
	if s == nil {
		return
	}
	s.rec.End = end
	t := s.tr
	slow := int64(s.rec.Duration()) >= t.slowThresh.Load()
	if s.rec.Sampled || slow {
		t.mu.Lock()
		if s.rec.Sampled {
			t.recent[t.recentN%recentSpans] = s.rec
			t.recentN++
		}
		if slow {
			t.slow[t.slowN%slowSpans] = s.rec
			t.slowN++
		}
		t.mu.Unlock()
	}
	t.finished.Inc()
	if slow {
		t.slowOps.Inc()
	}
	s.rec = SpanRecord{} // release string references before freeing the slot
	s.busy.Store(false)
}

// Recent returns the finished sampled traces still in the ring, newest
// span end first (claim order interleaves confusingly under
// concurrency).
func (t *Tracer) Recent() []SpanRecord {
	t.mu.Lock()
	out := ringCopy(t.recent[:], t.recentN)
	t.mu.Unlock()
	sortByEnd(out)
	return out
}

// Slow returns the retained slow-op traces, newest span end first.
func (t *Tracer) Slow() []SpanRecord {
	t.mu.Lock()
	out := ringCopy(t.slow[:], t.slowN)
	t.mu.Unlock()
	sortByEnd(out)
	return out
}

// sortByEnd orders records newest-End-first, stably so ring order (the
// claim sequence) breaks ties.
func sortByEnd(recs []SpanRecord) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].End > recs[j].End })
}

// ringCopy extracts a ring's live records newest-first; n is the total
// ever written, ring[ (n-1) % len ] the newest.
func ringCopy(ring []SpanRecord, n int64) []SpanRecord {
	live := n
	if live > int64(len(ring)) {
		live = int64(len(ring))
	}
	out := make([]SpanRecord, 0, live)
	for i := int64(1); i <= live; i++ {
		out = append(out, ring[(n-i)%int64(len(ring))])
	}
	return out
}
