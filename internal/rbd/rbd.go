// Package rbd is the virtual-disk image layer in the role of libRBD
// (§2.4): it stripes a linear block device over fixed-size RADOS objects
// (4 MB by default), carries image metadata in a header object, and
// provides self-managed snapshots. The per-sector-metadata encryption
// layer (internal/core) piggybacks on exactly this mapping, the
// opportunity the paper identifies in virtual disks.
package rbd

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/rados"
	"repro/internal/vtime"
)

// DefaultObjectSize is the striping unit (Ceph default).
const DefaultObjectSize = 4 << 20

var (
	// ErrExists reports that an image name is taken.
	ErrExists = errors.New("rbd: image exists")
	// ErrNotFound reports a missing image or snapshot.
	ErrNotFound = errors.New("rbd: not found")
	// ErrBounds reports IO beyond the image size.
	ErrBounds = errors.New("rbd: out of bounds")
)

// SnapInfo describes one image snapshot.
type SnapInfo struct {
	ID   uint64 `json:"id"`
	Name string `json:"name"`
}

// ParentSpec names the parent snapshot a cloned image reads through
// until it is flattened — the layering pointer of RBD's golden-image
// workflow. The pointer is pure metadata: the child's data objects are
// its own, and blocks absent there fall through to the parent snapshot
// (internal/clone owns that resolution, including the per-layer keys).
type ParentSpec struct {
	Pool     string `json:"pool"`
	Image    string `json:"image"`
	SnapID   uint64 `json:"snap_id"`
	SnapName string `json:"snap_name,omitempty"`
}

// header is the persistent image metadata (the rbd_header object).
type header struct {
	Size       int64       `json:"size"`
	ObjectSize int64       `json:"object_size"`
	SnapSeq    uint64      `json:"snap_seq"`
	Snaps      []SnapInfo  `json:"snaps"`
	Encryption []byte      `json:"encryption,omitempty"` // LUKS container blob
	Parent     *ParentSpec `json:"parent,omitempty"`     // clone layering pointer
}

// Image is an open image handle. All methods are safe for concurrent use.
type Image struct {
	client *rados.Client
	pool   string
	name   string

	mu  sync.Mutex
	hdr header
}

func headerObject(name string) string { return "rbd_header." + name }

func dataObject(name string, idx int64) string {
	return fmt.Sprintf("rbd_data.%s.%016x", name, idx)
}

const headerAttr = "rbd.header"

// Create makes a new image of the given size.
func Create(at vtime.Time, client *rados.Client, pool, name string, size int64) (vtime.Time, error) {
	return CreateWithObjectSize(at, client, pool, name, size, DefaultObjectSize)
}

// CreateWithObjectSize makes a new image with a custom striping unit.
func CreateWithObjectSize(at vtime.Time, client *rados.Client, pool, name string, size, objectSize int64) (vtime.Time, error) {
	if size <= 0 || objectSize <= 0 || objectSize%4096 != 0 {
		return at, fmt.Errorf("rbd: bad geometry size=%d objectSize=%d", size, objectSize)
	}
	// Refuse to clobber an existing image.
	res, _, err := client.Operate(at, pool, headerObject(name), rados.SnapContext{}, 0,
		[]rados.Op{{Kind: rados.OpGetAttr, Key: []byte(headerAttr)}})
	if err == nil && res[0].Status == rados.StatusOK {
		return at, fmt.Errorf("%w: %s/%s", ErrExists, pool, name)
	}
	hdr := header{Size: size, ObjectSize: objectSize}
	return writeHeader(at, client, pool, name, &hdr)
}

func writeHeader(at vtime.Time, client *rados.Client, pool, name string, hdr *header) (vtime.Time, error) {
	blob, err := json.Marshal(hdr)
	if err != nil {
		return at, err
	}
	res, end, err := client.Operate(at, pool, headerObject(name), rados.SnapContext{}, 0,
		[]rados.Op{{Kind: rados.OpSetAttr, Key: []byte(headerAttr), Data: blob}})
	if err != nil {
		return at, err
	}
	return end, res[0].Status.Err()
}

// Open loads an image handle.
func Open(at vtime.Time, client *rados.Client, pool, name string) (*Image, vtime.Time, error) {
	res, end, err := client.Operate(at, pool, headerObject(name), rados.SnapContext{}, 0,
		[]rados.Op{{Kind: rados.OpGetAttr, Key: []byte(headerAttr)}})
	if err != nil {
		if errors.Is(err, rados.ErrNotFound) {
			return nil, at, fmt.Errorf("%w: image %s/%s", ErrNotFound, pool, name)
		}
		return nil, at, err
	}
	if res[0].Status != rados.StatusOK {
		return nil, at, fmt.Errorf("%w: image %s/%s", ErrNotFound, pool, name)
	}
	img := &Image{client: client, pool: pool, name: name}
	if err := json.Unmarshal(res[0].Data, &img.hdr); err != nil {
		return nil, at, fmt.Errorf("rbd: corrupt header: %v", err)
	}
	return img, end, nil
}

// Name returns the image name.
func (img *Image) Name() string { return img.name }

// Pool returns the pool the image lives in.
func (img *Image) Pool() string { return img.pool }

// Size returns the image size in bytes.
func (img *Image) Size() int64 {
	img.mu.Lock()
	defer img.mu.Unlock()
	return img.hdr.Size
}

// ObjectSize returns the striping unit.
func (img *Image) ObjectSize() int64 {
	img.mu.Lock()
	defer img.mu.Unlock()
	return img.hdr.ObjectSize
}

// SnapContext returns the current write snap context.
func (img *Image) SnapContext() rados.SnapContext {
	img.mu.Lock()
	defer img.mu.Unlock()
	return rados.SnapContext{Seq: img.hdr.SnapSeq}
}

// Snaps lists the image snapshots.
func (img *Image) Snaps() []SnapInfo {
	img.mu.Lock()
	defer img.mu.Unlock()
	return append([]SnapInfo(nil), img.hdr.Snaps...)
}

// SnapID resolves a snapshot name.
func (img *Image) SnapID(name string) (uint64, error) {
	img.mu.Lock()
	defer img.mu.Unlock()
	for _, s := range img.hdr.Snaps {
		if s.Name == name {
			return s.ID, nil
		}
	}
	return 0, fmt.Errorf("%w: snapshot %q", ErrNotFound, name)
}

// CreateSnap takes a snapshot: it bumps the snap sequence and persists the
// header, so later writes trigger clone-on-write at the OSDs.
func (img *Image) CreateSnap(at vtime.Time, name string) (uint64, vtime.Time, error) {
	img.mu.Lock()
	for _, s := range img.hdr.Snaps {
		if s.Name == name {
			img.mu.Unlock()
			return 0, at, fmt.Errorf("%w: snapshot %q", ErrExists, name)
		}
	}
	img.hdr.SnapSeq++
	id := img.hdr.SnapSeq
	img.hdr.Snaps = append(img.hdr.Snaps, SnapInfo{ID: id, Name: name})
	hdr := img.hdr
	img.mu.Unlock()

	end, err := writeHeader(at, img.client, img.pool, img.name, &hdr)
	return id, end, err
}

// Parent returns the clone parent pointer, or nil for a non-layered
// (or already flattened) image.
func (img *Image) Parent() *ParentSpec {
	img.mu.Lock()
	defer img.mu.Unlock()
	if img.hdr.Parent == nil {
		return nil
	}
	p := *img.hdr.Parent
	return &p
}

// SetParent persists the clone parent pointer. It refuses to re-link an
// image that already has a parent (layer chains are built by cloning
// clones, never by rewriting a link).
func (img *Image) SetParent(at vtime.Time, p ParentSpec) (vtime.Time, error) {
	img.mu.Lock()
	if img.hdr.Parent != nil {
		img.mu.Unlock()
		return at, fmt.Errorf("%w: image %s already has a parent", ErrExists, img.name)
	}
	img.hdr.Parent = &p
	hdr := img.hdr
	img.mu.Unlock()
	return writeHeader(at, img.client, img.pool, img.name, &hdr)
}

// RemoveParent severs the clone parent pointer — the final step of a
// flatten, after every inherited block has been copied into the child.
// Removing an absent pointer is a no-op (flatten resume idempotence).
func (img *Image) RemoveParent(at vtime.Time) (vtime.Time, error) {
	img.mu.Lock()
	if img.hdr.Parent == nil {
		img.mu.Unlock()
		return at, nil
	}
	img.hdr.Parent = nil
	hdr := img.hdr
	img.mu.Unlock()
	return writeHeader(at, img.client, img.pool, img.name, &hdr)
}

// Remove deletes an image: every data object, then the header. Snapshot
// clones held at the OSDs are deleted with their head objects. It is the
// caller's job to ensure no clone still references the image as parent.
func Remove(at vtime.Time, client *rados.Client, pool, name string) (vtime.Time, error) {
	img, at, err := Open(at, client, pool, name)
	if err != nil {
		return at, err
	}
	objects := (img.Size() + img.ObjectSize() - 1) / img.ObjectSize()
	for idx := int64(0); idx < objects; idx++ {
		res, end, err := client.Operate(at, pool, img.ObjectName(idx), rados.SnapContext{}, 0,
			[]rados.Op{{Kind: rados.OpDelete}})
		if err != nil {
			return at, err
		}
		if res[0].Status != rados.StatusOK && res[0].Status != rados.StatusNotFound {
			return at, res[0].Status.Err()
		}
		at = end
	}
	res, end, err := client.Operate(at, pool, headerObject(name), rados.SnapContext{}, 0,
		[]rados.Op{{Kind: rados.OpDelete}})
	if err != nil {
		return at, err
	}
	return end, res[0].Status.Err()
}

// SetEncryptionBlob persists the encryption container (LUKS header blob)
// in the image metadata.
func (img *Image) SetEncryptionBlob(at vtime.Time, blob []byte) (vtime.Time, error) {
	img.mu.Lock()
	img.hdr.Encryption = append([]byte(nil), blob...)
	hdr := img.hdr
	img.mu.Unlock()
	return writeHeader(at, img.client, img.pool, img.name, &hdr)
}

// EncryptionBlob returns the stored encryption container, if any.
func (img *Image) EncryptionBlob() []byte {
	img.mu.Lock()
	defer img.mu.Unlock()
	return append([]byte(nil), img.hdr.Encryption...)
}

// ObjectFor maps an image offset to its object index and intra-object
// offset.
func (img *Image) ObjectFor(off int64) (idx, objOff int64) {
	os := img.ObjectSize()
	return off / os, off % os
}

// ObjectName returns the RADOS object name for an object index.
func (img *Image) ObjectName(idx int64) string { return dataObject(img.name, idx) }

// Operate issues ops against one data object with the image's snap
// context; core's layouts use this to attach IV placement ops.
func (img *Image) Operate(at vtime.Time, objIdx int64, snapID uint64, ops []rados.Op) ([]rados.Result, vtime.Time, error) {
	return img.client.Operate(at, img.pool, img.ObjectName(objIdx), img.SnapContext(), snapID, ops)
}

// Replicas returns the OSDs holding one data object's replicas,
// primary first — the iteration domain for scrub's replica repair.
func (img *Image) Replicas(objIdx int64) []int {
	return img.client.ReplicasFor(img.pool, img.ObjectName(objIdx))
}

// OperateOn issues ops against one data object directly at a specific
// OSD (one of Replicas), bypassing primary routing — the scrub/repair
// surface for reading individual copies. See rados.Client.OperateOn
// for the direct-mutation semantics.
func (img *Image) OperateOn(at vtime.Time, osd int, objIdx int64, snapID uint64, ops []rados.Op) ([]rados.Result, vtime.Time, error) {
	return img.client.OperateOn(at, osd, img.pool, img.ObjectName(objIdx), img.SnapContext(), snapID, ops)
}

// OperateHeader issues ops against the image's header object. The
// key-lifecycle subsystem keeps its rekey progress records in the header
// OMAP, next to the snapshot table and the encryption container.
func (img *Image) OperateHeader(at vtime.Time, ops []rados.Op) ([]rados.Result, vtime.Time, error) {
	return img.client.Operate(at, img.pool, headerObject(img.name), rados.SnapContext{}, 0, ops)
}

// Extent is one object-aligned piece of an image IO.
type Extent struct {
	ObjIdx int64 // object index
	ObjOff int64 // offset within the object
	Length int64 // bytes covered
	BufOff int64 // offset within the IO buffer
}

// Extents splits an image IO into per-object pieces, validating bounds.
// The encryption layer uses this to plan per-object op vectors.
func (img *Image) Extents(off int64, length int64) ([]Extent, error) {
	if off < 0 || length < 0 || off+length > img.Size() {
		return nil, fmt.Errorf("%w: [%d,+%d) size %d", ErrBounds, off, length, img.Size())
	}
	os := img.ObjectSize()
	var out []Extent
	var done int64
	for done < length {
		idx := (off + done) / os
		objOff := (off + done) % os
		n := os - objOff
		if n > length-done {
			n = length - done
		}
		out = append(out, Extent{ObjIdx: idx, ObjOff: objOff, Length: n, BufOff: done})
		done += n
	}
	return out, nil
}

// WriteAt writes p at off (plaintext images; the encryption layer has its
// own path). Object ops are issued concurrently; the returned time is the
// latest completion.
func (img *Image) WriteAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	exts, err := img.Extents(off, int64(len(p)))
	if err != nil {
		return at, err
	}
	return img.parallel(at, exts, func(ext Extent) []rados.Op {
		return []rados.Op{{Kind: rados.OpWrite, Off: ext.ObjOff, Data: p[ext.BufOff : ext.BufOff+ext.Length]}}
	}, nil)
}

// ReadAt fills p from off, reading the image head. Holes (unwritten
// objects) read as zeros.
func (img *Image) ReadAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	return img.ReadAtSnap(at, p, off, 0)
}

// ReadAtSnap reads from a snapshot (0 = head).
func (img *Image) ReadAtSnap(at vtime.Time, p []byte, off int64, snapID uint64) (vtime.Time, error) {
	exts, err := img.Extents(off, int64(len(p)))
	if err != nil {
		return at, err
	}
	return img.parallelSnap(at, exts, snapID, func(ext Extent) []rados.Op {
		return []rados.Op{{Kind: rados.OpRead, Off: ext.ObjOff, Len: ext.Length}}
	}, func(ext Extent, res []rados.Result) error {
		switch res[0].Status {
		case rados.StatusOK:
			copy(p[ext.BufOff:ext.BufOff+ext.Length], res[0].Data)
			// Short object reads (beyond object size) are zero-filled.
			for i := int64(len(res[0].Data)); i < ext.Length; i++ {
				p[ext.BufOff+i] = 0
			}
		case rados.StatusNotFound:
			for i := int64(0); i < ext.Length; i++ {
				p[ext.BufOff+i] = 0
			}
		default:
			return res[0].Status.Err()
		}
		return nil
	})
}

// parallel fans object requests out concurrently and joins completions.
func (img *Image) parallel(at vtime.Time, exts []Extent, build func(Extent) []rados.Op, handle func(Extent, []rados.Result) error) (vtime.Time, error) {
	return img.parallelSnap(at, exts, 0, build, handle)
}

func (img *Image) parallelSnap(at vtime.Time, exts []Extent, snapID uint64, build func(Extent) []rados.Op, handle func(Extent, []rados.Result) error) (vtime.Time, error) {
	if len(exts) == 1 {
		// Fast path: no goroutine churn for single-object IOs.
		res, end, err := img.Operate(at, exts[0].ObjIdx, snapID, build(exts[0]))
		if err != nil {
			return at, err
		}
		if handle != nil {
			if err := handle(exts[0], res); err != nil {
				return at, err
			}
		} else if err := firstError(res); err != nil {
			return at, err
		}
		return end, nil
	}
	type outcome struct {
		end vtime.Time
		err error
	}
	ch := make(chan outcome, len(exts))
	for _, ext := range exts {
		go func(ext Extent) {
			res, end, err := img.Operate(at, ext.ObjIdx, snapID, build(ext))
			if err == nil {
				if handle != nil {
					err = handle(ext, res)
				} else {
					err = firstError(res)
				}
			}
			ch <- outcome{end: end, err: err}
		}(ext)
	}
	end := at
	var firstErr error
	for range exts {
		o := <-ch
		if o.err != nil && firstErr == nil {
			firstErr = o.err
		}
		end = vtime.Max(end, o.end)
	}
	if firstErr != nil {
		return at, firstErr
	}
	return end, nil
}

func firstError(res []rados.Result) error {
	for _, r := range res {
		if err := r.Status.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Marshal helpers for tests and tools.

// EncodeBlockIndex renders a block index as the fixed-width big-endian key
// used for OMAP IVs, so lexicographic order equals numeric order.
func EncodeBlockIndex(idx uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], idx)
	return b[:]
}
