package rbd

import (
	"errors"
	"testing"

	"repro/internal/rados"
)

type cursorRec struct {
	NextObj int64 `json:"next_obj"`
	Objects int64 `json:"objects"`
}

// scribbleCursor bypasses SaveCursor and plants raw bytes under the
// cursor key, the way a torn OMAP write or a buggy writer would.
func scribbleCursor(t *testing.T, img *Image, key string, raw []byte) {
	t.Helper()
	res, _, err := img.OperateHeader(0, []rados.Op{{
		Kind:  rados.OpOmapSet,
		Pairs: []rados.Pair{{Key: []byte(key), Value: raw}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Status != rados.StatusOK {
		t.Fatalf("raw omap set: %v", res[0].Status)
	}
}

func TestCursorRoundTrip(t *testing.T) {
	img := testImage(t, 4<<20)
	const key = "walker.test"

	if found, _, err := img.LoadCursor(0, key, &cursorRec{}); err != nil || found {
		t.Fatalf("cursor before save: found=%v err=%v", found, err)
	}
	want := cursorRec{NextObj: 3, Objects: 7}
	if _, err := img.SaveCursor(0, key, want); err != nil {
		t.Fatal(err)
	}
	var got cursorRec
	if found, _, err := img.LoadCursor(0, key, &got); err != nil || !found || got != want {
		t.Fatalf("load: found=%v err=%v got=%+v", found, err, got)
	}
	if _, err := img.ClearCursor(0, key); err != nil {
		t.Fatal(err)
	}
	if found, _, err := img.LoadCursor(0, key, &got); err != nil || found {
		t.Fatalf("cursor after clear: found=%v err=%v", found, err)
	}
	// Clear is idempotent.
	if _, err := img.ClearCursor(0, key); err != nil {
		t.Fatal(err)
	}
}

// TestLoadCursorCorrupt plants undecodable bytes under the cursor key
// and checks the contract: LoadCursor returns an error wrapping
// ErrCorruptCursor — never a panic, never a silent found=false that
// would make a walker believe no walk was in flight.
func TestLoadCursorCorrupt(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
	}{
		{"garbage", []byte("\x00\xffnot json at all\x17")},
		{"truncated", []byte(`{"next_obj": 12, "obje`)},
		{"empty", nil},
		{"wrong-shape", []byte(`[1, 2, 3]`)},
	}
	img := testImage(t, 4<<20)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const key = "walker.corrupt"
			scribbleCursor(t, img, key, tc.raw)
			var rec cursorRec
			found, _, err := img.LoadCursor(0, key, &rec)
			if !errors.Is(err, ErrCorruptCursor) {
				t.Fatalf("LoadCursor over %q: err=%v, want ErrCorruptCursor", tc.raw, err)
			}
			if found {
				t.Fatal("corrupt record reported found=true")
			}
			// A fresh save over the wreckage restores the protocol.
			want := cursorRec{NextObj: 1, Objects: 2}
			if _, err := img.SaveCursor(0, key, want); err != nil {
				t.Fatal(err)
			}
			var got cursorRec
			if found, _, err := img.LoadCursor(0, key, &got); err != nil || !found || got != want {
				t.Fatalf("reload after rewrite: found=%v err=%v got=%+v", found, err, got)
			}
			if _, err := img.ClearCursor(0, key); err != nil {
				t.Fatal(err)
			}
		})
	}
}
