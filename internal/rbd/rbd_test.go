package rbd

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/rados"
	"repro/internal/simdisk"
)

func testClient(t *testing.T) *rados.Client {
	t.Helper()
	cfg := rados.DefaultClusterConfig()
	cfg.OSDs = 3
	cfg.DisksPerOSD = 2
	cfg.DiskSectors = (768 << 20) / simdisk.SectorSize
	cfg.PGNum = 16
	cfg.Blob.ObjectCapacity = 1<<20 + 64<<10
	cfg.Blob.KVBytes = 64 << 20
	cfg.Blob.KV.MemtableBytes = 256 << 10
	cfg.Blob.KV.WALBytes = 4 << 20
	c, err := rados.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c.NewClient("rbd-test")
}

func testImage(t *testing.T, size int64) *Image {
	t.Helper()
	cl := testClient(t)
	if _, err := CreateWithObjectSize(0, cl, "rbd", "img", size, 1<<20); err != nil {
		t.Fatal(err)
	}
	img, _, err := Open(0, cl, "rbd", "img")
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestCreateOpen(t *testing.T) {
	cl := testClient(t)
	if _, err := Create(0, cl, "rbd", "disk1", 64<<20); err != nil {
		t.Fatal(err)
	}
	img, _, err := Open(0, cl, "rbd", "disk1")
	if err != nil {
		t.Fatal(err)
	}
	if img.Size() != 64<<20 || img.ObjectSize() != DefaultObjectSize {
		t.Fatalf("geometry %d/%d", img.Size(), img.ObjectSize())
	}
	// Duplicate create fails.
	if _, err := Create(0, cl, "rbd", "disk1", 1<<20); !errors.Is(err, ErrExists) {
		t.Fatalf("got %v", err)
	}
	// Open of missing image fails.
	if _, _, err := Open(0, cl, "rbd", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestBadGeometry(t *testing.T) {
	cl := testClient(t)
	if _, err := Create(0, cl, "rbd", "x", 0); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := CreateWithObjectSize(0, cl, "rbd", "x", 1<<20, 5000); err == nil {
		t.Fatal("unaligned object size accepted")
	}
}

func TestWriteReadWithinObject(t *testing.T) {
	img := testImage(t, 8<<20)
	data := bytes.Repeat([]byte{0xCD}, 8192)
	if _, err := img.WriteAt(0, data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8192)
	if _, err := img.ReadAt(0, got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip failed")
	}
}

func TestWriteReadAcrossObjects(t *testing.T) {
	img := testImage(t, 8<<20)
	// Span three 1 MiB objects.
	data := make([]byte, 2<<20+12345)
	rand.New(rand.NewSource(3)).Read(data)
	off := int64(1<<20 - 777)
	if _, err := img.WriteAt(0, data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := img.ReadAt(0, got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-object round trip failed")
	}
}

func TestReadHolesAreZero(t *testing.T) {
	img := testImage(t, 4<<20)
	if _, err := img.WriteAt(0, []byte("data"), 2<<20); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := img.ReadAt(0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 4096)) {
		t.Fatal("hole not zero")
	}
}

func TestBoundsChecked(t *testing.T) {
	img := testImage(t, 1<<20)
	if _, err := img.WriteAt(0, make([]byte, 4096), 1<<20-100); !errors.Is(err, ErrBounds) {
		t.Fatalf("got %v", err)
	}
	if _, err := img.ReadAt(0, make([]byte, 10), -5); !errors.Is(err, ErrBounds) {
		t.Fatalf("got %v", err)
	}
}

func TestObjectMapping(t *testing.T) {
	img := testImage(t, 8<<20)
	idx, off := img.ObjectFor(3<<20 + 500)
	if idx != 3 || off != 500 {
		t.Fatalf("mapping %d/%d", idx, off)
	}
	if img.ObjectName(3) != "rbd_data.img.0000000000000003" {
		t.Fatalf("name %q", img.ObjectName(3))
	}
}

func TestSnapshotsEndToEnd(t *testing.T) {
	img := testImage(t, 2<<20)
	v1 := bytes.Repeat([]byte{1}, 4096)
	v2 := bytes.Repeat([]byte{2}, 4096)
	if _, err := img.WriteAt(0, v1, 0); err != nil {
		t.Fatal(err)
	}
	id, _, err := img.CreateSnap(0, "before")
	if err != nil || id != 1 {
		t.Fatalf("snap: %d %v", id, err)
	}
	if _, err := img.WriteAt(0, v2, 0); err != nil {
		t.Fatal(err)
	}
	head := make([]byte, 4096)
	if _, err := img.ReadAt(0, head, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(head, v2) {
		t.Fatal("head should be v2")
	}
	snap := make([]byte, 4096)
	if _, err := img.ReadAtSnap(0, snap, 0, id); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, v1) {
		t.Fatal("snapshot should preserve v1")
	}
	// Name resolution + duplicate detection.
	if got, err := img.SnapID("before"); err != nil || got != id {
		t.Fatalf("SnapID: %d %v", got, err)
	}
	if _, _, err := img.CreateSnap(0, "before"); !errors.Is(err, ErrExists) {
		t.Fatalf("got %v", err)
	}
	if _, err := img.SnapID("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
	if snaps := img.Snaps(); len(snaps) != 1 || snaps[0].Name != "before" {
		t.Fatalf("snaps %v", snaps)
	}
}

func TestSnapshotPersistsAcrossOpen(t *testing.T) {
	cl := testClient(t)
	if _, err := CreateWithObjectSize(0, cl, "rbd", "img", 1<<20, 1<<20); err != nil {
		t.Fatal(err)
	}
	img, _, err := Open(0, cl, "rbd", "img")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := img.WriteAt(0, []byte("v1"), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := img.CreateSnap(0, "s1"); err != nil {
		t.Fatal(err)
	}
	img2, _, err := Open(0, cl, "rbd", "img")
	if err != nil {
		t.Fatal(err)
	}
	if img2.SnapContext().Seq != 1 {
		t.Fatalf("snap seq %d after reopen", img2.SnapContext().Seq)
	}
	if len(img2.Snaps()) != 1 {
		t.Fatal("snap list lost")
	}
}

func TestEncryptionBlobRoundTrip(t *testing.T) {
	cl := testClient(t)
	if _, err := Create(0, cl, "rbd", "img", 4<<20); err != nil {
		t.Fatal(err)
	}
	img, _, err := Open(0, cl, "rbd", "img")
	if err != nil {
		t.Fatal(err)
	}
	blob := []byte(`{"luks":"header"}`)
	if _, err := img.SetEncryptionBlob(0, blob); err != nil {
		t.Fatal(err)
	}
	img2, _, err := Open(0, cl, "rbd", "img")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img2.EncryptionBlob(), blob) {
		t.Fatal("encryption blob lost")
	}
}

func TestRandomizedImageModel(t *testing.T) {
	const size = 4 << 20
	img := testImage(t, size)
	model := make([]byte, size)
	rng := rand.New(rand.NewSource(17))
	for step := 0; step < 150; step++ {
		off := rng.Int63n(size - 1)
		n := rng.Intn(200000) + 1
		if off+int64(n) > size {
			n = int(size - off)
		}
		if rng.Intn(2) == 0 {
			data := make([]byte, n)
			rng.Read(data)
			if _, err := img.WriteAt(0, data, off); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			copy(model[off:], data)
		} else {
			got := make([]byte, n)
			if _, err := img.ReadAt(0, got, off); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if !bytes.Equal(got, model[off:off+int64(n)]) {
				t.Fatalf("step %d: mismatch at %d+%d", step, off, n)
			}
		}
	}
}

func TestEncodeBlockIndexOrdering(t *testing.T) {
	a := EncodeBlockIndex(1)
	b := EncodeBlockIndex(256)
	if bytes.Compare(a, b) >= 0 {
		t.Fatal("big-endian ordering broken")
	}
}

func TestParentPointerRoundTrip(t *testing.T) {
	cl := testClient(t)
	if _, err := CreateWithObjectSize(0, cl, "rbd", "child", 4<<20, 1<<20); err != nil {
		t.Fatal(err)
	}
	img, _, err := Open(0, cl, "rbd", "child")
	if err != nil {
		t.Fatal(err)
	}
	if img.Parent() != nil {
		t.Fatal("fresh image has a parent")
	}
	spec := ParentSpec{Pool: "rbd", Image: "base", SnapID: 7, SnapName: "golden"}
	if _, err := img.SetParent(0, spec); err != nil {
		t.Fatal(err)
	}
	// Re-linking is refused.
	if _, err := img.SetParent(0, spec); !errors.Is(err, ErrExists) {
		t.Fatalf("double SetParent: %v", err)
	}
	// The pointer persists across Open.
	img2, _, err := Open(0, cl, "rbd", "child")
	if err != nil {
		t.Fatal(err)
	}
	if got := img2.Parent(); got == nil || *got != spec {
		t.Fatalf("parent pointer %+v, want %+v", got, spec)
	}
	// Severing persists too, and is idempotent.
	if _, err := img2.RemoveParent(0); err != nil {
		t.Fatal(err)
	}
	if _, err := img2.RemoveParent(0); err != nil {
		t.Fatal(err)
	}
	img3, _, err := Open(0, cl, "rbd", "child")
	if err != nil {
		t.Fatal(err)
	}
	if img3.Parent() != nil {
		t.Fatal("parent pointer survived RemoveParent")
	}
}

func TestRemoveImage(t *testing.T) {
	cl := testClient(t)
	if _, err := CreateWithObjectSize(0, cl, "rbd", "gone", 2<<20, 1<<20); err != nil {
		t.Fatal(err)
	}
	img, _, err := Open(0, cl, "rbd", "gone")
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xCD}, 8192)
	if _, err := img.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Remove(0, cl, "rbd", "gone"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(0, cl, "rbd", "gone"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("open after remove: %v", err)
	}
	// The name is reusable and the old data objects are gone.
	if _, err := CreateWithObjectSize(0, cl, "rbd", "gone", 2<<20, 1<<20); err != nil {
		t.Fatal(err)
	}
	img2, _, err := Open(0, cl, "rbd", "gone")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8192)
	if _, err := img2.ReadAt(0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 8192)) {
		t.Fatal("recreated image sees stale data")
	}
}

// TestRemovePurgesSnapshotClones pins that Remove deletes the OSD-side
// snapshot clone objects with the head: recreating an image under the
// same name and snapshotting it again reuses the same snap ids, and a
// leaked clone blob would make the clone-on-write of the new image fail
// (the blobstore refuses to clone onto an existing object) or resolve
// snapshot reads to the dead image's data.
func TestRemovePurgesSnapshotClones(t *testing.T) {
	cl := testClient(t)
	round := func(fill byte) {
		t.Helper()
		if _, err := CreateWithObjectSize(0, cl, "rbd", "churn", 2<<20, 1<<20); err != nil {
			t.Fatal(err)
		}
		img, _, err := Open(0, cl, "rbd", "churn")
		if err != nil {
			t.Fatal(err)
		}
		before := bytes.Repeat([]byte{fill}, 8192)
		if _, err := img.WriteAt(0, before, 0); err != nil {
			t.Fatal(err)
		}
		id, _, err := img.CreateSnap(0, "s")
		if err != nil {
			t.Fatal(err)
		}
		// Overwrite: triggers clone-on-write at the OSDs for snap id.
		if _, err := img.WriteAt(0, bytes.Repeat([]byte{fill + 1}, 8192), 0); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8192)
		if _, err := img.ReadAtSnap(0, got, 0, id); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, before) {
			t.Fatalf("snapshot (fill 0x%02x) resolved to stale clone data", fill)
		}
		if _, err := Remove(0, cl, "rbd", "churn"); err != nil {
			t.Fatal(err)
		}
	}
	round(0x10)
	round(0x20) // same name, same snap ids: collides with any leaked clone
}
