package rbd

// cursor.go is the persisted walker-cursor protocol shared by the
// background walkers (keymgr's online rekey, clone's flatten): one JSON
// record per walker under a reserved key in the image header's OMAP,
// written after every unit of work so a crashed client resumes instead
// of restarting. Keeping the load/save/clear plumbing here means every
// walker speaks exactly the same on-disk protocol.

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/rados"
	"repro/internal/vtime"
)

// ErrCorruptCursor reports a walker-cursor record whose stored bytes do
// not decode — truncated or scribbled OMAP state. The walkers treat it
// as "a walk was in flight, its position is lost": they restart the
// walk from the beginning (which is safe, both walks are idempotent)
// rather than fail the resume or, worse, trust a half-read cursor.
var ErrCorruptCursor = errors.New("rbd: corrupt walker cursor")

// LoadCursor reads the walker cursor stored under key in the image
// header's OMAP into v, reporting found=false when no record exists.
// A record that exists but does not decode returns an error wrapping
// ErrCorruptCursor.
func (img *Image) LoadCursor(at vtime.Time, key string, v any) (bool, vtime.Time, error) {
	res, end, err := img.OperateHeader(at, []rados.Op{{
		Kind: rados.OpOmapGetRange,
		Key:  []byte(key),
		Key2: []byte(key + "\x00"),
	}})
	if err != nil {
		return false, at, err
	}
	if res[0].Status != rados.StatusOK || len(res[0].Pairs) == 0 {
		return false, end, nil
	}
	if err := json.Unmarshal(res[0].Pairs[0].Value, v); err != nil {
		return false, at, fmt.Errorf("%w %q: %v", ErrCorruptCursor, key, err)
	}
	return true, end, nil
}

// SaveCursor persists v as the walker cursor under key.
func (img *Image) SaveCursor(at vtime.Time, key string, v any) (vtime.Time, error) {
	blob, err := json.Marshal(v)
	if err != nil {
		return at, err
	}
	res, end, err := img.OperateHeader(at, []rados.Op{{
		Kind:  rados.OpOmapSet,
		Pairs: []rados.Pair{{Key: []byte(key), Value: blob}},
	}})
	if err != nil {
		return at, err
	}
	return end, res[0].Status.Err()
}

// ClearCursor removes the walker cursor under key (idempotent).
func (img *Image) ClearCursor(at vtime.Time, key string) (vtime.Time, error) {
	res, end, err := img.OperateHeader(at, []rados.Op{{
		Kind:  rados.OpOmapDel,
		Pairs: []rados.Pair{{Key: []byte(key)}},
	}})
	if err != nil {
		return at, err
	}
	return end, res[0].Status.Err()
}
