// Package simdisk implements a simulated NVMe-class block device.
//
// The device is sector-addressable, stores data sparsely in memory, and
// charges every operation to a vtime cost model (fixed per-command latency
// plus per-sector transfer time, with read/write asymmetry). It also keeps
// operation counters that the benchmark harness uses to report the
// "number of sectors that need to be read or written" analysis from §3.3
// of the paper, and supports power-cut fault injection for the
// crash-consistency tests of the object store journal.
//
// The paper's testbed used Intel NVMe drives; this package is the
// substitution documented in DESIGN.md — the shape of every bandwidth
// figure comes from sector counts and queueing, which the cost model
// reproduces.
package simdisk

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/telemetry"
	"repro/internal/telemetry/attr"
	"repro/internal/vtime"
)

// SectorSize is the device sector size in bytes. The paper evaluates with
// 4 KiB sectors (LUKS2 default, §2.4 footnote 4).
const SectorSize = 4096

// chunkSectors is the allocation granularity of the sparse backing store.
const chunkSectors = 256 // 1 MiB chunks

var (
	// ErrOutOfRange reports an access beyond the device capacity.
	ErrOutOfRange = errors.New("simdisk: access out of range")
	// ErrPowerCut reports that the device lost power mid-workload; writes
	// after the cut are dropped (see Disk.PowerCutAfter).
	ErrPowerCut = errors.New("simdisk: power cut")
)

// CostModel describes the virtual-time cost of disk commands.
type CostModel struct {
	// ReadCost and WriteCost are charged per command as
	// Fixed + PerByte*bytes.
	ReadCost  vtime.LinearCost
	WriteCost vtime.LinearCost
	// Channels is the device's internal parallelism (number of commands in
	// flight that make progress concurrently).
	Channels int
}

// DefaultCostModel returns a cost model loosely calibrated to a
// data-center NVMe drive: ~80 µs access latency, ~2.8 GB/s reads,
// ~1.4 GB/s writes, 8-way internal parallelism.
func DefaultCostModel() CostModel {
	return CostModel{
		ReadCost:  vtime.LinearCost{Fixed: 80 * time.Microsecond, PerByte: vtime.PerByteOfBandwidth(2.8e9)},
		WriteCost: vtime.LinearCost{Fixed: 90 * time.Microsecond, PerByte: vtime.PerByteOfBandwidth(1.4e9)},
		Channels:  8,
	}
}

// Stats is a snapshot of device counters.
type Stats struct {
	ReadOps        int64
	WriteOps       int64
	SectorsRead    int64
	SectorsWritten int64
}

// Add returns element-wise s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		ReadOps:        s.ReadOps + o.ReadOps,
		WriteOps:       s.WriteOps + o.WriteOps,
		SectorsRead:    s.SectorsRead + o.SectorsRead,
		SectorsWritten: s.SectorsWritten + o.SectorsWritten,
	}
}

// Sub returns element-wise s - o, used to diff snapshots around a workload.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		ReadOps:        s.ReadOps - o.ReadOps,
		WriteOps:       s.WriteOps - o.WriteOps,
		SectorsRead:    s.SectorsRead - o.SectorsRead,
		SectorsWritten: s.SectorsWritten - o.SectorsWritten,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d(%d sectors) writes=%d(%d sectors)",
		s.ReadOps, s.SectorsRead, s.WriteOps, s.SectorsWritten)
}

// Disk is a simulated sector-addressable device. All methods are safe for
// concurrent use.
type Disk struct {
	name    string
	sectors int64
	cost    CostModel
	res     *vtime.MultiResource

	mu     sync.RWMutex
	chunks map[int64][]byte // chunk index -> chunkSectors*SectorSize bytes

	readOps        atomic.Int64
	writeOps       atomic.Int64
	sectorsRead    atomic.Int64
	sectorsWritten atomic.Int64

	// Fault injection: once the number of completed write ops reaches
	// powerCutAt (>0), subsequent writes return ErrPowerCut without
	// modifying the media, simulating a crash with volatile caches lost.
	powerCutAt atomic.Int64

	// ephemeralFrom marks the first sector of the cost-only region: writes
	// at or beyond it are charged and counted but their payload is not
	// retained (reads return zeros). Benchmark sweeps place multi-GiB data
	// areas there so a simulated cluster does not hold the image in RAM.
	// 0 (or >= capacity) retains everything... see SetEphemeralFrom.
	ephemeralFrom atomic.Int64

	// faults, when armed, injects device-level failures (torn writes,
	// bit rot, read errors, latency spikes) from a deterministic plan.
	faults atomic.Pointer[fault.Injector]

	// met, when set, mirrors the device counters into osd-labeled
	// telemetry series. Nil-safe on every IO path: a standalone disk
	// (unit tests, bench fixtures) records nothing.
	met atomic.Pointer[DeviceMetrics]
}

// DeviceMetrics is the set of pre-resolved telemetry handles a cluster
// injects so the disk's counters surface as per-OSD device series. The
// handles are resolved by the owner (rados.NewCluster, once per OSD) —
// the disk only bumps them.
type DeviceMetrics struct {
	ReadOps        *telemetry.Counter
	WriteOps       *telemetry.Counter
	SectorsRead    *telemetry.Counter
	SectorsWritten *telemetry.Counter
}

// SetMetrics attaches (or, with nil, detaches) the telemetry mirror.
func (d *Disk) SetMetrics(m *DeviceMetrics) { d.met.Store(m) }

// New creates a disk with the given capacity in sectors.
func New(name string, sectors int64, cost CostModel) *Disk {
	if sectors <= 0 {
		panic("simdisk: capacity must be positive")
	}
	ch := cost.Channels
	if ch < 1 {
		ch = 1
	}
	d := &Disk{
		name:    name,
		sectors: sectors,
		cost:    cost,
		res:     vtime.NewMultiResource(name, ch),
		chunks:  make(map[int64][]byte),
	}
	d.ephemeralFrom.Store(sectors)
	return d
}

// SetEphemeralFrom declares that sectors at or beyond boundary are
// cost-only: writes there are charged to the time model and counters but
// the payload is discarded, and reads return zeros. Pass the capacity (the
// default) to retain everything. Storage engines place bulk data regions
// beyond the boundary during large benchmark sweeps.
func (d *Disk) SetEphemeralFrom(boundary int64) {
	if boundary < 0 {
		boundary = 0
	}
	d.ephemeralFrom.Store(boundary)
}

// Name returns the device name.
func (d *Disk) Name() string { return d.name }

// Sectors returns the device capacity in sectors.
func (d *Disk) Sectors() int64 { return d.sectors }

// Size returns the device capacity in bytes.
func (d *Disk) Size() int64 { return d.sectors * SectorSize }

// Stats returns a snapshot of the device counters.
func (d *Disk) Stats() Stats {
	return Stats{
		ReadOps:        d.readOps.Load(),
		WriteOps:       d.writeOps.Load(),
		SectorsRead:    d.sectorsRead.Load(),
		SectorsWritten: d.sectorsWritten.Load(),
	}
}

// ResetStats zeroes the counters and idles the device's time resource.
func (d *Disk) ResetStats() {
	d.readOps.Store(0)
	d.writeOps.Store(0)
	d.sectorsRead.Store(0)
	d.sectorsWritten.Store(0)
	d.res.Reset()
}

// PowerCutAfter arms fault injection: after n more successful write
// commands the device drops power — every later write fails with
// ErrPowerCut and leaves the media untouched. Reads keep working so that
// recovery code can replay journals. Pass n<0 to disarm.
func (d *Disk) PowerCutAfter(n int64) {
	if n < 0 {
		d.powerCutAt.Store(0)
		return
	}
	d.powerCutAt.Store(d.writeOps.Load() + n + 1)
}

// PowerRestore disarms fault injection, simulating reboot: the media keeps
// exactly what was written before the cut.
func (d *Disk) PowerRestore() { d.powerCutAt.Store(0) }

// SetFaults arms (or, with nil, disarms) plan-driven fault injection on
// this device. Torn writes, bit rot, read errors, and latency spikes
// fire per the injector's seeded decision stream; see internal/fault.
func (d *Disk) SetFaults(in *fault.Injector) { d.faults.Store(in) }

// corruptMedia flips one injector-chosen bit of a stored sector in
// place — the persistent form of bit rot. Unwritten (all-zero) sectors
// are left alone: there is no media to rot.
func (d *Disk) corruptMedia(in *fault.Injector, sector int64) {
	chunk, off := sector/chunkSectors, (sector%chunkSectors)*SectorSize
	d.mu.Lock()
	if c, ok := d.chunks[chunk]; ok {
		in.FlipBit(c[off : off+SectorSize])
	}
	d.mu.Unlock()
}

func (d *Disk) checkRange(sector, n int64) error {
	if sector < 0 || n < 0 || sector+n > d.sectors {
		return fmt.Errorf("%w: sector %d count %d on %s (%d sectors)",
			ErrOutOfRange, sector, n, d.name, d.sectors)
	}
	return nil
}

// ReadSectors reads n sectors starting at sector into p, which must hold
// n*SectorSize bytes. It returns the virtual completion time of the
// command. Unwritten sectors read as zeros.
func (d *Disk) ReadSectors(at vtime.Time, sector, n int64, p []byte) (vtime.Time, error) {
	if err := d.checkRange(sector, n); err != nil {
		return at, err
	}
	if int64(len(p)) < n*SectorSize {
		return at, fmt.Errorf("simdisk: short buffer for %d sectors", n)
	}
	in := d.faults.Load()
	if in.HitAt(at, fault.ReadError) {
		return at, fmt.Errorf("%s: read sector %d count %d: %w", d.name, sector, n, fault.ErrReadFault)
	}
	rot := n > 0 && in.HitAt(at, fault.BitRot)
	if rot && in.PersistentRot() {
		// Latent sector corruption: rot the media itself before the copy
		// below picks it up, so every future read sees the same damage
		// until something rewrites the sector.
		d.corruptMedia(in, sector+int64(in.Intn(int(n))))
		rot = false
	}
	d.mu.RLock()
	for i := int64(0); i < n; i++ {
		s := sector + i
		chunk, off := s/chunkSectors, (s%chunkSectors)*SectorSize
		dst := p[i*SectorSize : (i+1)*SectorSize]
		if c, ok := d.chunks[chunk]; ok {
			copy(dst, c[off:off+SectorSize])
		} else {
			clear(dst)
		}
	}
	d.mu.RUnlock()
	if rot {
		// Transient rot: the media is fine, this transfer is not.
		in.FlipBit(p[:n*SectorSize])
	}
	d.readOps.Add(1)
	d.sectorsRead.Add(n)
	if m := d.met.Load(); m != nil {
		m.ReadOps.Inc()
		m.SectorsRead.Add(n)
	}
	end := d.res.Use(at, d.cost.ReadCost.Of(n*SectorSize))
	if in.HitAt(at, fault.LatencySpike) {
		end = end.Add(in.Delay())
	}
	// Device phase includes injected spikes: a sick disk is precisely
	// what the attribution table should surface.
	attr.Observe(attr.OpRead, attr.PhaseDevice, end.Sub(at))
	return end, nil
}

// WriteSectors writes n sectors from p starting at sector and returns the
// virtual completion time of the command.
func (d *Disk) WriteSectors(at vtime.Time, sector, n int64, p []byte) (vtime.Time, error) {
	if err := d.checkRange(sector, n); err != nil {
		return at, err
	}
	if int64(len(p)) < n*SectorSize {
		return at, fmt.Errorf("simdisk: short buffer for %d sectors", n)
	}
	if cut := d.powerCutAt.Load(); cut > 0 && d.writeOps.Load()+1 >= cut {
		return at, ErrPowerCut
	}
	in := d.faults.Load()
	persist := n
	var tornErr error
	if n > 0 && in.HitAt(at, fault.TornWrite) {
		// Power-loss tear: only a prefix of the command reaches media and
		// the command fails — the caller must treat the range as
		// undefined until re-written.
		persist = int64(in.Intn(int(n)))
		tornErr = fmt.Errorf("%s: write sector %d count %d persisted %d: %w",
			d.name, sector, n, persist, fault.ErrTornWrite)
	}
	eph := d.ephemeralFrom.Load()
	d.mu.Lock()
	for i := int64(0); i < persist; i++ {
		s := sector + i
		if s >= eph {
			continue // cost-only region: payload discarded
		}
		chunk, off := s/chunkSectors, (s%chunkSectors)*SectorSize
		c, ok := d.chunks[chunk]
		if !ok {
			c = make([]byte, chunkSectors*SectorSize)
			d.chunks[chunk] = c
		}
		copy(c[off:off+SectorSize], p[i*SectorSize:(i+1)*SectorSize])
	}
	d.mu.Unlock()
	d.writeOps.Add(1)
	d.sectorsWritten.Add(persist)
	if m := d.met.Load(); m != nil {
		m.WriteOps.Inc()
		m.SectorsWritten.Add(persist)
	}
	if tornErr != nil {
		return at, tornErr
	}
	end := d.res.Use(at, d.cost.WriteCost.Of(n*SectorSize))
	if in.HitAt(at, fault.LatencySpike) {
		end = end.Add(in.Delay())
	}
	attr.Observe(attr.OpWrite, attr.PhaseDevice, end.Sub(at))
	return end, nil
}

// ReadAt implements byte-granular reads for convenience layers (for
// example the dm-crypt comparator). The access is charged as the covering
// sector-aligned read. A sector-aligned access reads straight into p —
// no covering buffer — which keeps the end-to-end read path free of
// payload-sized allocations.
func (d *Disk) ReadAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	if off < 0 {
		return at, ErrOutOfRange
	}
	if len(p) == 0 {
		return at, nil
	}
	first := off / SectorSize
	last := (off + int64(len(p)) + SectorSize - 1) / SectorSize
	if off%SectorSize == 0 && int64(len(p))%SectorSize == 0 {
		return d.ReadSectors(at, first, last-first, p)
	}
	buf := make([]byte, (last-first)*SectorSize)
	end, err := d.ReadSectors(at, first, last-first, buf)
	if err != nil {
		return at, err
	}
	copy(p, buf[off-first*SectorSize:])
	return end, nil
}

// WriteAt implements byte-granular writes. Misaligned head/tail sectors
// incur a real read-modify-write: the covering sectors are read, merged
// and written back, and the extra read is charged to the cost model. This
// is the mechanism behind the Unaligned layout's write penalty (§3.3).
func (d *Disk) WriteAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	if off < 0 {
		return at, ErrOutOfRange
	}
	if len(p) == 0 {
		return at, nil
	}
	first := off / SectorSize
	last := (off + int64(len(p)) + SectorSize - 1) / SectorSize
	n := last - first
	headMisaligned := off%SectorSize != 0
	tailMisaligned := (off+int64(len(p)))%SectorSize != 0
	if !headMisaligned && !tailMisaligned {
		// Fully aligned: write straight from p, no merge buffer.
		return d.WriteSectors(at, first, n, p)
	}

	buf := make([]byte, n*SectorSize)
	rmwEnd := at
	// Read-modify-write of the boundary sectors when misaligned.
	if headMisaligned {
		e, err := d.ReadSectors(at, first, 1, buf[:SectorSize])
		if err != nil {
			return at, err
		}
		rmwEnd = vtime.Max(rmwEnd, e)
	}
	if tailMisaligned && (n > 1 || !headMisaligned) {
		e, err := d.ReadSectors(at, last-1, 1, buf[(n-1)*SectorSize:])
		if err != nil {
			return at, err
		}
		rmwEnd = vtime.Max(rmwEnd, e)
	}
	copy(buf[off-first*SectorSize:], p)
	return d.WriteSectors(rmwEnd, first, n, buf)
}

// Snapshot returns a deep copy of the media contents, for tests that
// compare states around crash/recovery cycles.
func (d *Disk) Snapshot() map[int64][]byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[int64][]byte, len(d.chunks))
	for k, v := range d.chunks {
		c := make([]byte, len(v))
		copy(c, v)
		out[k] = c
	}
	return out
}
