package simdisk

import (
	"fmt"

	"repro/internal/vtime"
)

// BlockFile is the byte-granular device view consumed by the storage
// engines built on top of simdisk (LSM store, journal, object store).
// Implementations charge virtual time and perform read-modify-write for
// misaligned accesses.
type BlockFile interface {
	ReadAt(at vtime.Time, p []byte, off int64) (vtime.Time, error)
	WriteAt(at vtime.Time, p []byte, off int64) (vtime.Time, error)
	Size() int64
}

// Partition is a contiguous, sector-aligned slice of a Disk exposed as a
// BlockFile. Multiple partitions of one disk share its time resource, so
// journal traffic, KV traffic and data traffic contend realistically.
type Partition struct {
	disk        *Disk
	startSector int64
	sectors     int64
}

var _ BlockFile = (*Partition)(nil)

// NewPartition carves [startSector, startSector+sectors) out of d.
func NewPartition(d *Disk, startSector, sectors int64) *Partition {
	if startSector < 0 || sectors <= 0 || startSector+sectors > d.sectors {
		panic(fmt.Sprintf("simdisk: bad partition [%d,+%d) of %d", startSector, sectors, d.sectors))
	}
	return &Partition{disk: d, startSector: startSector, sectors: sectors}
}

// Size returns the partition length in bytes.
func (p *Partition) Size() int64 { return p.sectors * SectorSize }

// Disk returns the underlying device.
func (p *Partition) Disk() *Disk { return p.disk }

func (p *Partition) check(off, n int64) error {
	if off < 0 || n < 0 || off+n > p.Size() {
		return fmt.Errorf("%w: off %d len %d in partition of %d bytes",
			ErrOutOfRange, off, n, p.Size())
	}
	return nil
}

// ReadAt reads len(b) bytes at partition-relative offset off.
func (p *Partition) ReadAt(at vtime.Time, b []byte, off int64) (vtime.Time, error) {
	if err := p.check(off, int64(len(b))); err != nil {
		return at, err
	}
	return p.disk.ReadAt(at, b, p.startSector*SectorSize+off)
}

// WriteAt writes len(b) bytes at partition-relative offset off.
func (p *Partition) WriteAt(at vtime.Time, b []byte, off int64) (vtime.Time, error) {
	if err := p.check(off, int64(len(b))); err != nil {
		return at, err
	}
	return p.disk.WriteAt(at, b, p.startSector*SectorSize+off)
}

// ReadSectors reads whole sectors relative to the partition start.
func (p *Partition) ReadSectors(at vtime.Time, sector, n int64, b []byte) (vtime.Time, error) {
	if sector < 0 || n < 0 || sector+n > p.sectors {
		return at, fmt.Errorf("%w: partition sector %d count %d", ErrOutOfRange, sector, n)
	}
	return p.disk.ReadSectors(at, p.startSector+sector, n, b)
}

// WriteSectors writes whole sectors relative to the partition start.
func (p *Partition) WriteSectors(at vtime.Time, sector, n int64, b []byte) (vtime.Time, error) {
	if sector < 0 || n < 0 || sector+n > p.sectors {
		return at, fmt.Errorf("%w: partition sector %d count %d", ErrOutOfRange, sector, n)
	}
	return p.disk.WriteSectors(at, p.startSector+sector, n, b)
}
