package simdisk

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/vtime"
)

func testDisk(sectors int64) *Disk {
	// Deterministic tiny cost model: 10 µs fixed, 1 µs per sector.
	cm := CostModel{
		ReadCost:  vtime.LinearCost{Fixed: 10 * time.Microsecond, PerByte: vtime.PerByteOfBandwidth(float64(SectorSize) / 1e-6)},
		WriteCost: vtime.LinearCost{Fixed: 10 * time.Microsecond, PerByte: vtime.PerByteOfBandwidth(float64(SectorSize) / 1e-6)},
		Channels:  1,
	}
	return New("test", sectors, cm)
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := testDisk(64)
	w := make([]byte, 3*SectorSize)
	for i := range w {
		w[i] = byte(i * 7)
	}
	if _, err := d.WriteSectors(0, 5, 3, w); err != nil {
		t.Fatal(err)
	}
	r := make([]byte, 3*SectorSize)
	if _, err := d.ReadSectors(0, 5, 3, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w, r) {
		t.Fatal("round trip mismatch")
	}
}

func TestUnwrittenSectorsReadZero(t *testing.T) {
	d := testDisk(16)
	p := make([]byte, SectorSize)
	for i := range p {
		p[i] = 0xFF
	}
	if _, err := d.ReadSectors(0, 3, 1, p); err != nil {
		t.Fatal(err)
	}
	for _, b := range p {
		if b != 0 {
			t.Fatal("unwritten sector not zero")
		}
	}
}

func TestOutOfRange(t *testing.T) {
	d := testDisk(8)
	buf := make([]byte, SectorSize)
	if _, err := d.ReadSectors(0, 8, 1, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read: got %v", err)
	}
	if _, err := d.WriteSectors(0, -1, 1, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("write: got %v", err)
	}
	if _, err := d.ReadSectors(0, 7, 2, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("overrun: got %v", err)
	}
}

func TestShortBuffer(t *testing.T) {
	d := testDisk(8)
	buf := make([]byte, SectorSize-1)
	if _, err := d.ReadSectors(0, 0, 1, buf); err == nil {
		t.Fatal("expected short buffer error")
	}
	if _, err := d.WriteSectors(0, 0, 1, buf); err == nil {
		t.Fatal("expected short buffer error")
	}
}

func TestCostModelCharging(t *testing.T) {
	d := testDisk(64)
	buf := make([]byte, SectorSize)
	// One sector: 10µs fixed + 1µs transfer = 11µs.
	end, err := d.WriteSectors(0, 0, 1, buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := vtime.Time(11 * time.Microsecond); end != want {
		t.Fatalf("end = %v want %v", end, want)
	}
	// Second op at t=0 queues behind the first (Channels=1).
	end2, err := d.WriteSectors(0, 1, 1, buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := vtime.Time(22 * time.Microsecond); end2 != want {
		t.Fatalf("end2 = %v want %v", end2, want)
	}
}

func TestStatsCounting(t *testing.T) {
	d := testDisk(64)
	buf := make([]byte, 4*SectorSize)
	if _, err := d.WriteSectors(0, 0, 4, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadSectors(0, 0, 2, buf); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.WriteOps != 1 || s.SectorsWritten != 4 || s.ReadOps != 1 || s.SectorsRead != 2 {
		t.Fatalf("stats = %+v", s)
	}
	d.ResetStats()
	if s := d.Stats(); s != (Stats{}) {
		t.Fatalf("after reset: %+v", s)
	}
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{ReadOps: 3, WriteOps: 2, SectorsRead: 30, SectorsWritten: 20}
	b := Stats{ReadOps: 1, WriteOps: 1, SectorsRead: 10, SectorsWritten: 5}
	if got := a.Add(b).Sub(b); got != a {
		t.Fatalf("Add/Sub mismatch: %+v", got)
	}
}

func TestWriteAtAlignedNoRMW(t *testing.T) {
	d := testDisk(64)
	p := make([]byte, 2*SectorSize)
	if _, err := d.WriteAt(0, p, 4*SectorSize); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.ReadOps != 0 {
		t.Fatalf("aligned write must not RMW, stats=%+v", s)
	}
	if s.SectorsWritten != 2 {
		t.Fatalf("wrote %d sectors", s.SectorsWritten)
	}
}

func TestWriteAtMisalignedTriggersRMW(t *testing.T) {
	d := testDisk(64)
	// Pre-fill two sectors with a pattern.
	base := make([]byte, 2*SectorSize)
	for i := range base {
		base[i] = 0xAB
	}
	if _, err := d.WriteSectors(0, 10, 2, base); err != nil {
		t.Fatal(err)
	}
	pre := d.Stats()

	// Write 100 bytes starting 50 bytes into sector 10: single-sector RMW.
	p := bytes.Repeat([]byte{0x11}, 100)
	if _, err := d.WriteAt(0, p, 10*SectorSize+50); err != nil {
		t.Fatal(err)
	}
	delta := d.Stats().Sub(pre)
	if delta.ReadOps != 1 || delta.WriteOps != 1 {
		t.Fatalf("single-sector RMW delta = %+v", delta)
	}

	// Verify the merge preserved surrounding bytes.
	got := make([]byte, 2*SectorSize)
	if _, err := d.ReadSectors(0, 10, 2, got); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 2*SectorSize)
	copy(want, base)
	copy(want[50:], p)
	if !bytes.Equal(got, want) {
		t.Fatal("RMW merge corrupted data")
	}
}

func TestWriteAtSpanningMisalignedBothEnds(t *testing.T) {
	d := testDisk(64)
	pre := d.Stats()
	// Span sectors 2..5 with both boundaries misaligned: two RMW reads.
	p := make([]byte, 3*SectorSize)
	if _, err := d.WriteAt(0, p, 2*SectorSize+100); err != nil {
		t.Fatal(err)
	}
	delta := d.Stats().Sub(pre)
	if delta.ReadOps != 2 {
		t.Fatalf("want 2 RMW reads, got %+v", delta)
	}
	if delta.SectorsWritten != 4 {
		t.Fatalf("want 4 sectors written, got %+v", delta)
	}
}

func TestReadAtByteGranular(t *testing.T) {
	d := testDisk(64)
	w := make([]byte, SectorSize)
	for i := range w {
		w[i] = byte(i)
	}
	if _, err := d.WriteSectors(0, 7, 1, w); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 100)
	if _, err := d.ReadAt(0, got, 7*SectorSize+32); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, w[32:132]) {
		t.Fatal("ReadAt mismatch")
	}
	// Zero-length operations are free no-ops.
	if end, err := d.ReadAt(42, nil, 0); err != nil || end != 42 {
		t.Fatalf("zero read: %v %v", end, err)
	}
	if end, err := d.WriteAt(42, nil, 0); err != nil || end != 42 {
		t.Fatalf("zero write: %v %v", end, err)
	}
}

func TestPowerCut(t *testing.T) {
	d := testDisk(64)
	buf := make([]byte, SectorSize)
	d.PowerCutAfter(2)
	if _, err := d.WriteSectors(0, 0, 1, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteSectors(0, 1, 1, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteSectors(0, 2, 1, buf); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("3rd write: got %v", err)
	}
	// Reads still work (recovery path).
	if _, err := d.ReadSectors(0, 0, 1, buf); err != nil {
		t.Fatal(err)
	}
	d.PowerRestore()
	if _, err := d.WriteSectors(0, 2, 1, buf); err != nil {
		t.Fatalf("after restore: %v", err)
	}
	// Disarm with negative n.
	d.PowerCutAfter(-1)
	if _, err := d.WriteSectors(0, 3, 1, buf); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotDeepCopy(t *testing.T) {
	d := testDisk(16)
	buf := bytes.Repeat([]byte{0x5A}, SectorSize)
	if _, err := d.WriteSectors(0, 0, 1, buf); err != nil {
		t.Fatal(err)
	}
	snap := d.Snapshot()
	// Mutate the disk after snapshotting.
	buf2 := bytes.Repeat([]byte{0xA5}, SectorSize)
	if _, err := d.WriteSectors(0, 0, 1, buf2); err != nil {
		t.Fatal(err)
	}
	for _, c := range snap {
		if c[0] != 0x5A {
			t.Fatal("snapshot not isolated from later writes")
		}
	}
}

// Property: WriteAt/ReadAt behave like a flat byte array for arbitrary
// in-range offsets and lengths.
func TestByteGranularModelProperty(t *testing.T) {
	const sectors = 32
	d := testDisk(sectors)
	model := make([]byte, sectors*SectorSize)
	rng := rand.New(rand.NewSource(1))

	f := func(off16 uint16, ln16 uint16, seed int64) bool {
		off := int64(off16) % (sectors*SectorSize - 1)
		ln := int64(ln16) % 3 * SectorSize / 2
		if off+ln > sectors*SectorSize {
			ln = sectors*SectorSize - off
		}
		p := make([]byte, ln)
		rng.Read(p)
		if _, err := d.WriteAt(0, p, off); err != nil {
			return false
		}
		copy(model[off:], p)
		// Read back a window around the write.
		lo := off - 64
		if lo < 0 {
			lo = 0
		}
		hi := off + ln + 64
		if hi > sectors*SectorSize {
			hi = sectors * SectorSize
		}
		got := make([]byte, hi-lo)
		if _, err := d.ReadAt(0, got, lo); err != nil {
			return false
		}
		return bytes.Equal(got, model[lo:hi])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultCostModelSane(t *testing.T) {
	cm := DefaultCostModel()
	if cm.Channels < 1 || cm.ReadCost.Fixed <= 0 || cm.WriteCost.Fixed <= 0 {
		t.Fatalf("bad default cost model: %+v", cm)
	}
	// Write bandwidth should be lower than read bandwidth (per-byte cost higher).
	if cm.WriteCost.PerByte <= cm.ReadCost.PerByte {
		t.Fatal("expected write per-byte cost above read")
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("bad", 0, DefaultCostModel())
}
