package simdisk

// fault_test.go: each device-level fault primitive in isolation — armed
// with probability 1 so a single command demonstrates the behavior, and
// checked for the always-loud / never-silent contract each one carries.

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
)

func newFaultDisk(t *testing.T) *Disk {
	t.Helper()
	return New("faulty", 1024, DefaultCostModel())
}

func always(k fault.Kind) fault.Config {
	return fault.Config{Prob: map[fault.Kind]float64{k: 1}}
}

func sectorOf(b byte) []byte {
	p := make([]byte, SectorSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestFaultReadError(t *testing.T) {
	d := newFaultDisk(t)
	if _, err := d.WriteSectors(0, 0, 1, sectorOf(0xAB)); err != nil {
		t.Fatal(err)
	}
	d.SetFaults(fault.NewPlan(1, always(fault.ReadError)).Injector("d"))
	_, err := d.ReadSectors(0, 0, 1, make([]byte, SectorSize))
	if !errors.Is(err, fault.ErrReadFault) || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("read error = %v, want ErrReadFault wrapping ErrInjected", err)
	}
	// Disarm: the media was never touched.
	d.SetFaults(nil)
	got := make([]byte, SectorSize)
	if _, err := d.ReadSectors(0, 0, 1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, sectorOf(0xAB)) {
		t.Fatal("media changed by an injected read error")
	}
}

func TestFaultBitRotTransient(t *testing.T) {
	d := newFaultDisk(t)
	want := sectorOf(0x5C)
	if _, err := d.WriteSectors(0, 3, 1, want); err != nil {
		t.Fatal(err)
	}
	d.SetFaults(fault.NewPlan(2, always(fault.BitRot)).Injector("d"))
	got := make([]byte, SectorSize)
	if _, err := d.ReadSectors(0, 3, 1, got); err != nil {
		t.Fatal(err)
	}
	if diff := diffBits(got, want); diff != 1 {
		t.Fatalf("transient rot changed %d bits of the transfer, want 1", diff)
	}
	// The media itself is intact: a clean read returns the original.
	d.SetFaults(nil)
	clean := make([]byte, SectorSize)
	if _, err := d.ReadSectors(0, 3, 1, clean); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean, want) {
		t.Fatal("transient bit rot persisted to media")
	}
}

func TestFaultBitRotPersistent(t *testing.T) {
	d := newFaultDisk(t)
	want := sectorOf(0x5C)
	if _, err := d.WriteSectors(0, 3, 1, want); err != nil {
		t.Fatal(err)
	}
	cfg := always(fault.BitRot)
	cfg.PersistentRot = true
	d.SetFaults(fault.NewPlan(2, cfg).Injector("d"))
	got := make([]byte, SectorSize)
	if _, err := d.ReadSectors(0, 3, 1, got); err != nil {
		t.Fatal(err)
	}
	if diff := diffBits(got, want); diff != 1 {
		t.Fatalf("persistent rot changed %d bits, want 1", diff)
	}
	// Disarmed, the damage is still there — and stays the same.
	d.SetFaults(nil)
	clean := make([]byte, SectorSize)
	if _, err := d.ReadSectors(0, 3, 1, clean); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean, got) {
		t.Fatal("persistent rot did not survive on media")
	}
	// Rewriting heals it.
	if _, err := d.WriteSectors(0, 3, 1, want); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadSectors(0, 3, 1, clean); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clean, want) {
		t.Fatal("rewrite did not heal persistent rot")
	}
}

func TestFaultTornWrite(t *testing.T) {
	d := newFaultDisk(t)
	// Seed four sectors with a known pattern.
	old := append(append(append(append([]byte{}, sectorOf(1)...), sectorOf(2)...), sectorOf(3)...), sectorOf(4)...)
	if _, err := d.WriteSectors(0, 0, 4, old); err != nil {
		t.Fatal(err)
	}
	d.SetFaults(fault.NewPlan(5, always(fault.TornWrite)).Injector("d"))
	neu := append(append(append(append([]byte{}, sectorOf(11)...), sectorOf(12)...), sectorOf(13)...), sectorOf(14)...)
	_, err := d.WriteSectors(0, 0, 4, neu)
	if !errors.Is(err, fault.ErrTornWrite) {
		t.Fatalf("torn write error = %v, want ErrTornWrite", err)
	}
	d.SetFaults(nil)
	got := make([]byte, 4*SectorSize)
	if _, err := d.ReadSectors(0, 0, 4, got); err != nil {
		t.Fatal(err)
	}
	// Every sector must be exactly the old or exactly the new content —
	// a prefix of new, then old — never a blend.
	sawOld := false
	for i := 0; i < 4; i++ {
		s := got[i*SectorSize : (i+1)*SectorSize]
		switch {
		case bytes.Equal(s, neu[i*SectorSize:(i+1)*SectorSize]):
			if sawOld {
				t.Fatalf("sector %d is new after an old sector: not a prefix tear", i)
			}
		case bytes.Equal(s, old[i*SectorSize:(i+1)*SectorSize]):
			sawOld = true
		default:
			t.Fatalf("sector %d is neither old nor new content", i)
		}
	}
	if !sawOld {
		t.Fatal("torn write persisted everything; tear point must be < n")
	}
}

func TestFaultLatencySpike(t *testing.T) {
	d := newFaultDisk(t)
	base, err := d.ReadSectors(0, 0, 1, make([]byte, SectorSize))
	if err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	cfg := always(fault.LatencySpike)
	cfg.Delay = 5 * time.Millisecond
	d.SetFaults(fault.NewPlan(3, cfg).Injector("d"))
	slow, err := d.ReadSectors(0, 0, 1, make([]byte, SectorSize))
	if err != nil {
		t.Fatal(err)
	}
	if got := slow.Sub(base); got < 5*time.Millisecond {
		t.Fatalf("latency spike added %v, want >= 5ms", got)
	}
}

func diffBits(a, b []byte) int {
	n := 0
	for i := range a {
		for x := a[i] ^ b[i]; x != 0; x &= x - 1 {
			n++
		}
	}
	return n
}
