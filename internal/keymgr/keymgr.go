// Package keymgr is the key-lifecycle subsystem: online re-keying of an
// encrypted virtual disk and crypto-erase, the two capabilities the
// paper's per-block metadata makes cheap that length-preserving disk
// encryption cannot have (§1, §4). A Rekeyer mints the next key epoch in
// the image's LUKS-style container, then walks the image object by
// object — under live IO — re-sealing every block still carrying the old
// epoch tag. New writes always seal under the newest epoch, so the
// walker and the workload converge; progress is persisted in the image
// header's OMAP after every object, so a crashed client resumes where it
// left off instead of restarting a multi-terabyte sweep. When the walk
// completes, the retired epoch's wrapped key is destroyed: from that
// moment nothing — not even a passphrase holder — can decrypt data that
// was sealed under it (including pre-rekey snapshot clones), which is
// the LUKS2 "online re-encryption journal" workflow collapsed into a
// metadata tag plus a background walker.
//
// The control plane (this package: key ops, progress records) is
// deliberately separate from the offloadable datapath (internal/core's
// seal/open pipeline), following the FlexBSO split of PAPERS.md.
package keymgr

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/luks"
	"repro/internal/rbd"
	"repro/internal/telemetry"
	"repro/internal/vtime"
)

// progressKey is the header-OMAP key holding the persisted rekey cursor.
const progressKey = "keymgr.rekey"

var (
	// ErrRekeyActive reports a Start while an unfinished rekey exists —
	// resume it instead (a second transition would strand epochs).
	ErrRekeyActive = errors.New("keymgr: rekey already in progress; resume it")
	// ErrNoRekey reports a Resume with no persisted progress record.
	ErrNoRekey = errors.New("keymgr: no rekey in progress")
)

// Progress is the persisted rekey cursor.
type Progress struct {
	From    uint32 `json:"from"`     // retiring epoch
	To      uint32 `json:"to"`       // target epoch (container current)
	NextObj int64  `json:"next_obj"` // first object not yet walked
	Objects int64  `json:"objects"`  // walk domain, fixed at Start
	// Rekeyed counts blocks re-sealed so far (informational; not part of
	// crash-safety — the walker re-derives per-block work from epoch tags).
	Rekeyed int64 `json:"rekeyed"`
}

// Done reports whether the walk has covered every object.
func (p Progress) Done() bool { return p.NextObj >= p.Objects }

// valid reports whether a decoded cursor is internally coherent and
// matches the image's walk domain; anything else gets the same
// restart-from-scratch treatment as an undecodable record.
func (p Progress) valid(objects int64) bool {
	return p.NextObj >= 0 && p.NextObj <= p.Objects && p.Objects == objects
}

// Rekeyer drives one epoch transition on one image.
type Rekeyer struct {
	img  *core.EncryptedImage
	prog Progress
	pace *vtime.Pacer
	met  walkerMetrics
}

// newRekeyer binds a walker to its image-labeled progress gauges.
func newRekeyer(img *core.EncryptedImage, prog Progress) *Rekeyer {
	return &Rekeyer{img: img, prog: prog, met: newWalkerMetrics(img.Image().Name())}
}

// SetPace installs a virtual-time admission budget (IOPS + bytes/s caps)
// on the walker, bounding its interference on foreground IO the way
// Ceph's osd_recovery limits bound recovery. A nil pacer removes the
// cap. The same pacer may be shared with other walkers (e.g. a clone
// flatten) to cap their combined rate.
func (r *Rekeyer) SetPace(p *vtime.Pacer) { r.pace = p }

// Progress returns the current cursor.
func (r *Rekeyer) Progress() Progress { return r.prog }

// loadProgress reads the persisted cursor, reporting found=false when no
// rekey is in flight. The on-disk protocol is rbd's shared walker-cursor
// record (one JSON blob per walker in the header OMAP).
func loadProgress(at vtime.Time, img *core.EncryptedImage) (Progress, bool, vtime.Time, error) {
	var p Progress
	found, end, err := img.Image().LoadCursor(at, progressKey, &p)
	if err != nil {
		return Progress{}, false, at, err
	}
	return p, found, end, nil
}

func (r *Rekeyer) persist(at vtime.Time) (vtime.Time, error) {
	return r.img.Image().SaveCursor(at, progressKey, r.prog)
}

func (r *Rekeyer) clearProgress(at vtime.Time) (vtime.Time, error) {
	return r.img.Image().ClearCursor(at, progressKey)
}

// Start begins the next epoch transition. The progress record is
// persisted FIRST (the durable statement of intent), then epoch N+1 is
// minted and persisted in the container — every write from there on
// seals under it. A crash between the two leaves a record targeting an
// epoch the container does not have yet; Resume detects that and
// finishes Start's job, so no transition can be stranded half-begun
// with the retiring key left alive forever. The data walk happens in
// Step/Run.
func Start(at vtime.Time, img *core.EncryptedImage) (*Rekeyer, vtime.Time, error) {
	if _, found, end, err := loadProgress(at, img); err != nil {
		return nil, at, err
	} else if found {
		return nil, end, ErrRekeyActive
	}
	from := img.CurrentEpoch()
	r := newRekeyer(img, Progress{From: from, To: from + 1, Objects: img.ObjectCount()})
	at, err := r.persist(at)
	if err != nil {
		return nil, at, err
	}
	r.publish(at)
	to, at, err := img.BeginEpoch(at)
	if err != nil {
		// BeginEpoch refused (legacy geometry, persist failure, ...):
		// withdraw the intent record so the image is not wedged behind
		// ErrRekeyActive forever.
		if end, cerr := r.clearProgress(at); cerr == nil {
			at = end
		}
		return nil, at, err
	}
	if to != r.prog.To {
		if end, cerr := r.clearProgress(at); cerr == nil {
			at = end
		}
		return nil, at, fmt.Errorf("keymgr: container minted epoch %d, progress record expected %d", to, r.prog.To)
	}
	telemetry.Log.Append(at, telemetry.EventRekeyStart, img.Image().Name(), "epoch transition", int64(to))
	return r, at, nil
}

// Resume reattaches to an interrupted rekey on a freshly loaded image —
// the crash-recovery path. Normally the container already carries both
// epochs; if the crash hit between Start's progress record and the
// container persist, the target epoch is minted now. The walker then
// continues from the persisted cursor; any object the crashed walker
// half-skipped is re-examined block by block, which is idempotent
// because re-sealing keys off the per-block epoch tags.
func Resume(at vtime.Time, img *core.EncryptedImage) (*Rekeyer, vtime.Time, error) {
	p, found, at, err := loadProgress(at, img)
	switch {
	case errors.Is(err, rbd.ErrCorruptCursor):
		return restartFromCorrupt(at, img)
	case err != nil:
		return nil, at, err
	case !found:
		return nil, at, ErrNoRekey
	case !p.valid(img.ObjectCount()):
		return restartFromCorrupt(at, img)
	}
	switch cur := img.CurrentEpoch(); {
	case cur == p.To:
		// Normal resume.
	case cur == p.From:
		// Crashed inside Start: the intent is durable but the epoch is
		// not. Mint it and carry on.
		to, end, err := img.BeginEpoch(at)
		if err != nil {
			return nil, at, err
		}
		at = end
		if to != p.To {
			return nil, at, fmt.Errorf("keymgr: container minted epoch %d, progress record expected %d", to, p.To)
		}
	default:
		return nil, at, fmt.Errorf("keymgr: progress targets epoch %d but container is at %d (Abort to discard the record and Start a fresh transition)", p.To, cur)
	}
	r := newRekeyer(img, p)
	r.publish(at)
	return r, at, nil
}

// restartFromCorrupt replaces an undecodable (or out-of-domain) rekey
// cursor with a full re-walk toward the container's current epoch. The
// record's existence proves a transition was in flight; its position is
// lost. Walking every object from zero is safe — re-sealing keys off
// per-block epoch tags, so already-converted blocks are no-ops — and
// completion destroys every non-target epoch, which includes whatever
// retired key the lost record was retiring. The fresh record is
// persisted immediately so a second crash resumes normally.
func restartFromCorrupt(at vtime.Time, img *core.EncryptedImage) (*Rekeyer, vtime.Time, error) {
	cur := img.CurrentEpoch()
	r := newRekeyer(img, Progress{From: cur, To: cur, Objects: img.ObjectCount()})
	at, err := r.persist(at)
	if err != nil {
		return nil, at, err
	}
	r.publish(at)
	return r, at, nil
}

// Abort withdraws an image's rekey progress record without touching any
// keys — the recovery path when out-of-band epoch changes left a record
// no Resume can reattach to. Blocks keep whatever epoch tag they carry
// (all tagged epochs stay live, so nothing becomes unreadable); the next
// completed transition re-seals them and destroys every retired epoch.
func Abort(at vtime.Time, img *core.EncryptedImage) (vtime.Time, error) {
	r := newRekeyer(img, Progress{})
	return r.clearProgress(at)
}

// Step processes one object (or finishes the transition when every
// object is walked: the retired epoch's key is destroyed and the
// progress record removed). It returns done=true once the transition is
// fully complete.
func (r *Rekeyer) Step(at vtime.Time) (done bool, end vtime.Time, err error) {
	if r.prog.Done() {
		// The walk re-sealed every block not already at To, so EVERY
		// older live epoch is now unreferenced on the head — destroy them
		// all, not just From (an earlier aborted transition may have left
		// an orphan). ErrEpochUnknown is tolerated so a crash between
		// DropEpoch and clearProgress re-finishes cleanly.
		for _, ep := range r.img.Epochs() {
			if ep == r.prog.To {
				continue
			}
			if at, err = r.img.DropEpoch(at, ep); err != nil && !errors.Is(err, luks.ErrEpochUnknown) {
				return false, at, err
			}
		}
		at, err = r.clearProgress(at)
		if err == nil {
			r.publish(at)
			telemetry.Log.Append(at, telemetry.EventRekeyFinish, r.img.Image().Name(), "blocks re-sealed", r.prog.Rekeyed)
		}
		return err == nil, at, err
	}
	// Pacing: one walker op is admitted against the budget up front; the
	// bytes actually re-sealed (unknown until the object was examined)
	// are charged afterwards as debt against the next admission.
	n, at, err := r.img.RekeyObject(r.pace.Admit(at, 0), r.prog.NextObj)
	if err != nil {
		return false, at, err
	}
	r.pace.Charge(2 * int64(n) * r.img.Options().BlockSize) // read + re-write
	r.prog.NextObj++
	r.prog.Rekeyed += int64(n)
	r.met.blocks.Add(int64(n))
	at, err = r.persist(at)
	r.publish(at)
	return false, at, err
}

// Run drives Step until the transition completes. It is the paced
// background-walker entry point: idle virtual time between rekey IOs is
// whatever the caller's clock does — the walker itself consumes client
// crypto and cluster resources exactly like foreground IO, so fio
// workloads measured concurrently see its interference.
func (r *Rekeyer) Run(at vtime.Time) (vtime.Time, error) {
	for {
		done, end, err := r.Step(at)
		if err != nil {
			return end, err
		}
		at = end
		if done {
			return at, nil
		}
	}
}

// Active reports whether an image has an unfinished rekey, and its
// cursor.
func Active(at vtime.Time, img *core.EncryptedImage) (bool, Progress, vtime.Time, error) {
	p, found, end, err := loadProgress(at, img)
	return found, p, end, err
}
