package keymgr

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/vtime"
)

// TestPacedRekeyBoundsForegroundLatency closes the ROADMAP interference
// item: with a vtime admission budget on the walker, a foreground fio
// workload's tail latency during an online rekey stays within a small
// factor of its quiet-image baseline, and the walker's completion time
// stretches to (at least) its op budget.
//
// The walker goroutine sleeps a beat of real time between steps, for the
// same reason fio.Run admits jobs through a conservative window: a
// virtual-time actor that runs far ahead of its peers in real time
// stamps the shared busy-until resources in the virtual future, and
// earlier foreground arrivals then queue behind slots that "haven't
// happened yet". A genuinely paced walker spends wall-clock time waiting
// between admissions, which is what the sleep stands in for.
func TestPacedRekeyBoundsForegroundLatency(t *testing.T) {
	e := newEncrypted(t, core.SchemeXTSRand, core.LayoutObjectEnd)
	if _, err := fio.Precondition(e, imgSize, bs, 0); err != nil {
		t.Fatal(err)
	}
	spec := fio.Spec{Pattern: fio.RandRead, BlockSize: bs, QueueDepth: 4, Span: 2 << 20, TotalOps: 256, Seed: 9}

	baseline, err := fio.Run(spec, e, 0)
	if err != nil {
		t.Fatal(err)
	}

	r, _, err := Start(0, e)
	if err != nil {
		t.Fatal(err)
	}
	r.SetPace(vtime.NewPacer(50, 64<<20)) // 50 walker ops/s + 64 MB/s

	var wg sync.WaitGroup
	wg.Add(1)
	var rekeyEnd vtime.Time
	var rekeyErr error
	go func() {
		defer wg.Done()
		at := vtime.Time(0)
		for {
			done, end, err := r.Step(at)
			if err != nil || done {
				rekeyEnd, rekeyErr = end, err
				return
			}
			at = end
			//vetrepo:ignore vtimeonly deliberate real-time pacing beat; the measured quantities stay virtual
			time.Sleep(20 * time.Millisecond) // real-time beat ≈ the virtual admission spacing
		}
	}()
	during, err := fio.Run(spec, e, 0)
	wg.Wait()
	if err != nil || rekeyErr != nil {
		t.Fatalf("fio: %v, rekey: %v", err, rekeyErr)
	}

	t.Logf("baseline p99=%v during-paced-rekey p99=%v rekey end=%v",
		baseline.Latencies.P99, during.Latencies.P99, rekeyEnd)

	// The budget was applied: 8 objects at 50 ops/s cannot finish before
	// 7 admission slots (140ms), plus the re-seal byte debt.
	if rekeyEnd < vtime.Time(140*time.Millisecond) {
		t.Fatalf("paced rekey finished at %v; budget not applied", rekeyEnd)
	}
	// Foreground p99 stays bounded. Measured: the paced walk holds p99 at
	// ~3x the quiet baseline — one in-progress object re-seal is all a
	// foreground op can queue behind — while a walker whose virtual
	// admissions are not matched by real waiting (the failure mode the
	// pacer + beat exist to prevent) lands at ~8x. 5x is the alarm line.
	if limit := 5 * baseline.Latencies.P99; during.Latencies.P99 > limit {
		t.Fatalf("p99 during paced rekey %v exceeds %v (baseline %v)",
			during.Latencies.P99, limit, baseline.Latencies.P99)
	}
}
