package keymgr

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/rados"
	"repro/internal/rbd"
)

// scribbleProgress overwrites the persisted rekey cursor with raw bytes,
// simulating a torn OMAP write under the walker.
func scribbleProgress(t *testing.T, e *core.EncryptedImage, raw []byte) {
	t.Helper()
	res, _, err := e.Image().OperateHeader(0, []rados.Op{{
		Kind:  rados.OpOmapSet,
		Pairs: []rados.Pair{{Key: []byte(progressKey), Value: raw}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Status != rados.StatusOK {
		t.Fatalf("raw omap set: %v", res[0].Status)
	}
}

// TestResumeCorruptCursorRestartsCleanly corrupts the rekey cursor
// mid-walk and checks Resume's recovery contract: no panic, no error, a
// fresh full walk toward the container's current epoch that converges —
// every block re-sealed, retired epochs destroyed, data intact.
func TestResumeCorruptCursorRestartsCleanly(t *testing.T) {
	e := newEncrypted(t, core.SchemeXTSRand, core.LayoutOMAP)
	data := make([]byte, 3<<20)
	rand.New(rand.NewSource(11)).Read(data)
	if _, err := e.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	r, _, err := Start(0, e)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := r.Step(0); err != nil {
			t.Fatal(err)
		}
	}

	for _, tc := range []struct {
		name string
		raw  []byte
	}{
		{"garbage", []byte("\xde\xadnot a cursor")},
		{"truncated", []byte(`{"from":1,"to":2,"next_o`)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			scribbleProgress(t, e, tc.raw)

			// The raw load must classify as corrupt, not as "no rekey".
			if _, _, _, err := loadProgress(0, e); !errors.Is(err, rbd.ErrCorruptCursor) {
				t.Fatalf("loadProgress: %v, want ErrCorruptCursor", err)
			}

			e2 := reload(t, e)
			r2, _, err := Resume(0, e2)
			if err != nil {
				t.Fatalf("Resume over corrupt cursor: %v", err)
			}
			cur := e2.CurrentEpoch()
			p := r2.Progress()
			if p.From != cur || p.To != cur || p.NextObj != 0 || p.Objects != e2.ObjectCount() {
				t.Fatalf("restarted cursor %+v, want full walk to epoch %d", p, cur)
			}
			// The replacement record is durable: a second crash-resume
			// sees a clean record, not the corruption.
			if _, _, err := Resume(0, reload(t, e)); err != nil {
				t.Fatalf("re-Resume after restart: %v", err)
			}
			if _, err := r2.Run(0); err != nil {
				t.Fatal(err)
			}
			if eps := e2.Epochs(); len(eps) != 1 || eps[0] != cur {
				t.Fatalf("epochs after converged restart: %v, want [%d]", eps, cur)
			}
			if found, _, _, err := Active(0, e2); err != nil || found {
				t.Fatalf("record survives completion: found=%v err=%v", found, err)
			}
			got := make([]byte, len(data))
			if _, err := e2.ReadAt(0, got, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("data lost across corrupt-cursor restart")
			}

			// Re-arm a half-done walk for the next corruption flavor.
			r3, _, err := Start(0, e2)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := r3.Step(0); err != nil {
				t.Fatal(err)
			}
			e = e2
		})
	}
}

// TestResumeOutOfRangeCursorRestarts covers records that decode fine
// but carry positions outside the image's walk domain — they must get
// the same restart treatment as undecodable bytes, not drive the walker
// off the end of the image.
func TestResumeOutOfRangeCursorRestarts(t *testing.T) {
	e := newEncrypted(t, core.SchemeXTSRand, core.LayoutObjectEnd)
	data := make([]byte, 1<<20)
	rand.New(rand.NewSource(12)).Read(data)
	if _, err := e.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	r, _, err := Start(0, e)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Step(0); err != nil {
		t.Fatal(err)
	}

	objects := e.ObjectCount()
	for _, tc := range []struct {
		name string
		prog Progress
	}{
		{"next-beyond-domain", Progress{From: 0, To: 1, NextObj: objects + 5, Objects: objects + 10}},
		{"negative-next", Progress{From: 0, To: 1, NextObj: -3, Objects: objects}},
		{"wrong-domain", Progress{From: 0, To: 1, NextObj: 0, Objects: objects * 100}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := e.Image().SaveCursor(0, progressKey, tc.prog); err != nil {
				t.Fatal(err)
			}
			e2 := reload(t, e)
			r2, _, err := Resume(0, e2)
			if err != nil {
				t.Fatalf("Resume over out-of-range cursor: %v", err)
			}
			p := r2.Progress()
			if p.NextObj != 0 || p.Objects != objects {
				t.Fatalf("restarted cursor %+v, want fresh full walk of %d objects", p, objects)
			}
			if _, err := r2.Run(0); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(data))
			if _, err := e2.ReadAt(0, got, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("data lost across out-of-range restart")
			}
			// Re-arm for the next flavor.
			r3, _, err := Start(0, e2)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := r3.Step(0); err != nil {
				t.Fatal(err)
			}
			e = e2
		})
	}
}
