package keymgr

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/simdisk"
)

const (
	imgSize = 8 << 20
	objSize = 1 << 20
	bs      = 4096
)

func testClient(t testing.TB) *rados.Client {
	t.Helper()
	cfg := rados.DefaultClusterConfig()
	cfg.OSDs = 3
	cfg.DisksPerOSD = 2
	cfg.DiskSectors = (768 << 20) / simdisk.SectorSize
	cfg.PGNum = 16
	cfg.Blob.ObjectCapacity = 1<<20 + 64<<10
	cfg.Blob.KVBytes = 64 << 20
	cfg.Blob.KV.MemtableBytes = 256 << 10
	cfg.Blob.KV.WALBytes = 4 << 20
	c, err := rados.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c.NewClient("keymgr-test")
}

var imgCounter int

func newEncrypted(t testing.TB, scheme core.Scheme, layout core.Layout) *core.EncryptedImage {
	t.Helper()
	cl := testClient(t)
	imgCounter++
	name := fmt.Sprintf("kimg%d", imgCounter)
	if _, err := rbd.CreateWithObjectSize(0, cl, "rbd", name, imgSize, objSize); err != nil {
		t.Fatal(err)
	}
	img, _, err := rbd.Open(0, cl, "rbd", name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Format(0, img, []byte("s3cret"), core.Options{Scheme: scheme, Layout: layout}); err != nil {
		t.Fatal(err)
	}
	e, _, err := core.Load(0, img, []byte("s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func reload(t *testing.T, e *core.EncryptedImage) *core.EncryptedImage {
	t.Helper()
	e2, _, err := core.Load(0, e.Image(), []byte("s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	return e2
}

func allCombos() []struct {
	Scheme core.Scheme
	Layout core.Layout
} {
	return []struct {
		Scheme core.Scheme
		Layout core.Layout
	}{
		{core.SchemeLUKS2, core.LayoutNone},
		{core.SchemeEME2Det, core.LayoutNone},
		{core.SchemeXTSRand, core.LayoutUnaligned},
		{core.SchemeXTSRand, core.LayoutObjectEnd},
		{core.SchemeXTSRand, core.LayoutOMAP},
		{core.SchemeGCM, core.LayoutUnaligned},
		{core.SchemeGCM, core.LayoutObjectEnd},
		{core.SchemeGCM, core.LayoutOMAP},
		{core.SchemeEME2Rand, core.LayoutUnaligned},
		{core.SchemeEME2Rand, core.LayoutObjectEnd},
		{core.SchemeEME2Rand, core.LayoutOMAP},
	}
}

// TestLiveRekeyUnderLoad is the headline acceptance test: for every
// scheme×layout combo an image re-keys epoch 0→1 while an fio workload
// hammers part of it. Data must read back intact during the walk and
// after; a second transition is crashed mid-walk and resumed on a fresh
// handle; and once the retired key is destroyed, the fact that every
// read still succeeds proves no block remained under the old epoch.
func TestLiveRekeyUnderLoad(t *testing.T) {
	// The model region is never touched by fio, so its contents are
	// checkable at any moment. fio owns [0, fioSpan).
	const fioSpan = 2 << 20
	for _, combo := range allCombos() {
		combo := combo
		t.Run(fmt.Sprintf("%v/%v", combo.Scheme, combo.Layout), func(t *testing.T) {
			e := newEncrypted(t, combo.Scheme, combo.Layout)
			rng := rand.New(rand.NewSource(42))
			model := make([]byte, imgSize-fioSpan)
			rng.Read(model)
			if _, err := e.WriteAt(0, model, fioSpan); err != nil {
				t.Fatal(err)
			}
			// Leave holes: punch two blocks so sparse semantics are also
			// checked across the rekey.
			holeOff := int64(fioSpan + 5*bs)
			if _, err := e.Discard(0, holeOff, 2*bs); err != nil {
				t.Fatal(err)
			}
			clearRange(model, holeOff-fioSpan, 2*bs)

			if e.CurrentEpoch() != 0 {
				t.Fatalf("fresh image at epoch %d", e.CurrentEpoch())
			}

			// --- Transition 0→1 under live fio load ---
			r, _, err := Start(0, e)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := Start(0, e); !errors.Is(err, ErrRekeyActive) {
				t.Fatalf("double Start: %v", err)
			}
			if e.CurrentEpoch() != 1 {
				t.Fatalf("current epoch %d after Start", e.CurrentEpoch())
			}

			var wg sync.WaitGroup
			wg.Add(1)
			var fioErr error
			go func() {
				defer wg.Done()
				_, fioErr = fio.Run(fio.Spec{
					Pattern:    fio.RandWrite,
					BlockSize:  bs,
					QueueDepth: 4,
					Span:       fioSpan,
					TotalOps:   96,
					Seed:       7,
				}, e, 0)
			}()

			// Walk while the workload runs, model-checking mid-flight.
			buf := make([]byte, 64<<10)
			for done := false; !done; {
				var err error
				done, _, err = r.Step(0)
				if err != nil {
					t.Fatal(err)
				}
				off := fioSpan + rng.Int63n(int64(len(model)-len(buf))/bs)*bs
				if _, err := e.ReadAt(0, buf, off); err != nil {
					t.Fatalf("read during rekey: %v", err)
				}
				if !bytes.Equal(buf, model[off-fioSpan:off-fioSpan+int64(len(buf))]) {
					t.Fatalf("data changed under rekey at %d", off)
				}
			}
			wg.Wait()
			if fioErr != nil {
				t.Fatalf("fio during rekey: %v", fioErr)
			}
			if got := e.Epochs(); len(got) != 1 || got[0] != 1 {
				t.Fatalf("epochs after transition: %v", got)
			}
			if found, _, _, err := Active(0, e); err != nil || found {
				t.Fatalf("progress record survived completion: %v %v", found, err)
			}

			// The retired epoch-0 key is destroyed; every block must have
			// been re-sealed, or these reads would fail with ErrKeyErased.
			verifyWholeImage(t, e, model, fioSpan)

			// --- Transition 1→2, crashed mid-walk and resumed ---
			r2, _, err := Start(0, e)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3; i++ { // walk 3 of 8 objects, then "crash"
				if _, _, err := r2.Step(0); err != nil {
					t.Fatal(err)
				}
			}
			e2 := reload(t, e) // fresh handle, cold caches — the recovery path
			if _, _, err := Start(0, e2); !errors.Is(err, ErrRekeyActive) {
				t.Fatalf("Start over interrupted rekey: %v", err)
			}
			r3, _, err := Resume(0, e2)
			if err != nil {
				t.Fatal(err)
			}
			if p := r3.Progress(); p.From != 1 || p.To != 2 || p.NextObj != 3 {
				t.Fatalf("resumed cursor %+v", p)
			}
			if _, err := r3.Run(0); err != nil {
				t.Fatal(err)
			}
			if got := e2.Epochs(); len(got) != 1 || got[0] != 2 {
				t.Fatalf("epochs after resumed transition: %v", got)
			}
			verifyWholeImage(t, e2, model, fioSpan)

			// Resume with nothing in flight reports ErrNoRekey.
			if _, _, err := Resume(0, e2); !errors.Is(err, ErrNoRekey) {
				t.Fatalf("Resume idle: %v", err)
			}
		})
	}
}

func clearRange(model []byte, off, n int64) {
	clear(model[off : off+n])
}

// verifyWholeImage reads every byte through a handle holding only the
// newest key: the model region must match exactly (holes included), and
// the fio region must decrypt without error (under gcm-auth that is an
// authenticated statement). Any block still sealed under a retired
// epoch would surface as ErrKeyErased here.
func verifyWholeImage(t *testing.T, e *core.EncryptedImage, model []byte, fioSpan int64) {
	t.Helper()
	got := make([]byte, imgSize)
	if _, err := e.ReadAt(0, got, 0); err != nil {
		t.Fatalf("post-rekey read: %v", err)
	}
	if !bytes.Equal(got[fioSpan:], model) {
		t.Fatal("model region corrupted by rekey")
	}
}

// TestRekeyedBlockNotDecryptableUnderOldKey pins the negative statement
// directly: after a completed transition the retired epoch is gone from
// the container, and a block planted with a forged old-epoch tag fails
// to decrypt (rather than silently decrypting under some surviving key).
func TestRekeyedBlockNotDecryptableUnderOldKey(t *testing.T) {
	e := newEncrypted(t, core.SchemeXTSRand, core.LayoutObjectEnd)
	data := bytes.Repeat([]byte{0xA5}, 4*bs)
	if _, err := e.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	r, _, err := Start(0, e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(0); err != nil {
		t.Fatal(err)
	}
	// Forge an epoch-0 tag onto block 0's stored metadata (attacker at
	// the OSD replaying a pre-rekey slot): the read must fail closed.
	ml := int64(e.MetaLen())
	res, _, err := e.Image().Operate(0, 0, 0, []rados.Op{{Kind: rados.OpRead, Off: objSize, Len: ml}})
	if err != nil || res[0].Status != rados.StatusOK {
		t.Fatalf("raw meta read: %v %v", err, res[0].Status)
	}
	slot := append([]byte(nil), res[0].Data...)
	slot[ml-4], slot[ml-3], slot[ml-2], slot[ml-1] = 0, 0, 0, 0 // epoch 0
	if _, _, err := e.Image().Operate(0, 0, 0, []rados.Op{{Kind: rados.OpWrite, Off: objSize, Data: slot}}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, bs)
	if _, err := e.ReadAt(0, buf, 0); !errors.Is(err, core.ErrKeyErased) {
		t.Fatalf("old-epoch block read: %v", err)
	}
}

// TestCryptoEraseDiscard is the second acceptance test: after Discard,
// blocks read as holes under every scheme×layout (exact sparse reads now
// hold for luks2/eme2-det via the allocation sidecar), neighbours
// survive, a cold reload agrees, and the stored ciphertext of a fully
// discarded object is zeros — unrecoverable no matter which keys the
// attacker retains.
func TestCryptoEraseDiscard(t *testing.T) {
	for _, combo := range allCombos() {
		combo := combo
		t.Run(fmt.Sprintf("%v/%v", combo.Scheme, combo.Layout), func(t *testing.T) {
			e := newEncrypted(t, combo.Scheme, combo.Layout)
			rng := rand.New(rand.NewSource(9))
			data := make([]byte, 3<<20) // objects 0,1,2
			rng.Read(data)
			if _, err := e.WriteAt(0, data, 0); err != nil {
				t.Fatal(err)
			}

			// Discard a range crossing the object 1/2 boundary, plus all
			// of object 0.
			dOff, dLen := int64(2<<20-8*bs), int64(16*bs)
			if _, err := e.Discard(0, dOff, dLen); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Discard(0, 0, objSize); err != nil {
				t.Fatal(err)
			}
			// Alignment is enforced like regular IO.
			if _, err := e.Discard(0, 100, bs); !errors.Is(err, core.ErrAlignment) {
				t.Fatalf("unaligned discard: %v", err)
			}

			want := append([]byte(nil), data...)
			clearRange(want, 0, objSize)
			clearRange(want, dOff, dLen)

			check := func(e *core.EncryptedImage, label string) {
				t.Helper()
				got := make([]byte, len(want))
				if _, err := e.ReadAt(0, got, 0); err != nil {
					t.Fatalf("%s read: %v", label, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s: discarded range not holes (or neighbours damaged)", label)
				}
			}
			check(e, "warm handle")
			check(reload(t, e), "cold reload")

			// Attacker view of the fully discarded object: its stored
			// payload is zeros up to its logical size. (Presence metadata
			// lives in KV — bitmap attr / OMAP — not in the payload.)
			res, _, err := e.Image().Operate(0, 0, 0, []rados.Op{{Kind: rados.OpStat}})
			if err != nil || res[0].Status != rados.StatusOK {
				t.Fatalf("stat: %v %v", err, res[0].Status)
			}
			raw, _, err := e.Image().Operate(0, 0, 0, []rados.Op{{Kind: rados.OpRead, Off: 0, Len: res[0].Size}})
			if err != nil || raw[0].Status != rados.StatusOK {
				t.Fatalf("raw read: %v", err)
			}
			for i, b := range raw[0].Data {
				if b != 0 {
					t.Fatalf("ciphertext survives crypto-erase at byte %d", i)
				}
			}
		})
	}
}

// TestAbortAndRestartRekey: withdrawing a mid-flight transition leaves
// all data readable (both epochs stay live), and the next completed
// transition sweeps up the orphaned epoch too — the container ends with
// exactly one live key.
func TestAbortAndRestartRekey(t *testing.T) {
	e := newEncrypted(t, core.SchemeXTSRand, core.LayoutOMAP)
	data := make([]byte, 2<<20)
	rand.New(rand.NewSource(3)).Read(data)
	if _, err := e.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	r, _, err := Start(0, e)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := r.Step(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Abort(0, e); err != nil {
		t.Fatal(err)
	}
	if found, _, _, err := Active(0, e); err != nil || found {
		t.Fatalf("record survives abort: %v %v", found, err)
	}
	// Mixed epochs 0/1 on disk, both keys live: everything still reads.
	got := make([]byte, len(data))
	if _, err := e.ReadAt(0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost by abort")
	}
	// The next transition (1→2) re-seals everything and destroys BOTH
	// retired epochs, orphan included.
	r2, _, err := Start(0, e)
	if err != nil {
		t.Fatal(err)
	}
	if p := r2.Progress(); p.From != 1 || p.To != 2 {
		t.Fatalf("restarted cursor %+v", p)
	}
	if _, err := r2.Run(0); err != nil {
		t.Fatal(err)
	}
	if eps := e.Epochs(); len(eps) != 1 || eps[0] != 2 {
		t.Fatalf("orphan epoch survives completed transition: %v", eps)
	}
	if _, err := e.ReadAt(0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost across abort+restart")
	}
}

// BenchmarkRekeySweep measures a full epoch transition over a
// preconditioned image (walker cost: whole-object read + open + re-seal
// + atomic write-back, per object). The CI bench smoke runs this at
// -benchtime=1x so rekey-path regressions surface in PRs.
func BenchmarkRekeySweep(b *testing.B) {
	e := newEncrypted(b, core.SchemeXTSRand, core.LayoutObjectEnd)
	data := make([]byte, imgSize)
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := e.WriteAt(0, data, 0); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(imgSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _, err := Start(0, e)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDiscardThenRewrite makes sure a punched block is a first-class
// citizen again after the next write.
func TestDiscardThenRewrite(t *testing.T) {
	for _, combo := range allCombos() {
		e := newEncrypted(t, combo.Scheme, combo.Layout)
		a := bytes.Repeat([]byte{1}, bs)
		b := bytes.Repeat([]byte{2}, bs)
		if _, err := e.WriteAt(0, a, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Discard(0, 0, bs); err != nil {
			t.Fatal(err)
		}
		if _, err := e.WriteAt(0, b, 0); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, bs)
		if _, err := e.ReadAt(0, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, b) {
			t.Fatalf("%v/%v: rewrite after discard lost", combo.Scheme, combo.Layout)
		}
	}
}
