package keymgr

// metrics.go: rekey-walker progress gauges, labeled by image, resolved
// once per Rekeyer so Step records allocation-free. The gauges make
// walker/foreground interference observable live: objects done vs
// total, blocks actually re-sealed, and the pacer's current debt (how
// far the admission frontier sits in the virtual future).

import (
	"repro/internal/telemetry"
	"repro/internal/vtime"
)

var (
	mRekeyDone = telemetry.NewGaugeVec("rekey_objects_done",
		"objects the rekey walker has completed", "image")
	mRekeyTotal = telemetry.NewGaugeVec("rekey_objects_total",
		"objects in the rekey walk domain", "image")
	mRekeyBlocks = telemetry.NewCounterVec("rekey_blocks_resealed_total",
		"blocks re-sealed under the target epoch", "image")
	mRekeyDebt = telemetry.NewGaugeVec("rekey_pacer_debt_ns",
		"rekey pacer debt in virtual nanoseconds (0 = unpaced or inside budget)", "image")
	mRekeyStall = telemetry.NewGaugeVec("rekey_pacer_stall_ns",
		"cumulative virtual time the rekey walker spent stalled in pacer admission", "image")
)

// walkerMetrics is the per-image bundle of resolved series.
type walkerMetrics struct {
	done, total, debt, stall *telemetry.Gauge
	blocks                   *telemetry.Counter
}

func newWalkerMetrics(image string) walkerMetrics {
	return walkerMetrics{
		done:   mRekeyDone.With(image),
		total:  mRekeyTotal.With(image),
		debt:   mRekeyDebt.With(image),
		stall:  mRekeyStall.With(image),
		blocks: mRekeyBlocks.With(image),
	}
}

// publish pushes the current cursor (and pacer debt at virtual time at)
// into the gauges.
func (r *Rekeyer) publish(at vtime.Time) {
	r.met.done.Set(r.prog.NextObj)
	r.met.total.Set(r.prog.Objects)
	r.met.debt.SetDuration(r.pace.Debt(at))
	r.met.stall.SetDuration(r.pace.Stall())
}
