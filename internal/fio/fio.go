// Package fio generates block-device workloads and measures bandwidth,
// standing in for the fio tool of §3.3: random or sequential reads and
// writes at a fixed block size with a bounded queue depth (the paper uses
// QD 32), reporting virtual-time bandwidth plus latency percentiles.
package fio

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/vtime"
)

// Target is a virtual-time block device: encrypted images, plain images
// and the dm-crypt comparator all satisfy it.
type Target interface {
	ReadAt(at vtime.Time, p []byte, off int64) (vtime.Time, error)
	WriteAt(at vtime.Time, p []byte, off int64) (vtime.Time, error)
	Size() int64
}

// Discarder is the optional crypto-erase surface (fio's trim support):
// targets that implement it can run workloads with a discard op mix.
type Discarder interface {
	Discard(at vtime.Time, off, length int64) (vtime.Time, error)
}

// Pattern selects the access pattern.
type Pattern int

// Patterns, named after fio's rw= values.
const (
	RandRead Pattern = iota
	RandWrite
	SeqRead
	SeqWrite
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case RandRead:
		return "randread"
	case RandWrite:
		return "randwrite"
	case SeqRead:
		return "read"
	case SeqWrite:
		return "write"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// ParsePattern is the inverse of String.
func ParsePattern(s string) (Pattern, error) {
	for _, p := range []Pattern{RandRead, RandWrite, SeqRead, SeqWrite} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("fio: unknown pattern %q", s)
}

// Reads reports whether the pattern reads.
func (p Pattern) Reads() bool { return p == RandRead || p == SeqRead }

// Spec describes one workload.
type Spec struct {
	Pattern    Pattern
	BlockSize  int64
	QueueDepth int
	// Span restricts IO to [0, Span) of the target (0 = whole target).
	Span int64
	// TotalOps ends the run after this many IOs.
	TotalOps int
	// Seed makes offset sequences reproducible.
	Seed int64
	// Fill, when set, deterministically patterns write payloads; reads
	// ignore it. (Zero payloads would defeat encryption-layer checks.)
	Fill byte
	// TrimPct makes that percentage of ops discards (fio's trim mix),
	// at random block-aligned offsets. The target must implement
	// Discarder.
	TrimPct int
}

func (s Spec) withDefaults(target Target) (Spec, error) {
	if s.BlockSize <= 0 {
		return s, errors.New("fio: block size required")
	}
	if s.QueueDepth <= 0 {
		s.QueueDepth = 32
	}
	if s.Span <= 0 || s.Span > target.Size() {
		s.Span = target.Size()
	}
	if s.Span < s.BlockSize {
		return s, fmt.Errorf("fio: span %d below block size %d", s.Span, s.BlockSize)
	}
	if s.TotalOps <= 0 {
		s.TotalOps = 256
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.TrimPct < 0 || s.TrimPct > 100 {
		return s, fmt.Errorf("fio: trim percentage %d out of range", s.TrimPct)
	}
	if s.TrimPct > 0 {
		if _, ok := target.(Discarder); !ok {
			return s, errors.New("fio: trim mix needs a target with Discard support")
		}
	}
	return s, nil
}

// Result summarizes one run.
type Result struct {
	Spec     Spec
	Ops      int
	Discards int // ops that were discards (counted in Ops, not Bytes)
	Bytes    int64
	Start    vtime.Time
	End      vtime.Time // latest virtual completion
	// WallTime is the host wall-clock duration of the run. Run does not
	// measure it — the simulation packages are virtual-time only
	// (vetrepo's vtimeonly analyzer enforces this) — the harness that
	// calls Run stamps it afterwards; see bench.timedRun and cmd/fiosim.
	WallTime  time.Duration
	Latencies LatencySummary // all ops merged
	// Per-op-type latency breakdowns (what fio prints per ddir). An op
	// type the run never issued has Ops == 0 and a zero summary.
	Reads, Writes, Trims OpStats
}

// LatencySummary holds virtual-time latency percentiles.
type LatencySummary struct {
	P50, P95, P99, Max time.Duration
}

// OpStats is the per-op-type slice of a run: op count, total virtual
// latency, and the percentile summary over just that op type.
type OpStats struct {
	Ops int
	Sum time.Duration // total virtual latency across these ops
	Lat LatencySummary
}

// Mean returns the average virtual latency of one op, or 0 when none ran.
func (o OpStats) Mean() time.Duration {
	if o.Ops == 0 {
		return 0
	}
	return o.Sum / time.Duration(o.Ops)
}

// MBps returns virtual-time bandwidth in MB/s (decimal, as fio reports).
func (r Result) MBps() float64 {
	d := r.End.Sub(r.Start)
	if d <= 0 {
		return 0
	}
	return float64(r.Bytes) / d.Seconds() / 1e6
}

// WallMBps returns real-CPU bandwidth in MB/s: bytes moved over the
// wall-clock time the run took on the host. The virtual-time figures
// reproduce the paper's y-axes; this one measures the client datapath
// itself (seal/open pipeline, layout staging, engine overhead), so
// speedups from the parallel pipeline show up here.
func (r Result) WallMBps() float64 {
	if r.WallTime <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.WallTime.Seconds() / 1e6
}

// IOPS returns virtual-time operations per second.
func (r Result) IOPS() float64 {
	d := r.End.Sub(r.Start)
	if d <= 0 {
		return 0
	}
	return float64(r.Ops) / d.Seconds()
}

// EffectiveQD reports the average virtual-time concurrency the run
// sustained: total per-op latency over the makespan (Little's law). A
// run that kept every job busy approaches the configured QueueDepth;
// admission stalls pull it down.
func (r Result) EffectiveQD() float64 {
	d := r.End.Sub(r.Start)
	if d <= 0 {
		return 0
	}
	return float64(r.Reads.Sum+r.Writes.Sum+r.Trims.Sum) / float64(d)
}

func (r Result) String() string {
	return fmt.Sprintf("%s bs=%dKiB qd=%d: %.1f MB/s, %.0f IOPS, p50=%v p99=%v",
		r.Spec.Pattern, r.Spec.BlockSize>>10, r.Spec.QueueDepth, r.MBps(), r.IOPS(),
		r.Latencies.P50, r.Latencies.P99)
}

// PerOpString renders the per-op-type latency breakdown, fio-style: one
// line per op type that actually ran.
func (r Result) PerOpString() string {
	s := ""
	for _, e := range []struct {
		name string
		o    OpStats
	}{{"read", r.Reads}, {"write", r.Writes}, {"trim", r.Trims}} {
		if e.o.Ops == 0 {
			continue
		}
		if s != "" {
			s += "\n"
		}
		s += fmt.Sprintf("  %-5s ops=%-6d mean=%-10v p50=%-10v p95=%-10v p99=%-10v max=%v",
			e.name, e.o.Ops, e.o.Mean(), e.o.Lat.P50, e.o.Lat.P95, e.o.Lat.P99, e.o.Lat.Max)
	}
	return s
}

// Run executes the workload. Each of QueueDepth jobs keeps one IO
// outstanding; IOs run concurrently in real time but are *admitted* in
// approximately virtual-time order (a conservative-simulation window):
// a job may issue its next IO only while its virtual clock is within a
// small adaptive window of the laggard's. Without this gate, jobs racing
// ahead in real time stamp the busy-until resources far into the virtual
// future and ops with earlier virtual arrivals queue behind them —
// causality violations that show up as a spurious latency tail.
//
// Admission is per-op: a completing job re-enters the moment its clock
// re-qualifies, with no barrier against its peers. The previous
// implementation admitted jobs in waves and then waited — in real time —
// for the whole wave to drain, so one op that was slow on the host
// serialized every other job behind it and the wall-clock pipeline
// drained at small block sizes (ROADMAP item). Before/after, measured on
// a QD-4 4 KiB randread target where one op in 16 straggles for 5ms of
// real time: fast-op overlap per straggler 1.3 -> 6.0 (the wave gate's
// hard ceiling is QD-1 = 3; TestPerOpAdmissionOverlap pins the floor at
// 4.5) and run wall time 142ms -> 84ms. Virtual-time figures are
// unchanged — same window, same admission order for the simulated
// resources — so the paper's bandwidth curves are unaffected while
// Result.WallMBps and Result.EffectiveQD reflect a full queue
// (TestEffectiveQueueDepth).
func Run(spec Spec, target Target, start vtime.Time) (Result, error) {
	spec, err := spec.withDefaults(target)
	if err != nil {
		return Result{}, err
	}
	blocks := spec.Span / spec.BlockSize

	type jobState struct {
		now     vtime.Time
		rng     *rand.Rand
		buf     []byte
		seqNext int64
	}
	jobs := make([]jobState, spec.QueueDepth)
	for j := range jobs {
		jobs[j].now = start
		jobs[j].rng = rand.New(rand.NewSource(spec.Seed + int64(j)*7919))
		jobs[j].buf = make([]byte, spec.BlockSize)
		if !spec.Pattern.Reads() {
			fill := spec.Fill
			if fill == 0 {
				fill = byte(j + 1)
			}
			for i := range jobs[j].buf {
				jobs[j].buf[i] = fill ^ byte(i*131>>3)
			}
		}
		jobs[j].seqNext = int64(j) * (blocks / int64(spec.QueueDepth)) * spec.BlockSize
	}

	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		issued   int
		discards int
		maxEnd   = start
		lats     = make([]time.Duration, 0, spec.TotalOps)
		opLats   [nOpTypes][]time.Duration
		opSum    [nOpTypes]time.Duration
		firstErr error
		ewma     = time.Millisecond // adaptive admission window seed
	)
	trimmer, _ := target.(Discarder)

	// minNow is the laggard's clock; callers hold mu. In-flight jobs
	// count with the arrival time of their current op, which is
	// conservative (the window anchors lower than it needs to).
	minNow := func() vtime.Time {
		m := jobs[0].now
		for j := 1; j < len(jobs); j++ {
			if jobs[j].now < m {
				m = jobs[j].now
			}
		}
		return m
	}

	worker := func(j int) {
		js := &jobs[j]
		for {
			mu.Lock()
			// The laggard itself always qualifies (its clock IS the
			// minimum), so some job can make progress at any moment and
			// the wait cannot deadlock.
			for firstErr == nil && issued < spec.TotalOps &&
				js.now > minNow().Add(vtime.Duration(3*ewma)) {
				cond.Wait()
			}
			if firstErr != nil || issued >= spec.TotalOps {
				mu.Unlock()
				return
			}
			issued++
			// Offset and op-mix draws stay under mu and keep the per-job
			// draw order of the wave engine, so fixed seeds reproduce the
			// same per-job sequences (TestDeterministicOffsets).
			var off int64
			switch spec.Pattern {
			case RandRead, RandWrite:
				off = js.rng.Int63n(blocks) * spec.BlockSize
			default:
				off = js.seqNext % spec.Span
				if off+spec.BlockSize > spec.Span {
					off = 0
				}
				js.seqNext = off + spec.BlockSize
			}
			isTrim := spec.TrimPct > 0 && js.rng.Intn(100) < spec.TrimPct
			arrival := js.now
			mu.Unlock()

			var end vtime.Time
			var err error
			switch {
			case isTrim:
				end, err = trimmer.Discard(arrival, off, spec.BlockSize)
			case spec.Pattern.Reads():
				end, err = target.ReadAt(arrival, js.buf, off)
			default:
				end, err = target.WriteAt(arrival, js.buf, off)
			}

			mu.Lock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("fio: %s off=%d: %w", spec.Pattern, off, err)
				}
				cond.Broadcast()
				mu.Unlock()
				return
			}
			if isTrim {
				discards++
			}
			op := opRead
			switch {
			case isTrim:
				op = opTrim
			case !spec.Pattern.Reads():
				op = opWrite
			}
			lat := end.Sub(arrival)
			lats = append(lats, lat)
			opLats[op] = append(opLats[op], lat)
			opSum[op] += lat
			mFioLat[op].Observe(lat)
			ewma += (lat - ewma) / 16
			if end > maxEnd {
				maxEnd = end
			}
			js.now = end
			cond.Broadcast()
			mu.Unlock()
		}
	}

	var wg sync.WaitGroup
	for j := range jobs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			worker(j)
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return Result{}, firstErr
	}

	res := Result{
		Spec:     spec,
		Ops:      len(lats),
		Discards: discards,
		Bytes:    int64(len(lats)-discards) * spec.BlockSize,
		Start:    start,
		End:      maxEnd,
		Reads:    opStats(opLats[opRead], opSum[opRead]),
		Writes:   opStats(opLats[opWrite], opSum[opWrite]),
		Trims:    opStats(opLats[opTrim], opSum[opTrim]),
	}
	res.Latencies = summarize(lats)
	return res, nil
}

func opStats(lats []time.Duration, sum time.Duration) OpStats {
	return OpStats{Ops: len(lats), Sum: sum, Lat: summarize(lats)}
}

func summarize(lats []time.Duration) LatencySummary {
	if len(lats) == 0 {
		return LatencySummary{}
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return LatencySummary{
		P50: at(0.50),
		P95: at(0.95),
		P99: at(0.99),
		Max: sorted[len(sorted)-1],
	}
}

// Precondition writes the whole span once with large sequential IOs so
// random reads hit allocated, decryptable blocks (the paper runs on a
// "full Ceph image").
func Precondition(target Target, span, blockSize int64, start vtime.Time) (vtime.Time, error) {
	if span <= 0 || span > target.Size() {
		span = target.Size()
	}
	const chunk = 1 << 20
	step := int64(chunk)
	if step < blockSize {
		step = blockSize
	}
	buf := make([]byte, step)
	for i := range buf {
		// Non-zero fill: hole detection no longer sniffs content (it uses
		// object existence and logical size), but distinctive payloads
		// keep encryption-layer round-trip failures visible.
		buf[i] = byte(i*131) | 1
	}
	// Parallel preconditioning with a fixed worker pool.
	type piece struct{ off, n int64 }
	var pieces []piece
	for off := int64(0); off < span; off += step {
		n := step
		if off+n > span {
			n = span - off
		}
		if n%blockSize != 0 {
			n = n / blockSize * blockSize
			if n == 0 {
				break
			}
		}
		pieces = append(pieces, piece{off, n})
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	end := start
	var firstErr error
	sem := make(chan struct{}, 16)
	for _, pc := range pieces {
		wg.Add(1)
		sem <- struct{}{}
		go func(pc piece) {
			defer wg.Done()
			defer func() { <-sem }()
			e, err := target.WriteAt(start, buf[:pc.n], pc.off)
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if e > end {
				end = e
			}
			mu.Unlock()
		}(pc)
	}
	wg.Wait()
	return end, firstErr
}
