package fio

import (
	"errors"
	"testing"
	"time"

	"repro/internal/vtime"
)

// faultyTarget wraps memTarget and fails or corrupts selected ops.
type faultyTarget struct {
	*memTarget
	failWrite func(off int64) error // pre-write: error without writing
	failRead  func(off int64) error // pre-read: error without reading
	corrupt   func(off int64) bool  // post-read: flip a byte in the result
}

func (f *faultyTarget) WriteAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	if f.failWrite != nil {
		if err := f.failWrite(off); err != nil {
			return at, err
		}
	}
	return f.memTarget.WriteAt(at, p, off)
}

func (f *faultyTarget) ReadAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	if f.failRead != nil {
		if err := f.failRead(off); err != nil {
			return at, err
		}
	}
	end, err := f.memTarget.ReadAt(at, p, off)
	if err == nil && f.corrupt != nil && f.corrupt(off) {
		p[len(p)/2] ^= 0x40
	}
	return end, err
}

var errFakeInjected = errors.New("fake injected fault")
var errFakeLoud = errors.New("fake integrity failure")

func TestVerifierCleanRoundTrip(t *testing.T) {
	const bs = 512
	v := NewVerifier(newMemTarget(1<<20, time.Microsecond), bs)
	spec := Spec{Pattern: RandWrite, BlockSize: bs, QueueDepth: 4, TotalOps: 200, Seed: 3}
	if _, err := Run(spec, v, 0); err != nil {
		t.Fatal(err)
	}
	spec.Pattern = RandRead
	if _, err := Run(spec, v, 0); err != nil {
		t.Fatal(err)
	}
	s := v.Stats()
	if s.GarbageBlocks != 0 || s.UncertainBlocks != 0 {
		t.Fatalf("clean run reported problems: %v", s)
	}
	if s.VerifiedBlocks+s.HoleBlocks != 200 {
		t.Fatalf("verified+holes = %d, want 200: %v", s.VerifiedBlocks+s.HoleBlocks, s)
	}
	if s.VerifiedBlocks == 0 {
		t.Fatalf("random reads over random writes never hit written data: %v", s)
	}
}

func TestVerifierHoleReadsAreZeros(t *testing.T) {
	const bs = 512
	v := NewVerifier(newMemTarget(1<<20, time.Microsecond), bs)
	buf := make([]byte, bs)
	if _, err := v.ReadAt(0, buf, 4*bs); err != nil {
		t.Fatal(err)
	}
	s := v.Stats()
	if s.HoleBlocks != 1 || s.GarbageBlocks != 0 {
		t.Fatalf("never-written block: %v, want one hole", s)
	}
}

func TestVerifierCatchesSilentGarbage(t *testing.T) {
	const bs = 512
	ft := &faultyTarget{memTarget: newMemTarget(1<<20, time.Microsecond)}
	v := NewVerifier(ft, bs)
	buf := make([]byte, bs)
	if _, err := v.WriteAt(0, buf, 0); err != nil {
		t.Fatal(err)
	}
	ft.corrupt = func(off int64) bool { return true }
	if _, err := v.ReadAt(0, buf, 0); err != nil {
		t.Fatal(err)
	}
	s := v.Stats()
	if s.GarbageBlocks != 1 {
		t.Fatalf("silently corrupted read not flagged: %v", s)
	}
}

// discardTarget acknowledges writes without storing them — a lying
// device whose acked-and-lost writes the verifier must catch as stale
// data on read-back.
type discardTarget struct{ *memTarget }

func (d *discardTarget) WriteAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	return at, nil
}

func TestVerifierStaleDataIsGarbage(t *testing.T) {
	const bs = 512
	v := NewVerifier(&discardTarget{newMemTarget(1<<20, time.Microsecond)}, bs)
	buf := make([]byte, bs)
	if _, err := v.WriteAt(0, buf, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, bs)
	if _, err := v.ReadAt(0, got, 0); err != nil {
		t.Fatal(err)
	}
	// The write was acked, so zeros are no longer acceptable; the device
	// returning them anyway is silent data loss.
	if s := v.Stats(); s.GarbageBlocks != 1 {
		t.Fatalf("acked-but-dropped write not flagged on read-back: %v", s)
	}
}

func TestVerifierAbsorbsInjectedWriteErrors(t *testing.T) {
	const bs = 512
	ft := &faultyTarget{memTarget: newMemTarget(1<<20, time.Microsecond)}
	v := NewVerifier(ft, bs)
	v.Tolerate = func(err error) bool { return errors.Is(err, errFakeInjected) }
	buf := make([]byte, bs)
	if _, err := v.WriteAt(0, buf, 0); err != nil {
		t.Fatal(err)
	}
	// The faulted write is absorbed; the block may now hold either
	// version, and a read of the old one is uncertain, not garbage.
	ft.failWrite = func(off int64) error { return errFakeInjected }
	if _, err := v.WriteAt(0, buf, 0); err != nil {
		t.Fatalf("injected write error not absorbed: %v", err)
	}
	ft.failWrite = nil
	got := make([]byte, bs)
	if _, err := v.ReadAt(0, got, 0); err != nil {
		t.Fatal(err)
	}
	s := v.Stats()
	if s.InjectedErrors != 1 {
		t.Fatalf("injected errors = %d, want 1: %v", s.InjectedErrors, s)
	}
	if s.GarbageBlocks != 0 || s.VerifiedBlocks != 1 {
		t.Fatalf("old version after faulted overwrite should verify: %v", s)
	}
	// A later clean write re-establishes certainty...
	if _, err := v.WriteAt(0, buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadAt(0, got, 0); err != nil {
		t.Fatal(err)
	}
	if s := v.Stats(); s.VerifiedBlocks != 2 || s.GarbageBlocks != 0 {
		t.Fatalf("clean overwrite after faulted one: %v", s)
	}
}

func TestVerifierCountsLoudReadErrors(t *testing.T) {
	const bs = 512
	ft := &faultyTarget{memTarget: newMemTarget(1<<20, time.Microsecond)}
	v := NewVerifier(ft, bs)
	v.Loud = func(err error) bool { return errors.Is(err, errFakeLoud) }
	buf := make([]byte, bs)
	if _, err := v.WriteAt(0, buf, 0); err != nil {
		t.Fatal(err)
	}
	ft.failRead = func(off int64) error { return errFakeLoud }
	if _, err := v.ReadAt(0, buf, 0); err != nil {
		t.Fatalf("loud read error not absorbed: %v", err)
	}
	if s := v.Stats(); s.LoudErrors != 1 || s.GarbageBlocks != 0 {
		t.Fatalf("loud error tally: %v", s)
	}
	// Unclassified errors still propagate.
	ft.failRead = func(off int64) error { return errors.New("transport exploded") }
	if _, err := v.ReadAt(0, buf, 0); err == nil {
		t.Fatal("unclassified read error was swallowed")
	}
}
