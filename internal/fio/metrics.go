package fio

// metrics.go: workload-side latency histograms, one series per op type
// (what fio reports per ddir). The handles are resolved at package init
// so Run's completion path records allocation-free.

import "repro/internal/telemetry"

// Op-type indices for the per-op accounting in Run.
const (
	opRead = iota
	opWrite
	opTrim
	nOpTypes
)

var (
	mFioLatVec = telemetry.NewHistogramVec("fio_op_vtime",
		"virtual latency of one workload op as observed by the fio engine", "op")
	mFioLat = [nOpTypes]*telemetry.Histogram{
		opRead:  mFioLatVec.With("read"),
		opWrite: mFioLatVec.With("write"),
		opTrim:  mFioLatVec.With("trim"),
	}
)
