// verify.go: the chaos-harness data-integrity oracle. A Verifier wraps
// a Target and replaces every write payload with a deterministic
// function of (block, version), so that on read it can decide — without
// storing a shadow copy of the image — whether the returned bytes are a
// plaintext the device was ever asked to store. Under fault injection
// every read must land in one of two buckets: correct plaintext, or a
// loud error. Anything else is silent garbage, the one outcome the
// encryption layer must never produce.
package fio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/vtime"
)

// VerifyStats is the tally a chaos run asserts on.
type VerifyStats struct {
	Writes, Reads   int // ops observed (after absorption)
	VerifiedBlocks  int // read blocks matching an acceptable version
	HoleBlocks      int // read blocks correctly returning never-written zeros
	LoudErrors      int // reads that failed with an acceptable loud error
	InjectedErrors  int // ops absorbed because the fault plan broke them
	UncertainBlocks int // mismatches excused by a concurrent or faulted write
	GarbageBlocks   int // silent wrong data — the chaos failure condition
}

func (s VerifyStats) String() string {
	return fmt.Sprintf("writes=%d reads=%d verified=%d holes=%d loud=%d injected=%d uncertain=%d garbage=%d",
		s.Writes, s.Reads, s.VerifiedBlocks, s.HoleBlocks, s.LoudErrors, s.InjectedErrors,
		s.UncertainBlocks, s.GarbageBlocks)
}

// blockState tracks what plaintexts one block may legitimately hold.
// Writes that overlap in time form a group: until the group drains, any
// member's payload (or the pre-group content) may be on media; a clean
// drain collapses the acceptable set to the group, while a drain that
// absorbed an injected write error keeps the old set too (the write may
// or may not have landed).
type blockState struct {
	accepted []uint64 // committed candidate versions
	group    []uint64 // current overlap group (some still in flight)
	inFlight int
	groupErr bool // group absorbed an injected write error
	holeOK   bool // never cleanly overwritten: zeros still acceptable
	dirty    bool // an absorbed write error left content uncertain
}

// Verifier wraps a Target with write stamping and read verification.
// It is safe for concurrent use by fio.Run's worker jobs. IO must be
// block-aligned in offset and length (fio.Run's ops and Precondition's
// chunks are).
type Verifier struct {
	inner Target
	bs    int64

	// Tolerate classifies errors the fault plan injected: the op is
	// absorbed (reported as success to the engine, counted in
	// InjectedErrors) so one planned fault doesn't abort the whole run.
	// Typically errors.Is(err, fault.ErrInjected).
	Tolerate func(error) bool
	// Loud classifies acceptable integrity failures on the read path —
	// the "loud" half of correct-or-loud. Typically
	// errors.Is(err, core.ErrIntegrity). Supplied by the harness so this
	// package doesn't import the encryption layer.
	Loud func(error) bool

	mu      sync.Mutex
	nextVer uint64
	blocks  map[int64]*blockState
	stats   VerifyStats
}

// NewVerifier wraps target; blockSize is the verification granularity
// and must match the workload's block size.
func NewVerifier(target Target, blockSize int64) *Verifier {
	return &Verifier{inner: target, bs: blockSize, blocks: map[int64]*blockState{}}
}

// Size implements Target.
func (v *Verifier) Size() int64 { return v.inner.Size() }

// Stats returns a snapshot of the tally.
func (v *Verifier) Stats() VerifyStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stats
}

// payload fills dst with the deterministic plaintext of (block, ver):
// a splitmix64 keystream over both, with the first byte forced non-zero
// so no stamped payload collides with never-written zeros.
func (v *Verifier) payload(dst []byte, block int64, ver uint64) {
	x := uint64(block)*0x9E3779B97F4A7C15 ^ ver*0xBF58476D1CE4E5B9
	var w [8]byte
	for i := 0; i < len(dst); i += 8 {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		binary.LittleEndian.PutUint64(w[:], z)
		copy(dst[i:], w[:])
	}
	dst[0] |= 1
}

func (v *Verifier) state(block int64) *blockState {
	st := v.blocks[block]
	if st == nil {
		st = &blockState{holeOK: true}
		v.blocks[block] = st
	}
	return st
}

func (v *Verifier) checkAligned(p []byte, off int64) error {
	if off%v.bs != 0 || int64(len(p))%v.bs != 0 || len(p) == 0 {
		return fmt.Errorf("fio: verifier needs block-aligned IO (off=%d len=%d bs=%d)", off, len(p), v.bs)
	}
	return nil
}

// WriteAt implements Target. The caller's payload bytes are ignored;
// each covered block is stamped with a fresh-version deterministic
// plaintext so any later read of it is checkable.
func (v *Verifier) WriteAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	if err := v.checkAligned(p, off); err != nil {
		return at, err
	}
	n := int64(len(p)) / v.bs
	first := off / v.bs
	stamped := make([]byte, len(p))

	v.mu.Lock()
	vers := make([]uint64, n)
	for i := int64(0); i < n; i++ {
		v.nextVer++
		vers[i] = v.nextVer
		st := v.state(first + i)
		st.group = append(st.group, vers[i])
		st.inFlight++
	}
	v.mu.Unlock()
	for i := int64(0); i < n; i++ {
		v.payload(stamped[i*v.bs:(i+1)*v.bs], first+i, vers[i])
	}

	end, err := v.inner.WriteAt(at, stamped, off)

	v.mu.Lock()
	defer v.mu.Unlock()
	v.stats.Writes++
	absorbed := err != nil && v.Tolerate != nil && v.Tolerate(err)
	if absorbed {
		v.stats.InjectedErrors++
	}
	for i := int64(0); i < n; i++ {
		st := v.state(first + i)
		st.inFlight--
		if err != nil {
			st.groupErr = true
		}
		if st.inFlight == 0 {
			if st.groupErr {
				// Faulted group: old content, zeros-if-hole, or any group
				// member may be on media.
				st.accepted = append(st.accepted, st.group...)
				st.dirty = true
			} else {
				st.accepted = append(st.accepted[:0], st.group...)
				st.holeOK = false
				st.dirty = false
			}
			st.group = st.group[:0]
			st.groupErr = false
		}
	}
	if err != nil && !absorbed {
		return at, err
	}
	if absorbed {
		return at, nil
	}
	return end, nil
}

// ReadAt implements Target: the inner read runs, then every returned
// block is checked against the set of plaintexts it may legitimately
// hold. A failed check with a concurrent or previously-faulted write is
// uncertain; without one it is silent garbage.
func (v *Verifier) ReadAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	if err := v.checkAligned(p, off); err != nil {
		return at, err
	}
	n := int64(len(p)) / v.bs
	first := off / v.bs

	// Snapshot the candidate sets before issuing: versions acceptable
	// now stay acceptable for this read even if writes land meanwhile
	// (those writes join the in-flight set, also snapshotted).
	type cand struct {
		vers    []uint64
		holeOK  bool
		excused bool // in-flight or dirty: mismatch is uncertain, not garbage
	}
	cands := make([]cand, n)
	v.mu.Lock()
	for i := int64(0); i < n; i++ {
		st := v.state(first + i)
		c := cand{holeOK: st.holeOK, excused: st.inFlight > 0 || st.dirty}
		c.vers = append(append(c.vers, st.accepted...), st.group...)
		cands[i] = c
	}
	v.mu.Unlock()

	end, err := v.inner.ReadAt(at, p, off)

	v.mu.Lock()
	defer v.mu.Unlock()
	v.stats.Reads++
	if err != nil {
		switch {
		case v.Loud != nil && v.Loud(err):
			v.stats.LoudErrors++
			return at, nil // loud is an acceptable chaos outcome
		case v.Tolerate != nil && v.Tolerate(err):
			v.stats.InjectedErrors++
			return at, nil
		default:
			return at, err
		}
	}
	scratch := make([]byte, v.bs)
	for i := int64(0); i < n; i++ {
		got := p[i*v.bs : (i+1)*v.bs]
		c := cands[i]
		if c.holeOK && isZero(got) {
			v.stats.HoleBlocks++
			continue
		}
		ok := false
		for _, ver := range c.vers {
			v.payload(scratch, first+i, ver)
			if bytes.Equal(got, scratch) {
				ok = true
				break
			}
		}
		switch {
		case ok:
			v.stats.VerifiedBlocks++
		case c.excused:
			v.stats.UncertainBlocks++
		default:
			v.stats.GarbageBlocks++
		}
	}
	return end, nil
}

func isZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}
