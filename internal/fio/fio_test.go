package fio

import (
	"sync"
	"testing"
	"time"

	"repro/internal/vtime"
)

// memTarget is a deterministic fake device: every IO takes exactly
// opCost of virtual time on a single-server resource.
type memTarget struct {
	mu     sync.Mutex
	data   []byte
	res    *vtime.Resource
	opCost time.Duration
	reads  int
	writes int
}

func newMemTarget(size int64, opCost time.Duration) *memTarget {
	return &memTarget{data: make([]byte, size), res: vtime.NewResource("mem"), opCost: opCost}
}

func (m *memTarget) ReadAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	m.mu.Lock()
	copy(p, m.data[off:])
	m.reads++
	m.mu.Unlock()
	return m.res.Use(at, m.opCost), nil
}

func (m *memTarget) WriteAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	m.mu.Lock()
	copy(m.data[off:], p)
	m.writes++
	m.mu.Unlock()
	return m.res.Use(at, m.opCost), nil
}

func (m *memTarget) Size() int64 { return int64(len(m.data)) }

// trimTarget extends memTarget with Discard (zeroing, as crypto-erase
// reads back).
type trimTarget struct {
	*memTarget
	trims int
}

func (m *trimTarget) Discard(at vtime.Time, off, length int64) (vtime.Time, error) {
	m.mu.Lock()
	clear(m.data[off : off+length])
	m.trims++
	m.mu.Unlock()
	return m.res.Use(at, m.opCost), nil
}

func TestRunCountsOps(t *testing.T) {
	tgt := newMemTarget(1<<20, time.Microsecond)
	res, err := Run(Spec{Pattern: RandWrite, BlockSize: 4096, QueueDepth: 4, TotalOps: 100}, tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 100 || res.Bytes != 100*4096 {
		t.Fatalf("ops=%d bytes=%d", res.Ops, res.Bytes)
	}
	if tgt.writes != 100 || tgt.reads != 0 {
		t.Fatalf("device saw %d writes %d reads", tgt.writes, tgt.reads)
	}
}

func TestTrimMix(t *testing.T) {
	tgt := &trimTarget{memTarget: newMemTarget(1<<20, time.Microsecond)}
	res, err := Run(Spec{Pattern: RandWrite, BlockSize: 4096, QueueDepth: 4, TotalOps: 400, TrimPct: 25}, tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 400 {
		t.Fatalf("ops=%d", res.Ops)
	}
	if res.Discards != tgt.trims || tgt.writes+tgt.trims != 400 {
		t.Fatalf("discards=%d trims=%d writes=%d", res.Discards, tgt.trims, tgt.writes)
	}
	// ~25% of 400 ops; allow generous slack for the per-job RNGs.
	if res.Discards < 50 || res.Discards > 150 {
		t.Fatalf("trim mix %d/400 far from 25%%", res.Discards)
	}
	if res.Bytes != int64(400-res.Discards)*4096 {
		t.Fatalf("bytes=%d with %d discards", res.Bytes, res.Discards)
	}

	// A trim mix against a target without Discard is rejected.
	if _, err := Run(Spec{Pattern: RandWrite, BlockSize: 4096, TotalOps: 8, TrimPct: 10},
		newMemTarget(1<<20, time.Microsecond), 0); err == nil {
		t.Fatal("trim mix accepted without Discarder")
	}
	if _, err := Run(Spec{Pattern: RandWrite, BlockSize: 4096, TotalOps: 8, TrimPct: 101}, tgt, 0); err == nil {
		t.Fatal("out-of-range trim pct accepted")
	}
}

func TestBandwidthMatchesResourceCapacity(t *testing.T) {
	// Single-server device, 10µs per op: capacity is exactly
	// 4096 bytes / 10µs = 409.6 MB/s regardless of queue depth.
	tgt := newMemTarget(1<<20, 10*time.Microsecond)
	res, err := Run(Spec{Pattern: RandRead, BlockSize: 4096, QueueDepth: 8, TotalOps: 500}, tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	mbps := res.MBps()
	if mbps < 390 || mbps > 425 {
		t.Fatalf("bandwidth %.1f MB/s, want ~409.6", mbps)
	}
	if res.IOPS() < 95000 || res.IOPS() > 105000 {
		t.Fatalf("iops %.0f, want ~100000", res.IOPS())
	}
}

func TestSequentialPattern(t *testing.T) {
	tgt := newMemTarget(1<<20, time.Microsecond)
	res, err := Run(Spec{Pattern: SeqWrite, BlockSize: 8192, QueueDepth: 2, TotalOps: 64}, tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 64 {
		t.Fatalf("ops=%d", res.Ops)
	}
}

func TestLatencyPercentilesOrdered(t *testing.T) {
	tgt := newMemTarget(1<<20, 5*time.Microsecond)
	res, err := Run(Spec{Pattern: RandRead, BlockSize: 4096, QueueDepth: 16, TotalOps: 400}, tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := res.Latencies
	if l.P50 > l.P95 || l.P95 > l.P99 || l.P99 > l.Max || l.P50 <= 0 {
		t.Fatalf("percentiles out of order: %+v", l)
	}
}

func TestSpecValidation(t *testing.T) {
	tgt := newMemTarget(1<<20, time.Microsecond)
	if _, err := Run(Spec{Pattern: RandRead}, tgt, 0); err == nil {
		t.Fatal("missing block size accepted")
	}
	if _, err := Run(Spec{Pattern: RandRead, BlockSize: 2 << 20}, tgt, 0); err == nil {
		t.Fatal("block size above span accepted")
	}
}

func TestDeterministicOffsets(t *testing.T) {
	a := newMemTarget(1<<20, time.Microsecond)
	b := newMemTarget(1<<20, time.Microsecond)
	ra, err := Run(Spec{Pattern: RandWrite, BlockSize: 4096, QueueDepth: 3, TotalOps: 50, Seed: 42}, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(Spec{Pattern: RandWrite, BlockSize: 4096, QueueDepth: 3, TotalOps: 50, Seed: 42}, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Bytes != rb.Bytes || ra.Ops != rb.Ops {
		t.Fatal("same seed should reproduce the workload")
	}
}

func TestParsePattern(t *testing.T) {
	for _, p := range []Pattern{RandRead, RandWrite, SeqRead, SeqWrite} {
		got, err := ParsePattern(p.String())
		if err != nil || got != p {
			t.Fatalf("%v: %v", p, err)
		}
	}
	if _, err := ParsePattern("sideways"); err == nil {
		t.Fatal("bad pattern accepted")
	}
}

func TestPrecondition(t *testing.T) {
	tgt := newMemTarget(8<<20, time.Microsecond)
	end, err := Precondition(tgt, 0, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	// Every byte must be written (non-zero fill).
	for i, b := range tgt.data {
		if b == 0 {
			t.Fatalf("byte %d not preconditioned", i)
		}
	}
}
