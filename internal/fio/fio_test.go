package fio

import (
	"sync"
	"testing"
	"time"

	"repro/internal/vtime"
)

// memTarget is a deterministic fake device: every IO takes exactly
// opCost of virtual time on a single-server resource.
type memTarget struct {
	mu     sync.Mutex
	data   []byte
	res    *vtime.Resource
	opCost time.Duration
	reads  int
	writes int
}

func newMemTarget(size int64, opCost time.Duration) *memTarget {
	return &memTarget{data: make([]byte, size), res: vtime.NewResource("mem"), opCost: opCost}
}

func (m *memTarget) ReadAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	m.mu.Lock()
	copy(p, m.data[off:])
	m.reads++
	m.mu.Unlock()
	return m.res.Use(at, m.opCost), nil
}

func (m *memTarget) WriteAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	m.mu.Lock()
	copy(m.data[off:], p)
	m.writes++
	m.mu.Unlock()
	return m.res.Use(at, m.opCost), nil
}

func (m *memTarget) Size() int64 { return int64(len(m.data)) }

// trimTarget extends memTarget with Discard (zeroing, as crypto-erase
// reads back).
type trimTarget struct {
	*memTarget
	trims int
}

func (m *trimTarget) Discard(at vtime.Time, off, length int64) (vtime.Time, error) {
	m.mu.Lock()
	clear(m.data[off : off+length])
	m.trims++
	m.mu.Unlock()
	return m.res.Use(at, m.opCost), nil
}

func TestRunCountsOps(t *testing.T) {
	tgt := newMemTarget(1<<20, time.Microsecond)
	res, err := Run(Spec{Pattern: RandWrite, BlockSize: 4096, QueueDepth: 4, TotalOps: 100}, tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 100 || res.Bytes != 100*4096 {
		t.Fatalf("ops=%d bytes=%d", res.Ops, res.Bytes)
	}
	if tgt.writes != 100 || tgt.reads != 0 {
		t.Fatalf("device saw %d writes %d reads", tgt.writes, tgt.reads)
	}
}

func TestTrimMix(t *testing.T) {
	tgt := &trimTarget{memTarget: newMemTarget(1<<20, time.Microsecond)}
	res, err := Run(Spec{Pattern: RandWrite, BlockSize: 4096, QueueDepth: 4, TotalOps: 400, TrimPct: 25}, tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 400 {
		t.Fatalf("ops=%d", res.Ops)
	}
	if res.Discards != tgt.trims || tgt.writes+tgt.trims != 400 {
		t.Fatalf("discards=%d trims=%d writes=%d", res.Discards, tgt.trims, tgt.writes)
	}
	// ~25% of 400 ops; allow generous slack for the per-job RNGs.
	if res.Discards < 50 || res.Discards > 150 {
		t.Fatalf("trim mix %d/400 far from 25%%", res.Discards)
	}
	if res.Bytes != int64(400-res.Discards)*4096 {
		t.Fatalf("bytes=%d with %d discards", res.Bytes, res.Discards)
	}

	// A trim mix against a target without Discard is rejected.
	if _, err := Run(Spec{Pattern: RandWrite, BlockSize: 4096, TotalOps: 8, TrimPct: 10},
		newMemTarget(1<<20, time.Microsecond), 0); err == nil {
		t.Fatal("trim mix accepted without Discarder")
	}
	if _, err := Run(Spec{Pattern: RandWrite, BlockSize: 4096, TotalOps: 8, TrimPct: 101}, tgt, 0); err == nil {
		t.Fatal("out-of-range trim pct accepted")
	}
}

func TestBandwidthMatchesResourceCapacity(t *testing.T) {
	// Single-server device, 10µs per op: capacity is exactly
	// 4096 bytes / 10µs = 409.6 MB/s regardless of queue depth.
	tgt := newMemTarget(1<<20, 10*time.Microsecond)
	res, err := Run(Spec{Pattern: RandRead, BlockSize: 4096, QueueDepth: 8, TotalOps: 500}, tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	mbps := res.MBps()
	if mbps < 390 || mbps > 425 {
		t.Fatalf("bandwidth %.1f MB/s, want ~409.6", mbps)
	}
	if res.IOPS() < 95000 || res.IOPS() > 105000 {
		t.Fatalf("iops %.0f, want ~100000", res.IOPS())
	}
}

func TestSequentialPattern(t *testing.T) {
	tgt := newMemTarget(1<<20, time.Microsecond)
	res, err := Run(Spec{Pattern: SeqWrite, BlockSize: 8192, QueueDepth: 2, TotalOps: 64}, tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 64 {
		t.Fatalf("ops=%d", res.Ops)
	}
}

func TestLatencyPercentilesOrdered(t *testing.T) {
	tgt := newMemTarget(1<<20, 5*time.Microsecond)
	res, err := Run(Spec{Pattern: RandRead, BlockSize: 4096, QueueDepth: 16, TotalOps: 400}, tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := res.Latencies
	if l.P50 > l.P95 || l.P95 > l.P99 || l.P99 > l.Max || l.P50 <= 0 {
		t.Fatalf("percentiles out of order: %+v", l)
	}
}

func TestSpecValidation(t *testing.T) {
	tgt := newMemTarget(1<<20, time.Microsecond)
	if _, err := Run(Spec{Pattern: RandRead}, tgt, 0); err == nil {
		t.Fatal("missing block size accepted")
	}
	if _, err := Run(Spec{Pattern: RandRead, BlockSize: 2 << 20}, tgt, 0); err == nil {
		t.Fatal("block size above span accepted")
	}
}

func TestDeterministicOffsets(t *testing.T) {
	a := newMemTarget(1<<20, time.Microsecond)
	b := newMemTarget(1<<20, time.Microsecond)
	ra, err := Run(Spec{Pattern: RandWrite, BlockSize: 4096, QueueDepth: 3, TotalOps: 50, Seed: 42}, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(Spec{Pattern: RandWrite, BlockSize: 4096, QueueDepth: 3, TotalOps: 50, Seed: 42}, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Bytes != rb.Bytes || ra.Ops != rb.Ops {
		t.Fatal("same seed should reproduce the workload")
	}
}

// overlapTarget is a shared-resource device where offsets below
// slowSpan cost real wall time (a straggler op): it counts how many
// fast ops complete while at least one slow op is in flight — the
// direct measure of whether admission keeps the queue busy behind a
// straggler.
type overlapTarget struct {
	res      *vtime.Resource
	size     int64
	slowSpan int64

	mu           sync.Mutex
	slowInFlight int
	slowOps      int
	overlap      int
}

func (o *overlapTarget) Size() int64 { return o.size }

func (o *overlapTarget) ReadAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	slow := off < o.slowSpan
	o.mu.Lock()
	if slow {
		o.slowInFlight++
		o.slowOps++
	}
	o.mu.Unlock()
	if slow {
		//vetrepo:ignore vtimeonly deliberate host-time straggler: this test measures real wall-clock overlap
		time.Sleep(5 * time.Millisecond)
	}
	o.mu.Lock()
	if slow {
		o.slowInFlight--
	} else if o.slowInFlight > 0 {
		o.overlap++
	}
	o.mu.Unlock()
	return o.res.Use(at, 100*time.Microsecond), nil
}

func (o *overlapTarget) WriteAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	return o.ReadAt(at, p, off)
}

// TestPerOpAdmissionOverlap pins the reason Run admits per-op instead of
// in waves: behind one straggling op, the other jobs must keep cycling.
// The old wave gate waited (in real time) for every admitted op before
// admitting the next batch, capping fast-op overlap per straggler at a
// hard QueueDepth-1 = 3 on this spec (it measured 1.3, and 142ms of
// wall time); per-op admission sustains 6.0 (84ms) — the adaptive window
// is ~3×QD op slots wide and the jobs hold about a third of it as
// standing spread. The assertion floor of 4.5 cleanly separates the two
// engines.
func TestPerOpAdmissionOverlap(t *testing.T) {
	tgt := &overlapTarget{res: vtime.NewResource("ol"), size: 1 << 20, slowSpan: 1 << 16}
	_, err := Run(Spec{Pattern: RandRead, BlockSize: 4096, QueueDepth: 4, TotalOps: 400, Seed: 1}, tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tgt.slowOps == 0 {
		t.Fatal("no slow ops drawn; widen slowSpan")
	}
	avg := float64(tgt.overlap) / float64(tgt.slowOps)
	t.Logf("slow ops %d, fast overlap %d (%.1f per slow op)", tgt.slowOps, tgt.overlap, avg)
	if avg < 4.5 {
		t.Fatalf("average overlap %.1f per slow op; admission is serializing the queue", avg)
	}
}

// TestEffectiveQueueDepth checks Little's-law concurrency on a uniform
// single-server target: with nothing to straggle, the engine should
// sustain close to the configured queue depth.
func TestEffectiveQueueDepth(t *testing.T) {
	tgt := newMemTarget(1<<20, 100*time.Microsecond)
	res, err := Run(Spec{Pattern: RandRead, BlockSize: 4096, QueueDepth: 8, TotalOps: 512, Seed: 2}, tgt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eqd := res.EffectiveQD(); eqd < 5.5 || eqd > 8.5 {
		t.Fatalf("effective QD %.2f, want ~8", eqd)
	}
}

func TestParsePattern(t *testing.T) {
	for _, p := range []Pattern{RandRead, RandWrite, SeqRead, SeqWrite} {
		got, err := ParsePattern(p.String())
		if err != nil || got != p {
			t.Fatalf("%v: %v", p, err)
		}
	}
	if _, err := ParsePattern("sideways"); err == nil {
		t.Fatal("bad pattern accepted")
	}
}

func TestPrecondition(t *testing.T) {
	tgt := newMemTarget(8<<20, time.Microsecond)
	end, err := Precondition(tgt, 0, 4096, 0)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	// Every byte must be written (non-zero fill).
	for i, b := range tgt.data {
		if b == 0 {
			t.Fatalf("byte %d not preconditioned", i)
		}
	}
}
