package core

// verify.go: the scrub primitives. VerifyObject is the read-and-check
// half — every present block of one striping object is fetched and
// opened under its recorded epoch, plaintext discarded — and
// RepairObject is the recovery half: re-fetch damaged blocks from each
// replica in turn and re-seal the first copy that still opens.
//
// What verification can prove depends on the scheme, which is the
// paper's integrity argument restated as an operational property: only
// authenticated metadata (SchemeGCM's tag) turns ciphertext corruption
// into a detectable event. The length-preserving schemes decrypt
// anything to something, so for them a scrub pass can only prove
// structural health — every block's epoch tag resolves to a live key —
// not content integrity.

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/rados"
	"repro/internal/vtime"
)

// BadBlock is one block that failed verification.
type BadBlock struct {
	Block int64 // object-relative block index
	Err   error // why it failed to open (ErrIntegrity, ErrKeyErased, ...)
}

// VerifyObject checks every present block of one striping object:
// ciphertext and metadata are read exactly as the datapath would read
// them, and each block is opened under its recorded epoch into scratch
// space. It returns the number of blocks checked and the ones that
// failed, in block order. Verification failures are findings, not
// errors — err is reserved for transport/parse trouble that aborted
// the check. It holds the object's exclusive lock, so concurrent
// writes either land before the read or after it; either way every
// checked block is a consistent committed state.
func (e *EncryptedImage) VerifyObject(at vtime.Time, objIdx int64) (checked int, bad []BadBlock, end vtime.Time, err error) {
	bs := e.opts.BlockSize
	nb := e.plan.objBlocks()
	metaLen := e.plan.metaLen
	sml := e.schemeMetaLen()
	if objIdx < 0 || objIdx >= e.ObjectCount() {
		return 0, nil, at, fmt.Errorf("core: verify object %d out of range", objIdx)
	}

	lk := e.locks.of(objIdx)
	lk.Lock()
	defer lk.Unlock()

	cipher := getBuf(int(nb * bs))
	metas := getBuf(int(nb * metaLen))
	present := getBuf(int(nb))
	epochs := getBuf(int(nb * epochLen))
	raw := cipher
	var rawStride []byte
	if e.plan.layout == LayoutUnaligned {
		rawStride = getBuf(int(e.plan.rawReadLen(nb)))
		raw = rawStride
	}
	release := func() {
		putBuf(cipher)
		putBuf(metas)
		putBuf(present)
		putBuf(epochs)
		putBuf(rawStride)
	}
	res, end, err := e.img.Operate(at, objIdx, 0, e.plan.readOpsInto(0, nb, raw, metas))
	if err != nil {
		release()
		return 0, nil, at, err
	}
	if err := e.plan.parseReadInto(0, nb, res, cipher, metas, present, epochs); err != nil {
		release()
		return 0, nil, at, err
	}

	// Open every present block into its own scratch slot; the plaintext
	// is discarded — only the verdict matters.
	scratch := getBuf(int(nb * bs))
	var mu sync.Mutex
	ferr := forBlocks(e.workers, nb, func(lo, hi int64) error {
		for b := lo; b < hi; b++ {
			if present[b] == 0 {
				continue
			}
			epoch := binary.LittleEndian.Uint32(epochs[b*epochLen:])
			var meta []byte
			if metaLen > 0 {
				meta = metas[b*metaLen : b*metaLen+sml]
			}
			fail := func(err error) {
				mu.Lock()
				bad = append(bad, BadBlock{Block: b, Err: err})
				mu.Unlock()
			}
			opener, err := e.ring.cryptorFor(epoch)
			if err != nil {
				fail(err)
				continue
			}
			blockIdx := uint64(objIdx*nb + b)
			if err := opener.open(scratch[b*bs:(b+1)*bs], cipher[b*bs:(b+1)*bs], blockIdx, meta); err != nil {
				fail(err)
			}
		}
		return nil
	})
	putBuf(scratch)
	for b := int64(0); b < nb; b++ {
		if present[b] != 0 {
			checked++
		}
	}
	release()
	if ferr != nil {
		return 0, nil, at, ferr
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i].Block < bad[j].Block })
	end = e.chargeCrypto(end, int64(checked)*bs)
	return checked, bad, end, nil
}

// RepairObject recovers the given blocks of one striping object from
// replica copies: each replica (primary first — a re-read beats
// transient transfer corruption) is fetched directly with OperateOn
// until a copy opens cleanly, and the recovered plaintext is re-sealed
// under the current epoch through the normal replicated write path,
// which overwrites the damaged copy everywhere. Blocks with no intact
// copy anywhere (or sealed under a destroyed epoch) are left as they
// are. It returns the number of blocks repaired.
func (e *EncryptedImage) RepairObject(at vtime.Time, objIdx int64, blocks []int64) (int, vtime.Time, error) {
	if len(blocks) == 0 {
		return 0, at, nil
	}
	bs := e.opts.BlockSize
	nb := e.plan.objBlocks()
	metaLen := e.plan.metaLen
	sml := e.schemeMetaLen()
	target := e.ring.currentEpoch()
	sealer, err := e.ring.cryptorFor(target)
	if err != nil {
		return 0, at, err
	}

	want := make([]int64, 0, len(blocks))
	for _, b := range blocks {
		if b < 0 || b >= nb {
			return 0, at, fmt.Errorf("core: repair block %d out of range", b)
		}
		want = append(want, b)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	lk := e.locks.of(objIdx)
	lk.Lock()
	defer lk.Unlock()

	cipher := getBuf(int(nb * bs))
	metas := getBuf(int(nb * metaLen))
	present := getBuf(int(nb))
	epochs := getBuf(int(nb * epochLen))
	raw := cipher
	var rawStride []byte
	if e.plan.layout == LayoutUnaligned {
		rawStride = getBuf(int(e.plan.rawReadLen(nb)))
		raw = rawStride
	}
	plain := getBuf(len(want) * int(bs))
	release := func() {
		putBuf(cipher)
		putBuf(metas)
		putBuf(present)
		putBuf(epochs)
		putBuf(rawStride)
		putBuf(plain)
	}

	// Hunt for intact copies, one replica at a time. recovered[i] marks
	// want[i]'s plaintext as present in plain.
	recovered := make([]bool, len(want))
	missing := len(want)
	for _, osd := range e.img.Replicas(objIdx) {
		if missing == 0 {
			break
		}
		res, end2, err := e.img.OperateOn(at, osd, objIdx, 0, e.plan.readOpsInto(0, nb, raw, metas))
		if err != nil {
			continue // this replica is unreachable; try the next
		}
		at = end2
		if err := e.plan.parseReadInto(0, nb, res, cipher, metas, present, epochs); err != nil {
			continue
		}
		for i, b := range want {
			if recovered[i] || present[b] == 0 {
				continue
			}
			epoch := binary.LittleEndian.Uint32(epochs[b*epochLen:])
			opener, err := e.ring.cryptorFor(epoch)
			if err != nil {
				continue
			}
			var meta []byte
			if metaLen > 0 {
				meta = metas[b*metaLen : b*metaLen+sml]
			}
			blockIdx := uint64(objIdx*nb + b)
			if opener.open(plain[i*int(bs):(i+1)*int(bs)], cipher[b*bs:(b+1)*bs], blockIdx, meta) == nil {
				recovered[i] = true
				missing--
			}
		}
		at = e.chargeCrypto(at, int64(len(want)-missing)*bs)
	}

	// Re-seal what was recovered under the current epoch and commit it
	// through the normal replicated path.
	var fixed []int64
	idx := make(map[int64]int, len(want))
	for i, b := range want {
		if recovered[i] {
			fixed = append(fixed, b)
			idx[b] = i
		}
	}
	if len(fixed) == 0 {
		release()
		return 0, at, nil
	}
	plans, slots, err := e.stagePlans(fixed)
	if err != nil {
		release()
		return 0, at, err
	}
	releasePlans := func() {
		for _, w := range plans {
			w.release()
		}
	}
	serr := forBlocks(e.workers, int64(len(fixed)), func(lo, hi int64) error {
		for k := lo; k < hi; k++ {
			b := fixed[k]
			blockIdx := uint64(objIdx*nb + b)
			src := plain[idx[b]*int(bs) : (idx[b]+1)*int(bs)]
			meta := slots[k].plan.metaDst(slots[k].local)
			if int64(len(meta)) > sml { // epoch-tagged slot
				binary.LittleEndian.PutUint32(meta[sml:], target)
				meta = meta[:sml]
			}
			if err := sealer.seal(slots[k].plan.cipherDst(slots[k].local), src, blockIdx, meta); err != nil {
				return err
			}
		}
		return nil
	})
	release()
	if serr != nil {
		releasePlans()
		return 0, at, serr
	}
	at = e.chargeCrypto(at, int64(len(fixed))*bs)

	var ops []rados.Op
	for _, w := range plans {
		ops = append(ops, w.ops()...)
	}
	dirtyAlloc := false
	if e.plan.trackAlloc {
		a, end2, err := e.loadAlloc(at, objIdx)
		if err != nil {
			releasePlans()
			return 0, at, err
		}
		at = end2
		for _, b := range fixed {
			a.set(b, target)
		}
		dirtyAlloc = true
		ops = append(ops, rados.Op{Kind: rados.OpSetAttr, Key: []byte(allocAttr), Data: a.encode()})
	}
	end, err := e.commitObjectTxn(at, objIdx, ops, dirtyAlloc)
	releasePlans()
	if err != nil {
		return 0, at, err
	}
	return len(fixed), end, nil
}
