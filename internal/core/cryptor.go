package core

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/crypto/eme"
	"repro/internal/crypto/xts"
)

// Scheme selects the per-block cipher construction.
type Scheme int

// Schemes. SchemeLUKS2 is the paper's baseline (deterministic LBA tweak,
// no stored metadata); SchemeXTSRand is the paper's main proposal (random
// 16-byte IV stored per block); SchemeGCM adds authentication (the
// integrity extension of §3.1); the EME schemes are the §2.2 wide-block
// mitigation with and without random IVs.
const (
	SchemeLUKS2 Scheme = iota
	SchemeXTSRand
	SchemeGCM
	SchemeEME2Det
	SchemeEME2Rand
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeLUKS2:
		return "luks2"
	case SchemeXTSRand:
		return "xts-rand"
	case SchemeGCM:
		return "gcm-auth"
	case SchemeEME2Det:
		return "eme2-det"
	case SchemeEME2Rand:
		return "eme2-rand"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// ParseScheme is the inverse of String.
func ParseScheme(s string) (Scheme, error) {
	for _, sc := range []Scheme{SchemeLUKS2, SchemeXTSRand, SchemeGCM, SchemeEME2Det, SchemeEME2Rand} {
		if sc.String() == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("core: unknown scheme %q", s)
}

// ErrIntegrity reports failed authentication on an authenticated scheme.
var ErrIntegrity = errors.New("core: sector failed integrity verification")

// cryptor seals and opens one encryption block (4 KiB). The meta buffer
// is the per-sector metadata the paper stores in the virtual disk layout;
// seal receives it pre-filled with fresh randomness (where the scheme
// needs any) and may rewrite parts of it (e.g. the GCM tag).
type cryptor interface {
	metaLen() int
	// randLen is the prefix of meta that must be random at seal time.
	randLen() int
	seal(dst, src []byte, blockIdx uint64, meta []byte) error
	open(dst, src []byte, blockIdx uint64, meta []byte) error
}

// newCryptor builds a scheme's cryptor from the 64-byte master key.
func newCryptor(s Scheme, masterKey []byte) (cryptor, error) {
	if len(masterKey) != 64 {
		return nil, fmt.Errorf("core: master key must be 64 bytes, got %d", len(masterKey))
	}
	switch s {
	case SchemeLUKS2:
		c, err := xts.NewCipher(masterKey)
		if err != nil {
			return nil, err
		}
		return &xtsDet{c: c}, nil
	case SchemeXTSRand:
		c, err := xts.NewCipher(masterKey)
		if err != nil {
			return nil, err
		}
		return &xtsRand{c: c}, nil
	case SchemeGCM:
		blk, err := aes.NewCipher(masterKey[:32])
		if err != nil {
			return nil, err
		}
		aead, err := cipher.NewGCM(blk)
		if err != nil {
			return nil, err
		}
		return &gcmAuth{aead: aead}, nil
	case SchemeEME2Det:
		c, err := eme.New(masterKey[:32])
		if err != nil {
			return nil, err
		}
		return &emeCryptor{c: c, rand: false}, nil
	case SchemeEME2Rand:
		c, err := eme.New(masterKey[:32])
		if err != nil {
			return nil, err
		}
		return &emeCryptor{c: c, rand: true}, nil
	default:
		return nil, fmt.Errorf("core: unknown scheme %d", s)
	}
}

// xtsDet is the LUKS2 baseline: XTS with the block address as tweak.
type xtsDet struct{ c *xts.Cipher }

func (x *xtsDet) metaLen() int { return 0 }
func (x *xtsDet) randLen() int { return 0 }

func (x *xtsDet) seal(dst, src []byte, blockIdx uint64, _ []byte) error {
	return x.c.Encrypt(dst, src, xts.SectorTweak(blockIdx))
}

func (x *xtsDet) open(dst, src []byte, blockIdx uint64, _ []byte) error {
	return x.c.Decrypt(dst, src, xts.SectorTweak(blockIdx))
}

// xtsRand is the paper's proposal: a fresh random 16-byte IV per write.
// The effective tweak mixes in the block address (§2.2: "include the
// sector number as part of the IV") so replaying a sector+IV at another
// address decrypts to garbage.
type xtsRand struct{ c *xts.Cipher }

func (x *xtsRand) metaLen() int { return 16 }
func (x *xtsRand) randLen() int { return 16 }

func tweakFromMeta(meta []byte, blockIdx uint64) [16]byte {
	var t [16]byte
	copy(t[:], meta)
	var lba [8]byte
	binary.LittleEndian.PutUint64(lba[:], blockIdx)
	for i := 0; i < 8; i++ {
		t[i] ^= lba[i]
	}
	return t
}

func (x *xtsRand) seal(dst, src []byte, blockIdx uint64, meta []byte) error {
	return x.c.Encrypt(dst, src, tweakFromMeta(meta, blockIdx))
}

func (x *xtsRand) open(dst, src []byte, blockIdx uint64, meta []byte) error {
	return x.c.Decrypt(dst, src, tweakFromMeta(meta, blockIdx))
}

// gcmAuth provides authenticated encryption: 12-byte random nonce plus
// 16-byte tag in the metadata (28 bytes/block), with the block address as
// associated data so relocation fails authentication.
type gcmAuth struct{ aead cipher.AEAD }

func (g *gcmAuth) metaLen() int { return 28 }
func (g *gcmAuth) randLen() int { return 12 }

// gcmScratch holds the nonce, AAD and ciphertext staging for one
// seal/open. It is pooled because the arrays are passed into the
// cipher.AEAD interface, which would otherwise force a heap escape on
// every 4 KiB block; ct is grown once per block size and then reused.
type gcmScratch struct {
	nonce [12]byte
	aad   [8]byte
	ct    []byte
}

func (s *gcmScratch) buf(n int) []byte {
	if cap(s.ct) < n {
		s.ct = make([]byte, n)
	}
	return s.ct[:n]
}

var gcmScratchPool = sync.Pool{New: func() any { return new(gcmScratch) }}

func (g *gcmAuth) seal(dst, src []byte, blockIdx uint64, meta []byte) error {
	if len(meta) != 28 {
		return fmt.Errorf("core: gcm needs 28 metadata bytes, got %d", len(meta))
	}
	s := gcmScratchPool.Get().(*gcmScratch)
	defer gcmScratchPool.Put(s)
	copy(s.nonce[:], meta[:12])
	binary.LittleEndian.PutUint64(s.aad[:], blockIdx)
	if cap(dst) >= len(src)+16 && &dst[:len(src)+1][len(src)] == &meta[0] {
		// Layout-aware fast path, taken only when the byte after the
		// ciphertext destination IS the block's own metadata slot (the
		// LayoutUnaligned wire arrangement — spare capacity alone is not
		// authorization to scribble past len(dst)). GCM then seals
		// ciphertext||tag in place — zero copies, zero allocations. The
		// tag lands on meta[0:16]; relocate it to its meta[12:28] home
		// and restore the nonce (copy handles the overlap).
		out := g.aead.Seal(dst[:0], s.nonce[:], src, s.aad[:])
		copy(meta[12:28], out[len(src):])
		copy(meta[:12], s.nonce[:])
		return nil
	}
	// Separate metadata region: seal into pooled scratch, copy out.
	buf := s.buf(len(src) + 16)
	out := g.aead.Seal(buf[:0], s.nonce[:], src, s.aad[:])
	copy(dst, out[:len(src)])
	copy(meta[12:], out[len(src):])
	return nil
}

func (g *gcmAuth) open(dst, src []byte, blockIdx uint64, meta []byte) error {
	if len(meta) != 28 {
		return fmt.Errorf("core: gcm needs 28 metadata bytes, got %d", len(meta))
	}
	s := gcmScratchPool.Get().(*gcmScratch)
	defer gcmScratchPool.Put(s)
	copy(s.nonce[:], meta[:12])
	binary.LittleEndian.PutUint64(s.aad[:], blockIdx)
	ct := s.buf(len(src) + 16)
	n := copy(ct, src)
	copy(ct[n:], meta[12:28])
	out, err := g.aead.Open(dst[:0], s.nonce[:], ct, s.aad[:])
	if err != nil {
		return fmt.Errorf("%w: block %d", ErrIntegrity, blockIdx)
	}
	if len(out) != len(src) {
		return fmt.Errorf("%w: block %d length", ErrIntegrity, blockIdx)
	}
	return nil
}

// emeCryptor is the wide-block mode, deterministic or with a random IV.
type emeCryptor struct {
	c    *eme.Cipher
	rand bool
}

func (e *emeCryptor) metaLen() int {
	if e.rand {
		return 16
	}
	return 0
}

func (e *emeCryptor) randLen() int { return e.metaLen() }

func (e *emeCryptor) tweak(blockIdx uint64, meta []byte) [16]byte {
	if e.rand {
		return tweakFromMeta(meta, blockIdx)
	}
	var t [16]byte
	binary.LittleEndian.PutUint64(t[:8], blockIdx)
	return t
}

func (e *emeCryptor) seal(dst, src []byte, blockIdx uint64, meta []byte) error {
	return e.c.Encrypt(dst, src, e.tweak(blockIdx, meta))
}

func (e *emeCryptor) open(dst, src []byte, blockIdx uint64, meta []byte) error {
	return e.c.Decrypt(dst, src, e.tweak(blockIdx, meta))
}
