package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestCrossMatrixModel is the behavior guard for the datapath refactor:
// a randomized model check across every scheme × valid layout, with IO
// that crosses object boundaries, interleaved snapshots, and reads from
// both the head and every live snapshot. The model mirrors the sparse
// semantics the read path guarantees: written blocks round-trip exactly;
// never-written blocks read as zeros when the scheme stores per-block
// metadata (exact presence), and are unspecified (dm-crypt hole
// semantics) for metadata-free schemes unless the containing object was
// never created at all.
func TestCrossMatrixModel(t *testing.T) {
	const (
		size   = 8 << 20 // matches newEncrypted (1 MiB objects → 8 objects)
		bs     = 4096
		blocks = size / bs
		steps  = 70
	)

	type version struct {
		snapID  uint64
		model   []byte
		written []bool
	}

	for ci, combo := range allCombos() {
		combo := combo
		t.Run(fmt.Sprintf("%v/%v", combo.Scheme, combo.Layout), func(t *testing.T) {
			e := newEncrypted(t, combo.Scheme, combo.Layout)
			// Alternate serial and parallel datapaths across combos so
			// both execution modes are behavior-checked.
			workers := 1
			if ci%2 == 0 {
				workers = 4
			}
			e.SetParallelism(workers)

			exactHoles := e.MetaLen() > 0
			head := version{model: make([]byte, size), written: make([]bool, blocks)}
			var snaps []version

			check := func(step int, v version, got []byte, off, n int64, label string) {
				t.Helper()
				for b := int64(0); b < n/bs; b++ {
					blk := off/bs + b
					if !v.written[blk] && !exactHoles {
						continue // unspecified content
					}
					lo, hi := blk*bs, (blk+1)*bs
					if !bytes.Equal(got[lo-off:hi-off], v.model[lo:hi]) {
						t.Fatalf("step %d %s: block %d mismatch (written=%v)",
							step, label, blk, v.written[blk])
					}
				}
			}

			rng := rand.New(rand.NewSource(int64(1000 + ci)))
			for step := 0; step < steps; step++ {
				// Bias IO toward object boundaries so multi-extent paths
				// (parallelism across extents) are exercised often.
				nb := int64(rng.Intn(96) + 1)
				var off int64
				if rng.Intn(2) == 0 {
					objIdx := int64(rng.Intn(7))
					off = (objIdx+1)*(1<<20) - nb/2*bs - bs
					if off < 0 {
						off = 0
					}
				} else {
					off = rng.Int63n(blocks-nb+1) * bs
				}
				if off+nb*bs > size {
					nb = (size - off) / bs
				}
				n := nb * bs

				switch r := rng.Intn(10); {
				case r < 5: // write
					data := make([]byte, n)
					rng.Read(data)
					if _, err := e.WriteAt(0, data, off); err != nil {
						t.Fatalf("step %d write: %v", step, err)
					}
					copy(head.model[off:], data)
					for b := int64(0); b < nb; b++ {
						head.written[off/bs+b] = true
					}
				case r < 6 && len(snaps) < 3: // snapshot
					id, _, err := e.CreateSnap(0, fmt.Sprintf("s%d", step))
					if err != nil {
						t.Fatalf("step %d snap: %v", step, err)
					}
					snaps = append(snaps, version{
						snapID:  id,
						model:   append([]byte(nil), head.model...),
						written: append([]bool(nil), head.written...),
					})
				default: // read head or a snapshot
					got := make([]byte, n)
					if len(snaps) > 0 && rng.Intn(2) == 0 {
						v := snaps[rng.Intn(len(snaps))]
						if _, err := e.ReadAtSnap(0, got, off, v.snapID); err != nil {
							t.Fatalf("step %d snap read: %v", step, err)
						}
						check(step, v, got, off, n, "snap")
					} else {
						if _, err := e.ReadAt(0, got, off); err != nil {
							t.Fatalf("step %d read: %v", step, err)
						}
						check(step, head, got, off, n, "head")
					}
				}
			}
		})
	}
}
