package core

import (
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/rbd"
	"repro/internal/telemetry/attr"
)

func TestForBlocksCoversRangeOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		for _, n := range []int64{1, 2, 7, 64, 1000} {
			counts := make([]int32, n)
			err := forBlocks(workers, n, func(lo, hi int64) error {
				for b := lo; b < hi; b++ {
					atomic.AddInt32(&counts[b], 1)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for b, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: block %d visited %d times", workers, n, b, c)
				}
			}
		}
	}
}

func TestForBlocksPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := forBlocks(8, 100, func(lo, hi int64) error {
		if lo <= 42 && 42 < hi {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
}

func TestForExtentBlocksMapping(t *testing.T) {
	const bs = 4096
	exts := []rbd.Extent{
		{ObjIdx: 0, ObjOff: 5 * bs, Length: 3 * bs, BufOff: 0},
		{ObjIdx: 1, ObjOff: 0, Length: 1 * bs, BufOff: 3 * bs},
		{ObjIdx: 2, ObjOff: 0, Length: 4 * bs, BufOff: 4 * bs},
	}
	for _, workers := range []int{1, 4} {
		var visited [3][]int32
		for i, ext := range exts {
			visited[i] = make([]int32, ext.Length/bs)
		}
		err := forExtentBlocks(workers, exts, bs, func(ei int, b int64) error {
			atomic.AddInt32(&visited[ei][b], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range visited {
			for b, c := range visited[i] {
				if c != 1 {
					t.Fatalf("workers=%d ext %d block %d visited %d times", workers, i, b, c)
				}
			}
		}
	}
}

func TestBufPool(t *testing.T) {
	for _, n := range []int{1, 100, 4096, 4097, 1 << 20, 64 << 20} {
		b := getBuf(n)
		if len(b) != n {
			t.Fatalf("getBuf(%d) len %d", n, len(b))
		}
		putBuf(b)
	}
	if getBuf(0) != nil {
		t.Fatal("getBuf(0) should be nil")
	}
	z := getZeroBuf(8192)
	if !bytes.Equal(z, make([]byte, 8192)) {
		t.Fatal("getZeroBuf not zeroed")
	}
	putBuf(z)
	// Foreign buffers (odd capacity) must be rejected, not corrupt a class.
	putBuf(make([]byte, 5000))
}

// pipelineFixture builds a planner+cryptor pair without a cluster, for
// pure seal/open pipeline tests and benchmarks.
func pipelineFixture(tb testing.TB, scheme Scheme, layout Layout) (*planner, cryptor) {
	tb.Helper()
	key := make([]byte, 64)
	if _, err := rand.Read(key); err != nil {
		tb.Fatal(err)
	}
	c, err := newCryptor(scheme, key)
	if err != nil {
		tb.Fatal(err)
	}
	p := &planner{
		layout:     layout,
		blockSize:  DefaultBlockSize,
		metaLen:    int64(c.metaLen()),
		objectSize: 4 << 20,
	}
	return p, c
}

// sealExtent runs the zero-copy seal pipeline over one extent's worth of
// plaintext and returns the staged plan (caller releases).
func sealExtent(p *planner, c cryptor, workers int, src []byte, meta []byte) (*writePlan, error) {
	bs := p.blockSize
	nb := int64(len(src)) / bs
	w := p.newWritePlan(0, nb)
	if rl := c.randLen(); rl > 0 {
		for b := int64(0); b < nb; b++ {
			copy(w.metaDst(b)[:rl], meta[int(b)*rl:])
		}
	}
	err := forBlocks(workers, nb, func(lo, hi int64) error {
		for b := lo; b < hi; b++ {
			if err := c.seal(w.cipherDst(b), src[b*bs:(b+1)*bs], uint64(b), w.metaDst(b)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		w.release()
		return nil, err
	}
	return w, nil
}

// TestSealPipelineMatchesSerial checks the parallel zero-copy pipeline
// produces block-for-block identical wire bytes to a serial
// encrypt-then-copy reference for every scheme × layout.
func TestSealPipelineMatchesSerial(t *testing.T) {
	for _, combo := range allCombos() {
		t.Run(fmt.Sprintf("%v/%v", combo.Scheme, combo.Layout), func(t *testing.T) {
			p, c := pipelineFixture(t, combo.Scheme, combo.Layout)
			const nb = 64
			bs := p.blockSize
			src := make([]byte, nb*bs)
			mrand.New(mrand.NewSource(7)).Read(src)
			meta := make([]byte, nb*max(c.randLen(), 1))
			mrand.New(mrand.NewSource(8)).Read(meta)

			// Serial reference through the legacy copying path.
			refCipher := make([]byte, nb*bs)
			refMeta := make([]byte, nb*p.metaLen)
			for b := int64(0); b < nb; b++ {
				if rl := c.randLen(); rl > 0 {
					copy(refMeta[b*p.metaLen:], meta[int(b)*rl:int(b+1)*rl])
				}
				if err := c.seal(refCipher[b*bs:(b+1)*bs], src[b*bs:(b+1)*bs], uint64(b), refMeta[b*p.metaLen:(b+1)*p.metaLen]); err != nil {
					t.Fatal(err)
				}
			}
			refOps := p.writeOps(0, refCipher, refMeta)

			w, err := sealExtent(p, c, 4, src, meta)
			if err != nil {
				t.Fatal(err)
			}
			defer w.release()
			gotOps := w.ops()

			if len(gotOps) != len(refOps) {
				t.Fatalf("op count %d != %d", len(gotOps), len(refOps))
			}
			for i := range gotOps {
				if !bytes.Equal(gotOps[i].Data, refOps[i].Data) {
					t.Fatalf("op %d wire bytes differ", i)
				}
				if len(gotOps[i].Pairs) != len(refOps[i].Pairs) {
					t.Fatalf("op %d pair count differs", i)
				}
				for j := range gotOps[i].Pairs {
					if !bytes.Equal(gotOps[i].Pairs[j].Value, refOps[i].Pairs[j].Value) {
						t.Fatalf("op %d pair %d differs", i, j)
					}
				}
			}
		})
	}
}

// BenchmarkDatapathSeal measures the pure seal pipeline (no cluster):
// layout staging + cipher, serial vs parallel. With -benchmem it
// demonstrates the zero-per-block-allocation steady state (the only
// allocations are the per-IO plan header and op vector).
func BenchmarkDatapathSeal(b *testing.B) {
	for _, combo := range allCombos() {
		for _, mode := range []struct {
			name    string
			workers int
		}{{"serial", 1}, {"parallel", 0}} {
			workers := mode.workers
			if workers == 0 {
				workers = maxParallelism()
			}
			b.Run(fmt.Sprintf("%v-%v/%s", combo.Scheme, combo.Layout, mode.name), func(b *testing.B) {
				p, c := pipelineFixture(b, combo.Scheme, combo.Layout)
				const nb = 256 // one 1 MiB extent
				src := make([]byte, nb*p.blockSize)
				mrand.New(mrand.NewSource(7)).Read(src)
				meta := make([]byte, nb*max(c.randLen(), 1))
				mrand.New(mrand.NewSource(8)).Read(meta)
				b.SetBytes(int64(len(src)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w, err := sealExtent(p, c, workers, src, meta)
					if err != nil {
						b.Fatal(err)
					}
					w.release()
				}
			})
		}
	}
}

// BenchmarkOMAPReadAllocs pins the allocation budget of the omap
// layout's read path end to end (client → OSD → KV scan → wire decode →
// open pipeline). Run with -benchmem: the KV scan and the wire pair
// decoding are arena-batched, so allocs/op stays in the dozens instead
// of the ~1k-per-IO (two per OMAP pair) the layout used to pay.
func BenchmarkOMAPReadAllocs(b *testing.B) {
	e := newEncrypted(b, SchemeXTSRand, LayoutOMAP)
	io := make([]byte, 256<<10) // 64 blocks → 64 OMAP pairs per IO
	mrand.New(mrand.NewSource(3)).Read(io)
	if _, err := e.WriteAt(0, io, 0); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(io)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ReadAt(0, io, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatapathOpen measures the pure open pipeline: parse staged
// wire bytes and decrypt, serial vs parallel.
func BenchmarkDatapathOpen(b *testing.B) {
	for _, combo := range allCombos() {
		for _, mode := range []struct {
			name    string
			workers int
		}{{"serial", 1}, {"parallel", 0}} {
			workers := mode.workers
			if workers == 0 {
				workers = maxParallelism()
			}
			b.Run(fmt.Sprintf("%v-%v/%s", combo.Scheme, combo.Layout, mode.name), func(b *testing.B) {
				p, c := pipelineFixture(b, combo.Scheme, combo.Layout)
				const nb = 256
				bs := p.blockSize
				src := make([]byte, nb*bs)
				mrand.New(mrand.NewSource(7)).Read(src)
				meta := make([]byte, nb*max(c.randLen(), 1))
				mrand.New(mrand.NewSource(8)).Read(meta)
				w, err := sealExtent(p, c, maxParallelism(), src, meta)
				if err != nil {
					b.Fatal(err)
				}
				defer w.release()
				dst := make([]byte, nb*bs)
				b.SetBytes(int64(len(src)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					err := forBlocks(workers, nb, func(lo, hi int64) error {
						for blk := lo; blk < hi; blk++ {
							if err := c.open(dst[blk*bs:(blk+1)*bs], w.cipherDst(blk)[:bs], uint64(blk), w.metaDst(blk)); err != nil {
								return err
							}
						}
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if !bytes.Equal(dst, src) {
					b.Fatal("open pipeline did not invert seal")
				}
			})
		}
	}
}

// BenchmarkDatapathAttr measures the always-on attribution plane's
// overhead on the full encrypted datapath: identical WriteAt+ReadAt
// loops with recording enabled vs disabled. The benchmark gate compares
// the sub-benchmarks — allocs/op must be identical between on and off,
// pinning attribution at zero allocations per op across every feeding
// layer (client, messenger, OSD serve, crypto charge, device command).
func BenchmarkDatapathAttr(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"on", true}, {"off", false}} {
		b.Run(mode.name, func(b *testing.B) {
			e := newEncrypted(b, SchemeXTSRand, LayoutObjectEnd)
			io := make([]byte, 64<<10)
			mrand.New(mrand.NewSource(5)).Read(io)
			if _, err := e.WriteAt(0, io, 0); err != nil {
				b.Fatal(err)
			}
			attr.SetEnabled(mode.on)
			defer attr.SetEnabled(true)
			b.SetBytes(int64(len(io)) * 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.WriteAt(0, io, 0); err != nil {
					b.Fatal(err)
				}
				if _, err := e.ReadAt(0, io, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
