package core

// keyring.go holds the per-image key-epoch machinery behind the
// key-lifecycle subsystem (internal/keymgr): every key epoch in the LUKS
// container gets its own cryptor, blocks are sealed under the current
// epoch and opened under whatever epoch their stored metadata (or the
// allocation sidecar, for metadata-free schemes) says they carry.

import (
	"errors"
	"fmt"
	"sync"
)

// epochLen is the per-block epoch tag appended to stored metadata (a
// little-endian uint32 after the scheme's IV/tag bytes).
const epochLen = 4

// ErrKeyErased reports a block whose key epoch has been destroyed
// (crypto-erase): the ciphertext is permanently unrecoverable.
var ErrKeyErased = errors.New("core: block sealed under a destroyed key epoch")

// keyring maps live key epochs to their cryptors. Reads are the IO hot
// path; mutations happen only on key-lifecycle operations.
type keyring struct {
	mu      sync.RWMutex
	byEpoch map[uint32]cryptor
	current uint32
}

func newKeyring() *keyring {
	return &keyring{byEpoch: make(map[uint32]cryptor)}
}

func (k *keyring) install(epoch uint32, c cryptor) {
	k.mu.Lock()
	k.byEpoch[epoch] = c
	k.mu.Unlock()
}

func (k *keyring) drop(epoch uint32) {
	k.mu.Lock()
	delete(k.byEpoch, epoch)
	k.mu.Unlock()
}

func (k *keyring) setCurrent(epoch uint32) {
	k.mu.Lock()
	k.current = epoch
	k.mu.Unlock()
}

func (k *keyring) currentEpoch() uint32 {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.current
}

// cryptorFor returns the cryptor of a live epoch, or ErrKeyErased when
// the epoch has been retired and destroyed.
func (k *keyring) cryptorFor(epoch uint32) (cryptor, error) {
	k.mu.RLock()
	c, ok := k.byEpoch[epoch]
	k.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: epoch %d", ErrKeyErased, epoch)
	}
	return c, nil
}

// epochs lists the live epoch ids (unordered).
func (k *keyring) epochs() []uint32 {
	k.mu.RLock()
	defer k.mu.RUnlock()
	out := make([]uint32, 0, len(k.byEpoch))
	for e := range k.byEpoch {
		out = append(out, e)
	}
	return out
}

// lockTable hands out one RWMutex per object index. Writers hold the
// read side (they may run concurrently against different blocks); the
// rekey walker, Discard and the metadata-free sidecar path hold the
// write side so their read-modify-write cycles cannot interleave with
// anything else touching the object.
type lockTable struct {
	mu sync.Mutex
	m  map[int64]*sync.RWMutex
}

func (t *lockTable) of(idx int64) *sync.RWMutex {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = make(map[int64]*sync.RWMutex)
	}
	l, ok := t.m[idx]
	if !ok {
		l = &sync.RWMutex{}
		t.m[idx] = l
	}
	return l
}
