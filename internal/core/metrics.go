package core

// metrics.go: the datapath's telemetry. Families are registered at
// package init; the per-(scheme, layout) series handles are resolved
// once per image in Load, so the seal/open hot paths record through
// pre-bound counters with zero allocations (see METRICS.md).

import "repro/internal/telemetry"

var (
	mSealOps = telemetry.NewCounterVec("core_seal_ops_total",
		"WriteAt calls completed (blocks sealed under the current epoch)", "scheme", "layout")
	mSealBytes = telemetry.NewCounterVec("core_seal_bytes_total",
		"plaintext bytes sealed by WriteAt", "scheme", "layout")
	mOpenOps = telemetry.NewCounterVec("core_open_ops_total",
		"ReadAt/ReadAtSnap calls completed (blocks fetched and opened)", "scheme", "layout")
	mOpenBytes = telemetry.NewCounterVec("core_open_bytes_total",
		"plaintext bytes opened by reads", "scheme", "layout")
	mWriteLat = telemetry.NewHistogramVec("core_write_vtime",
		"virtual time of one encrypted WriteAt (seal + commit + replication)", "scheme", "layout")
	mReadLat = telemetry.NewHistogramVec("core_read_vtime",
		"virtual time of one encrypted read (fetch + open)", "scheme", "layout")

	// Datapath worker-pool why-signals: utilization and backpressure for
	// the shared seal/open pool (datapath.go), so a saturated pool shows
	// up as a cause, not just as tail latency.
	mDPBusy = telemetry.NewGauge("core_dp_workers_busy",
		"datapath pool workers currently executing a chunk")
	mDPQueue = telemetry.NewGauge("core_dp_queue_depth",
		"datapath chunks queued to the shared pool and not yet picked up")
	mDPInline = telemetry.NewCounter("core_dp_inline_total",
		"datapath chunks executed inline because the pool queue was full (saturation signal)")
)

// imageMetrics is the per-image bundle of resolved series.
type imageMetrics struct {
	sealOps, sealBytes *telemetry.Counter
	openOps, openBytes *telemetry.Counter
	writeLat, readLat  *telemetry.Histogram
}

func newImageMetrics(s Scheme, l Layout) imageMetrics {
	sch, lay := s.String(), l.String()
	return imageMetrics{
		sealOps:   mSealOps.With(sch, lay),
		sealBytes: mSealBytes.With(sch, lay),
		openOps:   mOpenOps.With(sch, lay),
		openBytes: mOpenBytes.With(sch, lay),
		writeLat:  mWriteLat.With(sch, lay),
		readLat:   mReadLat.With(sch, lay),
	}
}
