package core

// datapath.go is the parallel, pooled seal/open pipeline behind
// EncryptedImage.WriteAt and ReadAtSnap. The per-4-KiB-block cipher work
// is the hottest CPU path in the repo (the paper's client-side cost), so
// it gets three optimizations here:
//
//  1. a shared worker pool, sized to runtime.GOMAXPROCS, that fans
//     seal/open across blocks within and across extents;
//  2. sync.Pool-backed scratch buffers for every wire, metadata and
//     cipher-scratch allocation, so the steady state performs no
//     per-block heap allocations;
//  3. chunked dispatch (contiguous block ranges, one chunk per worker)
//     so cross-goroutine coordination cost is per-IO, not per-block.
//
// The pool is package-global and lazily started: images share workers,
// and per-image parallelism is bounded by Options.ClientCores.

import (
	"runtime"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/rbd"
	"repro/internal/vtime"
)

// maxParallelism is the datapath's default worker count: one cipher
// worker per scheduler core.
func maxParallelism() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// ---- scratch buffer pool ----

// Buffers come from the shared internal/bufpool size-classed pool, which
// the RADOS wire layer draws from as well. It is safe — and required for
// the zero-alloc steady state — that callers return buffers with putBuf
// once no wire op references them: Operate on the in-process fast path
// hands the buffers to the OSD, which copies what it persists before
// returning, and on the byte codec path the transport consumes them
// before Call returns, so release-after-Operate is sound either way.

func getBuf(n int) []byte     { return bufpool.Get(n) }
func getZeroBuf(n int) []byte { return bufpool.GetZero(n) }
func putBuf(b []byte)         { bufpool.Put(b) }

// ---- worker pool ----

type blockJob struct {
	lo, hi int64
	run    func(lo, hi int64) error
	wg     *sync.WaitGroup
	res    *jobErr
}

// jobErr collects the first error across a job's chunks.
type jobErr struct {
	mu  sync.Mutex
	err error
}

func (j *jobErr) set(err error) {
	if err == nil {
		return
	}
	j.mu.Lock()
	if j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
}

var (
	dpOnce sync.Once
	dpJobs chan blockJob
)

// dpStart launches the shared datapath workers, one per scheduler core.
func dpStart() {
	n := maxParallelism()
	dpJobs = make(chan blockJob, 4*n)
	for i := 0; i < n; i++ {
		go func() {
			for job := range dpJobs {
				mDPQueue.Add(-1)
				mDPBusy.Add(1)
				job.res.set(job.run(job.lo, job.hi))
				mDPBusy.Add(-1)
				job.wg.Done()
			}
		}()
	}
}

// forBlocks runs fn over the block range [0, n), split into at most
// `workers` contiguous chunks executed on the shared pool. The calling
// goroutine always processes the final chunk itself, so a single-worker
// (or single-block) call never leaves the caller's goroutine, and a full
// job queue degrades to inline execution instead of blocking.
func forBlocks(workers int, n int64, fn func(lo, hi int64) error) error {
	if n <= 0 {
		return nil
	}
	if int64(workers) > n {
		workers = int(n)
	}
	if workers <= 1 {
		return fn(0, n)
	}
	dpOnce.Do(dpStart)
	var (
		wg  sync.WaitGroup
		res jobErr
	)
	chunk := (n + int64(workers) - 1) / int64(workers)
	var lo int64
	for lo = 0; lo+chunk < n; lo += chunk {
		job := blockJob{lo: lo, hi: lo + chunk, run: fn, wg: &wg, res: &res}
		wg.Add(1)
		mDPQueue.Add(1)
		select {
		case dpJobs <- job:
		default:
			// Queue full: the pool is saturated and this chunk degrades to
			// inline execution — the backpressure event the
			// datapath-queue-saturation health rule counts.
			mDPQueue.Add(-1)
			mDPInline.Inc()
			res.set(fn(job.lo, job.hi))
			wg.Done()
		}
	}
	res.set(fn(lo, n))
	wg.Wait()
	res.mu.Lock()
	defer res.mu.Unlock()
	return res.err
}

// fanOutExtents runs fn(i) for i in [0, n) concurrently — inline when
// n == 1, avoiding goroutine churn for single-object IOs — and joins the
// completions: the latest virtual end wins; on any failure the first
// error is reported with the caller's original arrival time.
func fanOutExtents(at vtime.Time, n int, fn func(i int) (vtime.Time, error)) (vtime.Time, error) {
	if n == 1 {
		end, err := fn(0)
		if err != nil {
			return at, err
		}
		return end, nil
	}
	type outcome struct {
		end vtime.Time
		err error
	}
	ch := make(chan outcome, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			end, err := fn(i)
			ch <- outcome{end: end, err: err}
		}(i)
	}
	end := at
	var firstErr error
	for i := 0; i < n; i++ {
		o := <-ch
		if o.err != nil && firstErr == nil {
			firstErr = o.err
		}
		end = vtime.Max(end, o.end)
	}
	if firstErr != nil {
		return at, firstErr
	}
	return end, nil
}

// forExtentBlocks fans fn across every block of every extent: the flat
// block index space of the whole IO is chunked over the pool, so small
// extents do not serialize behind each other (parallelism within AND
// across extents). fn receives the extent's position in exts and the
// block index local to that extent.
func forExtentBlocks(workers int, exts []rbd.Extent, blockSize int64, fn func(ei int, b int64) error) error {
	if len(exts) == 1 {
		nb := exts[0].Length / blockSize
		return forBlocks(workers, nb, func(lo, hi int64) error {
			for b := lo; b < hi; b++ {
				if err := fn(0, b); err != nil {
					return err
				}
			}
			return nil
		})
	}
	// starts[i] is the flat index of exts[i]'s first block.
	starts := make([]int64, len(exts)+1)
	for i, ext := range exts {
		starts[i+1] = starts[i] + ext.Length/blockSize
	}
	total := starts[len(exts)]
	return forBlocks(workers, total, func(lo, hi int64) error {
		ei := 0
		for starts[ei+1] <= lo {
			ei++
		}
		for g := lo; g < hi; g++ {
			for starts[ei+1] <= g {
				ei++
			}
			if err := fn(ei, g-starts[ei]); err != nil {
				return err
			}
		}
		return nil
	})
}
