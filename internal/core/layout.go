package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/rados"
)

// Layout selects where per-sector metadata lives inside the virtual-disk
// mapping — the three alternatives of §3.1 (Fig. 2) plus the baseline.
type Layout int

// Layouts.
const (
	// LayoutNone stores no metadata (the LUKS2 baseline and the
	// deterministic wide-block scheme).
	LayoutNone Layout = iota
	// LayoutUnaligned stores each block's metadata contiguously after the
	// block: data|IV|data|IV|… (Fig. 2a).
	LayoutUnaligned
	// LayoutObjectEnd batches all of an object's metadata after the data
	// region, at the object end (Fig. 2b).
	LayoutObjectEnd
	// LayoutOMAP stores metadata in the per-object key-value database
	// (Fig. 2c).
	LayoutOMAP
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case LayoutNone:
		return "none"
	case LayoutUnaligned:
		return "unaligned"
	case LayoutObjectEnd:
		return "object-end"
	case LayoutOMAP:
		return "omap"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// ParseLayout is the inverse of String.
func ParseLayout(s string) (Layout, error) {
	for _, l := range []Layout{LayoutNone, LayoutUnaligned, LayoutObjectEnd, LayoutOMAP} {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("core: unknown layout %q", s)
}

// omapIVPrefix namespaces IV entries in the object OMAP.
const omapIVPrefix = "iv."

func omapIVKey(block int64) []byte {
	k := make([]byte, len(omapIVPrefix)+8)
	copy(k, omapIVPrefix)
	binary.BigEndian.PutUint64(k[len(omapIVPrefix):], uint64(block))
	return k
}

// planner turns an object-relative block run plus its ciphertext and
// metadata into op vectors, and parses read results back. All offsets are
// in blocks relative to the object start.
type planner struct {
	layout     Layout
	blockSize  int64
	metaLen    int64
	objectSize int64 // plaintext bytes per object (the data region size)
}

// writeOps builds the atomic op vector persisting cipher (nb blocks) and
// metas (nb*metaLen bytes) for blocks [startBlock, startBlock+nb).
func (p *planner) writeOps(startBlock int64, cipher, metas []byte) []rados.Op {
	nb := int64(len(cipher)) / p.blockSize
	switch p.layout {
	case LayoutNone:
		return []rados.Op{{Kind: rados.OpWrite, Off: startBlock * p.blockSize, Data: cipher}}

	case LayoutUnaligned:
		stride := p.blockSize + p.metaLen
		buf := make([]byte, nb*stride)
		for b := int64(0); b < nb; b++ {
			copy(buf[b*stride:], cipher[b*p.blockSize:(b+1)*p.blockSize])
			copy(buf[b*stride+p.blockSize:], metas[b*p.metaLen:(b+1)*p.metaLen])
		}
		return []rados.Op{{Kind: rados.OpWrite, Off: startBlock * stride, Data: buf}}

	case LayoutObjectEnd:
		return []rados.Op{
			{Kind: rados.OpWrite, Off: startBlock * p.blockSize, Data: cipher},
			{Kind: rados.OpWrite, Off: p.objectSize + startBlock*p.metaLen, Data: metas},
		}

	case LayoutOMAP:
		pairs := make([]rados.Pair, nb)
		for b := int64(0); b < nb; b++ {
			pairs[b] = rados.Pair{
				Key:   omapIVKey(startBlock + b),
				Value: metas[b*p.metaLen : (b+1)*p.metaLen],
			}
		}
		return []rados.Op{
			{Kind: rados.OpWrite, Off: startBlock * p.blockSize, Data: cipher},
			{Kind: rados.OpOmapSet, Pairs: pairs},
		}
	}
	panic("core: unknown layout")
}

// readOps builds the op vector fetching blocks [startBlock, startBlock+nb)
// with their metadata.
func (p *planner) readOps(startBlock, nb int64) []rados.Op {
	switch p.layout {
	case LayoutNone:
		return []rados.Op{{Kind: rados.OpRead, Off: startBlock * p.blockSize, Len: nb * p.blockSize}}

	case LayoutUnaligned:
		stride := p.blockSize + p.metaLen
		return []rados.Op{{Kind: rados.OpRead, Off: startBlock * stride, Len: nb * stride}}

	case LayoutObjectEnd:
		return []rados.Op{
			{Kind: rados.OpRead, Off: startBlock * p.blockSize, Len: nb * p.blockSize},
			{Kind: rados.OpRead, Off: p.objectSize + startBlock*p.metaLen, Len: nb * p.metaLen},
		}

	case LayoutOMAP:
		return []rados.Op{
			{Kind: rados.OpRead, Off: startBlock * p.blockSize, Len: nb * p.blockSize},
			{Kind: rados.OpOmapGetRange, Key: omapIVKey(startBlock), Key2: omapIVKey(startBlock + nb)},
		}
	}
	panic("core: unknown layout")
}

// parseRead extracts ciphertext and metadata from read results. A missing
// object (hole) yields all-zero cipher and metadata, which the decryption
// path maps back to zero plaintext (sparse semantics).
func (p *planner) parseRead(startBlock, nb int64, res []rados.Result) (cipher, metas []byte, err error) {
	cipher = make([]byte, nb*p.blockSize)
	metas = make([]byte, nb*p.metaLen)

	if res[0].Status == rados.StatusNotFound {
		return cipher, metas, nil
	}
	if err := res[0].Status.Err(); err != nil {
		return nil, nil, err
	}

	switch p.layout {
	case LayoutNone:
		copy(cipher, res[0].Data)
		return cipher, metas, nil

	case LayoutUnaligned:
		stride := p.blockSize + p.metaLen
		data := res[0].Data
		for b := int64(0); b < nb; b++ {
			if (b+1)*stride <= int64(len(data)) {
				copy(cipher[b*p.blockSize:], data[b*stride:b*stride+p.blockSize])
				copy(metas[b*p.metaLen:], data[b*stride+p.blockSize:(b+1)*stride])
			}
		}
		return cipher, metas, nil

	case LayoutObjectEnd:
		if len(res) != 2 {
			return nil, nil, fmt.Errorf("core: object-end read returned %d results", len(res))
		}
		if err := res[1].Status.Err(); err != nil {
			return nil, nil, err
		}
		copy(cipher, res[0].Data)
		copy(metas, res[1].Data)
		return cipher, metas, nil

	case LayoutOMAP:
		if len(res) != 2 {
			return nil, nil, fmt.Errorf("core: omap read returned %d results", len(res))
		}
		if err := res[1].Status.Err(); err != nil {
			return nil, nil, err
		}
		copy(cipher, res[0].Data)
		for _, pair := range res[1].Pairs {
			if len(pair.Key) != len(omapIVPrefix)+8 || !bytes.HasPrefix(pair.Key, []byte(omapIVPrefix)) {
				continue
			}
			block := int64(binary.BigEndian.Uint64(pair.Key[len(omapIVPrefix):]))
			if block < startBlock || block >= startBlock+nb {
				continue
			}
			copy(metas[(block-startBlock)*p.metaLen:], pair.Value)
		}
		return cipher, metas, nil
	}
	panic("core: unknown layout")
}

// SectorCount is the §3.3 analytic model: the minimum number of physical
// 4 KiB device sectors a single IO of ioBytes must touch under each
// layout (the paper's "4KB write needs 2 sectors vs 1; 32KB needs 9 vs 8"
// discussion). OMAP metadata does not consume data-path sectors — its
// cost is in the database — so its count matches the baseline.
func SectorCount(l Layout, ioBytes, blockSize, metaLen int64) int64 {
	if ioBytes <= 0 || blockSize <= 0 {
		return 0
	}
	nb := (ioBytes + blockSize - 1) / blockSize
	dataSectors := nb
	switch l {
	case LayoutNone, LayoutOMAP:
		return dataSectors
	case LayoutObjectEnd:
		// The batched IV region adds ceil(nb*metaLen / sector) sectors.
		return dataSectors + (nb*metaLen+blockSize-1)/blockSize
	case LayoutUnaligned:
		// The interleaved stream occupies ceil(nb*(block+meta)/sector)
		// sectors, generally misaligned by one extra boundary sector.
		span := nb * (blockSize + metaLen)
		sectors := (span + blockSize - 1) / blockSize
		if span%blockSize != 0 {
			sectors++ // the run straddles one more boundary on average
		}
		return sectors
	}
	return dataSectors
}
