package core

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/rados"
)

// Layout selects where per-sector metadata lives inside the virtual-disk
// mapping — the three alternatives of §3.1 (Fig. 2) plus the baseline.
type Layout int

// Layouts.
const (
	// LayoutNone stores no metadata (the LUKS2 baseline and the
	// deterministic wide-block scheme).
	LayoutNone Layout = iota
	// LayoutUnaligned stores each block's metadata contiguously after the
	// block: data|IV|data|IV|… (Fig. 2a).
	LayoutUnaligned
	// LayoutObjectEnd batches all of an object's metadata after the data
	// region, at the object end (Fig. 2b).
	LayoutObjectEnd
	// LayoutOMAP stores metadata in the per-object key-value database
	// (Fig. 2c).
	LayoutOMAP
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case LayoutNone:
		return "none"
	case LayoutUnaligned:
		return "unaligned"
	case LayoutObjectEnd:
		return "object-end"
	case LayoutOMAP:
		return "omap"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// ParseLayout is the inverse of String.
func ParseLayout(s string) (Layout, error) {
	for _, l := range []Layout{LayoutNone, LayoutUnaligned, LayoutObjectEnd, LayoutOMAP} {
		if l.String() == s {
			return l, nil
		}
	}
	return 0, fmt.Errorf("core: unknown layout %q", s)
}

// omapIVPrefix namespaces IV entries in the object OMAP.
const omapIVPrefix = "iv."

// omapKeyLen is the encoded size of one OMAP IV key.
const omapKeyLen = len(omapIVPrefix) + 8

func omapIVKey(block int64) []byte {
	k := make([]byte, omapKeyLen)
	omapIVKeyInto(k, block)
	return k
}

// omapIVKeyInto renders the IV key for block into k (omapKeyLen bytes).
func omapIVKeyInto(k []byte, block int64) {
	copy(k, omapIVPrefix)
	binary.BigEndian.PutUint64(k[len(omapIVPrefix):], uint64(block))
}

// planner turns an object-relative block run plus its ciphertext and
// metadata into op vectors, and parses read results back. All offsets are
// in blocks relative to the object start.
//
// metaLen is the STORED metadata per block: the scheme's IV/tag bytes
// plus — when epochTagged — the epochLen-byte key-epoch tag (images
// whose container predates the epoch table store scheme bytes only, and
// cannot re-key until reformatted). trackAlloc marks the metadata-free
// configuration (LayoutNone), which keeps presence and epoch in the
// allocation sidecar attribute instead.
type planner struct {
	layout      Layout
	blockSize   int64
	metaLen     int64
	objectSize  int64 // plaintext bytes per object (the data region size)
	trackAlloc  bool
	epochTagged bool
}

// objBlocks is the number of encryption blocks per object.
func (p *planner) objBlocks() int64 { return p.objectSize / p.blockSize }

// writeOps builds the atomic op vector persisting cipher (nb blocks) and
// metas (nb*metaLen bytes) for blocks [startBlock, startBlock+nb). It is
// the copying convenience used by tests and tools; the IO hot path seals
// directly into a writePlan's wire buffers instead.
func (p *planner) writeOps(startBlock int64, cipher, metas []byte) []rados.Op {
	nb := int64(len(cipher)) / p.blockSize
	w := p.newWritePlan(startBlock, nb)
	for b := int64(0); b < nb; b++ {
		copy(w.cipherDst(b), cipher[b*p.blockSize:(b+1)*p.blockSize])
		if p.metaLen > 0 {
			copy(w.metaDst(b), metas[b*p.metaLen:(b+1)*p.metaLen])
		}
	}
	// Deliberately never released: the caller owns the op buffers.
	return w.ops()
}

// writePlan stages one extent's wire buffers so the cryptor seals
// ciphertext and metadata directly where the RADOS ops will carry them —
// the layout-aware encryption target that removes the encrypt-then-copy
// stride shuffle from the write path. Buffers come from the datapath
// scratch pool; callers release() the plan once the transaction has been
// issued (Operate marshals payloads before returning, so the bytes are
// no longer referenced).
type writePlan struct {
	p     *planner
	start int64 // object-relative first block
	nb    int64
	wire  []byte // data region; stride-interleaved under LayoutUnaligned
	meta  []byte // separate metadata region (object-end, OMAP); nil otherwise
	keys  []byte // OMAP IV key arena (one pooled buffer for all keys)
}

// newWritePlan allocates pooled wire buffers for nb blocks at startBlock.
func (p *planner) newWritePlan(startBlock, nb int64) *writePlan {
	w := &writePlan{p: p, start: startBlock, nb: nb}
	switch p.layout {
	case LayoutUnaligned:
		w.wire = getBuf(int(nb * (p.blockSize + p.metaLen)))
	default:
		w.wire = getBuf(int(nb * p.blockSize))
		if p.metaLen > 0 {
			w.meta = getBuf(int(nb * p.metaLen))
		}
		if p.layout == LayoutOMAP {
			// All of the plan's OMAP keys share one arena: a large OMAP
			// write used to allocate one small key per block here.
			w.keys = getBuf(int(nb) * omapKeyLen)
		}
	}
	return w
}

// cipherDst returns block b's ciphertext destination inside the wire
// buffer. Under LayoutUnaligned the slice's capacity extends over the
// block's own metadata slot so an AEAD seal can append its tag in place
// (the cryptor relocates tag bytes within the slot afterwards).
func (w *writePlan) cipherDst(b int64) []byte {
	bs := w.p.blockSize
	if w.p.layout == LayoutUnaligned {
		stride := bs + w.p.metaLen
		return w.wire[b*stride : b*stride+bs : (b+1)*stride]
	}
	return w.wire[b*bs : (b+1)*bs : (b+1)*bs]
}

// metaDst returns block b's metadata destination (nil for metadata-free
// layouts).
func (w *writePlan) metaDst(b int64) []byte {
	ml := w.p.metaLen
	if ml == 0 {
		return nil
	}
	if w.p.layout == LayoutUnaligned {
		off := b*(w.p.blockSize+ml) + w.p.blockSize
		return w.wire[off : off+ml]
	}
	return w.meta[b*ml : (b+1)*ml]
}

// ops builds the atomic op vector over the staged buffers, zero-copy.
func (w *writePlan) ops() []rados.Op {
	p := w.p
	switch p.layout {
	case LayoutNone:
		return []rados.Op{{Kind: rados.OpWrite, Off: w.start * p.blockSize, Data: w.wire}}

	case LayoutUnaligned:
		stride := p.blockSize + p.metaLen
		return []rados.Op{{Kind: rados.OpWrite, Off: w.start * stride, Data: w.wire}}

	case LayoutObjectEnd:
		return []rados.Op{
			{Kind: rados.OpWrite, Off: w.start * p.blockSize, Data: w.wire},
			{Kind: rados.OpWrite, Off: p.objectSize + w.start*p.metaLen, Data: w.meta},
		}

	case LayoutOMAP:
		pairs := make([]rados.Pair, w.nb)
		for b := int64(0); b < w.nb; b++ {
			k := w.keys[b*int64(omapKeyLen) : (b+1)*int64(omapKeyLen) : (b+1)*int64(omapKeyLen)]
			omapIVKeyInto(k, w.start+b)
			pairs[b] = rados.Pair{
				Key:   k,
				Value: w.meta[b*p.metaLen : (b+1)*p.metaLen],
			}
		}
		return []rados.Op{
			{Kind: rados.OpWrite, Off: w.start * p.blockSize, Data: w.wire},
			{Kind: rados.OpOmapSet, Pairs: pairs},
		}
	}
	panic("core: unknown layout")
}

// release returns the plan's buffers to the scratch pool. Must not be
// called before every Operate using the plan's ops has returned.
func (w *writePlan) release() {
	putBuf(w.wire)
	if w.meta != nil {
		putBuf(w.meta)
	}
	if w.keys != nil {
		putBuf(w.keys)
	}
	w.wire, w.meta, w.keys = nil, nil, nil
}

// readOps builds the op vector fetching blocks [startBlock, startBlock+nb)
// with their metadata. The final op is always an OpStat: the object's
// logical size is the presence signal that distinguishes never-written
// (sparse) block runs from legitimately written ones, replacing the old
// all-zero-ciphertext sniffing that misread Decrypt(0) blocks as holes.
func (p *planner) readOps(startBlock, nb int64) []rados.Op {
	return p.readOpsInto(startBlock, nb, nil, nil)
}

// rawReadLen is the size of the raw data-read destination for nb blocks:
// the stride-interleaved stream under LayoutUnaligned, the plain
// ciphertext run otherwise.
func (p *planner) rawReadLen(nb int64) int64 {
	if p.layout == LayoutUnaligned {
		return nb * (p.blockSize + p.metaLen)
	}
	return nb * p.blockSize
}

// readOpsInto is readOps with destination plumbing for the in-process
// fast path: raw (rawReadLen bytes), when non-nil, receives the data
// read, and metas (nb*metaLen bytes) the object-end metadata read, so
// fetched bytes land straight in the caller's pooled buffers. Over the
// byte codec the destinations are ignored and the server allocates as
// before; parseReadInto handles both outcomes.
func (p *planner) readOpsInto(startBlock, nb int64, raw, metas []byte) []rados.Op {
	stat := rados.Op{Kind: rados.OpStat}
	switch p.layout {
	case LayoutNone:
		return []rados.Op{
			{Kind: rados.OpRead, Off: startBlock * p.blockSize, Len: nb * p.blockSize, Dst: raw},
			{Kind: rados.OpGetAttr, Key: []byte(allocAttr)},
			stat,
		}

	case LayoutUnaligned:
		stride := p.blockSize + p.metaLen
		return []rados.Op{{Kind: rados.OpRead, Off: startBlock * stride, Len: nb * stride, Dst: raw}, stat}

	case LayoutObjectEnd:
		return []rados.Op{
			{Kind: rados.OpRead, Off: startBlock * p.blockSize, Len: nb * p.blockSize, Dst: raw},
			{Kind: rados.OpRead, Off: p.objectSize + startBlock*p.metaLen, Len: nb * p.metaLen, Dst: metas},
			stat,
		}

	case LayoutOMAP:
		return []rados.Op{
			{Kind: rados.OpRead, Off: startBlock * p.blockSize, Len: nb * p.blockSize, Dst: raw},
			{Kind: rados.OpOmapGetRange, Key: omapIVKey(startBlock), Key2: omapIVKey(startBlock + nb)},
			stat,
		}
	}
	panic("core: unknown layout")
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// sameBacking reports whether two slices share a backing array start —
// the Dst fast path, where a read result already IS the destination.
func sameBacking(a, b []byte) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// fillFrom lands src in dst: a plain copy normally, a no-op when the
// result already aliases the destination (in-process reads into Dst).
// Any destination tail beyond src is zeroed either way.
func fillFrom(dst, src []byte) {
	if sameBacking(dst, src) {
		clear(dst[len(src):])
		return
	}
	n := copy(dst, src)
	clear(dst[n:])
}

// parseRead extracts ciphertext and metadata from read results and
// reports, per block, whether the block was ever written. It is the
// allocating convenience wrapper around parseReadInto.
func (p *planner) parseRead(startBlock, nb int64, res []rados.Result) (cipher, metas []byte, present []bool, err error) {
	cipher = make([]byte, nb*p.blockSize)
	metas = make([]byte, nb*p.metaLen)
	pb := make([]byte, nb)
	if err := p.parseReadInto(startBlock, nb, res, cipher, metas, pb, nil); err != nil {
		return nil, nil, nil, err
	}
	present = make([]bool, nb)
	for i, v := range pb {
		present[i] = v != 0
	}
	return cipher, metas, present, nil
}

// parseReadInto fills caller-provided (typically pooled) buffers with the
// ciphertext and metadata of blocks [startBlock, startBlock+nb) and marks
// each block's presence. When epochs is non-nil (nb*epochLen bytes) it
// also receives each block's key-epoch tag, little-endian — from the
// metadata tail under the metadata layouts, from the allocation sidecar
// under LayoutNone. Presence is derived from the read results, never from
// the data content:
//
//   - object StatusNotFound       → every block absent (sparse read);
//   - the OpStat logical size     → a block whose stored footprint lies
//     fully beyond the object's logical size was never written;
//   - LayoutOMAP                  → a block is present iff its IV key
//     exists in the object database (exact per-block presence);
//   - LayoutNone                  → a block is present iff its bit is set
//     in the allocation sidecar (exact presence; objects written before
//     the sidecar existed fall back to the logical-size heuristic);
//   - metadata-bearing layouts    → an all-zero metadata slot inside the
//     logical size marks an interior hole (a real write leaves a random
//     IV there; the odds of a legitimate all-zero IV are ~2^-128).
//
// Data content is deliberately never sniffed: a written block whose
// ciphertext happens to be all zeros (plaintext Decrypt(0)) is present
// and decrypts normally.
func (p *planner) parseReadInto(startBlock, nb int64, res []rados.Result, cipher, metas, present, epochs []byte) error {
	clear(present[:nb])
	if epochs != nil {
		clear(epochs[:nb*epochLen])
	}

	if res[0].Status == rados.StatusNotFound {
		// The destinations may hold stale pool contents (an in-process
		// read into Dst never reached the store); make the hole explicit.
		clear(cipher[:nb*p.blockSize])
		clear(metas[:nb*p.metaLen])
		return nil
	}
	if err := res[0].Status.Err(); err != nil {
		return err
	}
	// The object's logical size, from the trailing OpStat.
	var size int64
	if st := res[len(res)-1]; st.Status == rados.StatusOK {
		size = st.Size
	}

	// copyEpochTails extracts the epoch tag from each present block's
	// stored metadata slot. Legacy (untagged) slots leave the epoch
	// buffer zero — epoch 0, the implicit master-key epoch.
	copyEpochTails := func() {
		if epochs == nil || !p.epochTagged {
			return
		}
		for b := int64(0); b < nb; b++ {
			if present[b] != 0 {
				copy(epochs[b*epochLen:(b+1)*epochLen], metas[(b+1)*p.metaLen-epochLen:(b+1)*p.metaLen])
			}
		}
	}

	switch p.layout {
	case LayoutNone:
		if len(res) != 3 {
			return fmt.Errorf("core: metadata-free read returned %d results", len(res))
		}
		fillFrom(cipher[:nb*p.blockSize], res[0].Data)
		if res[1].Status == rados.StatusOK {
			a, err := decodeObjAlloc(res[1].Data, p.objBlocks())
			if err != nil {
				return err
			}
			for b := int64(0); b < nb; b++ {
				if a.present(startBlock + b) {
					present[b] = 1
					if epochs != nil {
						binary.LittleEndian.PutUint32(epochs[b*epochLen:], a.epoch(startBlock+b))
					}
				}
			}
			return nil
		}
		// No sidecar (object written by a pre-sidecar build): fall back to
		// the logical-size heuristic — interior holes decrypt to
		// deterministic garbage, the contract dm-crypt gives.
		for b := int64(0); b < nb; b++ {
			present[b] = boolByte((startBlock+b+1)*p.blockSize <= size)
		}
		return nil

	case LayoutUnaligned:
		// The raw read is stride-interleaved and lands in its own buffer;
		// cipher and metas are always de-strided copies.
		clear(cipher[:nb*p.blockSize])
		clear(metas[:nb*p.metaLen])
		stride := p.blockSize + p.metaLen
		data := res[0].Data
		for b := int64(0); b < nb; b++ {
			if (b+1)*stride <= int64(len(data)) {
				copy(cipher[b*p.blockSize:(b+1)*p.blockSize], data[b*stride:b*stride+p.blockSize])
				copy(metas[b*p.metaLen:(b+1)*p.metaLen], data[b*stride+p.blockSize:(b+1)*stride])
			}
			present[b] = boolByte((startBlock+b+1)*stride <= size &&
				(p.metaLen == 0 || !allZero(metas[b*p.metaLen:(b+1)*p.metaLen])))
		}
		copyEpochTails()
		return nil

	case LayoutObjectEnd:
		if len(res) != 3 {
			return fmt.Errorf("core: object-end read returned %d results", len(res))
		}
		if err := res[1].Status.Err(); err != nil {
			return err
		}
		fillFrom(cipher[:nb*p.blockSize], res[0].Data)
		fillFrom(metas[:nb*p.metaLen], res[1].Data)
		for b := int64(0); b < nb; b++ {
			present[b] = boolByte(p.objectSize+(startBlock+b+1)*p.metaLen <= size &&
				!allZero(metas[b*p.metaLen:(b+1)*p.metaLen]))
		}
		copyEpochTails()
		return nil

	case LayoutOMAP:
		if len(res) != 3 {
			return fmt.Errorf("core: omap read returned %d results", len(res))
		}
		if err := res[1].Status.Err(); err != nil {
			return err
		}
		fillFrom(cipher[:nb*p.blockSize], res[0].Data)
		clear(metas[:nb*p.metaLen])
		for _, pair := range res[1].Pairs {
			if len(pair.Key) != len(omapIVPrefix)+8 || !bytes.HasPrefix(pair.Key, []byte(omapIVPrefix)) {
				continue
			}
			block := int64(binary.BigEndian.Uint64(pair.Key[len(omapIVPrefix):]))
			if block < startBlock || block >= startBlock+nb {
				continue
			}
			copy(metas[(block-startBlock)*p.metaLen:], pair.Value)
			present[block-startBlock] = 1
		}
		copyEpochTails()
		return nil
	}
	panic("core: unknown layout")
}

// probeOps builds the cheapest op vector that can answer "which of
// blocks [startBlock, startBlock+nb) were ever written?" — the presence
// probe behind clone read-through and copyup, where the caller wants the
// answer without paying for the ciphertext. Object-end and OMAP layouts
// fetch only their metadata region; the metadata-free configuration
// fetches only the allocation sidecar; the unaligned layout has no
// metadata region of its own to address, so it must fetch its
// interleaved stream (raw, rawReadLen bytes — the one layout where a
// probe costs a data read, another point against Fig. 2a). metas
// receives the object-end metadata read destination; both buffers may be
// nil over the byte codec. The result shape is always [probe, stat];
// parseProbe decodes it.
func (p *planner) probeOps(startBlock, nb int64, raw, metas []byte) []rados.Op {
	stat := rados.Op{Kind: rados.OpStat}
	switch p.layout {
	case LayoutNone:
		return []rados.Op{{Kind: rados.OpGetAttr, Key: []byte(allocAttr)}, stat}
	case LayoutUnaligned:
		stride := p.blockSize + p.metaLen
		return []rados.Op{{Kind: rados.OpRead, Off: startBlock * stride, Len: nb * stride, Dst: raw}, stat}
	case LayoutObjectEnd:
		return []rados.Op{
			{Kind: rados.OpRead, Off: p.objectSize + startBlock*p.metaLen, Len: nb * p.metaLen, Dst: metas},
			stat,
		}
	case LayoutOMAP:
		return []rados.Op{
			{Kind: rados.OpOmapGetRange, Key: omapIVKey(startBlock), Key2: omapIVKey(startBlock + nb)},
			stat,
		}
	}
	panic("core: unknown layout")
}

// parseProbe decodes a probeOps result into per-block presence (and,
// when epochs is non-nil, key-epoch tags), applying exactly the presence
// rules of parseReadInto. metas is nb*metaLen scratch for the layouts
// that carry metadata (it receives the decoded slots).
func (p *planner) parseProbe(startBlock, nb int64, res []rados.Result, metas, present, epochs []byte) error {
	clear(present[:nb])
	if epochs != nil {
		clear(epochs[:nb*epochLen])
	}
	st := res[1]
	if st.Status == rados.StatusNotFound {
		return nil // object absent: every block a hole
	}
	if err := st.Status.Err(); err != nil {
		return err
	}
	size := st.Size

	copyEpochTails := func() {
		if epochs == nil || !p.epochTagged {
			return
		}
		for b := int64(0); b < nb; b++ {
			if present[b] != 0 {
				copy(epochs[b*epochLen:(b+1)*epochLen], metas[(b+1)*p.metaLen-epochLen:(b+1)*p.metaLen])
			}
		}
	}

	switch p.layout {
	case LayoutNone:
		if res[0].Status == rados.StatusOK {
			a, err := decodeObjAlloc(res[0].Data, p.objBlocks())
			if err != nil {
				return err
			}
			for b := int64(0); b < nb; b++ {
				if a.present(startBlock + b) {
					present[b] = 1
					if epochs != nil {
						binary.LittleEndian.PutUint32(epochs[b*epochLen:], a.epoch(startBlock+b))
					}
				}
			}
			return nil
		}
		// Pre-sidecar object: logical-size heuristic, implicit epoch 0.
		for b := int64(0); b < nb; b++ {
			present[b] = boolByte((startBlock+b+1)*p.blockSize <= size)
		}
		return nil

	case LayoutUnaligned:
		if res[0].Status == rados.StatusNotFound {
			return nil
		}
		if err := res[0].Status.Err(); err != nil {
			return err
		}
		clear(metas[:nb*p.metaLen])
		stride := p.blockSize + p.metaLen
		data := res[0].Data
		for b := int64(0); b < nb; b++ {
			if (b+1)*stride <= int64(len(data)) {
				copy(metas[b*p.metaLen:(b+1)*p.metaLen], data[b*stride+p.blockSize:(b+1)*stride])
			}
			present[b] = boolByte((startBlock+b+1)*stride <= size &&
				(p.metaLen == 0 || !allZero(metas[b*p.metaLen:(b+1)*p.metaLen])))
		}
		copyEpochTails()
		return nil

	case LayoutObjectEnd:
		if res[0].Status == rados.StatusNotFound {
			return nil
		}
		if err := res[0].Status.Err(); err != nil {
			return err
		}
		fillFrom(metas[:nb*p.metaLen], res[0].Data)
		for b := int64(0); b < nb; b++ {
			present[b] = boolByte(p.objectSize+(startBlock+b+1)*p.metaLen <= size &&
				!allZero(metas[b*p.metaLen:(b+1)*p.metaLen]))
		}
		copyEpochTails()
		return nil

	case LayoutOMAP:
		if res[0].Status == rados.StatusNotFound {
			return nil
		}
		if err := res[0].Status.Err(); err != nil {
			return err
		}
		clear(metas[:nb*p.metaLen])
		for _, pair := range res[0].Pairs {
			if len(pair.Key) != omapKeyLen || !bytes.HasPrefix(pair.Key, []byte(omapIVPrefix)) {
				continue
			}
			block := int64(binary.BigEndian.Uint64(pair.Key[len(omapIVPrefix):]))
			if block < startBlock || block >= startBlock+nb {
				continue
			}
			copy(metas[(block-startBlock)*p.metaLen:], pair.Value)
			present[block-startBlock] = 1
		}
		copyEpochTails()
		return nil
	}
	panic("core: unknown layout")
}

// discardOps builds the crypto-erase op vector for blocks
// [startBlock, startBlock+nb): the ciphertext region is overwritten with
// zeros and the per-block metadata punched (zeroed in place, or the OMAP
// keys deleted), so every presence rule reports a hole afterwards and no
// retained key can recover the data. Returned buffers come from the
// scratch pool; callers release() once every Operate has returned.
// LayoutNone relies on the allocation sidecar for presence — the caller
// appends the updated sidecar attribute to the same transaction.
func (p *planner) discardOps(startBlock, nb int64) (ops []rados.Op, release func()) {
	var bufs [][]byte
	zero := func(n int64) []byte {
		b := getZeroBuf(int(n))
		bufs = append(bufs, b)
		return b
	}
	release = func() {
		for _, b := range bufs {
			putBuf(b)
		}
	}
	switch p.layout {
	case LayoutNone:
		ops = []rados.Op{{Kind: rados.OpWrite, Off: startBlock * p.blockSize, Data: zero(nb * p.blockSize)}}
	case LayoutUnaligned:
		stride := p.blockSize + p.metaLen
		ops = []rados.Op{{Kind: rados.OpWrite, Off: startBlock * stride, Data: zero(nb * stride)}}
	case LayoutObjectEnd:
		ops = []rados.Op{
			{Kind: rados.OpWrite, Off: startBlock * p.blockSize, Data: zero(nb * p.blockSize)},
			{Kind: rados.OpWrite, Off: p.objectSize + startBlock*p.metaLen, Data: zero(nb * p.metaLen)},
		}
	case LayoutOMAP:
		pairs := make([]rados.Pair, nb)
		for b := int64(0); b < nb; b++ {
			pairs[b] = rados.Pair{Key: omapIVKey(startBlock + b)}
		}
		ops = []rados.Op{
			{Kind: rados.OpWrite, Off: startBlock * p.blockSize, Data: zero(nb * p.blockSize)},
			{Kind: rados.OpOmapDel, Pairs: pairs},
		}
	default:
		panic("core: unknown layout")
	}
	return ops, release
}

// SectorCount is the §3.3 analytic model: the minimum number of physical
// 4 KiB device sectors a single IO of ioBytes must touch under each
// layout (the paper's "4KB write needs 2 sectors vs 1; 32KB needs 9 vs 8"
// discussion). OMAP metadata does not consume data-path sectors — its
// cost is in the database — so its count matches the baseline.
func SectorCount(l Layout, ioBytes, blockSize, metaLen int64) int64 {
	if ioBytes <= 0 || blockSize <= 0 {
		return 0
	}
	nb := (ioBytes + blockSize - 1) / blockSize
	dataSectors := nb
	switch l {
	case LayoutNone, LayoutOMAP:
		return dataSectors
	case LayoutObjectEnd:
		// The batched IV region adds ceil(nb*metaLen / sector) sectors.
		return dataSectors + (nb*metaLen+blockSize-1)/blockSize
	case LayoutUnaligned:
		// The interleaved stream occupies ceil(nb*(block+meta)/sector)
		// sectors: §3.3's "a 4KB write needs 2 sectors" / "a 32KB IO
		// typically requires 9 sectors versus 8". (An IO that starts
		// mid-object can straddle one more boundary, but the paper's
		// counts — and this minimum — are for the aligned start.)
		span := nb * (blockSize + metaLen)
		return (span + blockSize - 1) / blockSize
	}
	return dataSectors
}
