package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rados"
)

// fakeStore executes a planner's ops against a flat in-memory object with
// an OMAP map — a model of one RADOS object for layout-only testing. It
// tracks the logical size the way the blobstore does (high-water mark of
// write ends), which parseRead uses as its presence signal.
type fakeStore struct {
	data []byte
	size int64
	omap map[string][]byte
}

func newFakeStore(capacity int64) *fakeStore {
	return &fakeStore{data: make([]byte, capacity), omap: map[string][]byte{}}
}

func (f *fakeStore) apply(ops []rados.Op) []rados.Result {
	out := make([]rados.Result, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case rados.OpWrite:
			copy(f.data[op.Off:], op.Data)
			if end := op.Off + int64(len(op.Data)); end > f.size {
				f.size = end
			}
			out[i] = rados.Result{Status: rados.StatusOK}
		case rados.OpOmapSet:
			for _, p := range op.Pairs {
				f.omap[string(p.Key)] = append([]byte(nil), p.Value...)
			}
			out[i] = rados.Result{Status: rados.StatusOK}
		case rados.OpRead:
			out[i] = rados.Result{Status: rados.StatusOK, Data: append([]byte(nil), f.data[op.Off:op.Off+op.Len]...)}
		case rados.OpStat:
			out[i] = rados.Result{Status: rados.StatusOK, Size: f.size}
		case rados.OpOmapGetRange:
			var pairs []rados.Pair
			for k, v := range f.omap {
				if k >= string(op.Key) && (len(op.Key2) == 0 || k < string(op.Key2)) {
					pairs = append(pairs, rados.Pair{Key: []byte(k), Value: v})
				}
			}
			out[i] = rados.Result{Status: rados.StatusOK, Pairs: pairs}
		default:
			out[i] = rados.Result{Status: rados.StatusInvalid}
		}
	}
	return out
}

// Property: for every layout, writeOps followed by readOps+parseRead
// recovers exactly the ciphertext and metadata that were written, for
// arbitrary block runs — the layout math is lossless and position-stable.
func TestPlannerRoundTripProperty(t *testing.T) {
	const objectSize = 1 << 20 // 256 blocks
	layouts := []struct {
		layout  Layout
		metaLen int64
	}{
		{LayoutNone, 0},
		{LayoutUnaligned, 16},
		{LayoutObjectEnd, 16},
		{LayoutOMAP, 16},
		{LayoutUnaligned, 28},
		{LayoutObjectEnd, 28},
		{LayoutOMAP, 28},
	}
	for _, lc := range layouts {
		p := &planner{layout: lc.layout, blockSize: 4096, metaLen: lc.metaLen, objectSize: objectSize}
		store := newFakeStore(objectSize + objectSize/4096*lc.metaLen + 4096)
		written := map[int64][2][]byte{} // block -> (cipher, meta)

		f := func(start16 uint8, n8 uint8, seed int64) bool {
			start := int64(start16) % 250
			nb := int64(n8)%6 + 1
			if start+nb > 256 {
				nb = 256 - start
			}
			rng := rand.New(rand.NewSource(seed))
			cipher := make([]byte, nb*4096)
			rng.Read(cipher)
			metas := make([]byte, nb*lc.metaLen)
			rng.Read(metas)

			store.apply(p.writeOps(start, cipher, metas))
			for b := int64(0); b < nb; b++ {
				written[start+b] = [2][]byte{
					append([]byte(nil), cipher[b*4096:(b+1)*4096]...),
					append([]byte(nil), metas[b*lc.metaLen:(b+1)*lc.metaLen]...),
				}
			}

			// Read back a window that includes the write plus neighbors.
			rs := start - 2
			if rs < 0 {
				rs = 0
			}
			rn := nb + 4
			if rs+rn > 256 {
				rn = 256 - rs
			}
			res := store.apply(p.readOps(rs, rn))
			gotCipher, gotMeta, present, err := p.parseRead(rs, rn, res)
			if err != nil {
				return false
			}
			for b := int64(0); b < rn; b++ {
				w, ok := written[rs+b]
				if !ok {
					continue // never written: content unspecified (zeros)
				}
				if !present[b] {
					return false // a written block must read as present
				}
				if !bytes.Equal(gotCipher[b*4096:(b+1)*4096], w[0]) {
					return false
				}
				if !bytes.Equal(gotMeta[b*lc.metaLen:(b+1)*lc.metaLen], w[1]) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
			t.Fatalf("layout %v meta %d: %v", lc.layout, lc.metaLen, err)
		}
	}
}

// Property: SectorCount is monotone in IO size and never below baseline.
func TestSectorCountMonotoneProperty(t *testing.T) {
	f := func(kb16 uint16) bool {
		io := (int64(kb16)%4096 + 1) << 10
		base := SectorCount(LayoutNone, io, 4096, 16)
		for _, l := range []Layout{LayoutUnaligned, LayoutObjectEnd, LayoutOMAP} {
			c := SectorCount(l, io, 4096, 16)
			if c < base {
				return false
			}
			// Monotone: a larger IO never touches fewer sectors.
			if SectorCount(l, io+4096, 4096, 16) < c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSectorCountPaperFigures pins the §3.3 in-text numbers for every
// layout: "in a 4KB write/read, a minimum of two physical disk sectors
// need to be accessed (one for the data and one for the IV) versus one in
// the baseline", and "a 32KB IO typically requires 9 sectors to be
// accessed versus 8". The unaligned layout used to double-count the
// stride-boundary sector (3 and 10); these pins guard the fix.
func TestSectorCountPaperFigures(t *testing.T) {
	cases := []struct {
		layout Layout
		ioKB   int64
		want   int64
	}{
		{LayoutNone, 4, 1},
		{LayoutNone, 32, 8},
		{LayoutUnaligned, 4, 2},
		{LayoutUnaligned, 32, 9},
		{LayoutObjectEnd, 4, 2},
		{LayoutObjectEnd, 32, 9},
		{LayoutOMAP, 4, 1},
		{LayoutOMAP, 32, 8},
	}
	for _, c := range cases {
		if got := SectorCount(c.layout, c.ioKB<<10, 4096, 16); got != c.want {
			t.Errorf("SectorCount(%v, %dK) = %d, want %d", c.layout, c.ioKB, got, c.want)
		}
	}
}

func TestOmapIVKeyOrdering(t *testing.T) {
	// Keys must sort numerically so range scans return contiguous blocks.
	prev := omapIVKey(0)
	for b := int64(1); b < 2000; b += 37 {
		k := omapIVKey(b)
		if bytes.Compare(prev, k) >= 0 {
			t.Fatalf("ordering broken at block %d", b)
		}
		prev = k
	}
}
