package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/luks"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/simdisk"
)

func testClient(t testing.TB) *rados.Client {
	t.Helper()
	cfg := rados.DefaultClusterConfig()
	cfg.OSDs = 3
	cfg.DisksPerOSD = 2
	cfg.DiskSectors = (768 << 20) / simdisk.SectorSize
	cfg.PGNum = 16
	cfg.Blob.ObjectCapacity = 1<<20 + 64<<10
	cfg.Blob.KVBytes = 64 << 20
	cfg.Blob.KV.MemtableBytes = 256 << 10
	cfg.Blob.KV.WALBytes = 4 << 20
	c, err := rados.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c.NewClient("core-test")
}

var imgCounter int

func newEncrypted(t testing.TB, scheme Scheme, layout Layout) *EncryptedImage {
	t.Helper()
	cl := testClient(t)
	imgCounter++
	name := fmt.Sprintf("eimg%d", imgCounter)
	if _, err := rbd.CreateWithObjectSize(0, cl, "rbd", name, 8<<20, 1<<20); err != nil {
		t.Fatal(err)
	}
	img, _, err := rbd.Open(0, cl, "rbd", name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Format(0, img, []byte("s3cret"), Options{Scheme: scheme, Layout: layout}); err != nil {
		t.Fatal(err)
	}
	e, _, err := Load(0, img, []byte("s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// every scheme with each of its valid layouts
func allCombos() []struct {
	Scheme Scheme
	Layout Layout
} {
	return []struct {
		Scheme Scheme
		Layout Layout
	}{
		{SchemeLUKS2, LayoutNone},
		{SchemeEME2Det, LayoutNone},
		{SchemeXTSRand, LayoutUnaligned},
		{SchemeXTSRand, LayoutObjectEnd},
		{SchemeXTSRand, LayoutOMAP},
		{SchemeGCM, LayoutUnaligned},
		{SchemeGCM, LayoutObjectEnd},
		{SchemeGCM, LayoutOMAP},
		{SchemeEME2Rand, LayoutUnaligned},
		{SchemeEME2Rand, LayoutObjectEnd},
		{SchemeEME2Rand, LayoutOMAP},
	}
}

func TestRoundTripAllCombos(t *testing.T) {
	for _, combo := range allCombos() {
		t.Run(fmt.Sprintf("%v/%v", combo.Scheme, combo.Layout), func(t *testing.T) {
			e := newEncrypted(t, combo.Scheme, combo.Layout)
			data := make([]byte, 64<<10)
			rand.New(rand.NewSource(1)).Read(data)
			// Cross-object write (objects are 1 MiB here).
			if _, err := e.WriteAt(0, data, 1<<20-32<<10); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(data))
			if _, err := e.ReadAt(0, got, 1<<20-32<<10); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("round trip failed")
			}
		})
	}
}

func TestCiphertextActuallyEncrypted(t *testing.T) {
	e := newEncrypted(t, SchemeXTSRand, LayoutObjectEnd)
	plain := bytes.Repeat([]byte("TOPSECRET4096..."), 256)
	if _, err := e.WriteAt(0, plain, 0); err != nil {
		t.Fatal(err)
	}
	// Raw storage view (the attacker's view).
	res, _, err := e.Image().Operate(0, 0, 0, []rados.Op{{Kind: rados.OpRead, Off: 0, Len: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(res[0].Data, []byte("TOPSECRET")) {
		t.Fatal("plaintext visible at the storage layer")
	}
}

func TestWrongPassphrase(t *testing.T) {
	e := newEncrypted(t, SchemeLUKS2, LayoutNone)
	if _, _, err := Load(0, e.Image(), []byte("wrong")); !errors.Is(err, ErrPassphrase) {
		t.Fatalf("got %v", err)
	}
}

func TestLoadUnformatted(t *testing.T) {
	cl := testClient(t)
	if _, err := rbd.Create(0, cl, "rbd", "plain", 4<<20); err != nil {
		t.Fatal(err)
	}
	img, _, err := rbd.Open(0, cl, "rbd", "plain")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(0, img, []byte("x")); !errors.Is(err, ErrNotEncrypted) {
		t.Fatalf("got %v", err)
	}
}

func TestDoubleFormatRejected(t *testing.T) {
	e := newEncrypted(t, SchemeLUKS2, LayoutNone)
	if _, err := Format(0, e.Image(), []byte("p"), Options{}); err == nil {
		t.Fatal("double format accepted")
	}
}

func TestOptionValidation(t *testing.T) {
	cases := []Options{
		{Scheme: SchemeLUKS2, Layout: LayoutOMAP},        // no metadata to place
		{Scheme: SchemeXTSRand, Layout: LayoutNone},      // metadata needs a home
		{Scheme: SchemeGCM, Layout: LayoutNone},          // same
		{Scheme: SchemeEME2Det, Layout: LayoutObjectEnd}, // deterministic: no metadata
	}
	for i, o := range cases {
		if err := o.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, o)
		}
	}
}

func TestAlignmentEnforced(t *testing.T) {
	e := newEncrypted(t, SchemeLUKS2, LayoutNone)
	if _, err := e.WriteAt(0, make([]byte, 100), 0); !errors.Is(err, ErrAlignment) {
		t.Fatalf("got %v", err)
	}
	if _, err := e.ReadAt(0, make([]byte, 4096), 123); !errors.Is(err, ErrAlignment) {
		t.Fatalf("got %v", err)
	}
}

func TestHolesReadZero(t *testing.T) {
	for _, combo := range allCombos() {
		e := newEncrypted(t, combo.Scheme, combo.Layout)
		got := make([]byte, 8192)
		for i := range got {
			got[i] = 0xFF
		}
		if _, err := e.ReadAt(0, got, 2<<20); err != nil {
			t.Fatalf("%v/%v: %v", combo.Scheme, combo.Layout, err)
		}
		if !bytes.Equal(got, make([]byte, 8192)) {
			t.Fatalf("%v/%v: hole not zero", combo.Scheme, combo.Layout)
		}
	}
}

// cryptorAt fetches the live cryptor of one key epoch.
func cryptorAt(t *testing.T, e *EncryptedImage, epoch uint32) cryptor {
	t.Helper()
	c, err := e.ring.cryptorFor(epoch)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// rawBlock reads the stored ciphertext of image block b (attacker view).
func rawBlock(t *testing.T, e *EncryptedImage, block int64) []byte {
	t.Helper()
	bs := e.Options().BlockSize
	objBlocks := e.Image().ObjectSize() / bs
	objIdx := block / objBlocks
	startBlock := block % objBlocks
	res, _, err := e.Image().Operate(0, objIdx, 0, e.plan.readOps(startBlock, 1))
	if err != nil {
		t.Fatal(err)
	}
	cipher, _, _, err := e.plan.parseRead(startBlock, 1, res)
	if err != nil {
		t.Fatal(err)
	}
	return cipher
}

// The paper's §1 problem: with the deterministic baseline, overwriting a
// sector with modified data produces ciphertext that reveals WHICH
// sub-blocks changed; rewriting identical data is detectable.
func TestDeterministicBaselineLeaks(t *testing.T) {
	e := newEncrypted(t, SchemeLUKS2, LayoutNone)
	plain := make([]byte, 4096)
	for i := range plain {
		plain[i] = byte(i)
	}
	if _, err := e.WriteAt(0, plain, 0); err != nil {
		t.Fatal(err)
	}
	ct1 := rawBlock(t, e, 0)

	// Overwrite with identical data: identical ciphertext (leak #1).
	if _, err := e.WriteAt(0, plain, 0); err != nil {
		t.Fatal(err)
	}
	ct2 := rawBlock(t, e, 0)
	if !bytes.Equal(ct1, ct2) {
		t.Fatal("deterministic scheme should repeat ciphertext")
	}

	// Change one byte: only the containing 16-byte sub-block changes
	// (leak #2, the narrow-block property of §2.1).
	plain[1000] ^= 1
	if _, err := e.WriteAt(0, plain, 0); err != nil {
		t.Fatal(err)
	}
	ct3 := rawBlock(t, e, 0)
	changed := 0
	for sb := 0; sb < 256; sb++ {
		if !bytes.Equal(ct1[sb*16:(sb+1)*16], ct3[sb*16:(sb+1)*16]) {
			changed++
		}
	}
	if changed != 1 {
		t.Fatalf("expected exactly 1 changed sub-block, got %d", changed)
	}
}

// The paper's fix: with a random IV every overwrite produces fresh
// ciphertext, and an adversary cannot even tell whether the plaintext
// changed.
func TestRandomIVHidesOverwrites(t *testing.T) {
	for _, layout := range []Layout{LayoutUnaligned, LayoutObjectEnd, LayoutOMAP} {
		t.Run(layout.String(), func(t *testing.T) {
			e := newEncrypted(t, SchemeXTSRand, layout)
			plain := bytes.Repeat([]byte{0x77}, 4096)
			if _, err := e.WriteAt(0, plain, 0); err != nil {
				t.Fatal(err)
			}
			ct1 := rawBlock(t, e, 0)
			if _, err := e.WriteAt(0, plain, 0); err != nil {
				t.Fatal(err)
			}
			ct2 := rawBlock(t, e, 0)
			if bytes.Equal(ct1, ct2) {
				t.Fatal("identical overwrite should produce fresh ciphertext")
			}
			// And every sub-block changes, not just one.
			changed := 0
			for sb := 0; sb < 256; sb++ {
				if !bytes.Equal(ct1[sb*16:(sb+1)*16], ct2[sb*16:(sb+1)*16]) {
					changed++
				}
			}
			if changed < 250 {
				t.Fatalf("only %d/256 sub-blocks changed", changed)
			}
		})
	}
}

// EME2 deterministic: an exact overwrite is identifiable, but a one-bit
// change diffuses over the whole sector (§2.2's wide-block tradeoff).
func TestWideBlockDeterministicTradeoff(t *testing.T) {
	e := newEncrypted(t, SchemeEME2Det, LayoutNone)
	plain := make([]byte, 4096)
	if _, err := e.WriteAt(0, plain, 0); err != nil {
		t.Fatal(err)
	}
	ct1 := rawBlock(t, e, 0)
	plain[2000] ^= 1
	if _, err := e.WriteAt(0, plain, 0); err != nil {
		t.Fatal(err)
	}
	ct2 := rawBlock(t, e, 0)
	changed := 0
	for sb := 0; sb < 256; sb++ {
		if !bytes.Equal(ct1[sb*16:(sb+1)*16], ct2[sb*16:(sb+1)*16]) {
			changed++
		}
	}
	if changed != 256 {
		t.Fatalf("wide-block should change all sub-blocks, got %d", changed)
	}
}

// Replay protection (§2.2): moving ciphertext+IV to a different LBA must
// not decrypt to the original plaintext, because the block address is
// bound into the tweak.
func TestCrossLBAReplayFails(t *testing.T) {
	e := newEncrypted(t, SchemeXTSRand, LayoutObjectEnd)
	secret := bytes.Repeat([]byte{0xAB}, 4096)
	other := bytes.Repeat([]byte{0xCD}, 4096)
	if _, err := e.WriteAt(0, secret, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.WriteAt(0, other, 4096); err != nil {
		t.Fatal(err)
	}

	// Attacker at the OSD copies block 0's ciphertext AND its IV over
	// block 1's.
	bs := int64(4096)
	res, _, err := e.Image().Operate(0, 0, 0, e.plan.readOps(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	cipher0, meta0, _, err := e.plan.parseRead(0, 1, res)
	if err != nil {
		t.Fatal(err)
	}
	_ = bs
	ops := e.plan.writeOps(1, cipher0, meta0)
	if _, _, err := e.Image().Operate(0, 0, 0, ops); err != nil {
		t.Fatal(err)
	}

	got := make([]byte, 4096)
	if _, err := e.ReadAt(0, got, 4096); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, secret) {
		t.Fatal("replayed ciphertext decrypted to the original plaintext — replay protection missing")
	}
}

// With the authenticated scheme the same replay is *detected*, not just
// garbled.
func TestGCMReplayDetected(t *testing.T) {
	e := newEncrypted(t, SchemeGCM, LayoutObjectEnd)
	if _, err := e.WriteAt(0, bytes.Repeat([]byte{1}, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.WriteAt(0, bytes.Repeat([]byte{2}, 4096), 4096); err != nil {
		t.Fatal(err)
	}
	res, _, err := e.Image().Operate(0, 0, 0, e.plan.readOps(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	cipher0, meta0, _, err := e.plan.parseRead(0, 1, res)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Image().Operate(0, 0, 0, e.plan.writeOps(1, cipher0, meta0)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := e.ReadAt(0, got, 4096); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("replay should fail authentication, got %v", err)
	}
}

// Tampering with stored ciphertext is undetectable without a MAC but
// caught by SchemeGCM (§3.1's integrity extension).
func TestGCMTamperDetected(t *testing.T) {
	for _, layout := range []Layout{LayoutUnaligned, LayoutObjectEnd, LayoutOMAP} {
		t.Run(layout.String(), func(t *testing.T) {
			e := newEncrypted(t, SchemeGCM, layout)
			if _, err := e.WriteAt(0, bytes.Repeat([]byte{7}, 4096), 0); err != nil {
				t.Fatal(err)
			}
			// Flip one stored ciphertext bit at the OSD.
			res, _, err := e.Image().Operate(0, 0, 0, e.plan.readOps(0, 1))
			if err != nil {
				t.Fatal(err)
			}
			cipher, meta, _, err := e.plan.parseRead(0, 1, res)
			if err != nil {
				t.Fatal(err)
			}
			cipher[100] ^= 1
			if _, _, err := e.Image().Operate(0, 0, 0, e.plan.writeOps(0, cipher, meta)); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 4096)
			if _, err := e.ReadAt(0, got, 0); !errors.Is(err, ErrIntegrity) {
				t.Fatalf("tamper not detected: %v", err)
			}
		})
	}
}

// XTS without a MAC accepts spliced ciphertext silently — the attack GCM
// exists to stop (contrast with TestGCMTamperDetected).
func TestXTSTamperUndetected(t *testing.T) {
	e := newEncrypted(t, SchemeXTSRand, LayoutObjectEnd)
	if _, err := e.WriteAt(0, bytes.Repeat([]byte{7}, 4096), 0); err != nil {
		t.Fatal(err)
	}
	res, _, err := e.Image().Operate(0, 0, 0, e.plan.readOps(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	cipher, meta, _, err := e.plan.parseRead(0, 1, res)
	if err != nil {
		t.Fatal(err)
	}
	cipher[100] ^= 1
	if _, _, err := e.Image().Operate(0, 0, 0, e.plan.writeOps(0, cipher, meta)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := e.ReadAt(0, got, 0); err != nil {
		t.Fatalf("XTS cannot detect tampering, read should succeed: %v", err)
	}
	if bytes.Equal(got, bytes.Repeat([]byte{7}, 4096)) {
		t.Fatal("tampered ciphertext decrypted to original")
	}
}

// Snapshots: stored IVs must version with the data, or old snapshots
// would not decrypt.
func TestSnapshotsDecryptWithTheirIVs(t *testing.T) {
	for _, combo := range allCombos() {
		t.Run(fmt.Sprintf("%v/%v", combo.Scheme, combo.Layout), func(t *testing.T) {
			e := newEncrypted(t, combo.Scheme, combo.Layout)
			v1 := bytes.Repeat([]byte{1}, 8192)
			v2 := bytes.Repeat([]byte{2}, 8192)
			if _, err := e.WriteAt(0, v1, 0); err != nil {
				t.Fatal(err)
			}
			id, _, err := e.CreateSnap(0, "s1")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.WriteAt(0, v2, 0); err != nil {
				t.Fatal(err)
			}
			head := make([]byte, 8192)
			if _, err := e.ReadAt(0, head, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(head, v2) {
				t.Fatal("head should see v2")
			}
			old := make([]byte, 8192)
			if _, err := e.ReadAtSnap(0, old, 0, id); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(old, v1) {
				t.Fatal("snapshot should decrypt to v1")
			}
		})
	}
}

// The snapshot-forensics motivation (§1): with deterministic IVs, equal
// sectors across snapshots yield equal ciphertext, so an attacker holding
// the storage can diff versions. Random IVs destroy that signal.
func TestSnapshotForensics(t *testing.T) {
	// Deterministic: same plaintext in snap and head => same ciphertext.
	det := newEncrypted(t, SchemeLUKS2, LayoutNone)
	plain := bytes.Repeat([]byte{0x42}, 4096)
	if _, err := det.WriteAt(0, plain, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := det.CreateSnap(0, "s"); err != nil {
		t.Fatal(err)
	}
	if _, err := det.WriteAt(0, plain, 0); err != nil { // unchanged content
		t.Fatal(err)
	}
	headCT := rawBlock(t, det, 0)
	snapCT := rawSnapBlock(t, det, 0, 1)
	if !bytes.Equal(headCT, snapCT) {
		t.Fatal("deterministic snapshots should expose equality")
	}

	// Random IV: same plaintext => unlinkable ciphertext versions.
	rnd := newEncrypted(t, SchemeXTSRand, LayoutObjectEnd)
	if _, err := rnd.WriteAt(0, plain, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rnd.CreateSnap(0, "s"); err != nil {
		t.Fatal(err)
	}
	if _, err := rnd.WriteAt(0, plain, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(rawBlock(t, rnd, 0), rawSnapBlock(t, rnd, 0, 1)) {
		t.Fatal("random IV should make versions unlinkable")
	}
}

func rawSnapBlock(t *testing.T, e *EncryptedImage, block int64, snapID uint64) []byte {
	t.Helper()
	bs := e.Options().BlockSize
	objBlocks := e.Image().ObjectSize() / bs
	res, _, err := e.Image().Operate(0, block/objBlocks, snapID, e.plan.readOps(block%objBlocks, 1))
	if err != nil {
		t.Fatal(err)
	}
	cipher, _, _, err := e.plan.parseRead(block%objBlocks, 1, res)
	if err != nil {
		t.Fatal(err)
	}
	return cipher
}

// §3.3's in-text sector-count analysis.
func TestSectorCountModel(t *testing.T) {
	// "in a 4KB write/read, a minimum of two physical disk sectors need
	// to be accessed (one for the data and one for the IV) versus one in
	// the baseline"
	if got := SectorCount(LayoutNone, 4096, 4096, 16); got != 1 {
		t.Fatalf("baseline 4K = %d", got)
	}
	if got := SectorCount(LayoutObjectEnd, 4096, 4096, 16); got != 2 {
		t.Fatalf("object-end 4K = %d", got)
	}
	// "a 32KB IO typically requires 9 sectors to be accessed versus 8"
	if got := SectorCount(LayoutNone, 32<<10, 4096, 16); got != 8 {
		t.Fatalf("baseline 32K = %d", got)
	}
	if got := SectorCount(LayoutObjectEnd, 32<<10, 4096, 16); got != 9 {
		t.Fatalf("object-end 32K = %d", got)
	}
	// OMAP adds no data-path sectors.
	if got := SectorCount(LayoutOMAP, 32<<10, 4096, 16); got != 8 {
		t.Fatalf("omap 32K = %d", got)
	}
	// Unaligned touches at least as many sectors as object-end.
	if SectorCount(LayoutUnaligned, 32<<10, 4096, 16) < 9 {
		t.Fatal("unaligned should touch at least the object-end count")
	}
	if SectorCount(LayoutNone, 0, 4096, 16) != 0 {
		t.Fatal("zero IO")
	}
}

// TestZeroCiphertextNotAHole is the regression for the old sparse-read
// heuristic, which sniffed all-zero ciphertext (plus all-zero metadata)
// as a hole. A block whose plaintext is Decrypt(zeros) legitimately
// stores all-zero ciphertext; it must read back as that plaintext, not
// as zeros. Presence now comes from the read results (object existence,
// logical size, OMAP keys), so this round-trips.
func TestZeroCiphertextNotAHole(t *testing.T) {
	// Deterministic, metadata-free schemes: the exact case the old
	// heuristic was guaranteed to get wrong (meta is empty, so the check
	// reduced to allZero(ciphertext)).
	for _, scheme := range []Scheme{SchemeLUKS2, SchemeEME2Det} {
		t.Run(scheme.String(), func(t *testing.T) {
			e := newEncrypted(t, scheme, LayoutNone)
			// plain = Decrypt(zeros) at block 0, so Encrypt(plain) == zeros.
			plain := make([]byte, 4096)
			if err := cryptorAt(t, e, 0).open(plain, make([]byte, 4096), 0, nil); err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(plain, make([]byte, 4096)) {
				t.Fatal("Decrypt(0) should not be zeros for a sane cipher")
			}
			if _, err := e.WriteAt(0, plain, 0); err != nil {
				t.Fatal(err)
			}
			if ct := rawBlock(t, e, 0); !bytes.Equal(ct, make([]byte, 4096)) {
				t.Fatal("test premise broken: ciphertext not all zeros")
			}
			got := make([]byte, 4096)
			if _, err := e.ReadAt(0, got, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, plain) {
				t.Fatal("all-zero ciphertext misread as a hole")
			}
		})
	}

	// Random-IV scheme: plant all-zero ciphertext with a chosen IV at the
	// OSD (the layout keeps the IV, which marks the block present) and
	// check the block decrypts rather than reading as a hole.
	for _, layout := range []Layout{LayoutUnaligned, LayoutObjectEnd, LayoutOMAP} {
		t.Run("xts-rand/"+layout.String(), func(t *testing.T) {
			e := newEncrypted(t, SchemeXTSRand, layout)
			// Stored slot = scheme IV bytes + the epoch tag (epoch 0 here).
			meta := bytes.Repeat([]byte{0x5A}, e.MetaLen())
			for i := int(e.schemeMetaLen()); i < len(meta); i++ {
				meta[i] = 0
			}
			plain := make([]byte, 4096)
			if err := cryptorAt(t, e, 0).open(plain, make([]byte, 4096), 0, meta[:e.schemeMetaLen()]); err != nil {
				t.Fatal(err)
			}
			if _, _, err := e.Image().Operate(0, 0, 0, e.plan.writeOps(0, make([]byte, 4096), meta)); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 4096)
			if _, err := e.ReadAt(0, got, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, plain) {
				t.Fatal("zero ciphertext with a real IV misread as a hole")
			}
		})
	}
}

// TestLegacyContainerCompat simulates an image whose container predates
// the versioned-key table: metadata slots carry scheme bytes only (no
// epoch tag), reads must use that geometry, and re-keying is refused
// because the on-disk slots have no room for tags.
func TestLegacyContainerCompat(t *testing.T) {
	for _, combo := range allCombos() {
		t.Run(fmt.Sprintf("%v/%v", combo.Scheme, combo.Layout), func(t *testing.T) {
			e := newEncrypted(t, combo.Scheme, combo.Layout)
			// Strip the epoch table from the persisted descriptor.
			var desc format
			if err := json.Unmarshal(e.Image().EncryptionBlob(), &desc); err != nil {
				t.Fatal(err)
			}
			container, err := luks.Unmarshal(desc.LUKS)
			if err != nil {
				t.Fatal(err)
			}
			container.Epochs, container.WrapSalt, container.Current = nil, nil, 0
			if desc.LUKS, err = container.Marshal(); err != nil {
				t.Fatal(err)
			}
			blob, err := json.Marshal(desc)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.Image().SetEncryptionBlob(0, blob); err != nil {
				t.Fatal(err)
			}

			legacy, _, err := Load(0, e.Image(), []byte("s3cret"))
			if err != nil {
				t.Fatal(err)
			}
			if sml := legacy.schemeMetaLen(); int64(legacy.MetaLen()) != sml {
				t.Fatalf("legacy stored meta %d, scheme meta %d", legacy.MetaLen(), sml)
			}
			data := make([]byte, 16<<10)
			rand.New(rand.NewSource(4)).Read(data)
			if _, err := legacy.WriteAt(0, data, 0); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(data))
			// Same handle and a cold reload both read the legacy geometry.
			for _, h := range []*EncryptedImage{legacy, mustLoad(t, e.Image())} {
				if _, err := h.ReadAt(0, got, 0); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, data) {
					t.Fatal("legacy round trip failed")
				}
			}
			_, _, err = legacy.BeginEpoch(0)
			if legacy.schemeMetaLen() > 0 {
				if err == nil {
					t.Fatal("re-key accepted on a legacy metadata-layout image")
				}
			} else if err != nil {
				// Metadata-free schemes keep epochs in the sidecar — a
				// legacy container can start re-keying.
				t.Fatal(err)
			}
		})
	}
}

// TestPreSidecarObjectNotMasked: an object holding data written without
// an allocation sidecar (a pre-sidecar build — simulated here by
// writing sealed bytes through the raw writeOps path) must keep that
// data visible after the first tracked write seeds the sidecar from the
// logical size, and Discard must punch it for real.
func TestPreSidecarObjectNotMasked(t *testing.T) {
	for _, scheme := range []Scheme{SchemeLUKS2, SchemeEME2Det} {
		t.Run(scheme.String(), func(t *testing.T) {
			e := newEncrypted(t, scheme, LayoutNone)
			old := bytes.Repeat([]byte{0x3C}, 4096)
			cipher := make([]byte, 4096)
			if err := cryptorAt(t, e, 0).seal(cipher, old, 0, nil); err != nil {
				t.Fatal(err)
			}
			// Raw write: data lands, no sidecar — the pre-sidecar world.
			if _, _, err := e.Image().Operate(0, 0, 0, e.plan.writeOps(0, cipher, nil)); err != nil {
				t.Fatal(err)
			}
			// First tracked write to the same object (block 1).
			fresh := bytes.Repeat([]byte{0x77}, 4096)
			if _, err := e.WriteAt(0, fresh, 4096); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 8192)
			if _, err := e.ReadAt(0, got, 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got[:4096], old) {
				t.Fatal("pre-sidecar block masked as a hole by the seeded sidecar")
			}
			if !bytes.Equal(got[4096:], fresh) {
				t.Fatal("tracked write lost")
			}
			// And Discard of the pre-sidecar block actually erases it.
			if _, err := e.Discard(0, 0, 4096); err != nil {
				t.Fatal(err)
			}
			if _, err := e.ReadAt(0, got[:4096], 0); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got[:4096], make([]byte, 4096)) {
				t.Fatal("discarded pre-sidecar block still readable")
			}
			if ct := rawBlock(t, e, 0); !allZero(ct) {
				t.Fatal("ciphertext of discarded pre-sidecar block survives")
			}
		})
	}
}

func mustLoad(t *testing.T, img *rbd.Image) *EncryptedImage {
	t.Helper()
	e, _, err := Load(0, img, []byte("s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestParseHelpers(t *testing.T) {
	for _, s := range []Scheme{SchemeLUKS2, SchemeXTSRand, SchemeGCM, SchemeEME2Det, SchemeEME2Rand} {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Fatalf("scheme %v: %v", s, err)
		}
	}
	for _, l := range []Layout{LayoutNone, LayoutUnaligned, LayoutObjectEnd, LayoutOMAP} {
		got, err := ParseLayout(l.String())
		if err != nil || got != l {
			t.Fatalf("layout %v: %v", l, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Fatal("bogus scheme accepted")
	}
	if _, err := ParseLayout("bogus"); err == nil {
		t.Fatal("bogus layout accepted")
	}
}

// Randomized model test over a random combo each run (seeded). The model
// tracks which blocks were written: written blocks must read back
// exactly; never-written blocks must read as zeros when the scheme
// stores per-block metadata (exact hole detection via IV presence),
// while metadata-free schemes only guarantee zeros for blocks beyond the
// object's logical size — an interior never-written block decrypts to
// deterministic garbage, as with dm-crypt, so its content is unchecked.
func TestRandomizedEncryptedModel(t *testing.T) {
	combos := allCombos()
	for _, combo := range []int{1, 3, 4, 6} { // eme-det, xts/objend, xts/omap, gcm/objend
		c := combos[combo]
		t.Run(fmt.Sprintf("%v-%v", c.Scheme, c.Layout), func(t *testing.T) {
			e := newEncrypted(t, c.Scheme, c.Layout)
			const size = 4 << 20
			model := make([]byte, size)
			written := make([]bool, size/4096)
			exactHoles := e.MetaLen() > 0
			rng := rand.New(rand.NewSource(5))
			for step := 0; step < 60; step++ {
				blocks := int64(rng.Intn(32) + 1)
				off := rng.Int63n(size/4096-blocks+1) * 4096
				n := blocks * 4096
				if rng.Intn(2) == 0 {
					data := make([]byte, n)
					rng.Read(data)
					if _, err := e.WriteAt(0, data, off); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					copy(model[off:], data)
					for b := int64(0); b < blocks; b++ {
						written[off/4096+b] = true
					}
				} else {
					got := make([]byte, n)
					if _, err := e.ReadAt(0, got, off); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					for b := int64(0); b < blocks; b++ {
						blk := off/4096 + b
						if !written[blk] && !exactHoles {
							continue // unspecified: dm-crypt hole semantics
						}
						lo, hi := blk*4096, (blk+1)*4096
						if !bytes.Equal(got[lo-off:hi-off], model[lo:hi]) {
							t.Fatalf("step %d: block %d mismatch (written=%v)", step, blk, written[blk])
						}
					}
				}
			}
		})
	}
}
