package core

// chaos_test.go: the fault-matrix acceptance harness. Every scheme ×
// layout pair runs a faulted read/write workload through fio.Verifier,
// which holds the encryption layer to the chaos contract: every read
// returns correct plaintext or a loud error — never silent garbage.
//
// Fault selection is deliberate. Network faults (dropped, delayed and
// duplicated replies, connection resets, an OSD crash window) are
// atomic per op — a request either fully executed or never ran — so
// every manifestation is classifiable under any goroutine interleaving
// and the matrix runs them for all schemes. Ciphertext rot is planted
// deterministically from the same fault plan (on the primary copy only,
// after the faulted phase) and only for SchemeGCM: authenticated
// metadata is exactly what turns rot into a loud error, and the paper's
// length-preserving schemes decrypt rot to plausible garbage by design
// — their leg of the matrix is network-only. Disk-level media faults
// are exercised in the simdisk isolation tests instead, where the blast
// radius doesn't include the simulated OSD's own (checksum-free)
// metadata.
//
// Every failure message ends with the fault-plan seed and a one-line
// reproducer, so a red CI run is replayable locally.

import (
	"errors"
	"flag"
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/fio"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/simdisk"
	"repro/internal/vtime"
)

var chaosSeed = flag.Int64("chaos.seed", 1, "fault-plan seed for the chaos matrix")

const (
	chaosImgSize = 8 << 20
	chaosObjSize = 1 << 20
	chaosSpan    = 4 << 20
	chaosBS      = int64(4096)
)

// chaosFatalf fails the subtest with the seed and a reproducer line
// appended — a red chaos run must be replayable from the log alone.
func chaosFatalf(t *testing.T, format string, args ...any) {
	t.Helper()
	t.Fatalf("%s\nfault-plan seed %d; reproduce with: go test ./internal/core -run 'TestChaosMatrix/%s' -chaos.seed=%d",
		fmt.Sprintf(format, args...), *chaosSeed, t.Name()[len("TestChaosMatrix/"):], *chaosSeed)
}

// chaosCluster builds a cluster whose sector cache is too small to hold
// the working set, so the read path reaches the simulated disks instead
// of being absorbed by the OSD page-cache stand-in.
func chaosCluster(t *testing.T) *rados.Cluster {
	t.Helper()
	cfg := rados.DefaultClusterConfig()
	cfg.OSDs = 3
	cfg.DisksPerOSD = 2
	cfg.DiskSectors = (768 << 20) / simdisk.SectorSize
	cfg.PGNum = 16
	cfg.Blob.ObjectCapacity = 1<<20 + 64<<10
	cfg.Blob.KVBytes = 64 << 20
	cfg.Blob.KV.MemtableBytes = 256 << 10
	cfg.Blob.KV.WALBytes = 4 << 20
	cfg.Blob.CacheSectors = 64
	c, err := rados.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

var chaosImgCounter int

func newChaosImage(t *testing.T, cl *rados.Client, scheme Scheme, layout Layout) *EncryptedImage {
	t.Helper()
	chaosImgCounter++
	name := fmt.Sprintf("chimg%d", chaosImgCounter)
	if _, err := rbd.CreateWithObjectSize(0, cl, "rbd", name, chaosImgSize, chaosObjSize); err != nil {
		t.Fatal(err)
	}
	img, _, err := rbd.Open(0, cl, "rbd", name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Format(0, img, []byte("s3cret"), Options{Scheme: scheme, Layout: layout}); err != nil {
		t.Fatal(err)
	}
	e, _, err := Load(0, img, []byte("s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// chaosPlan is the shared network-fault mix: per-reply drop/delay/dup,
// connection resets, and a 4ms full-cluster crash window that faulted
// workloads run straight through.
func chaosPlan() *fault.Plan {
	return fault.NewPlan(*chaosSeed, fault.Config{
		Prob: map[fault.Kind]float64{
			fault.DropReply:  0.02,
			fault.DelayReply: 0.03,
			fault.DupReply:   0.02,
			fault.ConnReset:  0.01,
		},
		Down: []fault.Window{{From: vtime.Time(5e6), To: vtime.Time(9e6)}},
	})
}

// readBack sequentially reads the whole preconditioned span through the
// verifier (32 × 128 KiB ops at queue depth 1 — fully deterministic).
func readBack(t *testing.T, v *fio.Verifier) {
	t.Helper()
	spec := fio.Spec{Pattern: fio.SeqRead, BlockSize: 128 << 10, QueueDepth: 1,
		Span: chaosSpan, TotalOps: chaosSpan / (128 << 10), Seed: 1}
	if _, err := fio.Run(spec, v, 0); err != nil {
		chaosFatalf(t, "read-back aborted: %v", err)
	}
}

func TestChaosMatrix(t *testing.T) {
	for _, combo := range allCombos() {
		t.Run(fmt.Sprintf("%v-%v", combo.Scheme, combo.Layout), func(t *testing.T) {
			cluster := chaosCluster(t)
			e := newChaosImage(t, cluster.NewClient("chaos-test"), combo.Scheme, combo.Layout)

			v := fio.NewVerifier(e, chaosBS)
			v.Tolerate = func(err error) bool { return errors.Is(err, fault.ErrInjected) }
			// Rot in the ciphertext fails the GCM tag (ErrIntegrity); rot that
			// lands on a block's stored epoch tag instead resolves to a dead
			// epoch (ErrKeyErased). Both are loud detection of damage.
			v.Loud = func(err error) bool {
				return errors.Is(err, ErrIntegrity) || errors.Is(err, ErrKeyErased)
			}

			// Phase 1: faultless precondition, so every span block holds a
			// known stamped plaintext.
			if _, err := fio.Precondition(v, chaosSpan, chaosBS, 0); err != nil {
				t.Fatal(err)
			}

			// Phase 2: arm the plan and run writes then reads through the
			// fault mix. Injected failures are absorbed by the verifier; any
			// other error aborts loudly.
			plan := chaosPlan()
			cluster.ArmFaults(plan)
			for _, pat := range []fio.Pattern{fio.RandWrite, fio.RandRead} {
				spec := fio.Spec{Pattern: pat, BlockSize: chaosBS, QueueDepth: 4,
					Span: chaosSpan, TotalOps: 400, Seed: *chaosSeed | 1}
				if _, err := fio.Run(spec, v, 0); err != nil {
					chaosFatalf(t, "%v under faults aborted: %v", pat, err)
				}
			}
			cluster.ArmFaults(nil)

			// Phase 3: for the authenticated scheme, plant ciphertext rot on
			// the primary copy of two distinct span blocks, positions drawn
			// from the plan so the damage is seed-replayable.
			plants := 0
			if combo.Scheme == SchemeGCM {
				in := plan.Injector("chaos/rot")
				type spot struct{ obj, blk int64 }
				seen := map[spot]bool{}
				for plants < 2 {
					s := spot{int64(in.Intn(chaosSpan / chaosObjSize)), int64(in.Intn(int(chaosObjSize / chaosBS)))}
					if seen[s] {
						continue
					}
					seen[s] = true
					plantGarbage(t, e, e.Image().Replicas(s.obj)[0], s.obj, s.blk)
					plants++
				}
			}

			// Phase 4: full read-back. The one inviolable number is zero
			// silent garbage; planted rot must surface as loud errors.
			readBack(t, v)
			s := v.Stats()
			t.Logf("after faulted phase: %v", s)
			if s.GarbageBlocks != 0 {
				chaosFatalf(t, "silent garbage: %d blocks read back wrong data without an error (%v)", s.GarbageBlocks, s)
			}
			if s.InjectedErrors == 0 {
				chaosFatalf(t, "fault plan never fired (%v); the chaos leg tested nothing", s)
			}
			if plants > 0 && s.LoudErrors == 0 {
				chaosFatalf(t, "planted ciphertext rot was read back silently (%v)", s)
			}

			// Phase 5 (authenticated scheme): a scrub pass finds the planted
			// rot and repairs it from replicas; afterwards the same read-back
			// is loud-free and garbage-free. Scrub itself lives in
			// internal/scrub (import cycle keeps it out of this package), so
			// the walk here is the core primitive it drives.
			if plants > 0 {
				found, repaired := 0, 0
				for obj := int64(0); obj < e.ObjectCount(); obj++ {
					_, bad, _, err := e.VerifyObject(0, obj)
					if err != nil {
						chaosFatalf(t, "scrub verify object %d: %v", obj, err)
					}
					if len(bad) == 0 {
						continue
					}
					found += len(bad)
					blocks := make([]int64, len(bad))
					for i, b := range bad {
						blocks[i] = b.Block
					}
					n, _, err := e.RepairObject(0, obj, blocks)
					if err != nil {
						chaosFatalf(t, "scrub repair object %d: %v", obj, err)
					}
					repaired += n
				}
				// A 4 KiB plant straddles two block strides on the unaligned
				// layout, so findings may exceed the plant count; every finding
				// must be repairable (replicas are intact).
				if found < plants || repaired != found {
					chaosFatalf(t, "scrub found=%d repaired=%d, want ≥%d found and all repaired", found, repaired, plants)
				}
				before := v.Stats()
				readBack(t, v)
				after := v.Stats()
				if after.GarbageBlocks != before.GarbageBlocks {
					chaosFatalf(t, "silent garbage after scrub repair (%v)", after)
				}
				if after.LoudErrors != before.LoudErrors {
					chaosFatalf(t, "reads still loud after scrub repair (%v)", after)
				}
			}
		})
	}
}
