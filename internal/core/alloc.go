package core

// alloc.go is the per-object allocation sidecar for the metadata-free
// schemes (luks2, eme2-det). Those schemes store no per-block bytes in
// the data path, so — exactly as the ROADMAP's sparse-read item and the
// paper's dm-crypt comparison observe — they cannot otherwise tell a
// written block from an interior hole, and they have nowhere to hang a
// key-epoch tag. The sidecar is a small object attribute (one KV entry,
// like OMAP metadata it consumes no data-path sectors) holding an
// allocation bitmap plus per-block epoch ids, written atomically in the
// same RADOS transaction as the data it describes. It restores exact
// sparse reads, powers crypto-erase Discard, and lets the rekey walker
// know each block's epoch.

import (
	"encoding/binary"
	"fmt"
)

// allocAttr is the object attribute carrying the sidecar.
const allocAttr = "core.alloc"

const (
	allocVersion     = 1
	allocFlagUniform = 1 << 0 // single epoch value covers every block
)

// objAlloc is the decoded sidecar: presence bit and epoch per block.
type objAlloc struct {
	nb     int64
	bits   []byte // ceil(nb/8), bit set = block written
	epochs []uint32
}

func newObjAlloc(nb int64) *objAlloc {
	return &objAlloc{nb: nb, bits: make([]byte, (nb+7)/8), epochs: make([]uint32, nb)}
}

func (a *objAlloc) present(b int64) bool { return a.bits[b/8]&(1<<(b%8)) != 0 }

func (a *objAlloc) set(b int64, epoch uint32) {
	a.bits[b/8] |= 1 << (b % 8)
	a.epochs[b] = epoch
}

func (a *objAlloc) clearBlock(b int64) {
	a.bits[b/8] &^= 1 << (b % 8)
	a.epochs[b] = 0
}

func (a *objAlloc) epoch(b int64) uint32 { return a.epochs[b] }

// anyPresent reports whether any block in [lo, hi) is allocated.
func (a *objAlloc) anyPresent(lo, hi int64) bool {
	for b := lo; b < hi; b++ {
		if a.present(b) {
			return true
		}
	}
	return false
}

// encode serializes the sidecar. When every block shares one epoch (the
// steady state outside a rekey transition) the epoch array collapses to
// a single value, so the attribute written with every metadata-free IO
// stays a few dozen bytes instead of 4 bytes per block.
func (a *objAlloc) encode() []byte {
	uniform := true
	var e0 uint32
	for b := int64(0); b < a.nb; b++ {
		if a.present(b) {
			e0 = a.epochs[b]
			break
		}
	}
	for b := int64(0); b < a.nb; b++ {
		if a.present(b) && a.epochs[b] != e0 {
			uniform = false
			break
		}
	}
	flags := byte(0)
	n := 2 + 4 + len(a.bits)
	if uniform {
		flags |= allocFlagUniform
		n += 4
	} else {
		n += 4 * int(a.nb)
	}
	out := make([]byte, 0, n)
	out = append(out, allocVersion, flags)
	out = binary.LittleEndian.AppendUint32(out, uint32(a.nb))
	out = append(out, a.bits...)
	if uniform {
		out = binary.LittleEndian.AppendUint32(out, e0)
	} else {
		for _, e := range a.epochs {
			out = binary.LittleEndian.AppendUint32(out, e)
		}
	}
	return out
}

// decodeObjAlloc parses a sidecar blob for an object of nb blocks.
func decodeObjAlloc(raw []byte, nb int64) (*objAlloc, error) {
	if len(raw) < 6 || raw[0] != allocVersion {
		return nil, fmt.Errorf("core: corrupt alloc sidecar (%d bytes)", len(raw))
	}
	flags := raw[1]
	if got := int64(binary.LittleEndian.Uint32(raw[2:6])); got != nb {
		return nil, fmt.Errorf("core: alloc sidecar covers %d blocks, object has %d", got, nb)
	}
	bl := int((nb + 7) / 8)
	body := raw[6:]
	if len(body) < bl {
		return nil, fmt.Errorf("core: truncated alloc bitmap")
	}
	a := newObjAlloc(nb)
	copy(a.bits, body[:bl])
	body = body[bl:]
	if flags&allocFlagUniform != 0 {
		if len(body) < 4 {
			return nil, fmt.Errorf("core: truncated alloc epoch")
		}
		e0 := binary.LittleEndian.Uint32(body)
		for b := int64(0); b < nb; b++ {
			if a.present(b) {
				a.epochs[b] = e0
			}
		}
		return a, nil
	}
	if len(body) < 4*int(nb) {
		return nil, fmt.Errorf("core: truncated alloc epoch array")
	}
	for b := int64(0); b < nb; b++ {
		a.epochs[b] = binary.LittleEndian.Uint32(body[4*b:])
	}
	return a, nil
}
