package core

// verify_test.go: the scrub primitives against planted corruption.
// Corruption is planted through rados.Client.OperateOn — a direct
// single-copy write that does not re-replicate — so damage can be
// aimed at exactly one replica, which is the scenario replica repair
// exists for.

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/rados"
)

// plantGarbage overwrites one block's ciphertext on a single OSD's
// copy of an object (LayoutObjectEnd/OMAP/None geometry: ciphertext at
// block*bs).
func plantGarbage(t *testing.T, e *EncryptedImage, osd int, objIdx, block int64) {
	t.Helper()
	bs := e.Options().BlockSize
	garbage := make([]byte, bs)
	for i := range garbage {
		garbage[i] = byte(0xA5 ^ i)
	}
	res, _, err := e.Image().OperateOn(0, osd, objIdx, 0,
		[]rados.Op{{Kind: rados.OpWrite, Off: block * bs, Data: garbage}})
	if err != nil {
		t.Fatalf("plant corruption on osd%d: %v", osd, err)
	}
	for _, r := range res {
		if err := r.Status.Err(); err != nil {
			t.Fatalf("plant corruption on osd%d: %v", osd, err)
		}
	}
}

func TestVerifyObjectClean(t *testing.T) {
	e := newEncrypted(t, SchemeGCM, LayoutObjectEnd)
	data := make([]byte, 4*4096)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if _, err := e.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	checked, bad, _, err := e.VerifyObject(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("clean object reported %d bad blocks: %v", len(bad), bad)
	}
	if checked != 4 {
		t.Fatalf("checked %d blocks, want 4", checked)
	}
}

func TestVerifyObjectDetectsCorruption(t *testing.T) {
	e := newEncrypted(t, SchemeGCM, LayoutObjectEnd)
	data := make([]byte, 8*4096)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if _, err := e.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	primary := e.Image().Replicas(0)[0]
	plantGarbage(t, e, primary, 0, 3)

	checked, bad, _, err := e.VerifyObject(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if checked != 8 {
		t.Fatalf("checked %d blocks, want 8", checked)
	}
	if len(bad) != 1 || bad[0].Block != 3 {
		t.Fatalf("bad blocks = %v, want exactly block 3", bad)
	}
	if !errors.Is(bad[0].Err, ErrIntegrity) {
		t.Fatalf("bad block error = %v, want ErrIntegrity", bad[0].Err)
	}
}

func TestRepairObjectFromReplica(t *testing.T) {
	e := newEncrypted(t, SchemeGCM, LayoutObjectEnd)
	data := make([]byte, 8*4096)
	for i := range data {
		data[i] = byte(i * 29)
	}
	if _, err := e.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	primary := e.Image().Replicas(0)[0]
	plantGarbage(t, e, primary, 0, 5)

	// The damaged primary copy fails the read path loudly...
	buf := make([]byte, len(data))
	if _, err := e.ReadAt(0, buf, 0); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("read of corrupted block: err = %v, want ErrIntegrity", err)
	}

	// ...until repair pulls the intact replica copy and re-seals it.
	n, _, err := e.RepairObject(0, 0, []int64{5})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("repaired %d blocks, want 1", n)
	}
	if _, err := e.ReadAt(0, buf, 0); err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("repaired data does not match the original plaintext")
	}
	// And the object verifies clean again.
	if _, bad, _, err := e.VerifyObject(0, 0); err != nil || len(bad) != 0 {
		t.Fatalf("post-repair verify: bad=%v err=%v", bad, err)
	}
}

func TestRepairObjectAllCopiesLost(t *testing.T) {
	e := newEncrypted(t, SchemeGCM, LayoutObjectEnd)
	data := make([]byte, 2*4096)
	if _, err := e.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	// Corrupt block 1 on every replica: nothing left to repair from.
	for _, osd := range e.Image().Replicas(0) {
		plantGarbage(t, e, osd, 0, 1)
	}
	n, _, err := e.RepairObject(0, 0, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("repaired %d blocks with no intact copy anywhere, want 0", n)
	}
	// Still loud on read — corrupt-but-detected beats silent garbage.
	buf := make([]byte, len(data))
	if _, err := e.ReadAt(0, buf, 0); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("read after failed repair: err = %v, want ErrIntegrity", err)
	}
}

// Unauthenticated schemes cannot detect ciphertext corruption — the
// paper's point, restated as a scrub property: verification is
// structural only, so the planted garbage goes unnoticed.
func TestVerifyObjectUnauthSchemeIsBlind(t *testing.T) {
	e := newEncrypted(t, SchemeXTSRand, LayoutObjectEnd)
	data := make([]byte, 4*4096)
	if _, err := e.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	primary := e.Image().Replicas(0)[0]
	plantGarbage(t, e, primary, 0, 2)
	_, bad, _, err := e.VerifyObject(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("xts-rand scrub reported %v; unauthenticated schemes cannot detect rot", bad)
	}
}
