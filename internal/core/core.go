// Package core implements the paper's contribution: client-side virtual
// disk encryption with per-sector metadata. Every 4 KiB encryption block
// can carry a stored IV (and, in the authenticated scheme, a MAC),
// placed in one of the three §3.1 layouts — Unaligned, Object end, or
// OMAP — and written atomically with its data using RADOS transactions.
//
// The public surface is EncryptedImage, which wraps an rbd.Image the way
// Ceph's libRBD crypto layer wraps plain image IO: Format seals a fresh
// master key behind a LUKS2-style passphrase container stored in the
// image header, Load unlocks it, and ReadAt/WriteAt run the chosen
// scheme+layout transparently.
package core

import (
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/luks"
	"repro/internal/rbd"
	"repro/internal/vtime"
)

// DefaultBlockSize is the encryption block size (LUKS2 4 KiB sectors,
// §2.4 footnote 4).
const DefaultBlockSize = 4096

var (
	// ErrAlignment reports IO not aligned to the encryption block size.
	ErrAlignment = errors.New("core: IO must be aligned to the encryption block size")
	// ErrPassphrase re-exports the LUKS unlock failure.
	ErrPassphrase = luks.ErrPassphrase
	// ErrNotEncrypted reports a Load on an image without a container.
	ErrNotEncrypted = errors.New("core: image is not encryption-formatted")
)

// Options selects the encryption construction for an image.
type Options struct {
	Scheme    Scheme
	Layout    Layout
	BlockSize int64
	// ClientCrypto models the client CPU cost of encryption in virtual
	// time (ns/byte); zero uses a default calibrated to AES-NI XTS.
	// Real CPU time is measured by the Go benchmarks directly.
	ClientCryptoNsPerByte float64
	// ClientCores is the real parallelism of the seal/open datapath: how
	// many blocks are ciphered concurrently on the worker pool. Defaults
	// to runtime.GOMAXPROCS(0); 1 forces the serial path.
	ClientCores int
	// ModelCores is the width of the *virtual-time* client crypto
	// resource (the simulated client of §3.2). It defaults to 8 so
	// simulated bandwidth stays machine-independent even though the real
	// datapath scales with the host.
	ModelCores int
}

func (o Options) withDefaults() Options {
	if o.BlockSize <= 0 {
		o.BlockSize = DefaultBlockSize
	}
	if o.ClientCryptoNsPerByte <= 0 {
		o.ClientCryptoNsPerByte = 0.4 // ≈2.5 GB/s per core
	}
	if o.ClientCores <= 0 {
		o.ClientCores = maxParallelism()
	}
	if o.ModelCores <= 0 {
		o.ModelCores = 8
	}
	return o
}

// Validate rejects incoherent combinations: schemes with metadata need a
// metadata layout, metadata-free schemes must use LayoutNone.
func (o Options) Validate() error {
	c, err := newCryptor(o.Scheme, make([]byte, 64))
	if err != nil {
		return err
	}
	if c.metaLen() == 0 && o.Layout != LayoutNone {
		return fmt.Errorf("core: scheme %v stores no metadata; use LayoutNone", o.Scheme)
	}
	if c.metaLen() > 0 && o.Layout == LayoutNone {
		return fmt.Errorf("core: scheme %v needs a metadata layout", o.Scheme)
	}
	if o.BlockSize > 0 && o.BlockSize%512 != 0 {
		return fmt.Errorf("core: block size %d not sector aligned", o.BlockSize)
	}
	return nil
}

// format is the persisted encryption descriptor (stored in the image
// header next to the LUKS container).
type format struct {
	Scheme    string          `json:"scheme"`
	Layout    string          `json:"layout"`
	BlockSize int64           `json:"block_size"`
	LUKS      json.RawMessage `json:"luks"`
}

// EncryptedImage is an encrypted view of an rbd image. All methods are
// safe for concurrent use.
type EncryptedImage struct {
	img     *rbd.Image
	opts    Options
	cryptor cryptor
	plan    planner
	cpu     *vtime.MultiResource
	workers int // datapath parallelism (ClientCores)
}

// Format initializes encryption on an image: generates a master key,
// seals it behind the passphrase, and persists the descriptor. The image
// must be empty (freshly created); existing plaintext is not converted.
func Format(at vtime.Time, img *rbd.Image, passphrase []byte, opts Options) (vtime.Time, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return at, err
	}
	if len(img.EncryptionBlob()) != 0 {
		return at, fmt.Errorf("core: image %q already encryption-formatted", img.Name())
	}
	if img.ObjectSize()%opts.BlockSize != 0 {
		return at, fmt.Errorf("core: object size %d not a multiple of block size %d", img.ObjectSize(), opts.BlockSize)
	}
	container, masterKey, err := luks.Format(passphrase, "aes-xts-plain64/"+opts.Scheme.String())
	if err != nil {
		return at, err
	}
	clear(masterKey) // the caller re-derives it via Load
	luksBlob, err := container.Marshal()
	if err != nil {
		return at, err
	}
	desc, err := json.Marshal(format{
		Scheme:    opts.Scheme.String(),
		Layout:    opts.Layout.String(),
		BlockSize: opts.BlockSize,
		LUKS:      luksBlob,
	})
	if err != nil {
		return at, err
	}
	return img.SetEncryptionBlob(at, desc)
}

// Load opens an encrypted image with a passphrase.
func Load(at vtime.Time, img *rbd.Image, passphrase []byte) (*EncryptedImage, vtime.Time, error) {
	blob := img.EncryptionBlob()
	if len(blob) == 0 {
		return nil, at, ErrNotEncrypted
	}
	var desc format
	if err := json.Unmarshal(blob, &desc); err != nil {
		return nil, at, fmt.Errorf("core: corrupt encryption descriptor: %v", err)
	}
	scheme, err := ParseScheme(desc.Scheme)
	if err != nil {
		return nil, at, err
	}
	lay, err := ParseLayout(desc.Layout)
	if err != nil {
		return nil, at, err
	}
	container, err := luks.Unmarshal(desc.LUKS)
	if err != nil {
		return nil, at, err
	}
	masterKey, err := container.Unlock(passphrase)
	if err != nil {
		return nil, at, err
	}
	opts := Options{Scheme: scheme, Layout: lay, BlockSize: desc.BlockSize}.withDefaults()
	c, err := newCryptor(scheme, masterKey)
	if err != nil {
		return nil, at, err
	}
	e := &EncryptedImage{
		img:     img,
		opts:    opts,
		cryptor: c,
		plan: planner{
			layout:     lay,
			blockSize:  opts.BlockSize,
			metaLen:    int64(c.metaLen()),
			objectSize: img.ObjectSize(),
		},
		cpu:     vtime.NewMultiResource(img.Name()+"/crypto", opts.ModelCores),
		workers: opts.ClientCores,
	}
	return e, at, nil
}

// SetParallelism overrides the real datapath parallelism (the number of
// blocks ciphered concurrently). n <= 1 forces the serial path; the
// virtual-time cost model is unaffected. It is a tuning knob for
// benchmarks and busy multi-image clients and must not be called
// concurrently with IO.
func (e *EncryptedImage) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	e.workers = n
}

// Image returns the underlying image.
func (e *EncryptedImage) Image() *rbd.Image { return e.img }

// Options returns the image's encryption options.
func (e *EncryptedImage) Options() Options { return e.opts }

// MetaLen returns the stored metadata bytes per encryption block.
func (e *EncryptedImage) MetaLen() int { return e.cryptor.metaLen() }

// Size returns the usable image size.
func (e *EncryptedImage) Size() int64 { return e.img.Size() }

// CreateSnap snapshots the underlying image.
func (e *EncryptedImage) CreateSnap(at vtime.Time, name string) (uint64, vtime.Time, error) {
	return e.img.CreateSnap(at, name)
}

func (e *EncryptedImage) checkAligned(p []byte, off int64) error {
	bs := e.opts.BlockSize
	if off%bs != 0 || int64(len(p))%bs != 0 {
		return fmt.Errorf("%w: off=%d len=%d block=%d", ErrAlignment, off, len(p), bs)
	}
	return nil
}

// chargeCrypto models the client-side cipher cost in virtual time.
func (e *EncryptedImage) chargeCrypto(at vtime.Time, n int64) vtime.Time {
	return e.cpu.Use(at, time.Duration(float64(n)*e.opts.ClientCryptoNsPerByte))
}

// WriteAt encrypts p and writes it (with per-block metadata under the
// image's layout) at off. The IO must be block-aligned, as with dm-crypt.
//
// The seal pipeline is zero-copy and parallel: each extent gets a
// layout-aware writePlan whose wire buffers are the very payloads the
// RADOS ops will carry, the cryptor seals every block directly into its
// wire destination, and the per-block work is fanned across the shared
// datapath worker pool (within and across extents).
func (e *EncryptedImage) WriteAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	if err := e.checkAligned(p, off); err != nil {
		return at, err
	}
	if len(p) == 0 {
		return at, nil
	}
	exts, err := e.img.Extents(off, int64(len(p)))
	if err != nil {
		return at, err
	}
	bs := e.opts.BlockSize

	plans := make([]*writePlan, len(exts))
	for i, ext := range exts {
		plans[i] = e.plan.newWritePlan(ext.ObjOff/bs, ext.Length/bs)
	}
	release := func() {
		for _, w := range plans {
			w.release()
		}
	}

	// One entropy draw per IO, scattered into the random prefix of every
	// block's metadata slot.
	if rl := e.cryptor.randLen(); rl > 0 {
		nbTotal := int64(len(p)) / bs
		rbuf := getBuf(int(nbTotal) * rl)
		if _, err := rand.Read(rbuf); err != nil {
			release()
			return at, err
		}
		g := 0
		for i := range exts {
			for b := int64(0); b < exts[i].Length/bs; b++ {
				copy(plans[i].metaDst(b)[:rl], rbuf[g*rl:])
				g++
			}
		}
		putBuf(rbuf)
	}

	err = forExtentBlocks(e.workers, exts, bs, func(ei int, b int64) error {
		ext := exts[ei]
		blockIdx := uint64((off+ext.BufOff)/bs + b)
		src := p[ext.BufOff+b*bs : ext.BufOff+(b+1)*bs]
		return e.cryptor.seal(plans[ei].cipherDst(b), src, blockIdx, plans[ei].metaDst(b))
	})
	if err != nil {
		release()
		return at, err
	}

	at = e.chargeCrypto(at, int64(len(p)))

	// Fan out per-object transactions. Operate marshals payloads before
	// returning, so the plans can be released once every call is back.
	type outcome struct {
		end vtime.Time
		err error
	}
	if len(plans) == 1 {
		res, end, err := e.img.Operate(at, exts[0].ObjIdx, 0, plans[0].ops())
		release()
		if err != nil {
			return at, err
		}
		for _, r := range res {
			if err := r.Status.Err(); err != nil {
				return at, err
			}
		}
		return end, nil
	}
	ch := make(chan outcome, len(plans))
	for i := range plans {
		go func(i int) {
			res, end, err := e.img.Operate(at, exts[i].ObjIdx, 0, plans[i].ops())
			if err == nil {
				for _, r := range res {
					if serr := r.Status.Err(); serr != nil {
						err = serr
						break
					}
				}
			}
			ch <- outcome{end: end, err: err}
		}(i)
	}
	end := at
	var firstErr error
	for range plans {
		o := <-ch
		if o.err != nil && firstErr == nil {
			firstErr = o.err
		}
		end = vtime.Max(end, o.end)
	}
	release()
	if firstErr != nil {
		return at, firstErr
	}
	return end, nil
}

// ReadAt reads and decrypts into p from off (image head).
func (e *EncryptedImage) ReadAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	return e.ReadAtSnap(at, p, off, 0)
}

// ReadAtSnap reads from a snapshot (0 = head). Stored IVs travel with
// snapshot clones, so old versions decrypt with their original IVs.
//
// The open pipeline mirrors WriteAt: per-object fetches fan out first
// (virtual-time concurrency), then every fetched block is opened in
// parallel on the shared datapath pool, decrypting straight into p.
// Block presence comes from the read results (object existence, logical
// size, OMAP keys — see parseReadInto), never from sniffing content, so
// a legitimately written all-zero-ciphertext block decrypts normally.
func (e *EncryptedImage) ReadAtSnap(at vtime.Time, p []byte, off int64, snapID uint64) (vtime.Time, error) {
	if err := e.checkAligned(p, off); err != nil {
		return at, err
	}
	if len(p) == 0 {
		return at, nil
	}
	exts, err := e.img.Extents(off, int64(len(p)))
	if err != nil {
		return at, err
	}
	bs := e.opts.BlockSize
	metaLen := int64(e.cryptor.metaLen())

	// Phase 1: fetch ciphertext+metadata for every extent into pooled
	// buffers, concurrently across objects.
	type extRead struct {
		cipher  []byte
		metas   []byte
		present []byte // 0/1 per block, pooled like the data buffers
	}
	bufs := make([]extRead, len(exts))
	release := func() {
		for i := range bufs {
			putBuf(bufs[i].cipher)
			putBuf(bufs[i].metas)
			putBuf(bufs[i].present)
		}
	}
	fetchOne := func(i int) (vtime.Time, error) {
		ext := exts[i]
		startBlock := ext.ObjOff / bs
		nb := ext.Length / bs
		res, end, err := e.img.Operate(at, ext.ObjIdx, snapID, e.plan.readOps(startBlock, nb))
		if err != nil {
			return at, err
		}
		bufs[i].cipher = getBuf(int(nb * bs))
		bufs[i].metas = getBuf(int(nb * metaLen))
		bufs[i].present = getBuf(int(nb))
		if err := e.plan.parseReadInto(startBlock, nb, res, bufs[i].cipher, bufs[i].metas, bufs[i].present); err != nil {
			return at, err
		}
		return end, nil
	}

	end := at
	if len(exts) == 1 {
		if end, err = fetchOne(0); err != nil {
			release()
			return at, err
		}
	} else {
		type outcome struct {
			end vtime.Time
			err error
		}
		ch := make(chan outcome, len(exts))
		for i := range exts {
			go func(i int) {
				e, err := fetchOne(i)
				ch <- outcome{end: e, err: err}
			}(i)
		}
		var firstErr error
		for range exts {
			o := <-ch
			if o.err != nil && firstErr == nil {
				firstErr = o.err
			}
			end = vtime.Max(end, o.end)
		}
		if firstErr != nil {
			release()
			return at, firstErr
		}
	}

	// Phase 2: open every block in parallel, straight into p.
	err = forExtentBlocks(e.workers, exts, bs, func(ei int, b int64) error {
		ext := exts[ei]
		dst := p[ext.BufOff+b*bs : ext.BufOff+(b+1)*bs]
		if bufs[ei].present[b] == 0 {
			// Hole: never written (sparse read).
			clear(dst)
			return nil
		}
		blockIdx := uint64((off+ext.BufOff)/bs + b)
		src := bufs[ei].cipher[b*bs : (b+1)*bs]
		meta := bufs[ei].metas[b*metaLen : (b+1)*metaLen]
		return e.cryptor.open(dst, src, blockIdx, meta)
	})
	release()
	if err != nil {
		return at, err
	}
	return e.chargeCrypto(end, int64(len(p))), nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
