// Package core implements the paper's contribution: client-side virtual
// disk encryption with per-sector metadata. Every 4 KiB encryption block
// can carry a stored IV (and, in the authenticated scheme, a MAC),
// placed in one of the three §3.1 layouts — Unaligned, Object end, or
// OMAP — and written atomically with its data using RADOS transactions.
//
// The public surface is EncryptedImage, which wraps an rbd.Image the way
// Ceph's libRBD crypto layer wraps plain image IO: Format seals a fresh
// master key behind a LUKS2-style passphrase container stored in the
// image header, Load unlocks it, and ReadAt/WriteAt run the chosen
// scheme+layout transparently.
package core

import (
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/luks"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/vtime"
)

// DefaultBlockSize is the encryption block size (LUKS2 4 KiB sectors,
// §2.4 footnote 4).
const DefaultBlockSize = 4096

var (
	// ErrAlignment reports IO not aligned to the encryption block size.
	ErrAlignment = errors.New("core: IO must be aligned to the encryption block size")
	// ErrPassphrase re-exports the LUKS unlock failure.
	ErrPassphrase = luks.ErrPassphrase
	// ErrNotEncrypted reports a Load on an image without a container.
	ErrNotEncrypted = errors.New("core: image is not encryption-formatted")
)

// Options selects the encryption construction for an image.
type Options struct {
	Scheme    Scheme
	Layout    Layout
	BlockSize int64
	// ClientCrypto models the client CPU cost of encryption in virtual
	// time (ns/byte); zero uses a default calibrated to AES-NI XTS.
	// Real CPU time is measured by the Go benchmarks directly.
	ClientCryptoNsPerByte float64
	// ClientCores is the parallelism of the client crypto resource.
	ClientCores int
}

func (o Options) withDefaults() Options {
	if o.BlockSize <= 0 {
		o.BlockSize = DefaultBlockSize
	}
	if o.ClientCryptoNsPerByte <= 0 {
		o.ClientCryptoNsPerByte = 0.4 // ≈2.5 GB/s per core
	}
	if o.ClientCores <= 0 {
		o.ClientCores = 8
	}
	return o
}

// Validate rejects incoherent combinations: schemes with metadata need a
// metadata layout, metadata-free schemes must use LayoutNone.
func (o Options) Validate() error {
	c, err := newCryptor(o.Scheme, make([]byte, 64))
	if err != nil {
		return err
	}
	if c.metaLen() == 0 && o.Layout != LayoutNone {
		return fmt.Errorf("core: scheme %v stores no metadata; use LayoutNone", o.Scheme)
	}
	if c.metaLen() > 0 && o.Layout == LayoutNone {
		return fmt.Errorf("core: scheme %v needs a metadata layout", o.Scheme)
	}
	if o.BlockSize > 0 && o.BlockSize%512 != 0 {
		return fmt.Errorf("core: block size %d not sector aligned", o.BlockSize)
	}
	return nil
}

// format is the persisted encryption descriptor (stored in the image
// header next to the LUKS container).
type format struct {
	Scheme    string          `json:"scheme"`
	Layout    string          `json:"layout"`
	BlockSize int64           `json:"block_size"`
	LUKS      json.RawMessage `json:"luks"`
}

// EncryptedImage is an encrypted view of an rbd image. All methods are
// safe for concurrent use.
type EncryptedImage struct {
	img     *rbd.Image
	opts    Options
	cryptor cryptor
	plan    planner
	cpu     *vtime.MultiResource
}

// Format initializes encryption on an image: generates a master key,
// seals it behind the passphrase, and persists the descriptor. The image
// must be empty (freshly created); existing plaintext is not converted.
func Format(at vtime.Time, img *rbd.Image, passphrase []byte, opts Options) (vtime.Time, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return at, err
	}
	if len(img.EncryptionBlob()) != 0 {
		return at, fmt.Errorf("core: image %q already encryption-formatted", img.Name())
	}
	if img.ObjectSize()%opts.BlockSize != 0 {
		return at, fmt.Errorf("core: object size %d not a multiple of block size %d", img.ObjectSize(), opts.BlockSize)
	}
	container, masterKey, err := luks.Format(passphrase, "aes-xts-plain64/"+opts.Scheme.String())
	if err != nil {
		return at, err
	}
	clear(masterKey) // the caller re-derives it via Load
	luksBlob, err := container.Marshal()
	if err != nil {
		return at, err
	}
	desc, err := json.Marshal(format{
		Scheme:    opts.Scheme.String(),
		Layout:    opts.Layout.String(),
		BlockSize: opts.BlockSize,
		LUKS:      luksBlob,
	})
	if err != nil {
		return at, err
	}
	return img.SetEncryptionBlob(at, desc)
}

// Load opens an encrypted image with a passphrase.
func Load(at vtime.Time, img *rbd.Image, passphrase []byte) (*EncryptedImage, vtime.Time, error) {
	blob := img.EncryptionBlob()
	if len(blob) == 0 {
		return nil, at, ErrNotEncrypted
	}
	var desc format
	if err := json.Unmarshal(blob, &desc); err != nil {
		return nil, at, fmt.Errorf("core: corrupt encryption descriptor: %v", err)
	}
	scheme, err := ParseScheme(desc.Scheme)
	if err != nil {
		return nil, at, err
	}
	lay, err := ParseLayout(desc.Layout)
	if err != nil {
		return nil, at, err
	}
	container, err := luks.Unmarshal(desc.LUKS)
	if err != nil {
		return nil, at, err
	}
	masterKey, err := container.Unlock(passphrase)
	if err != nil {
		return nil, at, err
	}
	opts := Options{Scheme: scheme, Layout: lay, BlockSize: desc.BlockSize}.withDefaults()
	c, err := newCryptor(scheme, masterKey)
	if err != nil {
		return nil, at, err
	}
	e := &EncryptedImage{
		img:     img,
		opts:    opts,
		cryptor: c,
		plan: planner{
			layout:     lay,
			blockSize:  opts.BlockSize,
			metaLen:    int64(c.metaLen()),
			objectSize: img.ObjectSize(),
		},
		cpu: vtime.NewMultiResource(img.Name()+"/crypto", opts.ClientCores),
	}
	return e, at, nil
}

// Image returns the underlying image.
func (e *EncryptedImage) Image() *rbd.Image { return e.img }

// Options returns the image's encryption options.
func (e *EncryptedImage) Options() Options { return e.opts }

// MetaLen returns the stored metadata bytes per encryption block.
func (e *EncryptedImage) MetaLen() int { return e.cryptor.metaLen() }

// Size returns the usable image size.
func (e *EncryptedImage) Size() int64 { return e.img.Size() }

// CreateSnap snapshots the underlying image.
func (e *EncryptedImage) CreateSnap(at vtime.Time, name string) (uint64, vtime.Time, error) {
	return e.img.CreateSnap(at, name)
}

func (e *EncryptedImage) checkAligned(p []byte, off int64) error {
	bs := e.opts.BlockSize
	if off%bs != 0 || int64(len(p))%bs != 0 {
		return fmt.Errorf("%w: off=%d len=%d block=%d", ErrAlignment, off, len(p), bs)
	}
	return nil
}

// chargeCrypto models the client-side cipher cost in virtual time.
func (e *EncryptedImage) chargeCrypto(at vtime.Time, n int64) vtime.Time {
	return e.cpu.Use(at, time.Duration(float64(n)*e.opts.ClientCryptoNsPerByte))
}

// WriteAt encrypts p and writes it (with per-block metadata under the
// image's layout) at off. The IO must be block-aligned, as with dm-crypt.
func (e *EncryptedImage) WriteAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	if err := e.checkAligned(p, off); err != nil {
		return at, err
	}
	if len(p) == 0 {
		return at, nil
	}
	exts, err := e.img.Extents(off, int64(len(p)))
	if err != nil {
		return at, err
	}
	bs := e.opts.BlockSize
	metaLen := int64(e.cryptor.metaLen())

	type objWrite struct {
		ext rbd.Extent
		ops []rados.Op
	}
	writes := make([]objWrite, 0, len(exts))
	for _, ext := range exts {
		nb := ext.Length / bs
		cipherBuf := make([]byte, ext.Length)
		metaBuf := make([]byte, nb*metaLen)
		if rl := int64(e.cryptor.randLen()); rl > 0 {
			// One entropy draw per extent: fill the random prefix of every
			// block's metadata slot.
			if _, err := rand.Read(metaBuf); err != nil {
				return at, err
			}
		}
		for b := int64(0); b < nb; b++ {
			blockIdx := uint64((off+ext.BufOff)/bs + b)
			src := p[ext.BufOff+b*bs : ext.BufOff+(b+1)*bs]
			dst := cipherBuf[b*bs : (b+1)*bs]
			meta := metaBuf[b*metaLen : (b+1)*metaLen]
			if err := e.cryptor.seal(dst, src, blockIdx, meta); err != nil {
				return at, err
			}
		}
		startBlock := ext.ObjOff / bs
		writes = append(writes, objWrite{ext: ext, ops: e.plan.writeOps(startBlock, cipherBuf, metaBuf)})
	}

	at = e.chargeCrypto(at, int64(len(p)))

	// Fan out per-object transactions.
	type outcome struct {
		end vtime.Time
		err error
	}
	if len(writes) == 1 {
		res, end, err := e.img.Operate(at, writes[0].ext.ObjIdx, 0, writes[0].ops)
		if err != nil {
			return at, err
		}
		for _, r := range res {
			if err := r.Status.Err(); err != nil {
				return at, err
			}
		}
		return end, nil
	}
	ch := make(chan outcome, len(writes))
	for _, w := range writes {
		go func(w objWrite) {
			res, end, err := e.img.Operate(at, w.ext.ObjIdx, 0, w.ops)
			if err == nil {
				for _, r := range res {
					if serr := r.Status.Err(); serr != nil {
						err = serr
						break
					}
				}
			}
			ch <- outcome{end: end, err: err}
		}(w)
	}
	end := at
	var firstErr error
	for range writes {
		o := <-ch
		if o.err != nil && firstErr == nil {
			firstErr = o.err
		}
		end = vtime.Max(end, o.end)
	}
	if firstErr != nil {
		return at, firstErr
	}
	return end, nil
}

// ReadAt reads and decrypts into p from off (image head).
func (e *EncryptedImage) ReadAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	return e.ReadAtSnap(at, p, off, 0)
}

// ReadAtSnap reads from a snapshot (0 = head). Stored IVs travel with
// snapshot clones, so old versions decrypt with their original IVs.
func (e *EncryptedImage) ReadAtSnap(at vtime.Time, p []byte, off int64, snapID uint64) (vtime.Time, error) {
	if err := e.checkAligned(p, off); err != nil {
		return at, err
	}
	if len(p) == 0 {
		return at, nil
	}
	exts, err := e.img.Extents(off, int64(len(p)))
	if err != nil {
		return at, err
	}
	bs := e.opts.BlockSize

	type outcome struct {
		end vtime.Time
		err error
	}
	readOne := func(ext rbd.Extent) (vtime.Time, error) {
		startBlock := ext.ObjOff / bs
		nb := ext.Length / bs
		res, end, err := e.img.Operate(at, ext.ObjIdx, snapID, e.plan.readOps(startBlock, nb))
		if err != nil {
			return at, err
		}
		cipher, metas, err := e.plan.parseRead(startBlock, nb, res)
		if err != nil {
			return at, err
		}
		metaLen := int64(e.cryptor.metaLen())
		for b := int64(0); b < nb; b++ {
			blockIdx := uint64((off+ext.BufOff)/bs + b)
			src := cipher[b*bs : (b+1)*bs]
			dst := p[ext.BufOff+b*bs : ext.BufOff+(b+1)*bs]
			meta := metas[b*metaLen : (b+1)*metaLen]
			if allZero(src) && allZero(meta) {
				// Hole: never written (sparse read).
				clear(dst)
				continue
			}
			if err := e.cryptor.open(dst, src, blockIdx, meta); err != nil {
				return at, err
			}
		}
		return end, nil
	}

	if len(exts) == 1 {
		end, err := readOne(exts[0])
		if err != nil {
			return at, err
		}
		return e.chargeCrypto(end, int64(len(p))), nil
	}
	ch := make(chan outcome, len(exts))
	for _, ext := range exts {
		go func(ext rbd.Extent) {
			end, err := readOne(ext)
			ch <- outcome{end: end, err: err}
		}(ext)
	}
	end := at
	var firstErr error
	for range exts {
		o := <-ch
		if o.err != nil && firstErr == nil {
			firstErr = o.err
		}
		end = vtime.Max(end, o.end)
	}
	if firstErr != nil {
		return at, firstErr
	}
	return e.chargeCrypto(end, int64(len(p))), nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
