// Package core implements the paper's contribution: client-side virtual
// disk encryption with per-sector metadata. Every 4 KiB encryption block
// can carry a stored IV (and, in the authenticated scheme, a MAC),
// placed in one of the three §3.1 layouts — Unaligned, Object end, or
// OMAP — and written atomically with its data using RADOS transactions.
//
// The public surface is EncryptedImage, which wraps an rbd.Image the way
// Ceph's libRBD crypto layer wraps plain image IO: Format seals a fresh
// master key behind a LUKS2-style passphrase container stored in the
// image header, Load unlocks it, and ReadAt/WriteAt run the chosen
// scheme+layout transparently.
package core

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/luks"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/telemetry"
	"repro/internal/telemetry/attr"
	"repro/internal/vtime"
)

// DefaultBlockSize is the encryption block size (LUKS2 4 KiB sectors,
// §2.4 footnote 4).
const DefaultBlockSize = 4096

var (
	// ErrAlignment reports IO not aligned to the encryption block size.
	ErrAlignment = errors.New("core: IO must be aligned to the encryption block size")
	// ErrPassphrase re-exports the LUKS unlock failure.
	ErrPassphrase = luks.ErrPassphrase
	// ErrNotEncrypted reports a Load on an image without a container.
	ErrNotEncrypted = errors.New("core: image is not encryption-formatted")
)

// Options selects the encryption construction for an image.
type Options struct {
	Scheme    Scheme
	Layout    Layout
	BlockSize int64
	// ClientCrypto models the client CPU cost of encryption in virtual
	// time (ns/byte); zero uses a default calibrated to AES-NI XTS.
	// Real CPU time is measured by the Go benchmarks directly.
	ClientCryptoNsPerByte float64
	// ClientCores is the real parallelism of the seal/open datapath: how
	// many blocks are ciphered concurrently on the worker pool. Defaults
	// to runtime.GOMAXPROCS(0); 1 forces the serial path.
	ClientCores int
	// ModelCores is the width of the *virtual-time* client crypto
	// resource (the simulated client of §3.2). It defaults to 8 so
	// simulated bandwidth stays machine-independent even though the real
	// datapath scales with the host.
	ModelCores int
}

func (o Options) withDefaults() Options {
	if o.BlockSize <= 0 {
		o.BlockSize = DefaultBlockSize
	}
	if o.ClientCryptoNsPerByte <= 0 {
		o.ClientCryptoNsPerByte = 0.4 // ≈2.5 GB/s per core
	}
	if o.ClientCores <= 0 {
		o.ClientCores = maxParallelism()
	}
	if o.ModelCores <= 0 {
		o.ModelCores = 8
	}
	return o
}

// Validate rejects incoherent combinations: schemes with metadata need a
// metadata layout, metadata-free schemes must use LayoutNone.
func (o Options) Validate() error {
	c, err := newCryptor(o.Scheme, make([]byte, 64))
	if err != nil {
		return err
	}
	if c.metaLen() == 0 && o.Layout != LayoutNone {
		return fmt.Errorf("core: scheme %v stores no metadata; use LayoutNone", o.Scheme)
	}
	if c.metaLen() > 0 && o.Layout == LayoutNone {
		return fmt.Errorf("core: scheme %v needs a metadata layout", o.Scheme)
	}
	if o.BlockSize > 0 && o.BlockSize%512 != 0 {
		return fmt.Errorf("core: block size %d not sector aligned", o.BlockSize)
	}
	return nil
}

// format is the persisted encryption descriptor (stored in the image
// header next to the LUKS container).
type format struct {
	Scheme    string          `json:"scheme"`
	Layout    string          `json:"layout"`
	BlockSize int64           `json:"block_size"`
	LUKS      json.RawMessage `json:"luks"`
}

// EncryptedImage is an encrypted view of an rbd image. All methods are
// safe for concurrent use from one handle; like RBD with the exclusive
// lock, an image must not be written through two handles at once (the
// allocation-sidecar cache assumes a single writer).
type EncryptedImage struct {
	img     *rbd.Image
	opts    Options
	proto   cryptor // scheme-static metaLen/randLen probe (zero key)
	ring    *keyring
	plan    planner
	cpu     *vtime.MultiResource
	workers int // datapath parallelism (ClientCores)

	// Key lifecycle: the unlocked container and master key stay resident
	// (as in any open LUKS device) so epochs can be minted and destroyed
	// without re-prompting for the passphrase. keyMu serializes container
	// mutations.
	keyMu     sync.Mutex
	container *luks.Container
	masterKey []byte

	// locks hands out per-object RW mutexes: writers share, the rekey
	// walker / Discard / sidecar read-modify-writes exclude.
	locks lockTable

	// alloc caches decoded allocation sidecars for metadata-free schemes
	// (entries are only touched under the object's exclusive lock).
	allocMu sync.Mutex
	alloc   map[int64]*objAlloc

	// met holds the image's (scheme, layout)-labeled telemetry series,
	// resolved once in Load so the datapath records allocation-free.
	met imageMetrics
}

// Format initializes encryption on an image: generates a master key,
// seals it behind the passphrase, and persists the descriptor. The image
// must be empty (freshly created); existing plaintext is not converted.
func Format(at vtime.Time, img *rbd.Image, passphrase []byte, opts Options) (vtime.Time, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return at, err
	}
	if len(img.EncryptionBlob()) != 0 {
		return at, fmt.Errorf("core: image %q already encryption-formatted", img.Name())
	}
	if img.ObjectSize()%opts.BlockSize != 0 {
		return at, fmt.Errorf("core: object size %d not a multiple of block size %d", img.ObjectSize(), opts.BlockSize)
	}
	container, masterKey, err := luks.Format(passphrase, "aes-xts-plain64/"+opts.Scheme.String())
	if err != nil {
		return at, err
	}
	clear(masterKey) // the caller re-derives it via Load
	luksBlob, err := container.Marshal()
	if err != nil {
		return at, err
	}
	desc, err := json.Marshal(format{
		Scheme:    opts.Scheme.String(),
		Layout:    opts.Layout.String(),
		BlockSize: opts.BlockSize,
		LUKS:      luksBlob,
	})
	if err != nil {
		return at, err
	}
	return img.SetEncryptionBlob(at, desc)
}

// Load opens an encrypted image with a passphrase.
func Load(at vtime.Time, img *rbd.Image, passphrase []byte) (*EncryptedImage, vtime.Time, error) {
	blob := img.EncryptionBlob()
	if len(blob) == 0 {
		return nil, at, ErrNotEncrypted
	}
	var desc format
	if err := json.Unmarshal(blob, &desc); err != nil {
		return nil, at, fmt.Errorf("core: corrupt encryption descriptor: %v", err)
	}
	scheme, err := ParseScheme(desc.Scheme)
	if err != nil {
		return nil, at, err
	}
	lay, err := ParseLayout(desc.Layout)
	if err != nil {
		return nil, at, err
	}
	container, err := luks.Unmarshal(desc.LUKS)
	if err != nil {
		return nil, at, err
	}
	masterKey, err := container.Unlock(passphrase)
	if err != nil {
		return nil, at, err
	}
	opts := Options{Scheme: scheme, Layout: lay, BlockSize: desc.BlockSize}.withDefaults()
	proto, err := newCryptor(scheme, make([]byte, 64))
	if err != nil {
		return nil, at, err
	}
	// Build one cryptor per live key epoch.
	ring := newKeyring()
	for _, ep := range container.EpochIDs() {
		key, err := container.EpochKey(masterKey, ep)
		if err != nil {
			return nil, at, err
		}
		c, err := newCryptor(scheme, key)
		if err != nil {
			return nil, at, err
		}
		ring.install(ep, c)
	}
	ring.setCurrent(container.CurrentEpoch())
	// A container from before the versioned-key table wrote scheme-only
	// metadata slots; its on-disk geometry has no room for epoch tags.
	tagged := len(container.Epochs) > 0
	storedMeta := int64(proto.metaLen())
	if storedMeta > 0 && tagged {
		storedMeta += epochLen
	}
	e := &EncryptedImage{
		img:       img,
		opts:      opts,
		proto:     proto,
		ring:      ring,
		container: container,
		masterKey: masterKey,
		plan: planner{
			layout:      lay,
			blockSize:   opts.BlockSize,
			metaLen:     storedMeta,
			objectSize:  img.ObjectSize(),
			trackAlloc:  storedMeta == 0,
			epochTagged: tagged && storedMeta > 0,
		},
		cpu:     vtime.NewMultiResource(img.Name()+"/crypto", opts.ModelCores),
		workers: opts.ClientCores,
		alloc:   make(map[int64]*objAlloc),
		met:     newImageMetrics(scheme, lay),
	}
	return e, at, nil
}

// SetParallelism overrides the real datapath parallelism (the number of
// blocks ciphered concurrently). n <= 1 forces the serial path; the
// virtual-time cost model is unaffected. It is a tuning knob for
// benchmarks and busy multi-image clients and must not be called
// concurrently with IO.
func (e *EncryptedImage) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	e.workers = n
}

// Image returns the underlying image.
func (e *EncryptedImage) Image() *rbd.Image { return e.img }

// Options returns the image's encryption options.
func (e *EncryptedImage) Options() Options { return e.opts }

// MetaLen returns the stored metadata bytes per encryption block (the
// scheme's IV/tag plus the key-epoch tag; 0 for metadata-free schemes).
func (e *EncryptedImage) MetaLen() int { return int(e.plan.metaLen) }

// schemeMetaLen is the prefix of each stored metadata slot owned by the
// cipher scheme (the rest is the epoch tag).
func (e *EncryptedImage) schemeMetaLen() int64 { return int64(e.proto.metaLen()) }

// ObjectCount reports how many striping objects the image spans — the
// domain the rekey walker iterates.
func (e *EncryptedImage) ObjectCount() int64 {
	os := e.img.ObjectSize()
	return (e.img.Size() + os - 1) / os
}

// Size returns the usable image size.
func (e *EncryptedImage) Size() int64 { return e.img.Size() }

// CreateSnap snapshots the underlying image.
func (e *EncryptedImage) CreateSnap(at vtime.Time, name string) (uint64, vtime.Time, error) {
	return e.img.CreateSnap(at, name)
}

func (e *EncryptedImage) checkAligned(p []byte, off int64) error {
	bs := e.opts.BlockSize
	if off%bs != 0 || int64(len(p))%bs != 0 {
		return fmt.Errorf("%w: off=%d len=%d block=%d", ErrAlignment, off, len(p), bs)
	}
	return nil
}

// chargeCrypto models the client-side cipher cost in virtual time.
func (e *EncryptedImage) chargeCrypto(at vtime.Time, n int64) vtime.Time {
	return e.cpu.Use(at, time.Duration(float64(n)*e.opts.ClientCryptoNsPerByte))
}

// errStaleEpoch reports a write sealed under an epoch that stopped being
// current before the transaction could be issued (a rekey began
// mid-write). The write path retries under the new epoch — committing
// the old tag would let the completing rekey destroy the key for data
// the walker already swept past.
var errStaleEpoch = errors.New("core: key epoch advanced mid-write")

// WriteAt encrypts p and writes it (with per-block metadata under the
// image's layout) at off. The IO must be block-aligned, as with dm-crypt.
// Blocks are always sealed under the newest key epoch, and the epoch tag
// travels with the block (metadata tail, or the allocation sidecar for
// metadata-free schemes).
//
// The seal pipeline is zero-copy and parallel: each extent gets a
// layout-aware writePlan whose wire buffers are the very payloads the
// RADOS ops will carry, the cryptor seals every block directly into its
// wire destination, and the per-block work is fanned across the shared
// datapath worker pool (within and across extents).
func (e *EncryptedImage) WriteAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	for attempt := 0; ; attempt++ {
		end, err := e.writeAtEpoch(at, p, off)
		if !errors.Is(err, errStaleEpoch) {
			if err == nil && len(p) > 0 {
				e.met.sealOps.Inc()
				e.met.sealBytes.Add(int64(len(p)))
				e.met.writeLat.Observe(end.Sub(at))
			}
			return end, err
		}
		if attempt >= 8 {
			return at, fmt.Errorf("core: write never settled on a current epoch: %w", err)
		}
	}
}

func (e *EncryptedImage) writeAtEpoch(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	if err := e.checkAligned(p, off); err != nil {
		return at, err
	}
	if len(p) == 0 {
		return at, nil
	}
	exts, err := e.img.Extents(off, int64(len(p)))
	if err != nil {
		return at, err
	}
	bs := e.opts.BlockSize
	epoch := e.ring.currentEpoch()
	sealer, err := e.ring.cryptorFor(epoch)
	if err != nil {
		return at, err
	}
	sml := e.schemeMetaLen()

	plans := make([]*writePlan, len(exts))
	for i, ext := range exts {
		plans[i] = e.plan.newWritePlan(ext.ObjOff/bs, ext.Length/bs)
	}
	release := func() {
		for _, w := range plans {
			w.release()
		}
	}

	// One entropy draw per IO, scattered into the random prefix of every
	// block's metadata slot.
	if rl := e.proto.randLen(); rl > 0 {
		nbTotal := int64(len(p)) / bs
		rbuf := getBuf(int(nbTotal) * rl)
		if _, err := rand.Read(rbuf); err != nil {
			release()
			return at, err
		}
		g := 0
		for i := range exts {
			for b := int64(0); b < exts[i].Length/bs; b++ {
				copy(plans[i].metaDst(b)[:rl], rbuf[g*rl:])
				g++
			}
		}
		putBuf(rbuf)
	}

	err = forExtentBlocks(e.workers, exts, bs, func(ei int, b int64) error {
		ext := exts[ei]
		blockIdx := uint64((off+ext.BufOff)/bs + b)
		src := p[ext.BufOff+b*bs : ext.BufOff+(b+1)*bs]
		meta := plans[ei].metaDst(b)
		if int64(len(meta)) > sml { // epoch-tagged slot
			binary.LittleEndian.PutUint32(meta[sml:], epoch)
			meta = meta[:sml]
		}
		return sealer.seal(plans[ei].cipherDst(b), src, blockIdx, meta)
	})
	if err != nil {
		release()
		return at, err
	}

	sealed := e.chargeCrypto(at, int64(len(p)))
	attr.Observe(attr.OpWrite, attr.PhaseSeal, sealed.Sub(at))
	at = sealed

	// Fan out per-object transactions. The transport fully consumes the
	// plan buffers before Operate returns — the typed in-process path
	// hands them to the OSD, which copies what it persists; the byte
	// codec encodes them — so the plans can be released once every call
	// is back.
	// Writers hold the object lock shared (metadata schemes) so the rekey
	// walker's read-modify-write cannot interleave, or exclusive
	// (metadata-free) around the allocation-sidecar update.
	issue := func(at vtime.Time, i int) (vtime.Time, error) {
		ext := exts[i]
		ops := plans[i].ops()
		lk := e.locks.of(ext.ObjIdx)
		if !e.plan.trackAlloc {
			lk.RLock()
			defer lk.RUnlock()
		} else {
			lk.Lock()
			defer lk.Unlock()
		}
		// Epoch fence, checked only now that the object lock is held: a
		// seal epoch that went stale before this point could commit
		// behind the rekey walker's sweep of this object and then be
		// destroyed with its epoch. Fail the attempt; WriteAt re-seals
		// under the new epoch.
		if e.ring.currentEpoch() != epoch {
			return at, errStaleEpoch
		}
		dirtyAlloc := false
		if e.plan.trackAlloc {
			a, end, err := e.loadAlloc(at, ext.ObjIdx)
			if err != nil {
				return at, err
			}
			at = end
			// Mutate the cached sidecar in place (we hold the object
			// exclusively; nothing reads it concurrently) and invalidate
			// on failure instead of paying a defensive clone per IO.
			start := ext.ObjOff / bs
			for b := int64(0); b < ext.Length/bs; b++ {
				a.set(start+b, epoch)
			}
			dirtyAlloc = true
			ops = append(ops, rados.Op{Kind: rados.OpSetAttr, Key: []byte(allocAttr), Data: a.encode()})
		}
		return e.commitObjectTxn(at, ext.ObjIdx, ops, dirtyAlloc)
	}

	end, err := fanOutExtents(at, len(plans), func(i int) (vtime.Time, error) {
		return issue(at, i)
	})
	release()
	if err != nil {
		return at, err
	}
	return end, nil
}

// ReadAt reads and decrypts into p from off (image head).
func (e *EncryptedImage) ReadAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	return e.ReadAtSnap(at, p, off, 0)
}

// ReadAtSnapPresent is ReadAtSnap with per-block presence reporting:
// present (len(p)/BlockSize entries; nil to skip) receives, per block of
// the IO, whether the block was ever written in THIS image. Absent
// blocks read as zeros, exactly as in ReadAtSnap. The clone layer uses
// the report to decide which blocks fall through to the parent
// snapshot and must be filled from there.
func (e *EncryptedImage) ReadAtSnapPresent(at vtime.Time, p []byte, off int64, snapID uint64, present []bool) (vtime.Time, error) {
	if present != nil && int64(len(present)) != int64(len(p))/e.opts.BlockSize {
		return at, fmt.Errorf("core: presence buffer covers %d blocks, IO has %d", len(present), int64(len(p))/e.opts.BlockSize)
	}
	for attempt := 0; ; attempt++ {
		end, err := e.readAtSnapOnce(at, p, off, snapID, present)
		if !errors.Is(err, errEpochRetiredMidRead) || attempt >= 2 {
			if err == nil && len(p) > 0 {
				e.met.openOps.Inc()
				e.met.openBytes.Add(int64(len(p)))
				e.met.readLat.Observe(end.Sub(at))
			}
			return end, err
		}
	}
}

// ReadAtSnap reads from a snapshot (0 = head). Stored IVs travel with
// snapshot clones, so old versions decrypt with their original IVs.
//
// The open pipeline mirrors WriteAt: per-object fetches fan out first
// (virtual-time concurrency), then every fetched block is opened in
// parallel on the shared datapath pool, decrypting straight into p.
// Block presence comes from the read results (object existence, logical
// size, OMAP keys — see parseReadInto), never from sniffing content, so
// a legitimately written all-zero-ciphertext block decrypts normally.
func (e *EncryptedImage) ReadAtSnap(at vtime.Time, p []byte, off int64, snapID uint64) (vtime.Time, error) {
	// A rekey may retire an epoch between an attempt's fetch and its open
	// phase; refetching sees the re-sealed blocks (the retry inside
	// ReadAtSnapPresent). Genuinely crypto-erased blocks (epoch already
	// dead at fetch time) fail immediately without the refetch.
	return e.ReadAtSnapPresent(at, p, off, snapID, nil)
}

// errEpochRetiredMidRead marks an ErrKeyErased hit on a block whose
// epoch was still live when the read fetched it — the one case where a
// refetch can succeed (the rekey walker re-sealed the block since).
var errEpochRetiredMidRead = fmt.Errorf("%w (retired mid-read)", ErrKeyErased)

func (e *EncryptedImage) readAtSnapOnce(at vtime.Time, p []byte, off int64, snapID uint64, presOut []bool) (vtime.Time, error) {
	if err := e.checkAligned(p, off); err != nil {
		return at, err
	}
	if len(p) == 0 {
		return at, nil
	}
	exts, err := e.img.Extents(off, int64(len(p)))
	if err != nil {
		return at, err
	}
	bs := e.opts.BlockSize
	metaLen := e.plan.metaLen
	sml := e.schemeMetaLen()
	liveAtFetch := e.ring.epochs()

	// Phase 1: fetch ciphertext+metadata for every extent into pooled
	// buffers, concurrently across objects. The buffers are allocated
	// up front and handed to the read ops as destinations, so on the
	// in-process fast path the OSD fills them directly — a fetched block
	// crosses the wire with zero intermediate copies. (LayoutUnaligned
	// reads its stride-interleaved stream into a separate raw buffer
	// that parseReadInto de-strides.)
	type extRead struct {
		cipher  []byte
		metas   []byte
		present []byte // 0/1 per block, pooled like the data buffers
		epochs  []byte // key-epoch tag per block (little-endian uint32)
		raw     []byte // strided read destination (LayoutUnaligned only)
	}
	bufs := make([]extRead, len(exts))
	release := func() {
		for i := range bufs {
			putBuf(bufs[i].cipher)
			putBuf(bufs[i].metas)
			putBuf(bufs[i].present)
			putBuf(bufs[i].epochs)
			putBuf(bufs[i].raw)
		}
	}
	fetchOne := func(i int) (vtime.Time, error) {
		ext := exts[i]
		startBlock := ext.ObjOff / bs
		nb := ext.Length / bs
		bufs[i].cipher = getBuf(int(nb * bs))
		bufs[i].metas = getBuf(int(nb * metaLen))
		bufs[i].present = getBuf(int(nb))
		bufs[i].epochs = getBuf(int(nb * epochLen))
		raw := bufs[i].cipher
		if e.plan.layout == LayoutUnaligned {
			bufs[i].raw = getBuf(int(e.plan.rawReadLen(nb)))
			raw = bufs[i].raw
		}
		res, end, err := e.img.Operate(at, ext.ObjIdx, snapID, e.plan.readOpsInto(startBlock, nb, raw, bufs[i].metas))
		if err != nil {
			return at, err
		}
		if err := e.plan.parseReadInto(startBlock, nb, res, bufs[i].cipher, bufs[i].metas, bufs[i].present, bufs[i].epochs); err != nil {
			return at, err
		}
		return end, nil
	}

	end, err := fanOutExtents(at, len(exts), fetchOne)
	if err != nil {
		release()
		return at, err
	}

	// Phase 2: open every block in parallel, straight into p, each under
	// the key epoch its tag names (a destroyed epoch fails the read —
	// that block has been crypto-erased).
	err = forExtentBlocks(e.workers, exts, bs, func(ei int, b int64) error {
		ext := exts[ei]
		dst := p[ext.BufOff+b*bs : ext.BufOff+(b+1)*bs]
		if presOut != nil {
			// Distinct elements written from distinct blocks: race-free.
			presOut[ext.BufOff/bs+b] = bufs[ei].present[b] != 0
		}
		if bufs[ei].present[b] == 0 {
			// Hole: never written (sparse read).
			clear(dst)
			return nil
		}
		epoch := binary.LittleEndian.Uint32(bufs[ei].epochs[b*epochLen:])
		opener, err := e.ring.cryptorFor(epoch)
		if err != nil {
			for _, ep := range liveAtFetch {
				if ep == epoch {
					return fmt.Errorf("core: epoch %d: %w", epoch, errEpochRetiredMidRead)
				}
			}
			return err
		}
		blockIdx := uint64((off+ext.BufOff)/bs + b)
		src := bufs[ei].cipher[b*bs : (b+1)*bs]
		meta := bufs[ei].metas[b*metaLen : b*metaLen+sml]
		return opener.open(dst, src, blockIdx, meta)
	})
	release()
	if err != nil {
		return at, err
	}
	opened := e.chargeCrypto(end, int64(len(p)))
	attr.Observe(attr.OpRead, attr.PhaseOpen, opened.Sub(end))
	return opened, nil
}

// ---- allocation sidecar cache (metadata-free schemes) ----

// loadAlloc returns the object's decoded sidecar, fetching it from the
// OSD on first touch. An object that exists without a sidecar was
// written by a pre-sidecar build: its presence is seeded from the
// logical size (the same fallback the read path uses) under the
// implicit epoch 0, so the first tracked write cannot mask pre-existing
// data as holes and Discard punches it for real. The caller must hold
// the object's exclusive lock.
func (e *EncryptedImage) loadAlloc(at vtime.Time, objIdx int64) (*objAlloc, vtime.Time, error) {
	e.allocMu.Lock()
	a, ok := e.alloc[objIdx]
	e.allocMu.Unlock()
	if ok {
		return a, at, nil
	}
	res, end, err := e.img.Operate(at, objIdx, 0, []rados.Op{
		{Kind: rados.OpGetAttr, Key: []byte(allocAttr)},
		{Kind: rados.OpStat},
	})
	if err != nil {
		return nil, at, err
	}
	nb := e.plan.objBlocks()
	if res[0].Status == rados.StatusOK {
		if a, err = decodeObjAlloc(res[0].Data, nb); err != nil {
			return nil, at, err
		}
	} else {
		a = newObjAlloc(nb)
		if res[1].Status == rados.StatusOK {
			bs := e.opts.BlockSize
			for b := int64(0); b < nb && (b+1)*bs <= res[1].Size; b++ {
				a.set(b, 0)
			}
		}
	}
	e.storeAlloc(objIdx, a)
	return a, end, nil
}

func (e *EncryptedImage) storeAlloc(objIdx int64, a *objAlloc) {
	e.allocMu.Lock()
	e.alloc[objIdx] = a
	e.allocMu.Unlock()
}

// invalidateAlloc drops a cached sidecar whose in-place mutation was not
// committed (failed transaction); the next touch refetches from the OSD.
func (e *EncryptedImage) invalidateAlloc(objIdx int64) {
	e.allocMu.Lock()
	delete(e.alloc, objIdx)
	e.allocMu.Unlock()
}

// commitObjectTxn issues one object transaction and surfaces per-op
// failures. When the transaction carried an in-place sidecar mutation
// (dirtyAlloc), any failure invalidates the cached sidecar so the next
// touch refetches the committed state. On failure the caller's arrival
// time is returned unchanged.
func (e *EncryptedImage) commitObjectTxn(at vtime.Time, objIdx int64, ops []rados.Op, dirtyAlloc bool) (vtime.Time, error) {
	fail := func(err error) (vtime.Time, error) {
		if dirtyAlloc {
			e.invalidateAlloc(objIdx)
		}
		return at, err
	}
	res, end, err := e.img.Operate(at, objIdx, 0, ops)
	if err != nil {
		return fail(err)
	}
	for _, r := range res {
		if err := r.Status.Err(); err != nil {
			return fail(err)
		}
	}
	return end, nil
}

// ---- key lifecycle ----

// persistContainer rewrites the image's encryption descriptor with the
// current container state. Callers hold keyMu.
func (e *EncryptedImage) persistContainer(at vtime.Time) (vtime.Time, error) {
	luksBlob, err := e.container.Marshal()
	if err != nil {
		return at, err
	}
	desc, err := json.Marshal(format{
		Scheme:    e.opts.Scheme.String(),
		Layout:    e.opts.Layout.String(),
		BlockSize: e.opts.BlockSize,
		LUKS:      luksBlob,
	})
	if err != nil {
		return at, err
	}
	return e.img.SetEncryptionBlob(at, desc)
}

// CurrentEpoch returns the key epoch new writes seal under.
func (e *EncryptedImage) CurrentEpoch() uint32 { return e.ring.currentEpoch() }

// Epochs lists the live (unlockable) key epochs.
func (e *EncryptedImage) Epochs() []uint32 { return e.ring.epochs() }

// BeginEpoch mints the next key epoch and makes it current: the
// container gains a fresh wrapped data key, the descriptor is persisted
// (so a crashed client reloads both epochs), and from the moment this
// returns every new write seals under the new epoch. Existing blocks
// keep their old epoch until the rekey walker re-seals them.
func (e *EncryptedImage) BeginEpoch(at vtime.Time) (uint32, vtime.Time, error) {
	if e.schemeMetaLen() > 0 && !e.plan.epochTagged {
		return 0, at, errors.New("core: image predates the key-epoch table; its metadata slots cannot carry epoch tags (reformat to re-key)")
	}
	e.keyMu.Lock()
	defer e.keyMu.Unlock()
	prev := e.container.CurrentEpoch()
	epoch, err := e.container.AddEpoch(e.masterKey)
	if err != nil {
		return 0, at, err
	}
	// Any failure below retracts the in-memory mint, so the container
	// never desyncs from the keyring (an orphan live epoch would escape
	// every future rekey's DropEpoch).
	retract := func(err error) (uint32, vtime.Time, error) {
		if rerr := e.container.RetractEpoch(epoch, prev); rerr != nil {
			return 0, at, errors.Join(err, rerr)
		}
		return 0, at, err
	}
	key, err := e.container.EpochKey(e.masterKey, epoch)
	if err != nil {
		return retract(err)
	}
	c, err := newCryptor(e.opts.Scheme, key)
	if err != nil {
		return retract(err)
	}
	end, err := e.persistContainer(at)
	if err != nil {
		return retract(err)
	}
	e.ring.install(epoch, c)
	e.ring.setCurrent(epoch)
	telemetry.Log.Append(end, telemetry.EventEpochAdd, e.img.Name(), "minted", int64(epoch))
	return epoch, end, nil
}

// DropEpoch destroys a retired epoch's key material — the crypto-erase
// endpoint of a completed rekey. Any block (head or snapshot) still
// sealed under the epoch becomes permanently unreadable (ErrKeyErased).
func (e *EncryptedImage) DropEpoch(at vtime.Time, epoch uint32) (vtime.Time, error) {
	e.keyMu.Lock()
	defer e.keyMu.Unlock()
	entry, err := e.container.RemoveEpoch(epoch)
	if err != nil {
		return at, err
	}
	end, err := e.persistContainer(at)
	if err != nil {
		// Reinstate: the erase never became durable, and reporting it
		// destroyed while the wrapped key survives on disk would void
		// the crypto-erase guarantee on retry (Step tolerates
		// ErrEpochUnknown for the genuine already-destroyed case).
		e.container.ReinstateEpoch(entry)
		return at, err
	}
	clear(entry.Wrapped)
	e.ring.drop(epoch)
	telemetry.Log.Append(end, telemetry.EventEpochRetire, e.img.Name(), "crypto-erased", int64(epoch))
	return end, nil
}

// RekeyObject re-seals every present block of one striping object that
// is not yet at the current epoch — the walker primitive behind
// internal/keymgr. It holds the object's exclusive lock across its
// read-modify-write, so live writes (which always seal under the newest
// epoch and hold the lock shared) either land before the walker reads —
// and are skipped as already-current — or after it commits. All
// re-sealed blocks and their metadata move in one atomic transaction.
// It returns the number of blocks rewritten.
func (e *EncryptedImage) RekeyObject(at vtime.Time, objIdx int64) (int, vtime.Time, error) {
	bs := e.opts.BlockSize
	nb := e.plan.objBlocks()
	metaLen := e.plan.metaLen
	sml := e.schemeMetaLen()
	target := e.ring.currentEpoch()
	sealer, err := e.ring.cryptorFor(target)
	if err != nil {
		return 0, at, err
	}

	lk := e.locks.of(objIdx)
	lk.Lock()
	defer lk.Unlock()
	if cur := e.ring.currentEpoch(); cur != target {
		return 0, at, fmt.Errorf("core: epoch advanced to %d during rekey toward %d", cur, target)
	}

	cipher := getBuf(int(nb * bs))
	metas := getBuf(int(nb * metaLen))
	present := getBuf(int(nb))
	epochs := getBuf(int(nb * epochLen))
	raw := cipher
	var rawStride []byte
	if e.plan.layout == LayoutUnaligned {
		rawStride = getBuf(int(e.plan.rawReadLen(nb)))
		raw = rawStride
	}
	release := func() {
		putBuf(cipher)
		putBuf(metas)
		putBuf(present)
		putBuf(epochs)
		putBuf(rawStride)
	}
	res, end, err := e.img.Operate(at, objIdx, 0, e.plan.readOpsInto(0, nb, raw, metas))
	if err != nil {
		release()
		return 0, at, err
	}
	if err := e.plan.parseReadInto(0, nb, res, cipher, metas, present, epochs); err != nil {
		release()
		return 0, at, err
	}

	// Collect the stale blocks.
	var stale []int64
	for b := int64(0); b < nb; b++ {
		if present[b] != 0 && binary.LittleEndian.Uint32(epochs[b*epochLen:]) != target {
			stale = append(stale, b)
		}
	}
	if len(stale) == 0 {
		release()
		return 0, end, nil
	}

	// Stage write plans over the contiguous stale runs, IVs pre-seeded.
	plans, slots, err := e.stagePlans(stale)
	if err != nil {
		release()
		return 0, at, err
	}
	releasePlans := func() {
		for _, w := range plans {
			w.release()
		}
	}

	// Open under the old epoch, re-seal under the target, on the shared
	// datapath pool.
	plain := getBuf(len(stale) * int(bs))
	err = forBlocks(e.workers, int64(len(stale)), func(lo, hi int64) error {
		for k := lo; k < hi; k++ {
			b := stale[k]
			oldEpoch := binary.LittleEndian.Uint32(epochs[b*epochLen:])
			opener, err := e.ring.cryptorFor(oldEpoch)
			if err != nil {
				return err
			}
			blockIdx := uint64(objIdx*nb + b)
			dst := plain[k*bs : (k+1)*bs]
			var oldMeta []byte
			if metaLen > 0 {
				oldMeta = metas[b*metaLen : b*metaLen+sml]
			}
			if err := opener.open(dst, cipher[b*bs:(b+1)*bs], blockIdx, oldMeta); err != nil {
				return err
			}
			meta := slots[k].plan.metaDst(slots[k].local)
			if int64(len(meta)) > sml { // epoch-tagged slot
				binary.LittleEndian.PutUint32(meta[sml:], target)
				meta = meta[:sml]
			}
			if err := sealer.seal(slots[k].plan.cipherDst(slots[k].local), dst, blockIdx, meta); err != nil {
				return err
			}
		}
		return nil
	})
	putBuf(plain)
	release()
	if err != nil {
		releasePlans()
		return 0, at, err
	}
	end = e.chargeCrypto(end, 2*int64(len(stale))*bs)

	// One atomic transaction: every re-sealed run, plus the sidecar for
	// metadata-free schemes.
	var ops []rados.Op
	for _, w := range plans {
		ops = append(ops, w.ops()...)
	}
	dirtyAlloc := false
	if e.plan.trackAlloc {
		a, end2, err := e.loadAlloc(end, objIdx)
		if err != nil {
			releasePlans()
			return 0, at, err
		}
		end = end2
		for _, b := range stale {
			a.set(b, target)
		}
		dirtyAlloc = true
		ops = append(ops, rados.Op{Kind: rados.OpSetAttr, Key: []byte(allocAttr), Data: a.encode()})
	}
	end, err = e.commitObjectTxn(end, objIdx, ops, dirtyAlloc)
	releasePlans()
	if err != nil {
		return 0, at, err
	}
	return len(stale), end, nil
}

// planSlot locates one staged block inside a writePlan.
type planSlot struct {
	plan  *writePlan
	local int64
}

// stagePlans builds write plans over the contiguous runs of the given
// sorted object-relative blocks and scatters fresh IV randomness into
// every block's metadata slot. slots[i] is blocks[i]'s destination. The
// caller releases every returned plan; on error nothing is retained.
func (e *EncryptedImage) stagePlans(blocks []int64) ([]*writePlan, []planSlot, error) {
	slots := make([]planSlot, len(blocks))
	var plans []*writePlan
	for i := 0; i < len(blocks); {
		j := i
		for j+1 < len(blocks) && blocks[j+1] == blocks[j]+1 {
			j++
		}
		w := e.plan.newWritePlan(blocks[i], int64(j-i+1))
		plans = append(plans, w)
		for k := i; k <= j; k++ {
			slots[k] = planSlot{plan: w, local: int64(k - i)}
		}
		i = j + 1
	}
	if rl := e.proto.randLen(); rl > 0 {
		rbuf := getBuf(len(blocks) * rl)
		if _, err := rand.Read(rbuf); err != nil {
			for _, w := range plans {
				w.release()
			}
			putBuf(rbuf)
			return nil, nil, err
		}
		for k := range blocks {
			copy(slots[k].plan.metaDst(slots[k].local)[:rl], rbuf[k*rl:])
		}
		putBuf(rbuf)
	}
	return plans, slots, nil
}

// PresentRange reports, per block of the block-aligned range
// [off, off+length), whether the block was ever written in this image
// (snapID 0 = head), using the layout's cheapest presence probe — no
// ciphertext is fetched except under LayoutUnaligned, whose interleaved
// metadata cannot be addressed separately. The clone layer uses it to
// answer "would this range fall through to the parent?" without moving
// data.
func (e *EncryptedImage) PresentRange(at vtime.Time, off, length int64, snapID uint64) ([]bool, vtime.Time, error) {
	bs := e.opts.BlockSize
	if off%bs != 0 || length%bs != 0 || length < 0 {
		return nil, at, fmt.Errorf("%w: present off=%d len=%d block=%d", ErrAlignment, off, length, bs)
	}
	out := make([]bool, length/bs)
	if length == 0 {
		return out, at, nil
	}
	exts, err := e.img.Extents(off, length)
	if err != nil {
		return nil, at, err
	}
	probeOne := func(i int) (vtime.Time, error) {
		ext := exts[i]
		startBlock := ext.ObjOff / bs
		nb := ext.Length / bs
		metas := getBuf(int(nb * e.plan.metaLen))
		present := getBuf(int(nb))
		var raw []byte
		if e.plan.layout == LayoutUnaligned {
			raw = getBuf(int(e.plan.rawReadLen(nb)))
		}
		release := func() {
			putBuf(metas)
			putBuf(present)
			putBuf(raw)
		}
		defer release()
		res, end, err := e.img.Operate(at, ext.ObjIdx, snapID, e.plan.probeOps(startBlock, nb, raw, metas))
		if err != nil {
			return at, err
		}
		if err := e.plan.parseProbe(startBlock, nb, res, metas, present, nil); err != nil {
			return at, err
		}
		for b := int64(0); b < nb; b++ {
			out[ext.BufOff/bs+b] = present[b] != 0
		}
		return end, nil
	}
	end, err := fanOutExtents(at, len(exts), probeOne)
	if err != nil {
		return nil, at, err
	}
	return out, end, nil
}

// CopyupObject seals externally supplied plaintext into every block of
// one striping object that is absent in this image — the clone copyup /
// flatten primitive. It holds the object's exclusive lock across its
// probe-fetch-seal-commit cycle, so concurrent writes (shared lock)
// either land before the probe — and are skipped as already-owned — or
// after the commit; the same fencing discipline as RekeyObject. fetch is
// called once, under the lock, with the object-relative indices of the
// absent blocks and a plaintext buffer to fill (len(blocks) *
// BlockSize); keep[i] = false leaves blocks[i] a hole (the parent chain
// had no data either). fetch must not IO back into this image (the lock
// is held). All copied blocks seal under the current key epoch — sampled
// under the lock, so a concurrent rekey either re-seals them afterwards
// (it queues on the same lock) or already advanced the epoch this sample
// sees — and commit in one atomic transaction. Returns the number of
// blocks copied.
func (e *EncryptedImage) CopyupObject(at vtime.Time, objIdx int64,
	fetch func(at vtime.Time, blocks []int64, plain []byte) (keep []bool, end vtime.Time, err error),
) (int, vtime.Time, error) {
	bs := e.opts.BlockSize
	nbObj := e.plan.objBlocks()
	nb := nbObj
	// Clip to the image tail: the last striping object may extend past
	// the image size, and copyup must not materialize phantom blocks.
	if maxNb := (e.img.Size()+bs-1)/bs - objIdx*nbObj; maxNb < nb {
		nb = maxNb
	}
	if nb <= 0 {
		return 0, at, nil
	}
	lk := e.locks.of(objIdx)
	lk.Lock()
	defer lk.Unlock()
	epoch := e.ring.currentEpoch()
	sealer, err := e.ring.cryptorFor(epoch)
	if err != nil {
		return 0, at, err
	}

	// Probe which blocks the image already owns.
	metas := getBuf(int(nb * e.plan.metaLen))
	present := getBuf(int(nb))
	var raw []byte
	if e.plan.layout == LayoutUnaligned {
		raw = getBuf(int(e.plan.rawReadLen(nb)))
	}
	res, end, err := e.img.Operate(at, objIdx, 0, e.plan.probeOps(0, nb, raw, metas))
	if err == nil {
		err = e.plan.parseProbe(0, nb, res, metas, present, nil)
	}
	var absent []int64
	if err == nil {
		for b := int64(0); b < nb; b++ {
			if present[b] == 0 {
				absent = append(absent, b)
			}
		}
	}
	putBuf(metas)
	putBuf(present)
	putBuf(raw)
	if err != nil {
		return 0, at, err
	}
	if len(absent) == 0 {
		return 0, end, nil
	}

	plain := getBuf(len(absent) * int(bs))
	keep, end, err := fetch(end, absent, plain)
	if err != nil {
		putBuf(plain)
		return 0, at, err
	}
	// Compact to the kept blocks, moving plaintext down in place.
	kept := absent[:0]
	for i, b := range absent {
		if i >= len(keep) || !keep[i] {
			continue
		}
		if k := len(kept); k != i {
			copy(plain[int64(k)*bs:int64(k+1)*bs], plain[int64(i)*bs:int64(i+1)*bs])
		}
		kept = append(kept, b)
	}
	if len(kept) == 0 {
		putBuf(plain)
		return 0, end, nil
	}

	plans, slots, err := e.stagePlans(kept)
	if err != nil {
		putBuf(plain)
		return 0, at, err
	}
	releasePlans := func() {
		for _, w := range plans {
			w.release()
		}
	}
	sml := e.schemeMetaLen()
	err = forBlocks(e.workers, int64(len(kept)), func(lo, hi int64) error {
		for k := lo; k < hi; k++ {
			b := kept[k]
			blockIdx := uint64(objIdx*nbObj + b)
			meta := slots[k].plan.metaDst(slots[k].local)
			if int64(len(meta)) > sml { // epoch-tagged slot
				binary.LittleEndian.PutUint32(meta[sml:], epoch)
				meta = meta[:sml]
			}
			if err := sealer.seal(slots[k].plan.cipherDst(slots[k].local), plain[k*bs:(k+1)*bs], blockIdx, meta); err != nil {
				return err
			}
		}
		return nil
	})
	putBuf(plain)
	if err != nil {
		releasePlans()
		return 0, at, err
	}
	end = e.chargeCrypto(end, int64(len(kept))*bs)

	var ops []rados.Op
	for _, w := range plans {
		ops = append(ops, w.ops()...)
	}
	dirtyAlloc := false
	if e.plan.trackAlloc {
		a, end2, err := e.loadAlloc(end, objIdx)
		if err != nil {
			releasePlans()
			return 0, at, err
		}
		end = end2
		for _, b := range kept {
			a.set(b, epoch)
		}
		dirtyAlloc = true
		ops = append(ops, rados.Op{Kind: rados.OpSetAttr, Key: []byte(allocAttr), Data: a.encode()})
	}
	end, err = e.commitObjectTxn(end, objIdx, ops, dirtyAlloc)
	releasePlans()
	if err != nil {
		return 0, at, err
	}
	return len(kept), end, nil
}

// Discard crypto-erases the block-aligned range [off, off+length): the
// ciphertext region is overwritten with zeros and the per-block metadata
// punched (or the allocation bits cleared), in one atomic transaction
// per object. Afterwards the blocks read as holes — exact sparse reads
// now hold under every scheme, including the metadata-free ones, via the
// allocation sidecar — and the discarded ciphertext is unrecoverable
// with any retained key. Snapshot clones taken before the discard keep
// their (separately erasable, via DropEpoch) copies, as in RADOS.
func (e *EncryptedImage) Discard(at vtime.Time, off, length int64) (vtime.Time, error) {
	bs := e.opts.BlockSize
	if off%bs != 0 || length%bs != 0 || length < 0 {
		return at, fmt.Errorf("%w: discard off=%d len=%d block=%d", ErrAlignment, off, length, bs)
	}
	if length == 0 {
		return at, nil
	}
	exts, err := e.img.Extents(off, length)
	if err != nil {
		return at, err
	}

	discardOne := func(at vtime.Time, ext rbd.Extent) (vtime.Time, error) {
		start := ext.ObjOff / bs
		nbx := ext.Length / bs
		lk := e.locks.of(ext.ObjIdx)
		lk.Lock()
		defer lk.Unlock()

		dirtyAlloc := false
		var ops []rados.Op
		if e.plan.trackAlloc {
			a, end, err := e.loadAlloc(at, ext.ObjIdx)
			if err != nil {
				return at, err
			}
			at = end
			if !a.anyPresent(start, start+nbx) {
				// Nothing allocated in the range: already holes; do not
				// create the object just to zero it.
				return at, nil
			}
			for b := start; b < start+nbx; b++ {
				a.clearBlock(b)
			}
			dirtyAlloc = true
			dops, release := e.plan.discardOps(start, nbx)
			defer release()
			ops = append(dops, rados.Op{Kind: rados.OpSetAttr, Key: []byte(allocAttr), Data: a.encode()})
		} else {
			// Probe before punching: discarding a never-created object
			// must not materialize it (or move zero bytes) just to make
			// holes that already exist.
			res, end, err := e.img.Operate(at, ext.ObjIdx, 0, []rados.Op{{Kind: rados.OpStat}})
			if err != nil {
				return at, err
			}
			at = end
			if res[0].Status == rados.StatusNotFound {
				return at, nil
			}
			dops, release := e.plan.discardOps(start, nbx)
			defer release()
			ops = dops
		}
		return e.commitObjectTxn(at, ext.ObjIdx, ops, dirtyAlloc)
	}

	return fanOutExtents(at, len(exts), func(i int) (vtime.Time, error) {
		return discardOne(at, exts[i])
	})
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
