package vtime

import (
	"fmt"
	"sync"
	"time"
)

// Pacer is a virtual-time admission budget for background walkers (the
// online-rekey and clone-flatten sweeps): a token-bucket-shaped cap on
// how fast a walker may consume the cluster, expressed as an IOPS limit
// and a bytes/second limit, in the spirit of Ceph's osd_recovery_max_*
// knobs. It reuses the busy-until idea of Resource, but inverted: Admit
// delays the *start* of the next operation so that, over any interval,
// the walker issues at most IOPS operations and Bytes bytes per second
// of virtual time. Foreground IO never touches the pacer, so its only
// effect is to spread the walker's resource consumption out in time and
// bound the interference foreground latency percentiles see.
//
// A nil *Pacer is valid and free (every Admit returns the arrival time
// unchanged), so walkers can thread an optional pacer without branching.
// One Pacer may be shared by several walkers (e.g. a rekey and a flatten
// running on siblings): the budget then caps their combined rate.
type Pacer struct {
	mu      sync.Mutex
	next    Time     // earliest virtual start of the next admitted op
	opCost  Duration // 1/IOPS, charged per admitted operation
	perByte float64  // nanoseconds per byte of walker payload
	stall   Duration // cumulative admission delay handed to callers
}

// NewPacer builds a pacer capping admitted work at iops operations per
// second and bytesPerSec payload bytes per second of virtual time. A
// non-positive value leaves that dimension uncapped.
func NewPacer(iops, bytesPerSec float64) *Pacer {
	p := &Pacer{}
	if iops > 0 {
		p.opCost = Duration(float64(time.Second) / iops)
	}
	if bytesPerSec > 0 {
		p.perByte = PerByteOfBandwidth(bytesPerSec)
	}
	return p
}

// Admit schedules one walker operation moving n payload bytes, arriving
// at virtual time at, and returns the time the operation may start:
// max(at, the budget frontier). The frontier then advances by the
// operation's budget cost (opCost + n*perByte), so sustained admission
// converges to the configured rate while an idle pacer lets a fresh
// burst start immediately.
func (p *Pacer) Admit(at Time, n int64) Time {
	if p == nil {
		return at
	}
	p.mu.Lock()
	start := Max(at, p.next)
	p.stall += start.Sub(at)
	p.next = start.Add(p.opCost + Duration(float64(n)*p.perByte))
	p.mu.Unlock()
	return start
}

// Stall reports the cumulative virtual time Admit has delayed callers —
// how much of the walker's wall time was spent waiting on its own
// budget rather than doing work. Monotonic; walkers export it as a
// gauge (this package cannot import telemetry) so the attribution plane
// can separate "the walker is slow" from "the walker is throttled".
func (p *Pacer) Stall() Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stall
}

// Charge adds n payload bytes to the budget retroactively — the shape
// walkers need when an operation's true size is only known after it ran
// (a rekey step re-seals only the stale blocks it found). The cost is
// posted as debt against the frontier, delaying the next Admit.
func (p *Pacer) Charge(n int64) {
	if p == nil || n <= 0 {
		return
	}
	p.mu.Lock()
	p.next = p.next.Add(Duration(float64(n) * p.perByte))
	p.mu.Unlock()
}

// Debt reports how far the budget frontier sits beyond virtual time at
// — the delay the next Admit would incur. Zero means the walker is
// inside its budget (a fresh op starts immediately); a growing value
// means charged work is still being amortized. Walkers export it as a
// progress gauge so pacing pressure is observable.
func (p *Pacer) Debt(at Time) Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.next <= at {
		return 0
	}
	return p.next.Sub(at)
}

// String implements fmt.Stringer.
func (p *Pacer) String() string {
	if p == nil {
		return "pacer(free)"
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return fmt.Sprintf("pacer{opCost=%v perByte=%.3fns next=%d}", p.opCost, p.perByte, p.next)
}
