package vtime

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestResourceSerializes(t *testing.T) {
	r := NewResource("disk")
	// Two ops arriving at time 0 must serialize: completions 10 and 20.
	end1 := r.Use(0, 10)
	end2 := r.Use(0, 10)
	if end1 != 10 || end2 != 20 {
		t.Fatalf("got ends %d,%d want 10,20", end1, end2)
	}
	// An op arriving after the backlog drains starts at its arrival time.
	end3 := r.Use(100, 5)
	if end3 != 105 {
		t.Fatalf("got end %d want 105", end3)
	}
	ops, busy := r.Stats()
	if ops != 3 || busy != 25 {
		t.Fatalf("stats = %d,%v want 3,25ns", ops, busy)
	}
}

func TestResourceNilIsFree(t *testing.T) {
	var r *Resource
	if end := r.Use(42, time.Hour); end != 42 {
		t.Fatalf("nil resource should be free, got end %d", end)
	}
	if r.Name() != "<free>" {
		t.Fatalf("nil name = %q", r.Name())
	}
	if ops, busy := r.Stats(); ops != 0 || busy != 0 {
		t.Fatal("nil resource should have zero stats")
	}
	r.Reset() // must not panic
}

func TestResourceNegativeDurationClamped(t *testing.T) {
	r := NewResource("x")
	if end := r.Use(7, -5); end != 7 {
		t.Fatalf("negative duration should clamp to 0, end=%d", end)
	}
}

// Capacity conservation: no matter how ops interleave across goroutines,
// the busy time accumulated equals the sum of service durations, and the
// final busyUntil is at least that sum when all arrive at time 0.
func TestResourceCapacityConservation(t *testing.T) {
	r := NewResource("disk")
	const workers = 8
	const perWorker = 200
	const d = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Use(0, d)
			}
		}()
	}
	wg.Wait()
	ops, busy := r.Stats()
	if ops != workers*perWorker {
		t.Fatalf("ops = %d", ops)
	}
	want := Duration(workers * perWorker * d)
	if busy != want {
		t.Fatalf("busy = %v want %v", busy, want)
	}
	if r.BusyUntil() != Time(want) {
		t.Fatalf("busyUntil = %d want %d", r.BusyUntil(), want)
	}
}

func TestMultiResourceParallelism(t *testing.T) {
	m := NewMultiResource("nic", 4)
	// Four ops at time 0 run in parallel.
	for i := 0; i < 4; i++ {
		if end := m.Use(0, 10); end != 10 {
			t.Fatalf("op %d end = %d want 10", i, end)
		}
	}
	// The fifth queues behind one of them.
	if end := m.Use(0, 10); end != 20 {
		t.Fatalf("fifth op end = %d want 20", end)
	}
}

func TestMultiResourceNil(t *testing.T) {
	var m *MultiResource
	if end := m.Use(5, time.Minute); end != 5 {
		t.Fatal("nil multi-resource should be free")
	}
	m.Reset()
}

func TestMultiResourcePanicsOnZeroServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMultiResource("bad", 0)
}

func TestClockObserve(t *testing.T) {
	c := NewClock()
	c.Observe(100)
	c.Observe(50) // must not rewind
	if c.Now() != 100 {
		t.Fatalf("clock = %d want 100", c.Now())
	}
	c.Observe(200)
	if c.Now() != 200 {
		t.Fatalf("clock = %d want 200", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("reset failed")
	}
	var nilClock *Clock
	nilClock.Observe(5)
	if nilClock.Now() != 0 {
		t.Fatal("nil clock must discard")
	}
}

func TestLinearCost(t *testing.T) {
	c := LinearCost{Fixed: 100, PerByte: 0.5}
	if got := c.Of(0); got != 100 {
		t.Fatalf("Of(0) = %v", got)
	}
	if got := c.Of(1000); got != 600 {
		t.Fatalf("Of(1000) = %v want 600ns", got)
	}
}

func TestPerByteOfBandwidth(t *testing.T) {
	// 1 GB/s => 1 ns/byte.
	if got := PerByteOfBandwidth(1e9); got != 1.0 {
		t.Fatalf("1GB/s = %v ns/byte", got)
	}
	// 2 GB/s => 0.5 ns/byte; sub-nanosecond precision must survive.
	if got := PerByteOfBandwidth(2e9); got != 0.5 {
		t.Fatalf("2GB/s = %v ns/byte", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero bandwidth")
		}
	}()
	PerByteOfBandwidth(0)
}

func TestMaxHelpers(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Fatal("Max broken")
	}
	if MaxAll() != 0 {
		t.Fatal("MaxAll() should be 0")
	}
	if MaxAll(1, 9, 4) != 9 {
		t.Fatal("MaxAll broken")
	}
}

// Property: Use is monotone — an op never completes before it arrives nor
// before the previous completion on the same resource.
func TestResourceMonotoneProperty(t *testing.T) {
	r := NewResource("p")
	var lastEnd Time
	f := func(arrive uint32, dur uint16) bool {
		at := Time(arrive)
		end := r.Use(at, Duration(dur))
		ok := end >= at && end >= lastEnd && end == Max(at, lastEnd).Add(Duration(dur))
		lastEnd = end
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: time arithmetic round-trips.
func TestTimeArithmeticProperty(t *testing.T) {
	f := func(a int32, d int32) bool {
		t0 := Time(a)
		dd := Duration(d)
		return t0.Add(dd).Sub(t0) == dd
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
