// Package vtime provides a virtual-time accounting model for simulated
// hardware resources (disks, NICs, CPUs, databases).
//
// The model is deliberately simple — "busy-until" bookkeeping — rather than
// a full discrete-event simulator: an operation arriving at virtual time t
// at a resource with service duration d starts at max(t, busyUntil), and the
// resource's busyUntil advances to start+d. Over many operations this
// conserves resource capacity exactly (total busy time equals the sum of
// service times), which is the property bandwidth measurements depend on.
// Virtual timestamps travel with each request through the storage stack; an
// operation's completion time is the maximum over its dependency chain.
package vtime

import (
	"fmt"
	"sync"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation. The zero Time is the simulation epoch.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts directly
// to and from time.Duration.
type Duration = time.Duration

// Add returns the time t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MaxAll returns the latest of the given times, or 0 when none are given.
func MaxAll(ts ...Time) Time {
	var m Time
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

// Resource models a single-server resource processing work in FCFS order.
// A nil *Resource is valid and free: every Use completes instantly at its
// arrival time, so real (non-simulated) deployments can pass nil resources
// throughout the stack.
type Resource struct {
	name string

	mu        sync.Mutex
	busyUntil Time
	busyTotal Duration
	ops       int64
}

// NewResource returns a named single-server resource.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the resource's name, or "<free>" for a nil resource.
func (r *Resource) Name() string {
	if r == nil {
		return "<free>"
	}
	return r.name
}

// Use schedules work of duration d arriving at time at, and returns its
// completion time. For a nil receiver it returns at unchanged.
func (r *Resource) Use(at Time, d Duration) Time {
	if r == nil {
		return at
	}
	if d < 0 {
		d = 0
	}
	r.mu.Lock()
	start := Max(at, r.busyUntil)
	end := start.Add(d)
	r.busyUntil = end
	r.busyTotal += d
	r.ops++
	r.mu.Unlock()
	return end
}

// BusyUntil reports the time at which the resource becomes idle.
func (r *Resource) BusyUntil() Time {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.busyUntil
}

// Stats reports the number of operations served and the total busy time.
func (r *Resource) Stats() (ops int64, busy Duration) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ops, r.busyTotal
}

// Reset clears accumulated statistics and makes the resource idle from
// time 0. Resets are used between benchmark sweeps.
func (r *Resource) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.busyUntil, r.busyTotal, r.ops = 0, 0, 0
	r.mu.Unlock()
}

// String implements fmt.Stringer.
func (r *Resource) String() string {
	if r == nil {
		return "<free>"
	}
	ops, busy := r.Stats()
	return fmt.Sprintf("%s{ops=%d busy=%v}", r.name, ops, busy)
}

// MultiResource models a pool of identical servers (for example the lanes
// of a NIC or the channels of an NVMe device). Work arriving at time t is
// assigned to the server that can start it earliest. A nil *MultiResource
// is valid and free.
type MultiResource struct {
	name string

	mu        sync.Mutex
	busyUntil []Time
	busyTotal Duration
	ops       int64
}

// NewMultiResource returns a resource pool with n identical servers.
// n must be at least 1.
func NewMultiResource(name string, n int) *MultiResource {
	if n < 1 {
		panic("vtime: MultiResource needs at least one server")
	}
	return &MultiResource{name: name, busyUntil: make([]Time, n)}
}

// Use schedules work of duration d arriving at time at on the least-loaded
// server and returns its completion time.
func (m *MultiResource) Use(at Time, d Duration) Time {
	if m == nil {
		return at
	}
	if d < 0 {
		d = 0
	}
	m.mu.Lock()
	best := 0
	for i := 1; i < len(m.busyUntil); i++ {
		if m.busyUntil[i] < m.busyUntil[best] {
			best = i
		}
	}
	start := Max(at, m.busyUntil[best])
	end := start.Add(d)
	m.busyUntil[best] = end
	m.busyTotal += d
	m.ops++
	m.mu.Unlock()
	return end
}

// Stats reports the number of operations served and the total busy time
// summed over all servers.
func (m *MultiResource) Stats() (ops int64, busy Duration) {
	if m == nil {
		return 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops, m.busyTotal
}

// Reset clears statistics and idles every server from time 0.
func (m *MultiResource) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	for i := range m.busyUntil {
		m.busyUntil[i] = 0
	}
	m.busyTotal, m.ops = 0, 0
	m.mu.Unlock()
}

// Clock tracks the frontier of virtual time observed by a simulation run.
// Components report completion times to the clock; measurement code reads
// the high-water mark. A nil *Clock discards observations.
type Clock struct {
	mu  sync.Mutex
	now Time
}

// NewClock returns a clock at the simulation epoch.
func NewClock() *Clock { return &Clock{} }

// Observe advances the clock's high-water mark to t if t is later.
func (c *Clock) Observe(t Time) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if t > c.now {
		c.now = t
	}
	c.mu.Unlock()
}

// Now returns the latest observed virtual time.
func (c *Clock) Now() Time {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Reset rewinds the clock to the epoch.
func (c *Clock) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.now = 0
	c.mu.Unlock()
}

// LinearCost describes a service time of the form Fixed + PerByte*bytes.
// It is the ubiquitous cost shape for disks, links and CPU work in this
// simulation. PerByte is kept as floating-point nanoseconds because at
// multi-GB/s bandwidths the per-byte cost is well below one nanosecond.
type LinearCost struct {
	Fixed   Duration // per-operation setup cost
	PerByte float64  // nanoseconds per byte transferred or processed
}

// Of returns the service duration for an operation moving n bytes.
func (c LinearCost) Of(n int64) Duration {
	return c.Fixed + Duration(float64(n)*c.PerByte)
}

// PerByteOfBandwidth converts a bandwidth in bytes/second into a per-byte
// cost in nanoseconds. It panics on non-positive bandwidth.
func PerByteOfBandwidth(bytesPerSecond float64) float64 {
	if bytesPerSecond <= 0 {
		panic("vtime: bandwidth must be positive")
	}
	return float64(time.Second) / bytesPerSecond
}
