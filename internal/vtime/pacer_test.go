package vtime

import (
	"testing"
	"time"
)

func TestNilPacerIsFree(t *testing.T) {
	var p *Pacer
	if got := p.Admit(1234, 1<<20); got != 1234 {
		t.Fatalf("nil pacer delayed admission: %v", got)
	}
	p.Charge(1 << 30) // must not panic
}

func TestPacerIOPSCap(t *testing.T) {
	p := NewPacer(100, 0) // 100 ops/s -> 10ms per op
	var at Time
	for i := 0; i < 10; i++ {
		at = p.Admit(at, 0)
	}
	// The 10th op starts 9 op-slots after the first.
	if want := Time(9 * 10 * time.Millisecond); at != want {
		t.Fatalf("10th admission at %v, want %v", at, want)
	}
}

func TestPacerBandwidthCap(t *testing.T) {
	p := NewPacer(0, 1<<20) // 1 MiB/s
	start := p.Admit(0, 1<<20)
	if start != 0 {
		t.Fatalf("idle pacer delayed first op to %v", start)
	}
	// The second op waits out the first op's ~1s byte budget.
	next := p.Admit(0, 1)
	if d := time.Duration(next); d < 990*time.Millisecond || d > 1010*time.Millisecond {
		t.Fatalf("second admission at %v, want ~1s", d)
	}
}

func TestPacerChargePostsDebt(t *testing.T) {
	p := NewPacer(0, 1<<20)
	if got := p.Admit(0, 0); got != 0 {
		t.Fatalf("first admission delayed: %v", got)
	}
	p.Charge(1 << 19) // half a second of debt at 1 MiB/s
	next := p.Admit(0, 0)
	if d := time.Duration(next); d < 490*time.Millisecond || d > 510*time.Millisecond {
		t.Fatalf("post-charge admission at %v, want ~500ms", d)
	}
}

func TestPacerBurstAfterIdle(t *testing.T) {
	p := NewPacer(1000, 0)
	p.Admit(0, 0)
	// Arriving long after the frontier, the op starts immediately and no
	// credit accumulates beyond one op.
	late := Time(10 * time.Second)
	if got := p.Admit(late, 0); got != late {
		t.Fatalf("late arrival delayed to %v", got)
	}
	if got := p.Admit(late, 0); got != late.Add(time.Millisecond) {
		t.Fatalf("burst exceeded rate: next admission at %v", got)
	}
}
