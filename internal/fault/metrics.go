package fault

// metrics.go: one counter family for every fault the plan actually
// fired, labeled by kind. Handles are resolved at init so the hot
// hooks record with a single atomic add (see METRICS.md).

import "repro/internal/telemetry"

var (
	mInjVec = telemetry.NewCounterVec("fault_injections_total",
		"injected faults that fired, by kind", "kind")
	mInj  [numKinds]*telemetry.Counter
	mDown = mInjVec.With("osd-down")
)

func init() {
	for k := Kind(0); k < numKinds; k++ {
		mInj[k] = mInjVec.With(k.String())
	}
}

// InjectedCount returns the number of fired injections recorded for
// one kind since process start — the harness's "did anything actually
// fire" assertion surface.
func InjectedCount(k Kind) int64 { return mInj[k].Value() }

// DownCount returns the number of calls rejected inside crash windows.
func DownCount() int64 { return mDown.Value() }
