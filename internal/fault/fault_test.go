package fault

import (
	"errors"
	"testing"
	"time"

	"repro/internal/vtime"
)

// Same plan, same site: the decision stream replays bit for bit.
func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{Prob: map[Kind]float64{BitRot: 0.3, DropReply: 0.2}}
	a := NewPlan(42, cfg).Injector("disk/osd0/nvme0")
	b := NewPlan(42, cfg).Injector("disk/osd0/nvme0")
	for i := 0; i < 1000; i++ {
		if a.Hit(BitRot) != b.Hit(BitRot) || a.Hit(DropReply) != b.Hit(DropReply) {
			t.Fatalf("decision %d diverged between identical plans", i)
		}
		if a.Intn(100) != b.Intn(100) {
			t.Fatalf("draw %d diverged between identical plans", i)
		}
	}
}

// Different sites draw from independent streams: one site's activity
// never shifts another's decisions.
func TestInjectorSiteIndependence(t *testing.T) {
	cfg := Config{Prob: map[Kind]float64{BitRot: 0.5}}
	plan := NewPlan(7, cfg)

	// Reference stream for site B alone.
	ref := plan.Injector("b")
	var want []bool
	for i := 0; i < 200; i++ {
		want = append(want, ref.Hit(BitRot))
	}

	// Interleave heavy traffic on site A; B must be unaffected.
	a, b := plan.Injector("a"), plan.Injector("b")
	for i := 0; i < 200; i++ {
		for j := 0; j < 5; j++ {
			a.Hit(BitRot)
		}
		if got := b.Hit(BitRot); got != want[i] {
			t.Fatalf("site b decision %d shifted by site a traffic", i)
		}
	}
}

// Disabled kinds fire never and consume no draws, so removing one fault
// from a config replays the rest unchanged.
func TestDisabledKindConsumesNoDraw(t *testing.T) {
	full := NewPlan(3, Config{Prob: map[Kind]float64{BitRot: 0.4}}).Injector("s")
	mixed := NewPlan(3, Config{Prob: map[Kind]float64{BitRot: 0.4, TornWrite: 0}}).Injector("s")
	for i := 0; i < 500; i++ {
		if mixed.Hit(TornWrite) {
			t.Fatal("zero-probability kind fired")
		}
		if full.Hit(BitRot) != mixed.Hit(BitRot) {
			t.Fatalf("decision %d shifted by a disabled kind", i)
		}
	}
}

func TestDownWindows(t *testing.T) {
	in := NewPlan(1, Config{Down: []Window{{From: 100, To: 200}}}).Injector("osd1")
	for _, tc := range []struct {
		at   vtime.Time
		want bool
	}{{0, false}, {99, false}, {100, true}, {199, true}, {200, false}, {500, false}} {
		if got := in.Down(tc.at); got != tc.want {
			t.Errorf("Down(%d) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

// A nil injector is inert, so hooks can run unconditionally.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if in.Hit(BitRot) || in.Down(50) || in.PersistentRot() {
		t.Fatal("nil injector injected something")
	}
	if in.Delay() != 0 || in.Intn(10) != 0 || in.FlipBit(make([]byte, 8)) != -1 {
		t.Fatal("nil injector returned non-zero work")
	}
}

func TestErrorsWrapInjected(t *testing.T) {
	for _, err := range []error{ErrTornWrite, ErrReadFault, ErrReplyDropped, ErrConnReset, ErrOSDDown} {
		if !errors.Is(err, ErrInjected) {
			t.Errorf("%v does not wrap ErrInjected", err)
		}
	}
}

func TestFlipBitChangesExactlyOneBit(t *testing.T) {
	in := NewPlan(9, Config{}).Injector("s")
	buf := make([]byte, 64)
	idx := in.FlipBit(buf)
	if idx < 0 || idx >= len(buf) {
		t.Fatalf("byte index %d out of range", idx)
	}
	changed := 0
	for _, b := range buf {
		for ; b != 0; b &= b - 1 {
			changed++
		}
	}
	if changed != 1 {
		t.Fatalf("FlipBit changed %d bits, want 1", changed)
	}
}

func TestDelayDefault(t *testing.T) {
	if d := NewPlan(1, Config{}).Injector("s").Delay(); d != DefaultDelay {
		t.Fatalf("default delay = %v, want %v", d, DefaultDelay)
	}
	if d := NewPlan(1, Config{Delay: time.Millisecond}).Injector("s").Delay(); d != time.Millisecond {
		t.Fatalf("configured delay = %v, want 1ms", d)
	}
}

// Probability sanity: over many opportunities the empirical rate lands
// near the configured one (loose bounds; the stream is seeded).
func TestHitRate(t *testing.T) {
	in := NewPlan(11, Config{Prob: map[Kind]float64{ReadError: 0.25}}).Injector("s")
	hits := 0
	for i := 0; i < 4000; i++ {
		if in.Hit(ReadError) {
			hits++
		}
	}
	if hits < 800 || hits > 1200 {
		t.Fatalf("hit rate %d/4000, want ~1000", hits)
	}
}
