// Package fault is the deterministic fault-injection plan behind the
// chaos harness: a seeded description of which device and network
// failures fire, where, and when. The stack's simulated hardware
// (internal/simdisk, internal/msgr) exposes arming points that consume
// per-site Injectors; everything above them — blobstore, OSD, client,
// datapath — sees only the resulting errors, corrupted bytes, and
// latency, exactly as it would from real failing hardware.
//
// Determinism is the point. A Plan is a seed plus a Config; every site
// (one disk, one OSD endpoint) derives its own rand stream from
// seed⊕fnv(site), so the k-th decision at a given site is a pure
// function of the plan. A workload that issues operations in a
// deterministic order (single-queue fio, the walkers, any sequential
// test) therefore replays its failures exactly from the seed alone —
// which is what lets CI print a one-line reproducer instead of a
// shrug. Under concurrent queues the per-site decision sequences are
// still fixed; only their assignment to racing operations can vary
// with goroutine scheduling.
//
// Injected failures are distinguishable from genuine bugs: every error
// a fault hook returns wraps ErrInjected, so harnesses can tolerate
// exactly the failures they asked for and treat anything else as a
// defect.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/vtime"
)

// Kind enumerates the injectable failure modes.
type Kind uint8

const (
	// TornWrite persists only a prefix of a multi-sector disk write and
	// fails the command — the classic power-loss tear.
	TornWrite Kind = iota
	// BitRot flips one bit in a disk read's payload (transient), or in
	// the media itself when Config.PersistentRot is set (latent sector
	// corruption — what scrub exists to find).
	BitRot
	// ReadError fails a disk read loudly (unrecoverable read error).
	ReadError
	// LatencySpike stretches a disk command's completion time by
	// Config.Delay without failing it.
	LatencySpike
	// DropReply executes the request on the server but loses the reply:
	// the client sees an error for work that actually happened.
	DropReply
	// DelayReply stretches a reply's delivery by Config.Delay.
	DelayReply
	// DupReply delivers the reply twice; the duplicate is charged to the
	// wire but otherwise discarded by the caller.
	DupReply
	// ConnReset fails the call before the request reaches the server.
	ConnReset
	numKinds
)

var kindNames = [numKinds]string{
	"torn-write", "bit-rot", "read-error", "latency-spike",
	"drop-reply", "delay-reply", "dup-reply", "conn-reset",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("fault.Kind(%d)", int(k))
}

// ErrInjected is the root of every error produced by an armed fault
// hook. Harness code matches it with errors.Is to separate tolerated,
// planned failures from real defects.
var ErrInjected = errors.New("fault: injected")

// The specific injected failures, each wrapping ErrInjected.
var (
	ErrTornWrite    = fmt.Errorf("%w: torn write (power lost mid-command)", ErrInjected)
	ErrReadFault    = fmt.Errorf("%w: unrecoverable read error", ErrInjected)
	ErrReplyDropped = fmt.Errorf("%w: reply dropped", ErrInjected)
	ErrConnReset    = fmt.Errorf("%w: connection reset", ErrInjected)
	ErrOSDDown      = fmt.Errorf("%w: osd down", ErrInjected)
)

// Window is a half-open span of virtual time [From, To).
type Window struct {
	From, To vtime.Time
}

func (w Window) contains(at vtime.Time) bool { return at >= w.From && at < w.To }

// DefaultDelay is the latency-spike / delayed-reply magnitude when
// Config.Delay is zero — a few multiples of a normal device command.
const DefaultDelay = 2 * time.Millisecond

// Config sets the per-operation firing probabilities and shapes of a
// plan's faults. The zero Config injects nothing.
type Config struct {
	// Prob maps each fault kind to its per-opportunity firing
	// probability in [0, 1]. Absent kinds never fire.
	Prob map[Kind]float64
	// Delay is the magnitude of LatencySpike and DelayReply faults
	// (DefaultDelay when zero).
	Delay time.Duration
	// PersistentRot makes BitRot scribble the media instead of the
	// in-flight read buffer, so the corruption survives until something
	// rewrites the sector — the latent-sector-error model scrub repairs.
	PersistentRot bool
	// Down lists virtual-time windows during which the site is dead:
	// every messenger call arriving inside a window fails with
	// ErrOSDDown, and calls after the window succeed again (an OSD
	// crash/restart cycle with its store intact).
	Down []Window
}

// prob returns the configured probability for k, clamped to [0, 1].
func (c Config) prob(k Kind) float64 {
	p := c.Prob[k]
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Plan is a seeded, replayable fault schedule. The zero value is not
// usable; build one with NewPlan.
type Plan struct {
	seed int64
	cfg  Config
}

// NewPlan binds a seed to a fault configuration.
func NewPlan(seed int64, cfg Config) *Plan {
	if cfg.Delay <= 0 {
		cfg.Delay = DefaultDelay
	}
	return &Plan{seed: seed, cfg: cfg}
}

// Seed returns the plan's seed — what a failing harness prints so the
// exact failure schedule can be replayed.
func (p *Plan) Seed() int64 { return p.seed }

// Injector derives the arming point for one site (a disk, an OSD
// messenger endpoint). The same plan and site always yield the same
// decision stream regardless of what other sites do.
func (p *Plan) Injector(site string) *Injector {
	return p.InjectorWith(site, p.cfg)
}

// InjectorWith is Injector with a site-specific Config override — how a
// harness crashes one OSD while the rest of the cluster only drops the
// occasional reply. Determinism is unaffected: the rand stream depends
// only on the plan seed and the site name.
func (p *Plan) InjectorWith(site string, cfg Config) *Injector {
	if cfg.Delay <= 0 {
		cfg.Delay = DefaultDelay
	}
	h := fnv.New64a()
	h.Write([]byte(site))
	seed := p.seed ^ int64(h.Sum64())
	return &Injector{
		site: site,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Injector is one site's armed decision stream. All methods are safe
// for concurrent use and nil-safe: a nil Injector injects nothing,
// so hooks need no armed/disarmed branch.
type Injector struct {
	site string
	cfg  Config

	mu  sync.Mutex
	rng *rand.Rand
}

// Site returns the site name the injector was derived for.
func (in *Injector) Site() string {
	if in == nil {
		return ""
	}
	return in.site
}

// Hit reports whether fault k fires at this opportunity, consuming one
// draw from the site's decision stream only when k has a nonzero
// probability (so disabling one fault kind does not shift the others'
// decisions). A firing is counted in fault_injections_total.
func (in *Injector) Hit(k Kind) bool {
	if in == nil {
		return false
	}
	p := in.cfg.prob(k)
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	hit := in.rng.Float64() < p
	in.mu.Unlock()
	if hit {
		mInj[k].Inc()
	}
	return hit
}

// HitAt is Hit stamped with the virtual time of the opportunity: a
// firing is additionally journalled as a fault-fired event at `at`, so
// the health plane's event timeline shows when each fault landed. The
// arming points (simdisk, msgr) use this form; Hit remains for callers
// without a timestamp in hand. Alloc-free: the site name and the kind's
// String are retained/static.
func (in *Injector) HitAt(at vtime.Time, k Kind) bool {
	if !in.Hit(k) {
		return false
	}
	telemetry.Log.Append(at, telemetry.EventFaultFired, in.site, k.String(), 1)
	return true
}

// Delay returns the configured latency-spike magnitude.
func (in *Injector) Delay() time.Duration {
	if in == nil {
		return 0
	}
	return in.cfg.Delay
}

// PersistentRot reports whether BitRot corrupts the media rather than
// the in-flight buffer.
func (in *Injector) PersistentRot() bool {
	return in != nil && in.cfg.PersistentRot
}

// Down reports whether the site is inside a crash window at virtual
// time at. Each rejected call is counted under the osd-down label.
func (in *Injector) Down(at vtime.Time) bool {
	if in == nil {
		return false
	}
	for _, w := range in.cfg.Down {
		if w.contains(at) {
			mDown.Inc()
			telemetry.Log.Append(at, telemetry.EventFaultFired, in.site, "osd-down", 1)
			return true
		}
	}
	return false
}

// Intn draws a uniform int in [0, n) from the site's decision stream —
// the tear point of a torn write, the target of a bit flip.
func (in *Injector) Intn(n int) int {
	if in == nil || n <= 1 {
		return 0
	}
	in.mu.Lock()
	v := in.rng.Intn(n)
	in.mu.Unlock()
	return v
}

// FlipBit flips one uniformly chosen bit of p in place and returns the
// affected byte index (-1 for an empty buffer).
func (in *Injector) FlipBit(p []byte) int {
	if in == nil || len(p) == 0 {
		return -1
	}
	in.mu.Lock()
	bit := in.rng.Intn(len(p) * 8)
	in.mu.Unlock()
	p[bit/8] ^= 1 << (bit % 8)
	return bit / 8
}
