package bench

import (
	"strings"
	"testing"

	"repro/internal/rados"
	"repro/internal/simdisk"
)

func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.IOSizesKB = []int{4, 64}
	cfg.ImageBytes = 64 << 20
	cfg.OpsBudgetBytes = 2 << 20
	cfg.MinOps = 32
	cfg.MaxOps = 64
	cfg.Cluster = func() rados.ClusterConfig {
		c := rados.DefaultClusterConfig()
		c.DisksPerOSD = 2
		c.DiskSectors = (1 << 30) / simdisk.SectorSize
		c.PGNum = 16
		c.EphemeralData = true
		c.Blob.KVBytes = 256 << 20
		c.Blob.KV.WALBytes = 16 << 20
		return c
	}
	cfg.Schemes = PaperSchemes()[:2] // LUKS2 + Unaligned keeps it quick
	return cfg
}

func TestSweepProducesAllPoints(t *testing.T) {
	cfg := tinyConfig()
	var progressLines int
	reads, writes, err := Sweep(cfg, func(string) { progressLines++ })
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Series{reads, writes} {
		for _, scheme := range s.Schemes {
			for _, kb := range s.Sizes {
				p := s.Points[scheme][kb]
				if p.MBps <= 0 || p.Ops <= 0 {
					t.Fatalf("%s/%s/%dK missing: %+v", s.Pattern, scheme, kb, p)
				}
			}
		}
	}
	if progressLines == 0 {
		t.Fatal("no progress reported")
	}
}

func TestOverheadMath(t *testing.T) {
	s := &Series{
		Pattern: "randwrite",
		Sizes:   []int{4},
		Schemes: []string{"LUKS2", "X"},
		Points: map[string]map[int]Point{
			"LUKS2": {4: {MBps: 100}},
			"X":     {4: {MBps: 80}},
		},
	}
	ov := Overhead(s, "LUKS2")
	if got := ov["X"][4]; got < 0.199 || got > 0.201 {
		t.Fatalf("overhead = %v want 0.2", got)
	}
	if _, ok := ov["LUKS2"]; ok {
		t.Fatal("baseline must not appear in overhead table")
	}
	// Missing baseline yields an empty result, not a panic.
	if got := Overhead(s, "nope"); len(got) != 0 {
		t.Fatal("unknown baseline should yield empty map")
	}
}

func TestFormatters(t *testing.T) {
	s := &Series{
		Pattern: "randread",
		Sizes:   []int{4, 64},
		Schemes: []string{"LUKS2", "OMAP"},
		Points: map[string]map[int]Point{
			"LUKS2": {4: {MBps: 100.5}, 64: {MBps: 900}},
			"OMAP":  {4: {MBps: 90}, 64: {MBps: 800}},
		},
	}
	table := FormatSeries("Fig 3a", s)
	for _, want := range []string{"Fig 3a", "LUKS2", "OMAP", "100.5", "4 KiB", "64 KiB"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	ov := FormatOverhead("Fig 4", s, "LUKS2")
	if !strings.Contains(ov, "10.4%") && !strings.Contains(ov, "10.5%") {
		t.Fatalf("overhead table wrong:\n%s", ov)
	}
	csv := CSV(s)
	if !strings.Contains(csv, "randread,LUKS2,4,100.50") {
		t.Fatalf("csv wrong:\n%s", csv)
	}
	sect := SectorTable()
	if !strings.Contains(sect, "4 KiB") || !strings.Contains(sect, "Object end") {
		t.Fatalf("sector table wrong:\n%s", sect)
	}
}

func TestSweepRejectsEmpty(t *testing.T) {
	if _, _, err := Sweep(Config{}, nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
}
