// Package bench regenerates the paper's evaluation artifacts: Fig. 3a
// (random read bandwidth), Fig. 3b (random write bandwidth), Fig. 4
// (write overhead vs the LUKS2 baseline), the §3.3 in-text sector-count
// table, and the ablations (dm-integrity journal, cipher microbenches
// are in the root testing.B benches).
//
// Each scheme gets a fresh simulated cluster mirroring §3.2 (3 OSD
// nodes, 9 NVMe disks each, 3-way replication, 4 MB objects, 4 KiB
// encryption blocks), a preconditioned image, and a QD-32 fio sweep over
// IO sizes 4 KiB – 4 MiB. Bandwidth is virtual-time bandwidth: the
// real engines run, the devices and links are cost models.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/simdisk"
	"repro/internal/vtime"
)

// SchemeSpec names one curve in the figures.
type SchemeSpec struct {
	Name   string
	Scheme core.Scheme
	Layout core.Layout
}

// PaperSchemes returns the four curves of Fig. 3 in paper order.
func PaperSchemes() []SchemeSpec {
	return []SchemeSpec{
		{Name: "LUKS2", Scheme: core.SchemeLUKS2, Layout: core.LayoutNone},
		{Name: "Unaligned", Scheme: core.SchemeXTSRand, Layout: core.LayoutUnaligned},
		{Name: "Object end", Scheme: core.SchemeXTSRand, Layout: core.LayoutObjectEnd},
		{Name: "OMAP", Scheme: core.SchemeXTSRand, Layout: core.LayoutOMAP},
	}
}

// ExtensionSchemes returns the future-work schemes (§3.1: integrity via
// AES-GCM, wide-block EME2) measured with the best layout.
func ExtensionSchemes() []SchemeSpec {
	return []SchemeSpec{
		{Name: "LUKS2", Scheme: core.SchemeLUKS2, Layout: core.LayoutNone},
		{Name: "GCM object end", Scheme: core.SchemeGCM, Layout: core.LayoutObjectEnd},
		{Name: "EME2 det", Scheme: core.SchemeEME2Det, Layout: core.LayoutNone},
		{Name: "EME2 object end", Scheme: core.SchemeEME2Rand, Layout: core.LayoutObjectEnd},
	}
}

// PaperIOSizesKB are the x-axis points of Fig. 3/4.
var PaperIOSizesKB = []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// Config sizes a sweep.
type Config struct {
	IOSizesKB  []int
	Schemes    []SchemeSpec
	ImageBytes int64
	QueueDepth int
	// OpsBudgetBytes bounds the bytes moved per point; ops per point is
	// clamp(OpsBudgetBytes/bs, MinOps, MaxOps).
	OpsBudgetBytes int64
	MinOps, MaxOps int
	Seed           int64
	Cluster        func() rados.ClusterConfig
	// Cores is the real parallelism of the client seal/open datapath
	// (core.Options.ClientCores); 0 uses the GOMAXPROCS default, 1
	// forces the serial pipeline. The virtual-time model is unaffected.
	Cores int
}

// DefaultConfig returns a laptop-scale sweep that preserves the paper's
// shapes (the paper used a 64 GiB image; memory limits favor smaller).
func DefaultConfig() Config {
	return Config{
		IOSizesKB:      PaperIOSizesKB,
		Schemes:        PaperSchemes(),
		ImageBytes:     1 << 30,
		QueueDepth:     32,
		OpsBudgetBytes: 128 << 20,
		MinOps:         160,
		MaxOps:         1600,
		Seed:           1,
		Cluster:        PaperCluster,
	}
}

// PaperCluster mirrors §3.2 with ephemeral data areas (cost-only) so the
// sweep does not hold the image bytes in RAM.
func PaperCluster() rados.ClusterConfig {
	cfg := rados.DefaultClusterConfig()
	cfg.EphemeralData = true
	return cfg
}

// Point is one measured (scheme, size, direction).
type Point struct {
	Scheme  string
	KB      int
	Pattern string
	MBps    float64
	IOPS    float64
	// Latency percentiles over the run's merged ops, in microseconds of
	// virtual time (fio.Result.Latencies).
	P50Micros float64
	P95Micros float64
	P99Micros float64
	Ops       int
	// RealMBps is wall-clock bandwidth through the client datapath
	// (real-CPU mode) — the figure the parallel pipeline accelerates.
	RealMBps float64
	// EffQD is the Little's-law concurrency the engine sustained
	// (fio.Result.EffectiveQD); a value sagging under the configured
	// depth means admission stalls, a regression the per-op engine
	// removed on the wall-clock side (see fio.Run's before/after note —
	// virtual EQD was already full under the wave gate, the convoy was
	// real-time and shows up in RealMBps).
	EffQD float64
}

// Series maps scheme name -> size -> point, for one direction.
type Series struct {
	Pattern string
	Sizes   []int
	Schemes []string
	Points  map[string]map[int]Point
}

func newSeries(pattern string, cfg Config) *Series {
	s := &Series{Pattern: pattern, Sizes: cfg.IOSizesKB, Points: map[string]map[int]Point{}}
	for _, sc := range cfg.Schemes {
		s.Schemes = append(s.Schemes, sc.Name)
		s.Points[sc.Name] = map[int]Point{}
	}
	return s
}

// Sweep runs the full read+write sweep and returns (fig3a, fig3b).
// progress, when non-nil, receives one line per measured point.
func Sweep(cfg Config, progress func(string)) (*Series, *Series, error) {
	if len(cfg.IOSizesKB) == 0 || len(cfg.Schemes) == 0 {
		return nil, nil, fmt.Errorf("bench: empty sweep")
	}
	reads := newSeries("randread", cfg)
	writes := newSeries("randwrite", cfg)

	for _, spec := range cfg.Schemes {
		if err := sweepScheme(cfg, spec, reads, writes, progress); err != nil {
			return nil, nil, fmt.Errorf("bench: scheme %s: %w", spec.Name, err)
		}
	}
	return reads, writes, nil
}

// timedRun wraps fio.Run with the wall-clock measurement that the
// simulation packages are not allowed to take themselves (vetrepo's
// vtimeonly analyzer): fio reports virtual time, the harness stamps
// Result.WallTime.
func timedRun(spec fio.Spec, target fio.Target, start vtime.Time) (fio.Result, error) {
	wallStart := time.Now()
	res, err := fio.Run(spec, target, start)
	res.WallTime = time.Since(wallStart)
	return res, err
}

func sweepScheme(cfg Config, spec SchemeSpec, reads, writes *Series, progress func(string)) error {
	cluster, err := rados.NewCluster(cfg.Cluster())
	if err != nil {
		return err
	}
	defer cluster.Close()
	client := cluster.NewClient("bench-client")

	if _, err := rbd.Create(0, client, "rbd", "bench", cfg.ImageBytes); err != nil {
		return err
	}
	img, _, err := rbd.Open(0, client, "rbd", "bench")
	if err != nil {
		return err
	}
	if _, err := core.Format(0, img, []byte("bench"), core.Options{Scheme: spec.Scheme, Layout: spec.Layout}); err != nil {
		return err
	}
	enc, _, err := core.Load(0, img, []byte("bench"))
	if err != nil {
		return err
	}
	if cfg.Cores > 0 {
		enc.SetParallelism(cfg.Cores)
	}

	// The paper measures a full image: precondition once per scheme.
	now, err := fio.Precondition(enc, 0, core.DefaultBlockSize, 0)
	if err != nil {
		return fmt.Errorf("precondition: %w", err)
	}
	if progress != nil {
		progress(fmt.Sprintf("%-12s preconditioned %d MiB (virtual %v)", spec.Name, cfg.ImageBytes>>20, now))
	}

	for _, kb := range cfg.IOSizesKB {
		bs := int64(kb) << 10
		ops := int(cfg.OpsBudgetBytes / bs)
		if ops < cfg.MinOps {
			ops = cfg.MinOps
		}
		if ops > cfg.MaxOps {
			ops = cfg.MaxOps
		}
		for _, pattern := range []fio.Pattern{fio.RandWrite, fio.RandRead} {
			res, err := timedRun(fio.Spec{
				Pattern:    pattern,
				BlockSize:  bs,
				QueueDepth: cfg.QueueDepth,
				TotalOps:   ops,
				Seed:       cfg.Seed + int64(kb),
			}, enc, now)
			if err != nil {
				return fmt.Errorf("%s bs=%dK: %w", pattern, kb, err)
			}
			now = res.End
			p := Point{
				Scheme:    spec.Name,
				KB:        kb,
				Pattern:   pattern.String(),
				MBps:      res.MBps(),
				IOPS:      res.IOPS(),
				P50Micros: float64(res.Latencies.P50.Microseconds()),
				P95Micros: float64(res.Latencies.P95.Microseconds()),
				P99Micros: float64(res.Latencies.P99.Microseconds()),
				Ops:       res.Ops,
				RealMBps:  res.WallMBps(),
				EffQD:     res.EffectiveQD(),
			}
			if pattern.Reads() {
				reads.Points[spec.Name][kb] = p
			} else {
				writes.Points[spec.Name][kb] = p
			}
			if progress != nil {
				progress(fmt.Sprintf("%-12s %-9s %5d KiB  %8.1f MB/s  p50=%v p95=%v p99=%v  (%d ops, wall %v, real %.0f MB/s, eqd %.1f/%d)",
					spec.Name, pattern, kb, p.MBps,
					res.Latencies.P50.Round(time.Microsecond), res.Latencies.P95.Round(time.Microsecond), res.Latencies.P99.Round(time.Microsecond),
					res.Ops, res.WallTime.Round(1e6), p.RealMBps, p.EffQD, cfg.QueueDepth))
			}
		}
	}
	_ = simdisk.Stats{} // keep import for future per-point device stats
	_ = vtime.Time(0)
	return nil
}

// Overhead computes Fig. 4: per-scheme slowdown vs the named baseline,
// as a fraction in [0,1] (1 - scheme/baseline); negative values clamp at
// 0 within noise.
func Overhead(s *Series, baseline string) map[string]map[int]float64 {
	out := map[string]map[int]float64{}
	base, ok := s.Points[baseline]
	if !ok {
		return out
	}
	for scheme, pts := range s.Points {
		if scheme == baseline {
			continue
		}
		out[scheme] = map[int]float64{}
		for kb, p := range pts {
			b := base[kb].MBps
			if b <= 0 {
				continue
			}
			ov := 1 - p.MBps/b
			out[scheme][kb] = ov
		}
	}
	return out
}

// FormatSeries renders a paper-style bandwidth table.
func FormatSeries(title string, s *Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (MB/s, QD32)\n", title)
	fmt.Fprintf(&b, "%-10s", "IO size")
	for _, name := range s.Schemes {
		fmt.Fprintf(&b, "%16s", name)
	}
	b.WriteByte('\n')
	for _, kb := range s.Sizes {
		fmt.Fprintf(&b, "%6d KiB", kb)
		for _, name := range s.Schemes {
			fmt.Fprintf(&b, "%16.1f", s.Points[name][kb].MBps)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatOverhead renders the Fig. 4 style overhead table (percent,
// lower is better).
func FormatOverhead(title string, s *Series, baseline string) string {
	ov := Overhead(s, baseline)
	names := make([]string, 0, len(ov))
	for _, n := range s.Schemes {
		if n != baseline {
			names = append(names, n)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%% slower than %s; lower is better)\n", title, baseline)
	fmt.Fprintf(&b, "%-10s", "IO size")
	for _, n := range names {
		fmt.Fprintf(&b, "%16s", n)
	}
	b.WriteByte('\n')
	for _, kb := range s.Sizes {
		fmt.Fprintf(&b, "%6d KiB", kb)
		for _, n := range names {
			fmt.Fprintf(&b, "%15.1f%%", 100*ov[n][kb])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders a series as comma-separated values.
func CSV(s *Series) string {
	var b strings.Builder
	b.WriteString("pattern,scheme,kb,mbps,iops,p50_us,p95_us,p99_us,ops,real_mbps\n")
	names := append([]string(nil), s.Schemes...)
	sort.Strings(names)
	for _, name := range names {
		for _, kb := range s.Sizes {
			p := s.Points[name][kb]
			fmt.Fprintf(&b, "%s,%s,%d,%.2f,%.1f,%.1f,%.1f,%.1f,%d,%.2f\n",
				s.Pattern, name, kb, p.MBps, p.IOPS, p.P50Micros, p.P95Micros, p.P99Micros, p.Ops, p.RealMBps)
		}
	}
	return b.String()
}

// SectorTable renders the §3.3 analytic sector-count comparison.
func SectorTable() string {
	var b strings.Builder
	b.WriteString("Theoretical device sectors touched per IO (4 KiB sectors, 16 B IVs; §3.3)\n")
	fmt.Fprintf(&b, "%-10s%14s%14s%14s%14s\n", "IO size", "Baseline", "Unaligned", "Object end", "OMAP")
	for _, kb := range PaperIOSizesKB {
		io := int64(kb) << 10
		fmt.Fprintf(&b, "%6d KiB%14d%14d%14d%14d\n", kb,
			core.SectorCount(core.LayoutNone, io, 4096, 16),
			core.SectorCount(core.LayoutUnaligned, io, 4096, 16),
			core.SectorCount(core.LayoutObjectEnd, io, 4096, 16),
			core.SectorCount(core.LayoutOMAP, io, 4096, 16))
	}
	return b.String()
}
