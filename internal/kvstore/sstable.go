package kvstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/vtime"
)

// File is the byte-granular, virtual-time-charged device view the store
// persists through. *simdisk.Partition satisfies it.
type File interface {
	ReadAt(at vtime.Time, p []byte, off int64) (vtime.Time, error)
	WriteAt(at vtime.Time, p []byte, off int64) (vtime.Time, error)
	Size() int64
}

// ErrCorrupt reports an on-media structure that failed validation.
var ErrCorrupt = errors.New("kvstore: corrupt structure")

const (
	tableMagic    = 0x53535442 // "SSTB"
	tableVersion  = 1
	footerSize    = 48
	maxEntryKey   = 1 << 16
	maxEntryValue = 1 << 30
)

// cursor threads virtual time through a chain of dependent media reads.
type cursor struct{ at vtime.Time }

func (c *cursor) advance(t vtime.Time) {
	if t > c.at {
		c.at = t
	}
}

// ---- entry encoding (shared by WAL and SSTable blocks) ----

func encodedEntrySize(e memEntry) int { return 1 + 2 + 4 + len(e.key) + len(e.value) }

func appendEntry(buf []byte, e memEntry) []byte {
	buf = append(buf, byte(e.kind))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(e.key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.value)))
	buf = append(buf, e.key...)
	buf = append(buf, e.value...)
	return buf
}

func decodeEntry(b []byte) (e memEntry, n int, err error) {
	if len(b) < 7 {
		return e, 0, fmt.Errorf("%w: truncated entry header", ErrCorrupt)
	}
	e.kind = entryKind(b[0])
	if e.kind != kindPut && e.kind != kindDelete {
		return e, 0, fmt.Errorf("%w: bad entry kind %d", ErrCorrupt, b[0])
	}
	klen := int(binary.LittleEndian.Uint16(b[1:3]))
	vlen := int(binary.LittleEndian.Uint32(b[3:7]))
	if vlen > maxEntryValue {
		return e, 0, fmt.Errorf("%w: oversized value", ErrCorrupt)
	}
	n = 7 + klen + vlen
	if len(b) < n {
		return e, 0, fmt.Errorf("%w: truncated entry body", ErrCorrupt)
	}
	e.key = append([]byte(nil), b[7:7+klen]...)
	e.value = append([]byte(nil), b[7+klen:n]...)
	return e, n, nil
}

// ---- table building ----

type blockMeta struct {
	off      int64 // within the segment
	length   int32
	firstKey []byte
}

// table is an immutable sorted run. Index and bloom filter live in memory
// (RocksDB keeps them in block cache); data blocks are read from media on
// demand so lookups and scans are charged to the device model.
type table struct {
	file       File
	segOff     int64
	segLen     int64
	index      []blockMeta
	bloom      *bloomFilter
	minKey     []byte
	maxKey     []byte
	numEntries int64
}

// buildTable serializes sorted entries (no duplicate keys) into segment
// bytes and returns the parsed table (with segOff unset; the store fills
// it after allocating a segment).
func buildTable(entries []memEntry, blockBytes, bloomBitsPerKey int) (*table, []byte) {
	if blockBytes <= 0 {
		blockBytes = 4096
	}
	t := &table{numEntries: int64(len(entries))}
	bloom := newBloom(len(entries), bloomBitsPerKey)
	var seg []byte
	var blockBuf []byte
	var blockCount uint32
	var blockFirst []byte

	flushBlock := func() {
		if blockCount == 0 {
			return
		}
		hdr := binary.LittleEndian.AppendUint32(nil, blockCount)
		block := append(hdr, blockBuf...)
		t.index = append(t.index, blockMeta{
			off:      int64(len(seg)),
			length:   int32(len(block)),
			firstKey: blockFirst,
		})
		seg = append(seg, block...)
		blockBuf, blockCount, blockFirst = nil, 0, nil
	}

	for _, e := range entries {
		bloom.add(e.key)
		if blockCount == 0 {
			blockFirst = append([]byte(nil), e.key...)
		}
		blockBuf = appendEntry(blockBuf, e)
		blockCount++
		if len(blockBuf) >= blockBytes {
			flushBlock()
		}
	}
	flushBlock()

	if len(entries) > 0 {
		t.minKey = append([]byte(nil), entries[0].key...)
		t.maxKey = append([]byte(nil), entries[len(entries)-1].key...)
	}
	t.bloom = bloom

	// Index section.
	indexOff := int64(len(seg))
	var idx []byte
	idx = binary.LittleEndian.AppendUint16(idx, uint16(len(t.minKey)))
	idx = append(idx, t.minKey...)
	idx = binary.LittleEndian.AppendUint16(idx, uint16(len(t.maxKey)))
	idx = append(idx, t.maxKey...)
	idx = binary.LittleEndian.AppendUint32(idx, uint32(len(t.index)))
	for _, bm := range t.index {
		idx = binary.LittleEndian.AppendUint64(idx, uint64(bm.off))
		idx = binary.LittleEndian.AppendUint32(idx, uint32(bm.length))
		idx = binary.LittleEndian.AppendUint16(idx, uint16(len(bm.firstKey)))
		idx = append(idx, bm.firstKey...)
	}
	seg = append(seg, idx...)

	bloomOff := int64(len(seg))
	bl := bloom.marshal()
	seg = append(seg, bl...)

	// Footer.
	footer := make([]byte, 0, footerSize)
	footer = binary.LittleEndian.AppendUint32(footer, tableMagic)
	footer = binary.LittleEndian.AppendUint32(footer, tableVersion)
	footer = binary.LittleEndian.AppendUint64(footer, uint64(indexOff))
	footer = binary.LittleEndian.AppendUint32(footer, uint32(len(idx)))
	footer = binary.LittleEndian.AppendUint64(footer, uint64(bloomOff))
	footer = binary.LittleEndian.AppendUint32(footer, uint32(len(bl)))
	footer = binary.LittleEndian.AppendUint64(footer, uint64(len(entries)))
	footer = binary.LittleEndian.AppendUint32(footer, crc32.ChecksumIEEE(footer))
	footer = footer[:footerSize] // 44 used + zero pad to 48
	for len(footer) < footerSize {
		footer = append(footer, 0)
	}
	seg = append(seg, footer...)
	t.segLen = int64(len(seg))
	return t, seg
}

// openTable parses a table whose segment occupies [segOff, segOff+segLen)
// of file, reading the footer, index and bloom filter from media.
func openTable(c *cursor, file File, segOff, segLen int64) (*table, error) {
	if segLen < footerSize {
		return nil, fmt.Errorf("%w: segment too small", ErrCorrupt)
	}
	foot := make([]byte, footerSize)
	end, err := file.ReadAt(c.at, foot, segOff+segLen-footerSize)
	if err != nil {
		return nil, err
	}
	c.advance(end)
	if binary.LittleEndian.Uint32(foot[0:4]) != tableMagic {
		return nil, fmt.Errorf("%w: bad table magic", ErrCorrupt)
	}
	crc := binary.LittleEndian.Uint32(foot[40:44])
	if crc32.ChecksumIEEE(foot[:40]) != crc {
		return nil, fmt.Errorf("%w: bad footer crc", ErrCorrupt)
	}
	indexOff := int64(binary.LittleEndian.Uint64(foot[8:16]))
	indexLen := int64(binary.LittleEndian.Uint32(foot[16:20]))
	bloomOff := int64(binary.LittleEndian.Uint64(foot[20:28]))
	bloomLen := int64(binary.LittleEndian.Uint32(foot[28:32]))
	numEntries := int64(binary.LittleEndian.Uint64(foot[32:40]))
	if indexOff < 0 || indexOff+indexLen > segLen || bloomOff < 0 || bloomOff+bloomLen > segLen {
		return nil, fmt.Errorf("%w: footer offsets out of range", ErrCorrupt)
	}

	t := &table{file: file, segOff: segOff, segLen: segLen, numEntries: numEntries}

	idx := make([]byte, indexLen)
	end, err = file.ReadAt(c.at, idx, segOff+indexOff)
	if err != nil {
		return nil, err
	}
	c.advance(end)
	p := 0
	readKey := func() ([]byte, error) {
		if p+2 > len(idx) {
			return nil, fmt.Errorf("%w: truncated index", ErrCorrupt)
		}
		n := int(binary.LittleEndian.Uint16(idx[p:]))
		p += 2
		if p+n > len(idx) {
			return nil, fmt.Errorf("%w: truncated index key", ErrCorrupt)
		}
		k := append([]byte(nil), idx[p:p+n]...)
		p += n
		return k, nil
	}
	if t.minKey, err = readKey(); err != nil {
		return nil, err
	}
	if t.maxKey, err = readKey(); err != nil {
		return nil, err
	}
	if p+4 > len(idx) {
		return nil, fmt.Errorf("%w: truncated index count", ErrCorrupt)
	}
	nblocks := int(binary.LittleEndian.Uint32(idx[p:]))
	p += 4
	for i := 0; i < nblocks; i++ {
		if p+14 > len(idx) {
			return nil, fmt.Errorf("%w: truncated block meta", ErrCorrupt)
		}
		bm := blockMeta{
			off:    int64(binary.LittleEndian.Uint64(idx[p:])),
			length: int32(binary.LittleEndian.Uint32(idx[p+8:])),
		}
		p += 12
		n := int(binary.LittleEndian.Uint16(idx[p:]))
		p += 2
		if p+n > len(idx) {
			return nil, fmt.Errorf("%w: truncated block first key", ErrCorrupt)
		}
		bm.firstKey = append([]byte(nil), idx[p:p+n]...)
		p += n
		t.index = append(t.index, bm)
	}

	bl := make([]byte, bloomLen)
	end, err = file.ReadAt(c.at, bl, segOff+bloomOff)
	if err != nil {
		return nil, err
	}
	c.advance(end)
	t.bloom = unmarshalBloom(bl)
	return t, nil
}

// blockFor returns the index of the block that may contain key, or -1.
func (t *table) blockFor(key []byte) int {
	// Binary search for the last block whose firstKey <= key.
	lo, hi, ans := 0, len(t.index)-1, -1
	for lo <= hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.index[mid].firstKey, key) <= 0 {
			ans = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return ans
}

// readBlock fetches and decodes one data block from media.
func (t *table) readBlock(c *cursor, i int) ([]memEntry, error) {
	bm := t.index[i]
	raw := make([]byte, bm.length)
	end, err := t.file.ReadAt(c.at, raw, t.segOff+bm.off)
	if err != nil {
		return nil, err
	}
	c.advance(end)
	if len(raw) < 4 {
		return nil, fmt.Errorf("%w: short block", ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint32(raw[:4]))
	entries := make([]memEntry, 0, count)
	p := 4
	for j := 0; j < count; j++ {
		e, n, err := decodeEntry(raw[p:])
		if err != nil {
			return nil, err
		}
		p += n
		entries = append(entries, e)
	}
	return entries, nil
}

// get looks up key, consulting the bloom filter first.
func (t *table) get(c *cursor, key []byte) (memEntry, bool, error) {
	if len(t.index) == 0 || bytes.Compare(key, t.minKey) < 0 || bytes.Compare(key, t.maxKey) > 0 {
		return memEntry{}, false, nil
	}
	if !t.bloom.mayContain(key) {
		return memEntry{}, false, nil
	}
	bi := t.blockFor(key)
	if bi < 0 {
		return memEntry{}, false, nil
	}
	entries, err := t.readBlock(c, bi)
	if err != nil {
		return memEntry{}, false, err
	}
	// Entries inside a block are sorted.
	lo, hi := 0, len(entries)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(entries[mid].key, key) {
		case 0:
			return entries[mid], true, nil
		case -1:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return memEntry{}, false, nil
}

// ---- iterators ----

// iterator walks entries in ascending key order. Implementations surface
// media errors from next().
type iterator interface {
	valid() bool
	entry() memEntry
	next() error
}

// memIterAdapter adapts the memtable iterator to the iterator interface.
type memIterAdapter struct{ it *memtableIter }

func (a memIterAdapter) valid() bool     { return a.it.valid() }
func (a memIterAdapter) entry() memEntry { return a.it.entry() }
func (a memIterAdapter) next() error     { a.it.next(); return nil }

// tableIter iterates a table's entries, reading one block at a time.
type tableIter struct {
	t     *table
	c     *cursor
	block []memEntry
	bi    int // current block index
	ei    int // entry index within block
}

// newTableIter positions the iterator at the first key >= start
// (or the table start when start is empty).
func newTableIter(c *cursor, t *table, start []byte) (*tableIter, error) {
	it := &tableIter{t: t, c: c}
	if len(t.index) == 0 {
		it.bi = len(t.index)
		return it, nil
	}
	it.bi = 0
	if len(start) > 0 {
		if b := t.blockFor(start); b > 0 {
			it.bi = b
		}
	}
	if err := it.load(); err != nil {
		return nil, err
	}
	// Skip entries before start.
	for len(start) > 0 && it.valid() && bytes.Compare(it.entry().key, start) < 0 {
		if err := it.next(); err != nil {
			return nil, err
		}
	}
	return it, nil
}

func (it *tableIter) load() error {
	for it.bi < len(it.t.index) {
		b, err := it.t.readBlock(it.c, it.bi)
		if err != nil {
			return err
		}
		if len(b) > 0 {
			it.block, it.ei = b, 0
			return nil
		}
		it.bi++
	}
	it.block = nil
	return nil
}

func (it *tableIter) valid() bool     { return it.block != nil && it.ei < len(it.block) }
func (it *tableIter) entry() memEntry { return it.block[it.ei] }

func (it *tableIter) next() error {
	it.ei++
	if it.ei < len(it.block) {
		return nil
	}
	it.bi++
	return it.load()
}

// mergeIter merges several sources. Sources are listed strongest-first:
// on equal keys the earliest source wins and the duplicates are skipped.
type mergeIter struct {
	sources []iterator
	cur     int // index of source holding the current entry, -1 when done
}

func newMergeIter(sources []iterator) (*mergeIter, error) {
	m := &mergeIter{sources: sources}
	if err := m.settle(); err != nil {
		return nil, err
	}
	return m, nil
}

// settle finds the smallest current key, resolving ties by precedence, and
// advances shadowed duplicates past it.
func (m *mergeIter) settle() error {
	m.cur = -1
	var best []byte
	for i, s := range m.sources {
		if !s.valid() {
			continue
		}
		k := s.entry().key
		if m.cur == -1 || bytes.Compare(k, best) < 0 {
			m.cur, best = i, k
		}
	}
	if m.cur == -1 {
		return nil
	}
	// Advance weaker sources sitting on the same key.
	for i := m.cur + 1; i < len(m.sources); i++ {
		s := m.sources[i]
		for s.valid() && bytes.Equal(s.entry().key, best) {
			if err := s.next(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m *mergeIter) valid() bool { return m.cur >= 0 }

func (m *mergeIter) entry() memEntry { return m.sources[m.cur].entry() }

func (m *mergeIter) next() error {
	if m.cur < 0 {
		return nil
	}
	if err := m.sources[m.cur].next(); err != nil {
		return err
	}
	return m.settle()
}
