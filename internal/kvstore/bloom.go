package kvstore

import "hash/fnv"

// bloomFilter is a classic k-hash Bloom filter built with double hashing
// over FNV-64a, in the style RocksDB uses for its full filters.
type bloomFilter struct {
	bits []byte
	k    uint8
}

// newBloom sizes a filter for n keys at bitsPerKey bits each.
func newBloom(n int, bitsPerKey int) *bloomFilter {
	if n < 1 {
		n = 1
	}
	nbits := n * bitsPerKey
	if nbits < 64 {
		nbits = 64
	}
	k := uint8(float64(bitsPerKey) * 69 / 100) // ln2 ~ 0.69
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	return &bloomFilter{bits: make([]byte, (nbits+7)/8), k: k}
}

func bloomHash(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	// Second hash: FNV over the key with a salt byte, cheap and independent
	// enough for a filter.
	h2 := fnv.New64a()
	h2.Write([]byte{0x9e})
	h2.Write(key)
	return h1, h2.Sum64() | 1
}

func (f *bloomFilter) add(key []byte) {
	h1, h2 := bloomHash(key)
	n := uint64(len(f.bits)) * 8
	for i := uint8(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % n
		f.bits[bit/8] |= 1 << (bit % 8)
	}
}

// mayContain reports whether key was possibly added. False means
// definitely absent.
func (f *bloomFilter) mayContain(key []byte) bool {
	if f == nil || len(f.bits) == 0 {
		return true
	}
	h1, h2 := bloomHash(key)
	n := uint64(len(f.bits)) * 8
	for i := uint8(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % n
		if f.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// marshal serializes the filter as [k u8][bits...].
func (f *bloomFilter) marshal() []byte {
	out := make([]byte, 1+len(f.bits))
	out[0] = byte(f.k)
	copy(out[1:], f.bits)
	return out
}

func unmarshalBloom(b []byte) *bloomFilter {
	if len(b) < 2 {
		return nil
	}
	bits := make([]byte, len(b)-1)
	copy(bits, b[1:])
	return &bloomFilter{k: b[0], bits: bits}
}
