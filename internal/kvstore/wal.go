package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/vtime"
)

// The write-ahead log lives in a fixed region of the store's file. Records
// are appended sequentially; the log is logically reset by bumping the
// epoch recorded in the superblock (old-epoch records are ignored during
// replay), so a reset costs no media write.
//
// Appends never read from media: the writer keeps the image of the current
// partial tail sector in memory and always writes whole sectors, the way a
// real log writer avoids device read-modify-writes.

const (
	walRecordMagic = 0x57414C52 // "WALR"
	// Record header: magic u32, crc u32, epoch u64, seqBase u64,
	// count u32, payloadLen u32.
	walHeaderSize = 32
	walSectorSize = 4096 // must match simdisk.SectorSize
)

// errWALFull signals that the region cannot fit the next record; the store
// responds by flushing the memtable, which resets the log.
var errWALFull = errors.New("kvstore: wal full")

type wal struct {
	file   File
	off    int64 // region start (bytes, sector aligned)
	length int64 // region length (bytes, sector aligned)

	epoch    uint64
	writeOff int64  // next byte to write, relative to region start
	tail     []byte // in-memory image of the current partial sector
}

func newWAL(file File, off, length int64) *wal {
	if off%walSectorSize != 0 || length%walSectorSize != 0 || length <= walSectorSize {
		panic("kvstore: wal region must be sector aligned and non-trivial")
	}
	return &wal{file: file, off: off, length: length}
}

// reset starts a new epoch with an empty log. Callers persist the epoch in
// the superblock.
func (w *wal) reset(epoch uint64) {
	w.epoch = epoch
	w.writeOff = 0
	w.tail = nil
}

// fits reports whether a record with the given payload fits the region.
func (w *wal) fits(payloadLen int) bool {
	return w.writeOff+int64(walHeaderSize+payloadLen) <= w.length
}

// append writes one record and returns its durability completion time.
func (w *wal) append(at vtime.Time, seqBase uint64, count uint32, payload []byte) (vtime.Time, error) {
	rec := make([]byte, 0, walHeaderSize+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, walRecordMagic)
	rec = binary.LittleEndian.AppendUint32(rec, 0) // crc placeholder
	rec = binary.LittleEndian.AppendUint64(rec, w.epoch)
	rec = binary.LittleEndian.AppendUint64(rec, seqBase)
	rec = binary.LittleEndian.AppendUint32(rec, count)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	crc := crc32.ChecksumIEEE(rec[8:])
	binary.LittleEndian.PutUint32(rec[4:8], crc)

	if !w.fits(len(payload)) {
		return at, errWALFull
	}

	// Compose whole sectors: remembered tail + record, padded to a sector
	// boundary so the device never has to read-modify-write.
	startSector := w.writeOff / walSectorSize
	img := append(append([]byte(nil), w.tail...), rec...)
	pad := (walSectorSize - len(img)%walSectorSize) % walSectorSize
	img = append(img, make([]byte, pad)...)

	end, err := w.file.WriteAt(at, img, w.off+startSector*walSectorSize)
	if err != nil {
		return at, err
	}
	w.writeOff += int64(len(rec))
	tailLen := int(w.writeOff % walSectorSize)
	if tailLen == 0 {
		w.tail = nil
	} else {
		w.tail = append([]byte(nil), img[len(img)-walSectorSize:][:tailLen]...)
	}
	return end, nil
}

// replayFunc receives each valid record's entries in order.
type replayFunc func(seqBase uint64, entries []memEntry) error

// replay scans the region for records of the given epoch, invoking fn for
// each, and leaves the wal positioned for further appends. It reads the
// whole region in one bulk read (recovery-time cost).
func (w *wal) replay(c *cursor, epoch uint64, fn replayFunc) error {
	w.epoch = epoch
	buf := make([]byte, w.length)
	end, err := w.file.ReadAt(c.at, buf, w.off)
	if err != nil {
		return err
	}
	c.advance(end)

	off := int64(0)
	for {
		if off+walHeaderSize > w.length {
			break
		}
		h := buf[off:]
		if binary.LittleEndian.Uint32(h[0:4]) != walRecordMagic {
			break
		}
		recEpoch := binary.LittleEndian.Uint64(h[8:16])
		if recEpoch != epoch {
			break
		}
		seqBase := binary.LittleEndian.Uint64(h[16:24])
		count := binary.LittleEndian.Uint32(h[24:28])
		plen := int64(binary.LittleEndian.Uint32(h[28:32]))
		recLen := int64(walHeaderSize) + plen
		if off+recLen > w.length {
			break
		}
		wantCRC := binary.LittleEndian.Uint32(h[4:8])
		if crc32.ChecksumIEEE(buf[off+8:off+recLen]) != wantCRC {
			break // torn record: the batch never committed
		}
		payload := buf[off+walHeaderSize : off+recLen]
		entries := make([]memEntry, 0, count)
		p := 0
		bad := false
		for i := uint32(0); i < count; i++ {
			e, n, err := decodeEntry(payload[p:])
			if err != nil {
				bad = true
				break
			}
			e.seq = seqBase + uint64(i)
			p += n
			entries = append(entries, e)
		}
		if bad {
			break
		}
		if err := fn(seqBase, entries); err != nil {
			return err
		}
		off += recLen
	}
	w.writeOff = off
	tailLen := int(off % walSectorSize)
	if tailLen > 0 {
		sec := (off / walSectorSize) * walSectorSize
		w.tail = append([]byte(nil), buf[sec:sec+int64(tailLen)]...)
	} else {
		w.tail = nil
	}
	return nil
}

func (w *wal) String() string {
	return fmt.Sprintf("wal{epoch=%d off=%d/%d}", w.epoch, w.writeOff, w.length)
}
