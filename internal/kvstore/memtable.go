package kvstore

import (
	"bytes"
	"math/rand"
)

// entryKind distinguishes puts from deletion tombstones.
type entryKind uint8

const (
	kindPut    entryKind = 1
	kindDelete entryKind = 2
)

// memEntry is a memtable record. The memtable keeps only the latest write
// per user key (the store does not expose point-in-time snapshots, so
// shadowed versions are dropped eagerly).
type memEntry struct {
	key   []byte
	value []byte
	seq   uint64
	kind  entryKind
}

const maxHeight = 12

// memtable is a skiplist keyed by user key. It is not safe for concurrent
// use; the Store serializes access.
type memtable struct {
	head  *skipNode
	rng   *rand.Rand
	size  int64 // approximate bytes of live keys+values
	count int
}

type skipNode struct {
	entry memEntry
	next  [maxHeight]*skipNode
	level int
}

func newMemtable(seed int64) *memtable {
	return &memtable{
		head: &skipNode{level: maxHeight},
		rng:  rand.New(rand.NewSource(seed)),
	}
}

func (m *memtable) randomLevel() int {
	l := 1
	for l < maxHeight && m.rng.Intn(4) == 0 {
		l++
	}
	return l
}

// findGE returns the first node with key >= key, filling prev with the
// rightmost node before it on every level.
func (m *memtable) findGE(key []byte, prev *[maxHeight]*skipNode) *skipNode {
	n := m.head
	for lvl := maxHeight - 1; lvl >= 0; lvl-- {
		for n.next[lvl] != nil && bytes.Compare(n.next[lvl].entry.key, key) < 0 {
			n = n.next[lvl]
		}
		if prev != nil {
			prev[lvl] = n
		}
	}
	return n.next[0]
}

// set inserts or replaces the entry for key.
func (m *memtable) set(e memEntry) {
	var prev [maxHeight]*skipNode
	n := m.findGE(e.key, &prev)
	if n != nil && bytes.Equal(n.entry.key, e.key) {
		m.size += int64(len(e.value)) - int64(len(n.entry.value))
		n.entry = e
		return
	}
	node := &skipNode{entry: e, level: m.randomLevel()}
	for lvl := 0; lvl < node.level; lvl++ {
		node.next[lvl] = prev[lvl].next[lvl]
		prev[lvl].next[lvl] = node
	}
	m.size += int64(len(e.key)+len(e.value)) + 32
	m.count++
}

// get returns the entry for key, if present (including tombstones).
func (m *memtable) get(key []byte) (memEntry, bool) {
	n := m.findGE(key, nil)
	if n != nil && bytes.Equal(n.entry.key, key) {
		return n.entry, true
	}
	return memEntry{}, false
}

// iter returns an iterator positioned at the first key >= start.
func (m *memtable) iter(start []byte) *memtableIter {
	var n *skipNode
	if len(start) == 0 {
		n = m.head.next[0]
	} else {
		n = m.findGE(start, nil)
	}
	return &memtableIter{n: n}
}

type memtableIter struct {
	n *skipNode
}

func (it *memtableIter) valid() bool { return it.n != nil }

func (it *memtableIter) entry() memEntry { return it.n.entry }

func (it *memtableIter) next() { it.n = it.n.next[0] }
