package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/simdisk"
)

func newTestFile(t *testing.T, mb int64) *simdisk.Partition {
	t.Helper()
	d := simdisk.New("kv", mb*256, simdisk.DefaultCostModel()) // mb MiB
	return simdisk.NewPartition(d, 0, d.Sectors())
}

func smallConfig() Config {
	return Config{
		MemtableBytes: 16 << 10, // tiny, to exercise flush/compaction
		WALBytes:      64 << 10,
		Fanout:        3,
		MaxLevels:     3,
	}
}

func mustOpen(t *testing.T, f File, cfg Config) *Store {
	t.Helper()
	s, _, err := Open(0, f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func apply1(t *testing.T, s *Store, k, v string) {
	t.Helper()
	var b Batch
	b.Put([]byte(k), []byte(v))
	if _, err := s.Apply(0, &b); err != nil {
		t.Fatal(err)
	}
}

func get(t *testing.T, s *Store, k string) (string, bool) {
	t.Helper()
	v, ok, _, err := s.Get(0, []byte(k))
	if err != nil {
		t.Fatal(err)
	}
	return string(v), ok
}

func TestBasicPutGet(t *testing.T) {
	s := mustOpen(t, newTestFile(t, 16), smallConfig())
	apply1(t, s, "alpha", "1")
	apply1(t, s, "beta", "2")
	if v, ok := get(t, s, "alpha"); !ok || v != "1" {
		t.Fatalf("alpha = %q,%v", v, ok)
	}
	if v, ok := get(t, s, "beta"); !ok || v != "2" {
		t.Fatalf("beta = %q,%v", v, ok)
	}
	if _, ok := get(t, s, "gamma"); ok {
		t.Fatal("gamma should be absent")
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	s := mustOpen(t, newTestFile(t, 16), smallConfig())
	apply1(t, s, "k", "v1")
	apply1(t, s, "k", "v2")
	if v, _ := get(t, s, "k"); v != "v2" {
		t.Fatalf("k = %q", v)
	}
	var b Batch
	b.Delete([]byte("k"))
	if _, err := s.Apply(0, &b); err != nil {
		t.Fatal(err)
	}
	if _, ok := get(t, s, "k"); ok {
		t.Fatal("k should be deleted")
	}
}

func TestDeleteSurvivesFlushShadowing(t *testing.T) {
	s := mustOpen(t, newTestFile(t, 16), smallConfig())
	apply1(t, s, "k", "old")
	if _, err := s.Flush(0); err != nil {
		t.Fatal(err)
	}
	var b Batch
	b.Delete([]byte("k"))
	if _, err := s.Apply(0, &b); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(0); err != nil {
		t.Fatal(err)
	}
	// The tombstone in the newer table must shadow the old value.
	if _, ok := get(t, s, "k"); ok {
		t.Fatal("tombstone failed to shadow flushed value")
	}
}

func TestBatchAtomicVisibility(t *testing.T) {
	s := mustOpen(t, newTestFile(t, 16), smallConfig())
	var b Batch
	for i := 0; i < 100; i++ {
		b.Put([]byte(fmt.Sprintf("key%03d", i)), []byte(fmt.Sprintf("val%03d", i)))
	}
	if b.Len() != 100 || b.Bytes() == 0 {
		t.Fatalf("batch accounting: len=%d bytes=%d", b.Len(), b.Bytes())
	}
	if _, err := s.Apply(0, &b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if v, ok := get(t, s, fmt.Sprintf("key%03d", i)); !ok || v != fmt.Sprintf("val%03d", i) {
			t.Fatalf("key%03d = %q,%v", i, v, ok)
		}
	}
}

func TestScanRangeAndLimit(t *testing.T) {
	s := mustOpen(t, newTestFile(t, 16), smallConfig())
	for i := 0; i < 50; i++ {
		apply1(t, s, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
	}
	kvs, _, err := s.Scan(0, []byte("k10"), []byte("k20"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 10 {
		t.Fatalf("scan returned %d", len(kvs))
	}
	for i, kv := range kvs {
		if want := fmt.Sprintf("k%02d", 10+i); string(kv.Key) != want {
			t.Fatalf("kvs[%d].Key = %q want %q", i, kv.Key, want)
		}
	}
	kvs, _, err = s.Scan(0, nil, nil, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 7 {
		t.Fatalf("limited scan returned %d", len(kvs))
	}
}

func TestScanSkipsTombstonesAcrossLevels(t *testing.T) {
	s := mustOpen(t, newTestFile(t, 16), smallConfig())
	for i := 0; i < 20; i++ {
		apply1(t, s, fmt.Sprintf("k%02d", i), "x")
	}
	if _, err := s.Flush(0); err != nil {
		t.Fatal(err)
	}
	var b Batch
	for i := 0; i < 20; i += 2 {
		b.Delete([]byte(fmt.Sprintf("k%02d", i)))
	}
	if _, err := s.Apply(0, &b); err != nil {
		t.Fatal(err)
	}
	kvs, _, err := s.Scan(0, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 10 {
		t.Fatalf("scan returned %d want 10", len(kvs))
	}
	for _, kv := range kvs {
		var n int
		fmt.Sscanf(string(kv.Key), "k%d", &n)
		if n%2 == 0 {
			t.Fatalf("deleted key %q visible", kv.Key)
		}
	}
}

func TestDeleteRange(t *testing.T) {
	s := mustOpen(t, newTestFile(t, 16), smallConfig())
	for i := 0; i < 30; i++ {
		apply1(t, s, fmt.Sprintf("k%02d", i), "x")
	}
	n, _, err := s.DeleteRange(0, []byte("k05"), []byte("k15"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("deleted %d want 10", n)
	}
	kvs, _, _ := s.Scan(0, nil, nil, 0)
	if len(kvs) != 20 {
		t.Fatalf("left %d want 20", len(kvs))
	}
}

func TestFlushAndCompactionKeepData(t *testing.T) {
	cfg := smallConfig()
	s := mustOpen(t, newTestFile(t, 64), cfg)
	// Write enough to force several flushes and at least one compaction.
	val := bytes.Repeat([]byte{0xAB}, 128)
	for i := 0; i < 800; i++ {
		var b Batch
		b.Put([]byte(fmt.Sprintf("key%04d", i%400)), val)
		if _, err := s.Apply(0, &b); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Flushes == 0 || st.Compactions == 0 {
		t.Fatalf("expected flush+compaction activity, got %+v", st)
	}
	for i := 0; i < 400; i++ {
		if _, ok := get(t, s, fmt.Sprintf("key%04d", i)); !ok {
			t.Fatalf("key%04d lost after compaction", i)
		}
	}
	counts := s.TableCounts()
	for lvl, c := range counts {
		if c >= cfg.Fanout+1 {
			t.Fatalf("level %d has %d tables, compaction not keeping up", lvl, c)
		}
	}
}

func TestReopenRecoversFromWAL(t *testing.T) {
	f := newTestFile(t, 16)
	cfg := smallConfig()
	s := mustOpen(t, f, cfg)
	apply1(t, s, "persisted", "yes")
	apply1(t, s, "another", "val")
	// No flush: data only in WAL + memtable. Reopen must replay.
	s2 := mustOpen(t, f, cfg)
	if v, ok := get(t, s2, "persisted"); !ok || v != "yes" {
		t.Fatalf("persisted = %q,%v", v, ok)
	}
	if v, ok := get(t, s2, "another"); !ok || v != "val" {
		t.Fatalf("another = %q,%v", v, ok)
	}
}

func TestReopenRecoversFlushedAndWAL(t *testing.T) {
	f := newTestFile(t, 16)
	cfg := smallConfig()
	s := mustOpen(t, f, cfg)
	for i := 0; i < 100; i++ {
		apply1(t, s, fmt.Sprintf("f%03d", i), "flushed")
	}
	if _, err := s.Flush(0); err != nil {
		t.Fatal(err)
	}
	apply1(t, s, "walonly", "fresh")
	s2 := mustOpen(t, f, cfg)
	if v, ok := get(t, s2, "f050"); !ok || v != "flushed" {
		t.Fatalf("f050 = %q,%v", v, ok)
	}
	if v, ok := get(t, s2, "walonly"); !ok || v != "fresh" {
		t.Fatalf("walonly = %q,%v", v, ok)
	}
	// Sequence numbers must not regress after recovery.
	apply1(t, s2, "walonly", "fresher")
	if v, _ := get(t, s2, "walonly"); v != "fresher" {
		t.Fatal("post-recovery write lost")
	}
}

func TestPowerCutTornBatchDiscarded(t *testing.T) {
	d := simdisk.New("kv", 16*256, simdisk.DefaultCostModel())
	f := simdisk.NewPartition(d, 0, d.Sectors())
	cfg := smallConfig()
	s := mustOpen(t, f, cfg)
	apply1(t, s, "committed", "1")

	// Cut power on the very next write: the WAL append is dropped.
	d.PowerCutAfter(0)
	var b Batch
	b.Put([]byte("torn"), []byte("x"))
	if _, err := s.Apply(0, &b); err == nil {
		t.Fatal("expected power cut error")
	}
	d.PowerRestore()

	s2 := mustOpen(t, f, cfg)
	if v, ok := get(t, s2, "committed"); !ok || v != "1" {
		t.Fatalf("committed = %q,%v", v, ok)
	}
	if _, ok := get(t, s2, "torn"); ok {
		t.Fatal("torn batch must not be visible after recovery")
	}
}

func TestWALRotationOnFull(t *testing.T) {
	cfg := smallConfig()
	cfg.WALBytes = 16 << 10
	cfg.MemtableBytes = 1 << 20 // flushes only happen due to WAL pressure
	s := mustOpen(t, newTestFile(t, 32), cfg)
	val := bytes.Repeat([]byte{1}, 1024)
	for i := 0; i < 100; i++ {
		var b Batch
		b.Put([]byte(fmt.Sprintf("k%03d", i)), val)
		if _, err := s.Apply(0, &b); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	if s.Stats().Flushes == 0 {
		t.Fatal("WAL pressure should have forced flushes")
	}
	for i := 0; i < 100; i++ {
		if _, ok := get(t, s, fmt.Sprintf("k%03d", i)); !ok {
			t.Fatalf("k%03d lost across WAL rotation", i)
		}
	}
}

func TestOversizedBatchRejected(t *testing.T) {
	cfg := smallConfig()
	cfg.WALBytes = 8 << 10
	s := mustOpen(t, newTestFile(t, 32), cfg)
	var b Batch
	b.Put([]byte("big"), bytes.Repeat([]byte{1}, 32<<10))
	if _, err := s.Apply(0, &b); err == nil {
		t.Fatal("expected oversized batch rejection")
	}
}

func TestEmptyBatchNoop(t *testing.T) {
	s := mustOpen(t, newTestFile(t, 16), smallConfig())
	var b Batch
	end, err := s.Apply(42, &b)
	if err != nil || end != 42 {
		t.Fatalf("empty batch: %v %v", end, err)
	}
	if s.Stats().Applies != 0 {
		t.Fatal("empty batch should not count")
	}
}

func TestVirtualTimeAdvancesOnApply(t *testing.T) {
	s := mustOpen(t, newTestFile(t, 16), smallConfig())
	var b Batch
	b.Put([]byte("k"), []byte("v"))
	end, err := s.Apply(1000, &b)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 1000 {
		t.Fatalf("durability point %d should be after arrival", end)
	}
}

// Model-based randomized test: the store must agree with a map through an
// arbitrary interleaving of batched puts/deletes, flushes, scans and
// reopens.
func TestRandomizedAgainstModel(t *testing.T) {
	f := newTestFile(t, 128)
	cfg := smallConfig()
	s := mustOpen(t, f, cfg)
	model := map[string]string{}
	rng := rand.New(rand.NewSource(7))
	key := func() string { return fmt.Sprintf("key%03d", rng.Intn(300)) }

	for step := 0; step < 4000; step++ {
		switch op := rng.Intn(100); {
		case op < 55: // batch write
			var b Batch
			n := 1 + rng.Intn(8)
			for i := 0; i < n; i++ {
				k := key()
				if rng.Intn(5) == 0 {
					b.Delete([]byte(k))
					delete(model, k)
				} else {
					v := fmt.Sprintf("v%d", rng.Int63())
					b.Put([]byte(k), []byte(v))
					model[k] = v
				}
			}
			if _, err := s.Apply(0, &b); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		case op < 85: // point lookup
			k := key()
			v, ok, _, err := s.Get(0, []byte(k))
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			want, wantOK := model[k]
			if ok != wantOK || (ok && string(v) != want) {
				t.Fatalf("step %d: Get(%q) = %q,%v want %q,%v", step, k, v, ok, want, wantOK)
			}
		case op < 95: // range scan
			lo := fmt.Sprintf("key%03d", rng.Intn(300))
			hi := fmt.Sprintf("key%03d", rng.Intn(300))
			if lo > hi {
				lo, hi = hi, lo
			}
			kvs, _, err := s.Scan(0, []byte(lo), []byte(hi), 0)
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			count := 0
			for k := range model {
				if k >= lo && k < hi {
					count++
				}
			}
			if len(kvs) != count {
				t.Fatalf("step %d: scan[%q,%q) = %d want %d", step, lo, hi, len(kvs), count)
			}
		case op < 98: // forced flush
			if _, err := s.Flush(0); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		default: // reopen (recovery)
			s = mustOpen(t, f, cfg)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	s := mustOpen(t, newTestFile(t, 16), smallConfig())
	apply1(t, s, "a", "b")
	get(t, s, "a")
	s.Scan(0, nil, nil, 0)
	st := s.Stats()
	if st.Applies != 1 || st.EntriesWritten != 1 || st.Gets != 1 || st.Scans != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.WALBytes == 0 {
		t.Fatal("WAL bytes not counted")
	}
	if s.SpaceUsed() == 0 {
		t.Fatal("space used should include metadata regions")
	}
}

func TestBloomFilter(t *testing.T) {
	f := newBloom(1000, 10)
	for i := 0; i < 1000; i++ {
		f.add([]byte(fmt.Sprintf("key%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !f.mayContain([]byte(fmt.Sprintf("key%d", i))) {
			t.Fatalf("false negative on key%d", i)
		}
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if f.mayContain([]byte(fmt.Sprintf("other%d", i))) {
			fp++
		}
	}
	// 10 bits/key should be around 1% false positives; allow generous slack.
	if fp > 500 {
		t.Fatalf("false positive rate too high: %d/10000", fp)
	}
	// Nil filter admits everything.
	var nilF *bloomFilter
	if !nilF.mayContain([]byte("x")) {
		t.Fatal("nil filter must admit")
	}
}

func TestMemtableOrdering(t *testing.T) {
	m := newMemtable(1)
	keys := []string{"delta", "alpha", "charlie", "bravo", "echo"}
	for i, k := range keys {
		m.set(memEntry{key: []byte(k), value: []byte{byte(i)}, kind: kindPut})
	}
	var got []string
	for it := m.iter(nil); it.valid(); it.next() {
		got = append(got, string(it.entry().key))
	}
	want := []string{"alpha", "bravo", "charlie", "delta", "echo"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
	// Seek positioning.
	it := m.iter([]byte("c"))
	if !it.valid() || string(it.entry().key) != "charlie" {
		t.Fatal("seek failed")
	}
}

func TestTableGetAcrossBlocks(t *testing.T) {
	// Build a table with several blocks and verify point reads everywhere.
	var entries []memEntry
	val := bytes.Repeat([]byte{9}, 200)
	for i := 0; i < 200; i++ {
		entries = append(entries, memEntry{key: []byte(fmt.Sprintf("key%04d", i)), value: val, kind: kindPut})
	}
	tbl, seg := buildTable(entries, 1024, 10)
	if len(tbl.index) < 10 {
		t.Fatalf("expected many blocks, got %d", len(tbl.index))
	}
	f := newTestFile(t, 16)
	if _, err := f.WriteAt(0, seg, 8192); err != nil {
		t.Fatal(err)
	}
	c := &cursor{}
	got, err := openTable(c, f, 8192, int64(len(seg)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		e, ok, err := got.get(c, []byte(fmt.Sprintf("key%04d", i)))
		if err != nil || !ok {
			t.Fatalf("key%04d: %v %v", i, ok, err)
		}
		if !bytes.Equal(e.value, val) {
			t.Fatalf("key%04d value mismatch", i)
		}
	}
	if _, ok, _ := got.get(c, []byte("zzz")); ok {
		t.Fatal("phantom key")
	}
	if _, ok, _ := got.get(c, []byte("aaa")); ok {
		t.Fatal("phantom key below range")
	}
}

func TestOpenRejectsTinyFile(t *testing.T) {
	d := simdisk.New("kv", 4, simdisk.DefaultCostModel())
	f := simdisk.NewPartition(d, 0, 4)
	if _, _, err := Open(0, f, smallConfig()); err == nil {
		t.Fatal("expected size rejection")
	}
}
