// Package kvstore implements a small log-structured merge-tree key-value
// store: write-ahead log, skiplist memtable, bloom-filtered SSTables and
// size-tiered compaction, persisted through a virtual-time-charged block
// file. It is the stand-in for RocksDB in the paper's OMAP experiments
// (§3.1): the OSD object store keeps object metadata and OMAP entries
// here, and the store's WAL doubles as the OSD transaction journal, the
// role RocksDB's WAL plays inside BlueStore.
//
// Durability and atomicity are real: a batch is committed by a single WAL
// append (all-or-nothing under power cuts), flushes and compactions are
// made visible by an atomic single-sector superblock write, and Open
// recovers by replaying the log, so the paper's data/IV consistency
// requirement is testable end to end.
package kvstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"repro/internal/vtime"
)

const (
	superMagic   = 0x4B565355 // "KVSU"
	superVersion = 1
	superSector  = 4096
)

// Config tunes the store. Zero values select sensible defaults.
type Config struct {
	// MemtableBytes triggers a flush when the memtable grows past it.
	MemtableBytes int64
	// BlockBytes is the SSTable data block target size.
	BlockBytes int
	// BloomBitsPerKey sizes per-table bloom filters.
	BloomBitsPerKey int
	// Fanout is how many tables accumulate in a level before compaction.
	Fanout int
	// MaxLevels bounds the level hierarchy (the last level self-compacts).
	MaxLevels int
	// WALBytes is the log region size.
	WALBytes int64
	// CPU, when set, is charged CPUPerEntryWrite per written entry and
	// CPUPerEntryRead per looked-up entry, modeling DB CPU cost on the
	// owning OSD.
	CPU              *vtime.Resource
	CPUPerEntryWrite time.Duration
	CPUPerEntryRead  time.Duration
	// IngestPerEntry models the store's single-threaded write path
	// (RocksDB's single writer/WAL thread plus amortized compaction
	// backpressure): each Apply serializes len(batch)*IngestPerEntry on a
	// per-store writer resource, joined into the commit completion. This
	// is the mechanism behind the paper's OMAP collapse at large IO sizes
	// ("the DB fails to provide high performance", §3.3). Zero disables.
	IngestPerEntry time.Duration
	// Seed makes skiplist behavior deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MemtableBytes <= 0 {
		c.MemtableBytes = 1 << 20
	}
	if c.BlockBytes <= 0 {
		c.BlockBytes = 4096
	}
	if c.BloomBitsPerKey <= 0 {
		c.BloomBitsPerKey = 10
	}
	if c.Fanout <= 1 {
		c.Fanout = 4
	}
	if c.MaxLevels <= 0 {
		c.MaxLevels = 4
	}
	if c.WALBytes <= 0 {
		c.WALBytes = 8 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CPUPerEntryWrite <= 0 {
		c.CPUPerEntryWrite = 1200 * time.Nanosecond
	}
	if c.CPUPerEntryRead <= 0 {
		c.CPUPerEntryRead = 600 * time.Nanosecond
	}
	return c
}

// KV is a returned key/value pair.
type KV struct {
	Key   []byte
	Value []byte
}

// Stats counts store activity since open.
type Stats struct {
	Applies        int64
	EntriesWritten int64
	Gets           int64
	Scans          int64
	Flushes        int64
	Compactions    int64
	BytesFlushed   int64
	BytesCompacted int64
	WALBytes       int64
}

// Store is the LSM store. All methods are safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	file File
	cfg  Config

	mem      *memtable
	levels   [][]*table
	seq      uint64
	walEpoch uint64
	nextFree int64 // bump pointer for table segments
	segBase  int64
	wal      *wal
	writer   *vtime.Resource // single-threaded ingest path
	stats    Stats
}

// Batch is an atomically-applied set of puts and deletes.
type Batch struct {
	entries   []memEntry
	bytes     int
	transient int // entries exempt from the ingest charge
}

// Put stages key=value. The batch copies both slices.
func (b *Batch) Put(key, value []byte) {
	b.entries = append(b.entries, memEntry{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
		kind:  kindPut,
	})
	b.bytes += len(key) + len(value)
}

// Delete stages a tombstone for key.
func (b *Batch) Delete(key []byte) {
	b.entries = append(b.entries, memEntry{
		key:  append([]byte(nil), key...),
		kind: kindDelete,
	})
	b.bytes += len(key)
}

// PutTransient stages key=value exempt from the per-entry ingest charge.
// Use it for short-lived records (journal payloads and their cleanup
// tombstones) that die in the memtable and never reach compaction, so
// their amortized LSM ingest cost is negligible.
func (b *Batch) PutTransient(key, value []byte) {
	b.Put(key, value)
	b.transient++
}

// DeleteTransient stages a tombstone exempt from the ingest charge.
func (b *Batch) DeleteTransient(key []byte) {
	b.Delete(key)
	b.transient++
}

// Len returns the number of staged operations.
func (b *Batch) Len() int { return len(b.entries) }

// Bytes returns the approximate payload size of the batch.
func (b *Batch) Bytes() int { return b.bytes }

// Open loads the store from file, recovering committed state, or formats a
// fresh store when the superblock is absent or invalid.
func Open(at vtime.Time, file File, cfg Config) (*Store, vtime.Time, error) {
	cfg = cfg.withDefaults()
	if file.Size() < superSector+cfg.WALBytes+superSector {
		return nil, at, fmt.Errorf("kvstore: file too small (%d bytes)", file.Size())
	}
	s := &Store{
		file:    file,
		cfg:     cfg,
		mem:     newMemtable(cfg.Seed),
		levels:  make([][]*table, cfg.MaxLevels),
		segBase: superSector + cfg.WALBytes,
	}
	s.nextFree = s.segBase
	s.wal = newWAL(file, superSector, cfg.WALBytes)
	s.writer = vtime.NewResource("kv-writer")

	c := &cursor{at: at}
	super := make([]byte, superSector)
	end, err := file.ReadAt(c.at, super, 0)
	if err != nil {
		return nil, at, err
	}
	c.advance(end)

	if binary.LittleEndian.Uint32(super[0:4]) == superMagic && s.loadSuper(c, super) == nil {
		// Replay the log into the memtable.
		err := s.wal.replay(c, s.walEpoch, func(seqBase uint64, entries []memEntry) error {
			for _, e := range entries {
				s.mem.set(e)
				if e.seq >= s.seq {
					s.seq = e.seq + 1
				}
			}
			return nil
		})
		if err != nil {
			return nil, at, err
		}
		return s, c.at, nil
	}

	// Fresh store.
	s.walEpoch = 1
	s.wal.reset(1)
	if err := s.writeSuper(c); err != nil {
		return nil, at, err
	}
	return s, c.at, nil
}

// loadSuper parses and validates a superblock, then opens every table it
// references.
func (s *Store) loadSuper(c *cursor, super []byte) error {
	stored := binary.LittleEndian.Uint32(super[superSector-4:])
	if crc32.ChecksumIEEE(super[:superSector-4]) != stored {
		return fmt.Errorf("%w: superblock crc", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(super[4:8]) != superVersion {
		return fmt.Errorf("%w: superblock version", ErrCorrupt)
	}
	s.walEpoch = binary.LittleEndian.Uint64(super[8:16])
	s.seq = binary.LittleEndian.Uint64(super[16:24])
	s.nextFree = int64(binary.LittleEndian.Uint64(super[24:32]))
	walBytes := int64(binary.LittleEndian.Uint64(super[32:40]))
	if walBytes != s.cfg.WALBytes {
		return fmt.Errorf("%w: wal size mismatch (%d != %d)", ErrCorrupt, walBytes, s.cfg.WALBytes)
	}
	n := int(binary.LittleEndian.Uint32(super[40:44]))
	p := 44
	for i := 0; i < n; i++ {
		if p+17 > superSector-4 {
			return fmt.Errorf("%w: superblock table list", ErrCorrupt)
		}
		level := int(super[p])
		off := int64(binary.LittleEndian.Uint64(super[p+1:]))
		length := int64(binary.LittleEndian.Uint64(super[p+9:]))
		p += 17
		if level >= s.cfg.MaxLevels {
			return fmt.Errorf("%w: table level %d", ErrCorrupt, level)
		}
		t, err := openTable(c, s.file, off, length)
		if err != nil {
			return err
		}
		s.levels[level] = append(s.levels[level], t)
	}
	return nil
}

// writeSuper persists the manifest in one atomic sector write.
func (s *Store) writeSuper(c *cursor) error {
	super := make([]byte, superSector)
	binary.LittleEndian.PutUint32(super[0:4], superMagic)
	binary.LittleEndian.PutUint32(super[4:8], superVersion)
	binary.LittleEndian.PutUint64(super[8:16], s.walEpoch)
	binary.LittleEndian.PutUint64(super[16:24], s.seq)
	binary.LittleEndian.PutUint64(super[24:32], uint64(s.nextFree))
	binary.LittleEndian.PutUint64(super[32:40], uint64(s.cfg.WALBytes))
	count := 0
	p := 44
	for level, tables := range s.levels {
		for _, t := range tables {
			if p+17 > superSector-4 {
				return fmt.Errorf("kvstore: too many tables for superblock (%d)", count)
			}
			super[p] = byte(level)
			binary.LittleEndian.PutUint64(super[p+1:], uint64(t.segOff))
			binary.LittleEndian.PutUint64(super[p+9:], uint64(t.segLen))
			p += 17
			count++
		}
	}
	binary.LittleEndian.PutUint32(super[40:44], uint32(count))
	binary.LittleEndian.PutUint32(super[superSector-4:], crc32.ChecksumIEEE(super[:superSector-4]))
	end, err := s.file.WriteAt(c.at, super, 0)
	if err != nil {
		return err
	}
	c.advance(end)
	return nil
}

func (s *Store) chargeCPU(at vtime.Time, n int, per time.Duration) vtime.Time {
	if s.cfg.CPU == nil || n == 0 {
		return at
	}
	return s.cfg.CPU.Use(at, time.Duration(n)*per)
}

// Apply atomically commits a batch. The returned time is the durability
// point (WAL append complete). Flushes and compactions triggered by the
// apply are charged to the device model in the background and do not
// extend the caller's completion time, matching how RocksDB schedules
// them off the write path.
func (s *Store) Apply(at vtime.Time, b *Batch) (vtime.Time, error) {
	if b.Len() == 0 {
		return at, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	at = s.chargeCPU(at, b.Len(), s.cfg.CPUPerEntryWrite)

	payload := make([]byte, 0, b.bytes+8*b.Len())
	for _, e := range b.entries {
		payload = appendEntry(payload, e)
	}
	if !s.wal.fits(len(payload)) {
		// Rotate the log by flushing; background time charge.
		if err := s.flushLocked(&cursor{at: at}); err != nil {
			return at, err
		}
		if !s.wal.fits(len(payload)) {
			return at, fmt.Errorf("kvstore: batch of %d bytes exceeds wal size %d", len(payload), s.cfg.WALBytes)
		}
	}
	seqBase := s.seq
	end, err := s.wal.append(at, seqBase, uint32(b.Len()), payload)
	if err != nil {
		return at, err
	}
	if n := b.Len() - b.transient; n > 0 && s.cfg.IngestPerEntry > 0 {
		end = s.writer.Use(end, time.Duration(n)*s.cfg.IngestPerEntry)
	}
	for i, e := range b.entries {
		e.seq = seqBase + uint64(i)
		s.mem.set(e)
	}
	s.seq += uint64(b.Len())
	s.stats.Applies++
	s.stats.EntriesWritten += int64(b.Len())
	s.stats.WALBytes += int64(len(payload) + walHeaderSize)

	if s.mem.size >= s.cfg.MemtableBytes {
		if err := s.flushLocked(&cursor{at: at}); err != nil {
			return at, err
		}
	}
	return end, nil
}

// Get returns the value for key.
func (s *Store) Get(at vtime.Time, key []byte) ([]byte, bool, vtime.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Gets++
	at = s.chargeCPU(at, 1, s.cfg.CPUPerEntryRead)
	if e, ok := s.mem.get(key); ok {
		if e.kind == kindDelete {
			return nil, false, at, nil
		}
		return append([]byte(nil), e.value...), true, at, nil
	}
	c := &cursor{at: at}
	for _, tables := range s.levels {
		for _, t := range tables {
			e, ok, err := t.get(c, key)
			if err != nil {
				return nil, false, c.at, err
			}
			if ok {
				if e.kind == kindDelete {
					return nil, false, c.at, nil
				}
				return e.value, true, c.at, nil
			}
		}
	}
	return nil, false, c.at, nil
}

// kvSpan locates one decoded pair inside a scan arena.
type kvSpan struct{ ko, kl, vo, vl int }

// spanPool recycles the per-scan span scratch: unlike the arena (whose
// ownership passes to the caller through the returned KV views), the
// span offsets are dead once the KV slice is built, so large OMAP scans
// reuse them across calls instead of reallocating ~1k entries each time.
var spanPool = sync.Pool{New: func() any { return new([]kvSpan) }}

// Scan returns up to limit live pairs with lo <= key < hi (hi empty means
// unbounded; limit <= 0 means unlimited).
//
// Decoding is batched: all key and value bytes land in one shared arena
// (entries must be copied anyway — memtable-sourced slices alias live
// store memory), so a scan costs O(1) allocations instead of two per
// pair. The OMAP IV read path issues one ~1k-entry scan per large IO,
// which is where those per-pair allocations used to go.
func (s *Store) Scan(at vtime.Time, lo, hi []byte, limit int) ([]KV, vtime.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Scans++
	c := &cursor{at: at}
	it, err := s.mergeIterLocked(c, lo)
	if err != nil {
		return nil, c.at, err
	}
	spansPtr := spanPool.Get().(*[]kvSpan)
	spans := (*spansPtr)[:0]
	putSpans := func() {
		*spansPtr = spans[:0]
		spanPool.Put(spansPtr)
	}
	var arena []byte
	for it.valid() {
		e := it.entry()
		if len(hi) > 0 && bytes.Compare(e.key, hi) >= 0 {
			break
		}
		if e.kind == kindPut {
			ko := len(arena)
			arena = append(arena, e.key...)
			vo := len(arena)
			arena = append(arena, e.value...)
			spans = append(spans, kvSpan{ko, len(e.key), vo, len(e.value)})
			if limit > 0 && len(spans) >= limit {
				break
			}
		}
		if err := it.next(); err != nil {
			putSpans()
			return nil, c.at, err
		}
	}
	if len(spans) == 0 {
		putSpans()
		c.at = s.chargeCPU(c.at, 0, s.cfg.CPUPerEntryRead)
		return nil, c.at, nil
	}
	out := make([]KV, len(spans))
	for i, sp := range spans {
		out[i] = KV{
			Key:   arena[sp.ko : sp.ko+sp.kl : sp.ko+sp.kl],
			Value: arena[sp.vo : sp.vo+sp.vl : sp.vo+sp.vl],
		}
	}
	n := len(out)
	putSpans()
	c.at = s.chargeCPU(c.at, n, s.cfg.CPUPerEntryRead)
	return out, c.at, nil
}

// DeleteRange tombstones every live key in [lo, hi) as one atomic batch
// and returns the number deleted.
func (s *Store) DeleteRange(at vtime.Time, lo, hi []byte) (int, vtime.Time, error) {
	kvs, end, err := s.Scan(at, lo, hi, 0)
	if err != nil {
		return 0, end, err
	}
	if len(kvs) == 0 {
		return 0, end, nil
	}
	var b Batch
	for _, kv := range kvs {
		b.Delete(kv.Key)
	}
	end, err = s.Apply(end, &b)
	return len(kvs), end, err
}

func (s *Store) mergeIterLocked(c *cursor, start []byte) (*mergeIter, error) {
	sources := []iterator{memIterAdapter{s.mem.iter(start)}}
	for _, tables := range s.levels {
		for _, t := range tables {
			ti, err := newTableIter(c, t, start)
			if err != nil {
				return nil, err
			}
			sources = append(sources, ti)
		}
	}
	return newMergeIter(sources)
}

// Flush forces the memtable into an SSTable.
func (s *Store) Flush(at vtime.Time) (vtime.Time, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := &cursor{at: at}
	if err := s.flushLocked(c); err != nil {
		return at, err
	}
	return c.at, nil
}

func (s *Store) flushLocked(c *cursor) error {
	if s.mem.count > 0 {
		entries := make([]memEntry, 0, s.mem.count)
		for it := s.mem.iter(nil); it.valid(); it.next() {
			entries = append(entries, it.entry())
		}
		t, err := s.writeTable(c, entries)
		if err != nil {
			return err
		}
		s.levels[0] = append([]*table{t}, s.levels[0]...)
		s.stats.Flushes++
		s.stats.BytesFlushed += t.segLen
	}
	s.walEpoch++
	s.wal.reset(s.walEpoch)
	if err := s.writeSuper(c); err != nil {
		return err
	}
	s.mem = newMemtable(s.cfg.Seed + int64(s.walEpoch))
	return s.compactLocked(c)
}

// writeTable serializes entries into a freshly allocated segment.
func (s *Store) writeTable(c *cursor, entries []memEntry) (*table, error) {
	t, seg := buildTable(entries, s.cfg.BlockBytes, s.cfg.BloomBitsPerKey)
	segLen := (int64(len(seg)) + superSector - 1) / superSector * superSector
	if s.nextFree+segLen > s.file.Size() {
		return nil, fmt.Errorf("kvstore: out of space (need %d at %d, file %d)", segLen, s.nextFree, s.file.Size())
	}
	t.file = s.file
	t.segOff = s.nextFree
	end, err := s.file.WriteAt(c.at, seg, s.nextFree)
	if err != nil {
		return nil, err
	}
	c.advance(end)
	// Segment lengths stay sector-aligned; the table footer is located via
	// the exact serialized length.
	t.segLen = int64(len(seg))
	s.nextFree += segLen
	return t, nil
}

// compactLocked runs size-tiered compaction to a fixed point: when a level
// accumulates Fanout tables they merge into the next level; the bottom
// level merges into itself, dropping tombstones.
func (s *Store) compactLocked(c *cursor) error {
	bottom := s.cfg.MaxLevels - 1
	for {
		work := false
		for lvl := 0; lvl <= bottom; lvl++ {
			if len(s.levels[lvl]) < s.cfg.Fanout {
				continue
			}
			work = true
			target := lvl + 1
			drop := false
			if lvl == bottom {
				target = bottom
				drop = true // nothing below can be shadowed
			}
			merged, err := s.mergeTables(c, s.levels[lvl], drop)
			if err != nil {
				return err
			}
			var in int64
			for _, t := range s.levels[lvl] {
				in += t.segLen
			}
			s.stats.Compactions++
			s.stats.BytesCompacted += in
			s.levels[lvl] = nil
			if merged != nil {
				s.levels[target] = append([]*table{merged}, s.levels[target]...)
			}
			if err := s.writeSuper(c); err != nil {
				return err
			}
			break
		}
		if !work {
			return nil
		}
	}
}

// mergeTables merges tables (strongest first) into one new table.
// A nil result means everything merged away (all tombstones dropped).
func (s *Store) mergeTables(c *cursor, tables []*table, dropTombstones bool) (*table, error) {
	sources := make([]iterator, 0, len(tables))
	for _, t := range tables {
		ti, err := newTableIter(c, t, nil)
		if err != nil {
			return nil, err
		}
		sources = append(sources, ti)
	}
	it, err := newMergeIter(sources)
	if err != nil {
		return nil, err
	}
	var entries []memEntry
	for it.valid() {
		e := it.entry()
		if !(dropTombstones && e.kind == kindDelete) {
			entries = append(entries, e)
		}
		if err := it.next(); err != nil {
			return nil, err
		}
	}
	if len(entries) == 0 {
		return nil, nil
	}
	return s.writeTable(c, entries)
}

// Stats returns a snapshot of activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// TableCounts reports the number of tables per level, for tests and
// debugging.
func (s *Store) TableCounts() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.levels))
	for i, t := range s.levels {
		out[i] = len(t)
	}
	return out
}

// Seq returns the next sequence number the store will assign. Callers use
// it to derive unique monotonically increasing identifiers that survive
// recovery (the sequence is restored from the superblock and WAL).
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// MemtableBytes reports the current memtable payload size.
func (s *Store) MemtableBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.size
}

// SpaceUsed reports the bump-allocator frontier. Freed segments are not
// reused (the allocator is append-only); size the backing partition
// accordingly. Real deployments would reclaim; the simulation keeps the
// allocator simple because benchmark runs use fresh stores.
func (s *Store) SpaceUsed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextFree
}
