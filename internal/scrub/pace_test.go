package scrub

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/vtime"
)

// TestPacedScrubBoundsForegroundLatency is the scrub acceptance
// criterion for background verification: with a vtime admission budget
// on the walker, a foreground fio workload's tail latency during a full
// scrub stays within a small factor of its quiet-image baseline, and
// the walker's completion time stretches to (at least) its op budget.
//
// The walker goroutine sleeps a beat of real time between steps for the
// same reason keymgr's paced-rekey test does: a virtual-time actor that
// runs far ahead of its peers in real time stamps the shared busy-until
// resources in the virtual future, and earlier foreground arrivals then
// queue behind slots that "haven't happened yet". A genuinely paced
// walker spends wall-clock time waiting between admissions, which is
// what the sleep stands in for.
func TestPacedScrubBoundsForegroundLatency(t *testing.T) {
	e := newEncrypted(t, core.SchemeGCM, core.LayoutObjectEnd)
	if _, err := fio.Precondition(e, imgSize, bs, 0); err != nil {
		t.Fatal(err)
	}
	spec := fio.Spec{Pattern: fio.RandRead, BlockSize: bs, QueueDepth: 4, Span: 2 << 20, TotalOps: 256, Seed: 9}

	baseline, err := fio.Run(spec, e, 0)
	if err != nil {
		t.Fatal(err)
	}

	s, _, err := Start(0, e)
	if err != nil {
		t.Fatal(err)
	}
	s.SetPace(vtime.NewPacer(50, 64<<20)) // 50 walker ops/s + 64 MB/s

	var wg sync.WaitGroup
	wg.Add(1)
	var scrubEnd vtime.Time
	var scrubErr error
	go func() {
		defer wg.Done()
		at := vtime.Time(0)
		for {
			done, end, err := s.Step(at)
			if err != nil || done {
				scrubEnd, scrubErr = end, err
				return
			}
			at = end
			//vetrepo:ignore vtimeonly deliberate real-time pacing beat; the measured quantities stay virtual
			time.Sleep(20 * time.Millisecond) // real-time beat ≈ the virtual admission spacing
		}
	}()
	during, err := fio.Run(spec, e, 0)
	wg.Wait()
	if err != nil || scrubErr != nil {
		t.Fatalf("fio: %v, scrub: %v", err, scrubErr)
	}
	if p := s.Progress(); p.Found != 0 {
		t.Fatalf("scrub of a healthy image found %d bad blocks", p.Found)
	}

	t.Logf("baseline p99=%v during-paced-scrub p99=%v scrub end=%v",
		baseline.Latencies.P99, during.Latencies.P99, scrubEnd)

	// The budget was applied: 8 objects at 50 ops/s cannot finish before
	// 7 admission slots (140ms), plus the verified-byte debt.
	if scrubEnd < vtime.Time(140*time.Millisecond) {
		t.Fatalf("paced scrub finished at %v; budget not applied", scrubEnd)
	}
	// Foreground p99 stays bounded; 5x the quiet baseline is the alarm
	// line, matching the paced-rekey interference bound.
	if limit := 5 * baseline.Latencies.P99; during.Latencies.P99 > limit {
		t.Fatalf("p99 during paced scrub %v exceeds %v (baseline %v)",
			during.Latencies.P99, limit, baseline.Latencies.P99)
	}
}
