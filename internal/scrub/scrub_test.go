package scrub

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/simdisk"
)

const (
	imgSize = 8 << 20
	objSize = 1 << 20
	bs      = 4096
)

func testClient(t testing.TB) *rados.Client {
	t.Helper()
	cfg := rados.DefaultClusterConfig()
	cfg.OSDs = 3
	cfg.DisksPerOSD = 2
	cfg.DiskSectors = (768 << 20) / simdisk.SectorSize
	cfg.PGNum = 16
	cfg.Blob.ObjectCapacity = 1<<20 + 64<<10
	cfg.Blob.KVBytes = 64 << 20
	cfg.Blob.KV.MemtableBytes = 256 << 10
	cfg.Blob.KV.WALBytes = 4 << 20
	c, err := rados.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c.NewClient("scrub-test")
}

var imgCounter int

func newEncrypted(t testing.TB, scheme core.Scheme, layout core.Layout) *core.EncryptedImage {
	t.Helper()
	cl := testClient(t)
	imgCounter++
	name := fmt.Sprintf("simg%d", imgCounter)
	if _, err := rbd.CreateWithObjectSize(0, cl, "rbd", name, imgSize, objSize); err != nil {
		t.Fatal(err)
	}
	img, _, err := rbd.Open(0, cl, "rbd", name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Format(0, img, []byte("s3cret"), core.Options{Scheme: scheme, Layout: layout}); err != nil {
		t.Fatal(err)
	}
	e, _, err := core.Load(0, img, []byte("s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func reload(t *testing.T, e *core.EncryptedImage) *core.EncryptedImage {
	t.Helper()
	e2, _, err := core.Load(0, e.Image(), []byte("s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	return e2
}

// plantGarbage overwrites one block's ciphertext on a single OSD's copy
// of an object — a direct single-copy write that does not re-replicate,
// exactly the damage replica repair exists for.
func plantGarbage(t *testing.T, e *core.EncryptedImage, osd int, objIdx, block int64) {
	t.Helper()
	garbage := make([]byte, bs)
	for i := range garbage {
		garbage[i] = byte(0xA5 ^ i)
	}
	res, _, err := e.Image().OperateOn(0, osd, objIdx, 0,
		[]rados.Op{{Kind: rados.OpWrite, Off: block * bs, Data: garbage}})
	if err != nil {
		t.Fatalf("plant corruption on osd%d: %v", osd, err)
	}
	for _, r := range res {
		if err := r.Status.Err(); err != nil {
			t.Fatalf("plant corruption on osd%d: %v", osd, err)
		}
	}
}

func TestScrubCleanImage(t *testing.T) {
	e := newEncrypted(t, core.SchemeGCM, core.LayoutObjectEnd)
	data := make([]byte, 3<<20)
	rand.New(rand.NewSource(1)).Read(data)
	if _, err := e.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	s, _, err := Start(0, e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	p := s.Progress()
	if p.Found != 0 || p.Repaired != 0 {
		t.Fatalf("clean image scrub: %+v, want zero findings", p)
	}
	if want := int64(len(data)) / bs; p.Checked != want {
		t.Fatalf("checked %d blocks, want %d", p.Checked, want)
	}
	if p.NextObj != p.Objects || p.Objects != e.ObjectCount() {
		t.Fatalf("walk incomplete: %+v", p)
	}
	// The record is withdrawn on completion.
	if found, _, _, err := Active(0, e); err != nil || found {
		t.Fatalf("record survives completion: found=%v err=%v", found, err)
	}
}

func TestScrubDetectsAndRepairs(t *testing.T) {
	e := newEncrypted(t, core.SchemeGCM, core.LayoutObjectEnd)
	data := make([]byte, imgSize)
	rand.New(rand.NewSource(2)).Read(data)
	if _, err := e.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	// Rot one block in each of two objects, on the primary copy only.
	plantGarbage(t, e, e.Image().Replicas(1)[0], 1, 7)
	plantGarbage(t, e, e.Image().Replicas(5)[0], 5, 0)

	// The damage is loud on the foreground read path...
	buf := make([]byte, len(data))
	if _, err := e.ReadAt(0, buf, 0); !errors.Is(err, core.ErrIntegrity) {
		t.Fatalf("read of rotted image: err=%v, want ErrIntegrity", err)
	}

	// ...and a full scrub finds and heals both blocks from replicas.
	s, _, err := Start(0, e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	p := s.Progress()
	if p.Found != 2 || p.Repaired != 2 {
		t.Fatalf("scrub found=%d repaired=%d, want 2/2", p.Found, p.Repaired)
	}
	if _, err := e.ReadAt(0, buf, 0); err != nil {
		t.Fatalf("read after scrub repair: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("scrub-repaired data does not match the original plaintext")
	}
}

func TestScrubCheckOnlyCountsWithoutRepair(t *testing.T) {
	e := newEncrypted(t, core.SchemeGCM, core.LayoutObjectEnd)
	data := make([]byte, 2<<20)
	rand.New(rand.NewSource(3)).Read(data)
	if _, err := e.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	plantGarbage(t, e, e.Image().Replicas(0)[0], 0, 4)

	s, _, err := Start(0, e)
	if err != nil {
		t.Fatal(err)
	}
	s.SetRepair(false)
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	p := s.Progress()
	if p.Found != 1 || p.Repaired != 0 {
		t.Fatalf("check-only scrub found=%d repaired=%d, want 1/0", p.Found, p.Repaired)
	}
	// The damage is still there, and still loud.
	buf := make([]byte, bs)
	if _, err := e.ReadAt(0, buf, 4*bs); !errors.Is(err, core.ErrIntegrity) {
		t.Fatalf("read after check-only scrub: err=%v, want ErrIntegrity", err)
	}
}

func TestScrubCrashResume(t *testing.T) {
	e := newEncrypted(t, core.SchemeGCM, core.LayoutObjectEnd)
	data := make([]byte, imgSize)
	rand.New(rand.NewSource(4)).Read(data)
	if _, err := e.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	// Damage lives in a late object, past the pre-crash prefix.
	plantGarbage(t, e, e.Image().Replicas(6)[0], 6, 2)

	s, _, err := Start(0, e)
	if err != nil {
		t.Fatal(err)
	}
	// A second Start while the record exists must refuse.
	if _, _, err := Start(0, e); !errors.Is(err, ErrScrubActive) {
		t.Fatalf("second Start: err=%v, want ErrScrubActive", err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := s.Step(0); err != nil {
			t.Fatal(err)
		}
	}

	// "Crash": drop the walker, reload the image, resume from the cursor.
	e2 := reload(t, e)
	s2, _, err := Resume(0, e2)
	if err != nil {
		t.Fatal(err)
	}
	p := s2.Progress()
	if p.NextObj != 3 || p.Checked != s.Progress().Checked {
		t.Fatalf("resumed cursor %+v, want walk position 3", p)
	}
	if _, err := s2.Run(0); err != nil {
		t.Fatal(err)
	}
	p = s2.Progress()
	if p.Found != 1 || p.Repaired != 1 {
		t.Fatalf("resumed scrub found=%d repaired=%d, want 1/1", p.Found, p.Repaired)
	}
	buf := make([]byte, len(data))
	if _, err := e2.ReadAt(0, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("data mismatch after crash-resumed scrub")
	}
	if found, _, _, err := Active(0, e2); err != nil || found {
		t.Fatalf("record survives completion: found=%v err=%v", found, err)
	}
	// Nothing left to resume.
	if _, _, err := Resume(0, e2); !errors.Is(err, ErrNoScrub) {
		t.Fatalf("Resume with no record: err=%v, want ErrNoScrub", err)
	}
}

// scribbleProgress overwrites the persisted scrub cursor with raw
// bytes, simulating a torn OMAP write under the walker.
func scribbleProgress(t *testing.T, e *core.EncryptedImage, raw []byte) {
	t.Helper()
	res, _, err := e.Image().OperateHeader(0, []rados.Op{{
		Kind:  rados.OpOmapSet,
		Pairs: []rados.Pair{{Key: []byte(progressKey), Value: raw}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Status != rados.StatusOK {
		t.Fatalf("raw omap set: %v", res[0].Status)
	}
}

func TestScrubResumeCorruptCursorRestarts(t *testing.T) {
	e := newEncrypted(t, core.SchemeGCM, core.LayoutObjectEnd)
	data := make([]byte, 2<<20)
	rand.New(rand.NewSource(5)).Read(data)
	if _, err := e.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	s, _, err := Start(0, e)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Step(0); err != nil {
		t.Fatal(err)
	}
	scribbleProgress(t, e, []byte("\xde\xadnot a cursor"))

	// The raw load classifies as corrupt, not as "no scrub".
	if _, _, _, err := loadProgress(0, e); !errors.Is(err, rbd.ErrCorruptCursor) {
		t.Fatalf("loadProgress: %v, want ErrCorruptCursor", err)
	}
	s2, _, err := Resume(0, reload(t, e))
	if err != nil {
		t.Fatalf("Resume over corrupt cursor: %v", err)
	}
	p := s2.Progress()
	if p.NextObj != 0 || p.Objects != e.ObjectCount() || p.Checked != 0 {
		t.Fatalf("restarted cursor %+v, want fresh full walk", p)
	}
	// The replacement record is durable: a second crash-resume sees a
	// clean record, not the corruption.
	if _, _, err := Resume(0, reload(t, e)); err != nil {
		t.Fatalf("re-Resume after restart: %v", err)
	}
	if _, err := s2.Run(0); err != nil {
		t.Fatal(err)
	}
	// An out-of-domain cursor (resize happened, domain mismatch) gets the
	// same restart.
	s3, _, err := Start(0, e)
	if err != nil {
		t.Fatal(err)
	}
	s3.prog.Objects = 999
	if _, err := s3.persist(0); err != nil {
		t.Fatal(err)
	}
	s4, _, err := Resume(0, reload(t, e))
	if err != nil {
		t.Fatal(err)
	}
	if p := s4.Progress(); p.Objects != e.ObjectCount() || p.NextObj != 0 {
		t.Fatalf("out-of-domain cursor not restarted: %+v", p)
	}
}

func TestScrubAbort(t *testing.T) {
	e := newEncrypted(t, core.SchemeGCM, core.LayoutObjectEnd)
	if _, _, err := Start(0, e); err != nil {
		t.Fatal(err)
	}
	if _, err := Abort(0, e); err != nil {
		t.Fatal(err)
	}
	if found, _, _, err := Active(0, e); err != nil || found {
		t.Fatalf("record survives abort: found=%v err=%v", found, err)
	}
	// Start is possible again.
	if _, _, err := Start(0, e); err != nil {
		t.Fatal(err)
	}
}

// TestScrubAllCombos runs a clean-image sweep across every scheme ×
// layout pair: the walk itself (read geometry, epoch resolution, cursor
// lifecycle) is scheme-independent even though detectability is not.
func TestScrubAllCombos(t *testing.T) {
	for _, combo := range []struct {
		Scheme core.Scheme
		Layout core.Layout
	}{
		{core.SchemeLUKS2, core.LayoutNone},
		{core.SchemeEME2Det, core.LayoutNone},
		{core.SchemeXTSRand, core.LayoutUnaligned},
		{core.SchemeXTSRand, core.LayoutObjectEnd},
		{core.SchemeXTSRand, core.LayoutOMAP},
		{core.SchemeGCM, core.LayoutUnaligned},
		{core.SchemeGCM, core.LayoutObjectEnd},
		{core.SchemeGCM, core.LayoutOMAP},
		{core.SchemeEME2Rand, core.LayoutUnaligned},
		{core.SchemeEME2Rand, core.LayoutObjectEnd},
		{core.SchemeEME2Rand, core.LayoutOMAP},
	} {
		t.Run(fmt.Sprintf("%v-%v", combo.Scheme, combo.Layout), func(t *testing.T) {
			e := newEncrypted(t, combo.Scheme, combo.Layout)
			data := make([]byte, 2<<20)
			rand.New(rand.NewSource(6)).Read(data)
			if _, err := e.WriteAt(0, data, 0); err != nil {
				t.Fatal(err)
			}
			s, _, err := Start(0, e)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(0); err != nil {
				t.Fatal(err)
			}
			p := s.Progress()
			if p.Found != 0 {
				t.Fatalf("clean image reported %d bad blocks", p.Found)
			}
			if want := int64(len(data)) / bs; p.Checked != want {
				t.Fatalf("checked %d blocks, want %d", p.Checked, want)
			}
		})
	}
}
