package scrub

// metrics.go: scrub-walker progress gauges and finding counters,
// labeled by image, resolved once per Scrubber so Step records
// allocation-free — the same per-image walker pattern as
// internal/keymgr and internal/clone (see METRICS.md).

import (
	"repro/internal/telemetry"
	"repro/internal/vtime"
)

var (
	mScrubDone = telemetry.NewGaugeVec("scrub_objects_done",
		"objects the scrub walker has verified", "image")
	mScrubTotal = telemetry.NewGaugeVec("scrub_objects_total",
		"objects in the scrub walk domain", "image")
	mScrubBlocks = telemetry.NewCounterVec("scrub_blocks_checked_total",
		"present blocks opened and verified by the scrub walker", "image")
	mScrubFound = telemetry.NewCounterVec("scrub_blocks_bad_total",
		"blocks that failed scrub verification (integrity or key-epoch failures)", "image")
	mScrubRepaired = telemetry.NewCounterVec("scrub_blocks_repaired_total",
		"bad blocks recovered from an intact replica and re-sealed", "image")
	mScrubDebt = telemetry.NewGaugeVec("scrub_pacer_debt_ns",
		"scrub pacer debt in virtual nanoseconds (0 = unpaced or inside budget)", "image")
	mScrubStall = telemetry.NewGaugeVec("scrub_pacer_stall_ns",
		"cumulative virtual time the scrub walker spent stalled in pacer admission", "image")
)

// walkerMetrics is the per-image bundle of resolved series.
type walkerMetrics struct {
	done, total, debt, stall *telemetry.Gauge
	blocks, found, repaired  *telemetry.Counter
}

func newWalkerMetrics(image string) walkerMetrics {
	return walkerMetrics{
		done:     mScrubDone.With(image),
		total:    mScrubTotal.With(image),
		debt:     mScrubDebt.With(image),
		stall:    mScrubStall.With(image),
		blocks:   mScrubBlocks.With(image),
		found:    mScrubFound.With(image),
		repaired: mScrubRepaired.With(image),
	}
}

// publish pushes the current cursor (and pacer debt at virtual time at)
// into the gauges.
func (s *Scrubber) publish(at vtime.Time) {
	s.met.done.Set(s.prog.NextObj)
	s.met.total.Set(s.prog.Objects)
	s.met.debt.SetDuration(s.pace.Debt(at))
	s.met.stall.SetDuration(s.pace.Stall())
}
