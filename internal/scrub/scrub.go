// Package scrub is the background integrity walker: a paced sweep over
// every object of an encrypted image that opens each present block
// under its recorded key epoch and, optionally, repairs blocks whose
// ciphertext no longer authenticates from an intact replica copy. It
// is the third consumer of rbd's shared walker-cursor protocol and the
// vtime.Pacer admission budget, alongside keymgr.Rekeyer and
// clone.Flattener: progress is persisted in the image header's OMAP
// after every object, so a crashed client resumes where it left off,
// and the pacer bounds the walker's interference on foreground IO.
//
// What a scrub pass proves depends on the scheme — the paper's
// integrity argument as an operational property. SchemeGCM's
// authenticated per-block metadata turns bit rot anywhere in the
// ciphertext into a detected (and, with replicas, repairable) finding;
// the length-preserving schemes decrypt anything to something, so for
// them the walk verifies structure only (every block's epoch tag
// resolves to a live key). See core.VerifyObject.
package scrub

import (
	"errors"

	"repro/internal/core"
	"repro/internal/rbd"
	"repro/internal/telemetry"
	"repro/internal/vtime"
)

// progressKey is the header-OMAP key holding the persisted scrub cursor.
const progressKey = "scrub.walk"

var (
	// ErrScrubActive reports a Start while an unfinished scrub exists —
	// resume it instead (two concurrent walkers would double-charge the
	// pacer and fight over the cursor).
	ErrScrubActive = errors.New("scrub: scrub already in progress; resume it")
	// ErrNoScrub reports a Resume with no persisted progress record.
	ErrNoScrub = errors.New("scrub: no scrub in progress")
)

// Progress is the persisted scrub cursor.
type Progress struct {
	NextObj int64 `json:"next_obj"` // first object not yet verified
	Objects int64 `json:"objects"`  // walk domain, fixed at Start
	// Checked/Found/Repaired count blocks verified, failed, and
	// recovered so far (informational; crash-safety needs only NextObj —
	// re-verifying an object is idempotent).
	Checked  int64 `json:"checked"`
	Found    int64 `json:"found"`
	Repaired int64 `json:"repaired"`
}

// Done reports whether the walk has covered every object.
func (p Progress) Done() bool { return p.NextObj >= p.Objects }

// valid reports whether a decoded cursor is internally coherent and
// matches the image's walk domain; anything else gets the same
// restart-from-scratch treatment as an undecodable record.
func (p Progress) valid(objects int64) bool {
	return p.NextObj >= 0 && p.NextObj <= p.Objects && p.Objects == objects &&
		p.Checked >= 0 && p.Found >= 0 && p.Repaired >= 0
}

// Scrubber drives one verification sweep over one image.
type Scrubber struct {
	img    *core.EncryptedImage
	prog   Progress
	pace   *vtime.Pacer
	met    walkerMetrics
	repair bool
}

// newScrubber binds a walker to its image-labeled progress gauges.
func newScrubber(img *core.EncryptedImage, prog Progress) *Scrubber {
	return &Scrubber{img: img, met: newWalkerMetrics(img.Image().Name()), prog: prog, repair: true}
}

// SetPace installs a virtual-time admission budget (IOPS + bytes/s
// caps) on the walker, bounding its interference on foreground IO the
// way Ceph's osd_scrub limits bound deep scrub. A nil pacer removes
// the cap. The same pacer may be shared with other walkers to cap
// their combined rate.
func (s *Scrubber) SetPace(p *vtime.Pacer) { s.pace = p }

// SetRepair enables (the default) or disables replica repair of blocks
// that fail verification. A check-only scrub still counts findings.
func (s *Scrubber) SetRepair(on bool) { s.repair = on }

// Progress returns the current cursor.
func (s *Scrubber) Progress() Progress { return s.prog }

// loadProgress reads the persisted cursor, reporting found=false when
// no scrub is in flight.
func loadProgress(at vtime.Time, img *core.EncryptedImage) (Progress, bool, vtime.Time, error) {
	var p Progress
	found, end, err := img.Image().LoadCursor(at, progressKey, &p)
	if err != nil {
		return Progress{}, false, at, err
	}
	return p, found, end, nil
}

func (s *Scrubber) persist(at vtime.Time) (vtime.Time, error) {
	return s.img.Image().SaveCursor(at, progressKey, s.prog)
}

func (s *Scrubber) clearProgress(at vtime.Time) (vtime.Time, error) {
	return s.img.Image().ClearCursor(at, progressKey)
}

// Start begins a scrub sweep. The progress record is persisted first,
// so a crash at any later point resumes instead of silently forgetting
// the sweep was wanted.
func Start(at vtime.Time, img *core.EncryptedImage) (*Scrubber, vtime.Time, error) {
	if _, found, end, err := loadProgress(at, img); err != nil {
		return nil, at, err
	} else if found {
		return nil, end, ErrScrubActive
	}
	s := newScrubber(img, Progress{Objects: img.ObjectCount()})
	at, err := s.persist(at)
	if err != nil {
		return nil, at, err
	}
	s.publish(at)
	telemetry.Log.Append(at, telemetry.EventScrubStart, img.Image().Name(), "verify sweep", s.prog.Objects)
	return s, at, nil
}

// Resume reattaches to an interrupted scrub on a freshly loaded image —
// the crash-recovery path. Re-verifying the object the crashed walker
// was inside is idempotent, so the cursor's object granularity is safe.
func Resume(at vtime.Time, img *core.EncryptedImage) (*Scrubber, vtime.Time, error) {
	p, found, at, err := loadProgress(at, img)
	switch {
	case errors.Is(err, rbd.ErrCorruptCursor):
		return restartFromCorrupt(at, img)
	case err != nil:
		return nil, at, err
	case !found:
		return nil, at, ErrNoScrub
	case !p.valid(img.ObjectCount()):
		return restartFromCorrupt(at, img)
	}
	s := newScrubber(img, p)
	s.publish(at)
	return s, at, nil
}

// restartFromCorrupt replaces an undecodable (or out-of-domain) scrub
// cursor with a full re-walk. The record's existence proves a sweep
// was in flight; its position and counters are lost, and verifying
// every object again from zero is merely redundant work.
func restartFromCorrupt(at vtime.Time, img *core.EncryptedImage) (*Scrubber, vtime.Time, error) {
	s := newScrubber(img, Progress{Objects: img.ObjectCount()})
	at, err := s.persist(at)
	if err != nil {
		return nil, at, err
	}
	s.publish(at)
	return s, at, nil
}

// Abort withdraws an image's scrub progress record. Nothing else needs
// undoing — verification has no partial state, and any repairs already
// committed are ordinary (good) writes.
func Abort(at vtime.Time, img *core.EncryptedImage) (vtime.Time, error) {
	s := newScrubber(img, Progress{})
	return s.clearProgress(at)
}

// Step verifies one object (or finishes the sweep once every object is
// walked: the progress record is removed). Verification findings are
// counted, repaired when enabled, and never abort the walk; err is
// reserved for transport trouble. It returns done=true once the sweep
// is fully complete.
func (s *Scrubber) Step(at vtime.Time) (done bool, end vtime.Time, err error) {
	if s.prog.Done() {
		at, err = s.clearProgress(at)
		if err == nil {
			s.publish(at)
			telemetry.Log.Append(at, telemetry.EventScrubFinish, s.img.Image().Name(), "findings", s.prog.Found)
		}
		return err == nil, at, err
	}
	// Pacing: one walker op is admitted against the budget up front; the
	// bytes actually read and opened (unknown until the object was
	// examined) are charged afterwards as debt against the next
	// admission.
	bs := s.img.Options().BlockSize
	checked, bad, at, err := s.img.VerifyObject(s.pace.Admit(at, 0), s.prog.NextObj)
	if err != nil {
		return false, at, err
	}
	s.pace.Charge(int64(checked) * bs)
	if len(bad) > 0 {
		s.prog.Found += int64(len(bad))
		s.met.found.Add(int64(len(bad)))
		if s.repair {
			blocks := make([]int64, len(bad))
			for i, b := range bad {
				blocks[i] = b.Block
			}
			n, end2, err := s.img.RepairObject(at, s.prog.NextObj, blocks)
			if err != nil {
				return false, at, err
			}
			at = end2
			s.pace.Charge(2 * int64(n) * bs) // replica read + re-seal write
			s.prog.Repaired += int64(n)
			s.met.repaired.Add(int64(n))
			telemetry.Log.Append(at, telemetry.EventRepairDone, s.img.Image().Name(), "blocks re-sealed from replica", int64(n))
		}
	}
	s.prog.NextObj++
	s.prog.Checked += int64(checked)
	s.met.blocks.Add(int64(checked))
	at, err = s.persist(at)
	s.publish(at)
	return false, at, err
}

// Run drives Step until the sweep completes. Like the other walkers it
// consumes client crypto and cluster resources exactly like foreground
// IO, so concurrently measured workloads see its interference.
func (s *Scrubber) Run(at vtime.Time) (vtime.Time, error) {
	for {
		done, end, err := s.Step(at)
		if err != nil {
			return end, err
		}
		at = end
		if done {
			return at, nil
		}
	}
}

// Active reports whether an image has an unfinished scrub, and its
// cursor.
func Active(at vtime.Time, img *core.EncryptedImage) (bool, Progress, vtime.Time, error) {
	p, found, end, err := loadProgress(at, img)
	return found, p, end, err
}
