package xts

import (
	"bytes"
	"crypto/aes"
	"encoding/hex"
	//vetrepo:ignore cryptohygiene fixed-seed source generating test plaintexts, never key material
	"math/rand"
	"testing"
	"testing/quick"
)

// IEEE 1619 XTS-AES-128 test vectors (the two classic all-zero /
// structured-key vectors exercised by most implementations).
func TestIEEEVectors(t *testing.T) {
	cases := []struct {
		name          string
		key1, key2    string
		sector        uint64
		plain, cipher string
	}{
		{
			name:   "vector1-zero",
			key1:   "00000000000000000000000000000000",
			key2:   "00000000000000000000000000000000",
			plain:  "0000000000000000000000000000000000000000000000000000000000000000",
			cipher: "917cf69ebd68b2ec9b9fe9a3eadda692cd43d2f59598ed858c02c2652fbf922e",
		},
		{
			name:   "vector2",
			key1:   "11111111111111111111111111111111",
			key2:   "22222222222222222222222222222222",
			sector: 0x3333333333,
			plain:  "4444444444444444444444444444444444444444444444444444444444444444",
			cipher: "c454185e6a16936e39334038acef838bfb186fff7480adc4289382ecd6d394f0",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k1, _ := hex.DecodeString(tc.key1)
			k2, _ := hex.DecodeString(tc.key2)
			pt, _ := hex.DecodeString(tc.plain)
			want, _ := hex.DecodeString(tc.cipher)
			c, err := NewCipher(append(k1, k2...))
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(pt))
			if err := c.Encrypt(got, pt, SectorTweak(tc.sector)); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("ciphertext\n got %x\nwant %x", got, want)
			}
			back := make([]byte, len(pt))
			if err := c.Decrypt(back, got, SectorTweak(tc.sector)); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, pt) {
				t.Fatal("decrypt mismatch")
			}
		})
	}
}

func TestKeySizes(t *testing.T) {
	for _, n := range []int{32, 64} {
		if _, err := NewCipher(make([]byte, n)); err != nil {
			t.Fatalf("key size %d rejected: %v", n, err)
		}
	}
	for _, n := range []int{0, 16, 31, 48, 65} {
		if _, err := NewCipher(make([]byte, n)); err == nil {
			t.Fatalf("key size %d accepted", n)
		}
	}
}

func TestShortDataRejected(t *testing.T) {
	c, _ := NewCipher(make([]byte, 64))
	if err := c.Encrypt(make([]byte, 8), make([]byte, 8), SectorTweak(0)); err == nil {
		t.Fatal("short data accepted")
	}
	if err := c.Encrypt(make([]byte, 8), make([]byte, 32), SectorTweak(0)); err == nil {
		t.Fatal("short dst accepted")
	}
}

// Reference implementation: straightforward per-block XTS without the
// optimizations or the shared code paths, used to cross-check the main
// implementation on whole-block inputs.
func referenceEncrypt(t *testing.T, key []byte, tweak [16]byte, pt []byte) []byte {
	t.Helper()
	half := len(key) / 2
	k1, _ := aes.NewCipher(key[:half])
	k2, _ := aes.NewCipher(key[half:])
	tw := make([]byte, 16)
	k2.Encrypt(tw, tweak[:])
	out := make([]byte, len(pt))
	buf := make([]byte, 16)
	for i := 0; i < len(pt)/16; i++ {
		for j := 0; j < 16; j++ {
			buf[j] = pt[i*16+j] ^ tw[j]
		}
		k1.Encrypt(buf, buf)
		for j := 0; j < 16; j++ {
			out[i*16+j] = buf[j] ^ tw[j]
		}
		// multiply tweak by x (little-endian convention)
		carry := byte(0)
		for j := 0; j < 16; j++ {
			next := tw[j] >> 7
			tw[j] = tw[j]<<1 | carry
			carry = next
		}
		if carry != 0 {
			tw[0] ^= 0x87
		}
	}
	return out
}

func TestAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		keyLen := 32
		if trial%2 == 0 {
			keyLen = 64
		}
		key := make([]byte, keyLen)
		rng.Read(key)
		var tweak [16]byte
		rng.Read(tweak[:])
		n := (1 + rng.Intn(64)) * 16
		pt := make([]byte, n)
		rng.Read(pt)

		c, err := NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, n)
		if err := c.Encrypt(got, pt, tweak); err != nil {
			t.Fatal(err)
		}
		want := referenceEncrypt(t, key, tweak, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: mismatch vs reference", trial)
		}
	}
}

// Property: decrypt(encrypt(x)) == x for all lengths >= 16 including
// ciphertext-stealing tails, and in-place operation works.
func TestRoundTripProperty(t *testing.T) {
	c, err := NewCipher([]byte("0123456789abcdef0123456789abcdefFEDCBA9876543210FEDCBA9876543210"))
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, ln uint16, tweakSeed int64) bool {
		n := int(ln)%4080 + 16
		rng := rand.New(rand.NewSource(seed))
		pt := make([]byte, n)
		rng.Read(pt)
		var tweak [16]byte
		rand.New(rand.NewSource(tweakSeed)).Read(tweak[:])

		ct := make([]byte, n)
		if err := c.Encrypt(ct, pt, tweak); err != nil {
			return false
		}
		if bytes.Equal(ct, pt) {
			return false // vanishingly unlikely
		}
		back := make([]byte, n)
		if err := c.Decrypt(back, ct, tweak); err != nil {
			return false
		}
		if !bytes.Equal(back, pt) {
			return false
		}
		// In-place.
		inplace := append([]byte(nil), pt...)
		if err := c.Encrypt(inplace, inplace, tweak); err != nil {
			return false
		}
		return bytes.Equal(inplace, ct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: different tweaks produce unrelated ciphertexts for the same
// plaintext (the core of the paper's random-IV idea).
func TestTweakSensitivity(t *testing.T) {
	c, _ := NewCipher(make([]byte, 64))
	pt := make([]byte, 4096)
	ct1 := make([]byte, 4096)
	ct2 := make([]byte, 4096)
	if err := c.Encrypt(ct1, pt, SectorTweak(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Encrypt(ct2, pt, SectorTweak(2)); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct1, ct2) {
		t.Fatal("different tweaks must differ")
	}
	// And the same tweak is deterministic (the paper's §1 concern).
	ct3 := make([]byte, 4096)
	if err := c.Encrypt(ct3, pt, SectorTweak(1)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ct1, ct3) {
		t.Fatal("same tweak must repeat")
	}
}

// XTS narrow-block property (§2.1): flipping a bit in one 16-byte
// sub-block changes only that sub-block of the ciphertext. This is the
// leakage the paper's random IV removes across overwrites.
func TestNarrowBlockLocality(t *testing.T) {
	c, _ := NewCipher(make([]byte, 64))
	pt := make([]byte, 4096)
	for i := range pt {
		pt[i] = byte(i)
	}
	ct1 := make([]byte, 4096)
	if err := c.Encrypt(ct1, pt, SectorTweak(7)); err != nil {
		t.Fatal(err)
	}
	pt2 := append([]byte(nil), pt...)
	pt2[1000] ^= 0x01 // inside sub-block 62
	ct2 := make([]byte, 4096)
	if err := c.Encrypt(ct2, pt2, SectorTweak(7)); err != nil {
		t.Fatal(err)
	}
	changed := 1000 / 16
	for b := 0; b < 256; b++ {
		same := bytes.Equal(ct1[b*16:(b+1)*16], ct2[b*16:(b+1)*16])
		if b == changed && same {
			t.Fatal("changed sub-block should differ")
		}
		if b != changed && !same {
			t.Fatalf("sub-block %d changed unexpectedly (narrow-block property violated)", b)
		}
	}
}

// Sub-block ciphertext splicing (§2.1): combining sub-blocks of two
// ciphertexts written with the same tweak decrypts to the corresponding
// plaintext combination — a legal ciphertext an attacker can forge.
func TestSpliceAttackPossibleWithSameTweak(t *testing.T) {
	c, _ := NewCipher(make([]byte, 64))
	ptA := bytes.Repeat([]byte{0xAA}, 64)
	ptB := bytes.Repeat([]byte{0xBB}, 64)
	ctA := make([]byte, 64)
	ctB := make([]byte, 64)
	tw := SectorTweak(3)
	c.Encrypt(ctA, ptA, tw)
	c.Encrypt(ctB, ptB, tw)

	spliced := append(append([]byte(nil), ctA[:32]...), ctB[32:]...)
	out := make([]byte, 64)
	if err := c.Decrypt(out, spliced, tw); err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), ptA[:32]...), ptB[32:]...)
	if !bytes.Equal(out, want) {
		t.Fatal("splice should decrypt cleanly — this demonstrates the attack")
	}
}

func TestMul2MatchesCarrylessSquare(t *testing.T) {
	// Doubling 128 times from 1 must visit 128 distinct values then fold.
	var v [16]byte
	v[0] = 1
	seen := map[[16]byte]bool{v: true}
	for i := 0; i < 128; i++ {
		mul2(&v)
		if seen[v] {
			t.Fatalf("cycle after %d doublings", i+1)
		}
		seen[v] = true
	}
}

func TestCiphertextStealingLength(t *testing.T) {
	c, _ := NewCipher(make([]byte, 64))
	for _, n := range []int{17, 31, 33, 100, 4095} {
		pt := make([]byte, n)
		for i := range pt {
			pt[i] = byte(i * 3)
		}
		ct := make([]byte, n)
		if err := c.Encrypt(ct, pt, SectorTweak(9)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(ct) != n {
			t.Fatalf("n=%d: length changed", n)
		}
		back := make([]byte, n)
		if err := c.Decrypt(back, ct, SectorTweak(9)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(back, pt) {
			t.Fatalf("n=%d: round trip failed", n)
		}
	}
}

func TestSectorTweakLayout(t *testing.T) {
	tw := SectorTweak(0x0102030405060708)
	want := []byte{8, 7, 6, 5, 4, 3, 2, 1, 0, 0, 0, 0, 0, 0, 0, 0}
	if !bytes.Equal(tw[:], want) {
		t.Fatalf("tweak layout %x", tw)
	}
}
