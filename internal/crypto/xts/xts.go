// Package xts implements the XTS-AES tweakable block cipher mode of
// IEEE Std 1619 / NIST SP 800-38E, the mode used by LUKS2, dm-crypt,
// BitLocker and FileVault for sector encryption (paper §2.1).
//
// Unlike kernel implementations that derive the 16-byte tweak from the
// sector number only, Encrypt and Decrypt accept an arbitrary tweak so the
// paper's random-IV scheme can feed a random 128-bit value. The
// sector-number convention is available via SectorTweak. Ciphertext
// stealing handles data units that are not a multiple of 16 bytes.
//
// XTS is a narrow-block mode: a plaintext change affects only the 16-byte
// sub-block that contains it (§2.1's leakage discussion). The eme package
// provides the wide-block alternative.
package xts

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// BlockSize is the cipher block size in bytes.
const BlockSize = 16

// TweakSize is the tweak (IV) size in bytes.
const TweakSize = 16

var (
	// ErrKeySize reports an XTS key that is not 32 or 64 bytes
	// (two AES-128 or two AES-256 keys).
	ErrKeySize = errors.New("xts: key must be 32 or 64 bytes")
	// ErrDataSize reports a data unit shorter than one block.
	ErrDataSize = errors.New("xts: data unit must be at least 16 bytes")
)

// Cipher is an XTS-AES instance. It is safe for concurrent use.
type Cipher struct {
	k1 cipher.Block // data encryption key
	k2 cipher.Block // tweak encryption key
}

// NewCipher creates an XTS-AES cipher from the concatenation of the data
// key and the tweak key (each 16 bytes for XTS-AES-128 or 32 bytes for
// XTS-AES-256).
func NewCipher(key []byte) (*Cipher, error) {
	if len(key) != 32 && len(key) != 64 {
		return nil, fmt.Errorf("%w (got %d)", ErrKeySize, len(key))
	}
	half := len(key) / 2
	k1, err := aes.NewCipher(key[:half])
	if err != nil {
		return nil, err
	}
	k2, err := aes.NewCipher(key[half:])
	if err != nil {
		return nil, err
	}
	return &Cipher{k1: k1, k2: k2}, nil
}

// SectorTweak returns the conventional deterministic tweak for a sector:
// the 64-bit little-endian sector number padded with zeros, as used by
// dm-crypt/LUKS ("plain64" IV).
func SectorTweak(sector uint64) [TweakSize]byte {
	var t [TweakSize]byte
	binary.LittleEndian.PutUint64(t[:8], sector)
	return t
}

// mul2 multiplies a 128-bit value by x in GF(2^128) with the XTS
// little-endian convention (carry out of byte 15 folds back as 0x87 into
// byte 0).
func mul2(t *[TweakSize]byte) {
	var carry byte
	for i := 0; i < TweakSize; i++ {
		next := t[i] >> 7
		t[i] = t[i]<<1 | carry
		carry = next
	}
	if carry != 0 {
		t[0] ^= 0x87
	}
}

// Encrypt encrypts a data unit src into dst (which may alias src) under
// the given tweak. len(dst) must be at least len(src), and len(src) at
// least one block; ciphertext stealing covers trailing partial blocks.
func (c *Cipher) Encrypt(dst, src []byte, tweak [TweakSize]byte) error {
	return c.process(dst, src, tweak, true)
}

// Decrypt reverses Encrypt.
func (c *Cipher) Decrypt(dst, src []byte, tweak [TweakSize]byte) error {
	return c.process(dst, src, tweak, false)
}

// scratch holds the per-call tweak and block state. It is pooled rather
// than stack-allocated because the arrays are passed into cipher.Block
// interface methods, which makes them escape — one heap allocation per
// sector — and the sector path must be allocation-free in steady state.
type scratch struct {
	tw, t, t2, x, tail, pp, cc [BlockSize]byte
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func (c *Cipher) process(dst, src []byte, tweak [TweakSize]byte, enc bool) error {
	if len(src) < BlockSize {
		return fmt.Errorf("%w (got %d)", ErrDataSize, len(src))
	}
	if len(dst) < len(src) {
		return errors.New("xts: dst shorter than src")
	}
	s0 := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s0)
	t, x := &s0.t, &s0.x
	// Copy the tweak into the pooled scratch before handing it to the
	// cipher.Block interface; a param slice would escape (allocate).
	s0.tw = tweak
	c.k2.Encrypt(t[:], s0.tw[:])

	full := len(src) / BlockSize
	rem := len(src) % BlockSize
	steal := rem != 0

	blocks := full
	if steal {
		blocks = full - 1 // the final full block participates in stealing
	}

	for i := 0; i < blocks; i++ {
		s := src[i*BlockSize : (i+1)*BlockSize]
		d := dst[i*BlockSize : (i+1)*BlockSize]
		xorBlock(x, s, t)
		if enc {
			c.k1.Encrypt(x[:], x[:])
		} else {
			c.k1.Decrypt(x[:], x[:])
		}
		xorInto(d, x, t)
		mul2(t)
	}

	if !steal {
		return nil
	}

	// Ciphertext stealing for the trailing partial block (IEEE 1619 §5.3).
	// The tail is copied up front because dst may alias src.
	m := blocks // index of the last full block
	tail, pp, cc, t2 := &s0.tail, &s0.pp, &s0.cc, &s0.t2
	clear(tail[:])
	copy(tail[:rem], src[(m+1)*BlockSize:])
	if enc {
		// CC = E(Pm) under tweak m; the stolen head of CC becomes the
		// final partial ciphertext; the last full block is
		// E(tail || rest of CC) under tweak m+1.
		xorBlock(x, src[m*BlockSize:(m+1)*BlockSize], t)
		c.k1.Encrypt(x[:], x[:])
		xorIntoSelf(x, t)
		copy(cc[:], x[:])
		copy(pp[:rem], tail[:rem])
		copy(pp[rem:], cc[rem:])
		copy(dst[(m+1)*BlockSize:], cc[:rem]) // stolen head
		*t2 = *t
		mul2(t2)
		xorBlock(x, pp[:], t2)
		c.k1.Encrypt(x[:], x[:])
		xorInto(dst[m*BlockSize:(m+1)*BlockSize], x, t2)
	} else {
		// Mirror image: decrypt the last full block under tweak m+1 first.
		*t2 = *t
		mul2(t2)
		xorBlock(x, src[m*BlockSize:(m+1)*BlockSize], t2)
		c.k1.Decrypt(x[:], x[:])
		xorIntoSelf(x, t2)
		copy(pp[:], x[:])
		copy(cc[:rem], tail[:rem])
		copy(cc[rem:], pp[rem:])
		copy(dst[(m+1)*BlockSize:], pp[:rem])
		xorBlock(x, cc[:], t)
		c.k1.Decrypt(x[:], x[:])
		xorInto(dst[m*BlockSize:(m+1)*BlockSize], x, t)
	}
	return nil
}

func xorBlock(dst *[BlockSize]byte, src []byte, t *[TweakSize]byte) {
	for i := 0; i < BlockSize; i++ {
		dst[i] = src[i] ^ t[i]
	}
}

func xorInto(dst []byte, x *[BlockSize]byte, t *[TweakSize]byte) {
	for i := 0; i < BlockSize; i++ {
		dst[i] = x[i] ^ t[i]
	}
}

func xorIntoSelf(x *[BlockSize]byte, t *[TweakSize]byte) {
	for i := 0; i < BlockSize; i++ {
		x[i] ^= t[i]
	}
}
