// Package essiv implements AES-CBC with ESSIV (Encrypted Salt-Sector IV),
// the historical dm-crypt default that XTS replaced (paper §2.1,
// footnote 1). It is provided as a comparison cipher for the ablation
// benches: CBC leaks the position of the first changed sub-block on
// deterministic overwrites, one of the weaknesses the paper catalogs.
package essiv

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// BlockSize is the cipher block size.
const BlockSize = aes.BlockSize

// Cipher encrypts sectors with AES-CBC using an ESSIV tweak: the sector
// IV is the sector number encrypted under the SHA-256 hash of the data
// key, so equal sector numbers yield equal IVs without exposing a
// predictable IV to chosen-plaintext games.
type Cipher struct {
	data cipher.Block
	salt cipher.Block
}

// New creates an ESSIV cipher from a 16, 24 or 32-byte AES key.
func New(key []byte) (*Cipher, error) {
	data, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(key)
	salt, err := aes.NewCipher(sum[:])
	if err != nil {
		return nil, err
	}
	return &Cipher{data: data, salt: salt}, nil
}

// iv derives the ESSIV for a sector.
func (c *Cipher) iv(sector uint64) [BlockSize]byte {
	var in, out [BlockSize]byte
	binary.LittleEndian.PutUint64(in[:8], sector)
	c.salt.Encrypt(out[:], in[:])
	return out
}

// EncryptSector CBC-encrypts src (a multiple of 16 bytes) into dst.
func (c *Cipher) EncryptSector(dst, src []byte, sector uint64) error {
	if len(src)%BlockSize != 0 || len(src) == 0 {
		return fmt.Errorf("essiv: data must be a positive multiple of %d bytes, got %d", BlockSize, len(src))
	}
	if len(dst) < len(src) {
		return errors.New("essiv: dst shorter than src")
	}
	iv := c.iv(sector)
	cipher.NewCBCEncrypter(c.data, iv[:]).CryptBlocks(dst[:len(src)], src)
	return nil
}

// DecryptSector reverses EncryptSector.
func (c *Cipher) DecryptSector(dst, src []byte, sector uint64) error {
	if len(src)%BlockSize != 0 || len(src) == 0 {
		return fmt.Errorf("essiv: data must be a positive multiple of %d bytes, got %d", BlockSize, len(src))
	}
	if len(dst) < len(src) {
		return errors.New("essiv: dst shorter than src")
	}
	iv := c.iv(sector)
	cipher.NewCBCDecrypter(c.data, iv[:]).CryptBlocks(dst[:len(src)], src)
	return nil
}
