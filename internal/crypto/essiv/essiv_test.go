package essiv

import (
	"bytes"
	//vetrepo:ignore cryptohygiene fixed-seed source generating test plaintexts, never key material
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	c, err := New(make([]byte, 32))
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, 4096)
	for i := range pt {
		pt[i] = byte(i * 13)
	}
	ct := make([]byte, 4096)
	if err := c.EncryptSector(ct, pt, 42); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, pt) {
		t.Fatal("ciphertext equals plaintext")
	}
	back := make([]byte, 4096)
	if err := c.DecryptSector(back, ct, 42); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pt) {
		t.Fatal("round trip failed")
	}
	// Wrong sector yields garbage.
	if err := c.DecryptSector(back, ct, 43); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(back, pt) {
		t.Fatal("wrong-sector decrypt should not match")
	}
}

func TestSectorChangesIV(t *testing.T) {
	c, _ := New(make([]byte, 32))
	pt := make([]byte, 64)
	a := make([]byte, 64)
	b := make([]byte, 64)
	c.EncryptSector(a, pt, 1)
	c.EncryptSector(b, pt, 2)
	if bytes.Equal(a, b) {
		t.Fatal("different sectors must encrypt differently")
	}
}

func TestBadSizes(t *testing.T) {
	c, _ := New(make([]byte, 32))
	if err := c.EncryptSector(make([]byte, 10), make([]byte, 10), 0); err == nil {
		t.Fatal("non-multiple size accepted")
	}
	if err := c.EncryptSector(nil, nil, 0); err == nil {
		t.Fatal("empty accepted")
	}
	if err := c.DecryptSector(make([]byte, 8), make([]byte, 16), 0); err == nil {
		t.Fatal("short dst accepted")
	}
	if _, err := New(make([]byte, 7)); err == nil {
		t.Fatal("bad key size accepted")
	}
}

// CBC's documented leak (paper §2.1): with the same sector IV, a change in
// block k leaves ciphertext blocks before k identical, revealing the first
// changed position.
func TestCBCPrefixLeak(t *testing.T) {
	c, _ := New(make([]byte, 32))
	pt1 := make([]byte, 256)
	pt2 := append([]byte(nil), pt1...)
	pt2[128] ^= 1 // change block 8
	ct1 := make([]byte, 256)
	ct2 := make([]byte, 256)
	c.EncryptSector(ct1, pt1, 5)
	c.EncryptSector(ct2, pt2, 5)
	if !bytes.Equal(ct1[:128], ct2[:128]) {
		t.Fatal("prefix before the change should match (the CBC leak)")
	}
	if bytes.Equal(ct1[128:144], ct2[128:144]) {
		t.Fatal("changed block should differ")
	}
}

func TestRoundTripProperty(t *testing.T) {
	c, _ := New([]byte("0123456789abcdef0123456789abcdef"))
	f := func(seed int64, blocks uint8, sector uint64) bool {
		n := (int(blocks)%64 + 1) * 16
		pt := make([]byte, n)
		rand.New(rand.NewSource(seed)).Read(pt)
		ct := make([]byte, n)
		if err := c.EncryptSector(ct, pt, sector); err != nil {
			return false
		}
		back := make([]byte, n)
		if err := c.DecryptSector(back, ct, sector); err != nil {
			return false
		}
		return bytes.Equal(back, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
