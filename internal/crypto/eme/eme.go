// Package eme implements an EME-style wide-block tweakable cipher
// (Encrypt-Mix-Encrypt, Halevi–Rogaway), the construction family behind
// the IEEE 1619.2 wide-block standards (EME2-AES) discussed in §2.2 of
// the paper as a mitigation: with a wide-block cipher, every plaintext
// bit influences the whole sector, so a deterministic overwrite only
// reveals whether the *entire sector* changed, not which 16-byte
// sub-block.
//
// The implementation follows the classic two-pass ECB–mix–ECB structure
// with tweak mixing. IEEE 1619.2 test vectors are not available offline,
// so this package is validated by construction properties instead:
// exact invertibility for every length, and full-block diffusion (see the
// tests). Treat it as a faithful behavioural stand-in rather than an
// interoperable EME2 implementation — DESIGN.md records this substitution.
//
// The classical EME security bound holds for up to 128 AES blocks
// (2048 bytes); this implementation accepts up to 512 blocks so it can
// cover 4 KiB sectors the way EME2 does, trading the proof bound for the
// paper's use case.
package eme

import (
	"crypto/aes"
	"crypto/cipher"
	"errors"
	"fmt"
	"sync"
)

// BlockSize is the underlying AES block size.
const BlockSize = 16

// MaxBlocks bounds the data unit length.
const MaxBlocks = 512

// TweakSize is the tweak size in bytes.
const TweakSize = 16

var (
	// ErrDataSize reports an unsupported data unit length.
	ErrDataSize = errors.New("eme: data must be a multiple of 16 bytes, between 16 and 8192")
)

// Cipher is a wide-block cipher instance. It is safe for concurrent use.
type Cipher struct {
	block cipher.Block
	l0    [BlockSize]byte // L = 2·E_K(0)
}

// New creates a wide-block cipher from a 16, 24 or 32-byte AES key.
func New(key []byte) (*Cipher, error) {
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	c := &Cipher{block: b}
	b.Encrypt(c.l0[:], c.l0[:])
	mul2(&c.l0)
	return c, nil
}

func mul2(v *[BlockSize]byte) {
	var carry byte
	for i := 0; i < BlockSize; i++ {
		next := v[i] >> 7
		v[i] = v[i]<<1 | carry
		carry = next
	}
	if carry != 0 {
		v[0] ^= 0x87
	}
}

func xor(dst, a, b []byte) {
	for i := range dst {
		dst[i] = a[i] ^ b[i]
	}
}

func checkSize(n int) error {
	if n < BlockSize || n%BlockSize != 0 || n > MaxBlocks*BlockSize {
		return fmt.Errorf("%w (got %d)", ErrDataSize, n)
	}
	return nil
}

// Encrypt computes the wide-block encryption of src into dst (they may
// alias) under tweak.
func (c *Cipher) Encrypt(dst, src []byte, tweak [TweakSize]byte) error {
	return c.process(dst, src, tweak, true)
}

// Decrypt reverses Encrypt.
func (c *Cipher) Decrypt(dst, src []byte, tweak [TweakSize]byte) error {
	return c.process(dst, src, tweak, false)
}

// scratch holds the per-call working state. It lives on the heap (via a
// sync.Pool) rather than the stack because the buffers are passed into
// cipher.Block interface methods, which would force them to escape — and
// allocate — on every call otherwise. Pooling keeps the hot sector path
// allocation-free in the steady state.
type scratch struct {
	inter, mixed [MaxBlocks * BlockSize]byte
	sp, mp       [BlockSize]byte
	mc, mv, acc  [BlockSize]byte
	mask, mmask  [BlockSize]byte
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func (c *Cipher) process(dst, src []byte, tweak [TweakSize]byte, enc bool) error {
	if err := checkSize(len(src)); err != nil {
		return err
	}
	if len(dst) < len(src) {
		return errors.New("eme: dst shorter than src")
	}
	m := len(src) / BlockSize
	crypt := c.block.Encrypt
	if !enc {
		crypt = c.block.Decrypt
	}

	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)
	inter := s.inter[:m*BlockSize]
	mixed := s.mixed[:m*BlockSize]

	// Pass 1: whiten with the doubling mask and apply ECB.
	s.mask = c.l0
	for i := 0; i < m; i++ {
		blk := inter[i*BlockSize : (i+1)*BlockSize]
		xor(blk, src[i*BlockSize:(i+1)*BlockSize], s.mask[:])
		crypt(blk, blk)
		mul2(&s.mask)
	}

	// Mix: fold everything plus the tweak into a mask applied to blocks
	// 2..m; block 1 carries the correction so the transform inverts.
	clear(s.sp[:])
	for i := 0; i < m; i++ {
		xor(s.sp[:], s.sp[:], inter[i*BlockSize:(i+1)*BlockSize])
	}
	xor(s.mp[:], s.sp[:], tweak[:])
	crypt(s.mc[:], s.mp[:])
	xor(s.mv[:], s.mp[:], s.mc[:])

	s.mmask = s.mv
	clear(s.acc[:])
	for i := 1; i < m; i++ {
		blk := mixed[i*BlockSize : (i+1)*BlockSize]
		xor(blk, inter[i*BlockSize:(i+1)*BlockSize], s.mmask[:])
		xor(s.acc[:], s.acc[:], blk)
		mul2(&s.mmask)
	}
	first := mixed[:BlockSize]
	xor(first, s.mc[:], tweak[:])
	xor(first, first, s.acc[:])

	// Pass 2: ECB and unwhiten.
	s.mask = c.l0
	for i := 0; i < m; i++ {
		blk := mixed[i*BlockSize : (i+1)*BlockSize]
		crypt(blk, blk)
		xor(dst[i*BlockSize:(i+1)*BlockSize], blk, s.mask[:])
		mul2(&s.mask)
	}
	return nil
}
