package eme

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	//vetrepo:ignore cryptohygiene fixed-seed source generating test plaintexts, never key material
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	c, err := New(make([]byte, 32))
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, 4096)
	for i := range pt {
		pt[i] = byte(i)
	}
	var tweak [16]byte
	tweak[3] = 9
	ct := make([]byte, 4096)
	if err := c.Encrypt(ct, pt, tweak); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, pt) {
		t.Fatal("ciphertext equals plaintext")
	}
	back := make([]byte, 4096)
	if err := c.Decrypt(back, ct, tweak); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pt) {
		t.Fatal("round trip failed")
	}
}

func TestSizeValidation(t *testing.T) {
	c, _ := New(make([]byte, 16))
	for _, n := range []int{0, 8, 17, 15, MaxBlocks*16 + 16} {
		if err := c.Encrypt(make([]byte, n), make([]byte, n), [16]byte{}); err == nil {
			t.Fatalf("size %d accepted", n)
		}
	}
	if err := c.Encrypt(make([]byte, 8), make([]byte, 16), [16]byte{}); err == nil {
		t.Fatal("short dst accepted")
	}
	if _, err := New(make([]byte, 5)); err == nil {
		t.Fatal("bad key accepted")
	}
}

// The wide-block property (§2.2): flipping ANY single plaintext bit must
// change essentially every ciphertext block — unlike XTS, where only the
// containing 16-byte sub-block changes.
func TestWideBlockDiffusion(t *testing.T) {
	c, _ := New(make([]byte, 32))
	var tweak [16]byte
	pt := make([]byte, 4096)
	for i := range pt {
		pt[i] = byte(i * 7)
	}
	base := make([]byte, 4096)
	if err := c.Encrypt(base, pt, tweak); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		mod := append([]byte(nil), pt...)
		bit := rng.Intn(4096 * 8)
		mod[bit/8] ^= 1 << (bit % 8)
		ct := make([]byte, 4096)
		if err := c.Encrypt(ct, mod, tweak); err != nil {
			t.Fatal(err)
		}
		changedBlocks := 0
		for b := 0; b < 256; b++ {
			if !bytes.Equal(base[b*16:(b+1)*16], ct[b*16:(b+1)*16]) {
				changedBlocks++
			}
		}
		if changedBlocks != 256 {
			t.Fatalf("bit %d: only %d/256 blocks changed — diffusion broken", bit, changedBlocks)
		}
	}
}

// Determinism still holds (an exact overwrite is identifiable, as the
// paper notes for wide-block): same key+tweak+plaintext repeats.
func TestDeterministic(t *testing.T) {
	c, _ := New(make([]byte, 32))
	var tweak [16]byte
	pt := make([]byte, 64)
	a := make([]byte, 64)
	b := make([]byte, 64)
	c.Encrypt(a, pt, tweak)
	c.Encrypt(b, pt, tweak)
	if !bytes.Equal(a, b) {
		t.Fatal("not deterministic")
	}
	var tweak2 [16]byte
	tweak2[0] = 1
	c.Encrypt(b, pt, tweak2)
	if bytes.Equal(a, b) {
		t.Fatal("tweak ignored")
	}
}

// Property: exact invertibility across lengths, tweaks, keys, and
// in-place operation.
func TestRoundTripProperty(t *testing.T) {
	f := func(keySeed, dataSeed int64, blocks uint16, tweakSeed int64) bool {
		key := make([]byte, 32)
		rand.New(rand.NewSource(keySeed)).Read(key)
		c, err := New(key)
		if err != nil {
			return false
		}
		n := (int(blocks)%MaxBlocks + 1) * 16
		pt := make([]byte, n)
		rand.New(rand.NewSource(dataSeed)).Read(pt)
		var tweak [16]byte
		rand.New(rand.NewSource(tweakSeed)).Read(tweak[:])

		ct := make([]byte, n)
		if err := c.Encrypt(ct, pt, tweak); err != nil {
			return false
		}
		back := make([]byte, n)
		if err := c.Decrypt(back, ct, tweak); err != nil {
			return false
		}
		if !bytes.Equal(back, pt) {
			return false
		}
		// In-place must agree.
		inplace := append([]byte(nil), pt...)
		if err := c.Encrypt(inplace, inplace, tweak); err != nil {
			return false
		}
		return bytes.Equal(inplace, ct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleBlock(t *testing.T) {
	c, _ := New(make([]byte, 16))
	pt := []byte("exactly16bytes!!")
	var tweak [16]byte
	ct := make([]byte, 16)
	if err := c.Encrypt(ct, pt, tweak); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, 16)
	if err := c.Decrypt(back, ct, tweak); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pt) {
		t.Fatal("single block round trip failed")
	}
}

// ---- reference-implementation cross-check (the IEEE 1619.2 stand-in) ----
//
// Real EME2-AES test vectors are not available offline, so the optimized
// implementation is checked against refEncrypt/refDecrypt: a naive,
// allocation-happy, independently written transcription of the same
// Encrypt-Mix-Encrypt construction. The two share nothing but the
// specification (package code: in-place strided passes over pooled
// scratch; reference: block lists, precomputed mask tables, no sharing),
// so agreement over structured and random inputs is strong evidence
// neither has drifted — the role 1619.2 known-answer vectors would play.

// refMul2 doubles an element of GF(2^128) (little-endian bit order, as
// the package uses).
func refMul2(v []byte) []byte {
	out := make([]byte, 16)
	var carry byte
	for i := 0; i < 16; i++ {
		out[i] = v[i]<<1 | carry
		carry = v[i] >> 7
	}
	if carry != 0 {
		out[0] ^= 0x87
	}
	return out
}

func refXor(a, b []byte) []byte {
	out := make([]byte, len(a))
	for i := range out {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// refProcess is the reference EME transform.
func refProcess(c *Cipher, src []byte, tweak [16]byte, enc bool) []byte {
	m := len(src) / 16
	crypt := c.block.Encrypt
	if !enc {
		crypt = c.block.Decrypt
	}

	// Precompute the whitening mask table L, 2L, 4L, ...
	masks := make([][]byte, m)
	masks[0] = append([]byte(nil), c.l0[:]...)
	for i := 1; i < m; i++ {
		masks[i] = refMul2(masks[i-1])
	}

	// Pass 1.
	inter := make([][]byte, m)
	for i := 0; i < m; i++ {
		blk := refXor(src[i*16:(i+1)*16], masks[i])
		out := make([]byte, 16)
		crypt(out, blk)
		inter[i] = out
	}

	// Mix.
	sp := make([]byte, 16)
	for i := 0; i < m; i++ {
		sp = refXor(sp, inter[i])
	}
	mp := refXor(sp, tweak[:])
	mc := make([]byte, 16)
	crypt(mc, mp)
	mv := refXor(mp, mc)

	mixed := make([][]byte, m)
	mmask := mv
	acc := make([]byte, 16)
	for i := 1; i < m; i++ {
		mixed[i] = refXor(inter[i], mmask)
		acc = refXor(acc, mixed[i])
		mmask = refMul2(mmask)
	}
	mixed[0] = refXor(refXor(mc, tweak[:]), acc)

	// Pass 2.
	dst := make([]byte, m*16)
	for i := 0; i < m; i++ {
		out := make([]byte, 16)
		crypt(out, mixed[i])
		copy(dst[i*16:], refXor(out, masks[i]))
	}
	return dst
}

func refEncrypt(c *Cipher, src []byte, tweak [16]byte) []byte {
	return refProcess(c, src, tweak, true)
}

func refDecrypt(c *Cipher, src []byte, tweak [16]byte) []byte {
	return refProcess(c, src, tweak, false)
}

// TestMatchesReferenceImplementation cross-checks encrypt AND decrypt
// against the reference over structured plaintexts (zeros, ramps,
// repeated sub-blocks, single set bits) and random ones, at several data
// unit sizes including the 4 KiB sector.
func TestMatchesReferenceImplementation(t *testing.T) {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i*11 + 3)
	}
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	sizes := []int{16, 32, 512, 2048, 4096}
	structured := func(n, kind int) []byte {
		p := make([]byte, n)
		switch kind {
		case 0: // zeros
		case 1: // byte ramp
			for i := range p {
				p[i] = byte(i)
			}
		case 2: // repeated sub-block
			for i := range p {
				p[i] = byte(i % 16)
			}
		case 3: // single set bit
			p[n/2] = 0x80
		default: // random
			rng.Read(p)
		}
		return p
	}
	for _, n := range sizes {
		for kind := 0; kind < 6; kind++ {
			var tweak [16]byte
			rng.Read(tweak[:])
			pt := structured(n, kind)

			want := refEncrypt(c, pt, tweak)
			got := make([]byte, n)
			if err := c.Encrypt(got, pt, tweak); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("n=%d kind=%d: encrypt diverges from reference", n, kind)
			}

			back := make([]byte, n)
			if err := c.Decrypt(back, want, tweak); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(back, pt) {
				t.Fatalf("n=%d kind=%d: package decrypt does not invert reference encrypt", n, kind)
			}
			if rb := refDecrypt(c, got, tweak); !bytes.Equal(rb, pt) {
				t.Fatalf("n=%d kind=%d: reference decrypt does not invert package encrypt", n, kind)
			}
		}
	}
}

// TestTweakSensitivity: the same plaintext under two tweaks differing in
// a single bit must produce unrelated ciphertexts, for every tweak byte
// position — the property that binds a sector's ciphertext to its LBA/IV.
func TestTweakSensitivity(t *testing.T) {
	c, _ := New(make([]byte, 32))
	pt := make([]byte, 4096)
	for i := range pt {
		pt[i] = byte(i * 13)
	}
	base := make([]byte, 4096)
	var t0 [16]byte
	if err := c.Encrypt(base, pt, t0); err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < 16; pos++ {
		tw := t0
		tw[pos] ^= 1
		ct := make([]byte, 4096)
		if err := c.Encrypt(ct, pt, tw); err != nil {
			t.Fatal(err)
		}
		diff := 0
		for i := range ct {
			if ct[i] != base[i] {
				diff++
			}
		}
		// ~255/256 of bytes should differ; require a loose half.
		if diff < 2048 {
			t.Fatalf("tweak bit in byte %d changed only %d/4096 ciphertext bytes", pos, diff)
		}
	}
}

// TestSingleBitDiffusion quantifies the avalanche: flipping one
// plaintext bit flips close to half of all ciphertext BITS (not just
// bytes), across bit positions spread over the whole sector.
func TestSingleBitDiffusion(t *testing.T) {
	c, _ := New(make([]byte, 32))
	var tweak [16]byte
	pt := make([]byte, 4096)
	rand.New(rand.NewSource(5)).Read(pt)
	base := make([]byte, 4096)
	if err := c.Encrypt(base, pt, tweak); err != nil {
		t.Fatal(err)
	}
	for _, bit := range []int{0, 7, 1000, 16384, 32767} {
		mod := append([]byte(nil), pt...)
		mod[bit/8] ^= 1 << (bit % 8)
		ct := make([]byte, 4096)
		if err := c.Encrypt(ct, mod, tweak); err != nil {
			t.Fatal(err)
		}
		hamming := 0
		for i := range ct {
			x := ct[i] ^ base[i]
			for ; x != 0; x &= x - 1 {
				hamming++
			}
		}
		// Expect ≈ 16384 flipped bits of 32768; accept a wide ±25% band
		// (binomial fluctuation is far tighter; this catches structural
		// failure, not statistics).
		if hamming < 12288 || hamming > 20480 {
			t.Fatalf("bit %d: %d/32768 ciphertext bits flipped", bit, hamming)
		}
	}
}

// TestKnownAnswerDigests pins fixed (key, tweak, plaintext) encryptions
// to SHA-256 digests captured from this implementation after it was
// verified against the independent reference above. They guard against
// the construction drifting silently — the role interoperable IEEE
// 1619.2 vectors would play once wired in (ROADMAP item).
func TestKnownAnswerDigests(t *testing.T) {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i)
	}
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{
		16:   "dc68825a5477000537164a3ccf1db6fd4a83a20bed32171eee252982418e9b12",
		512:  "ec8ee4a2d5f9ab6978d258e6aff51b623bf1597b9190a99e387c6fec425fa9f6",
		4096: "f04279b1e36d495505312fefa8b0f089b85fc4211595c0b57b93a57c02f2b162",
	}
	for n, digest := range want {
		pt := make([]byte, n)
		for i := range pt {
			pt[i] = byte(i * 3)
		}
		var tweak [16]byte
		for i := range tweak {
			tweak[i] = byte(0xF0 | i)
		}
		ct := make([]byte, n)
		if err := c.Encrypt(ct, pt, tweak); err != nil {
			t.Fatal(err)
		}
		if got := fmt.Sprintf("%x", sha256.Sum256(ct)); got != digest {
			t.Fatalf("n=%d: ciphertext digest %s, want %s", n, got, digest)
		}
	}
}
