package eme

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	c, err := New(make([]byte, 32))
	if err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, 4096)
	for i := range pt {
		pt[i] = byte(i)
	}
	var tweak [16]byte
	tweak[3] = 9
	ct := make([]byte, 4096)
	if err := c.Encrypt(ct, pt, tweak); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, pt) {
		t.Fatal("ciphertext equals plaintext")
	}
	back := make([]byte, 4096)
	if err := c.Decrypt(back, ct, tweak); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pt) {
		t.Fatal("round trip failed")
	}
}

func TestSizeValidation(t *testing.T) {
	c, _ := New(make([]byte, 16))
	for _, n := range []int{0, 8, 17, 15, MaxBlocks*16 + 16} {
		if err := c.Encrypt(make([]byte, n), make([]byte, n), [16]byte{}); err == nil {
			t.Fatalf("size %d accepted", n)
		}
	}
	if err := c.Encrypt(make([]byte, 8), make([]byte, 16), [16]byte{}); err == nil {
		t.Fatal("short dst accepted")
	}
	if _, err := New(make([]byte, 5)); err == nil {
		t.Fatal("bad key accepted")
	}
}

// The wide-block property (§2.2): flipping ANY single plaintext bit must
// change essentially every ciphertext block — unlike XTS, where only the
// containing 16-byte sub-block changes.
func TestWideBlockDiffusion(t *testing.T) {
	c, _ := New(make([]byte, 32))
	var tweak [16]byte
	pt := make([]byte, 4096)
	for i := range pt {
		pt[i] = byte(i * 7)
	}
	base := make([]byte, 4096)
	if err := c.Encrypt(base, pt, tweak); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		mod := append([]byte(nil), pt...)
		bit := rng.Intn(4096 * 8)
		mod[bit/8] ^= 1 << (bit % 8)
		ct := make([]byte, 4096)
		if err := c.Encrypt(ct, mod, tweak); err != nil {
			t.Fatal(err)
		}
		changedBlocks := 0
		for b := 0; b < 256; b++ {
			if !bytes.Equal(base[b*16:(b+1)*16], ct[b*16:(b+1)*16]) {
				changedBlocks++
			}
		}
		if changedBlocks != 256 {
			t.Fatalf("bit %d: only %d/256 blocks changed — diffusion broken", bit, changedBlocks)
		}
	}
}

// Determinism still holds (an exact overwrite is identifiable, as the
// paper notes for wide-block): same key+tweak+plaintext repeats.
func TestDeterministic(t *testing.T) {
	c, _ := New(make([]byte, 32))
	var tweak [16]byte
	pt := make([]byte, 64)
	a := make([]byte, 64)
	b := make([]byte, 64)
	c.Encrypt(a, pt, tweak)
	c.Encrypt(b, pt, tweak)
	if !bytes.Equal(a, b) {
		t.Fatal("not deterministic")
	}
	var tweak2 [16]byte
	tweak2[0] = 1
	c.Encrypt(b, pt, tweak2)
	if bytes.Equal(a, b) {
		t.Fatal("tweak ignored")
	}
}

// Property: exact invertibility across lengths, tweaks, keys, and
// in-place operation.
func TestRoundTripProperty(t *testing.T) {
	f := func(keySeed, dataSeed int64, blocks uint16, tweakSeed int64) bool {
		key := make([]byte, 32)
		rand.New(rand.NewSource(keySeed)).Read(key)
		c, err := New(key)
		if err != nil {
			return false
		}
		n := (int(blocks)%MaxBlocks + 1) * 16
		pt := make([]byte, n)
		rand.New(rand.NewSource(dataSeed)).Read(pt)
		var tweak [16]byte
		rand.New(rand.NewSource(tweakSeed)).Read(tweak[:])

		ct := make([]byte, n)
		if err := c.Encrypt(ct, pt, tweak); err != nil {
			return false
		}
		back := make([]byte, n)
		if err := c.Decrypt(back, ct, tweak); err != nil {
			return false
		}
		if !bytes.Equal(back, pt) {
			return false
		}
		// In-place must agree.
		inplace := append([]byte(nil), pt...)
		if err := c.Encrypt(inplace, inplace, tweak); err != nil {
			return false
		}
		return bytes.Equal(inplace, ct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleBlock(t *testing.T) {
	c, _ := New(make([]byte, 16))
	pt := []byte("exactly16bytes!!")
	var tweak [16]byte
	ct := make([]byte, 16)
	if err := c.Encrypt(ct, pt, tweak); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, 16)
	if err := c.Decrypt(back, ct, tweak); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, pt) {
		t.Fatal("single block round trip failed")
	}
}
