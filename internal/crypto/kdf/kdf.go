// Package kdf provides the key-derivation primitives the LUKS2-style
// container needs: PBKDF2-HMAC-SHA256 (RFC 2898) for passphrase
// stretching and a LUKS-style anti-forensic splitter that inflates key
// material across many diffused stripes so partial disk remanence cannot
// recover a revoked key.
//
// Only the Go standard library is used (crypto/hmac, crypto/sha256).
package kdf

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// PBKDF2 derives keyLen bytes from the password and salt using
// HMAC-SHA256 with the given iteration count.
func PBKDF2(password, salt []byte, iter, keyLen int) []byte {
	if iter < 1 || keyLen < 1 {
		panic("kdf: iterations and key length must be positive")
	}
	hashLen := sha256.Size
	numBlocks := (keyLen + hashLen - 1) / hashLen
	out := make([]byte, 0, numBlocks*hashLen)

	var block [4]byte
	for i := 1; i <= numBlocks; i++ {
		binary.BigEndian.PutUint32(block[:], uint32(i))
		mac := hmac.New(sha256.New, password)
		mac.Write(salt)
		mac.Write(block[:])
		u := mac.Sum(nil)
		t := append([]byte(nil), u...)
		for n := 1; n < iter; n++ {
			mac = hmac.New(sha256.New, password)
			mac.Write(u)
			u = mac.Sum(nil)
			for x := range t {
				t[x] ^= u[x]
			}
		}
		out = append(out, t...)
	}
	return out[:keyLen]
}

// diffuse applies the LUKS AF hash diffusion to a buffer: each SHA-256
// sized window is replaced by H(index || window), spreading every bit.
func diffuse(buf []byte) {
	h := sha256.New()
	var idx [4]byte
	for off, i := 0, 0; off < len(buf); off, i = off+sha256.Size, i+1 {
		end := off + sha256.Size
		if end > len(buf) {
			end = len(buf)
		}
		h.Reset()
		binary.BigEndian.PutUint32(idx[:], uint32(i))
		h.Write(idx[:])
		h.Write(buf[off:end])
		sum := h.Sum(nil)
		copy(buf[off:end], sum)
	}
}

// AFSplit expands key into stripes blocks of key material such that every
// stripe is required to reconstruct the key. The output is
// stripes*len(key) bytes.
func AFSplit(key []byte, stripes int) ([]byte, error) {
	if stripes < 2 {
		return nil, errors.New("kdf: need at least 2 stripes")
	}
	n := len(key)
	out := make([]byte, stripes*n)
	d := make([]byte, n)
	for s := 0; s < stripes-1; s++ {
		stripe := out[s*n : (s+1)*n]
		if _, err := rand.Read(stripe); err != nil {
			return nil, err
		}
		for i := range d {
			d[i] ^= stripe[i]
		}
		diffuse(d)
	}
	last := out[(stripes-1)*n:]
	for i := range last {
		last[i] = d[i] ^ key[i]
	}
	return out, nil
}

// AFMerge reconstructs the key from AFSplit output.
func AFMerge(split []byte, keyLen, stripes int) ([]byte, error) {
	if stripes < 2 || keyLen < 1 || len(split) != stripes*keyLen {
		return nil, fmt.Errorf("kdf: bad AF geometry (%d bytes, %d stripes, key %d)", len(split), stripes, keyLen)
	}
	d := make([]byte, keyLen)
	for s := 0; s < stripes-1; s++ {
		stripe := split[s*keyLen : (s+1)*keyLen]
		for i := range d {
			d[i] ^= stripe[i]
		}
		diffuse(d)
	}
	key := make([]byte, keyLen)
	last := split[(stripes-1)*keyLen:]
	for i := range key {
		key[i] = d[i] ^ last[i]
	}
	return key, nil
}
