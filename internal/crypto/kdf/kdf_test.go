package kdf

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// Published PBKDF2-HMAC-SHA256 test vectors (RFC 7914 §11 / common
// reference values).
func TestPBKDF2Vectors(t *testing.T) {
	cases := []struct {
		password, salt string
		iter, keyLen   int
		want           string
	}{
		{"password", "salt", 1, 32,
			"120fb6cffcf8b32c43e7225256c4f837a86548c92ccc35480805987cb70be17b"},
		{"password", "salt", 2, 32,
			"ae4d0c95af6b46d32d0adff928f06dd02a303f8ef3c251dfd6e2d85a95474c43"},
		{"password", "salt", 4096, 32,
			"c5e478d59288c841aa530db6845c4c8d962893a001ce4e11a4963873aa98134a"},
	}
	for i, tc := range cases {
		got := PBKDF2([]byte(tc.password), []byte(tc.salt), tc.iter, tc.keyLen)
		want, _ := hex.DecodeString(tc.want)
		if !bytes.Equal(got, want) {
			t.Fatalf("case %d:\n got %x\nwant %x", i, got, want)
		}
	}
}

func TestPBKDF2LongOutput(t *testing.T) {
	// Output longer than one hash block exercises multi-block derivation.
	out := PBKDF2([]byte("pw"), []byte("salt"), 10, 100)
	if len(out) != 100 {
		t.Fatalf("len = %d", len(out))
	}
	// Prefix property: a shorter request is a prefix of a longer one.
	short := PBKDF2([]byte("pw"), []byte("salt"), 10, 32)
	if !bytes.Equal(out[:32], short) {
		t.Fatal("prefix property violated")
	}
}

func TestPBKDF2PanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PBKDF2([]byte("p"), []byte("s"), 0, 32)
}

func TestAFSplitMergeRoundTrip(t *testing.T) {
	key := []byte("0123456789abcdef0123456789abcdef")
	split, err := AFSplit(key, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(split) != 4000*len(key) {
		t.Fatalf("split length %d", len(split))
	}
	merged, err := AFMerge(split, len(key), 4000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, key) {
		t.Fatal("merge did not recover key")
	}
}

func TestAFAntiForensicProperty(t *testing.T) {
	// Corrupting any single stripe destroys the key.
	key := []byte("superSecretMasterKey00000000000!")
	split, err := AFSplit(key, 8)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		mangled := append([]byte(nil), split...)
		mangled[s*len(key)+5] ^= 0xFF
		merged, err := AFMerge(mangled, len(key), 8)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(merged, key) {
			t.Fatalf("stripe %d corruption did not destroy key", s)
		}
	}
}

func TestAFGeometryValidation(t *testing.T) {
	if _, err := AFSplit([]byte("k"), 1); err == nil {
		t.Fatal("1 stripe accepted")
	}
	if _, err := AFMerge(make([]byte, 10), 3, 4); err == nil {
		t.Fatal("bad geometry accepted")
	}
}

func TestAFSplitRandomized(t *testing.T) {
	// Two splits of the same key differ (fresh randomness) but both merge.
	key := bytes.Repeat([]byte{7}, 32)
	a, _ := AFSplit(key, 4)
	b, _ := AFSplit(key, 4)
	if bytes.Equal(a, b) {
		t.Fatal("splits should be randomized")
	}
	ma, _ := AFMerge(a, 32, 4)
	mb, _ := AFMerge(b, 32, 4)
	if !bytes.Equal(ma, key) || !bytes.Equal(mb, key) {
		t.Fatal("merge failed")
	}
}

func TestAFProperty(t *testing.T) {
	f := func(seed int64, stripes uint8) bool {
		n := int(stripes)%30 + 2
		key := make([]byte, 32)
		for i := range key {
			key[i] = byte(seed >> (i % 8 * 8))
		}
		split, err := AFSplit(key, n)
		if err != nil {
			return false
		}
		merged, err := AFMerge(split, 32, n)
		if err != nil {
			return false
		}
		return bytes.Equal(merged, key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
