package clone

// flatten.go is the second keymgr-style background walker: it copies
// every still-inherited block of a clone into the child — read through
// the parent chain with the ancestors' keys, re-sealed under the child's
// current epoch — until nothing references the parent, then severs the
// parent pointer. The provider can thereafter delete (or re-key, or
// crypto-erase) the base image without touching the tenant. The walker
// follows the rekey discipline exactly: one object per Step under the
// object's exclusive lock (live writers either land before the copyup
// probe and are skipped as child-owned, or queue behind the commit),
// progress persisted in the child's header OMAP after every object so a
// crashed client resumes instead of restarting, and an optional
// vtime.Pacer bounding interference on foreground IO.

import (
	"errors"

	"repro/internal/rbd"
	"repro/internal/telemetry"
	"repro/internal/vtime"
)

// flattenKey is the header-OMAP key holding the persisted flatten cursor.
const flattenKey = "clone.flatten"

var (
	// ErrFlattenActive reports a StartFlatten while an unfinished flatten
	// exists — resume it instead.
	ErrFlattenActive = errors.New("clone: flatten already in progress; resume it")
	// ErrNoFlatten reports a ResumeFlatten with no persisted progress.
	ErrNoFlatten = errors.New("clone: no flatten in progress")
	// ErrHasSnaps reports a flatten of a clone that has snapshots of its
	// own. Copyup fills only the child's HEAD; the snapshots' frozen
	// views would keep resolving inherited blocks through the parent, so
	// severing the link would silently zero them (as RBD, refuse instead).
	ErrHasSnaps = errors.New("clone: image has snapshots that still need the parent; cannot flatten")
)

// FlattenProgress is the persisted flatten cursor.
type FlattenProgress struct {
	NextObj int64 `json:"next_obj"` // first object not yet walked
	Objects int64 `json:"objects"`  // walk domain, fixed at StartFlatten
	// Copied counts blocks copied up so far (informational; crash safety
	// re-derives per-block work from child presence).
	Copied int64 `json:"copied"`
}

// Done reports whether the walk has covered every object.
func (p FlattenProgress) Done() bool { return p.NextObj >= p.Objects }

// valid reports whether a decoded cursor is internally coherent and
// matches the image's walk domain; anything else gets the same
// restart-from-scratch treatment as an undecodable record.
func (p FlattenProgress) valid(objects int64) bool {
	return p.NextObj >= 0 && p.NextObj <= p.Objects && p.Objects == objects
}

// Flattener drives one flatten on one clone.
type Flattener struct {
	img  *Image
	prog FlattenProgress
	pace *vtime.Pacer
	met  flattenMetrics
}

// Progress returns the current cursor.
func (f *Flattener) Progress() FlattenProgress { return f.prog }

// SetPace installs a virtual-time admission budget (IOPS + bytes/s caps)
// on the walker; nil removes the cap. The pacer may be shared with other
// walkers — a rekey and a flatten handed the same Pacer split one
// combined budget.
func (f *Flattener) SetPace(p *vtime.Pacer) { f.pace = p }

// loadFlattenProgress reads the persisted cursor via rbd's shared
// walker-cursor record, reporting found=false when no flatten is in
// flight.
func loadFlattenProgress(at vtime.Time, img *Image) (FlattenProgress, bool, vtime.Time, error) {
	var p FlattenProgress
	found, end, err := img.enc.Image().LoadCursor(at, flattenKey, &p)
	if err != nil {
		return FlattenProgress{}, false, at, err
	}
	return p, found, end, nil
}

func (f *Flattener) persist(at vtime.Time) (vtime.Time, error) {
	return f.img.enc.Image().SaveCursor(at, flattenKey, f.prog)
}

func (f *Flattener) clearProgress(at vtime.Time) (vtime.Time, error) {
	return f.img.enc.Image().ClearCursor(at, flattenKey)
}

// StartFlatten begins flattening a clone. The progress record is
// persisted before any data moves, so a crash anywhere in the walk
// resumes from the cursor; the walk itself is idempotent because copyup
// keys off child presence.
func StartFlatten(at vtime.Time, img *Image) (*Flattener, vtime.Time, error) {
	if img.parentLayer() == nil {
		return nil, at, ErrNotClone
	}
	if len(img.enc.Image().Snaps()) > 0 {
		return nil, at, ErrHasSnaps
	}
	if _, found, end, err := loadFlattenProgress(at, img); err != nil {
		return nil, at, err
	} else if found {
		return nil, end, ErrFlattenActive
	}
	f := newFlattener(img, FlattenProgress{Objects: img.enc.ObjectCount()})
	at, err := f.persist(at)
	if err != nil {
		return nil, at, err
	}
	f.publish(at)
	telemetry.Log.Append(at, telemetry.EventFlattenStart, img.enc.Image().Name(), "copyup walk", f.prog.Objects)
	return f, at, nil
}

// ResumeFlatten reattaches to an interrupted flatten on a freshly opened
// image — the crash-recovery path. A crash between the final copyup and
// the record removal resumes with the parent already severed; Step then
// just completes the bookkeeping.
func ResumeFlatten(at vtime.Time, img *Image) (*Flattener, vtime.Time, error) {
	p, found, at, err := loadFlattenProgress(at, img)
	switch {
	case errors.Is(err, rbd.ErrCorruptCursor):
		return restartFlattenFromCorrupt(at, img)
	case err != nil:
		return nil, at, err
	case !found:
		return nil, at, ErrNoFlatten
	case !p.valid(img.enc.ObjectCount()):
		return restartFlattenFromCorrupt(at, img)
	}
	f := newFlattener(img, p)
	f.publish(at)
	return f, at, nil
}

// restartFlattenFromCorrupt replaces an undecodable (or out-of-domain)
// flatten cursor with a full re-walk from object zero. The walk is
// idempotent — copyup keys off child presence, so objects the crashed
// walker already copied are no-ops — and a clone whose parent was
// already severed completes on the first Step. The fresh record is
// persisted immediately so a second crash resumes normally.
func restartFlattenFromCorrupt(at vtime.Time, img *Image) (*Flattener, vtime.Time, error) {
	f := newFlattener(img, FlattenProgress{Objects: img.enc.ObjectCount()})
	at, err := f.persist(at)
	if err != nil {
		return nil, at, err
	}
	f.publish(at)
	return f, at, nil
}

// Step processes one object (or, once every object is walked, severs the
// parent pointer and removes the progress record). It returns done=true
// when the image is fully flattened.
func (f *Flattener) Step(at vtime.Time) (done bool, end vtime.Time, err error) {
	img := f.img
	parent := img.parentLayer()
	if f.prog.Done() || parent == nil {
		// Sever before clearing: if the crash hits between the two, the
		// surviving record makes Resume re-run this branch (RemoveParent
		// is idempotent), whereas the opposite order could strand a
		// fully-copied clone still chained to its parent.
		if at, err = img.enc.Image().RemoveParent(at); err != nil {
			return false, at, err
		}
		img.detachParent()
		at, err = f.clearProgress(at)
		if err == nil {
			f.publish(at)
			telemetry.Log.Append(at, telemetry.EventFlattenFinish, img.enc.Image().Name(), "blocks copied", f.prog.Copied)
		}
		return err == nil, at, err
	}

	objIdx := f.prog.NextObj
	bs := img.enc.Options().BlockSize
	n, at, err := img.enc.CopyupObject(f.pace.Admit(at, 0), objIdx,
		parentFetch(parent, objIdx, img.enc.Image().ObjectSize(), bs))
	if err != nil {
		return false, at, err
	}
	f.pace.Charge(2 * int64(n) * bs) // parent read + child write
	f.prog.NextObj++
	f.prog.Copied += int64(n)
	f.met.blocks.Add(int64(n))
	at, err = f.persist(at)
	f.publish(at)
	return false, at, err
}

// parentFetch builds the CopyupObject fetch callback for one object: it
// reads the absent blocks through the parent chain over their maximal
// contiguous runs; presence of each block in ANY ancestor decides keep
// (holes everywhere stay holes).
func parentFetch(parent *layer, objIdx, objectSize, bs int64) func(at vtime.Time, blocks []int64, plain []byte) ([]bool, vtime.Time, error) {
	return func(at vtime.Time, blocks []int64, plain []byte) ([]bool, vtime.Time, error) {
		keep := make([]bool, len(blocks))
		end := at
		err := forBlockRuns(blocks, func(lo, hi int) error {
			off := objIdx*objectSize + blocks[lo]*bs
			e, err := parent.readInto(at, plain[int64(lo)*bs:int64(hi)*bs], off, keep[lo:hi])
			if err != nil {
				return err
			}
			end = vtime.Max(end, e)
			return nil
		})
		if err != nil {
			return nil, at, err
		}
		return keep, end, nil
	}
}

// Run drives Step until the flatten completes.
func (f *Flattener) Run(at vtime.Time) (vtime.Time, error) {
	for {
		done, end, err := f.Step(at)
		if err != nil {
			return end, err
		}
		at = end
		if done {
			return at, nil
		}
	}
}

// FlattenActive reports whether an image has an unfinished flatten, and
// its cursor.
func FlattenActive(at vtime.Time, img *Image) (bool, FlattenProgress, vtime.Time, error) {
	p, found, end, err := loadFlattenProgress(at, img)
	return found, p, end, err
}
