// Package clone is the layered-image subsystem: encrypted copy-on-write
// clones with per-layer keys, the golden-image capability the paper
// holds up as the payoff of moving encryption into the virtual-disk
// layer (§1, §4). A provider writes one base image, encrypts it under
// its own key, snapshots it, and hands every tenant a clone of that
// snapshot sealed under the tenant's *own* LUKS container — something
// length-preserving dm-crypt under the VM cannot express, because the
// two layers would have to share one key.
//
// A clone is an ordinary encrypted image (its own container, epoch
// table, cryptor keyring, data objects) plus a parent pointer in its rbd
// header. Reads resolve through the layer chain: blocks present in the
// child decrypt with the child's keys; absent blocks fall through to the
// parent snapshot and are opened with the *parent's* keys, recursively,
// until a layer owns the block or the base reports a hole. Writes always
// seal under the child's current key epoch into the child's objects —
// the parent is never written — so key lifecycle operations stay
// per-tenant: DropEpoch on one clone crypto-erases that tenant's writes
// and nothing else, and rekeying a clone walks only child-owned blocks.
//
// Sub-block writes copy up: the covering block is read through the chain
// (decrypted with whatever layer's key owns it), merged with the new
// bytes, and re-sealed under the child's key — the moment data migrates
// from the provider's trust domain into the tenant's.
//
// Flatten (flatten.go) is the background walker that copies every still-
// inherited block into the child and severs the parent link, mirroring
// the rekey walker's discipline: per-object exclusive locking against
// live writers, crash-resumable progress in the child's header OMAP, and
// an optional vtime.Pacer bounding its interference on foreground IO.
package clone

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/bufpool"
	"repro/internal/core"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/vtime"
)

var (
	// ErrNoKey reports a layer whose passphrase is missing from the
	// keychain.
	ErrNoKey = errors.New("clone: keychain has no passphrase for layer")
	// ErrNotClone reports a flatten on an image without a parent.
	ErrNotClone = errors.New("clone: image has no parent")
	// ErrBlockSize reports a child block size differing from the parent's
	// (layer resolution maps blocks 1:1 across the chain).
	ErrBlockSize = errors.New("clone: child and parent block sizes differ")
)

// Keychain maps image names to their container passphrases. Opening a
// clone needs the credential of every layer in its chain: read-through
// decrypts inherited blocks with the keys of the layer that owns them.
type Keychain map[string][]byte

func (k Keychain) passphrase(image string) ([]byte, error) {
	p, ok := k[image]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoKey, image)
	}
	return p, nil
}

// layer is one read-only ancestor in the chain: an encrypted image
// frozen at a snapshot, plus its own parent (nil at the base).
type layer struct {
	enc    *core.EncryptedImage
	snapID uint64
	parent *layer
}

// Image is an open layered image: its own writable encrypted layer plus,
// until flattened, a read-only parent chain. It satisfies fio.Target and
// fio.Discarder, so workloads run against clones unchanged. Like
// core.EncryptedImage, one handle must be the only writer.
type Image struct {
	enc *core.EncryptedImage

	// pmu guards the parent link, which flatten severs while readers may
	// be resolving through it.
	pmu    sync.RWMutex
	parent *layer
}

// Create makes an encrypted clone of parentName@snapName: a fresh image
// of the parent's geometry, linked to the parent snapshot and formatted
// with its own container under keys[childName]. opts picks the child's
// scheme and layout — they are free to differ from the parent's (the
// chain resolves blocks, not bytes, so any scheme can layer over any
// other); the block size must match and defaults to the parent's.
func Create(at vtime.Time, client *rados.Client, pool, parentName, snapName, childName string, keys Keychain, opts core.Options) (*Image, vtime.Time, error) {
	parent, at, err := openLayerChain(at, client, pool, parentName, snapName, keys)
	if err != nil {
		return nil, at, err
	}
	popts := parent.enc.Options()
	if opts.BlockSize == 0 {
		opts.BlockSize = popts.BlockSize
	}
	if opts.BlockSize != popts.BlockSize {
		return nil, at, fmt.Errorf("%w: child %d, parent %d", ErrBlockSize, opts.BlockSize, popts.BlockSize)
	}
	// Validate everything validatable before the first mutation, so the
	// common failures (missing child key, bad options) cannot strand a
	// half-built image squatting on the tenant's name.
	pass, err := keys.passphrase(childName)
	if err != nil {
		return nil, at, err
	}
	if err := opts.Validate(); err != nil {
		return nil, at, err
	}
	pimg := parent.enc.Image()
	if at, err = rbd.CreateWithObjectSize(at, client, pool, childName, pimg.Size(), pimg.ObjectSize()); err != nil {
		return nil, at, err
	}
	img, at, err := rbd.Open(at, client, pool, childName)
	if err != nil {
		return nil, at, err
	}
	if at, err = img.SetParent(at, rbd.ParentSpec{Pool: pool, Image: parentName, SnapID: parent.snapID, SnapName: snapName}); err != nil {
		return nil, at, err
	}
	if at, err = core.Format(at, img, pass, opts); err != nil {
		return nil, at, err
	}
	enc, at, err := core.Load(at, img, pass)
	if err != nil {
		return nil, at, err
	}
	return &Image{enc: enc, parent: parent}, at, nil
}

// Open loads a layered image and its whole parent chain. It also opens
// plain (non-layered or already flattened) encrypted images, whose
// chain is empty.
func Open(at vtime.Time, client *rados.Client, pool, name string, keys Keychain) (*Image, vtime.Time, error) {
	enc, parent, at, err := openLayer(at, client, pool, name, keys)
	if err != nil {
		return nil, at, err
	}
	return &Image{enc: enc, parent: parent}, at, nil
}

// openLayer opens one image plus its ancestors, returning the image's
// encrypted handle and the chain above it.
func openLayer(at vtime.Time, client *rados.Client, pool, name string, keys Keychain) (*core.EncryptedImage, *layer, vtime.Time, error) {
	img, at, err := rbd.Open(at, client, pool, name)
	if err != nil {
		return nil, nil, at, err
	}
	pass, err := keys.passphrase(name)
	if err != nil {
		return nil, nil, at, err
	}
	enc, at, err := core.Load(at, img, pass)
	if err != nil {
		return nil, nil, at, err
	}
	spec := img.Parent()
	if spec == nil {
		return enc, nil, at, nil
	}
	penc, pparent, at, err := openLayer(at, client, spec.Pool, spec.Image, keys)
	if err != nil {
		return nil, nil, at, err
	}
	if penc.Options().BlockSize != enc.Options().BlockSize {
		return nil, nil, at, fmt.Errorf("%w: child %d, parent %d", ErrBlockSize, enc.Options().BlockSize, penc.Options().BlockSize)
	}
	return enc, &layer{enc: penc, snapID: spec.SnapID, parent: pparent}, at, nil
}

// openLayerChain opens parentName@snapName as the top of a read-only
// chain (the shape Create links a child to).
func openLayerChain(at vtime.Time, client *rados.Client, pool, name, snapName string, keys Keychain) (*layer, vtime.Time, error) {
	enc, parent, at, err := openLayer(at, client, pool, name, keys)
	if err != nil {
		return nil, at, err
	}
	snapID, err := enc.Image().SnapID(snapName)
	if err != nil {
		return nil, at, err
	}
	return &layer{enc: enc, snapID: snapID, parent: parent}, at, nil
}

// Enc exposes the image's own encrypted layer — the handle key-lifecycle
// subsystems operate on: keymgr.Start(.., img.Enc()) rekeys the child,
// walking (and re-sealing) only child-owned blocks, and
// Enc().DropEpoch crypto-erases the child's writes without touching the
// parent or any sibling clone.
func (img *Image) Enc() *core.EncryptedImage { return img.enc }

// Size returns the usable image size.
func (img *Image) Size() int64 { return img.enc.Size() }

// Options returns the child layer's encryption options.
func (img *Image) Options() core.Options { return img.enc.Options() }

// Parent reports the parent pointer, or nil once flattened.
func (img *Image) Parent() *rbd.ParentSpec { return img.enc.Image().Parent() }

// CreateSnap snapshots the child layer (inherited blocks stay inherited;
// a snapshot of a clone still resolves through the chain). Snapshots pin
// the parent link: an image with snapshots refuses to flatten
// (ErrHasSnaps), and — symmetrically — a clone refuses to snapshot while
// a flatten is in flight, because the walker fills only the head and the
// sever would silently zero the snapshot's inherited view.
func (img *Image) CreateSnap(at vtime.Time, name string) (uint64, vtime.Time, error) {
	if img.parentLayer() != nil {
		// The flatten record is persisted before any data moves, so this
		// probe cannot miss an in-flight walk.
		if _, found, end, err := loadFlattenProgress(at, img); err != nil {
			return 0, at, err
		} else if found {
			return 0, end, ErrFlattenActive
		}
	}
	return img.enc.CreateSnap(at, name)
}

func (img *Image) parentLayer() *layer {
	img.pmu.RLock()
	defer img.pmu.RUnlock()
	return img.parent
}

// detachParent drops the in-memory chain once flatten severed the
// persistent pointer.
func (img *Image) detachParent() {
	img.pmu.Lock()
	img.parent = nil
	img.pmu.Unlock()
}

// ---- read-through ----

// presPool recycles the per-read presence scratch so layer resolution
// adds no per-IO heap allocation on the hot path.
type presBuf struct{ p []bool }

var presPool = sync.Pool{New: func() any { return new(presBuf) }}

func getPres(n int) *presBuf {
	b := presPool.Get().(*presBuf)
	if cap(b.p) < n {
		b.p = make([]bool, n)
	}
	b.p = b.p[:n]
	clear(b.p)
	return b
}

func putPres(b *presBuf) { presPool.Put(b) }

// forRuns invokes fn for each maximal run pres[lo:hi) of one repeated
// value — the chunking every chain operation shares (recurse over absent
// runs, mask over present runs).
func forRuns(pres []bool, fn func(lo, hi int, val bool) error) error {
	for lo := 0; lo < len(pres); {
		hi := lo + 1
		for hi < len(pres) && pres[hi] == pres[lo] {
			hi++
		}
		if err := fn(lo, hi, pres[lo]); err != nil {
			return err
		}
		lo = hi
	}
	return nil
}

// forBlockRuns invokes fn for each maximal run blocks[lo:hi) of
// consecutive indices.
func forBlockRuns(blocks []int64, fn func(lo, hi int) error) error {
	for lo := 0; lo < len(blocks); {
		hi := lo + 1
		for hi < len(blocks) && blocks[hi] == blocks[hi-1]+1 {
			hi++
		}
		if err := fn(lo, hi); err != nil {
			return err
		}
		lo = hi
	}
	return nil
}

// readInto fills p from the layer (at its snapshot) and, for blocks the
// layer does not own, recurses into its parent over the maximal absent
// runs. present reports the union over the chain; blocks absent
// everywhere are zero-filled (holes).
func (l *layer) readInto(at vtime.Time, p []byte, off int64, present []bool) (vtime.Time, error) {
	return readThrough(at, l.enc, l.snapID, l.parent, p, off, present)
}

func readThrough(at vtime.Time, enc *core.EncryptedImage, snapID uint64, parent *layer, p []byte, off int64, present []bool) (vtime.Time, error) {
	end, err := enc.ReadAtSnapPresent(at, p, off, snapID, present)
	if err != nil || parent == nil {
		return end, err
	}
	bs := enc.Options().BlockSize
	err = forRuns(present, func(lo, hi int, owned bool) error {
		if owned {
			return nil
		}
		sub := p[int64(lo)*bs : int64(hi)*bs]
		e2, err := parent.readInto(at, sub, off+int64(lo)*bs, present[lo:hi])
		if err != nil {
			return err
		}
		end = vtime.Max(end, e2)
		return nil
	})
	if err != nil {
		return at, err
	}
	return end, nil
}

// presentRange reports, per block of [off, off+length), whether any
// layer of the chain (this one or an ancestor) owns the block, using the
// layout presence probes — no ciphertext moves.
func (l *layer) presentRange(at vtime.Time, off, length int64) ([]bool, vtime.Time, error) {
	pres, end, err := l.enc.PresentRange(at, off, length, l.snapID)
	if err != nil || l.parent == nil {
		return pres, end, err
	}
	bs := l.enc.Options().BlockSize
	err = forRuns(pres, func(lo, hi int, owned bool) error {
		if owned {
			return nil
		}
		sub, e2, err := l.parent.presentRange(at, off+int64(lo)*bs, int64(hi-lo)*bs)
		if err != nil {
			return err
		}
		copy(pres[lo:hi], sub)
		end = vtime.Max(end, e2)
		return nil
	})
	if err != nil {
		return nil, at, err
	}
	return pres, end, nil
}

// ReadAt reads [off, off+len(p)) from the image head, resolving through
// the layer chain: child blocks decrypt under the child's keys,
// inherited blocks under their owning ancestor's keys, and blocks absent
// everywhere read as zeros.
func (img *Image) ReadAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	return img.ReadAtSnap(at, p, off, 0)
}

// ReadAtSnap reads from a child snapshot (0 = head) through the chain.
func (img *Image) ReadAtSnap(at vtime.Time, p []byte, off int64, snapID uint64) (vtime.Time, error) {
	parent := img.parentLayer()
	if parent == nil {
		return img.enc.ReadAtSnap(at, p, off, snapID)
	}
	bs := img.enc.Options().BlockSize
	if off%bs != 0 || int64(len(p))%bs != 0 {
		return at, fmt.Errorf("%w: off=%d len=%d block=%d", core.ErrAlignment, off, len(p), bs)
	}
	pres := getPres(len(p) / int(bs))
	end, err := readThrough(at, img.enc, snapID, parent, p, off, pres.p)
	putPres(pres)
	return end, err
}

// WriteAt writes p at off, always sealing under the child's current key
// epoch into the child's objects. Block-aligned spans go straight to the
// child layer; a sector-aligned write that partially covers a block
// copies the block up first — its current content is read through the
// chain (opened with the owning layer's key), merged with the new bytes,
// and the whole block re-sealed under the child's key. Partial-block
// read-modify-write is not atomic against a second writer handle, the
// same single-writer contract the allocation sidecar already assumes.
func (img *Image) WriteAt(at vtime.Time, p []byte, off int64) (vtime.Time, error) {
	bs := img.enc.Options().BlockSize
	if off%bs == 0 && int64(len(p))%bs == 0 {
		return img.enc.WriteAt(at, p, off)
	}
	const sector = 512
	if off%sector != 0 || int64(len(p))%sector != 0 {
		return at, fmt.Errorf("%w: off=%d len=%d sector=%d", core.ErrAlignment, off, len(p), sector)
	}
	end := at
	n := int64(len(p))
	// Head partial block, middle full blocks, tail partial block.
	headLen := int64(0)
	if off%bs != 0 {
		headLen = bs - off%bs
		if headLen > n {
			headLen = n
		}
	}
	midLen := (n - headLen) / bs * bs
	copyupBlock := func(blockOff, dataOff, dataLen int64, data []byte) (vtime.Time, error) {
		buf := bufpool.Get(int(bs))
		defer bufpool.Put(buf)
		pres := getPres(1)
		defer putPres(pres)
		e, err := readThrough(at, img.enc, 0, img.parentLayer(), buf, blockOff, pres.p)
		if err != nil {
			return at, err
		}
		copy(buf[dataOff:], data[:dataLen])
		return img.enc.WriteAt(e, buf, blockOff)
	}
	if headLen > 0 {
		e, err := copyupBlock(off-off%bs, off%bs, headLen, p)
		if err != nil {
			return at, err
		}
		end = vtime.Max(end, e)
	}
	if midLen > 0 {
		e, err := img.enc.WriteAt(at, p[headLen:headLen+midLen], off+headLen)
		if err != nil {
			return at, err
		}
		end = vtime.Max(end, e)
	}
	if tail := n - headLen - midLen; tail > 0 {
		e, err := copyupBlock(off+headLen+midLen, 0, tail, p[headLen+midLen:])
		if err != nil {
			return at, err
		}
		end = vtime.Max(end, e)
	}
	return end, nil
}

// Discard drops the block-aligned range [off, off+length) from the
// child's view. Blocks the parent chain has no data for are punched in
// the child (true holes, crypto-erased as in core.Discard); blocks the
// chain does own are instead masked by an explicit zero block sealed
// under the child's key — punching those would resurrect the parent's
// data through read-through.
func (img *Image) Discard(at vtime.Time, off, length int64) (vtime.Time, error) {
	parent := img.parentLayer()
	if parent == nil {
		return img.enc.Discard(at, off, length)
	}
	bs := img.enc.Options().BlockSize
	if off%bs != 0 || length%bs != 0 || length < 0 {
		return at, fmt.Errorf("%w: discard off=%d len=%d block=%d", core.ErrAlignment, off, length, bs)
	}
	if length == 0 {
		return at, nil
	}
	pres, end, err := parent.presentRange(at, off, length)
	if err != nil {
		return at, err
	}
	err = forRuns(pres, func(lo, hi int, chainOwned bool) error {
		runOff, runLen := off+int64(lo)*bs, int64(hi-lo)*bs
		if !chainOwned {
			e, err := img.enc.Discard(at, runOff, runLen)
			if err == nil {
				end = vtime.Max(end, e)
			}
			return err
		}
		// Mask in bounded chunks: a giant present run must not translate
		// into one payload-sized zero buffer (the true-punch branch above
		// carries no payload at all).
		const maskChunk = 1 << 20
		for o := int64(0); o < runLen; o += maskChunk {
			n := min(int64(maskChunk), runLen-o)
			zero := bufpool.GetZero(int(n))
			e, err := img.enc.WriteAt(at, zero, runOff+o)
			bufpool.Put(zero)
			if err != nil {
				return err
			}
			end = vtime.Max(end, e)
		}
		return nil
	})
	if err != nil {
		return at, err
	}
	return end, nil
}
