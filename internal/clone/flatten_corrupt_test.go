package clone

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/rados"
	"repro/internal/rbd"
)

// TestFlattenCorruptCursorRestartsCleanly corrupts the flatten cursor
// mid-walk and checks ResumeFlatten's recovery contract: no panic, no
// error, a fresh full walk from object zero that still converges to a
// correctly flattened clone (copyup is idempotent, so re-walked objects
// are no-ops).
func TestFlattenCorruptCursorRestartsCleanly(t *testing.T) {
	cl := testClient(t)
	base := createBase(t, cl, "base", core.SchemeXTSRand, core.LayoutOMAP)
	rng := rand.New(rand.NewSource(41))
	model := make([]byte, imgSize)
	scatterWrites(t, base.WriteAt, model, rng, 24)
	if _, _, err := base.CreateSnap(0, "g"); err != nil {
		t.Fatal(err)
	}
	keys := keysFor("base", "c")
	c, _, err := Create(0, cl, "rbd", "base", "g", "c", keys,
		core.Options{Scheme: core.SchemeXTSRand, Layout: core.LayoutOMAP})
	if err != nil {
		t.Fatal(err)
	}
	childModel := append([]byte(nil), model...)
	scatterWrites(t, c.WriteAt, childModel, rng, 8)

	f, _, err := StartFlatten(0, c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := f.Step(0); err != nil {
			t.Fatal(err)
		}
	}

	// Torn OMAP write under the walker: raw garbage where the JSON
	// cursor should be.
	res, _, err := c.enc.Image().OperateHeader(0, []rados.Op{{
		Kind:  rados.OpOmapSet,
		Pairs: []rados.Pair{{Key: []byte(flattenKey), Value: []byte("\xba\xadcursor bytes")}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Status != rados.StatusOK {
		t.Fatalf("raw omap set: %v", res[0].Status)
	}
	if _, _, _, err := loadFlattenProgress(0, c); !errors.Is(err, rbd.ErrCorruptCursor) {
		t.Fatalf("loadFlattenProgress: %v, want ErrCorruptCursor", err)
	}

	c2, _, err := Open(0, cl, "rbd", "c", keys)
	if err != nil {
		t.Fatal(err)
	}
	f2, _, err := ResumeFlatten(0, c2)
	if err != nil {
		t.Fatalf("ResumeFlatten over corrupt cursor: %v", err)
	}
	if p := f2.Progress(); p.NextObj != 0 || p.Objects != c2.enc.ObjectCount() {
		t.Fatalf("restarted cursor %+v, want fresh full walk", p)
	}
	for {
		done, _, err := f2.Step(0)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if c2.Parent() != nil {
		t.Fatal("parent pointer survived restarted flatten")
	}
	if _, _, err := ResumeFlatten(0, c2); !errors.Is(err, ErrNoFlatten) {
		t.Fatalf("resume after completion: %v", err)
	}
	// Content intact under the child's key alone.
	c3, _, err := Open(0, cl, "rbd", "c", keysFor("c"))
	if err != nil {
		t.Fatal(err)
	}
	assertImage(t, "after corrupt-cursor flatten restart", readAll(t, c3), childModel)
}

// TestFlattenOutOfRangeCursorRestarts covers decodable records whose
// positions lie outside the walk domain.
func TestFlattenOutOfRangeCursorRestarts(t *testing.T) {
	cl := testClient(t)
	base := createBase(t, cl, "base", core.SchemeXTSRand, core.LayoutObjectEnd)
	rng := rand.New(rand.NewSource(42))
	model := make([]byte, imgSize)
	scatterWrites(t, base.WriteAt, model, rng, 12)
	if _, _, err := base.CreateSnap(0, "g"); err != nil {
		t.Fatal(err)
	}
	keys := keysFor("base", "c")
	c, _, err := Create(0, cl, "rbd", "base", "g", "c", keys,
		core.Options{Scheme: core.SchemeXTSRand, Layout: core.LayoutObjectEnd})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := StartFlatten(0, c); err != nil {
		t.Fatal(err)
	}
	objects := c.enc.ObjectCount()
	bogus := FlattenProgress{NextObj: objects + 7, Objects: objects + 9}
	if _, err := c.enc.Image().SaveCursor(0, flattenKey, bogus); err != nil {
		t.Fatal(err)
	}
	c2, _, err := Open(0, cl, "rbd", "c", keys)
	if err != nil {
		t.Fatal(err)
	}
	f2, _, err := ResumeFlatten(0, c2)
	if err != nil {
		t.Fatalf("ResumeFlatten over out-of-range cursor: %v", err)
	}
	if p := f2.Progress(); p.NextObj != 0 || p.Objects != objects {
		t.Fatalf("restarted cursor %+v, want fresh full walk of %d objects", p, objects)
	}
	for {
		done, _, err := f2.Step(0)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	c3, _, err := Open(0, cl, "rbd", "c", keysFor("c"))
	if err != nil {
		t.Fatal(err)
	}
	assertImage(t, "after out-of-range flatten restart", readAll(t, c3), model)
}
