package clone

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// benchClone builds a preconditioned base + clone pair for the gated
// benchmarks: the parent fully written, the child empty, so every read
// resolves through the chain.
func benchClone(b *testing.B) *Image {
	b.Helper()
	cl := testClient(b)
	base := createBase(b, cl, "base", core.SchemeXTSRand, core.LayoutObjectEnd)
	buf := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(buf)
	for off := int64(0); off < imgSize; off += int64(len(buf)) {
		if _, err := base.WriteAt(0, buf, off); err != nil {
			b.Fatal(err)
		}
	}
	if _, _, err := base.CreateSnap(0, "g"); err != nil {
		b.Fatal(err)
	}
	c, _, err := Create(0, cl, "rbd", "base", "g", "c", keysFor("base", "c"),
		core.Options{Scheme: core.SchemeXTSRand, Layout: core.LayoutObjectEnd})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkCloneReadThrough measures a 64 KiB read that falls entirely
// through to the parent layer — presence probe on the child plus
// decrypt-under-parent-key — the layer-resolution hot path the bench
// gate keeps off the allocation floor.
func BenchmarkCloneReadThrough(b *testing.B) {
	c := benchClone(b)
	p := make([]byte, 64<<10)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.SetBytes(int64(len(p)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := rng.Int63n((imgSize-int64(len(p)))/bs) * bs
		if _, err := c.ReadAt(0, p, off); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCopyup measures the copyup primitive end to end: probe one
// object's child presence, read 64 KiB through the parent chain, re-seal
// under the child's key, commit. Between iterations (untimed) the blocks
// are punched again so every iteration performs real copyup work.
func BenchmarkCopyup(b *testing.B) {
	c := benchClone(b)
	const nb = 16 // blocks copied per iteration (object 0's head)
	// The production fetch: read absent blocks through the parent chain.
	fetch := parentFetch(c.parentLayer(), 0, c.Enc().Image().ObjectSize(), bs)
	// Pre-warm: copy the whole object up once, so timed iterations copy
	// exactly the nb punched blocks.
	if _, _, err := c.Enc().CopyupObject(0, 0, fetch); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(nb * bs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if _, err := c.Enc().Discard(0, 0, nb*bs); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		n, _, err := c.Enc().CopyupObject(0, 0, fetch)
		if err != nil {
			b.Fatal(err)
		}
		if n != nb {
			b.Fatalf("copyup copied %d blocks, want %d", n, nb)
		}
	}
}
