package clone

// metrics.go: flatten-walker progress gauges, labeled by image, resolved
// once per Flattener so Step records allocation-free. Mirrors the rekey
// walker's gauges in internal/keymgr so both background walkers expose
// identical live-progress shapes (see METRICS.md).

import (
	"repro/internal/telemetry"
	"repro/internal/vtime"
)

var (
	mFlattenDone = telemetry.NewGaugeVec("flatten_objects_done",
		"objects the flatten walker has completed", "image")
	mFlattenTotal = telemetry.NewGaugeVec("flatten_objects_total",
		"objects in the flatten walk domain", "image")
	mFlattenBlocks = telemetry.NewCounterVec("flatten_blocks_copied_total",
		"blocks copied up from the parent chain into the child", "image")
	mFlattenDebt = telemetry.NewGaugeVec("flatten_pacer_debt_ns",
		"flatten pacer debt in virtual nanoseconds (0 = unpaced or inside budget)", "image")
	mFlattenStall = telemetry.NewGaugeVec("flatten_pacer_stall_ns",
		"cumulative virtual time the flatten walker spent stalled in pacer admission", "image")
)

// flattenMetrics is the per-image bundle of resolved series.
type flattenMetrics struct {
	done, total, debt, stall *telemetry.Gauge
	blocks                   *telemetry.Counter
}

// newFlattener binds a walker to its image-labeled progress gauges.
func newFlattener(img *Image, prog FlattenProgress) *Flattener {
	name := img.enc.Image().Name()
	return &Flattener{img: img, prog: prog, met: flattenMetrics{
		done:   mFlattenDone.With(name),
		total:  mFlattenTotal.With(name),
		debt:   mFlattenDebt.With(name),
		stall:  mFlattenStall.With(name),
		blocks: mFlattenBlocks.With(name),
	}}
}

// publish pushes the current cursor (and pacer debt at virtual time at)
// into the gauges.
func (f *Flattener) publish(at vtime.Time) {
	f.met.done.Set(f.prog.NextObj)
	f.met.total.Set(f.prog.Objects)
	f.met.debt.SetDuration(f.pace.Debt(at))
	f.met.stall.SetDuration(f.pace.Stall())
}
