package clone

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fio"
	"repro/internal/rados"
	"repro/internal/rbd"
	"repro/internal/simdisk"
	"repro/internal/vtime"
)

const (
	imgSize = 4 << 20
	objSize = 1 << 20
	bs      = 4096
	blocks  = imgSize / bs
)

func testClient(t testing.TB) *rados.Client {
	t.Helper()
	cfg := rados.DefaultClusterConfig()
	cfg.OSDs = 3
	cfg.DisksPerOSD = 2
	cfg.DiskSectors = (768 << 20) / simdisk.SectorSize
	cfg.PGNum = 16
	cfg.Blob.ObjectCapacity = 1<<20 + 64<<10
	cfg.Blob.KVBytes = 64 << 20
	cfg.Blob.KV.MemtableBytes = 256 << 10
	cfg.Blob.KV.WALBytes = 4 << 20
	c, err := rados.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c.NewClient("clone-test")
}

func pass(name string) []byte { return []byte("pw-" + name) }

func keysFor(names ...string) Keychain {
	k := make(Keychain, len(names))
	for _, n := range names {
		k[n] = pass(n)
	}
	return k
}

// createBase makes an encryption-formatted image under its own keychain
// passphrase.
func createBase(t testing.TB, cl *rados.Client, name string, scheme core.Scheme, layout core.Layout) *core.EncryptedImage {
	t.Helper()
	if _, err := rbd.CreateWithObjectSize(0, cl, "rbd", name, imgSize, objSize); err != nil {
		t.Fatal(err)
	}
	img, _, err := rbd.Open(0, cl, "rbd", name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Format(0, img, pass(name), core.Options{Scheme: scheme, Layout: layout}); err != nil {
		t.Fatal(err)
	}
	e, _, err := core.Load(0, img, pass(name))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

type combo struct {
	Scheme core.Scheme
	Layout core.Layout
}

func allCombos() []combo {
	return []combo{
		{core.SchemeLUKS2, core.LayoutNone},
		{core.SchemeEME2Det, core.LayoutNone},
		{core.SchemeXTSRand, core.LayoutUnaligned},
		{core.SchemeXTSRand, core.LayoutObjectEnd},
		{core.SchemeXTSRand, core.LayoutOMAP},
		{core.SchemeGCM, core.LayoutUnaligned},
		{core.SchemeGCM, core.LayoutObjectEnd},
		{core.SchemeGCM, core.LayoutOMAP},
		{core.SchemeEME2Rand, core.LayoutUnaligned},
		{core.SchemeEME2Rand, core.LayoutObjectEnd},
		{core.SchemeEME2Rand, core.LayoutOMAP},
	}
}

// scatterWrites performs n random block-aligned writes, mirroring them
// into model.
func scatterWrites(t testing.TB, w func(at vtime.Time, p []byte, off int64) (vtime.Time, error), model []byte, rng *rand.Rand, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		nb := int64(rng.Intn(24) + 1)
		off := rng.Int63n(blocks-nb+1) * bs
		buf := make([]byte, nb*bs)
		rng.Read(buf)
		if _, err := w(0, buf, off); err != nil {
			t.Fatal(err)
		}
		copy(model[off:], buf)
	}
}

func readAll(t testing.TB, r interface {
	ReadAt(vtime.Time, []byte, int64) (vtime.Time, error)
}) []byte {
	t.Helper()
	got := make([]byte, imgSize)
	if _, err := r.ReadAt(0, got, 0); err != nil {
		t.Fatal(err)
	}
	return got
}

func assertImage(t *testing.T, label string, got, want []byte) {
	t.Helper()
	if bytes.Equal(got, want) {
		return
	}
	for b := 0; b < len(got)/bs; b++ {
		if !bytes.Equal(got[b*bs:(b+1)*bs], want[b*bs:(b+1)*bs]) {
			t.Fatalf("%s: block %d mismatch", label, b)
		}
	}
	t.Fatalf("%s: length mismatch", label)
}

// TestCloneMatrix runs the full scheme×layout grid as BOTH parent and
// child: each combo parents the next combo's child (so every pair of
// adjacent combos is a mixed-scheme chain, and every combo appears once
// on each side), plus a same-combo pair. Per pair it checks sparse
// read-through of the parent snapshot (holes included), isolation of the
// parent and a sibling clone from child writes, and persistence across
// a fresh Open of the whole chain.
func TestCloneMatrix(t *testing.T) {
	combos := allCombos()
	pairs := make([][2]combo, 0, len(combos)+1)
	for i, c := range combos {
		pairs = append(pairs, [2]combo{c, combos[(i+1)%len(combos)]})
	}
	pairs = append(pairs, [2]combo{combos[3], combos[3]}) // same-scheme pair
	for pi, pair := range pairs {
		pair := pair
		t.Run(fmt.Sprintf("%v-%v_over_%v-%v", pair[1].Scheme, pair[1].Layout, pair[0].Scheme, pair[0].Layout), func(t *testing.T) {
			cl := testClient(t)
			base := createBase(t, cl, "base", pair[0].Scheme, pair[0].Layout)
			rng := rand.New(rand.NewSource(int64(9000 + pi)))

			// Sparse golden content: scattered writes, holes elsewhere.
			model := make([]byte, imgSize)
			scatterWrites(t, base.WriteAt, model, rng, 24)
			if _, _, err := base.CreateSnap(0, "golden"); err != nil {
				t.Fatal(err)
			}
			// Scribble on the base head AFTER the snapshot: clones must
			// resolve against the snapshot, not the head.
			junk := bytes.Repeat([]byte{0x5A}, 64<<10)
			if _, err := base.WriteAt(0, junk, 1<<20); err != nil {
				t.Fatal(err)
			}

			keys := keysFor("base", "childA", "childB")
			opts := core.Options{Scheme: pair[1].Scheme, Layout: pair[1].Layout}
			a, _, err := Create(0, cl, "rbd", "base", "golden", "childA", keys, opts)
			if err != nil {
				t.Fatal(err)
			}
			b, _, err := Create(0, cl, "rbd", "base", "golden", "childB", keys, opts)
			if err != nil {
				t.Fatal(err)
			}

			// Read-through: the child sees the golden snapshot exactly,
			// holes as zeros, despite the head scribble.
			assertImage(t, "childA read-through", readAll(t, a), model)

			// Child writes overlay the parent and leave siblings alone.
			childModel := append([]byte(nil), model...)
			scatterWrites(t, a.WriteAt, childModel, rng, 24)
			assertImage(t, "childA after writes", readAll(t, a), childModel)
			assertImage(t, "childB sibling isolation", readAll(t, b), model)

			// The whole chain survives a fresh Open (cold caches).
			a2, _, err := Open(0, cl, "rbd", "childA", keys)
			if err != nil {
				t.Fatal(err)
			}
			assertImage(t, "childA reopened", readAll(t, a2), childModel)
			if a2.Parent() == nil || a2.Parent().Image != "base" {
				t.Fatalf("reopened clone lost its parent pointer: %+v", a2.Parent())
			}

			// A key is required for every layer: opening without the
			// parent's passphrase must fail.
			if _, _, err := Open(0, cl, "rbd", "childA", keysFor("childA")); !errors.Is(err, ErrNoKey) {
				t.Fatalf("open without parent key: %v", err)
			}
		})
	}
}

// TestDeepChainReadThrough layers a grandchild over a child over a base
// and checks blocks resolve to the nearest layer that owns them, each
// decrypted under its own layer's keys.
func TestDeepChainReadThrough(t *testing.T) {
	cl := testClient(t)
	base := createBase(t, cl, "base", core.SchemeXTSRand, core.LayoutObjectEnd)
	rng := rand.New(rand.NewSource(77))

	model := make([]byte, imgSize)
	scatterWrites(t, base.WriteAt, model, rng, 16)
	if _, _, err := base.CreateSnap(0, "s0"); err != nil {
		t.Fatal(err)
	}

	keys := keysFor("base", "c1", "c2")
	c1, _, err := Create(0, cl, "rbd", "base", "s0", "c1", keys,
		core.Options{Scheme: core.SchemeGCM, Layout: core.LayoutOMAP})
	if err != nil {
		t.Fatal(err)
	}
	scatterWrites(t, c1.WriteAt, model, rng, 16)
	if _, _, err := c1.CreateSnap(0, "s1"); err != nil {
		t.Fatal(err)
	}
	c2, _, err := Create(0, cl, "rbd", "c1", "s1", "c2", keys,
		core.Options{Scheme: core.SchemeLUKS2, Layout: core.LayoutNone})
	if err != nil {
		t.Fatal(err)
	}
	scatterWrites(t, c2.WriteAt, model, rng, 16)

	assertImage(t, "grandchild 3-layer resolution", readAll(t, c2), model)

	// And a fresh open of the 3-deep chain.
	c2b, _, err := Open(0, cl, "rbd", "c2", keys)
	if err != nil {
		t.Fatal(err)
	}
	assertImage(t, "grandchild reopened", readAll(t, c2b), model)
}

// TestCopyupPartialWrite checks the copy-on-write re-seal for sub-block
// writes: the covering block migrates from the parent into the child,
// merged with the new bytes, and becomes child-owned.
func TestCopyupPartialWrite(t *testing.T) {
	cl := testClient(t)
	base := createBase(t, cl, "base", core.SchemeXTSRand, core.LayoutObjectEnd)
	model := make([]byte, imgSize)
	rng := rand.New(rand.NewSource(5))
	scatterWrites(t, base.WriteAt, model, rng, 20)
	// Make block 3 deterministic parent content and block 9 a hole.
	parentBlock := bytes.Repeat([]byte{0xAB}, bs)
	if _, err := base.WriteAt(0, parentBlock, 3*bs); err != nil {
		t.Fatal(err)
	}
	copy(model[3*bs:], parentBlock)
	if _, err := base.Discard(0, 9*bs, bs); err != nil {
		t.Fatal(err)
	}
	clearRange(model, 9*bs, bs)
	if _, _, err := base.CreateSnap(0, "g"); err != nil {
		t.Fatal(err)
	}

	keys := keysFor("base", "c")
	c, _, err := Create(0, cl, "rbd", "base", "g", "c", keys,
		core.Options{Scheme: core.SchemeGCM, Layout: core.LayoutObjectEnd})
	if err != nil {
		t.Fatal(err)
	}

	// Sub-block write over parent data: 512 bytes into block 3.
	frag := bytes.Repeat([]byte{0x11}, 512)
	if _, err := c.WriteAt(0, frag, 3*bs+1024); err != nil {
		t.Fatal(err)
	}
	copy(model[3*bs+1024:], frag)
	// Sub-block write over a chain hole: merges with zeros.
	if _, err := c.WriteAt(0, frag, 9*bs+512); err != nil {
		t.Fatal(err)
	}
	copy(model[9*bs+512:], frag)
	// Straddling write: tail of block 4, head of block 5 (1 KiB each).
	if _, err := c.WriteAt(0, bytes.Repeat([]byte{0x22}, 2048), 5*bs-1024); err != nil {
		t.Fatal(err)
	}
	copy(model[5*bs-1024:], bytes.Repeat([]byte{0x22}, 2048))

	assertImage(t, "after copyup", readAll(t, c), model)

	// The copied-up blocks are now child-owned.
	pres, _, err := c.Enc().PresentRange(0, 0, 16*bs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int64{3, 4, 5, 9} {
		if !pres[b] {
			t.Fatalf("block %d not owned by child after copyup", b)
		}
	}
	// Misaligned (non-sector) writes are rejected.
	if _, err := c.WriteAt(0, []byte{1, 2, 3}, 100); !errors.Is(err, core.ErrAlignment) {
		t.Fatalf("misaligned write: %v", err)
	}
}

// TestCloneDiscard checks discard semantics on a layered image: blocks
// the chain owns are masked (zero reads, parent intact), true holes stay
// holes.
func TestCloneDiscard(t *testing.T) {
	cl := testClient(t)
	base := createBase(t, cl, "base", core.SchemeXTSRand, core.LayoutOMAP)
	model := make([]byte, imgSize)
	rng := rand.New(rand.NewSource(6))
	scatterWrites(t, base.WriteAt, model, rng, 20)
	if _, _, err := base.CreateSnap(0, "g"); err != nil {
		t.Fatal(err)
	}
	keys := keysFor("base", "c")
	c, _, err := Create(0, cl, "rbd", "base", "g", "c", keys,
		core.Options{Scheme: core.SchemeXTSRand, Layout: core.LayoutOMAP})
	if err != nil {
		t.Fatal(err)
	}
	// Discard a wide range crossing parent data and holes.
	const dOff, dLen = 1 << 20, 1 << 20
	if _, err := c.Discard(0, dOff, dLen); err != nil {
		t.Fatal(err)
	}
	clearRange(model, dOff, dLen)
	assertImage(t, "clone after discard", readAll(t, c), model)

	// The parent snapshot is untouched.
	snap := make([]byte, imgSize)
	if _, err := base.ReadAt(0, snap, 0); err != nil {
		t.Fatal(err)
	}
	restored := append([]byte(nil), model...)
	copy(restored[dOff:dOff+dLen], snap[dOff:dOff+dLen])
	if !bytes.Equal(snap, restored) {
		t.Fatal("parent changed by child discard")
	}
}

func clearRange(model []byte, off, n int64) {
	clear(model[off : off+n])
}

// TestCryptoEraseIsolation is the acceptance criterion: DropEpoch on one
// clone crypto-erases that child's writes and NOTHING else — inherited
// blocks, the parent, and sibling clones stay fully readable.
func TestCryptoEraseIsolation(t *testing.T) {
	cl := testClient(t)
	base := createBase(t, cl, "base", core.SchemeXTSRand, core.LayoutObjectEnd)
	model := make([]byte, imgSize)
	rng := rand.New(rand.NewSource(11))
	scatterWrites(t, base.WriteAt, model, rng, 24)
	// Blocks 0..15 are guaranteed parent content.
	parentRun := make([]byte, 16*bs)
	rng.Read(parentRun)
	if _, err := base.WriteAt(0, parentRun, 0); err != nil {
		t.Fatal(err)
	}
	copy(model, parentRun)
	if _, _, err := base.CreateSnap(0, "g"); err != nil {
		t.Fatal(err)
	}

	keys := keysFor("base", "a", "b")
	opts := core.Options{Scheme: core.SchemeGCM, Layout: core.LayoutOMAP}
	a, _, err := Create(0, cl, "rbd", "base", "g", "a", keys, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Create(0, cl, "rbd", "base", "g", "b", keys, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Both tenants write; a's writes land at [2 MiB, 2 MiB+64 KiB).
	aModel := append([]byte(nil), model...)
	bModel := append([]byte(nil), model...)
	aData := make([]byte, 64<<10)
	rng.Read(aData)
	const aOff = 2 << 20
	if _, err := a.WriteAt(0, aData, aOff); err != nil {
		t.Fatal(err)
	}
	copy(aModel[aOff:], aData)
	scatterWrites(t, b.WriteAt, bModel, rng, 12)

	// Crypto-erase tenant a's epoch 0: mint epoch 1, destroy epoch 0.
	if _, _, err := a.Enc().BeginEpoch(0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Enc().DropEpoch(0, 0); err != nil {
		t.Fatal(err)
	}

	// a's own writes are gone for good…
	buf := make([]byte, len(aData))
	if _, err := a.ReadAt(0, buf, aOff); !errors.Is(err, core.ErrKeyErased) {
		t.Fatalf("erased child blocks still readable: %v", err)
	}
	// …but a's INHERITED blocks still decrypt (parent keys are separate).
	got := make([]byte, len(parentRun))
	if _, err := a.ReadAt(0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, parentRun) {
		t.Fatal("inherited blocks corrupted by child crypto-erase")
	}
	// Sibling and base are untouched.
	assertImage(t, "sibling after a's erase", readAll(t, b), bModel)
	snap := make([]byte, imgSize)
	if _, err := base.ReadAtSnap(0, snap, 0, mustSnapID(t, base, "g")); err != nil {
		t.Fatal(err)
	}
	assertImage(t, "base snapshot after a's erase", snap, model)
}

func mustSnapID(t testing.TB, e *core.EncryptedImage, name string) uint64 {
	t.Helper()
	id, err := e.Image().SnapID(name)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestFlattenUnderLiveIO is the flatten acceptance: the walker completes
// while an fio workload writes to the clone, the flattened image reads
// correctly with the parent link severed, and it round-trips through a
// fresh Open with ONLY the child's key after the parent image has been
// deleted.
func TestFlattenUnderLiveIO(t *testing.T) {
	for _, child := range []combo{
		{core.SchemeGCM, core.LayoutObjectEnd},
		{core.SchemeLUKS2, core.LayoutNone}, // metadata-free child: sidecar copyup
	} {
		child := child
		t.Run(fmt.Sprintf("%v-%v", child.Scheme, child.Layout), func(t *testing.T) {
			const fioSpan = 1 << 20 // fio owns [0, 1 MiB)
			cl := testClient(t)
			base := createBase(t, cl, "base", core.SchemeXTSRand, core.LayoutObjectEnd)
			rng := rand.New(rand.NewSource(21))
			model := make([]byte, imgSize)
			scatterWrites(t, base.WriteAt, model, rng, 24)
			if _, _, err := base.CreateSnap(0, "g"); err != nil {
				t.Fatal(err)
			}
			keys := keysFor("base", "c")
			c, _, err := Create(0, cl, "rbd", "base", "g", "c", keys,
				core.Options{Scheme: child.Scheme, Layout: child.Layout})
			if err != nil {
				t.Fatal(err)
			}

			f, _, err := StartFlatten(0, c)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := StartFlatten(0, c); !errors.Is(err, ErrFlattenActive) {
				t.Fatalf("double StartFlatten: %v", err)
			}

			var wg sync.WaitGroup
			wg.Add(1)
			var fioErr error
			go func() {
				defer wg.Done()
				_, fioErr = fio.Run(fio.Spec{
					Pattern:    fio.RandWrite,
					BlockSize:  bs,
					QueueDepth: 4,
					Span:       fioSpan,
					TotalOps:   64,
					Seed:       3,
				}, c, 0)
			}()
			buf := make([]byte, 64<<10)
			for done := false; !done; {
				var err error
				done, _, err = f.Step(0)
				if err != nil {
					t.Fatal(err)
				}
				// Model region reads stay correct mid-flatten.
				off := fioSpan + rng.Int63n((imgSize-fioSpan-int64(len(buf)))/bs)*bs
				if _, err := c.ReadAt(0, buf, off); err != nil {
					t.Fatalf("read during flatten: %v", err)
				}
				if !bytes.Equal(buf, model[off:off+int64(len(buf))]) {
					t.Fatalf("data changed under flatten at %d", off)
				}
			}
			wg.Wait()
			if fioErr != nil {
				t.Fatalf("fio during flatten: %v", fioErr)
			}

			if c.Parent() != nil {
				t.Fatal("parent pointer survived flatten")
			}
			if found, _, _, err := FlattenActive(0, c); err != nil || found {
				t.Fatalf("flatten record survived completion: %v %v", found, err)
			}
			got := readAll(t, c)
			if !bytes.Equal(got[fioSpan:], model[fioSpan:]) {
				t.Fatal("model region corrupted by flatten")
			}

			// Delete the parent image entirely; the flattened child must
			// round-trip with only its own key.
			if _, err := rbd.Remove(0, cl, "rbd", "base"); err != nil {
				t.Fatal(err)
			}
			c2, _, err := Open(0, cl, "rbd", "c", keysFor("c"))
			if err != nil {
				t.Fatal(err)
			}
			got2 := readAll(t, c2)
			if !bytes.Equal(got2[fioSpan:], model[fioSpan:]) {
				t.Fatal("flattened image lost data after parent deletion")
			}
			if !bytes.Equal(got2[:fioSpan], got[:fioSpan]) {
				t.Fatal("fio region diverged across reopen")
			}
		})
	}
}

// TestFlattenCrashResume crashes the flatten at two points — mid-walk,
// and after the last copyup but before the parent is severed — and
// resumes from the persisted cursor each time.
func TestFlattenCrashResume(t *testing.T) {
	cl := testClient(t)
	base := createBase(t, cl, "base", core.SchemeEME2Rand, core.LayoutUnaligned)
	rng := rand.New(rand.NewSource(31))
	model := make([]byte, imgSize)
	scatterWrites(t, base.WriteAt, model, rng, 24)
	if _, _, err := base.CreateSnap(0, "g"); err != nil {
		t.Fatal(err)
	}
	keys := keysFor("base", "c")
	c, _, err := Create(0, cl, "rbd", "base", "g", "c", keys,
		core.Options{Scheme: core.SchemeXTSRand, Layout: core.LayoutOMAP})
	if err != nil {
		t.Fatal(err)
	}
	childModel := append([]byte(nil), model...)
	scatterWrites(t, c.WriteAt, childModel, rng, 8)

	f, _, err := StartFlatten(0, c)
	if err != nil {
		t.Fatal(err)
	}
	// Crash 1: mid-walk after 2 of 4 objects.
	for i := 0; i < 2; i++ {
		if _, _, err := f.Step(0); err != nil {
			t.Fatal(err)
		}
	}
	c2, _, err := Open(0, cl, "rbd", "c", keys) // fresh handle, cold caches
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := StartFlatten(0, c2); !errors.Is(err, ErrFlattenActive) {
		t.Fatalf("Start over interrupted flatten: %v", err)
	}
	f2, _, err := ResumeFlatten(0, c2)
	if err != nil {
		t.Fatal(err)
	}
	if p := f2.Progress(); p.NextObj != 2 || p.Objects != 4 {
		t.Fatalf("resumed cursor %+v", p)
	}
	// Crash 2: walk the remaining objects but stop before the sever step.
	for !f2.Progress().Done() {
		if _, _, err := f2.Step(0); err != nil {
			t.Fatal(err)
		}
	}
	c3, _, err := Open(0, cl, "rbd", "c", keys)
	if err != nil {
		t.Fatal(err)
	}
	if c3.Parent() == nil {
		t.Fatal("parent severed before the final step")
	}
	f3, _, err := ResumeFlatten(0, c3)
	if err != nil {
		t.Fatal(err)
	}
	done, _, err := f3.Step(0)
	if err != nil || !done {
		t.Fatalf("final step: done=%v err=%v", done, err)
	}
	if c3.Parent() != nil {
		t.Fatal("parent pointer survived")
	}
	if _, _, err := ResumeFlatten(0, c3); !errors.Is(err, ErrNoFlatten) {
		t.Fatalf("resume after completion: %v", err)
	}
	// Content intact, with only the child's key.
	c4, _, err := Open(0, cl, "rbd", "c", keysFor("c"))
	if err != nil {
		t.Fatal(err)
	}
	assertImage(t, "after crash-resume flatten", readAll(t, c4), childModel)

	// StartFlatten on a non-clone is rejected.
	if _, _, err := StartFlatten(0, c4); !errors.Is(err, ErrNotClone) {
		t.Fatalf("flatten of non-clone: %v", err)
	}
}

// TestFlattenPaced checks the shared walker budget: a paced flatten's
// virtual completion time is stretched to at least the op budget, and
// the result is still correct.
func TestFlattenPaced(t *testing.T) {
	cl := testClient(t)
	base := createBase(t, cl, "base", core.SchemeXTSRand, core.LayoutObjectEnd)
	rng := rand.New(rand.NewSource(41))
	model := make([]byte, imgSize)
	scatterWrites(t, base.WriteAt, model, rng, 24)
	if _, _, err := base.CreateSnap(0, "g"); err != nil {
		t.Fatal(err)
	}
	keys := keysFor("base", "c")
	c, _, err := Create(0, cl, "rbd", "base", "g", "c", keys,
		core.Options{Scheme: core.SchemeXTSRand, Layout: core.LayoutObjectEnd})
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := StartFlatten(0, c)
	if err != nil {
		t.Fatal(err)
	}
	f.SetPace(vtime.NewPacer(10, 0)) // 10 walker ops/s
	end, err := f.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	// 4 objects at 10 ops/s: the last copyup cannot start before 300ms.
	if end < vtime.Time(300e6) {
		t.Fatalf("paced flatten finished at %v, pacing not applied", end)
	}
	assertImage(t, "paced flatten content", readAll(t, c), model)
}

// TestCloneRekeyWalksOnlyChild pins "rekey must walk only child-owned
// blocks": a child rekey re-seals exactly the blocks the child owns,
// never touching (or needing) the parent.
func TestCloneRekeyWalksOnlyChild(t *testing.T) {
	cl := testClient(t)
	base := createBase(t, cl, "base", core.SchemeXTSRand, core.LayoutObjectEnd)
	rng := rand.New(rand.NewSource(51))
	model := make([]byte, imgSize)
	scatterWrites(t, base.WriteAt, model, rng, 24)
	if _, _, err := base.CreateSnap(0, "g"); err != nil {
		t.Fatal(err)
	}
	keys := keysFor("base", "c")
	c, _, err := Create(0, cl, "rbd", "base", "g", "c", keys,
		core.Options{Scheme: core.SchemeXTSRand, Layout: core.LayoutObjectEnd})
	if err != nil {
		t.Fatal(err)
	}
	// The child owns exactly 48 scattered blocks.
	childModel := append([]byte(nil), model...)
	own := make(map[int64]bool)
	for len(own) < 48 {
		b := rng.Int63n(blocks)
		if own[b] {
			continue
		}
		own[b] = true
		buf := make([]byte, bs)
		rng.Read(buf)
		if _, err := c.WriteAt(0, buf, b*bs); err != nil {
			t.Fatal(err)
		}
		copy(childModel[b*bs:], buf)
	}

	// Walk every object with the child's rekey primitive toward a fresh
	// epoch; the re-sealed count must equal the child's owned blocks.
	if _, _, err := c.Enc().BeginEpoch(0); err != nil {
		t.Fatal(err)
	}
	resealed := 0
	for obj := int64(0); obj < c.Enc().ObjectCount(); obj++ {
		n, _, err := c.Enc().RekeyObject(0, obj)
		if err != nil {
			t.Fatal(err)
		}
		resealed += n
	}
	if resealed != len(own) {
		t.Fatalf("rekey re-sealed %d blocks, child owns %d", resealed, len(own))
	}
	// After destroying the old epoch the child still reads fully: its own
	// blocks under the new key, inherited ones under the parent's.
	if _, err := c.Enc().DropEpoch(0, 0); err != nil {
		t.Fatal(err)
	}
	assertImage(t, "clone after child-only rekey", readAll(t, c), childModel)
}

// TestCloneGeometryGuards pins the construction error paths.
func TestCloneGeometryGuards(t *testing.T) {
	cl := testClient(t)
	base := createBase(t, cl, "base", core.SchemeXTSRand, core.LayoutObjectEnd)
	if _, _, err := base.CreateSnap(0, "g"); err != nil {
		t.Fatal(err)
	}
	keys := keysFor("base", "c")
	// Mismatched block size.
	_, _, err := Create(0, cl, "rbd", "base", "g", "c", keys,
		core.Options{Scheme: core.SchemeXTSRand, Layout: core.LayoutObjectEnd, BlockSize: 8192})
	if !errors.Is(err, ErrBlockSize) {
		t.Fatalf("block size mismatch: %v", err)
	}
	// Unknown snapshot.
	if _, _, err := Create(0, cl, "rbd", "base", "nope", "c", keys,
		core.Options{Scheme: core.SchemeXTSRand, Layout: core.LayoutObjectEnd}); !errors.Is(err, rbd.ErrNotFound) {
		t.Fatalf("unknown snapshot: %v", err)
	}
	// Missing child key.
	if _, _, err := Create(0, cl, "rbd", "base", "g", "c", keysFor("base"),
		core.Options{Scheme: core.SchemeXTSRand, Layout: core.LayoutObjectEnd}); !errors.Is(err, ErrNoKey) {
		t.Fatalf("missing child key: %v", err)
	}
}

// TestFlattenRefusedWithSnapshots pins the snapshot guard: a clone's own
// snapshot keeps resolving inherited blocks through the parent, so the
// sever would silently zero its view — StartFlatten must refuse.
func TestFlattenRefusedWithSnapshots(t *testing.T) {
	cl := testClient(t)
	base := createBase(t, cl, "base", core.SchemeXTSRand, core.LayoutObjectEnd)
	golden := bytes.Repeat([]byte{0xAB}, bs)
	if _, err := base.WriteAt(0, golden, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := base.CreateSnap(0, "g"); err != nil {
		t.Fatal(err)
	}
	keys := keysFor("base", "c")
	c, _, err := Create(0, cl, "rbd", "base", "g", "c", keys,
		core.Options{Scheme: core.SchemeXTSRand, Layout: core.LayoutObjectEnd})
	if err != nil {
		t.Fatal(err)
	}
	snapID, _, err := c.CreateSnap(0, "keep")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := StartFlatten(0, c); !errors.Is(err, ErrHasSnaps) {
		t.Fatalf("flatten with snapshots: %v", err)
	}
	// The snapshot's read-through stays intact.
	got := make([]byte, bs)
	if _, err := c.ReadAtSnap(0, got, 0, snapID); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatal("clone snapshot lost its inherited view")
	}
}

// TestCreateFailureLeavesNoStrandedImage pins that a Create failing on a
// missing child key does not burn the tenant's image name.
func TestCreateFailureLeavesNoStrandedImage(t *testing.T) {
	cl := testClient(t)
	base := createBase(t, cl, "base", core.SchemeXTSRand, core.LayoutObjectEnd)
	if _, _, err := base.CreateSnap(0, "g"); err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Scheme: core.SchemeXTSRand, Layout: core.LayoutObjectEnd}
	if _, _, err := Create(0, cl, "rbd", "base", "g", "c", keysFor("base"), opts); !errors.Is(err, ErrNoKey) {
		t.Fatalf("missing child key: %v", err)
	}
	// Retrying with the full keychain succeeds — nothing was stranded.
	if _, _, err := Create(0, cl, "rbd", "base", "g", "c", keysFor("base", "c"), opts); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRefusedDuringFlatten pins the reverse guard: while a
// flatten is in flight, snapshotting the clone is refused (the sever
// would zero the snapshot's inherited view); once the flatten completes,
// snapshots work again.
func TestSnapshotRefusedDuringFlatten(t *testing.T) {
	cl := testClient(t)
	base := createBase(t, cl, "base", core.SchemeXTSRand, core.LayoutObjectEnd)
	if _, err := base.WriteAt(0, bytes.Repeat([]byte{0xEE}, 8*bs), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := base.CreateSnap(0, "g"); err != nil {
		t.Fatal(err)
	}
	keys := keysFor("base", "c")
	c, _, err := Create(0, cl, "rbd", "base", "g", "c", keys,
		core.Options{Scheme: core.SchemeXTSRand, Layout: core.LayoutObjectEnd})
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := StartFlatten(0, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.CreateSnap(0, "mid"); !errors.Is(err, ErrFlattenActive) {
		t.Fatalf("snapshot during flatten: %v", err)
	}
	if _, err := f.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.CreateSnap(0, "after"); err != nil {
		t.Fatalf("snapshot after flatten: %v", err)
	}
}

// TestCloneDiscardHugeMaskedRun covers the chunked masking path: a
// discard spanning a fully parent-present multi-object range masks in
// bounded chunks and still reads back as zeros with the parent intact.
func TestCloneDiscardHugeMaskedRun(t *testing.T) {
	cl := testClient(t)
	base := createBase(t, cl, "base", core.SchemeXTSRand, core.LayoutObjectEnd)
	full := make([]byte, imgSize)
	for i := range full {
		full[i] = byte(i*17) | 1
	}
	if _, err := base.WriteAt(0, full, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := base.CreateSnap(0, "g"); err != nil {
		t.Fatal(err)
	}
	keys := keysFor("base", "c")
	c, _, err := Create(0, cl, "rbd", "base", "g", "c", keys,
		core.Options{Scheme: core.SchemeXTSRand, Layout: core.LayoutObjectEnd})
	if err != nil {
		t.Fatal(err)
	}
	// One present run spanning 3 objects (> the 1 MiB mask chunk).
	if _, err := c.Discard(0, 0, 3<<20); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, c)
	want := append(make([]byte, 3<<20), full[3<<20:]...)
	assertImage(t, "huge masked discard", got, want)
	snap := make([]byte, imgSize)
	if _, err := base.ReadAtSnap(0, snap, 0, mustSnapID(t, base, "g")); err != nil {
		t.Fatal(err)
	}
	assertImage(t, "parent after huge discard", snap, full)
}
