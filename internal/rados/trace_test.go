package rados

// trace_test.go pins wire trace-context propagation: a replicated
// write's span must carry the transport hops plus a serve hop from the
// PRIMARY AND EVERY REPLICA and the primary's replication window — on
// the typed fast path and, crucially, on the byte path, where the hops
// can only have crossed inside the marshalled reply. Before trace ids
// rode the request header, replica forwards carried a nil span and the
// replica serve hops silently vanished from the timeline.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/vtime"
)

// hopProfile classifies one finished span's hops.
type hopProfile struct {
	msgrReq, msgrResp bool
	serves            map[string]bool
	replicates        map[string]bool
}

func profileOf(rec telemetry.SpanRecord) hopProfile {
	p := hopProfile{serves: map[string]bool{}, replicates: map[string]bool{}}
	for i := 0; i < rec.NHops; i++ {
		switch name := rec.Hops[i].Name; {
		case name == "msgr:req":
			p.msgrReq = true
		case name == "msgr:resp":
			p.msgrResp = true
		case strings.HasSuffix(name, ":serve"):
			p.serves[name] = true
		case strings.HasSuffix(name, ":replicate"):
			p.replicates[name] = true
		}
	}
	return p
}

func TestTraceCompletenessReplicatedWrite(t *testing.T) {
	telemetry.Ops.SetSampleEvery(1)
	defer telemetry.Ops.SetSampleEvery(64)

	_, typedCl := newWireCluster(t, 3, 3)
	_, rawCl := newWireCluster(t, 3, 3)
	byteCl := byteClient(rawCl)

	for _, tc := range []struct {
		path string
		cl   *Client
		// The typed messenger sees the span and records the transport
		// hops; the byte codec carries only the trace id, so its spans
		// hold the OSD-reported hops alone.
		wantMsgr bool
	}{
		{"typed", typedCl, true},
		{"bytes", byteCl, false},
	} {
		t.Run(tc.path, func(t *testing.T) {
			obj := fmt.Sprintf("trace-%s", tc.path)
			data := bytes.Repeat([]byte{0x5A}, 4096)
			if _, _, err := tc.cl.Operate(0, "rbd", obj, SnapContext{}, 0,
				[]Op{{Kind: OpWrite, Off: 0, Data: data}}); err != nil {
				t.Fatal(err)
			}

			var rec telemetry.SpanRecord
			found := false
			for _, r := range telemetry.Ops.Recent() {
				if r.Target == obj {
					rec, found = r, true
					break
				}
			}
			if !found {
				t.Fatalf("no finished span for %s among %d recent", obj, len(telemetry.Ops.Recent()))
			}

			p := profileOf(rec)
			// Replicas=3 on 3 OSDs: the primary and both replicas each
			// contribute their own per-OSD serve hop, and the primary
			// reports one replication window.
			if tc.wantMsgr && (!p.msgrReq || !p.msgrResp) {
				t.Errorf("transport hops missing: req=%v resp=%v", p.msgrReq, p.msgrResp)
			}
			if len(p.serves) != 3 {
				t.Errorf("span carries %d serve hops %v, want 3 (primary + 2 replicas)", len(p.serves), p.serves)
			}
			if len(p.replicates) != 1 {
				t.Errorf("span carries %d replicate hops %v, want 1", len(p.replicates), p.replicates)
			}
			for i := 0; i < rec.NHops; i++ {
				h := rec.Hops[i]
				if h.End < h.Start || vtime.Time(h.Start) < rec.Start {
					t.Errorf("hop %s has incoherent timeline [%d,%d] in span [%d,%d]",
						h.Name, h.Start, h.End, rec.Start, rec.End)
				}
			}
		})
	}
}
