package rados

import (
	"bytes"
	"testing"

	"repro/internal/msgr"
	"repro/internal/simdisk"
)

// The full object path must work over real TCP sockets, not just the
// modeled in-process transport — proving the stack is not coupled to the
// simulation. One OSD (single replica) is served on a loopback listener
// and driven through the same wire format.
func TestOSDOverRealTCP(t *testing.T) {
	cmap := &ClusterMap{PGNum: 8, Replicas: 1, OSDIDs: []int{0}}
	disk := simdisk.New("tcp-nvme", (256<<20)/simdisk.SectorSize, simdisk.DefaultCostModel())
	cfg := DefaultClusterConfig().Blob
	cfg.ObjectCapacity = 1 << 20
	cfg.KVBytes = 64 << 20
	cfg.KV.MemtableBytes = 256 << 10
	cfg.KV.WALBytes = 4 << 20
	osd, _, err := NewOSD(0, 0, cmap, []*simdisk.Disk{disk}, cfg, DefaultOSDCost())
	if err != nil {
		t.Fatal(err)
	}
	defer osd.Close()

	srv, err := msgr.ServeTCP("127.0.0.1:0", osd.Handle)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := msgr.DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	client := &Client{cmap: cmap, conns: map[int]msgr.Conn{0: conn}}

	// Write data + OMAP IV atomically over the socket.
	iv := bytes.Repeat([]byte{0xEE}, 16)
	data := bytes.Repeat([]byte{0x77}, 8192)
	res, end, err := client.Operate(0, "rbd", "tcp-obj", SnapContext{}, 0, []Op{
		{Kind: OpWrite, Off: 4096, Data: data},
		{Kind: OpOmapSet, Pairs: []Pair{{Key: []byte("iv.1"), Value: iv}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Status != StatusOK || res[1].Status != StatusOK {
		t.Fatalf("statuses: %v %v", res[0].Status, res[1].Status)
	}
	if end <= 0 {
		t.Fatal("virtual time must ride the TCP frames")
	}

	// Read both back.
	got, _, err := client.Read(0, "rbd", "tcp-obj", 4096, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data round trip over TCP failed")
	}
	res, _, err = client.Operate(0, "rbd", "tcp-obj", SnapContext{}, 0, []Op{
		{Kind: OpOmapGetRange, Key: []byte("iv."), Key2: []byte("iv/")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Pairs) != 1 || !bytes.Equal(res[0].Pairs[0].Value, iv) {
		t.Fatalf("omap over TCP: %+v", res[0].Pairs)
	}

	// Snapshot semantics over the socket too.
	if _, err := client.Write(0, "rbd", "tcp-obj", SnapContext{Seq: 1}, 4096, bytes.Repeat([]byte{0x88}, 8192)); err != nil {
		t.Fatal(err)
	}
	old, _, err := client.ReadSnap(0, "rbd", "tcp-obj", 1, 4096, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(old, data) {
		t.Fatal("snapshot read over TCP diverged")
	}
}
