package rados

import (
	"fmt"

	"repro/internal/bufpool"
	"repro/internal/msgr"
	"repro/internal/telemetry"
	"repro/internal/telemetry/attr"
	"repro/internal/vtime"
)

// wireHdrHint sizes the pooled header-scratch buffer for scatter-gather
// marshals; a typical request's fixed fields and small payloads fit in
// one 4 KiB pool class.
const wireHdrHint = 4096

// Client issues object operations to the cluster, routing each request to
// the primary OSD of the object's placement group (libRADOS' role).
type Client struct {
	cmap  *ClusterMap
	conns map[int]msgr.Conn
}

// Operate sends one atomic request (all ops target the same object) and
// returns the per-op results and the virtual completion time.
//
// Mutating requests carry the snap context; read requests may address a
// snapshot via snapID.
//
// Transport selection is by capability: a typed connection (the
// in-process fast path) carries the request and reply as structs — op
// payloads travel by reference from the caller's buffers to the OSD and
// back, with zero marshal copies — while a byte connection gets the
// scatter-gather encoding, whose segments still reference the payloads.
// Either way the caller may recycle its op payload buffers as soon as
// Operate returns: the OSD copies what it persists before replying, and
// the transport has fully consumed the segments.
func (c *Client) Operate(at vtime.Time, pool, object string, snapc SnapContext, snapID uint64, ops []Op) ([]Result, vtime.Time, error) {
	return c.operate(at, c.cmap.PrimaryFor(pool, object), pool, object, snapc, snapID, ops, false)
}

// OperateOn issues one request directly at a specific OSD, bypassing
// primary routing — the scrub/repair surface. A replica read fetches
// one OSD's local copy of an object so a repairer can hunt for an
// intact replica when the primary's copy fails verification; a direct
// mutating request is applied to that OSD alone (it is marked Replica
// so the target does not re-replicate), which is how tests plant
// corruption on a single copy. The OSD must hold a copy of the object
// (be in ReplicasFor's set) for the result to be meaningful.
func (c *Client) OperateOn(at vtime.Time, osd int, pool, object string, snapc SnapContext, snapID uint64, ops []Op) ([]Result, vtime.Time, error) {
	return c.operate(at, osd, pool, object, snapc, snapID, ops, true)
}

// ReplicasFor returns the OSDs holding an object's replicas, primary
// first — the iteration domain for OperateOn-based repair.
func (c *Client) ReplicasFor(pool, object string) []int {
	return c.cmap.OSDsFor(c.cmap.PG(pool, object))
}

func (c *Client) operate(at vtime.Time, osd int, pool, object string, snapc SnapContext, snapID uint64, ops []Op, direct bool) ([]Result, vtime.Time, error) {
	if len(ops) == 0 {
		mClientErrors.Inc()
		return nil, at, fmt.Errorf("rados: empty request")
	}
	conn, ok := c.conns[osd]
	if !ok {
		mClientErrors.Inc()
		return nil, at, fmt.Errorf("rados: no connection to osd%d", osd)
	}
	// Direct mutations must not fan out again: the caller addressed one
	// copy on purpose.
	replica := false
	if direct {
		for _, op := range ops {
			if op.Kind.Mutates() {
				replica = true
				break
			}
		}
	}
	mClientRequests.Inc()
	mClientBytes.Add(countOps(ops, &mClientOps))
	cls := attrClassOf(ops)
	sp := telemetry.Ops.Start(ops[0].Kind.String(), object, int64(len(ops[0].Data))+ops[0].Len, at)
	req := &Request{
		Pool:      pool,
		Object:    object,
		SnapID:    snapID,
		SnapSeq:   snapc.Seq,
		TraceID:   sp.TraceID(), // 0 when unsampled — "untraced" on the wire
		Ops:       ops,
		Replica:   replica,
		Span:      sp,
		AttrClass: cls,
	}

	if tc, ok := conn.(msgr.TypedConn); ok {
		resp, end, err := tc.CallTyped(at, req)
		if err != nil {
			mClientErrors.Inc()
			sp.Finish(at)
			return nil, at, err
		}
		reply, ok := resp.(*Reply)
		if !ok {
			mClientErrors.Inc()
			sp.Finish(end)
			return nil, end, fmt.Errorf("rados: unexpected typed reply %T", resp)
		}
		if len(reply.Results) != len(ops) {
			mClientErrors.Inc()
			sp.Finish(end)
			return nil, end, fmt.Errorf("rados: %d results for %d ops", len(reply.Results), len(ops))
		}
		mergeWireHops(sp, reply.Hops)
		mClientLat.Observe(end.Sub(at))
		attr.ObserveOp(cls, end.Sub(at))
		sp.Finish(end)
		return reply.Results, end, nil
	}

	// Marshal phase: the byte codec is vtime-free in the cost model (the
	// scatter-gather encode copies no payloads), so the observation
	// records the crossing with zero duration — the attribution table
	// shows the phase exists and costs nothing, rather than omitting it.
	attr.Observe(cls, attr.PhaseMarshal, 0)
	segs, hdr := req.MarshalV(bufpool.Get(wireHdrHint))
	respPayload, end, err := conn.CallV(at, segs)
	bufpool.Put(hdr)
	if err != nil {
		mClientErrors.Inc()
		sp.Finish(at)
		return nil, at, err
	}
	reply, err := UnmarshalReply(respPayload)
	if err != nil {
		// The call itself completed; keep the elapsed virtual time even
		// though the payload is unusable.
		mClientErrors.Inc()
		sp.Finish(end)
		return nil, end, err
	}
	if len(reply.Results) != len(ops) {
		mClientErrors.Inc()
		sp.Finish(end)
		return nil, end, fmt.Errorf("rados: %d results for %d ops", len(reply.Results), len(ops))
	}
	mergeWireHops(sp, reply.Hops)
	mClientLat.Observe(end.Sub(at))
	attr.ObserveOp(cls, end.Sub(at))
	sp.Finish(end)
	return reply.Results, end, nil
}

// attrClassOf buckets a request's op vector into an attribution class:
// any mutating op makes it a write, else any data read makes it a read,
// else it is metadata/other traffic.
func attrClassOf(ops []Op) int {
	hasRead := false
	for _, op := range ops {
		if op.Kind.Mutates() {
			return attr.OpWrite
		}
		if op.Kind == OpRead {
			hasRead = true
		}
	}
	if hasRead {
		return attr.OpRead
	}
	return attr.OpOther
}

// mergeWireHops stitches the server-reported trace hops (OSD serve,
// replica serves, replication fan-out) into the client's span — the
// receiving end of the wire-propagated trace context. Nil-safe like
// every span call; untraced requests answer with no hops.
func mergeWireHops(sp *telemetry.Span, hops []telemetry.Hop) {
	if sp == nil {
		return
	}
	for _, h := range hops {
		sp.Hop(h.Name, h.Start, h.End)
	}
}

// Write is a convenience wrapper for a single data write.
func (c *Client) Write(at vtime.Time, pool, object string, snapc SnapContext, off int64, data []byte) (vtime.Time, error) {
	res, end, err := c.Operate(at, pool, object, snapc, 0, []Op{{Kind: OpWrite, Off: off, Data: data}})
	if err != nil {
		return at, err
	}
	return end, res[0].Status.Err()
}

// Read is a convenience wrapper for a single read from the object head.
func (c *Client) Read(at vtime.Time, pool, object string, off, length int64) ([]byte, vtime.Time, error) {
	return c.ReadSnap(at, pool, object, 0, off, length)
}

// ReadSnap reads from a snapshot (snapID 0 addresses the head).
func (c *Client) ReadSnap(at vtime.Time, pool, object string, snapID uint64, off, length int64) ([]byte, vtime.Time, error) {
	res, end, err := c.Operate(at, pool, object, SnapContext{}, snapID, []Op{{Kind: OpRead, Off: off, Len: length}})
	if err != nil {
		return nil, at, err
	}
	if err := res[0].Status.Err(); err != nil {
		return nil, end, err
	}
	return res[0].Data, end, nil
}

// Delete removes an object.
func (c *Client) Delete(at vtime.Time, pool, object string) (vtime.Time, error) {
	res, end, err := c.Operate(at, pool, object, SnapContext{}, 0, []Op{{Kind: OpDelete}})
	if err != nil {
		return at, err
	}
	return end, res[0].Status.Err()
}

// Stat returns an object's logical size.
func (c *Client) Stat(at vtime.Time, pool, object string) (int64, vtime.Time, error) {
	res, end, err := c.Operate(at, pool, object, SnapContext{}, 0, []Op{{Kind: OpStat}})
	if err != nil {
		return 0, at, err
	}
	if err := res[0].Status.Err(); err != nil {
		return 0, end, err
	}
	return res[0].Size, end, nil
}

// Close closes all OSD connections.
func (c *Client) Close() {
	for _, conn := range c.conns {
		conn.Close()
	}
}
